// T1 (Sections III-B/C text): zero-load access latencies on the 256-core
// cluster — 1 cycle to the own tile, 3 cycles within a TopH local group,
// 5 cycles to any remote tile on Top1/Top4/TopH-cross-group, 1 cycle on the
// ideal TopX. Measured with single-load probes on an idle fabric.
//
// The "paper" column is each fabric plugin's self-reported latency model
// (FabricTopology::latency_summary); the registry contract test pins the
// measured probes to the full per-tile model. Run with `--topology TopH2`
// (or any registered plugin) to measure one topology instead of the default
// four — TopH2 adds a fourth tier: 7 cycles across super-groups.
//
// The topologies are measured concurrently on the runner pool; each task
// owns its cluster, so the probe sequences cannot interfere.

#include <chrono>
#include <iostream>
#include <memory>

#include "common/report.hpp"
#include "common/stats.hpp"
#include "core/cluster.hpp"
#include "mem/imem.hpp"
#include "noc/fabric.hpp"
#include "runner/bench_cli.hpp"
#include "runner/parallel.hpp"
#include "traffic/probe.hpp"

using namespace mempool;

namespace {

struct Rig {
  explicit Rig(const ClusterConfig& cfg, EngineMode mode)
      : imem(4096), cluster(cfg, &imem) {
    // Probing is one load at a time, so sharded mode runs its shards inline
    // on this thread (no executor) — still the sharded code path end to end.
    if (mode == EngineMode::kSharded) {
      engine.set_sharded(cluster.num_shards(), nullptr);
    } else {
      engine.set_dense(mode == EngineMode::kDense);
    }
    for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
      probes.push_back(std::make_unique<ProbeClient>(
          static_cast<uint16_t>(c),
          static_cast<uint16_t>(c / cfg.cores_per_tile), &cluster.layout()));
    }
    std::vector<Client*> clients;
    for (auto& p : probes) clients.push_back(p.get());
    cluster.attach_clients(clients);
    cluster.build(engine);
  }
  uint64_t probe(uint32_t core, uint32_t addr) {
    const uint32_t before = probes[core]->responses();
    probes[core]->arm(addr);
    for (int i = 0; i < 64 && probes[core]->responses() == before; ++i) {
      engine.step();
    }
    return probes[core]->latency();
  }
  InstrMem imem;
  Engine engine;
  Cluster cluster;
  std::vector<std::unique_ptr<ProbeClient>> probes;
};

struct TopoLatency {
  uint64_t own = 0;
  uint64_t same_group = 0;
  uint64_t remote = 0;
  uint64_t worst = 0;
  double mean = 0;
  uint32_t tiles = 0;
};

TopoLatency measure(const TopologySpec& topo, EngineMode mode) {
  const ClusterConfig cfg = ClusterConfig::paper(topo, true);
  Rig rig(cfg, mode);
  auto addr = [&](uint32_t tile) { return tile * cfg.seq_region_bytes; };
  TopoLatency out;
  out.tiles = cfg.num_tiles;
  out.own = rig.probe(0, addr(0));
  out.same_group = rig.probe(0, addr(3));
  out.remote = rig.probe(0, addr(cfg.num_tiles - 1));
  RunningStat all;
  for (uint32_t tile = 0; tile < cfg.num_tiles; ++tile) {
    const uint64_t l = rig.probe(0, addr(tile));
    out.worst = std::max(out.worst, l);
    all.add(static_cast<double>(l));
  }
  out.mean = all.mean();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const runner::BenchOptions opts = runner::parse_bench_options(
      &argc, argv, "tab_zero_load_latency", /*accepts_topology=*/true);

  print_banner(std::cout,
               "T1 — zero-load access latency (cycles), 256-core cluster");

  std::vector<TopologySpec> topos = {Topology::kTop1, Topology::kTop4,
                                     Topology::kTopH, Topology::kTopX};
  if (!opts.topology.empty()) topos = {TopologySpec{opts.topology}};

  runner::ThreadPool pool(opts.threads);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<TopoLatency> lats = runner::run_indexed(
      pool, topos.size(),
      [&](std::size_t i) { return measure(topos[i], opts.engine); });
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  Table t({"topology", "own tile", "same group", "remote group / remote tile",
           "max over all tiles", "paper"});
  for (std::size_t i = 0; i < topos.size(); ++i) {
    const FabricTopology& plugin = FabricRegistry::get(topos[i].name);
    const ClusterConfig cfg = ClusterConfig::paper(topos[i], true);
    const TopoLatency& l = lats[i];
    t.add_row({topos[i].name, std::to_string(l.own),
               plugin.hierarchical() ? std::to_string(l.same_group)
                                     : std::string("-"),
               std::to_string(l.remote), std::to_string(l.worst),
               plugin.latency_summary(cfg)});
    std::cout << "  " << topos[i].name << ": mean over all " << l.tiles
              << " destination tiles = " << Table::num(l.mean, 2)
              << " cycles\n";
  }
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\nPaper (Sections I/III): \"all the SPM banks accessible "
               "within 5 cycles\" on TopH — verified when the max column is "
               "<= 5.\n";

  Json results = Json::object();
  results.set("latencies", t.to_json());
  runner::write_bench_results(opts, pool.num_threads(), wall,
                              std::move(results));
  return 0;
}
