// T5 (Section VI-D): power of the TopH cluster running matmul at 500 MHz,
// TT/0.80 V: tile average 20.9 mW with I$ ~39.5 %, cores ~26.6 %,
// SPM ~12.6 %, interconnect < 10 %; cluster total 1.55 W with 86 % in tiles.
//
// One simulation, dispatched through the runner pool like every other bench,
// with a machine-readable results file.

#include <chrono>
#include <iostream>

#include "common/report.hpp"
#include "core/system.hpp"
#include "kernels/kernel.hpp"
#include "kernels/matmul.hpp"
#include "power/energy_model.hpp"
#include "power/power_report.hpp"
#include "runner/bench_cli.hpp"
#include "runner/parallel.hpp"

using namespace mempool;

int main(int argc, char** argv) {
  const runner::BenchOptions opts =
      runner::parse_bench_options(&argc, argv, "tab_power_breakdown");

  print_banner(std::cout,
               "T5 — power breakdown, matmul on 256-core TopHS @ 500 MHz");

  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  const EnergyModel model;

  struct Measured {
    uint64_t cycles = 0;
    EnergyBreakdown e;
  };
  // Exactly one task — a single worker, so no idle threads sit around for
  // the duration of the simulation.
  runner::ThreadPool pool(1);
  const auto t0 = std::chrono::steady_clock::now();
  const Measured meas = runner::run_indexed(pool, 1, [&](std::size_t) {
    System sys(cfg);
    sys.configure_engine(opts.engine, opts.sim_threads);
    Measured m;
    m.cycles = kernels::run_kernel(sys, kernels::build_matmul(cfg, 64),
                                   50'000'000);
    m.e = model.measure(sys.cluster(), sys.aggregate_core_stats());
    return m;
  })[0];
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  const PowerReport r = make_power_report(meas.e, meas.cycles, cfg.num_tiles,
                                          500e6);

  const double tile = r.tile_total();
  Table t({"component", "mW/tile", "share", "paper"});
  t.add_row({"instruction cache", Table::num(r.tile_icache, 1),
             Table::num(100 * r.tile_icache / tile, 1) + "%",
             "8.3 mW (39.5%)"});
  t.add_row({"Snitch cores", Table::num(r.tile_cores, 1),
             Table::num(100 * r.tile_cores / tile, 1) + "%", "5.6 mW (26.6%)"});
  t.add_row({"SPM banks", Table::num(r.tile_banks, 1),
             Table::num(100 * r.tile_banks / tile, 1) + "%", "2.6 mW (12.6%)"});
  t.add_row({"tile interconnects", Table::num(r.tile_interconnect, 1),
             Table::num(100 * r.tile_interconnect / tile, 1) + "%",
             "1.7 mW (<10%)"});
  t.add_row({"tile total", Table::num(tile, 1), "100%", "20.9 mW"});
  t.print(std::cout);

  Table c({"quantity", "measured", "paper"});
  c.add_row({"cluster power", Table::num(r.cluster_total_w, 2) + " W",
             "1.55 W"});
  c.add_row({"fraction consumed in tiles",
             Table::num(100 * r.tiles_fraction, 0) + "%", "86%"});
  c.add_row({"kernel", "matmul 64x64, verified", "matmul"});
  c.add_row({"cycles", std::to_string(meas.cycles), "-"});
  std::cout << '\n';
  c.print(std::cout);

  Json results = Json::object();
  results.set("tile_breakdown", t.to_json());
  results.set("cluster", c.to_json());
  results.set("cycles", meas.cycles);
  runner::write_bench_results(opts, pool.num_threads(), wall,
                              std::move(results));
  return 0;
}
