// Figure 10 (Section VI-D): energy-per-instruction breakdown of the TopH
// tile into core / interconnect / memory-bank shares, plus the text ratios
// (T7): local = ½ remote, local ≈ mul, add = local/2.3, remote = 4.5 add,
// remote interconnect = 2.9x local interconnect.
//
// The analytic rows restate the calibrated technology constants; the
// "measured" section runs matmul on the 256-core TopHS cluster and divides
// the *measured* energy by the *measured* instruction counts, which is the
// actual reproduction of the experiment.

#include <chrono>
#include <iostream>

#include "common/report.hpp"
#include "core/system.hpp"
#include "kernels/kernel.hpp"
#include "kernels/matmul.hpp"
#include "noc/fabric.hpp"
#include "power/energy_model.hpp"
#include "runner/bench_cli.hpp"
#include "runner/parallel.hpp"

using namespace mempool;

int main(int argc, char** argv) {
  const runner::BenchOptions opts =
      runner::parse_bench_options(&argc, argv, "fig10_energy_breakdown");

  print_banner(std::cout,
               "Figure 10 — energy per instruction, TopH tile (pJ)");

  const EnergyModel model;
  Table t({"instruction", "core", "interconnect", "memory banks", "total"});
  auto row = [&](const char* name, const InstrEnergy& e) {
    t.add_row({name, Table::num(e.core, 1), Table::num(e.interconnect, 1),
               Table::num(e.memory, 1), Table::num(e.total(), 1)});
  };
  row("remote load (cross-group)", model.remote_load_cross_group());
  row("remote load (same group)", model.remote_load_same_group());
  row("local load", model.local_load());
  row("mul", model.mul_op());
  row("add", model.add_op());
  t.print(std::cout);

  std::cout << "\nPaper ratios (Section VI-D):\n";
  Table r({"claim", "paper", "model"});
  const double local = model.local_load().total();
  const double remote = model.remote_load_cross_group().total();
  const double add = model.add_op().total();
  r.add_row({"local load total", "8.4 pJ", Table::num(local, 1)});
  r.add_row({"remote load total", "16.9 pJ", Table::num(remote, 1)});
  r.add_row({"local / remote energy", "0.5 ('half')",
             Table::num(local / remote, 2)});
  r.add_row({"local load / add", "2.3x", Table::num(local / add, 2)});
  r.add_row({"remote load / add", "4.5x", Table::num(remote / add, 2)});
  r.add_row({"remote IC / local IC", "2.9x",
             Table::num(model.remote_load_cross_group().interconnect /
                            model.local_load().interconnect,
                        2)});
  r.print(std::cout);

  // Every fabric plugin prices its own analytic rows on its canonical
  // configuration — the hierarchical tiers of TopH2 (cross-super-group loads
  // crossing a 3-layer die-spanning butterfly) show up here with zero edits
  // to the energy model.
  std::cout << "\nPer-topology analytic loads (registry, pJ):\n";
  Table reg({"topology", "instruction", "core", "interconnect", "memory",
             "total"});
  for (const std::string& name : FabricRegistry::names()) {
    const FabricTopology& topo = FabricRegistry::get(name);
    const ClusterConfig tcfg = ClusterConfig::paper(TopologySpec{name}, true);
    for (const auto& er : topo.energy_rows(tcfg, model.params())) {
      reg.add_row({name, er.label, Table::num(er.energy.core, 1),
                   Table::num(er.energy.interconnect, 1),
                   Table::num(er.energy.memory, 1),
                   Table::num(er.energy.total(), 1)});
    }
  }
  reg.print(std::cout);

  // --- measured cross-check on a real run -------------------------------------
  // A single simulation, but still dispatched through the runner pool so the
  // bench exercises the same execution path as the multi-point harnesses.
  std::cout << "\nMeasured cross-check (matmul on 256-core TopHS):\n";
  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  struct Measured {
    SnitchCore::Stats cs;
    EnergyBreakdown e;
  };
  // Exactly one task — a single worker, so no idle threads sit around for
  // the duration of the simulation.
  runner::ThreadPool pool(1);
  const auto t0 = std::chrono::steady_clock::now();
  const Measured meas = runner::run_indexed(pool, 1, [&](std::size_t) {
    System sys(cfg);
    sys.configure_engine(opts.engine, opts.sim_threads);
    kernels::run_kernel(sys, kernels::build_matmul(cfg, 64), 50'000'000);
    Measured m;
    m.cs = sys.aggregate_core_stats();
    m.e = model.measure(sys.cluster(), m.cs);
    return m;
  })[0];
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  const SnitchCore::Stats& cs = meas.cs;
  const EnergyBreakdown& e = meas.e;

  const double loads = static_cast<double>(cs.loads_local + cs.loads_remote +
                                           cs.stores_local + cs.stores_remote +
                                           cs.amos);
  // Interconnect + bank energy attributable per memory access.
  const double ic_per_access =
      (e.tile_interconnect + e.global_interconnect) / loads;
  const double mem_per_access = e.banks / loads;
  Table m({"quantity", "value"});
  m.add_row({"memory accesses", Table::num(loads, 0)});
  m.add_row({"remote fraction",
             Table::num(static_cast<double>(cs.loads_remote + cs.stores_remote) /
                            loads,
                        2)});
  m.add_row({"avg interconnect energy / access (pJ)",
             Table::num(ic_per_access, 2)});
  m.add_row({"avg bank energy / access (pJ)", Table::num(mem_per_access, 2)});
  m.add_row({"expected range", "4.5 (all-local) .. 13.0 (all cross-group)"});
  m.print(std::cout);

  Json results = Json::object();
  results.set("energy_per_instruction", t.to_json());
  results.set("registry_rows", reg.to_json());
  results.set("paper_ratios", r.to_json());
  results.set("measured_cross_check", m.to_json());
  runner::write_bench_results(opts, pool.num_threads(), wall,
                              std::move(results));
  return 0;
}
