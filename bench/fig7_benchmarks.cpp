// Figure 7 (Section V-C): runtime of the three signal-processing benchmarks
// on every topology, with (Top◇S) and without (Top◇) the scrambling logic,
// relative to the ideal full-crossbar baselines (TopX / TopXS).
// Also reproduces the text claims (T4):
//   * TopH reaches at least ~80 % of the ideal baseline,
//   * Top1 is up to ~3x worse than TopH/Top4 in the extreme cases,
//   * the scrambling logic gains up to ~20 % on real kernels,
//   * with dct(+S) all topologies match the baseline.
//
// The 24 (kernel, topology, scrambling) simulations are independent — each
// owns its System — and run through the work-stealing pool.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>

#include "common/report.hpp"
#include "core/system.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/dct.hpp"
#include "kernels/kernel.hpp"
#include "kernels/matmul.hpp"
#include "runner/bench_cli.hpp"
#include "runner/parallel.hpp"

using namespace mempool;
using namespace mempool::runner;

namespace {

uint64_t run_one(Topology topo, bool scramble, const std::string& kernel,
                 EngineMode engine, unsigned sim_threads) {
  const ClusterConfig cfg = ClusterConfig::paper(topo, scramble);
  System sys(cfg);
  sys.configure_engine(engine, sim_threads);
  kernels::KernelProgram kp;
  if (kernel == "matmul") {
    kp = kernels::build_matmul(cfg, 64);
  } else if (kernel == "2dconv") {
    kp = kernels::build_conv2d(cfg, 256);
  } else {
    kp = kernels::build_dct(cfg);
  }
  const uint64_t cycles = kernels::run_kernel(sys, kp, 50'000'000);
  std::fprintf(stderr, "  %-6s %-6s: %8llu cycles\n",
               cfg.display_name().c_str(), kernel.c_str(),
               static_cast<unsigned long long>(cycles));
  return cycles;
}

struct Case {
  std::string kernel;
  Topology topo;
  bool scramble;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = parse_bench_options(&argc, argv, "fig7_benchmarks");

  print_banner(std::cout,
               "Figure 7 — benchmark performance relative to the ideal "
               "full-crossbar baseline (256 cores, results verified)");

  const std::vector<std::string> kernels = {"matmul", "2dconv", "dct"};
  const std::vector<Topology> topos = {Topology::kTop1, Topology::kTop4,
                                       Topology::kTopH, Topology::kTopX};

  std::vector<Case> cases;
  for (const auto& k : kernels)
    for (Topology t : topos)
      for (bool s : {false, true}) cases.push_back({k, t, s});

  ThreadPool pool(opts.threads);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<uint64_t> measured = run_indexed(
      pool, cases.size(), [&](std::size_t i) {
        return run_one(cases[i].topo, cases[i].scramble, cases[i].kernel,
                       opts.engine, opts.sim_threads);
      });
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  // cycles[kernel][display_name]
  std::map<std::string, std::map<std::string, uint64_t>> cycles;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ClusterConfig cfg =
        ClusterConfig::paper(cases[i].topo, cases[i].scramble);
    cycles[cases[i].kernel][cfg.display_name()] = measured[i];
  }

  // Relative performance = baseline_cycles / cycles (higher is better);
  // Top◇ is normalized to TopX, Top◇S to TopXS, as in the paper.
  Table rel({"benchmark", "Top1", "Top4", "TopH", "TopX", "Top1S", "Top4S",
             "TopHS", "TopXS"});
  for (const auto& k : kernels) {
    auto& c = cycles[k];
    auto r = [&](const std::string& name, const std::string& base) {
      return Table::num(static_cast<double>(c[base]) / static_cast<double>(c[name]), 2);
    };
    rel.add_row({k, r("Top1", "TopX"), r("Top4", "TopX"), r("TopH", "TopX"),
                 "1.00", r("Top1S", "TopXS"), r("Top4S", "TopXS"),
                 r("TopHS", "TopXS"), "1.00"});
  }
  std::cout << "\nRelative performance (baseline cycles / cycles):\n";
  rel.print(std::cout);

  Table raw({"benchmark", "Top1", "Top4", "TopH", "TopX", "Top1S", "Top4S",
             "TopHS", "TopXS"});
  for (const auto& k : kernels) {
    auto& c = cycles[k];
    raw.add_row({k, std::to_string(c["Top1"]), std::to_string(c["Top4"]),
                 std::to_string(c["TopH"]), std::to_string(c["TopX"]),
                 std::to_string(c["Top1S"]), std::to_string(c["Top4S"]),
                 std::to_string(c["TopHS"]), std::to_string(c["TopXS"])});
  }
  std::cout << "\nRaw cycle counts:\n";
  raw.print(std::cout);

  // --- Section V-C text claims -------------------------------------------------
  std::cout << "\nSummary vs paper (Section V-C):\n";
  Table s({"claim", "paper", "measured"});
  double worst_toph = 1e9;
  for (const auto& k : kernels) {
    worst_toph = std::min(
        worst_toph,
        static_cast<double>(cycles[k]["TopXS"]) /
        static_cast<double>(cycles[k]["TopHS"]));
  }
  s.add_row({"TopHS vs ideal baseline (worst kernel = matmul)", ">= ~0.80",
             Table::num(worst_toph, 2)});
  // "TopH generally beats Top4": count kernels where TopHS <= Top4S cycles.
  int toph_wins = 0;
  for (const auto& k : kernels) {
    if (cycles[k]["TopHS"] <= cycles[k]["Top4S"]) ++toph_wins;
  }
  s.add_row({"TopH beats Top4 (kernels won, scrambled)", "generally",
             std::to_string(toph_wins) + "/3"});
  // "they both outperform Top1 by a factor of three in the extreme cases".
  double top1_factor = 0;
  for (const auto& k : kernels) {
    top1_factor = std::max(
        top1_factor,
        static_cast<double>(cycles[k]["Top1S"]) /
            static_cast<double>(cycles[k]["TopHS"]));
    top1_factor = std::max(
        top1_factor,
        static_cast<double>(cycles[k]["Top1"]) /
            static_cast<double>(cycles[k]["TopH"]));
  }
  s.add_row({"Top1 vs TopH/Top4, extreme case", "~3x slower",
             Table::num(top1_factor, 2) + "x"});
  const double dct_match =
      static_cast<double>(cycles["dct"]["TopXS"]) /
      static_cast<double>(cycles["dct"]["TopHS"]);
  s.add_row({"dct+S matches baseline on every topology", "~1.00",
             Table::num(dct_match, 2)});
  // "Without the scrambling logic ... significant performance penalty,
  // especially for Top1" (dct).
  const double dct_noscramble_penalty =
      static_cast<double>(cycles["dct"]["Top1"]) /
      static_cast<double>(cycles["dct"]["Top1S"]);
  s.add_row({"dct penalty without scrambling on Top1", "large",
             Table::num(dct_noscramble_penalty, 1) + "x"});
  s.print(std::cout);

  Json cj = Json::object();
  for (const auto& k : kernels) {
    Json per_topo = Json::object();
    for (const auto& [name, cyc] : cycles[k]) per_topo.set(name, cyc);
    cj.set(k, std::move(per_topo));
  }
  Json results = Json::object();
  results.set("cycles", std::move(cj));
  results.set("summary", s.to_json());
  write_bench_results(opts, pool.num_threads(), wall, std::move(results));
  return 0;
}
