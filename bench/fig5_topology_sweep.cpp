// Figure 5 (Section V-A): throughput and average round-trip latency of the
// three candidate topologies as a function of the injected load, with
// uniformly distributed bank destinations on the full 256-core cluster.
// Also reproduces the Section V-A text claims (T2 in DESIGN.md):
//   * Top1 congests at ~0.10 request/core/cycle,
//   * Top4/TopH sustain ~0.38,
//   * TopH stays below ~6 cycles at 0.33,
//   * TopH's throughput edges out Top4's.

#include <cstdio>
#include <iostream>

#include "common/report.hpp"
#include "traffic/experiment.hpp"

using namespace mempool;

namespace {

TrafficPoint point(Topology topo, double lambda) {
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(topo, /*scrambling=*/false);
  e.lambda = lambda;
  e.warmup_cycles = 1000;
  e.measure_cycles = 4000;
  e.drain_cycles = 2000;
  return run_traffic_point(e);
}

/// Saturation load: the highest offered load still accepted within 5 %.
double saturation(const std::vector<double>& loads,
                  const std::vector<TrafficPoint>& pts) {
  double sat = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].accepted >= 0.95 * loads[i]) sat = pts[i].accepted;
  }
  return sat;
}

}  // namespace

int main() {
  print_banner(std::cout, "Figure 5 — network analysis of Top1 / Top4 / TopH "
                          "(256 generators, uniform banks)");

  const std::vector<double> loads = {0.02, 0.05, 0.08, 0.10, 0.12, 0.16, 0.20,
                                     0.25, 0.29, 0.33, 0.38, 0.42, 0.46, 0.50};
  const Topology topos[] = {Topology::kTop1, Topology::kTop4, Topology::kTopH};

  std::vector<std::vector<TrafficPoint>> results(3);
  for (int t = 0; t < 3; ++t) {
    results[t].reserve(loads.size());
    for (double l : loads) {
      results[t].push_back(point(topos[t], l));
      std::fprintf(stderr, ".");
    }
  }
  std::fprintf(stderr, "\n");

  Table thr({"load (req/core/cy)", "Top1 accepted", "Top4 accepted",
             "TopH accepted"});
  Table lat({"load (req/core/cy)", "Top1 avg lat", "Top4 avg lat",
             "TopH avg lat"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    thr.add_row({Table::num(loads[i], 2), Table::num(results[0][i].accepted, 3),
                 Table::num(results[1][i].accepted, 3),
                 Table::num(results[2][i].accepted, 3)});
    lat.add_row({Table::num(loads[i], 2),
                 Table::num(results[0][i].avg_latency, 1),
                 Table::num(results[1][i].avg_latency, 1),
                 Table::num(results[2][i].avg_latency, 1)});
  }
  std::cout << "\n(a) Throughput (request/core/cycle):\n";
  thr.print(std::cout);
  std::cout << "\n(b) Average round-trip latency (cycles):\n";
  lat.print(std::cout);

  // --- Section V-A text claims ------------------------------------------------
  const double sat1 = saturation(loads, results[0]);
  const double sat4 = saturation(loads, results[1]);
  const double sath = saturation(loads, results[2]);
  double lat_h_033 = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (loads[i] == 0.33) lat_h_033 = results[2][i].avg_latency;
  }

  std::cout << "\nSummary vs paper (Section V-A):\n";
  Table s({"claim", "paper", "measured"});
  s.add_row({"Top1 saturation load", "~0.10", Table::num(sat1, 3)});
  s.add_row({"Top4 saturation load", "~0.38", Table::num(sat4, 3)});
  s.add_row({"TopH saturation load", "~0.38", Table::num(sath, 3)});
  s.add_row({"TopH avg latency @0.33", "~6 cycles", Table::num(lat_h_033, 2)});
  s.add_row({"TopH saturation > Top4", "yes",
             sath >= sat4 * 0.98 ? "yes" : "NO"});
  s.print(std::cout);
  return 0;
}
