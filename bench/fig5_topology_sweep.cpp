// Figure 5 (Section V-A): throughput and average round-trip latency of the
// three candidate topologies as a function of the injected load, with
// uniformly distributed bank destinations on the full 256-core cluster.
// Also reproduces the Section V-A text claims (T2 in DESIGN.md):
//   * Top1 congests at ~0.10 request/core/cycle,
//   * Top4/TopH sustain ~0.38,
//   * TopH stays below ~6 cycles at 0.33,
//   * TopH's throughput edges out Top4's.
//
// All 42 (topology, λ) points run through the parallel sweep runner; the
// result order — and with it every number printed below — is bit-identical
// for any --threads value.

#include <iostream>

#include "common/report.hpp"
#include "runner/bench_cli.hpp"
#include "runner/results.hpp"
#include "runner/runner.hpp"

using namespace mempool;
using namespace mempool::runner;

namespace {

/// Saturation load: the highest offered load still accepted within 5 %.
double saturation(const std::vector<double>& loads,
                  const TrafficPoint* pts) {
  double sat = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (pts[i].accepted >= 0.95 * loads[i]) sat = pts[i].accepted;
  }
  return sat;
}

}  // namespace

static int bench_main(int argc, char** argv) {
  const BenchOptions opts =
      parse_bench_options(&argc, argv, "fig5_topology_sweep",
                          /*accepts_topology=*/false, /*accepts_memory=*/true);

  print_banner(std::cout, "Figure 5 — network analysis of Top1 / Top4 / TopH "
                          "(256 generators, uniform banks)");

  const std::vector<double> loads = {0.02, 0.05, 0.08, 0.10, 0.12, 0.16, 0.20,
                                     0.25, 0.29, 0.33, 0.38, 0.42, 0.46, 0.50};

  SweepSpec spec;
  spec.base.cluster = ClusterConfig::paper(Topology::kTop1, /*scrambling=*/false);
  spec.base.warmup_cycles = 1000;
  spec.base.measure_cycles = 4000;
  spec.base.drain_cycles = 2000;
  spec.topologies = {Topology::kTop1, Topology::kTop4, Topology::kTopH};
  spec.lambdas = loads;
  if (!opts.memory.empty()) spec.base.cluster.memory = MemorySpec{opts.memory};
  opts.apply_engine(&spec.base);

  const SweepResult res = run_sweep(spec, opts.runner());
  // Point index layout (SweepSpec::expand): topology-major, λ inner.
  auto pts = [&](std::size_t topo) { return &res.points[topo * loads.size()]; };

  Table thr({"load (req/core/cy)", "Top1 accepted", "Top4 accepted",
             "TopH accepted"});
  Table lat({"load (req/core/cy)", "Top1 avg lat", "Top4 avg lat",
             "TopH avg lat"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    thr.add_row({Table::num(loads[i], 2), Table::num(pts(0)[i].accepted, 3),
                 Table::num(pts(1)[i].accepted, 3),
                 Table::num(pts(2)[i].accepted, 3)});
    lat.add_row({Table::num(loads[i], 2),
                 Table::num(pts(0)[i].avg_latency, 1),
                 Table::num(pts(1)[i].avg_latency, 1),
                 Table::num(pts(2)[i].avg_latency, 1)});
  }
  std::cout << "\n(a) Throughput (request/core/cycle):\n";
  thr.print(std::cout);
  std::cout << "\n(b) Average round-trip latency (cycles):\n";
  lat.print(std::cout);

  // --- Section V-A text claims ------------------------------------------------
  const double sat1 = saturation(loads, pts(0));
  const double sat4 = saturation(loads, pts(1));
  const double sath = saturation(loads, pts(2));
  double lat_h_033 = 0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    if (loads[i] == 0.33) lat_h_033 = pts(2)[i].avg_latency;
  }

  std::cout << "\nSummary vs paper (Section V-A):\n";
  Table s({"claim", "paper", "measured"});
  s.add_row({"Top1 saturation load", "~0.10", Table::num(sat1, 3)});
  s.add_row({"Top4 saturation load", "~0.38", Table::num(sat4, 3)});
  s.add_row({"TopH saturation load", "~0.38", Table::num(sath, 3)});
  s.add_row({"TopH avg latency @0.33", "~6 cycles", Table::num(lat_h_033, 2)});
  s.add_row({"TopH saturation > Top4", "yes",
             sath >= sat4 * 0.98 ? "yes" : "NO"});
  s.print(std::cout);

  Json results = Json::object();
  results.set("sweep", sweep_to_json(res));
  results.set("summary", s.to_json());
  write_bench_results(opts, res.threads, res.wall_seconds, std::move(results));
  return 0;
}

int main(int argc, char** argv) {
  // A watchdog abort (--stall-horizon) exits 3 with the stall report on
  // stderr instead of std::terminate.
  return guarded_bench_main("fig5_topology_sweep",
                            [&] { return bench_main(argc, argv); });
}
