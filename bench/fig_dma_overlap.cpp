// DMA compute/transfer overlap on the tcdm+l2 memory system: the tiled,
// double-buffered matmul (kernels/matmul_tiled.cpp) against its serialized
// twin — same blocks, same DMA transfers, but every transfer waited on
// immediately, exposing its full latency.
//
// Reported metric:
//
//   overlap = (cycles_serialized - cycles_double_buffered) / dma_busy
//
// with dma_busy the busiest group engine's total busy window in the
// double-buffered run: the fraction of the DMA time that double buffering
// hid behind compute (1.0 = every transferred cycle overlapped, 0 = none).
// At the paper point (256-core TopH, 1024x1024x64 matmul, 128x128 blocks —
// a 4.5 MiB working set against the 1 MiB L1) the acceptance bar is >= 0.5.
//
// Results file: mempool.bench.v1 envelope with a `mempool.dma.v1` object
// under results (config, both runs' cycles + memory counters, overlap).
//
//   ./fig_dma_overlap            # the 256-core paper point
//   ./fig_dma_overlap --mini     # 64-core mini cluster (CI smoke)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "common/report.hpp"
#include "core/system.hpp"
#include "kernels/kernel.hpp"
#include "kernels/matmul.hpp"
#include "mem/memsys.hpp"
#include "runner/bench_cli.hpp"
#include "runner/results.hpp"

using namespace mempool;
using namespace mempool::runner;

namespace {

struct RunOut {
  uint64_t cycles = 0;
  MemoryStats mem;
};

RunOut run_variant(const ClusterConfig& cfg,
                   const kernels::TiledMatmulParams& p, EngineMode engine,
                   unsigned sim_threads) {
  System sys(cfg);
  sys.configure_engine(engine, sim_threads);
  RunOut out;
  out.cycles =
      kernels::run_kernel(sys, kernels::build_matmul_tiled(cfg, p), 2'000'000'000ull);
  out.mem = sys.cluster().memory_stats();
  return out;
}

Json stats_json(const RunOut& r) {
  Json j = Json::object();
  j.set("cycles", r.cycles);
  j.set("dma_descriptors", r.mem.dma_descriptors);
  j.set("dma_slices", r.mem.dma_slices);
  j.set("dma_bursts", r.mem.dma_bursts);
  j.set("dma_words_in", r.mem.dma_words_in);
  j.set("dma_words_out", r.mem.dma_words_out);
  j.set("dma_busy_cycles", r.mem.dma_busy_cycles);
  j.set("dma_busy_cycles_max", r.mem.dma_busy_cycles_max);
  j.set("l2_reads", r.mem.l2_reads);
  j.set("l2_writes", r.mem.l2_writes);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts =
      parse_bench_options(&argc, argv, "fig_dma_overlap",
                          /*accepts_topology=*/false, /*accepts_memory=*/true);

  bool mini = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mini") == 0) {
      mini = true;
    } else {
      std::fprintf(stderr, "fig_dma_overlap: unknown argument '%s'\n",
                   argv[i]);
      return 2;
    }
  }

  ClusterConfig cfg = mini ? ClusterConfig::mini(Topology::kTopH, true)
                           : ClusterConfig::paper(Topology::kTopH, true);
  cfg.memory = MemorySpec{opts.memory.empty() ? "tcdm+l2" : opts.memory};
  if (!MemoryRegistry::get(cfg.memory.name).provides_dma()) {
    std::fprintf(stderr,
                 "fig_dma_overlap: memory system '%s' has no DMA engine — "
                 "this bench needs one (e.g. tcdm+l2)\n",
                 cfg.memory.name.c_str());
    return 2;
  }
  cfg.validate();

  kernels::TiledMatmulParams p;
  if (mini) {
    p.m = p.n = 256;
    p.k = 32;
    p.rb = p.cb = 64;
  } else {
    // The paper point: working set (A 256 KiB + Bt 256 KiB + C 4 MiB) is
    // 4.5x the 1 MiB L1.
    p.m = p.n = 1024;
    p.k = 64;
    p.rb = p.cb = 128;
  }

  print_banner(std::cout,
               "DMA compute/transfer overlap — tiled double-buffered matmul "
               "vs serialized transfers (" +
                   std::string(mini ? "mini 64-core" : "paper 256-core") +
                   " cluster, results verified)");
  std::printf("matmul %ux%ux%u, %ux%u blocks, memory system '%s'\n\n", p.m,
              p.n, p.k, p.rb, p.cb, cfg.memory.name.c_str());

  const auto t0 = std::chrono::steady_clock::now();
  p.double_buffer = true;
  const RunOut db = run_variant(cfg, p, opts.engine, opts.sim_threads);
  p.double_buffer = false;
  const RunOut serial = run_variant(cfg, p, opts.engine, opts.sim_threads);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double hidden =
      static_cast<double>(serial.cycles) - static_cast<double>(db.cycles);
  const double busy = static_cast<double>(db.mem.dma_busy_cycles_max);
  const double overlap = busy > 0 ? std::min(1.0, hidden / busy) : 0.0;

  Table tab({"variant", "cycles", "dma busy (max group)", "words moved"});
  tab.add_row({"double-buffered", std::to_string(db.cycles),
           std::to_string(db.mem.dma_busy_cycles_max),
           std::to_string(db.mem.dma_words_in + db.mem.dma_words_out)});
  tab.add_row({"serialized", std::to_string(serial.cycles),
           std::to_string(serial.mem.dma_busy_cycles_max),
           std::to_string(serial.mem.dma_words_in +
                          serial.mem.dma_words_out)});
  tab.print(std::cout);
  std::printf("\ncompute/transfer overlap: %.1f%% of the DMA busy time "
              "hidden behind compute\n",
              100.0 * overlap);

  Json results = Json::object();
  results.set("schema", "mempool.dma.v1");
  Json config = Json::object();
  config.set("topology", cfg.topology.name);
  config.set("memory", cfg.memory.name);
  config.set("num_cores", cfg.num_cores());
  config.set("m", p.m);
  config.set("n", p.n);
  config.set("k", p.k);
  config.set("rb", p.rb);
  config.set("cb", p.cb);
  results.set("config", std::move(config));
  results.set("double_buffered", stats_json(db));
  results.set("serialized", stats_json(serial));
  results.set("overlap_fraction", overlap);
  write_bench_results(opts, 1, wall, std::move(results));
  return 0;
}
