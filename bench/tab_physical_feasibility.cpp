// T6 (Sections VI-B/C): physical feasibility of every physically modeled
// topology from the analytic floorplan/wiring model — total wiring, centre
// congestion (Top4 ≈ 4x Top1 -> unroutable), wiring spread (TopH distributes
// cells and wiring), and the first-order timing estimate (critical path
// ~37 % wire delay, ~480 MHz worst case).
//
// The topology set is the FabricRegistry: each plugin supplies its own
// floorplan and wire extraction (FabricTopology::wires), and each is judged
// against the monolithic central-hub baseline on its own die — so the
// 1024-core TopH2 shows up here without any edit to the physical model.
//
// The heavy part — rasterizing the routing-demand maps — runs per topology
// on the runner pool.

#include <chrono>
#include <iostream>

#include "common/report.hpp"
#include "noc/fabric.hpp"
#include "physical/feasibility.hpp"
#include "runner/bench_cli.hpp"
#include "runner/parallel.hpp"

using namespace mempool::physical;
using mempool::FabricRegistry;
using mempool::FabricTopology;
using mempool::Json;
using mempool::Table;
using mempool::analyze_all_topologies;
using mempool::print_banner;

int main(int argc, char** argv) {
  const mempool::runner::BenchOptions opts =
      mempool::runner::parse_bench_options(&argc, argv,
                                           "tab_physical_feasibility");

  print_banner(std::cout,
               "T6 — physical feasibility (analytic floorplan model, "
               "8x8 tiles of 425 um in a 4.6 mm die)");

  const Floorplan fp;
  std::cout << "tile area fraction: " << Table::num(100 * fp.tile_area_fraction(), 1)
            << "% (paper: 55%)\n\n";

  mempool::runner::ThreadPool pool(opts.threads);

  const auto reports = analyze_all_topologies();
  Table t({"topology", "wire demand (bit*mm)", "center congestion vs Top1",
           "spread (CV)", "longest wire (mm)", "critical path (ns)",
           "wire delay", "fmax (MHz)", "routable"});
  for (const auto& r : reports) {
    t.add_row({r.name, Table::num(r.total_wire_bit_mm, 0),
               Table::num(r.center_ratio_vs_top1, 2) + "x",
               Table::num(r.spread, 2), Table::num(r.longest_wire_mm, 2),
               Table::num(r.critical_path_ns, 2),
               Table::num(100 * r.wire_delay_fraction, 0) + "%",
               Table::num(r.fmax_mhz, 0),
               r.feasible ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << "\nPaper claims: Top4 is ~4x more congested than Top1 and "
               "physically infeasible; TopH distributes the wiring and "
               "closes timing at 480 MHz (SS) with 37% of the critical path "
               "in wire delay. TopH2 (1024 cores, double-edge die) repeats "
               "the TopH recipe one level up.\n";

  // Congestion heat maps (normalized 0-9), the Figure-9 analogue — one pool
  // task per topology, each on the plugin's own floorplan.
  const std::vector<std::string> map_topos = {"Top1", "TopH", "TopH2"};
  // wall_seconds covers only this parallel section, as in every other bench.
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::vector<std::string>> maps =
      mempool::runner::run_indexed(pool, map_topos.size(), [&](std::size_t i) {
        const FabricTopology& topo = FabricRegistry::get(map_topos[i]);
        const mempool::ClusterConfig cfg = mempool::ClusterConfig::paper(
            mempool::TopologySpec{map_topos[i]}, true);
        const Floorplan tfp(topo.floorplan_params(cfg));
        CongestionMap m(tfp.params().die_mm, 16);
        m.route_all(topo.wires(cfg, tfp));
        return m.ascii_map();
      });
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  for (std::size_t i = 0; i < map_topos.size(); ++i) {
    std::cout << "\n" << map_topos[i] << " routing-demand map (0-9):\n";
    for (const auto& row : maps[i]) std::cout << "  " << row << '\n';
  }

  Json jmaps = Json::object();
  for (std::size_t i = 0; i < map_topos.size(); ++i) {
    Json rows = Json::array();
    for (const auto& row : maps[i]) rows.push_back(row);
    jmaps.set(map_topos[i], std::move(rows));
  }
  Json results = Json::object();
  results.set("feasibility", t.to_json());
  results.set("congestion_maps", std::move(jmaps));
  mempool::runner::write_bench_results(opts, pool.num_threads(), wall,
                                       std::move(results));
  return 0;
}
