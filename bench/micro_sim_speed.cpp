// Simulator performance microbenchmark (not a paper artifact): simulated
// cycles per wall-clock second for representative workloads. Useful when
// tuning the model or reviewing performance regressions.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/system.hpp"
#include "isa/text_asm.hpp"
#include "traffic/experiment.hpp"

using namespace mempool;

namespace {

void BM_TrafficCycles(benchmark::State& state) {
  const auto topo = static_cast<Topology>(state.range(0));
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(topo, false);
  e.lambda = 0.2;
  e.warmup_cycles = 100;
  e.measure_cycles = static_cast<uint64_t>(state.range(1));
  e.drain_cycles = 0;
  uint64_t cycles = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_traffic_point(e));
    cycles += e.warmup_cycles + e.measure_cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_ExecutionCycles(benchmark::State& state) {
  // 256 Snitch cores spinning on an arithmetic loop.
  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  const std::string src = R"(
    _start:
      li t0, 100000
    loop:
      addi t0, t0, -1
      bnez t0, loop
      li t1, 0xC0000000
      sw zero, 0(t1)
  )";
  uint64_t cycles = 0;
  for (auto _ : state) {
    System sys(cfg);
    sys.load_program(isa::assemble_text(src));
    const auto r = sys.run(static_cast<uint64_t>(state.range(0)));
    cycles += r.cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_TrafficCycles)
    ->Args({static_cast<int>(Topology::kTop1), 2000})
    ->Args({static_cast<int>(Topology::kTopH), 2000})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecutionCycles)->Arg(5000)->Iterations(3)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
