// Simulator performance microbenchmark (not a paper artifact): simulated
// cycles per wall-clock second for representative workloads. Useful when
// tuning the model or reviewing performance regressions.
//
// Besides the Google-Benchmark suite, `--speedup_json=PATH` runs a direct
// engine comparison — dense vs activity-driven, plus the sharded engine
// across a sim-threads axis (1/2/4/8) on the group-sharded topologies — and
// writes a mempool.speedup.v3 JSON artifact (uploaded per-PR by CI so
// scheduler regressions are visible); add `--speedup_only` to skip the
// benchmark suite. v3 adds absolute simulated cycles/sec per point and a
// `paper_point` block (the 256-core TopH λ=0.05 fig5 point: active-engine
// cycles/sec, cycles/sec/shard, and the sharded single-thread rate).
// `--speedup_baseline=PATH` reads a committed v1/v2/v3 artifact
// (runner::speedup_from_json) and exits non-zero when the measured
// dense-to-active aggregate regressed more than 20% below it, or — against
// a v3 baseline recorded on a comparable host — when the paper point's
// absolute cycles/sec dropped more than 20%. Sharded wall-clock numbers are
// recorded for whatever parallelism the host actually has (host_cpus in the
// artifact). `--profile` runs the paper point under each engine with
// Engine::set_profile and prints the per-phase wall-clock breakdown.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "core/cluster.hpp"
#include "core/system.hpp"
#include "mem/imem.hpp"
#include "isa/text_asm.hpp"
#include "noc/fabric.hpp"
#include "noc/monitor.hpp"
#include "runner/results.hpp"
#include "runner/runner.hpp"
#include "runner/shard_gang.hpp"
#include "sim/engine.hpp"
#include "traffic/experiment.hpp"
#include "traffic/generator.hpp"
#include "traffic/probe.hpp"

using namespace mempool;

namespace {

/// Parallel sweep throughput: the fig5-style grid sharded over N workers.
/// Compare Threads:1 against higher counts to see the runner's scaling on
/// this host.
void BM_ParallelSweep(benchmark::State& state) {
  runner::SweepSpec spec;
  spec.base.cluster = ClusterConfig::paper(Topology::kTopH, false);
  spec.base.warmup_cycles = 100;
  spec.base.measure_cycles = 500;
  spec.base.drain_cycles = 100;
  spec.topologies = {Topology::kTop1, Topology::kTop4, Topology::kTopH};
  spec.lambdas = {0.05, 0.15, 0.25, 0.35};
  runner::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  uint64_t points = 0;
  for (auto _ : state) {
    const runner::SweepResult res = runner::run_sweep(spec, opts);
    benchmark::DoNotOptimize(res.points.data());
    points += res.points.size();
  }
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(points), benchmark::Counter::kIsRate);
}

/// Traffic-point throughput per engine mode; range(2) selects dense (1) or
/// activity-driven (0) so the two schedulers appear side by side in the
/// benchmark table.
void BM_TrafficCycles(benchmark::State& state) {
  const auto topo = static_cast<Topology>(state.range(0));
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(topo, false);
  e.lambda = 0.2;
  e.warmup_cycles = 100;
  e.measure_cycles = static_cast<uint64_t>(state.range(1));
  e.drain_cycles = 0;
  e.engine = state.range(2) != 0 ? EngineMode::kDense : EngineMode::kActive;
  uint64_t cycles = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_traffic_point(e));
    cycles += e.warmup_cycles + e.measure_cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

/// The zero-load regime the activity-driven scheduler targets: λ = 0.02 on
/// the full paper cluster, mostly-idle fabric.
void BM_LowLoadCycles(benchmark::State& state) {
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(Topology::kTopH, false);
  e.lambda = 0.02;
  e.warmup_cycles = 100;
  e.measure_cycles = 2000;
  e.drain_cycles = 500;
  e.engine = state.range(0) != 0 ? EngineMode::kDense : EngineMode::kActive;
  uint64_t cycles = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_traffic_point(e));
    cycles += e.warmup_cycles + e.measure_cycles + e.drain_cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_ExecutionCycles(benchmark::State& state) {
  // 256 Snitch cores spinning on an arithmetic loop.
  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  const std::string src = R"(
    _start:
      li t0, 100000
    loop:
      addi t0, t0, -1
      bnez t0, loop
      li t1, 0xC0000000
      sw zero, 0(t1)
  )";
  uint64_t cycles = 0;
  for (auto _ : state) {
    System sys(cfg);
    sys.load_program(isa::assemble_text(src));
    const auto r = sys.run(static_cast<uint64_t>(state.range(0)));
    cycles += r.cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

// --- dense-vs-active speedup artifact ---------------------------------------

double time_point_seconds(const TrafficExperimentConfig& cfg, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    TrafficPoint p = run_traffic_point(cfg);
    benchmark::DoNotOptimize(&p);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

double time_sharded_seconds(TrafficExperimentConfig cfg, unsigned sim_threads,
                            int reps) {
  cfg.engine = EngineMode::kSharded;
  cfg.sim_threads = sim_threads;
  return time_point_seconds(cfg, reps);
}

/// Wall-clock of the tab_zero_load probe sweep (core 0 -> every tile, one
/// load at a time on an otherwise idle cluster), cluster construction
/// excluded. This is the regime the paper's 5-cycle claim lives in and the
/// activity-driven scheduler's best case: a handful of components act per
/// cycle while the other ~1600 sleep.
double time_zero_load_seconds(Topology topo, bool dense) {
  const ClusterConfig cfg = ClusterConfig::paper(topo, true);
  InstrMem imem(4096);
  Engine engine;
  engine.set_dense(dense);
  Cluster cluster(cfg, &imem);
  std::vector<std::unique_ptr<ProbeClient>> probes;
  std::vector<Client*> clients;
  for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
    probes.push_back(std::make_unique<ProbeClient>(
        static_cast<uint16_t>(c), static_cast<uint16_t>(c / cfg.cores_per_tile),
        &cluster.layout()));
    clients.push_back(probes.back().get());
  }
  cluster.attach_clients(clients);
  cluster.build(engine);

  const auto t0 = std::chrono::steady_clock::now();
  uint32_t expected = 0;
  for (int rep = 0; rep < 20; ++rep) {
    for (uint32_t t = 0; t < cfg.num_tiles; ++t) {
      probes[0]->arm(t * cfg.seq_region_bytes);
      ++expected;
      while (probes[0]->responses() < expected) engine.step();
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  MEMPOOL_CHECK(probes[0]->responses() == expected);
  return dt.count();
}

int run_speedup(const std::string& json_path, const std::string& baseline_path) {
  // The low-λ half of the fig5 sweep (exact fig5 point shape: 1000 warmup,
  // 4000 measure, 2000 drain) plus the tab_zero_load probe sweep, on the
  // full 256-core paper cluster — the regimes where the fabric is mostly
  // idle and the activity-driven scheduler must deliver (target: >= 3x).
  // The group-sharded topologies additionally time the sharded engine over
  // the sim-threads axis; λ = 0.05 with all threads is the "high-load sweeps
  // stop being wall-clock-bound on one core" target (>= 3x over
  // single-thread active — achievable when the host has >= 4 cores to put
  // under the 4 group shards).
  const std::vector<Topology> topos = {Topology::kTop1, Topology::kTopH};
  const std::vector<double> lambdas = {0.01, 0.02, 0.05};
  const std::vector<unsigned> sim_threads = {1, 2, 4, 8};
  Json points = Json::array();
  double min_speedup = 1e300;
  double dense_total = 0, active_total = 0;
  double sharded_active_total = 0, sharded_best_total = 0;
  // The v3 paper-point block: the 256-core TopH λ=0.05 fig5 point, the
  // configuration the ISSUE's absolute cycles/sec acceptance is measured at.
  double paper_cps = 0, paper_cps_per_shard = 0, paper_sharded_1t_cps = 0;
  std::printf("%-10s %-6s %8s %12s %12s %8s %12s  %s\n", "workload", "topo",
              "lambda", "dense_s", "active_s", "speedup", "active_cps",
              "sharded_s (1/2/4/8 threads)");
  auto report = [&](const char* workload, Topology topo, double lambda,
                    uint64_t sim_cycles, double dense_s, double active_s,
                    const std::vector<double>& sharded_s) {
    const double speedup = dense_s / active_s;
    const double active_cps =
        sim_cycles > 0 ? static_cast<double>(sim_cycles) / active_s : 0.0;
    min_speedup = std::min(min_speedup, speedup);
    dense_total += dense_s;
    active_total += active_s;
    std::printf("%-10s %-6s %8.3f %12.6f %12.6f %7.2fx %12.0f ", workload,
                topology_name(topo), lambda, dense_s, active_s, speedup,
                active_cps);
    Json rec = Json::object();
    rec.set("workload", workload);
    rec.set("topology", topology_name(topo));
    rec.set("lambda", lambda);
    rec.set("dense_seconds", dense_s);
    rec.set("active_seconds", active_s);
    rec.set("speedup", speedup);
    if (sim_cycles > 0) {
      // Absolute rates (v3): run_traffic_point executes exactly this many
      // cycles, so these are exact, not nominal.
      rec.set("sim_cycles", sim_cycles);
      rec.set("dense_cycles_per_second",
              static_cast<double>(sim_cycles) / dense_s);
      rec.set("active_cycles_per_second", active_cps);
    }
    if (!sharded_s.empty()) {
      double best = 1e300;
      Json sharded = Json::object();
      Json sharded_cps = Json::object();
      for (std::size_t i = 0; i < sharded_s.size(); ++i) {
        sharded.set(std::to_string(sim_threads[i]), sharded_s[i]);
        if (sim_cycles > 0) {
          sharded_cps.set(std::to_string(sim_threads[i]),
                          static_cast<double>(sim_cycles) / sharded_s[i]);
        }
        best = std::min(best, sharded_s[i]);
        std::printf(" %.6f", sharded_s[i]);
      }
      rec.set("sharded_seconds", std::move(sharded));
      if (sim_cycles > 0) {
        rec.set("sharded_cycles_per_second", std::move(sharded_cps));
      }
      rec.set("sharded_speedup", active_s / best);
      sharded_active_total += active_s;
      sharded_best_total += best;
      std::printf("  (best %.2fx over active)", active_s / best);
    }
    std::printf("\n");
    points.push_back(std::move(rec));
  };
  uint32_t paper_shards = 1;
  for (Topology topo : topos) {
    report("zero_load", topo, 0.0, 0, time_zero_load_seconds(topo, true),
           time_zero_load_seconds(topo, false), {});
    for (double lambda : lambdas) {
      TrafficExperimentConfig cfg;
      cfg.cluster = ClusterConfig::paper(topo, false);
      cfg.lambda = lambda;  // fig5 point shape: default cycle counts
      const uint64_t sim_cycles =
          cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles;
      cfg.engine = EngineMode::kDense;
      const double dense_s = time_point_seconds(cfg, 2);
      cfg.engine = EngineMode::kActive;
      const double active_s = time_point_seconds(cfg, 2);
      std::vector<double> sharded_s;
      const FabricTopology& plugin =
          FabricRegistry::get(cfg.cluster.topology.name);
      if (plugin.num_shards(cfg.cluster) > 1) {
        // Only the group-sharded fabrics get the sim-threads axis; a
        // single-shard topology's sharded engine is the active engine plus
        // a no-op lane.
        for (unsigned t : sim_threads) {
          sharded_s.push_back(time_sharded_seconds(cfg, t, 2));
        }
      }
      if (topo == Topology::kTopH && lambda == 0.05) {
        paper_shards = plugin.num_shards(cfg.cluster);
        paper_cps = static_cast<double>(sim_cycles) / active_s;
        paper_cps_per_shard = paper_cps / paper_shards;
        if (!sharded_s.empty()) {
          paper_sharded_1t_cps =
              static_cast<double>(sim_cycles) / sharded_s.front();
        }
      }
      report("fig5", topo, lambda, sim_cycles, dense_s, active_s, sharded_s);
    }
  }
  const double aggregate = dense_total / active_total;
  const double aggregate_sharded =
      sharded_best_total > 0 ? sharded_active_total / sharded_best_total : 0.0;
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf(
      "aggregate dense->active speedup over the low-load half: %.2fx "
      "(target >= 3x); slowest point: %.2fx\n",
      aggregate, min_speedup);
  if (aggregate_sharded > 0) {
    std::printf(
        "aggregate active->sharded speedup (best thread count, %u host "
        "cpus): %.2fx (target >= 3x at lambda=0.05 with >= 4 cores)\n",
        host_cpus, aggregate_sharded);
  }
  std::printf(
      "paper point (TopH lambda=0.05, %u shards): %.0f cycles/s active, "
      "%.0f cycles/s/shard, %.0f cycles/s sharded-1t\n",
      paper_shards, paper_cps, paper_cps_per_shard, paper_sharded_1t_cps);
  if (!json_path.empty()) {
    Json root = Json::object();
    root.set("schema", "mempool.speedup.v3");
    root.set("aggregate_speedup", aggregate);
    root.set("min_speedup", min_speedup);
    root.set("aggregate_sharded_speedup", aggregate_sharded);
    root.set("host_cpus", host_cpus);
    // v3: the absolute-rate block the perf gate keys on. Kept flat and
    // separate from `points` so readers need no per-point search.
    Json paper = Json::object();
    paper.set("topology", topology_name(Topology::kTopH));
    paper.set("lambda", 0.05);
    paper.set("num_shards", paper_shards);
    paper.set("cycles_per_second", paper_cps);
    paper.set("cycles_per_second_per_shard", paper_cps_per_shard);
    paper.set("sharded_1t_cycles_per_second", paper_sharded_1t_cps);
    root.set("paper_point", std::move(paper));
    root.set("points", std::move(points));
    runner::write_json_file(json_path, root);
    std::fprintf(stderr, "speedup results written to %s\n", json_path.c_str());
  }
  if (!baseline_path.empty()) {
    // CI perf smoke: compare against the committed baseline artifact (v1,
    // v2, or v3 — runner::speedup_from_json reads all three). Two gates:
    //  1. The dense-to-active aggregate — a ratio of two runs on the same
    //     machine, comparable across hosts.
    //  2. Against a v3 baseline only: the paper point's absolute cycles/sec.
    //     Wall-clock-based, so the committed baseline must come from the CI
    //     host class; the 20% margin absorbs normal runner noise.
    // Sharded wall-clock depends on host core count and is reported, not
    // gated.
    const runner::SpeedupSummary base =
        runner::speedup_from_json(runner::read_json_file(baseline_path));
    const double floor = 0.8 * base.aggregate_speedup;
    std::printf(
        "baseline %s (%s): aggregate_speedup %.2fx, regression floor "
        "%.2fx\n",
        baseline_path.c_str(), base.schema.c_str(), base.aggregate_speedup,
        floor);
    if (aggregate < floor) {
      std::fprintf(stderr,
                   "PERF REGRESSION: aggregate_speedup %.2fx is more than "
                   "20%% below the committed baseline %.2fx\n",
                   aggregate, base.aggregate_speedup);
      return 1;
    }
    if (base.paper_cycles_per_second > 0) {
      const double cps_floor = 0.8 * base.paper_cycles_per_second;
      std::printf(
          "baseline paper point: %.0f cycles/s, regression floor %.0f\n",
          base.paper_cycles_per_second, cps_floor);
      if (paper_cps < cps_floor) {
        std::fprintf(stderr,
                     "PERF REGRESSION: paper-point %.0f cycles/s is more "
                     "than 20%% below the committed baseline %.0f\n",
                     paper_cps, base.paper_cycles_per_second);
        return 1;
      }
    }
  }
  return aggregate >= 1.0 ? 0 : 1;
}

// --- per-phase profile -------------------------------------------------------

/// One profiled run of the paper point (TopH λ=0.05, fig5 shape) with
/// Engine::set_profile: where the wall-clock goes, phase by phase. Unlike
/// run_speedup this hand-rolls the cluster so the profile toggle can be set
/// on the engine before stepping.
void profile_mode(const char* label, EngineMode mode, unsigned sim_threads) {
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::paper(Topology::kTopH, false);
  cfg.lambda = 0.05;
  cfg.engine = mode;
  cfg.sim_threads = sim_threads;
  const uint64_t cycles =
      cfg.warmup_cycles + cfg.measure_cycles + cfg.drain_cycles;

  InstrMem imem(4096);
  Engine engine;
  engine.set_profile(true);
  if (mode == EngineMode::kDense) engine.set_dense(true);
  Cluster cluster(cfg.cluster, &imem);
  LatencyMonitor monitor(cfg.warmup_cycles);
  monitor.set_measure_end(cfg.warmup_cycles + cfg.measure_cycles);
  TrafficConfig tcfg;
  tcfg.lambda = cfg.lambda;
  tcfg.seed = cfg.seed;
  tcfg.stop_generation_at = cfg.warmup_cycles + cfg.measure_cycles;
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
  std::vector<Client*> clients;
  for (uint32_t c = 0; c < cfg.cluster.num_cores(); ++c) {
    gens.push_back(std::make_unique<TrafficGenerator>(
        "gen" + std::to_string(c), static_cast<uint16_t>(c),
        static_cast<uint16_t>(c / cfg.cluster.cores_per_tile), cfg.cluster,
        &cluster.layout(), &engine, tcfg, &monitor));
    clients.push_back(gens.back().get());
  }
  cluster.attach_clients(clients);
  cluster.build(engine);

  std::unique_ptr<runner::ShardCrew> crew;
  if (mode == EngineMode::kSharded) {
    crew = std::make_unique<runner::ShardCrew>(sim_threads,
                                               cluster.num_shards());
    engine.set_sharded(cluster.num_shards(), crew->executor());
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine.run(cycles);
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;

  const Engine::PhaseProfile p = engine.phase_profile();
  const double total_ns = static_cast<double>(p.evaluate_ns + p.commit_ns +
                                              p.drain_ns + p.barrier_ns);
  auto row = [&](const char* phase, uint64_t ns_raw) {
    const double ns = static_cast<double>(ns_raw);
    std::printf("  %-10s %12.3f ms  %5.1f%%\n", phase, ns / 1e6,
                total_ns > 0 ? 100.0 * ns / total_ns : 0.0);
  };
  std::printf("%s: %llu cycles in %.3f s (%.0f cycles/s)\n", label,
              static_cast<unsigned long long>(cycles), dt.count(),
              static_cast<double>(cycles) / dt.count());
  row("evaluate", p.evaluate_ns);
  row("commit", p.commit_ns);
  row("drain", p.drain_ns);
  row("barrier", p.barrier_ns);
}

void run_profile() {
  std::printf(
      "per-phase profile: paper point (256-core TopH, lambda=0.05, fig5 "
      "shape)\n");
  profile_mode("active", EngineMode::kActive, 1);
  profile_mode("dense", EngineMode::kDense, 1);
  profile_mode("sharded-1t", EngineMode::kSharded, 1);
}

}  // namespace

BENCHMARK(BM_TrafficCycles)
    ->Args({static_cast<int>(Topology::kTop1), 2000, 0})
    ->Args({static_cast<int>(Topology::kTop1), 2000, 1})
    ->Args({static_cast<int>(Topology::kTopH), 2000, 0})
    ->Args({static_cast<int>(Topology::kTopH), 2000, 1})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowLoadCycles)->Arg(0)->Arg(1)->Iterations(3)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_ExecutionCycles)->Arg(5000)->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::string speedup_json;
  std::string speedup_baseline;
  bool run_speedup_pass = false;
  bool speedup_only = false;
  bool profile = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--speedup_json=", 15) == 0) {
      speedup_json = argv[i] + 15;
      run_speedup_pass = true;
    } else if (std::strncmp(argv[i], "--speedup_baseline=", 19) == 0) {
      speedup_baseline = argv[i] + 19;
      run_speedup_pass = true;
    } else if (std::strcmp(argv[i], "--speedup") == 0) {
      run_speedup_pass = true;
    } else if (std::strcmp(argv[i], "--speedup_only") == 0) {
      run_speedup_pass = true;
      speedup_only = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  int rc = 0;
  if (profile) run_profile();
  if (run_speedup_pass) rc = run_speedup(speedup_json, speedup_baseline);
  if (!speedup_only && !profile) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return rc;
}
