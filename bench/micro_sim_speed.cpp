// Simulator performance microbenchmark (not a paper artifact): simulated
// cycles per wall-clock second for representative workloads. Useful when
// tuning the model or reviewing performance regressions.
//
// Besides the Google-Benchmark suite, `--speedup_json=PATH` runs a direct
// engine comparison — dense vs activity-driven, plus the sharded engine
// across a sim-threads axis (1/2/4/8) on the group-sharded topologies — and
// writes a mempool.speedup.v2 JSON artifact (uploaded per-PR by CI so
// scheduler regressions are visible); add `--speedup_only` to skip the
// benchmark suite. `--speedup_baseline=PATH` reads a committed v1 or v2
// artifact (runner::speedup_from_json) and exits non-zero when the measured
// dense-to-active aggregate regressed more than 20% below it — the CI perf
// smoke. Sharded wall-clock numbers are recorded for whatever parallelism
// the host actually has (host_cpus in the artifact); on a single-core box
// they degenerate to overhead measurements, so the baseline gate
// deliberately keys on the machine-independent dense-to-active ratio.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "core/cluster.hpp"
#include "core/system.hpp"
#include "mem/imem.hpp"
#include "isa/text_asm.hpp"
#include "noc/fabric.hpp"
#include "runner/results.hpp"
#include "runner/runner.hpp"
#include "traffic/experiment.hpp"
#include "traffic/probe.hpp"

using namespace mempool;

namespace {

/// Parallel sweep throughput: the fig5-style grid sharded over N workers.
/// Compare Threads:1 against higher counts to see the runner's scaling on
/// this host.
void BM_ParallelSweep(benchmark::State& state) {
  runner::SweepSpec spec;
  spec.base.cluster = ClusterConfig::paper(Topology::kTopH, false);
  spec.base.warmup_cycles = 100;
  spec.base.measure_cycles = 500;
  spec.base.drain_cycles = 100;
  spec.topologies = {Topology::kTop1, Topology::kTop4, Topology::kTopH};
  spec.lambdas = {0.05, 0.15, 0.25, 0.35};
  runner::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  uint64_t points = 0;
  for (auto _ : state) {
    const runner::SweepResult res = runner::run_sweep(spec, opts);
    benchmark::DoNotOptimize(res.points.data());
    points += res.points.size();
  }
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(points), benchmark::Counter::kIsRate);
}

/// Traffic-point throughput per engine mode; range(2) selects dense (1) or
/// activity-driven (0) so the two schedulers appear side by side in the
/// benchmark table.
void BM_TrafficCycles(benchmark::State& state) {
  const auto topo = static_cast<Topology>(state.range(0));
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(topo, false);
  e.lambda = 0.2;
  e.warmup_cycles = 100;
  e.measure_cycles = static_cast<uint64_t>(state.range(1));
  e.drain_cycles = 0;
  e.engine = state.range(2) != 0 ? EngineMode::kDense : EngineMode::kActive;
  uint64_t cycles = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_traffic_point(e));
    cycles += e.warmup_cycles + e.measure_cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

/// The zero-load regime the activity-driven scheduler targets: λ = 0.02 on
/// the full paper cluster, mostly-idle fabric.
void BM_LowLoadCycles(benchmark::State& state) {
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(Topology::kTopH, false);
  e.lambda = 0.02;
  e.warmup_cycles = 100;
  e.measure_cycles = 2000;
  e.drain_cycles = 500;
  e.engine = state.range(0) != 0 ? EngineMode::kDense : EngineMode::kActive;
  uint64_t cycles = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_traffic_point(e));
    cycles += e.warmup_cycles + e.measure_cycles + e.drain_cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_ExecutionCycles(benchmark::State& state) {
  // 256 Snitch cores spinning on an arithmetic loop.
  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  const std::string src = R"(
    _start:
      li t0, 100000
    loop:
      addi t0, t0, -1
      bnez t0, loop
      li t1, 0xC0000000
      sw zero, 0(t1)
  )";
  uint64_t cycles = 0;
  for (auto _ : state) {
    System sys(cfg);
    sys.load_program(isa::assemble_text(src));
    const auto r = sys.run(static_cast<uint64_t>(state.range(0)));
    cycles += r.cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

// --- dense-vs-active speedup artifact ---------------------------------------

double time_point_seconds(const TrafficExperimentConfig& cfg, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    TrafficPoint p = run_traffic_point(cfg);
    benchmark::DoNotOptimize(&p);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

double time_sharded_seconds(TrafficExperimentConfig cfg, unsigned sim_threads,
                            int reps) {
  cfg.engine = EngineMode::kSharded;
  cfg.sim_threads = sim_threads;
  return time_point_seconds(cfg, reps);
}

/// Wall-clock of the tab_zero_load probe sweep (core 0 -> every tile, one
/// load at a time on an otherwise idle cluster), cluster construction
/// excluded. This is the regime the paper's 5-cycle claim lives in and the
/// activity-driven scheduler's best case: a handful of components act per
/// cycle while the other ~1600 sleep.
double time_zero_load_seconds(Topology topo, bool dense) {
  const ClusterConfig cfg = ClusterConfig::paper(topo, true);
  InstrMem imem(4096);
  Engine engine;
  engine.set_dense(dense);
  Cluster cluster(cfg, &imem);
  std::vector<std::unique_ptr<ProbeClient>> probes;
  std::vector<Client*> clients;
  for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
    probes.push_back(std::make_unique<ProbeClient>(
        static_cast<uint16_t>(c), static_cast<uint16_t>(c / cfg.cores_per_tile),
        &cluster.layout()));
    clients.push_back(probes.back().get());
  }
  cluster.attach_clients(clients);
  cluster.build(engine);

  const auto t0 = std::chrono::steady_clock::now();
  uint32_t expected = 0;
  for (int rep = 0; rep < 20; ++rep) {
    for (uint32_t t = 0; t < cfg.num_tiles; ++t) {
      probes[0]->arm(t * cfg.seq_region_bytes);
      ++expected;
      while (probes[0]->responses() < expected) engine.step();
    }
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  MEMPOOL_CHECK(probes[0]->responses() == expected);
  return dt.count();
}

int run_speedup(const std::string& json_path, const std::string& baseline_path) {
  // The low-λ half of the fig5 sweep (exact fig5 point shape: 1000 warmup,
  // 4000 measure, 2000 drain) plus the tab_zero_load probe sweep, on the
  // full 256-core paper cluster — the regimes where the fabric is mostly
  // idle and the activity-driven scheduler must deliver (target: >= 3x).
  // The group-sharded topologies additionally time the sharded engine over
  // the sim-threads axis; λ = 0.05 with all threads is the "high-load sweeps
  // stop being wall-clock-bound on one core" target (>= 3x over
  // single-thread active — achievable when the host has >= 4 cores to put
  // under the 4 group shards).
  const std::vector<Topology> topos = {Topology::kTop1, Topology::kTopH};
  const std::vector<double> lambdas = {0.01, 0.02, 0.05};
  const std::vector<unsigned> sim_threads = {1, 2, 4, 8};
  Json points = Json::array();
  double min_speedup = 1e300;
  double dense_total = 0, active_total = 0;
  double sharded_active_total = 0, sharded_best_total = 0;
  std::printf("%-10s %-6s %8s %12s %12s %8s  %s\n", "workload", "topo",
              "lambda", "dense_s", "active_s", "speedup",
              "sharded_s (1/2/4/8 threads)");
  auto report = [&](const char* workload, Topology topo, double lambda,
                    double dense_s, double active_s,
                    const std::vector<double>& sharded_s) {
    const double speedup = dense_s / active_s;
    min_speedup = std::min(min_speedup, speedup);
    dense_total += dense_s;
    active_total += active_s;
    std::printf("%-10s %-6s %8.3f %12.6f %12.6f %7.2fx ", workload,
                topology_name(topo), lambda, dense_s, active_s, speedup);
    Json rec = Json::object();
    rec.set("workload", workload);
    rec.set("topology", topology_name(topo));
    rec.set("lambda", lambda);
    rec.set("dense_seconds", dense_s);
    rec.set("active_seconds", active_s);
    rec.set("speedup", speedup);
    if (!sharded_s.empty()) {
      double best = 1e300;
      Json sharded = Json::object();
      for (std::size_t i = 0; i < sharded_s.size(); ++i) {
        sharded.set(std::to_string(sim_threads[i]), sharded_s[i]);
        best = std::min(best, sharded_s[i]);
        std::printf(" %.6f", sharded_s[i]);
      }
      rec.set("sharded_seconds", std::move(sharded));
      rec.set("sharded_speedup", active_s / best);
      sharded_active_total += active_s;
      sharded_best_total += best;
      std::printf("  (best %.2fx over active)", active_s / best);
    }
    std::printf("\n");
    points.push_back(std::move(rec));
  };
  for (Topology topo : topos) {
    report("zero_load", topo, 0.0, time_zero_load_seconds(topo, true),
           time_zero_load_seconds(topo, false), {});
    for (double lambda : lambdas) {
      TrafficExperimentConfig cfg;
      cfg.cluster = ClusterConfig::paper(topo, false);
      cfg.lambda = lambda;  // fig5 point shape: default cycle counts
      cfg.engine = EngineMode::kDense;
      const double dense_s = time_point_seconds(cfg, 2);
      cfg.engine = EngineMode::kActive;
      const double active_s = time_point_seconds(cfg, 2);
      std::vector<double> sharded_s;
      const FabricTopology& plugin =
          FabricRegistry::get(cfg.cluster.topology.name);
      if (plugin.num_shards(cfg.cluster) > 1) {
        // Only the group-sharded fabrics get the sim-threads axis; a
        // single-shard topology's sharded engine is the active engine plus
        // a no-op lane.
        for (unsigned t : sim_threads) {
          sharded_s.push_back(time_sharded_seconds(cfg, t, 2));
        }
      }
      report("fig5", topo, lambda, dense_s, active_s, sharded_s);
    }
  }
  const double aggregate = dense_total / active_total;
  const double aggregate_sharded =
      sharded_best_total > 0 ? sharded_active_total / sharded_best_total : 0.0;
  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf(
      "aggregate dense->active speedup over the low-load half: %.2fx "
      "(target >= 3x); slowest point: %.2fx\n",
      aggregate, min_speedup);
  if (aggregate_sharded > 0) {
    std::printf(
        "aggregate active->sharded speedup (best thread count, %u host "
        "cpus): %.2fx (target >= 3x at lambda=0.05 with >= 4 cores)\n",
        host_cpus, aggregate_sharded);
  }
  if (!json_path.empty()) {
    Json root = Json::object();
    root.set("schema", "mempool.speedup.v2");
    root.set("aggregate_speedup", aggregate);
    root.set("min_speedup", min_speedup);
    root.set("aggregate_sharded_speedup", aggregate_sharded);
    root.set("host_cpus", host_cpus);
    root.set("points", std::move(points));
    runner::write_json_file(json_path, root);
    std::fprintf(stderr, "speedup results written to %s\n", json_path.c_str());
  }
  if (!baseline_path.empty()) {
    // CI perf smoke: compare against the committed baseline artifact (v1 or
    // v2 — runner::speedup_from_json reads both). The gate keys on the
    // dense-to-active aggregate, which is a ratio of two runs on the same
    // machine and therefore comparable across hosts; sharded wall-clock
    // depends on host core count and is reported, not gated.
    const runner::SpeedupSummary base =
        runner::speedup_from_json(runner::read_json_file(baseline_path));
    const double floor = 0.8 * base.aggregate_speedup;
    std::printf(
        "baseline %s (%s): aggregate_speedup %.2fx, regression floor "
        "%.2fx\n",
        baseline_path.c_str(), base.schema.c_str(), base.aggregate_speedup,
        floor);
    if (aggregate < floor) {
      std::fprintf(stderr,
                   "PERF REGRESSION: aggregate_speedup %.2fx is more than "
                   "20%% below the committed baseline %.2fx\n",
                   aggregate, base.aggregate_speedup);
      return 1;
    }
  }
  return aggregate >= 1.0 ? 0 : 1;
}

}  // namespace

BENCHMARK(BM_TrafficCycles)
    ->Args({static_cast<int>(Topology::kTop1), 2000, 0})
    ->Args({static_cast<int>(Topology::kTop1), 2000, 1})
    ->Args({static_cast<int>(Topology::kTopH), 2000, 0})
    ->Args({static_cast<int>(Topology::kTopH), 2000, 1})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowLoadCycles)->Arg(0)->Arg(1)->Iterations(3)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_ExecutionCycles)->Arg(5000)->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  std::string speedup_json;
  std::string speedup_baseline;
  bool run_speedup_pass = false;
  bool speedup_only = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--speedup_json=", 15) == 0) {
      speedup_json = argv[i] + 15;
      run_speedup_pass = true;
    } else if (std::strncmp(argv[i], "--speedup_baseline=", 19) == 0) {
      speedup_baseline = argv[i] + 19;
      run_speedup_pass = true;
    } else if (std::strcmp(argv[i], "--speedup") == 0) {
      run_speedup_pass = true;
    } else if (std::strcmp(argv[i], "--speedup_only") == 0) {
      run_speedup_pass = true;
      speedup_only = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  int rc = 0;
  if (run_speedup_pass) rc = run_speedup(speedup_json, speedup_baseline);
  if (!speedup_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return rc;
}
