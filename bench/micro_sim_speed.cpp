// Simulator performance microbenchmark (not a paper artifact): simulated
// cycles per wall-clock second for representative workloads. Useful when
// tuning the model or reviewing performance regressions.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/system.hpp"
#include "isa/text_asm.hpp"
#include "runner/runner.hpp"
#include "traffic/experiment.hpp"

using namespace mempool;

namespace {

/// Parallel sweep throughput: the fig5-style grid sharded over N workers.
/// Compare Threads:1 against higher counts to see the runner's scaling on
/// this host.
void BM_ParallelSweep(benchmark::State& state) {
  runner::SweepSpec spec;
  spec.base.cluster = ClusterConfig::paper(Topology::kTopH, false);
  spec.base.warmup_cycles = 100;
  spec.base.measure_cycles = 500;
  spec.base.drain_cycles = 100;
  spec.topologies = {Topology::kTop1, Topology::kTop4, Topology::kTopH};
  spec.lambdas = {0.05, 0.15, 0.25, 0.35};
  runner::RunnerOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  uint64_t points = 0;
  for (auto _ : state) {
    const runner::SweepResult res = runner::run_sweep(spec, opts);
    benchmark::DoNotOptimize(res.points.data());
    points += res.points.size();
  }
  state.counters["points/s"] = benchmark::Counter(
      static_cast<double>(points), benchmark::Counter::kIsRate);
}

void BM_TrafficCycles(benchmark::State& state) {
  const auto topo = static_cast<Topology>(state.range(0));
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(topo, false);
  e.lambda = 0.2;
  e.warmup_cycles = 100;
  e.measure_cycles = static_cast<uint64_t>(state.range(1));
  e.drain_cycles = 0;
  uint64_t cycles = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_traffic_point(e));
    cycles += e.warmup_cycles + e.measure_cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void BM_ExecutionCycles(benchmark::State& state) {
  // 256 Snitch cores spinning on an arithmetic loop.
  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  const std::string src = R"(
    _start:
      li t0, 100000
    loop:
      addi t0, t0, -1
      bnez t0, loop
      li t1, 0xC0000000
      sw zero, 0(t1)
  )";
  uint64_t cycles = 0;
  for (auto _ : state) {
    System sys(cfg);
    sys.load_program(isa::assemble_text(src));
    const auto r = sys.run(static_cast<uint64_t>(state.range(0)));
    cycles += r.cycles;
  }
  state.counters["sim_cycles/s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_TrafficCycles)
    ->Args({static_cast<int>(Topology::kTop1), 2000})
    ->Args({static_cast<int>(Topology::kTopH), 2000})
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExecutionCycles)->Arg(5000)->Iterations(3)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
