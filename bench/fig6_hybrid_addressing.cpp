// Figure 6 (Section V-B): TopH with the hybrid addressing scheme. Traffic
// targets the own tile's sequential region with probability p_local; the
// figure sweeps p_local ∈ {0 %, 25 %, 50 %, 100 %}.
// Also reproduces the text claim (T3): an application with 25 % stack
// accesses gains up to 50 % throughput from the scrambling logic.
//
// The 40 (p_local, λ) points run through the parallel sweep runner.

#include <iostream>

#include "common/report.hpp"
#include "runner/bench_cli.hpp"
#include "runner/results.hpp"
#include "runner/runner.hpp"

using namespace mempool;
using namespace mempool::runner;

static int bench_main(int argc, char** argv) {
  const BenchOptions opts =
      parse_bench_options(&argc, argv, "fig6_hybrid_addressing");

  print_banner(std::cout,
               "Figure 6 — TopH with the hybrid addressing scheme, for "
               "p_local in {0, 25, 50, 100} %");

  const std::vector<double> loads = {0.05, 0.10, 0.20, 0.30, 0.38, 0.45,
                                     0.55, 0.65, 0.80, 1.00};
  const std::vector<double> plocals = {0.0, 0.25, 0.50, 1.00};

  SweepSpec spec;
  spec.base.cluster = ClusterConfig::paper(Topology::kTopH, /*scrambling=*/true);
  spec.base.warmup_cycles = 1000;
  spec.base.measure_cycles = 4000;
  spec.base.drain_cycles = 2000;
  spec.p_locals = plocals;
  spec.lambdas = loads;
  opts.apply_engine(&spec.base);

  const SweepResult res = run_sweep(spec, opts.runner());
  // Point index layout (SweepSpec::expand): p_local-major, λ inner.
  auto pts = [&](std::size_t p) { return &res.points[p * loads.size()]; };

  Table thr({"load", "0% local", "25% local", "50% local", "100% local"});
  Table lat({"load", "0% local", "25% local", "50% local", "100% local"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    thr.add_row({Table::num(loads[i], 2), Table::num(pts(0)[i].accepted, 3),
                 Table::num(pts(1)[i].accepted, 3),
                 Table::num(pts(2)[i].accepted, 3),
                 Table::num(pts(3)[i].accepted, 3)});
    lat.add_row({Table::num(loads[i], 2), Table::num(pts(0)[i].avg_latency, 1),
                 Table::num(pts(1)[i].avg_latency, 1),
                 Table::num(pts(2)[i].avg_latency, 1),
                 Table::num(pts(3)[i].avg_latency, 1)});
  }
  std::cout << "\n(a) Throughput (request/core/cycle):\n";
  thr.print(std::cout);
  std::cout << "\n(b) Average round-trip latency (cycles):\n";
  lat.print(std::cout);

  // --- Section V-B text claim -------------------------------------------------
  // Saturation throughput with 25 % local vs fully-interleaved traffic.
  auto saturation = [&](std::size_t p) {
    double sat = 0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (pts(p)[i].accepted >= 0.95 * loads[i]) sat = pts(p)[i].accepted;
    }
    return sat;
  };
  const double sat0 = saturation(0);
  const double sat25 = saturation(1);
  std::cout << "\nSummary vs paper (Section V-B):\n";
  Table s({"claim", "paper", "measured"});
  s.add_row({"throughput gain, 25% stack accesses",
             "up to +50%",
             "+" + Table::num(100.0 * (sat25 - sat0) / sat0, 0) + "%"});
  s.add_row({"throughput rises with p_local", "yes",
             (saturation(3) > saturation(2) && saturation(2) > saturation(1) &&
              saturation(1) > saturation(0))
                 ? "yes"
                 : "NO"});
  s.print(std::cout);

  Json results = Json::object();
  results.set("sweep", sweep_to_json(res));
  results.set("summary", s.to_json());
  write_bench_results(opts, res.threads, res.wall_seconds, std::move(results));
  return 0;
}

int main(int argc, char** argv) {
  // A watchdog abort (--stall-horizon) exits 3 with the stall report on
  // stderr instead of std::terminate.
  return guarded_bench_main("fig6_hybrid_addressing",
                            [&] { return bench_main(argc, argv); });
}
