// Figure 6 (Section V-B): TopH with the hybrid addressing scheme. Traffic
// targets the own tile's sequential region with probability p_local; the
// figure sweeps p_local ∈ {0 %, 25 %, 50 %, 100 %}.
// Also reproduces the text claim (T3): an application with 25 % stack
// accesses gains up to 50 % throughput from the scrambling logic.

#include <cstdio>
#include <iostream>

#include "common/report.hpp"
#include "traffic/experiment.hpp"

using namespace mempool;

namespace {

TrafficPoint point(double lambda, double p_local) {
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(Topology::kTopH, /*scrambling=*/true);
  e.lambda = lambda;
  e.p_local_seq = p_local;
  e.warmup_cycles = 1000;
  e.measure_cycles = 4000;
  e.drain_cycles = 2000;
  return run_traffic_point(e);
}

}  // namespace

int main() {
  print_banner(std::cout,
               "Figure 6 — TopH with the hybrid addressing scheme, for "
               "p_local in {0, 25, 50, 100} %");

  const std::vector<double> loads = {0.05, 0.10, 0.20, 0.30, 0.38, 0.45,
                                     0.55, 0.65, 0.80, 1.00};
  const std::vector<double> plocals = {0.0, 0.25, 0.50, 1.00};

  std::vector<std::vector<TrafficPoint>> res(plocals.size());
  for (std::size_t p = 0; p < plocals.size(); ++p) {
    for (double l : loads) {
      res[p].push_back(point(l, plocals[p]));
      std::fprintf(stderr, ".");
    }
  }
  std::fprintf(stderr, "\n");

  Table thr({"load", "0% local", "25% local", "50% local", "100% local"});
  Table lat({"load", "0% local", "25% local", "50% local", "100% local"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    thr.add_row({Table::num(loads[i], 2), Table::num(res[0][i].accepted, 3),
                 Table::num(res[1][i].accepted, 3),
                 Table::num(res[2][i].accepted, 3),
                 Table::num(res[3][i].accepted, 3)});
    lat.add_row({Table::num(loads[i], 2), Table::num(res[0][i].avg_latency, 1),
                 Table::num(res[1][i].avg_latency, 1),
                 Table::num(res[2][i].avg_latency, 1),
                 Table::num(res[3][i].avg_latency, 1)});
  }
  std::cout << "\n(a) Throughput (request/core/cycle):\n";
  thr.print(std::cout);
  std::cout << "\n(b) Average round-trip latency (cycles):\n";
  lat.print(std::cout);

  // --- Section V-B text claim -------------------------------------------------
  // Saturation throughput with 25 % local vs fully-interleaved traffic.
  auto saturation = [&](std::size_t p) {
    double sat = 0;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      if (res[p][i].accepted >= 0.95 * loads[i]) sat = res[p][i].accepted;
    }
    return sat;
  };
  const double sat0 = saturation(0);
  const double sat25 = saturation(1);
  std::cout << "\nSummary vs paper (Section V-B):\n";
  Table s({"claim", "paper", "measured"});
  s.add_row({"throughput gain, 25% stack accesses",
             "up to +50%",
             "+" + Table::num(100.0 * (sat25 - sat0) / sat0, 0) + "%"});
  s.add_row({"throughput rises with p_local", "yes",
             (saturation(3) > saturation(2) && saturation(2) > saturation(1) &&
              saturation(1) > saturation(0))
                 ? "yes"
                 : "NO"});
  s.print(std::cout);
  return 0;
}
