// Writing a custom parallel kernel against the public API: a tree-free
// global dot product. Every core computes a partial dot product over its
// slice of two vectors, then atomically accumulates into a single result
// word (amoadd.w executes at the SPM bank, so no lock is needed), and the
// last core to arrive prints the result marker.
//
// Demonstrates: the textual assembler, hartid work splitting, AMOs, the
// control pseudo-peripherals, and host-side data initialization.

#include <cstdio>
#include <string>

#include "core/system.hpp"
#include "isa/text_asm.hpp"

using namespace mempool;

int main() {
  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  System sys(cfg);

  constexpr uint32_t kN = 4096;          // vector length (16 elems per core)
  constexpr uint32_t kVecA = 0x48000;    // interleaved-heap addresses
  constexpr uint32_t kVecB = 0x4C000;
  constexpr uint32_t kResult = 0x47000;
  constexpr uint32_t kDone = 0x47010;
  const uint32_t per_core = kN / cfg.num_cores();

  const std::string program = R"(
    _start:
      csrr a0, mhartid
      li   t0, )" + std::to_string(per_core) + R"(
      mul  t1, a0, t0          # my start index
      slli t1, t1, 2
      li   a1, )" + std::to_string(kVecA) + R"(
      li   a2, )" + std::to_string(kVecB) + R"(
      add  a1, a1, t1
      add  a2, a2, t1
      li   t2, 0               # partial sum
    loop:
      lw   t3, 0(a1)
      lw   t4, 0(a2)
      mul  t5, t3, t4
      add  t2, t2, t5
      addi a1, a1, 4
      addi a2, a2, 4
      addi t0, t0, -1
      bnez t0, loop
      # accumulate into the shared result
      li   t6, )" + std::to_string(kResult) + R"(
      amoadd.w zero, t2, (t6)
      # count arrivals; the last core prints '=' to its console
      li   t6, )" + std::to_string(kDone) + R"(
      li   t5, 1
      amoadd.w t4, t5, (t6)
      li   t3, )" + std::to_string(cfg.num_cores() - 1) + R"(
      bne  t4, t3, out
      li   t6, 0xC0000004
      li   t5, 61              # '='
      sw   t5, 0(t6)
    out:
      li   t6, 0xC0000000
      sw   zero, 0(t6)
  )";

  // Host-side data: a[i] = i % 97, b[i] = 2 (keeps the sum well in range).
  uint64_t want = 0;
  for (uint32_t i = 0; i < kN; ++i) {
    const uint32_t a = i % 97, b = 2;
    sys.write_word(kVecA + 4 * i, a);
    sys.write_word(kVecB + 4 * i, b);
    want += a * b;
  }

  sys.load_program(isa::assemble_text(program));
  const auto r = sys.run(5'000'000);

  const uint32_t got = sys.read_word(kResult);
  std::printf("dot(a, b) over %u elements on %u cores: got %u, want %llu "
              "(%s), %llu cycles, console: \"%s\"\n",
              kN, cfg.num_cores(), got, static_cast<unsigned long long>(want),
              got == want ? "OK" : "MISMATCH",
              static_cast<unsigned long long>(r.cycles),
              sys.console().c_str());
  return got == want ? 0 : 1;
}
