// Quickstart: build a MemPool cluster, write a small RISC-V program in
// textual assembly, run it on all 256 cores, and inspect the results.
//
//   $ ./quickstart
//   $ ./quickstart --engine sharded --sim-threads 4   # parallel cycles
//   $ ./quickstart --memory tcdm+l2                   # + L2/DMA demo
//
// Each core computes the sum 1..hartid with a simple loop, stores it into
// the shared L1, and exits with the result; the host verifies via the
// backdoor, then prints a few performance counters. The optional flags pick
// the engine mode (sharded steps the cluster's four TopH groups on four
// threads, bit-identically to the default sequential scheduler) and the
// memory system: with a DMA-capable one (tcdm+l2) a second run demos a
// double-buffered tiled matmul whose matrices live in L2 and stream through
// the SPM via the per-group DMA engines.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/system.hpp"
#include "isa/text_asm.hpp"
#include "kernels/kernel.hpp"
#include "kernels/matmul.hpp"
#include "mem/memsys.hpp"

using namespace mempool;

int main(int argc, char** argv) {
  EngineMode mode = EngineMode::kActive;
  unsigned sim_threads = 1;
  std::string memory = "tcdm";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) {
      if (!engine_mode_from_name(argv[++i], &mode)) {
        std::fprintf(stderr, "unknown engine '%s' (active|dense|sharded)\n",
                     argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--sim-threads") == 0 && i + 1 < argc) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[++i], &end, 10);
      if (v == 0 || (end != nullptr && *end != '\0')) {
        std::fprintf(stderr, "--sim-threads wants a positive integer\n");
        return 2;
      }
      sim_threads = static_cast<unsigned>(v);
    } else if (std::strcmp(argv[i], "--memory") == 0 && i + 1 < argc) {
      memory = argv[++i];
      if (MemoryRegistry::find(memory) == nullptr) {
        std::fprintf(stderr, "unknown memory system '%s'; available: %s\n",
                     memory.c_str(), MemoryRegistry::available().c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: quickstart [--engine active|dense|sharded] "
                   "[--sim-threads N] [--memory NAME]\n");
      return 2;
    }
  }
  if (sim_threads > 1 && mode != EngineMode::kSharded) {
    std::fprintf(stderr, "--sim-threads only applies to --engine sharded\n");
    return 2;
  }

  // The paper's silicon configuration: 64 tiles x 4 cores x 16 banks, TopH
  // interconnect, hybrid addressing (scrambling) enabled. The memory system
  // is an open axis: "tcdm" is the paper's flat L1, "tcdm+l2" adds the L2 +
  // per-group DMA of the journal paper.
  ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  cfg.memory = MemorySpec{memory};
  cfg.validate();
  System sys(cfg);
  sys.configure_engine(mode, sim_threads);

  const std::string program = R"(
    _start:
      csrr a0, mhartid       # who am I?
      li   t0, 0             # acc
      mv   t1, a0
    loop:
      beqz t1, done
      add  t0, t0, t1
      addi t1, t1, -1
      j    loop
    done:
      # store the result into the interleaved heap: 0x50000 + 4*hartid
      slli t2, a0, 2
      li   t3, 0x50000
      add  t2, t2, t3
      sw   t0, 0(t2)
      # exit(sum)
      li   t4, 0xC0000000
      sw   t0, 0(t4)
  )";

  sys.load_program(isa::assemble_text(program));
  const System::RunResult r = sys.run(1'000'000);

  std::printf("ran %llu cycles, all cores halted: %s\n",
              static_cast<unsigned long long>(r.cycles),
              r.all_halted ? "yes" : "no");

  // Verify every core's result through the testbench backdoor.
  uint32_t errors = 0;
  for (uint32_t c = 0; c < sys.num_cores(); ++c) {
    const uint32_t want = c * (c + 1) / 2;
    if (sys.read_word(0x50000 + 4 * c) != want ||
        sys.core(c).exit_code() != want) {
      ++errors;
    }
  }
  std::printf("verified %u cores, %u errors\n", sys.num_cores(), errors);

  const SnitchCore::Stats s = sys.aggregate_core_stats();
  std::printf("instructions retired: %llu (IPC/core = %.2f)\n",
              static_cast<unsigned long long>(s.instret),
              static_cast<double>(s.instret) / static_cast<double>(s.cycles));
  const Cluster::FabricStats f = sys.cluster().fabric_stats();
  std::printf("bank accesses: %llu, I$ hit rate: %.1f%%\n",
              static_cast<unsigned long long>(f.bank_accesses),
              100.0 * static_cast<double>(f.icache_hits) /
                  static_cast<double>(f.icache_hits + f.icache_misses));

  // With a DMA-capable memory system, demo the L2-resident, double-buffered
  // tiled matmul: 256x256x32 int32 matrices live in L2 and stream through
  // SPM double buffers via the per-group DMA engines while the cores
  // compute; the result is verified against the host golden model.
  if (MemoryRegistry::get(memory).provides_dma()) {
    std::printf("\nmemory system '%s' has a DMA engine — running a "
                "double-buffered tiled matmul from L2...\n",
                memory.c_str());
    kernels::TiledMatmulParams p;
    p.m = p.n = 256;
    p.k = 32;
    p.rb = p.cb = 64;
    System dma_sys(cfg);
    dma_sys.configure_engine(mode, sim_threads);
    const uint64_t cycles = kernels::run_kernel(
        dma_sys, kernels::build_matmul_tiled(cfg, p), 500'000'000ull);
    const MemoryStats m = dma_sys.cluster().memory_stats();
    std::printf("tiled matmul %ux%ux%u verified in %llu cycles\n", p.m, p.n,
                p.k, static_cast<unsigned long long>(cycles));
    std::printf("DMA: %llu transfers, %llu words L2->L1, %llu words L1->L2, "
                "busiest group engine busy %llu cycles\n",
                static_cast<unsigned long long>(m.dma_descriptors),
                static_cast<unsigned long long>(m.dma_words_in),
                static_cast<unsigned long long>(m.dma_words_out),
                static_cast<unsigned long long>(m.dma_busy_cycles_max));
  }
  return errors == 0 ? 0 : 1;
}
