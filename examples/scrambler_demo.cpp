// Visualization of the hybrid addressing scheme (Section IV, Figure 4):
// shows where consecutive CPU addresses land (tile, bank, row) with the
// scrambling logic off (fully interleaved) and on (per-tile sequential
// regions + interleaved remainder), and verifies the bijection.

#include <cstdio>
#include <set>

#include "core/cluster_config.hpp"
#include "core/layout.hpp"

using namespace mempool;

namespace {

void show_walk(const MemoryLayout& layout, uint32_t base, uint32_t words,
               const char* title) {
  std::printf("\n%s (walking %u words from 0x%05X):\n  ", title, words, base);
  for (uint32_t i = 0; i < words; ++i) {
    const BankLocation loc = layout.locate(base + 4 * i);
    std::printf("T%02u.B%02u ", loc.tile, loc.bank);
    if (i % 8 == 7) std::printf("\n  ");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const ClusterConfig off_cfg = ClusterConfig::paper(Topology::kTopH, false);
  const ClusterConfig on_cfg = ClusterConfig::paper(Topology::kTopH, true);
  const MemoryLayout off(off_cfg), on(on_cfg);

  std::printf("MemPool hybrid addressing scheme demo\n");
  std::printf("cluster: %u tiles x %u banks, %u KiB sequential region/tile\n",
              on_cfg.num_tiles, on_cfg.banks_per_tile,
              on_cfg.seq_region_bytes / 1024);

  // 1. The interleaved map: word-consecutive addresses sweep the banks of
  //    tile 0, then tile 1, ...
  show_walk(off, 0, 24, "scrambling OFF — fully interleaved map");

  // 2. The hybrid map: the same addresses stay inside tile 0 (its sequential
  //    region), still interleaving across tile 0's banks.
  show_walk(on, 0, 24, "scrambling ON — tile 0's sequential region");

  // 3. Tile 7's sequential region.
  show_walk(on, 7 * on_cfg.seq_region_bytes, 16,
            "scrambling ON — tile 7's sequential region");

  // 4. Above the sequential window both maps agree (interleaved).
  const uint32_t heap = on.interleaved_base();
  show_walk(on, heap, 16, "scrambling ON — interleaved heap (same as OFF)");

  // 5. Bijection check over the whole SPM.
  std::set<uint32_t> seen;
  bool ok = true;
  for (uint32_t a = 0; a < on_cfg.spm_bytes(); a += 4) {
    ok &= seen.insert(on.scrambler().scramble(a)).second;
  }
  std::printf("\nbijection over the full 1 MiB SPM: %s (no aliasing — every "
              "CPU word maps to exactly one physical word)\n",
              ok ? "OK" : "VIOLATED");

  std::printf("\nWhy it matters: a core's stack lives in its own tile's "
              "region -> 1-cycle accesses and half the energy of remote "
              "accesses (Sections IV, VI-D).\n");
  return ok ? 0 : 1;
}
