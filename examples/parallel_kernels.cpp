// Run the paper's three signal-processing kernels on the full 256-core
// cluster, verify results bit-exactly against the golden models, and print a
// per-kernel performance/energy summary — the "real workload" view of the
// system.
//
//   $ ./parallel_kernels [topology] [noscramble]
//
// The topology is any registered fabric plugin — TopH2 runs the kernels on
// all 1024 cores.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/report.hpp"
#include "core/system.hpp"
#include "kernels/conv2d.hpp"
#include "kernels/dct.hpp"
#include "kernels/kernel.hpp"
#include "kernels/matmul.hpp"
#include "noc/fabric.hpp"
#include "power/energy_model.hpp"

using namespace mempool;

int main(int argc, char** argv) {
  TopologySpec topo = Topology::kTopH;
  bool scramble = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "noscramble") == 0) {
      scramble = false;
    } else if (FabricRegistry::find(argv[i]) != nullptr) {
      topo = TopologySpec{argv[i]};
    } else {
      std::fprintf(stderr, "unknown topology '%s'; available: %s\n", argv[i],
                   FabricRegistry::available().c_str());
      return 2;
    }
  }
  const ClusterConfig cfg = ClusterConfig::paper(topo, scramble);
  print_banner(std::cout,
               "kernels on " + cfg.display_name() + " (" +
                   std::to_string(cfg.num_cores()) + " cores, " +
                   std::to_string(cfg.spm_bytes() / (1024 * 1024)) +
                   " MiB shared L1)");

  const EnergyModel energy;
  Table t({"kernel", "cycles", "IPC/core", "local accesses", "remote",
           "energy/instr (pJ)", "verified"});

  struct Item {
    const char* name;
    kernels::KernelProgram kp;
  };
  Item items[] = {
      {"matmul 64x64", kernels::build_matmul(cfg, 64)},
      {"2dconv 64x256", kernels::build_conv2d(cfg, 256)},
      {"dct 256 blocks", kernels::build_dct(cfg)},
  };

  for (auto& item : items) {
    System sys(cfg);
    const uint64_t cycles = kernels::run_kernel(sys, item.kp, 100'000'000);
    const SnitchCore::Stats s = sys.aggregate_core_stats();
    const EnergyBreakdown e = energy.measure(sys.cluster(), s);
    const uint64_t local = s.loads_local + s.stores_local;
    const uint64_t remote = s.loads_remote + s.stores_remote;
    t.add_row({item.name, std::to_string(cycles),
               Table::num(static_cast<double>(s.instret) /
                              static_cast<double>(s.cycles),
                          2),
               std::to_string(local), std::to_string(remote),
               Table::num(e.total() / static_cast<double>(s.instret), 1),
               "yes"});
    std::cerr << "  " << item.name << " done\n";
  }
  t.print(std::cout);
  std::cout << "\nTip: compare `./parallel_kernels TopH` against "
               "`./parallel_kernels TopH noscramble` to see the hybrid "
               "addressing scheme at work (Section IV).\n";
  return 0;
}
