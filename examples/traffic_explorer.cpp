// Network design exploration: sweep any topology / load / locality point
// from the command line and print throughput + latency — the workflow an
// interconnect architect would use this library for.
//
//   $ ./traffic_explorer [topology] [lambda] [p_local]
//   $ ./traffic_explorer TopH 0.33 0.25

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/report.hpp"
#include "traffic/experiment.hpp"

using namespace mempool;

namespace {

Topology parse_topology(const char* s) {
  if (std::strcmp(s, "Top1") == 0) return Topology::kTop1;
  if (std::strcmp(s, "Top4") == 0) return Topology::kTop4;
  if (std::strcmp(s, "TopH") == 0) return Topology::kTopH;
  if (std::strcmp(s, "TopX") == 0) return Topology::kTopX;
  std::fprintf(stderr, "unknown topology '%s' (Top1|Top4|TopH|TopX)\n", s);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  const Topology topo = argc > 1 ? parse_topology(argv[1]) : Topology::kTopH;
  const double lambda = argc > 2 ? std::atof(argv[2]) : -1.0;
  const double p_local = argc > 3 ? std::atof(argv[3]) : 0.0;

  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(topo, p_local > 0.0);
  e.p_local_seq = p_local;

  if (lambda >= 0) {
    e.lambda = lambda;
    const TrafficPoint p = run_traffic_point(e);
    std::printf("%s  offered=%.3f p_local=%.2f -> accepted=%.3f "
                "avg_lat=%.2f p95=%.1f max=%.0f cycles\n",
                topology_name(topo), p.offered, p_local, p.accepted,
                p.avg_latency, p.p95_latency, p.max_latency);
    return 0;
  }

  // No lambda given: print a full sweep.
  print_banner(std::cout, std::string("load sweep on ") + topology_name(topo));
  Table t({"offered", "accepted", "avg latency", "p95", "max"});
  for (double l : {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}) {
    e.lambda = l;
    const TrafficPoint p = run_traffic_point(e);
    t.add_row({Table::num(l, 2), Table::num(p.accepted, 3),
               Table::num(p.avg_latency, 2), Table::num(p.p95_latency, 1),
               Table::num(p.max_latency, 0)});
    std::fprintf(stderr, ".");
  }
  std::fprintf(stderr, "\n");
  t.print(std::cout);
  return 0;
}
