// Network design exploration: sweep any topology / load / locality point
// from the command line and print throughput + latency — the workflow an
// interconnect architect would use this library for.
//
//   $ ./traffic_explorer [--threads N] [--json PATH] [topology] [lambda] [p_local]
//   $ ./traffic_explorer TopH 0.33 0.25
//
// Without an explicit lambda the full load sweep runs on the parallel
// runner, sharded across host cores.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/report.hpp"
#include "runner/bench_cli.hpp"
#include "runner/results.hpp"
#include "runner/runner.hpp"

using namespace mempool;
using namespace mempool::runner;

namespace {

Topology parse_topology(const char* s) {
  Topology t;
  if (!topology_from_name(s, &t)) {
    std::fprintf(stderr, "unknown topology '%s' (Top1|Top4|TopH|TopX)\n", s);
    std::exit(2);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = parse_bench_options(&argc, argv, "traffic_explorer");

  const Topology topo = argc > 1 ? parse_topology(argv[1]) : Topology::kTopH;
  const double lambda = argc > 2 ? std::atof(argv[2]) : -1.0;
  const double p_local = argc > 3 ? std::atof(argv[3]) : 0.0;

  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(topo, p_local > 0.0);
  e.p_local_seq = p_local;
  e.dense_engine = opts.dense;

  if (lambda >= 0) {
    e.lambda = lambda;
    // One point, still through the runner so --json works here too; a single
    // worker, so no idle threads spin up for one task.
    opts.progress = false;
    opts.threads = 1;
    const SweepResult res = run_points({e}, opts.runner());
    const TrafficPoint& p = res.points[0];
    std::printf("%s  offered=%.3f p_local=%.2f -> accepted=%.3f "
                "avg_lat=%.2f p95=%.1f max=%.0f cycles\n",
                topology_name(topo), p.offered, p_local, p.accepted,
                p.avg_latency, p.p95_latency, p.max_latency);
    Json results = Json::object();
    results.set("sweep", sweep_to_json(res));
    write_bench_results(opts, res.threads, res.wall_seconds,
                        std::move(results));
    return 0;
  }

  // No lambda given: run a full sweep on the parallel runner.
  print_banner(std::cout, std::string("load sweep on ") + topology_name(topo));

  SweepSpec spec;
  spec.base = e;
  spec.lambdas = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50};

  const SweepResult res = run_sweep(spec, opts.runner());

  Table t({"offered", "accepted", "avg latency", "p95", "max"});
  for (std::size_t i = 0; i < spec.lambdas.size(); ++i) {
    const TrafficPoint& p = res.points[i];
    t.add_row({Table::num(spec.lambdas[i], 2), Table::num(p.accepted, 3),
               Table::num(p.avg_latency, 2), Table::num(p.p95_latency, 1),
               Table::num(p.max_latency, 0)});
  }
  t.print(std::cout);

  Json results = Json::object();
  results.set("sweep", sweep_to_json(res));
  write_bench_results(opts, res.threads, res.wall_seconds, std::move(results));
  return 0;
}
