// Network design exploration: sweep any topology / load / locality point
// from the command line and print throughput + latency — the workflow an
// interconnect architect would use this library for.
//
//   $ ./traffic_explorer [--threads N] [--json PATH] [topology] [lambda] [p_local]
//   $ ./traffic_explorer TopH 0.33 0.25
//   $ ./traffic_explorer --topology TopH2 0.1        # any registered plugin
//   $ ./traffic_explorer --list-topologies
//
// The topology is any name in the FabricRegistry (positional or --topology);
// an unknown name fails with the list of registered plugins. Without an
// explicit lambda the full load sweep runs on the parallel runner, sharded
// across host cores.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/report.hpp"
#include "runner/bench_cli.hpp"
#include "runner/results.hpp"
#include "runner/runner.hpp"

using namespace mempool;
using namespace mempool::runner;

namespace {

double parse_number_or_exit(const char* arg, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(arg, &end);
  if (end == arg || *end != '\0') {
    std::fprintf(stderr, "expected a numeric %s, got '%s'\n", what, arg);
    std::exit(2);
  }
  return v;
}

}  // namespace

static int bench_main(int argc, char** argv) {
  BenchOptions opts = parse_bench_options(&argc, argv, "traffic_explorer",
                                          /*accepts_topology=*/true,
                                          /*accepts_memory=*/true,
                                          /*accepts_checkpoint=*/true);

  TopologySpec topo = Topology::kTopH;
  int pos = 1;  // next positional argument
  if (!opts.topology.empty()) {
    topo = TopologySpec{opts.topology};
  } else if (argc > pos) {
    topo = parse_topology_or_exit(argv[pos++]);
  }
  const double lambda =
      argc > pos ? parse_number_or_exit(argv[pos++], "lambda") : -1.0;
  const double p_local =
      argc > pos ? parse_number_or_exit(argv[pos], "p_local") : 0.0;

  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::paper(topo, p_local > 0.0);
  if (!opts.memory.empty()) e.cluster.memory = MemorySpec{opts.memory};
  e.cluster.validate();
  opts.apply_engine(&e);
  e.p_local_seq = p_local;

  if (opts.wants_checkpointing() && lambda < 0) {
    std::fprintf(stderr,
                 "traffic_explorer: --checkpoint-every/--restore run a single "
                 "point — give an explicit lambda\n");
    return 2;
  }

  if (lambda >= 0) {
    e.lambda = lambda;
    if (opts.wants_checkpointing()) {
      // Crash-safe single point: periodic mempool.ckpt.v1 images, optional
      // resume; the finished point is bit-identical to an uninterrupted run.
      const TrafficPoint p = run_checkpointed_point(opts, e);
      std::printf("%s  offered=%.3f p_local=%.2f -> accepted=%.3f "
                  "avg_lat=%.2f p95=%.1f max=%.0f cycles\n",
                  topo.name.c_str(), p.offered, p_local, p.accepted,
                  p.avg_latency, p.p95_latency, p.max_latency);
      return 0;
    }
    // One point, still through the runner so --json works here too; a single
    // worker, so no idle threads spin up for one task.
    opts.progress = false;
    opts.threads = 1;
    const SweepResult res = run_points({e}, opts.runner());
    const TrafficPoint& p = res.points[0];
    std::printf("%s  offered=%.3f p_local=%.2f -> accepted=%.3f "
                "avg_lat=%.2f p95=%.1f max=%.0f cycles\n",
                topo.name.c_str(), p.offered, p_local, p.accepted,
                p.avg_latency, p.p95_latency, p.max_latency);
    Json results = Json::object();
    results.set("sweep", sweep_to_json(res));
    write_bench_results(opts, res.threads, res.wall_seconds,
                        std::move(results));
    return 0;
  }

  // No lambda given: run a full sweep on the parallel runner.
  print_banner(std::cout, "load sweep on " + topo.name);

  SweepSpec spec;
  spec.base = e;
  spec.lambdas = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50};

  const SweepResult res = run_sweep(spec, opts.runner());

  Table t({"offered", "accepted", "avg latency", "p95", "max"});
  for (std::size_t i = 0; i < spec.lambdas.size(); ++i) {
    const TrafficPoint& p = res.points[i];
    t.add_row({Table::num(spec.lambdas[i], 2), Table::num(p.accepted, 3),
               Table::num(p.avg_latency, 2), Table::num(p.p95_latency, 1),
               Table::num(p.max_latency, 0)});
  }
  t.print(std::cout);

  Json results = Json::object();
  results.set("sweep", sweep_to_json(res));
  write_bench_results(opts, res.threads, res.wall_seconds, std::move(results));
  return 0;
}

int main(int argc, char** argv) {
  // A watchdog abort (--stall-horizon) exits 3 with the stall report on
  // stderr instead of std::terminate.
  return guarded_bench_main("traffic_explorer",
                            [&] { return bench_main(argc, argv); });
}
