// sim_server: the persistent simulation daemon. Binds an AF_UNIX socket,
// serves SimRequests over newline-delimited JSON (protocol in
// serve/server.hpp), batches cold points onto the runner ThreadPool, and
// answers repeated points from the content-addressed result cache.
//
//   ./sim_server --socket /tmp/mempool_sim.sock --cache-dir /tmp/simcache &
//   ./sim_loadgen --socket /tmp/mempool_sim.sock --requests 1000 --shutdown
//
// Shuts down cleanly on SIGINT/SIGTERM or the client "shutdown" op: stops
// accepting, answers everything already accepted, unlinks the socket.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/check.hpp"
#include "serve/server.hpp"

namespace {

int g_wake_fd = -1;

// Async-signal-safe: just poke the watcher thread, which does the real stop.
void on_signal(int) {
  const char byte = 's';
  [[maybe_unused]] ssize_t n = ::write(g_wake_fd, &byte, 1);
}

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Persistent simulation server (NDJSON over an AF_UNIX socket).\n"
      "\n"
      "  --socket PATH        socket path (default /tmp/mempool_sim.sock)\n"
      "  --threads N          simulation worker threads (default: "
      "MEMPOOL_THREADS\n"
      "                       env or hardware concurrency)\n"
      "  --cache-capacity N   in-memory result-cache entries (default 1024)\n"
      "  --cache-dir DIR      on-disk result cache (default: memory only)\n"
      "  --max-queue N        shed new points beyond N in flight with a\n"
      "                       structured 'overloaded' response (default:\n"
      "                       unbounded)\n"
      "  --retry-after-ms N   backoff hint on shed responses (default 250)\n"
      "  --checkpoint-every N checkpoint long-running points every N\n"
      "                       simulated cycles; with --cache-dir the images\n"
      "                       persist to <dir>/<key>.ckpt and a restarted\n"
      "                       daemon resumes them (default: off)\n"
      "  --quiet              no per-request stderr log\n"
      "  --help               this text\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using mempool::serve::ServerConfig;
  using mempool::serve::SimServer;

  ServerConfig cfg;
  cfg.socket_path = "/tmp/mempool_sim.sock";
  cfg.log = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      cfg.socket_path = value();
    } else if (arg == "--threads") {
      cfg.service.threads = static_cast<unsigned>(std::stoul(value()));
    } else if (arg == "--cache-capacity") {
      cfg.service.cache_capacity = std::stoull(value());
    } else if (arg == "--cache-dir") {
      cfg.service.cache_dir = value();
    } else if (arg == "--max-queue") {
      cfg.service.max_queue = std::stoull(value());
    } else if (arg == "--retry-after-ms") {
      cfg.service.retry_after_ms = static_cast<int>(std::stoul(value()));
    } else if (arg == "--checkpoint-every") {
      cfg.service.checkpoint_every = std::stoull(value());
    } else if (arg == "--quiet") {
      cfg.log = false;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }

  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    std::perror("pipe");
    return 1;
  }
  g_wake_fd = pipefd[1];
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  try {
    SimServer server(cfg);
    server.start();
    std::thread watcher([&server, read_fd = pipefd[0]] {
      char byte;
      if (::read(read_fd, &byte, 1) == 1 && byte == 's') server.stop();
    });
    server.wait();
    // Wake the watcher in case shutdown came from the client op, not a
    // signal, then join it.
    const char byte = 'q';
    [[maybe_unused]] ssize_t n = ::write(pipefd[1], &byte, 1);
    watcher.join();
  } catch (const mempool::CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
