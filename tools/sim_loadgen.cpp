// sim_loadgen: load generator and acceptance harness for sim_server.
//
// Drives the daemon with a mixed cached/uncached request stream:
//
//   phase 1 (prime)     each of --unique distinct mini-cluster points is sent
//                       once and awaited — these are the cold computations.
//                       With --verify, every server result is compared
//                       bit-for-bit against a local run_point() of the same
//                       request.
//   phase 2 (replay)    the remaining --requests are random repeats of the
//                       primed points, pipelined --window at a time — pure
//                       cache hits, each checked bit-identical to its phase-1
//                       result.
//   phase 3 (coalesce)  optionally (--coalesce K) K identical requests for
//                       one never-seen point are fired back-to-back; exactly
//                       one may compute, the rest must coalesce or hit.
//
// Exits nonzero when any response errs, any result mismatches, or the final
// cache-hit rate is below --min-hit-rate. Prints a summary (or --json) with
// client-observed counts and the server's p50/p99 service latency.
//
// Chaos mode (--chaos --server-bin PATH): the loadgen owns the daemon's
// lifecycle — it spawns the real sim_server binary, streams requests through
// a RetryingClient, SIGKILLs the daemon at scheduled points (between
// requests and mid-computation of a deliberately slow point), restarts it,
// and requires every request to still complete with results bit-identical
// to a local run_point(). With --cache-dir the restarted daemon re-serves
// primed points from the disk cache and resumes the slow point from its
// persisted checkpoint (--checkpoint-every).

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "core/cluster_config.hpp"
#include "serve/client.hpp"

namespace {

using mempool::ClusterConfig;
using mempool::Json;
using mempool::Rng;
using mempool::TrafficExperimentConfig;
using mempool::serve::RetryingClient;
using mempool::serve::RetryPolicy;
using mempool::serve::ServiceResponse;
using mempool::serve::SimClient;
using mempool::serve::SimRequest;
using mempool::serve::SimResult;

struct Options {
  std::string socket_path = "/tmp/mempool_sim.sock";
  uint64_t requests = 1000;
  uint64_t unique = 16;
  uint64_t window = 32;      ///< Pipelining depth in the replay phase.
  uint64_t coalesce = 0;     ///< Identical in-flight requests to demo dedupe.
  uint64_t seed = 1;
  std::string topology = "TopH";
  std::string engine = "active";
  double min_hit_rate = -1;  ///< <0 = don't assert.
  int wait_ms = 0;           ///< Connect retry budget.
  bool verify = false;
  bool shutdown = false;
  bool json = false;
  // Chaos mode.
  bool chaos = false;
  std::string server_bin;        ///< sim_server binary to spawn/kill.
  std::string cache_dir;         ///< Forwarded to the spawned daemon.
  uint64_t kills = 3;            ///< SIGKILLs between requests.
  uint64_t checkpoint_every = 10'000;  ///< Forwarded to the spawned daemon.
  uint64_t slow_cycles = 120'000;      ///< Measure window of the slow point.
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "\n"
      "Load generator / acceptance harness for sim_server.\n"
      "\n"
      "  --socket PATH       server socket (default /tmp/mempool_sim.sock)\n"
      "  --requests N        total run requests (default 1000)\n"
      "  --unique N          distinct points in the mix (default 16)\n"
      "  --window N          pipelined requests in flight (default 32)\n"
      "  --coalesce K        also fire K identical in-flight requests and\n"
      "                      assert at most one computes (default 0 = skip)\n"
      "  --topology NAME     fabric plugin for the points (default TopH)\n"
      "  --engine NAME       engine for the points (default active)\n"
      "  --seed N            base seed for the point grid (default 1)\n"
      "  --verify            recompute every unique point locally and require\n"
      "                      bit-identical server results\n"
      "  --min-hit-rate X    fail unless hits/requests >= X (e.g. 0.5)\n"
      "  --wait MS           retry connecting for MS milliseconds\n"
      "  --shutdown          send the shutdown op when done\n"
      "  --json              machine-readable report on stdout\n"
      "\n"
      "Chaos mode (crash-recovery acceptance):\n"
      "  --chaos             spawn, SIGKILL, and restart the daemon while\n"
      "                      streaming; every request must still complete\n"
      "                      bit-identical to a local run (implies --verify)\n"
      "  --server-bin PATH   sim_server binary to spawn (required w/ --chaos)\n"
      "  --cache-dir DIR     forwarded to the daemon (disk cache + resume)\n"
      "  --kills N           scheduled SIGKILLs between requests (default 3)\n"
      "  --checkpoint-every N  forwarded to the daemon (default 10000)\n"
      "  --slow-cycles N     measure window of the mid-flight-kill point\n"
      "                      (default 120000)\n"
      "  --help              this text\n",
      argv0);
}

/// The point grid: --unique small, fast mini-cluster points that differ in
/// (λ, seed) so each is a distinct cache entry but cheap to compute.
SimRequest make_request(const Options& opt, uint64_t index) {
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::mini(opt.topology, /*scrambling=*/true);
  cfg.lambda = 0.02 + 0.02 * static_cast<double>(index % 8);
  cfg.p_local_seq = 0.0;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 100;
  cfg.seed = opt.seed + index / 8;
  MEMPOOL_CHECK_MSG(mempool::engine_mode_from_name(opt.engine, &cfg.engine),
                    "unknown engine '" << opt.engine << "'; available: "
                                       << mempool::engine_mode_available());
  return SimRequest::from_config(cfg);
}

struct Tally {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;
  uint64_t hits = 0;
  uint64_t coalesced = 0;
  uint64_t computed = 0;
  uint64_t mismatches = 0;

  void add(const ServiceResponse& resp, const SimResult* expected) {
    if (!resp.ok) {
      ++errors;
      std::fprintf(stderr, "loadgen: server error: %s\n", resp.error.c_str());
      return;
    }
    ++ok;
    if (resp.cache_hit) {
      ++hits;
    } else if (resp.coalesced) {
      ++coalesced;
    } else {
      ++computed;
    }
    if (expected != nullptr && !(resp.result == *expected)) {
      ++mismatches;
      std::fprintf(stderr, "loadgen: result mismatch for key %s\n",
                   resp.key.c_str());
    }
  }
};

// --- chaos mode --------------------------------------------------------------

/// Fork+exec the real sim_server binary; the returned pid is what the kill
/// schedule targets (kill(pid) is pid-scoped, the loadgen is never hit).
pid_t spawn_server(const Options& opt) {
  const pid_t pid = ::fork();
  MEMPOOL_CHECK_MSG(pid >= 0, "fork() failed");
  if (pid == 0) {
    std::vector<std::string> args = {opt.server_bin, "--socket",
                                     opt.socket_path, "--quiet"};
    if (!opt.cache_dir.empty()) {
      args.insert(args.end(), {"--cache-dir", opt.cache_dir});
    }
    if (opt.checkpoint_every > 0) {
      args.insert(args.end(), {"--checkpoint-every",
                               std::to_string(opt.checkpoint_every)});
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("execv sim_server");
    ::_exit(127);
  }
  return pid;
}

void kill_server(pid_t pid) {
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

/// A point long enough that a SIGKILL can land mid-computation, sized so the
/// daemon checkpoints it several times before dying.
SimRequest make_slow_request(const Options& opt) {
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::mini(opt.topology, /*scrambling=*/true);
  cfg.lambda = 0.05;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = opt.slow_cycles;
  cfg.drain_cycles = 100;
  cfg.seed = opt.seed + 777;
  MEMPOOL_CHECK_MSG(mempool::engine_mode_from_name(opt.engine, &cfg.engine),
                    "unknown engine '" << opt.engine << "'");
  return SimRequest::from_config(cfg);
}

int run_chaos(const Options& opt) {
  MEMPOOL_CHECK_MSG(!opt.server_bin.empty(), "--chaos requires --server-bin");
  pid_t server = spawn_server(opt);

  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_backoff_ms = 50;
  policy.max_backoff_ms = 1000;
  policy.connect_timeout_ms = 10'000;
  policy.read_timeout_ms = 120'000;
  policy.jitter_seed = opt.seed;
  RetryingClient client(opt.socket_path, policy);

  uint64_t sent = 0, mismatches = 0, errors = 0, kills = 0;

  // Ground truth: every point computed locally, once.
  std::vector<SimRequest> points;
  std::vector<SimResult> expected;
  for (uint64_t i = 0; i < opt.unique; ++i) {
    points.push_back(make_request(opt, i));
    expected.push_back(mempool::serve::run_point(points.back()));
  }
  const SimRequest slow = make_slow_request(opt);
  const SimResult slow_expected = mempool::serve::run_point(slow);

  const auto check = [&](const ServiceResponse& resp, const SimResult& want,
                         const char* phase) {
    ++sent;
    if (!resp.ok) {
      ++errors;
      std::fprintf(stderr, "chaos: %s error: %s\n", phase, resp.error.c_str());
      return;
    }
    if (!(resp.result == want)) {
      ++mismatches;
      std::fprintf(stderr, "chaos: %s result mismatch for key %s\n", phase,
                   resp.key.c_str());
    }
  };

  // Phase 1: prime every point, SIGKILLing + restarting the daemon at evenly
  // spaced points of the stream. The RetryingClient must absorb every death:
  // reconnect to the respawned daemon and re-issue.
  const uint64_t kill_period =
      opt.kills > 0 ? std::max<uint64_t>(1, opt.unique / (opt.kills + 1)) : 0;
  for (uint64_t i = 0; i < opt.unique; ++i) {
    check(client.run(points[i]), expected[i], "prime");
    if (kill_period > 0 && (i + 1) % kill_period == 0 && kills < opt.kills) {
      kill_server(server);
      ++kills;
      server = spawn_server(opt);
    }
  }

  // Phase 2: kill the daemon mid-computation of the slow point. A helper
  // thread SIGKILLs it shortly after the request goes out and respawns it;
  // the client retries, and with --cache-dir the respawned daemon resumes
  // the point from its persisted checkpoint instead of starting over.
  {
    std::atomic<pid_t> respawned{-1};
    std::thread killer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      kill_server(server);
      respawned.store(spawn_server(opt));
    });
    check(client.run(slow), slow_expected, "slow");
    killer.join();
    server = respawned.load();
    ++kills;
  }

  // Phase 3: replay everything after the restarts. With a disk cache these
  // are hits; without one the respawned daemon recomputes — either way the
  // results must match the local ground truth bit for bit.
  for (uint64_t i = 0; i < opt.unique; ++i) {
    check(client.run(points[i]), expected[i], "replay");
  }
  check(client.run(slow), slow_expected, "replay-slow");

  Json metrics;
  try {
    SimClient plain(opt.socket_path, opt.wait_ms > 0 ? opt.wait_ms : 2000);
    metrics = plain.metrics();
    plain.shutdown_server();
  } catch (const mempool::CheckError&) {
    // Metrics are best-effort; the daemon is killed below regardless.
  }
  kill_server(server);

  Json report = Json::object();
  report.set("requests", sent);
  report.set("errors", errors);
  report.set("mismatches", mismatches);
  report.set("kills", kills);
  report.set("reconnects", client.reconnects());
  report.set("retries", client.retries());
  if (!metrics.is_null()) report.set("server_metrics", metrics);
  if (opt.json) {
    std::printf("%s\n", report.dump(2).c_str());
  } else {
    std::printf(
        "chaos: %llu requests across %llu daemon kills → %llu errors, "
        "%llu mismatches (%llu reconnects, %llu retries)\n",
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(kills),
        static_cast<unsigned long long>(errors),
        static_cast<unsigned long long>(mismatches),
        static_cast<unsigned long long>(client.reconnects()),
        static_cast<unsigned long long>(client.retries()));
  }
  if (errors > 0 || mismatches > 0) return 1;
  if (kills > 0 && client.reconnects() == 0) {
    std::fprintf(stderr,
                 "chaos: daemon was killed %llu times but the client never "
                 "reconnected — the schedule exercised nothing\n",
                 static_cast<unsigned long long>(kills));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      opt.socket_path = value();
    } else if (arg == "--requests") {
      opt.requests = std::stoull(value());
    } else if (arg == "--unique") {
      opt.unique = std::stoull(value());
    } else if (arg == "--window") {
      opt.window = std::stoull(value());
    } else if (arg == "--coalesce") {
      opt.coalesce = std::stoull(value());
    } else if (arg == "--topology") {
      opt.topology = value();
    } else if (arg == "--engine") {
      opt.engine = value();
    } else if (arg == "--seed") {
      opt.seed = std::stoull(value());
    } else if (arg == "--verify") {
      opt.verify = true;
    } else if (arg == "--min-hit-rate") {
      opt.min_hit_rate = std::stod(value());
    } else if (arg == "--wait") {
      opt.wait_ms = std::stoi(value());
    } else if (arg == "--shutdown") {
      opt.shutdown = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--chaos") {
      opt.chaos = true;
    } else if (arg == "--server-bin") {
      opt.server_bin = value();
    } else if (arg == "--cache-dir") {
      opt.cache_dir = value();
    } else if (arg == "--kills") {
      opt.kills = std::stoull(value());
    } else if (arg == "--checkpoint-every") {
      opt.checkpoint_every = std::stoull(value());
    } else if (arg == "--slow-cycles") {
      opt.slow_cycles = std::stoull(value());
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "error: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (opt.chaos) {
    try {
      return run_chaos(opt);
    } catch (const mempool::CheckError& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  if (opt.unique == 0 || opt.requests < opt.unique || opt.window == 0) {
    std::fprintf(stderr,
                 "error: need --unique >= 1, --requests >= --unique, "
                 "--window >= 1\n");
    return 2;
  }

  try {
    SimClient client(opt.socket_path, opt.wait_ms);
    MEMPOOL_CHECK_MSG(client.ping(), "server did not answer ping");

    Tally tally;

    // Phase 1: prime every unique point (cold computations).
    std::vector<SimRequest> points;
    std::vector<SimResult> primed;
    points.reserve(opt.unique);
    primed.reserve(opt.unique);
    for (uint64_t i = 0; i < opt.unique; ++i) {
      points.push_back(make_request(opt, i));
      const ServiceResponse resp = client.run(points.back());
      ++tally.sent;
      const SimResult* expected = nullptr;
      SimResult local;
      if (opt.verify && resp.ok) {
        local = mempool::serve::run_point(points.back());
        expected = &local;
      }
      tally.add(resp, expected);
      MEMPOOL_CHECK_MSG(resp.ok, "prime phase failed: " << resp.error);
      primed.push_back(resp.result);
    }

    // Phase 2: replay random repeats, --window pipelined at a time; every
    // response must be bit-identical to its primed result.
    Rng rng(opt.seed ^ 0x10adc0de'0000'0000ull);
    uint64_t remaining = opt.requests - opt.unique;
    std::map<uint64_t, uint64_t> id_to_point;
    uint64_t in_flight = 0;
    auto drain_one = [&] {
      const Json line = client.recv_line();
      const ServiceResponse resp =
          mempool::serve::response_from_json(line);
      const uint64_t id = line.at("id").as_uint();
      const auto it = id_to_point.find(id);
      MEMPOOL_CHECK_MSG(it != id_to_point.end(),
                        "response for unknown id " << id);
      tally.add(resp, &primed[it->second]);
      id_to_point.erase(it);
      --in_flight;
    };
    while (remaining > 0 || in_flight > 0) {
      while (remaining > 0 && in_flight < opt.window) {
        const uint64_t pick = rng.next_below(opt.unique);
        uint64_t id = 0;
        client.send_line(client.make_run_line(points[pick], &id));
        id_to_point.emplace(id, pick);
        ++tally.sent;
        ++in_flight;
        --remaining;
      }
      drain_one();
    }

    // Phase 3: coalescing demo — K identical requests for a never-seen
    // point, fired back-to-back. At most one computes; the rest piggyback on
    // it (or hit the cache if they arrive after it completes).
    uint64_t coalesce_computed = 0;
    if (opt.coalesce > 0) {
      const SimRequest fresh = make_request(opt, 100'000 + opt.unique);
      std::vector<uint64_t> ids;
      for (uint64_t i = 0; i < opt.coalesce; ++i) {
        uint64_t id = 0;
        client.send_line(client.make_run_line(fresh, &id));
        ids.push_back(id);
        ++tally.sent;
      }
      for (uint64_t i = 0; i < opt.coalesce; ++i) {
        const ServiceResponse resp =
            mempool::serve::response_from_json(client.recv_line());
        tally.add(resp, nullptr);
        MEMPOOL_CHECK_MSG(resp.ok, "coalesce phase failed: " << resp.error);
        if (!resp.cache_hit && !resp.coalesced) ++coalesce_computed;
      }
      MEMPOOL_CHECK_MSG(coalesce_computed <= 1,
                        "coalescing failed: " << coalesce_computed << " of "
                                              << opt.coalesce
                                              << " identical in-flight "
                                                 "requests were computed");
    }

    const Json metrics = client.metrics();
    if (opt.shutdown) client.shutdown_server();

    const double hit_rate =
        tally.sent > 0
            ? static_cast<double>(tally.hits) / static_cast<double>(tally.sent)
            : 0.0;
    const Json overall = metrics.at("service_ms").at("overall");

    Json report = Json::object();
    report.set("requests", tally.sent);
    report.set("ok", tally.ok);
    report.set("errors", tally.errors);
    report.set("cache_hits", tally.hits);
    report.set("coalesced", tally.coalesced);
    report.set("computed", tally.computed);
    report.set("mismatches", tally.mismatches);
    report.set("hit_rate", hit_rate);
    report.set("verified", opt.verify);
    report.set("server_p50_ms", overall.at("p50").as_double());
    report.set("server_p99_ms", overall.at("p99").as_double());
    report.set("server_metrics", metrics);
    if (opt.json) {
      std::printf("%s\n", report.dump(2).c_str());
    } else {
      std::printf(
          "loadgen: %llu requests → %llu ok, %llu errors | %llu hits, "
          "%llu coalesced, %llu computed (hit rate %.1f%%)\n"
          "loadgen: server service latency p50 %.3f ms, p99 %.3f ms\n",
          static_cast<unsigned long long>(tally.sent),
          static_cast<unsigned long long>(tally.ok),
          static_cast<unsigned long long>(tally.errors),
          static_cast<unsigned long long>(tally.hits),
          static_cast<unsigned long long>(tally.coalesced),
          static_cast<unsigned long long>(tally.computed), hit_rate * 100.0,
          overall.at("p50").as_double(), overall.at("p99").as_double());
      if (opt.verify) {
        std::printf(
            "loadgen: all %llu unique points bit-identical to local "
            "run_point\n",
            static_cast<unsigned long long>(opt.unique));
      }
    }

    if (tally.errors > 0 || tally.mismatches > 0) return 1;
    if (opt.min_hit_rate >= 0 && hit_rate < opt.min_hit_rate) {
      std::fprintf(stderr, "loadgen: hit rate %.3f below required %.3f\n",
                   hit_rate, opt.min_hit_rate);
      return 1;
    }
  } catch (const mempool::CheckError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
