// Memory-system registry (mem/memsys.hpp): plugin discovery, MemorySpec
// parameter validation, the satellite AddrMap/Scrambler sequential-region
// validation (clear errors listing valid values instead of an unexplained
// abort deep in construction), and the tcdm+l2 DMA engine end to end — a
// Snitch program moving data L2 -> TCDM -> L2 through the DMA CSR
// intrinsics, checked against the backdoor on every engine mode.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "isa/assembler.hpp"
#include "isa/csr.hpp"
#include "kernels/runtime.hpp"
#include "mem/dma.hpp"
#include "mem/memsys.hpp"
#include "noc/fabric.hpp"

namespace mempool {
namespace {

using isa::Assembler;
using isa::Reg;

// --- registry -----------------------------------------------------------------

TEST(MemoryRegistry, BuiltinsRegistered) {
  const std::vector<std::string> names = MemoryRegistry::names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], "tcdm");
  EXPECT_EQ(names[1], "tcdm+l2");
  EXPECT_NE(MemoryRegistry::find("tcdm"), nullptr);
  EXPECT_EQ(MemoryRegistry::find("no-such-memory"), nullptr);
  for (const std::string& n : names) {
    EXPECT_FALSE(MemoryRegistry::get(n).description().empty());
  }
}

TEST(MemoryRegistry, UnknownNameListsAvailable) {
  try {
    MemoryRegistry::get("l3-of-wonders");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("l3-of-wonders"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tcdm+l2"), std::string::npos) << msg;
  }
}

TEST(MemoryRegistry, UnknownSpecNameFailsValidation) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.memory = MemorySpec{"no-such-memory"};
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(MemoryRegistry, UnknownParamRejected) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.memory = MemorySpec{"tcdm+l2", {{"l2_size", Json(uint64_t{1024})}}};
  try {
    cfg.validate();
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("l2_size"), std::string::npos) << msg;
  }
}

TEST(MemoryRegistry, IllTypedParamRejected) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.memory = MemorySpec{"tcdm+l2", {{"l2_latency", Json("fast")}}};
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(MemoryRegistry, BadL2GeometryRejected) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.memory = MemorySpec{"tcdm+l2", {{"l2_bytes", Json(uint64_t{100})}}};
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.memory = MemorySpec{"tcdm+l2", {{"l2_latency", Json(uint64_t{0})}}};
  EXPECT_THROW(cfg.validate(), CheckError);
  cfg.memory =
      MemorySpec{"tcdm+l2", {{"axi_words_per_cycle", Json(uint64_t{0})}}};
  EXPECT_THROW(cfg.validate(), CheckError);
}

// --- satellite: sequential-region validation ----------------------------------

TEST(SeqRegionValidation, NonPowerOfTwoListsValidValues) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.seq_region_bytes = 3000;
  try {
    cfg.validate();
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("3000"), std::string::npos) << msg;
    EXPECT_NE(msg.find("power of two"), std::string::npos) << msg;
    // The list of valid values for 16 banks x 1 KiB: 64 ... 16384.
    EXPECT_NE(msg.find("16384"), std::string::npos) << msg;
  }
}

TEST(SeqRegionValidation, BelowOneSweepListsValidValues) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.seq_region_bytes = 32;  // one sweep of 16 banks is 64 B
  try {
    cfg.validate();
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("interleaving sweep"), std::string::npos) << msg;
    EXPECT_NE(msg.find("64"), std::string::npos) << msg;
  }
}

TEST(SeqRegionValidation, AboveTileShareListsValidValues) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.seq_region_bytes = 32768;  // tile share is 16 KiB
  try {
    cfg.validate();
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("SPM share"), std::string::npos) << msg;
    EXPECT_NE(msg.find("16384"), std::string::npos) << msg;
  }
}

TEST(SeqRegionValidation, ClusterCtorFailsWithClearMessage) {
  // The construction path must fail in validate(), with the explanatory
  // message — not via a bare CHECK inside Scrambler.
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.seq_region_bytes = 5000;
  InstrMem imem(4096);
  try {
    Cluster cluster(cfg, &imem);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("power of two"), std::string::npos)
        << e.what();
  }
}

TEST(SeqRegionValidation, NonPow2GeometryNamesField) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.banks_per_tile = 12;
  try {
    cfg.validate();
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("banks_per_tile"), std::string::npos)
        << e.what();
  }
}

// --- energy / floorplan hooks -------------------------------------------------

TEST(MemorySystemHooks, EnergyRowsAndArea) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  const EnergyParams p;
  const MemorySystem& tcdm = MemoryRegistry::get("tcdm");
  EXPECT_TRUE(tcdm.energy_rows(cfg, p).empty());
  EXPECT_EQ(tcdm.extra_area_mm2(cfg), 0.0);

  const MemorySystem& l2 = MemoryRegistry::get("tcdm+l2");
  const auto rows = l2.energy_rows(cfg, p);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].energy.total(),
                   p.axi_word + p.l2_access + p.bank_access);
  // 8 MiB default L2 at ~0.55 mm^2/MiB.
  EXPECT_NEAR(l2.extra_area_mm2(cfg), 8 * 0.55, 1e-9);
}

// --- DMA engine end to end ----------------------------------------------------

ClusterConfig l2_mini(EngineMode /*mode*/ = EngineMode::kActive) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.memory = MemorySpec{"tcdm+l2"};
  cfg.validate();
  return cfg;
}

constexpr uint32_t kL2Base = 0xA000'0000u;

/// Program: core 0 DMAs @p words words from L2 into the SPM at @p spm_base,
/// waits, every core increments its own slice in place, then core 0 DMAs the
/// block back out to a second L2 buffer and waits. Everything else barriers.
std::vector<uint32_t> dma_roundtrip_program(const ClusterConfig& cfg,
                                            uint32_t spm_base, uint32_t words,
                                            uint32_t l2_in, uint32_t l2_out) {
  Assembler a;
  kernels::emit_crt0(a, cfg, /*stack_bytes=*/256);
  kernels::emit_barrier(a, cfg, kernels::make_runtime_layout(cfg));

  a.l("main");
  a.mv(Reg::s11, Reg::ra);
  a.bnez(Reg::a0, "after_in");
  a.li(Reg::t0, static_cast<int32_t>(l2_in));
  a.li(Reg::t1, static_cast<int32_t>(spm_base));
  a.li(Reg::t2, static_cast<int32_t>(words));
  kernels::emit_dma_copy_in(a, Reg::t0, Reg::t1, Reg::t2);
  kernels::emit_dma_wait(a, Reg::t3);
  a.l("after_in");
  a.call("barrier");

  // Each core owns words/num_cores consecutive words; increment by hartid+1.
  const uint32_t per_core = words / cfg.num_cores();
  a.li(Reg::t0, static_cast<int32_t>(per_core));
  a.mul(Reg::t1, Reg::a0, Reg::t0);
  a.slli(Reg::t1, Reg::t1, 2);
  a.li(Reg::t2, static_cast<int32_t>(spm_base));
  a.add(Reg::t1, Reg::t1, Reg::t2);          // &slice[0]
  a.addi(Reg::t4, Reg::a0, 1);               // hartid + 1
  a.l("bump");
  a.lw(Reg::t5, Reg::t1, 0);
  a.add(Reg::t5, Reg::t5, Reg::t4);
  a.sw(Reg::t5, Reg::t1, 0);
  a.addi(Reg::t1, Reg::t1, 4);
  a.addi(Reg::t0, Reg::t0, -1);
  a.bnez(Reg::t0, "bump");
  a.call("barrier");

  a.bnez(Reg::a0, "after_out");
  a.li(Reg::t0, static_cast<int32_t>(spm_base));
  a.li(Reg::t1, static_cast<int32_t>(l2_out));
  a.li(Reg::t2, static_cast<int32_t>(words));
  kernels::emit_dma_copy_out(a, Reg::t0, Reg::t1, Reg::t2);
  kernels::emit_dma_wait(a, Reg::t3);
  a.l("after_out");
  a.call("barrier");
  a.mv(Reg::ra, Reg::s11);
  a.ret();
  return a.finish();
}

struct DmaRunResult {
  uint64_t cycles = 0;
  std::vector<uint32_t> out;
  MemoryStats mem;
  SnitchCore::Stats cores;
};

DmaRunResult run_dma_roundtrip(EngineMode mode, unsigned sim_threads) {
  const ClusterConfig cfg = l2_mini();
  const kernels::RuntimeLayout layout = kernels::make_runtime_layout(cfg);
  const uint32_t words = 1024;  // spans all 4 groups under the hybrid map
  const uint32_t spm_base = layout.data_base;
  const uint32_t l2_in = kL2Base;
  const uint32_t l2_out = kL2Base + 64 * 1024;

  System sys(cfg);
  sys.configure_engine(mode, sim_threads);
  sys.load_program(
      dma_roundtrip_program(cfg, spm_base, words, l2_in, l2_out));
  for (uint32_t i = 0; i < words; ++i) {
    sys.write_word(l2_in + 4 * i, 1000 + i);
  }
  const System::RunResult r = sys.run(2'000'000);
  EXPECT_TRUE(r.all_halted);

  DmaRunResult out;
  out.cycles = r.cycles;
  out.out = sys.read_words(l2_out, words);
  out.mem = sys.cluster().memory_stats();
  out.cores = sys.aggregate_core_stats();
  return out;
}

TEST(DmaEngine, RoundTripMovesAndCounts) {
  const DmaRunResult r = run_dma_roundtrip(EngineMode::kActive, 1);
  const ClusterConfig cfg = l2_mini();
  const uint32_t per_core = 1024 / cfg.num_cores();
  for (uint32_t i = 0; i < 1024; ++i) {
    const uint32_t owner = i / per_core;
    EXPECT_EQ(r.out[i], 1000 + i + owner + 1) << "word " << i;
  }
  EXPECT_EQ(r.mem.dma_descriptors, 2u);
  EXPECT_EQ(r.mem.dma_words_in, 1024u);
  EXPECT_EQ(r.mem.dma_words_out, 1024u);
  EXPECT_EQ(r.mem.l2_reads, 1024u);
  EXPECT_EQ(r.mem.l2_writes, 1024u);
  EXPECT_GT(r.mem.dma_busy_cycles, 0u);
  EXPECT_GE(r.mem.dma_busy_cycles, r.mem.dma_busy_cycles_max);
  // 1024 interleaved words at 16-word granularity touch all 4 groups.
  EXPECT_EQ(r.mem.dma_slices, 8u);
  EXPECT_EQ(r.cores.dma_submits, 2u);
}

TEST(DmaEngine, EngineModesBitIdentical) {
  const DmaRunResult active = run_dma_roundtrip(EngineMode::kActive, 1);
  const DmaRunResult dense = run_dma_roundtrip(EngineMode::kDense, 1);
  const DmaRunResult sharded = run_dma_roundtrip(EngineMode::kSharded, 8);
  EXPECT_EQ(active.cycles, dense.cycles);
  EXPECT_EQ(active.cycles, sharded.cycles);
  EXPECT_EQ(active.out, dense.out);
  EXPECT_EQ(active.out, sharded.out);
  EXPECT_EQ(active.mem, dense.mem);
  EXPECT_EQ(active.mem, sharded.mem);
}

TEST(DmaEngine, StridedOutTransfersMatch) {
  // 2-D copy-out: an 8x8 SPM block scattered into L2 rows of 32 words.
  const ClusterConfig cfg = l2_mini();
  const kernels::RuntimeLayout layout = kernels::make_runtime_layout(cfg);
  const uint32_t spm_base = layout.data_base;

  Assembler a;
  kernels::emit_crt0(a, cfg, 256);
  kernels::emit_barrier(a, cfg, kernels::make_runtime_layout(cfg));
  a.l("main");
  a.mv(Reg::s11, Reg::ra);
  a.bnez(Reg::a0, "skip");
  a.li(Reg::t0, 8);
  a.li(Reg::t1, 8 * 4);
  a.li(Reg::t2, 32 * 4);
  kernels::emit_dma_shape(a, Reg::t0, Reg::t1, Reg::t2);
  a.li(Reg::t0, static_cast<int32_t>(spm_base));
  a.li(Reg::t1, static_cast<int32_t>(kL2Base));
  a.li(Reg::t2, 8);
  kernels::emit_dma_copy_out(a, Reg::t0, Reg::t1, Reg::t2);
  kernels::emit_dma_wait(a, Reg::t3);
  a.l("skip");
  a.call("barrier");
  a.mv(Reg::ra, Reg::s11);
  a.ret();

  System sys(cfg);
  sys.load_program(a.finish());
  for (uint32_t i = 0; i < 64; ++i) {
    sys.write_word(spm_base + 4 * i, 7000 + i);
  }
  EXPECT_TRUE(sys.run(1'000'000).all_halted);
  for (uint32_t r = 0; r < 8; ++r) {
    for (uint32_t c = 0; c < 8; ++c) {
      EXPECT_EQ(sys.read_word(kL2Base + (r * 32 + c) * 4), 7000 + r * 8 + c)
          << "row " << r << " col " << c;
    }
  }
}

TEST(DmaEngine, MalformedDescriptorsAbortLoudly) {
  const ClusterConfig cfg = l2_mini();
  InstrMem imem(4096);
  Cluster cluster(cfg, &imem);
  Engine engine;
  // Portal reachable without running a program: exercise submit validation.
  DmaPortal* dma = cluster.dma_portal(0);
  ASSERT_NE(dma, nullptr);

  DmaDescriptor d;
  d.src = kL2Base;
  d.dst = kernels::make_runtime_layout(cfg).data_base;
  d.words_per_row = 0;  // empty
  EXPECT_THROW(dma->submit(0, d), CheckError);
  d.words_per_row = 4;
  d.dst = kL2Base + 4096;  // both sides in L2
  EXPECT_THROW(dma->submit(0, d), CheckError);
  d.dst = 2;  // misaligned
  EXPECT_THROW(dma->submit(0, d), CheckError);
  d.dst = cfg.spm_bytes() - 8;  // runs off the end of the SPM
  d.words_per_row = 16;
  EXPECT_THROW(dma->submit(0, d), CheckError);
}

TEST(DmaEngine, TcdmHasNoPortalAndCsrAborts) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  InstrMem imem(4096);
  Cluster cluster(cfg, &imem);
  EXPECT_EQ(cluster.dma_portal(0), nullptr);

  // A DMA CSR access on plain tcdm must abort with the clear error.
  Assembler a;
  a.l("_start");
  a.csrr(Reg::t0, isa::kCsrDmaPending);
  System sys(cfg);
  sys.load_program(a.finish());
  try {
    sys.run(1000);  // long enough to fetch through the cold I$
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("tcdm+l2"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace mempool
