// SpscRing (common/spsc_ring.hpp): wraparound against a scalar reference
// model, full/empty boundary conditions, the cache-line-padded layout the
// cross-shard hand-off depends on, and a two-thread producer/consumer
// stress test (exercised under the TSan CI job).

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/spsc_ring.hpp"

namespace mempool {
namespace {

// --- layout: producer and consumer control words on distinct lines --------

static_assert(alignof(SpscRing<uint64_t>) == kCacheLineBytes,
              "ring must start cache-line aligned");
static_assert(sizeof(SpscRing<uint64_t>) >= 3 * kCacheLineBytes,
              "shared/producer/consumer sections must occupy distinct lines");
static_assert(!std::is_copy_constructible_v<SpscRing<uint64_t>> &&
                  !std::is_move_constructible_v<SpscRing<uint64_t>>,
              "rings are pinned like the components that use them");

TEST(SpscRing, StartsUninitializedAndRoundsCapacityUpToPow2) {
  SpscRing<int> r;
  EXPECT_FALSE(r.initialized());
  EXPECT_EQ(r.capacity(), 0u);
  r.init(5);
  EXPECT_TRUE(r.initialized());
  EXPECT_EQ(r.capacity(), 8u);

  SpscRing<int> tiny;
  tiny.init(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  SpscRing<int> r;
  r.init(4);
  int out = 0;
  EXPECT_FALSE(r.try_pop(&out));  // empty at start
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99));  // full at capacity
  EXPECT_EQ(r.size_unsync(), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(r.try_pop(&out));
    EXPECT_EQ(out, i);  // FIFO
  }
  EXPECT_FALSE(r.try_pop(&out));  // empty again
  EXPECT_EQ(r.size_unsync(), 0u);
  // And refillable after a full drain.
  EXPECT_TRUE(r.try_push(7));
  ASSERT_TRUE(r.try_pop(&out));
  EXPECT_EQ(out, 7);
}

TEST(SpscRing, WraparoundMatchesScalarReferenceModel) {
  // Randomised push/pop bursts against std::deque; the ring's indices wrap
  // many times over at capacity 8.
  SpscRing<uint64_t> r;
  r.init(8);
  std::deque<uint64_t> model;
  Rng rng(0x5EED);
  uint64_t next = 0;
  for (int step = 0; step < 20000; ++step) {
    if ((rng.next_u64() & 1u) != 0) {
      const bool ok = r.try_push(next);
      if (model.size() < r.capacity()) {
        ASSERT_TRUE(ok);
        model.push_back(next);
        ++next;
      } else {
        ASSERT_FALSE(ok);
      }
    } else {
      uint64_t got = 0;
      const bool ok = r.try_pop(&got);
      if (!model.empty()) {
        ASSERT_TRUE(ok);
        ASSERT_EQ(got, model.front());
        model.pop_front();
      } else {
        ASSERT_FALSE(ok);
      }
    }
    ASSERT_EQ(r.size_unsync(), model.size());
  }
}

TEST(SpscRing, SingleElementRingAlternates) {
  SpscRing<int> r;
  r.init(2);
  int out = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(r.try_push(i));
    ASSERT_TRUE(r.try_push(i + 1000000));
    ASSERT_FALSE(r.try_push(-1));
    ASSERT_TRUE(r.try_pop(&out));
    ASSERT_EQ(out, i);
    ASSERT_TRUE(r.try_pop(&out));
    ASSERT_EQ(out, i + 1000000);
    ASSERT_FALSE(r.try_pop(&out));
  }
}

TEST(SpscRingStress, TwoThreadProducerConsumer) {
  // One producer, one consumer, a deliberately small ring so both the full
  // and empty paths (and the index-cache refreshes) are hit constantly.
  // Under TSan this validates the acquire/release protocol end to end.
  constexpr uint64_t kCount = 200000;
  SpscRing<uint64_t> r;
  r.init(16);

  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!r.try_push(i)) std::this_thread::yield();
    }
  });

  uint64_t sum = 0;
  uint64_t expected_next = 0;
  bool ordered = true;
  for (uint64_t received = 0; received < kCount;) {
    uint64_t v = 0;
    if (!r.try_pop(&v)) {
      std::this_thread::yield();
      continue;
    }
    ordered = ordered && (v == expected_next);
    ++expected_next;
    sum += v;
    ++received;
  }
  producer.join();

  EXPECT_TRUE(ordered) << "values arrived out of order";
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
  EXPECT_EQ(r.size_unsync(), 0u);
}

}  // namespace
}  // namespace mempool
