#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "isa/decoder.hpp"
#include "isa/text_asm.hpp"

namespace mempool::isa {
namespace {

TEST(TextAsm, MatchesBuilderEncoding) {
  const auto words = assemble_text(R"(
    addi t0, zero, 5
    add  t1, t0, t0
    lw   a0, 8(sp)
    sw   a0, -4(s0)
    beq  t0, t1, done
    j    done
  done:
    ret
  )");
  Assembler b;
  b.addi(Reg::t0, Reg::zero, 5);
  b.add(Reg::t1, Reg::t0, Reg::t0);
  b.lw(Reg::a0, Reg::sp, 8);
  b.sw(Reg::a0, Reg::s0, -4);
  b.beq(Reg::t0, Reg::t1, "done");
  b.j("done");
  b.l("done");
  b.ret();
  EXPECT_EQ(words, b.finish());
}

TEST(TextAsm, NumericAndAbiRegisterNames) {
  const auto w1 = assemble_text("add x10, x11, x12");
  const auto w2 = assemble_text("add a0, a1, a2");
  EXPECT_EQ(w1, w2);
}

TEST(TextAsm, HexAndNegativeImmediates) {
  const auto w = assemble_text(R"(
    li t0, 0x10
    li t1, -16
    addi t2, zero, +12
  )");
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(decode(w[0]).imm, 16);
  EXPECT_EQ(decode(w[1]).imm, -16);
  EXPECT_EQ(decode(w[2]).imm, 12);
}

TEST(TextAsm, CommentsAndBlankLines) {
  const auto w = assemble_text(R"(
    # full-line comment
    nop            # trailing comment
    nop            // c++ style

    ; asm style
  )");
  EXPECT_EQ(w.size(), 2u);
}

TEST(TextAsm, LabelOnSameLineAsInstruction) {
  const auto w = assemble_text(R"(
    top: nop
    j top
  )");
  ASSERT_EQ(w.size(), 2u);
  EXPECT_EQ(decode(w[1]).imm, -4);
}

TEST(TextAsm, CsrSymbolicNames) {
  const auto w = assemble_text(R"(
    csrr a0, mhartid
    csrr a1, numcores
    csrr a2, mcycle
  )");
  EXPECT_EQ(decode(w[0]).csr, 0xF14);
  EXPECT_EQ(decode(w[1]).csr, 0xFC0);
  EXPECT_EQ(decode(w[2]).csr, 0xB00);
}

TEST(TextAsm, AmoSyntax) {
  const auto w = assemble_text(R"(
    lr.w t0, (a0)
    sc.w t1, t2, (a0)
    amoadd.w t3, t4, (a1)
  )");
  EXPECT_EQ(decode(w[0]).kind, Kind::kLrW);
  EXPECT_EQ(decode(w[1]).kind, Kind::kScW);
  EXPECT_EQ(decode(w[2]).kind, Kind::kAmoAddW);
  EXPECT_EQ(decode(w[2]).rs1, 11);
}

TEST(TextAsm, WordDirective) {
  const auto w = assemble_text(".word 0xCAFEBABE");
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0], 0xCAFEBABEu);
}

TEST(TextAsm, PseudoBranches) {
  const auto w = assemble_text(R"(
    top:
    beqz t0, top
    bnez t1, top
    blez t2, top
    bgtz t3, top
  )");
  EXPECT_EQ(decode(w[0]).kind, Kind::kBeq);
  EXPECT_EQ(decode(w[1]).kind, Kind::kBne);
  EXPECT_EQ(decode(w[2]).kind, Kind::kBge);
  EXPECT_EQ(decode(w[3]).kind, Kind::kBlt);
}

TEST(TextAsm, ErrorsCarryLineNumbers) {
  try {
    assemble_text("nop\nbogus t0, t1\n");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(TextAsm, BadRegisterRejected) {
  EXPECT_THROW(assemble_text("add q0, t1, t2"), CheckError);
}

TEST(TextAsm, WrongOperandCountRejected) {
  EXPECT_THROW(assemble_text("add t0, t1"), CheckError);
}

TEST(TextAsm, JalrForms) {
  const auto w = assemble_text(R"(
    jalr t0
    jalr ra, 4(t1)
    jalr zero, t2, 0
  )");
  EXPECT_EQ(decode(w[0]).rs1, 5);
  EXPECT_EQ(decode(w[0]).rd, 1);
  EXPECT_EQ(decode(w[1]).imm, 4);
  EXPECT_EQ(decode(w[2]).rd, 0);
}

}  // namespace
}  // namespace mempool::isa
