#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "mem/rob.hpp"

namespace mempool {
namespace {

RobEntry meta(uint8_t rd) {
  RobEntry e;
  e.rd = rd;
  return e;
}

TEST(ReorderBuffer, AllocFillRetire) {
  ReorderBuffer rob(4);
  const uint16_t t0 = rob.allocate(meta(5));
  EXPECT_FALSE(rob.head_ready());
  rob.fill(t0, 0x1234);
  ASSERT_TRUE(rob.head_ready());
  const RobEntry e = rob.pop_head();
  EXPECT_EQ(e.rd, 5);
  EXPECT_EQ(e.data, 0x1234u);
  EXPECT_TRUE(rob.empty());
}

TEST(ReorderBuffer, InOrderRetirementDespiteOutOfOrderFills) {
  ReorderBuffer rob(4);
  const uint16_t t0 = rob.allocate(meta(1));
  const uint16_t t1 = rob.allocate(meta(2));
  const uint16_t t2 = rob.allocate(meta(3));
  rob.fill(t2, 30);  // youngest completes first
  rob.fill(t1, 20);
  EXPECT_FALSE(rob.head_ready()) << "head (t0) not done yet";
  rob.fill(t0, 10);
  EXPECT_EQ(rob.pop_head().data, 10u);
  EXPECT_EQ(rob.pop_head().data, 20u);
  EXPECT_EQ(rob.pop_head().data, 30u);
}

TEST(ReorderBuffer, FullBlocksAllocation) {
  ReorderBuffer rob(2);
  rob.allocate(meta(1));
  rob.allocate(meta(2));
  EXPECT_TRUE(rob.full());
  EXPECT_THROW(rob.allocate(meta(3)), CheckError);
}

TEST(ReorderBuffer, RollbackTail) {
  ReorderBuffer rob(2);
  const uint16_t t0 = rob.allocate(meta(1));
  rob.allocate(meta(2));
  rob.rollback_tail();
  EXPECT_EQ(rob.in_flight(), 1u);
  rob.fill(t0, 5);
  EXPECT_EQ(rob.pop_head().data, 5u);
  // The rolled-back slot is reusable.
  const uint16_t t2 = rob.allocate(meta(3));
  rob.fill(t2, 7);
  EXPECT_EQ(rob.pop_head().data, 7u);
}

TEST(ReorderBuffer, WrapAroundTags) {
  ReorderBuffer rob(3);
  for (int round = 0; round < 10; ++round) {
    const uint16_t a = rob.allocate(meta(1));
    const uint16_t b = rob.allocate(meta(2));
    rob.fill(b, 2 * round + 1);
    rob.fill(a, 2 * round);
    EXPECT_EQ(rob.pop_head().data, static_cast<uint32_t>(2 * round));
    EXPECT_EQ(rob.pop_head().data, static_cast<uint32_t>(2 * round + 1));
  }
}

TEST(ReorderBuffer, DoubleFillThrows) {
  ReorderBuffer rob(2);
  const uint16_t t = rob.allocate(meta(1));
  rob.fill(t, 1);
  EXPECT_THROW(rob.fill(t, 2), CheckError);
}

// --- stress coverage: wraparound + out-of-order bursts vs a reference -------

/// Scalar reference: a plain FIFO of (sequence id, rd, data?) entries. The
/// real ring must retire exactly this order with exactly these payloads, no
/// matter how tags wrap or responses interleave.
struct RefModel {
  struct Entry {
    uint64_t seq;
    uint8_t rd;
    std::optional<uint32_t> data;
  };
  std::deque<Entry> fifo;
  uint64_t next_seq = 0;

  uint64_t allocate(uint8_t rd) {
    fifo.push_back({next_seq, rd, std::nullopt});
    return next_seq++;
  }
  void fill(uint64_t seq, uint32_t data) {
    for (Entry& e : fifo) {
      if (e.seq == seq) {
        ASSERT_FALSE(e.data.has_value());
        e.data = data;
        return;
      }
    }
    FAIL() << "fill of unknown seq " << seq;
  }
  bool head_ready() const {
    return !fifo.empty() && fifo.front().data.has_value();
  }
  Entry pop_head() {
    Entry e = fifo.front();
    fifo.pop_front();
    return e;
  }
};

TEST(ReorderBufferStress, IndexWraparoundAgainstReference) {
  // Thousands of allocate/fill/retire steps on a small ring: the tag space
  // wraps hundreds of times while occupancy swings between empty and full.
  // Responses arrive in randomized order; every retirement is compared
  // against the scalar reference model.
  constexpr std::size_t kCap = 8;
  ReorderBuffer rob(kCap);
  RefModel ref;
  Rng rng(0xB0B5);

  std::vector<std::pair<uint16_t, uint64_t>> outstanding;  // (tag, seq)
  uint32_t payload = 0;
  for (int step = 0; step < 20000; ++step) {
    const uint64_t choice = rng.next_below(3);
    if (choice == 0 && !rob.full()) {
      const uint8_t rd = static_cast<uint8_t>(rng.next_below(32));
      const uint16_t tag = rob.allocate(meta(rd));
      const uint64_t seq = ref.allocate(rd);
      outstanding.emplace_back(tag, seq);
    } else if (choice == 1 && !outstanding.empty()) {
      // Respond to a random outstanding entry (out-of-order by design).
      const std::size_t i = rng.next_below(outstanding.size());
      const auto [tag, seq] = outstanding[i];
      outstanding.erase(outstanding.begin() + static_cast<long>(i));
      rob.fill(tag, payload);
      ref.fill(seq, payload);
      ++payload;
    } else {
      while (rob.head_ready()) {
        ASSERT_TRUE(ref.head_ready());
        const RobEntry got = rob.pop_head();
        const RefModel::Entry want = ref.pop_head();
        ASSERT_EQ(got.rd, want.rd) << "step " << step;
        ASSERT_EQ(got.data, *want.data) << "step " << step;
      }
      ASSERT_FALSE(ref.head_ready());
    }
    ASSERT_EQ(rob.in_flight(), ref.fifo.size());
    ASSERT_EQ(rob.full(), ref.fifo.size() == kCap);
  }
}

TEST(ReorderBufferStress, ReversedBurstsAtFullCapacity) {
  // Repeatedly fill the ROB to capacity, answer the whole burst strictly
  // youngest-first (fully reversed), and drain: nothing may retire until the
  // oldest answer lands, then the whole burst retires in allocation order.
  constexpr std::size_t kCap = 8;
  ReorderBuffer rob(kCap);
  uint32_t base = 0;
  for (int round = 0; round < 1000; ++round) {
    std::vector<uint16_t> tags;
    for (std::size_t i = 0; i < kCap; ++i) {
      tags.push_back(rob.allocate(meta(static_cast<uint8_t>(i))));
    }
    EXPECT_TRUE(rob.full());
    for (std::size_t i = kCap; i-- > 1;) {
      rob.fill(tags[i], base + static_cast<uint32_t>(i));
      EXPECT_FALSE(rob.head_ready())
          << "round " << round << ": retired before the oldest response";
    }
    rob.fill(tags[0], base);
    for (std::size_t i = 0; i < kCap; ++i) {
      ASSERT_TRUE(rob.head_ready());
      const RobEntry e = rob.pop_head();
      EXPECT_EQ(e.rd, static_cast<uint8_t>(i));
      EXPECT_EQ(e.data, base + i);
    }
    EXPECT_TRUE(rob.empty());
    base += kCap;
  }
}

TEST(ReorderBufferStress, RollbackInterleavedWithWraparound) {
  // allocate/rollback churn at random occupancy: rollbacks must never
  // corrupt the ring across tag wraparound. Mirrored in the reference.
  constexpr std::size_t kCap = 4;
  ReorderBuffer rob(kCap);
  RefModel ref;
  Rng rng(0x5EED);
  std::deque<std::pair<uint16_t, uint64_t>> alloc_order;
  uint32_t payload = 1000;
  for (int step = 0; step < 8000; ++step) {
    const uint64_t choice = rng.next_below(4);
    if (choice == 0 && !rob.full()) {
      const uint16_t tag = rob.allocate(meta(7));
      alloc_order.emplace_back(tag, ref.allocate(7));
    } else if (choice == 1 && !alloc_order.empty() &&
               !ref.fifo.back().data.has_value() &&
               ref.fifo.back().seq == alloc_order.back().second) {
      // Roll back the newest allocation (always legal while unanswered).
      rob.rollback_tail();
      ref.fifo.pop_back();
      alloc_order.pop_back();
    } else if (choice == 2 && !alloc_order.empty()) {
      const std::size_t i = rng.next_below(alloc_order.size());
      const auto [tag, seq] = alloc_order[i];
      // Only fill entries not already answered.
      bool filled = false;
      for (const auto& e : ref.fifo) {
        if (e.seq == seq) filled = e.data.has_value();
      }
      if (!filled) {
        rob.fill(tag, payload);
        ref.fill(seq, payload);
        ++payload;
      }
    } else {
      while (rob.head_ready()) {
        ASSERT_TRUE(ref.head_ready());
        const RobEntry got = rob.pop_head();
        const RefModel::Entry want = ref.pop_head();
        ASSERT_EQ(got.data, *want.data) << "step " << step;
        ASSERT_FALSE(alloc_order.empty());
        alloc_order.pop_front();
      }
    }
    ASSERT_EQ(rob.in_flight(), ref.fifo.size()) << "step " << step;
  }
}

TEST(ReorderBuffer, SubwordMetadataPreserved) {
  ReorderBuffer rob(2);
  RobEntry m;
  m.rd = 9;
  m.width = 2;
  m.sign_extend = true;
  m.byte_offset = 2;
  const uint16_t t = rob.allocate(m);
  rob.fill(t, 0xAABBCCDD);
  const RobEntry e = rob.pop_head();
  EXPECT_EQ(e.width, 2);
  EXPECT_TRUE(e.sign_extend);
  EXPECT_EQ(e.byte_offset, 2);
  EXPECT_EQ(e.data, 0xAABBCCDDu);
}

}  // namespace
}  // namespace mempool
