#include <gtest/gtest.h>

#include "mem/rob.hpp"

namespace mempool {
namespace {

RobEntry meta(uint8_t rd) {
  RobEntry e;
  e.rd = rd;
  return e;
}

TEST(ReorderBuffer, AllocFillRetire) {
  ReorderBuffer rob(4);
  const uint16_t t0 = rob.allocate(meta(5));
  EXPECT_FALSE(rob.head_ready());
  rob.fill(t0, 0x1234);
  ASSERT_TRUE(rob.head_ready());
  const RobEntry e = rob.pop_head();
  EXPECT_EQ(e.rd, 5);
  EXPECT_EQ(e.data, 0x1234u);
  EXPECT_TRUE(rob.empty());
}

TEST(ReorderBuffer, InOrderRetirementDespiteOutOfOrderFills) {
  ReorderBuffer rob(4);
  const uint16_t t0 = rob.allocate(meta(1));
  const uint16_t t1 = rob.allocate(meta(2));
  const uint16_t t2 = rob.allocate(meta(3));
  rob.fill(t2, 30);  // youngest completes first
  rob.fill(t1, 20);
  EXPECT_FALSE(rob.head_ready()) << "head (t0) not done yet";
  rob.fill(t0, 10);
  EXPECT_EQ(rob.pop_head().data, 10u);
  EXPECT_EQ(rob.pop_head().data, 20u);
  EXPECT_EQ(rob.pop_head().data, 30u);
}

TEST(ReorderBuffer, FullBlocksAllocation) {
  ReorderBuffer rob(2);
  rob.allocate(meta(1));
  rob.allocate(meta(2));
  EXPECT_TRUE(rob.full());
  EXPECT_THROW(rob.allocate(meta(3)), CheckError);
}

TEST(ReorderBuffer, RollbackTail) {
  ReorderBuffer rob(2);
  const uint16_t t0 = rob.allocate(meta(1));
  rob.allocate(meta(2));
  rob.rollback_tail();
  EXPECT_EQ(rob.in_flight(), 1u);
  rob.fill(t0, 5);
  EXPECT_EQ(rob.pop_head().data, 5u);
  // The rolled-back slot is reusable.
  const uint16_t t2 = rob.allocate(meta(3));
  rob.fill(t2, 7);
  EXPECT_EQ(rob.pop_head().data, 7u);
}

TEST(ReorderBuffer, WrapAroundTags) {
  ReorderBuffer rob(3);
  for (int round = 0; round < 10; ++round) {
    const uint16_t a = rob.allocate(meta(1));
    const uint16_t b = rob.allocate(meta(2));
    rob.fill(b, 2 * round + 1);
    rob.fill(a, 2 * round);
    EXPECT_EQ(rob.pop_head().data, static_cast<uint32_t>(2 * round));
    EXPECT_EQ(rob.pop_head().data, static_cast<uint32_t>(2 * round + 1));
  }
}

TEST(ReorderBuffer, DoubleFillThrows) {
  ReorderBuffer rob(2);
  const uint16_t t = rob.allocate(meta(1));
  rob.fill(t, 1);
  EXPECT_THROW(rob.fill(t, 2), CheckError);
}

TEST(ReorderBuffer, SubwordMetadataPreserved) {
  ReorderBuffer rob(2);
  RobEntry m;
  m.rd = 9;
  m.width = 2;
  m.sign_extend = true;
  m.byte_offset = 2;
  const uint16_t t = rob.allocate(m);
  rob.fill(t, 0xAABBCCDD);
  const RobEntry e = rob.pop_head();
  EXPECT_EQ(e.width, 2);
  EXPECT_TRUE(e.sign_extend);
  EXPECT_EQ(e.byte_offset, 2);
  EXPECT_EQ(e.data, 0xAABBCCDDu);
}

}  // namespace
}  // namespace mempool
