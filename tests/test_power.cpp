// Energy model: the Figure-10 identities must hold exactly, and measured
// runs must produce consistent aggregates.

#include <gtest/gtest.h>

#include "kernels/dct.hpp"
#include "kernels/matmul.hpp"
#include "power/energy_model.hpp"
#include "power/power_report.hpp"

namespace mempool {
namespace {

TEST(EnergyModel, Figure10LocalLoad) {
  const EnergyModel m;
  const InstrEnergy e = m.local_load();
  EXPECT_NEAR(e.core, 1.8, 1e-9);
  EXPECT_NEAR(e.interconnect, 4.5, 1e-9);
  EXPECT_NEAR(e.memory, 2.1, 1e-9);
  EXPECT_NEAR(e.total(), 8.4, 1e-9);
}

TEST(EnergyModel, Figure10RemoteLoad) {
  const EnergyModel m;
  const InstrEnergy e = m.remote_load_cross_group();
  EXPECT_NEAR(e.interconnect, 13.0, 1e-9);
  EXPECT_NEAR(e.total(), 16.9, 1e-9);
}

TEST(EnergyModel, PaperRatios) {
  const EnergyModel m;
  // "local memory requests consume only half of the energy required to
  // access remote banks"
  EXPECT_NEAR(m.local_load().total() / m.remote_load_cross_group().total(),
              0.5, 0.01);
  // "a local load uses about as much energy as ... mul"
  EXPECT_NEAR(m.local_load().total() / m.mul_op().total(), 1.2, 0.25);
  // "or 2.3x the energy consumed by a simple add"
  EXPECT_NEAR(m.local_load().total() / m.add_op().total(), 2.3, 0.05);
  // "remote loads ... only 4.5x the energy of an add"
  EXPECT_NEAR(m.remote_load_cross_group().total() / m.add_op().total(), 4.5,
              0.1);
  // "the interconnects consume 13.0 pJ, or 2.9x the energy consumed at the
  // interconnects for a local load"
  EXPECT_NEAR(m.remote_load_cross_group().interconnect /
                  m.local_load().interconnect,
              2.9, 0.05);
}

TEST(EnergyModel, SameGroupLoadBetweenLocalAndCrossGroup) {
  const EnergyModel m;
  EXPECT_GT(m.remote_load_same_group().total(), m.local_load().total());
  EXPECT_LT(m.remote_load_same_group().total(),
            m.remote_load_cross_group().total());
}

TEST(EnergyModel, MeasuredRunIsConsistent) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  System sys(cfg);
  kernels::run_kernel(sys, kernels::build_matmul(cfg, 16), 5'000'000);
  const EnergyModel m;
  const EnergyBreakdown e =
      m.measure(sys.cluster(), sys.aggregate_core_stats());
  EXPECT_GT(e.cores, 0.0);
  EXPECT_GT(e.icache, 0.0);
  EXPECT_GT(e.banks, 0.0);
  EXPECT_GT(e.tile_interconnect, 0.0);
  EXPECT_GT(e.global_interconnect, 0.0) << "matmul is remote-dominated";
  EXPECT_NEAR(e.total(), e.cores + e.icache + e.banks + e.tile_interconnect +
                             e.global_interconnect,
              1e-6);
}

TEST(EnergyModel, LocalKernelAvoidsGlobalInterconnectEnergy) {
  // dct with scrambling keeps its accesses in the tile (note: its *tile*
  // interconnect share is legitimately higher than matmul's, because dct
  // issues far more memory operations per instruction) — the discriminator
  // is the global interconnect: matmul crosses it constantly, dct almost
  // never.
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  const EnergyModel m;
  System s1(cfg);
  kernels::run_kernel(s1, kernels::build_matmul(cfg, 16), 5'000'000);
  const EnergyBreakdown em = m.measure(s1.cluster(), s1.aggregate_core_stats());
  System s2(cfg);
  kernels::run_kernel(s2, kernels::build_dct(cfg), 5'000'000);
  const EnergyBreakdown ed = m.measure(s2.cluster(), s2.aggregate_core_stats());
  EXPECT_LT(ed.global_interconnect / ed.total(),
            em.global_interconnect / em.total());
  EXPECT_LT(ed.global_interconnect / ed.total(), 0.01)
      << "dct with scrambling barely touches the global interconnect";
  // Per memory access, dct (local) pays less interconnect energy than
  // matmul (remote-dominated): the Figure-10 'half the energy' effect.
  auto per_access = [](const EnergyBreakdown& e, const SnitchCore::Stats& s) {
    const double acc = static_cast<double>(s.loads_local + s.loads_remote +
                                           s.stores_local + s.stores_remote +
                                           s.amos);
    return (e.tile_interconnect + e.global_interconnect) / acc;
  };
  EXPECT_LT(per_access(ed, s2.aggregate_core_stats()),
            per_access(em, s1.aggregate_core_stats()));
}

TEST(PowerReport, ConversionArithmetic) {
  EnergyBreakdown e;
  e.cores = 1e6;  // pJ over the run
  e.icache = 2e6;
  e.banks = 5e5;
  e.tile_interconnect = 2.5e5;
  e.global_interconnect = 1e5;
  StaticPowerParams sp;
  sp.icache_per_tile = 0;
  sp.cores_per_tile = 0;
  sp.banks_per_tile = 0;
  sp.interconnect_per_tile = 0;
  sp.cluster_top = 0;
  // 1000 cycles at 1 GHz = 1 µs; 1e6 pJ / 1 µs = 1 W = 1000 mW over 4 tiles.
  const PowerReport r = make_power_report(e, 1000, 4, 1e9, sp);
  EXPECT_NEAR(r.tile_cores, 250.0, 1e-6);
  EXPECT_NEAR(r.tile_icache, 500.0, 1e-6);
  EXPECT_GT(r.tiles_fraction, 0.9);
}

TEST(PowerReport, StaticFloorIncluded) {
  EnergyBreakdown e;  // zero dynamic energy
  const PowerReport r = make_power_report(e, 1000, 64, 5e8);
  const StaticPowerParams sp;
  EXPECT_NEAR(r.tile_icache, sp.icache_per_tile, 1e-9);
  EXPECT_NEAR(r.cluster_total_w,
              (r.tile_total() * 64 + sp.cluster_top) * 1e-3, 1e-9);
}

}  // namespace
}  // namespace mempool
