// Memory-operation semantics through the full core + fabric stack.

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace mempool {
namespace {

uint32_t exec0(Topology topo, const std::string& body) {
  const ClusterConfig cfg = ClusterConfig::mini(topo, true);
  auto sys = test::run_text(cfg, test::only_core0(body));
  return sys->core(0).exit_code();
}

std::string exit_with(const std::string& reg) {
  return "li t6, 0xC0000000\n sw " + reg + ", 0(t6)\n";
}

class MemOpsAllTopologies : public ::testing::TestWithParam<Topology> {};

TEST_P(MemOpsAllTopologies, StoreLoadRoundTrip) {
  EXPECT_EQ(exec0(GetParam(), R"(
    li a1, 0x20000
    li a2, 0xBEEF
    sw a2, 0(a1)
    lw a3, 0(a1)
  )" + exit_with("a3")), 0xBEEFu);
}

TEST_P(MemOpsAllTopologies, SubwordLoadsSignAndZeroExtend) {
  EXPECT_EQ(exec0(GetParam(), R"(
    li a1, 0x20000
    li a2, 0x80
    sb a2, 1(a1)
    lb a3, 1(a1)       # sign-extended -128
    lbu a4, 1(a1)      # zero-extended 128
    add a5, a3, a4     # -128 + 128 = 0
  )" + exit_with("a5")), 0u);
  EXPECT_EQ(exec0(GetParam(), R"(
    li a1, 0x20000
    li a2, 0x8000
    sh a2, 2(a1)
    lh a3, 2(a1)
    lhu a4, 2(a1)
    add a5, a3, a4
  )" + exit_with("a5")), 0u);
}

TEST_P(MemOpsAllTopologies, SubwordStoresMergeIntoWord) {
  const ClusterConfig cfg = ClusterConfig::mini(GetParam(), true);
  auto sys = test::run_text(cfg, test::only_core0(R"(
    li a1, 0x20000
    li a2, 0x11223344
    sw a2, 0(a1)
    li a3, 0xAA
    sb a3, 0(a1)
    li a4, 0xBBCC
    sh a4, 2(a1)
    li a0, 0
    ecall
  )"));
  EXPECT_EQ(sys->read_word(0x20000), 0xBBCC33AAu);
}

TEST_P(MemOpsAllTopologies, AmoAddReturnsOldAndUpdates) {
  EXPECT_EQ(exec0(GetParam(), R"(
    li a1, 0x20040
    li a2, 10
    sw a2, 0(a1)
    li a3, 32
    amoadd.w a4, a3, (a1)   # a4 = 10
    lw a5, 0(a1)            # a5 = 42
    add a6, a4, a5          # 52
  )" + exit_with("a6")), 52u);
}

TEST_P(MemOpsAllTopologies, LrScLoop) {
  EXPECT_EQ(exec0(GetParam(), R"(
    li a1, 0x20080
    li a2, 5
    sw a2, 0(a1)
  retry:
    lr.w a3, (a1)
    addi a3, a3, 1
    sc.w a4, a3, (a1)
    bnez a4, retry
    lw a5, 0(a1)
  )" + exit_with("a5")), 6u);
}

TEST_P(MemOpsAllTopologies, PostedStoreThenLoadSameAddressOrdered) {
  // Single path per master/bank pair + FIFO queues: the load must observe
  // the store even though stores are posted.
  EXPECT_EQ(exec0(GetParam(), R"(
    li a1, 0x20100
    li a2, 1
    li a3, 0
    li a4, 100
  loop:
    add a5, a3, a2
    sw a5, 0(a1)
    lw a3, 0(a1)
    addi a4, a4, -1
    bnez a4, loop
  )" + exit_with("a3")), 100u);
}

INSTANTIATE_TEST_SUITE_P(Topologies, MemOpsAllTopologies,
                         ::testing::Values(Topology::kTopX, Topology::kTopH,
                                           Topology::kTop4, Topology::kTop1),
                         [](const auto& tpinfo) {
                           return topology_name(tpinfo.param);
                         });

TEST(MemOps, AtomicCounterAcrossAllCores) {
  // Every core of the 64-core mini cluster increments one counter 8 times.
  for (Topology topo : {Topology::kTopH, Topology::kTop1}) {
    const ClusterConfig cfg = ClusterConfig::mini(topo, true);
    auto sys = test::run_text(cfg, R"(
      _start:
        li a1, 0x30000
        li a2, 8
        li a3, 1
      loop:
        amoadd.w zero, a3, (a1)
        addi a2, a2, -1
        bnez a2, loop
        li a0, 0
        ecall
    )");
    EXPECT_EQ(sys->read_word(0x30000), cfg.num_cores() * 8);
  }
}

TEST(MemOps, OutstandingLoadsBoundedByRob) {
  // With a 2-entry ROB, a burst of independent 5-cycle remote loads must
  // stall on the ROB (local 1-cycle loads retire as fast as they issue, so
  // the target is tile 5's sequential region: remote group, 5 cycles).
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.core.num_outstanding = 2;
  auto sys = test::run_text(cfg, test::only_core0(R"(
    li a1, 0x5000
    lw a2, 0(a1)
    lw a3, 4(a1)
    lw a4, 8(a1)
    lw a5, 12(a1)
    lw a6, 16(a1)
    li a0, 0
    ecall
  )"));
  EXPECT_GT(sys->core(0).stats().stall_rob, 0u);
}

TEST(MemOps, ScoreboardInterlocksLoadUse) {
  // A dependent use right after a remote (5-cycle) load must stall.
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  auto sys = test::run_text(cfg, test::only_core0(R"(
    li a1, 0x5000    # tile 5's sequential region: remote group
    lw a2, 0(a1)
    add a3, a2, a2   # immediate use
    li a0, 0
    ecall
  )"));
  EXPECT_GT(sys->core(0).stats().stall_raw, 0u);
}

TEST(MemOps, LocalLoadUseHasNoStall) {
  // The flip side: a local 1-cycle load is usable by the next instruction
  // without any scoreboard stall (Section III-B's single-cycle bank port).
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  auto sys = test::run_text(cfg, test::only_core0(R"(
    li a1, 0x0       # own tile's sequential region
    lw a2, 0(a1)
    add a3, a2, a2
    li a0, 0
    ecall
  )"));
  EXPECT_EQ(sys->core(0).stats().stall_raw, 0u);
}

TEST(MemOps, MisalignedAccessFaults) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopX, true);
  auto sys = std::make_unique<System>(cfg);
  sys->load_program(isa::assemble_text(test::only_core0(R"(
    li a1, 0x20001
    lw a2, 0(a1)
  )")));
  EXPECT_THROW(sys->run(1000), CheckError);
}

TEST(MemOps, UnmappedAddressFaults) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopX, true);
  auto sys = std::make_unique<System>(cfg);
  sys->load_program(isa::assemble_text(test::only_core0(R"(
    li a1, 0x40000000
    lw a2, 0(a1)
  )")));
  EXPECT_THROW(sys->run(1000), CheckError);
}

TEST(MemOps, LocalRemoteClassification) {
  // Core 0 (tile 0): its tile's sequential region is local, tile 5's remote.
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  auto sys = test::run_text(cfg, test::only_core0(R"(
    li a1, 0x0        # own sequential region (tile 0, scrambling on)
    lw a2, 0(a1)
    li a3, 0x5000     # tile 5's sequential region
    lw a4, 0(a3)
    li a0, 0
    ecall
  )"));
  EXPECT_EQ(sys->core(0).stats().loads_local, 1u);
  EXPECT_EQ(sys->core(0).stats().loads_remote, 1u);
}

}  // namespace
}  // namespace mempool
