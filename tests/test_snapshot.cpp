// Engine checkpoint/restore (sim/snapshot.hpp): StateSink/StateSource
// primitives, the mempool.ckpt.v1 artifact framing and its corruption
// detection (truncation, bit flips, zero-byte files), and full-engine
// save → load → re-save byte-identity on both generator-driven and
// execution-driven (Snitch + I$ + ROB + DMA) clusters.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "kernels/kernel.hpp"
#include "kernels/matmul.hpp"
#include "mem/imem.hpp"
#include "noc/monitor.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot.hpp"
#include "traffic/experiment.hpp"
#include "traffic/generator.hpp"

namespace mempool {
namespace {

TEST(StateSinkSource, PrimitivesRoundTrip) {
  StateSink sink;
  sink.u8(0xAB);
  sink.u16(0xBEEF);
  sink.u32(0xDEADBEEFu);
  sink.u64(0x0123456789ABCDEFull);
  sink.b(true);
  sink.b(false);
  sink.f64(-0.1);
  sink.f64(1.0 / 3.0);
  sink.str("hello");
  sink.str("");

  StateSource src(sink.data());
  EXPECT_EQ(src.u8(), 0xAB);
  EXPECT_EQ(src.u16(), 0xBEEF);
  EXPECT_EQ(src.u32(), 0xDEADBEEFu);
  EXPECT_EQ(src.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(src.b());
  EXPECT_FALSE(src.b());
  // Bit-pattern round trip, not approximate.
  EXPECT_EQ(src.f64(), -0.1);
  EXPECT_EQ(src.f64(), 1.0 / 3.0);
  EXPECT_EQ(src.str(), "hello");
  EXPECT_EQ(src.str(), "");
  src.finish();  // consumed exactly
}

TEST(StateSinkSource, TruncatedReadAndTrailingBytesAreErrors) {
  StateSink sink;
  sink.u32(7);
  StateSource short_read(sink.data());
  EXPECT_THROW(short_read.u64(), CheckError);  // needs 8, has 4

  StateSource trailing(sink.data());
  trailing.u16();
  EXPECT_THROW(trailing.finish(), CheckError);  // 2 bytes left over
}

TEST(Snapshot, ArtifactRoundTrip) {
  Snapshot snap;
  snap.cycle = 123456789;
  snap.key = "abc123";
  snap.add("engine", std::string("\x01\x02\x03", 3));
  snap.add("c0:gen", std::string(1000, 'x'));
  snap.add("empty", "");

  const std::string bytes = snap.serialize();
  const Snapshot back = Snapshot::deserialize(bytes);
  EXPECT_EQ(back.cycle, snap.cycle);
  EXPECT_EQ(back.key, snap.key);
  ASSERT_EQ(back.section_count(), 3u);
  EXPECT_EQ(back.payload("engine"), snap.payload("engine"));
  EXPECT_EQ(back.payload("c0:gen"), snap.payload("c0:gen"));
  EXPECT_EQ(back.payload("empty"), "");
  EXPECT_EQ(back.find("nope"), nullptr);
}

TEST(Snapshot, ZeroByteAndGarbageFilesAreRejected) {
  EXPECT_THROW(Snapshot::deserialize(""), CheckError);
  EXPECT_THROW(Snapshot::deserialize("not a checkpoint at all"), CheckError);
  // Right magic, nothing else: still torn.
  EXPECT_THROW(Snapshot::deserialize(std::string(Snapshot::kMagic)),
               CheckError);
}

TEST(Snapshot, EveryTruncationLengthIsRejected) {
  Snapshot snap;
  snap.cycle = 42;
  snap.key = "k";
  snap.add("a", "payload-bytes");
  snap.add("b", std::string(64, 'z'));
  const std::string bytes = snap.serialize();
  // A partially-written checkpoint can stop at *any* byte; every prefix
  // must fail closed rather than load partial state.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(Snapshot::deserialize(std::string_view(bytes.data(), len)),
                 CheckError)
        << "prefix of length " << len << " was accepted";
  }
  EXPECT_NO_THROW(Snapshot::deserialize(bytes));
}

TEST(Snapshot, BitFlipsAnywhereAreRejected) {
  Snapshot snap;
  snap.cycle = 7;
  snap.key = "fuzz";
  snap.add("engine", std::string(128, 'e'));
  const std::string bytes = snap.serialize();
  // Flip one bit at a sweep of offsets covering the magic, header, payload,
  // and the length/CRC trailer. The CRC seals everything before it; a flip
  // inside the CRC field itself mismatches the recomputed value.
  for (std::size_t off = 0; off < bytes.size();
       off += (off < 48 || off + 16 >= bytes.size()) ? 1 : 7) {
    std::string mutated = bytes;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x10);
    EXPECT_THROW(Snapshot::deserialize(mutated), CheckError)
        << "bit flip at offset " << off << " was accepted";
  }
}

// --- full-engine snapshots ---------------------------------------------------

/// A live generator-driven cluster stepped to @p cycles, plus everything
/// needed to keep stepping it.
struct LiveTraffic {
  InstrMem imem{4096};
  Engine engine;
  std::unique_ptr<Cluster> cluster;
  LatencyMonitor monitor{100};
  std::vector<std::unique_ptr<TrafficGenerator>> gens;

  explicit LiveTraffic(const ClusterConfig& cfg) {
    cluster = std::make_unique<Cluster>(cfg, &imem);
    monitor.set_measure_end(500);
    TrafficConfig tcfg;
    tcfg.lambda = 0.15;
    tcfg.seed = 3;
    tcfg.stop_generation_at = 500;
    std::vector<Client*> clients;
    for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
      gens.push_back(std::make_unique<TrafficGenerator>(
          "gen" + std::to_string(c), static_cast<uint16_t>(c),
          static_cast<uint16_t>(c / cfg.cores_per_tile), cfg,
          &cluster->layout(), &engine, tcfg, &monitor));
      clients.push_back(gens.back().get());
    }
    cluster->attach_clients(clients);
    cluster->build(engine);
  }
};

TEST(EngineSnapshot, SaveLoadResaveIsByteIdentical) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  LiveTraffic a(cfg);
  a.engine.run(300);  // mid-flight: packets in buffers, banks busy
  Snapshot snap;
  snap.key = "resave";
  a.engine.save_state(&snap);

  LiveTraffic b(cfg);
  b.engine.load_state(snap);
  Snapshot again;
  again.key = "resave";
  b.engine.save_state(&again);
  // save ∘ load must be the identity on the byte level — any divergence
  // means some field is dropped or defaulted on one of the two sides.
  EXPECT_EQ(snap.serialize(), again.serialize());
}

TEST(EngineSnapshot, PreArenaImageStillRestores) {
  // tests/data/pre_arena_toph_mini.ckpt was saved before the shard-arena
  // refactor moved the cluster's components and ring storage into per-shard
  // arenas (this LiveTraffic recipe at cycle 300). The arena layout changes
  // where state lives, not what state exists: the old image must load into
  // an arena-resident cluster, and re-saving must reproduce exactly the
  // bytes a from-scratch run produces at the same cycle.
  const auto path = std::filesystem::path(__FILE__).parent_path() / "data" /
                    "pre_arena_toph_mini.ckpt";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden checkpoint " << path;
  std::ostringstream bytes;
  bytes << in.rdbuf();
  const Snapshot golden = Snapshot::deserialize(bytes.str());

  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  LiveTraffic restored(cfg);
  restored.engine.load_state(golden);
  Snapshot resaved;
  resaved.key = golden.key;
  restored.engine.save_state(&resaved);
  EXPECT_EQ(resaved.serialize(), bytes.str())
      << "pre-arena image no longer round-trips bit-identically";

  // The restored cluster must also keep simulating identically: step both
  // it and a from-scratch reference to cycle 600 and compare every
  // component's state. The "engine" section is skipped — it carries the
  // scheduler's cumulative effort counters, and a restored engine starts
  // with every component awake (see Engine::load_state), so it evaluates a
  // few extra no-ops the uninterrupted run never ran.
  LiveTraffic reference(cfg);
  reference.engine.run(300);
  ASSERT_EQ(reference.engine.cycle(), restored.engine.cycle());
  reference.engine.run(300);
  restored.engine.run(300);
  ASSERT_EQ(reference.engine.cycle(), restored.engine.cycle());
  Snapshot ref_state, res_state;
  reference.engine.save_state(&ref_state);
  restored.engine.save_state(&res_state);
  ASSERT_EQ(ref_state.section_count(), res_state.section_count());
  for (std::size_t i = 0; i < ref_state.section_count(); ++i) {
    const auto& [name, payload] = ref_state.sections()[i];
    EXPECT_EQ(res_state.sections()[i].first, name);
    if (name == "engine") continue;
    EXPECT_EQ(res_state.sections()[i].second, payload)
        << "restored run diverged from the from-scratch run in " << name;
  }
}

TEST(EngineSnapshot, LoadIntoSteppedEngineIsRejected) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, false);
  LiveTraffic a(cfg);
  a.engine.run(10);
  Snapshot snap;
  a.engine.save_state(&snap);

  LiveTraffic b(cfg);
  b.engine.run(1);  // no longer pristine
  EXPECT_THROW(b.engine.load_state(snap), CheckError);
}

TEST(EngineSnapshot, ComponentCountMismatchIsRejected) {
  LiveTraffic a(ClusterConfig::mini(Topology::kTopH, false));
  a.engine.run(10);
  Snapshot snap;
  a.engine.save_state(&snap);

  // A different topology elaborates a different component list.
  LiveTraffic b(ClusterConfig::mini(Topology::kTop1, false));
  EXPECT_THROW(b.engine.load_state(snap), CheckError);
}

TEST(EngineSnapshot, ExecClusterResumesBitIdentically) {
  // Execution-driven coverage: Snitch cores (regs, PC, ROB, scoreboard),
  // I$ sets and miss machinery, DMA frontend/backend, and L2 all cross the
  // snapshot. The resumed run must halt at the same cycle with the same
  // stats and the same memory image as the uninterrupted one.
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.memory = MemorySpec{"tcdm+l2"};
  cfg.validate();
  kernels::TiledMatmulParams tp;
  tp.m = tp.n = 64;
  tp.k = 16;
  tp.rb = tp.cb = 32;  // rb*cb divisible by 8*num_cores on the mini cluster
  const kernels::KernelProgram kp = kernels::build_matmul_tiled(cfg, tp);

  // Reference: uninterrupted.
  auto ref = std::make_unique<System>(cfg);
  ref->load_program(kp.image);
  if (kp.init) kp.init(*ref);
  const System::RunResult rr = ref->run(5'000'000);
  ASSERT_TRUE(rr.all_halted);

  // Interrupted at an arbitrary mid-kernel cycle (DMA bursts in flight).
  auto part = std::make_unique<System>(cfg);
  part->load_program(kp.image);
  if (kp.init) kp.init(*part);
  const System::RunResult rp = part->run(2'000);
  ASSERT_FALSE(rp.all_halted) << "checkpoint point is past the kernel";
  Snapshot snap;
  snap.key = "exec";
  part->engine().save_state(&snap);
  // Round-trip through the artifact bytes, like a real crash recovery.
  const Snapshot restored = Snapshot::deserialize(snap.serialize());

  auto res = std::make_unique<System>(cfg);
  res->load_program(kp.image);
  if (kp.init) kp.init(*res);
  res->engine().load_state(restored);
  const System::RunResult rres = res->run(5'000'000);
  ASSERT_TRUE(rres.all_halted);

  // Same halt cycle (absolute), same core stats, same result matrix.
  EXPECT_EQ(res->engine().cycle(), ref->engine().cycle());
  const SnitchCore::Stats sr = ref->aggregate_core_stats();
  const SnitchCore::Stats ss = res->aggregate_core_stats();
  EXPECT_EQ(sr.instret, ss.instret);
  EXPECT_EQ(sr.stall_fetch, ss.stall_fetch);
  EXPECT_EQ(sr.stall_raw, ss.stall_raw);
  EXPECT_EQ(sr.stall_rob, ss.stall_rob);
  EXPECT_EQ(sr.stall_port, ss.stall_port);
  EXPECT_EQ(sr.dma_submits, ss.dma_submits);
  EXPECT_GT(ss.dma_submits, 0u);
  const uint32_t l2_c = 0xA000'0000u + (tp.m + tp.n) * tp.k * 4;
  EXPECT_EQ(ref->read_words(l2_c, tp.m * tp.n),
            res->read_words(l2_c, tp.m * tp.n));
  EXPECT_EQ(ref->cluster().memory_stats(), res->cluster().memory_stats());
  std::string err;
  EXPECT_TRUE(kp.check(*res, &err)) << err;
}

}  // namespace
}  // namespace mempool
