// Synthetic traffic methodology tests (Sections V-A/V-B).

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "traffic/experiment.hpp"
#include "traffic/generator.hpp"

namespace mempool {
namespace {

TrafficExperimentConfig base_cfg(Topology topo, bool scramble, double lambda) {
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::mini(topo, scramble);
  e.lambda = lambda;
  e.warmup_cycles = 300;
  e.measure_cycles = 1500;
  e.drain_cycles = 500;
  return e;
}

TEST(Traffic, GenerationRateMatchesLambda) {
  const auto p = run_traffic_point(base_cfg(Topology::kTopH, false, 0.2));
  EXPECT_NEAR(p.generated, 0.2, 0.02);
}

TEST(Traffic, LowLoadAcceptedEqualsOffered) {
  for (Topology topo : {Topology::kTop1, Topology::kTop4, Topology::kTopH}) {
    const auto p = run_traffic_point(base_cfg(topo, false, 0.05));
    EXPECT_NEAR(p.accepted, 0.05, 0.01) << topology_name(topo);
  }
}

TEST(Traffic, LatencyBoundedBelowByZeroLoad) {
  // Even at negligible load the round trip can never beat the zero-load
  // latency of the nearest bank.
  const auto p = run_traffic_point(base_cfg(Topology::kTopH, false, 0.01));
  EXPECT_GE(p.avg_latency, 1.0);
  EXPECT_LE(p.avg_latency, 8.0);
}

TEST(Traffic, Top1SaturatesFirst) {
  // Section V-A: Top1 congests around 0.10 request/core/cycle while
  // Top4/TopH support roughly 4x that.
  const double high = 0.25;
  const auto p1 = run_traffic_point(base_cfg(Topology::kTop1, false, high));
  const auto p4 = run_traffic_point(base_cfg(Topology::kTop4, false, high));
  const auto ph = run_traffic_point(base_cfg(Topology::kTopH, false, high));
  EXPECT_LT(p1.accepted, 0.18) << "Top1 must be saturated at 0.25";
  EXPECT_NEAR(p4.accepted, high, 0.03);
  EXPECT_NEAR(ph.accepted, high, 0.03);
  EXPECT_GT(p1.avg_latency, ph.avg_latency);
}

TEST(Traffic, LocalityRaisesThroughputAndCutsLatency) {
  // Section V-B, Figure 6: higher p_local -> higher throughput, lower
  // latency (TopH with scrambling).
  auto cfg0 = base_cfg(Topology::kTopH, true, 0.5);
  cfg0.p_local_seq = 0.0;
  auto cfg100 = cfg0;
  cfg100.p_local_seq = 1.0;
  const auto p0 = run_traffic_point(cfg0);
  const auto p100 = run_traffic_point(cfg100);
  EXPECT_GT(p100.accepted, p0.accepted);
  EXPECT_LT(p100.avg_latency, p0.avg_latency);
  // All-local traffic at 0.5 offered is nowhere near saturation.
  EXPECT_NEAR(p100.accepted, 0.5, 0.05);
}

TEST(Traffic, FullyLocalLatencyNearOneCycle) {
  auto cfg = base_cfg(Topology::kTopH, true, 0.1);
  cfg.p_local_seq = 1.0;
  const auto p = run_traffic_point(cfg);
  EXPECT_LT(p.avg_latency, 2.0);
}

TEST(Traffic, DeterministicForSameSeed) {
  const auto a = run_traffic_point(base_cfg(Topology::kTopH, false, 0.3));
  const auto b = run_traffic_point(base_cfg(Topology::kTopH, false, 0.3));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
}

TEST(Traffic, SeedChangesRealization) {
  auto cfg = base_cfg(Topology::kTopH, false, 0.3);
  const auto a = run_traffic_point(cfg);
  cfg.seed = 999;
  const auto b = run_traffic_point(cfg);
  EXPECT_NE(a.completed, b.completed);
}

TEST(Traffic, SweepIsMonotoneInOfferedLoad) {
  TrafficExperimentConfig cfg = base_cfg(Topology::kTopH, false, 0.0);
  const auto pts = sweep_load(cfg, {0.05, 0.15, 0.30});
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_LT(pts[0].avg_latency, pts[2].avg_latency);
  EXPECT_LT(pts[0].accepted, pts[2].accepted);
}

TEST(Traffic, StreamSeedsDecorrelatedAcrossSeedAndId) {
  // Regression: the seed used to enter the per-generator RNG as
  // `seed * gamma + id + 1`, which collapses to `id + 1` for seed == 0 —
  // every experiment with seed 0 reused one fixed family of streams, and
  // (seed, id) pairs could collide outright. The SplitMix64-finalized mix
  // must give every (seed, id) pair a distinct stream with decorrelated
  // first draws.
  std::set<uint64_t> stream_seeds;
  std::set<uint64_t> first_draws;
  const std::vector<uint64_t> seeds = {0, 1, 2, 42, 999};
  const uint16_t ids = 64;
  for (uint64_t seed : seeds) {
    for (uint16_t id = 0; id < ids; ++id) {
      stream_seeds.insert(traffic_stream_seed(seed, id));
      first_draws.insert(Rng(traffic_stream_seed(seed, id)).next_u64());
    }
  }
  EXPECT_EQ(stream_seeds.size(), seeds.size() * ids)
      << "stream seeds must be unique per (seed, id)";
  EXPECT_EQ(first_draws.size(), seeds.size() * ids)
      << "first draws must not repeat across generators";
  // seed==0 must not degenerate: its streams differ from the id+1 family the
  // old multiplicative mix produced.
  for (uint16_t id = 0; id < ids; ++id) {
    EXPECT_NE(traffic_stream_seed(0, id), static_cast<uint64_t>(id) + 1);
  }
}

TEST(Traffic, SeedZeroProducesIndependentGenerators) {
  // With the degenerate mix, seed 0 correlated all generators; the physics
  // (rates) must stay sane and the realization must differ from seed 1.
  auto cfg = base_cfg(Topology::kTopH, false, 0.2);
  cfg.seed = 0;
  const auto p0 = run_traffic_point(cfg);
  EXPECT_NEAR(p0.generated, 0.2, 0.02);
  cfg.seed = 1;
  const auto p1 = run_traffic_point(cfg);
  EXPECT_NE(p0.completed, p1.completed);
}

TEST(Traffic, MonitorWindows) {
  LatencyMonitor m(100);
  m.set_measure_end(200);
  m.on_response(50, 40);    // before warmup: not counted
  m.on_response(150, 120);  // in window
  m.on_response(250, 150);  // after window: latency sample only
  EXPECT_EQ(m.completed_in_window(), 1u);
  EXPECT_EQ(m.completed(), 2u);  // birth >= 100 for the last two
  EXPECT_DOUBLE_EQ(m.avg_latency(), (30.0 + 100.0) / 2);
}

}  // namespace
}  // namespace mempool
