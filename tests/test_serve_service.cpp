// SimService: cache-hit path, in-flight coalescing (identical concurrent
// requests cost one simulation), structured error responses, batching of
// distinct points, and the metrics snapshot.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "serve/service.hpp"

using namespace mempool;
using namespace mempool::serve;

namespace {

SimRequest mini_request(double lambda, uint64_t seed,
                        const char* topology = "TopH") {
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::mini(topology, true);
  cfg.lambda = lambda;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 100;
  cfg.seed = seed;
  return SimRequest::from_config(cfg);
}

ServiceConfig two_threads() {
  ServiceConfig cfg;
  cfg.threads = 2;
  return cfg;
}

/// Collects callback responses and lets the test wait for a count.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ServiceResponse> responses;

  SimService::Callback callback() {
    return [this](const ServiceResponse& resp) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(resp);
      cv.notify_all();
    };
  }
  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responses.size() >= n; });
  }
};

}  // namespace

TEST(SimService, ColdMissThenCacheHitBitIdentical) {
  SimService service(two_threads());
  const SimRequest req = mini_request(0.1, 1);

  const ServiceResponse cold = service.run(req);
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.key, req.key());
  EXPECT_EQ(cold.result, run_point(req));

  const ServiceResponse warm = service.run(req);
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.result, cold.result);

  const Json m = service.metrics_json();
  EXPECT_EQ(m.at("requests").as_uint(), 2u);
  EXPECT_EQ(m.at("cache").at("hits").as_uint(), 1u);
  EXPECT_EQ(m.at("errors").as_uint(), 0u);
}

TEST(SimService, IdenticalConcurrentRequestsComputeOnce) {
  SimService service(two_threads());
  const SimRequest req = mini_request(0.1, 2);
  constexpr std::size_t kClients = 8;

  Collector collector;
  for (std::size_t i = 0; i < kClients; ++i) {
    service.submit(req, collector.callback());
  }
  collector.wait_for(kClients);

  // Exactly one response is the owning computation; everything else either
  // coalesced onto it or (if submitted after completion) hit the cache.
  std::size_t computed = 0, answered_for_free = 0;
  for (const ServiceResponse& resp : collector.responses) {
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_EQ(resp.result, collector.responses.front().result);
    if (!resp.cache_hit && !resp.coalesced) {
      ++computed;
    } else {
      ++answered_for_free;
    }
  }
  EXPECT_EQ(computed, 1u);
  EXPECT_EQ(answered_for_free, kClients - 1);
  EXPECT_EQ(service.cache().stats().insertions, 1u);
}

TEST(SimService, ErrorsAreStructuredAndDoNotStopTheService) {
  SimService service(two_threads());
  SimRequest bad = mini_request(0.1, 3);
  bad.config.lambda = -1.0;  // run_point will refuse

  const ServiceResponse err = service.run(bad);
  EXPECT_FALSE(err.ok);
  EXPECT_NE(err.error.find("lambda"), std::string::npos) << err.error;

  // Errors are not cached, and the service keeps serving.
  EXPECT_EQ(service.cache().stats().insertions, 0u);
  const ServiceResponse good = service.run(mini_request(0.1, 3));
  EXPECT_TRUE(good.ok) << good.error;

  const Json m = service.metrics_json();
  EXPECT_EQ(m.at("errors").as_uint(), 1u);
  EXPECT_EQ(m.at("requests").as_uint(), 2u);
}

TEST(SimService, BatchesDistinctPointsAcrossThePool) {
  SimService service(two_threads());
  constexpr std::size_t kPoints = 6;
  Collector collector;
  for (std::size_t i = 0; i < kPoints; ++i) {
    service.submit(mini_request(0.05 + 0.01 * static_cast<double>(i), 4),
                   collector.callback());
  }
  collector.wait_for(kPoints);
  for (const ServiceResponse& resp : collector.responses) {
    ASSERT_TRUE(resp.ok) << resp.error;
    EXPECT_FALSE(resp.cache_hit);
  }
  // All distinct → all computed, nothing coalesced.
  EXPECT_EQ(service.cache().stats().insertions, kPoints);
  EXPECT_EQ(service.metrics_json().at("coalesced").as_uint(), 0u);
}

TEST(SimService, MetricsReportLatencyQuantilesAndTopologyLoad) {
  SimService service(two_threads());
  service.run(mini_request(0.1, 5, "TopH"));
  service.run(mini_request(0.1, 5, "TopH"));  // hit
  service.run(mini_request(0.1, 5, "Top1"));

  const Json m = service.metrics_json();
  const Json& lat = m.at("service_ms");
  EXPECT_EQ(lat.at("overall").at("count").as_uint(), 3u);
  EXPECT_GE(lat.at("overall").at("p99").as_double(),
            lat.at("overall").at("p50").as_double());
  EXPECT_TRUE(lat.contains("cache_hit_p50"));
  EXPECT_TRUE(lat.contains("computed_p99"));

  const Json& load = m.at("topology_load");
  EXPECT_EQ(load.at("TopH").as_uint(), 2u);
  EXPECT_EQ(load.at("Top1").as_uint(), 1u);

  EXPECT_EQ(m.at("threads").as_uint(), 2u);
  EXPECT_EQ(m.at("cache_capacity").as_uint(), 1024u);
}

TEST(SimService, DrainWaitsForEverySubmittedRequest) {
  std::atomic<std::size_t> answered{0};
  {
    SimService service(two_threads());
    for (int i = 0; i < 4; ++i) {
      service.submit(mini_request(0.1, 10 + static_cast<uint64_t>(i)),
                     [&](const ServiceResponse&) { ++answered; });
    }
    service.drain();
    EXPECT_EQ(answered.load(), 4u);
  }  // destructor drains too — nothing left to answer
  EXPECT_EQ(answered.load(), 4u);
}
