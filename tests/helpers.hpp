#pragma once
// Shared test utilities.

#include <memory>
#include <string>

#include "core/client.hpp"
#include "core/system.hpp"
#include "isa/text_asm.hpp"
#include "traffic/probe.hpp"

namespace mempool::test {

/// Assemble and run a program on a fresh system; returns the system for
/// inspection. The program must halt every core within @p max_cycles.
inline std::unique_ptr<System> run_text(const ClusterConfig& cfg,
                                        const std::string& src,
                                        uint64_t max_cycles = 200000) {
  auto sys = std::make_unique<System>(cfg);
  sys->load_program(isa::assemble_text(src));
  const System::RunResult r = sys->run(max_cycles);
  MEMPOOL_CHECK_MSG(r.all_halted, "test program did not halt");
  return sys;
}

/// Guard prologue: cores other than hart 0 exit immediately with code 0.
inline std::string only_core0(const std::string& body) {
  return R"(
    _start:
      csrr t0, mhartid
      beqz t0, core0
      li t1, 0xC0000000
      sw zero, 0(t1)
    self: j self
    core0:
  )" + body;
}

/// The single-load probe used to measure zero-load latencies precisely —
/// the shared implementation lives in src/traffic/probe.hpp.
using mempool::ProbeClient;

}  // namespace mempool::test
