#pragma once
// Shared test utilities.

#include <memory>
#include <string>

#include "core/client.hpp"
#include "core/system.hpp"
#include "isa/text_asm.hpp"

namespace mempool::test {

/// Assemble and run a program on a fresh system; returns the system for
/// inspection. The program must halt every core within @p max_cycles.
inline std::unique_ptr<System> run_text(const ClusterConfig& cfg,
                                        const std::string& src,
                                        uint64_t max_cycles = 200000) {
  auto sys = std::make_unique<System>(cfg);
  sys->load_program(isa::assemble_text(src));
  const System::RunResult r = sys->run(max_cycles);
  MEMPOOL_CHECK_MSG(r.all_halted, "test program did not halt");
  return sys;
}

/// Guard prologue: cores other than hart 0 exit immediately with code 0.
inline std::string only_core0(const std::string& body) {
  return R"(
    _start:
      csrr t0, mhartid
      beqz t0, core0
      li t1, 0xC0000000
      sw zero, 0(t1)
    self: j self
    core0:
  )" + body;
}

/// A client that issues exactly one load when armed and records the response
/// arrival cycle — used to measure zero-load latencies precisely.
class ProbeClient final : public Client {
 public:
  ProbeClient(uint16_t id, uint16_t tile, const MemoryLayout* layout)
      : Client("probe" + std::to_string(id), id, tile), layout_(layout) {}

  /// Arm a single load to @p cpu_addr, issued at the next evaluate().
  void arm(uint32_t cpu_addr) {
    armed_ = true;
    addr_ = cpu_addr;
  }

  void deliver(const Packet& p) override {
    // The response phase of cycle C runs before the clients evaluate, so our
    // last evaluate() was at C-1.
    response_cycle_ = last_cycle_ + 1;
    data_ = p.data;
    ++responses_;
  }

  void evaluate(uint64_t cycle) override {
    last_cycle_ = cycle;
    if (armed_) {
      Packet p;
      p.op = MemOp::kLoad;
      p.src = id_;
      p.src_tile = tile_;
      p.birth = cycle;
      layout_->route(p, addr_);
      if (port_->try_issue(p)) {
        armed_ = false;
        issue_cycle_ = cycle;
      }
    }
  }

  uint64_t issue_cycle() const { return issue_cycle_; }
  uint64_t response_cycle() const { return response_cycle_; }
  uint64_t latency() const { return response_cycle_ - issue_cycle_; }
  uint32_t data() const { return data_; }
  uint32_t responses() const { return responses_; }

 private:
  const MemoryLayout* layout_;
  bool armed_ = false;
  uint32_t addr_ = 0;
  uint32_t data_ = 0;
  uint32_t responses_ = 0;
  uint64_t issue_cycle_ = 0;
  uint64_t response_cycle_ = 0;
  uint64_t last_cycle_ = 0;
};

}  // namespace mempool::test
