// Service resilience: request deadlines (pre-run and mid-run), bounded
// admission with overload shedding, checkpoint persistence + resume of
// long-running points across a daemon "restart", corrupt-checkpoint
// degradation, and the RetryingClient surviving injected connection faults
// against a real in-process SimServer.

#include <gtest/gtest.h>
#include <unistd.h>

#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "serve/client.hpp"
#include "serve/netio.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/snapshot.hpp"
#include "traffic/experiment.hpp"

using namespace mempool;
using namespace mempool::serve;

namespace {

SimRequest mini_request(double lambda, uint64_t seed,
                        uint64_t measure_cycles = 200) {
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::mini(Topology::kTopH, true);
  cfg.lambda = lambda;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = measure_cycles;
  cfg.drain_cycles = 100;
  cfg.seed = seed;
  return SimRequest::from_config(cfg);
}

/// A point long enough (hundreds of ms) that deadlines and mid-run kills
/// land while it is still computing.
SimRequest slow_request(uint64_t seed) {
  return mini_request(0.05, seed, /*measure_cycles=*/2'000'000);
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = std::filesystem::temp_directory_path() /
                          ("mempool_resil_" + tag + "_" +
                           std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

std::string test_socket(const char* tag) {
  return "/tmp/mempool_r" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

/// Collects callback responses and lets the test wait for a count.
struct Collector {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ServiceResponse> responses;

  SimService::Callback callback() {
    return [this](const ServiceResponse& resp) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(resp);
      cv.notify_all();
    };
  }
  void wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responses.size() >= n; });
  }
};

/// Clears the process-wide injected faults even when a test fails mid-way.
struct FaultGuard {
  ~FaultGuard() { set_netio_faults(NetioFaults{}); }
};

}  // namespace

TEST(ServiceDeadline, ExpiredDeadlineAbortsTheRunStructured) {
  ServiceConfig cfg;
  cfg.threads = 1;
  SimService service(cfg);

  SimRequest req = slow_request(41);
  req.deadline_ms = 1;  // expires long before the point finishes
  const ServiceResponse resp = service.run(req);
  EXPECT_FALSE(resp.ok);
  EXPECT_EQ(resp.kind, "deadline_exceeded");
  EXPECT_FALSE(resp.error.empty());

  const Json m = service.metrics_json();
  EXPECT_GE(m.at("deadline_exceeded").as_uint(), 1u);

  // The service is healthy afterwards; the same point without a deadline
  // completes (proving the abort canceled the run, not the daemon).
  const ServiceResponse good = service.run(mini_request(0.1, 41));
  EXPECT_TRUE(good.ok) << good.error;
}

TEST(ServiceDeadline, NoDeadlineMeansNoExpiry) {
  ServiceConfig cfg;
  cfg.threads = 1;
  SimService service(cfg);
  const ServiceResponse resp = service.run(mini_request(0.1, 42));
  EXPECT_TRUE(resp.ok) << resp.error;
  EXPECT_TRUE(resp.kind.empty());
}

TEST(ServiceOverload, BoundedQueueShedsWithRetryHint) {
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.max_queue = 1;
  cfg.retry_after_ms = 123;
  SimService service(cfg);

  // First (slow) point is admitted and occupies the only slot...
  Collector slow;
  service.submit(slow_request(50), slow.callback());

  // ...so a second *distinct* point must be shed immediately, on the
  // submitting thread, with the structured hint.
  const ServiceResponse shed = service.run(mini_request(0.1, 51));
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.kind, "overloaded");
  EXPECT_EQ(shed.retry_after_ms, 123);

  // An *identical* request coalesces instead of shedding: it consumes no
  // worker, so admission control does not apply.
  Collector dup;
  service.submit(slow_request(50), dup.callback());

  slow.wait_for(1);
  dup.wait_for(1);
  EXPECT_TRUE(slow.responses.front().ok) << slow.responses.front().error;
  EXPECT_TRUE(dup.responses.front().ok);
  EXPECT_TRUE(dup.responses.front().coalesced ||
              dup.responses.front().cache_hit);

  // Capacity freed: the previously shed point is admitted now.
  const ServiceResponse retry = service.run(mini_request(0.1, 51));
  EXPECT_TRUE(retry.ok) << retry.error;

  const Json m = service.metrics_json();
  EXPECT_EQ(m.at("shed").as_uint(), 1u);
  EXPECT_EQ(m.at("max_queue").as_uint(), 1u);
}

TEST(ServiceCheckpoint, LongPointsPersistImagesAndCompleteCorrectly) {
  const std::string dir = fresh_dir("persist");
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.cache_dir = dir;
  cfg.checkpoint_every = 100'000;
  SimService service(cfg);

  const SimRequest req = slow_request(60);
  const ServiceResponse resp = service.run(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  // Checkpointing perturbs nothing: bit-identical to the plain run.
  EXPECT_EQ(resp.result, run_point(req));
  // Images were persisted along the way, and the final one was cleaned up
  // once the result reached the cache.
  EXPECT_GE(service.metrics_json().at("checkpoints").as_uint(), 2u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + req.key() + ".ckpt"));
  std::filesystem::remove_all(dir);
}

TEST(ServiceCheckpoint, RestartedServiceResumesFromTheDiskImage) {
  const std::string dir = fresh_dir("resume");
  std::filesystem::create_directories(dir);
  const SimRequest req = slow_request(61);

  // Simulate a daemon that died mid-point: plant the checkpoint image a
  // previous instance would have left behind (cycle 400k of ~2M).
  std::string image;
  CheckpointOptions capture;
  capture.checkpoint_every = 400'000;
  capture.key = req.key();
  capture.on_checkpoint = [&](uint64_t cycle, const std::string& img) {
    if (image.empty() && cycle >= 400'000) image = img;
  };
  const TrafficPoint expected = run_traffic_point(req.config, capture);
  ASSERT_FALSE(image.empty());
  {
    std::ofstream out(dir + "/" + req.key() + ".ckpt", std::ios::binary);
    out << image;
  }

  // The "restarted" daemon picks the image up and finishes the point from
  // cycle 400k — with a result bit-identical to the never-crashed run.
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.cache_dir = dir;
  cfg.checkpoint_every = 400'000;
  SimService service(cfg);
  const ServiceResponse resp = service.run(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.result.point, expected);
  EXPECT_EQ(service.metrics_json().at("resumed").as_uint(), 1u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/" + req.key() + ".ckpt"));
  std::filesystem::remove_all(dir);
}

TEST(ServiceCheckpoint, CorruptImageIsDiscardedAndTheRunStartsCold) {
  const std::string dir = fresh_dir("corrupt");
  std::filesystem::create_directories(dir);
  const SimRequest req = mini_request(0.1, 62);
  {
    // A torn write: half a valid-looking file.
    std::ofstream out(dir + "/" + req.key() + ".ckpt", std::ios::binary);
    out << std::string(Snapshot::kMagic) << "garbage-torn-checkpoint";
  }
  ServiceConfig cfg;
  cfg.threads = 1;
  cfg.cache_dir = dir;
  cfg.checkpoint_every = 1'000;
  SimService service(cfg);
  const ServiceResponse resp = service.run(req);
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.result, run_point(req));  // cold, correct
  EXPECT_EQ(service.metrics_json().at("resumed").as_uint(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(RetryingClient, SurvivesInjectedConnectionDrops) {
  FaultGuard guard;
  const std::string path = test_socket("faults");
  ServerConfig scfg;
  scfg.socket_path = path;
  scfg.service.threads = 2;
  SimServer server(scfg);
  server.start();

  // Every 5th write on either side of every connection is dropped (the
  // peer sees EOF mid-stream — exactly a daemon dying between responses).
  NetioFaults faults;
  faults.drop_every = 5;
  set_netio_faults(faults);

  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_ms = 1;  // keep the test fast
  policy.max_backoff_ms = 8;
  policy.connect_timeout_ms = 2000;
  policy.read_timeout_ms = 5000;
  RetryingClient client(path, policy);

  for (uint64_t i = 0; i < 8; ++i) {
    const SimRequest req =
        mini_request(0.05 + 0.01 * static_cast<double>(i % 4), 70 + i / 4);
    const ServiceResponse resp = client.run(req);
    ASSERT_TRUE(resp.ok) << resp.error;
    // Retried-through results are still bit-identical: idempotence via the
    // content-addressed cache makes blind re-issue safe.
    EXPECT_EQ(resp.result, run_point(req));
  }
  EXPECT_GT(client.reconnects(), 0u)
      << "fault schedule injected no drops — the test exercised nothing";

  set_netio_faults(NetioFaults{});
  SimClient plain(path, 2000);
  plain.shutdown_server();
  server.wait();
}

TEST(RetryingClient, ShortWritesAreAbsorbedToo) {
  FaultGuard guard;
  const std::string path = test_socket("shortw");
  ServerConfig scfg;
  scfg.socket_path = path;
  scfg.service.threads = 2;
  SimServer server(scfg);
  server.start();

  NetioFaults faults;
  faults.short_write_every = 7;  // a prefix escapes, then the line dies
  set_netio_faults(faults);

  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_ms = 1;
  policy.max_backoff_ms = 8;
  policy.read_timeout_ms = 5000;
  RetryingClient client(path, policy);

  const SimRequest a = mini_request(0.1, 80), b = mini_request(0.2, 80);
  for (int round = 0; round < 4; ++round) {
    const ServiceResponse ra = client.run(a);
    ASSERT_TRUE(ra.ok) << ra.error;
    const ServiceResponse rb = client.run(b);
    ASSERT_TRUE(rb.ok) << rb.error;
    EXPECT_EQ(ra.result.request_key, a.key());
    EXPECT_EQ(rb.result.request_key, b.key());
  }

  set_netio_faults(NetioFaults{});
  SimClient plain(path, 2000);
  plain.shutdown_server();
  server.wait();
}

TEST(RetryingClient, NonRetryableErrorsReturnImmediately) {
  const std::string path = test_socket("nonretry");
  ServerConfig scfg;
  scfg.socket_path = path;
  scfg.service.threads = 1;
  SimServer server(scfg);
  server.start();
  {
    RetryingClient client(path, RetryPolicy{});
    SimRequest bad = mini_request(0.1, 90);
    bad.config.lambda = -1.0;
    const ServiceResponse resp = client.run(bad);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, "invalid");
    EXPECT_EQ(client.retries(), 0u) << "an invalid request must not retry";

    SimClient plain(path, 2000);
    plain.shutdown_server();
  }
  server.wait();
}

TEST(DeadlineOverTheWire, DeadlineRidesTheProtocolButNotTheCacheKey) {
  const std::string path = test_socket("wiredl");
  ServerConfig scfg;
  scfg.socket_path = path;
  scfg.service.threads = 1;
  SimServer server(scfg);
  server.start();
  {
    SimClient client(path, 2000);
    SimRequest slow = slow_request(95);
    slow.deadline_ms = 1;
    const ServiceResponse resp = client.run(slow);
    EXPECT_FALSE(resp.ok);
    EXPECT_EQ(resp.kind, "deadline_exceeded");

    // deadline_ms is delivery metadata: the same point without a deadline
    // is the same cache entry, so these two requests must coalesce/hit
    // rather than fork the key space.
    SimRequest fast = mini_request(0.1, 96);
    ASSERT_TRUE(client.run(fast).ok);
    SimRequest fast_dl = mini_request(0.1, 96);
    fast_dl.deadline_ms = 60'000;
    EXPECT_EQ(fast_dl.key(), fast.key());
    const ServiceResponse hit = client.run(fast_dl);
    ASSERT_TRUE(hit.ok) << hit.error;
    EXPECT_TRUE(hit.cache_hit);

    client.shutdown_server();
  }
  server.wait();
}
