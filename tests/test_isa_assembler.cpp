#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "isa/decoder.hpp"

namespace mempool::isa {
namespace {

TEST(Assembler, ForwardAndBackwardLabels) {
  Assembler a;
  a.l("start");
  a.beq(Reg::x1, Reg::x2, "end");   // forward
  a.j("start");                      // backward
  a.l("end");
  a.nop();
  const auto w = a.finish();
  EXPECT_EQ(decode(w[0]).imm, 8);    // start -> end = +8
  EXPECT_EQ(decode(w[1]).imm, -4);   // second word back to start
}

TEST(Assembler, UnknownLabelThrowsAtFinish) {
  Assembler a;
  a.j("nowhere");
  EXPECT_THROW(a.finish(), CheckError);
}

TEST(Assembler, DuplicateLabelThrows) {
  Assembler a;
  a.l("x");
  EXPECT_THROW(a.l("x"), CheckError);
}

TEST(Assembler, BranchOutOfRangeThrows) {
  Assembler a;
  a.beq(Reg::x1, Reg::x2, "far");
  for (int i = 0; i < 1200; ++i) a.nop();
  a.l("far");
  EXPECT_THROW(a.finish(), CheckError);
}

TEST(Assembler, ImmediateRangeChecked) {
  Assembler a;
  EXPECT_THROW(a.addi(Reg::x1, Reg::x2, 2048), CheckError);
  EXPECT_THROW(a.addi(Reg::x1, Reg::x2, -2049), CheckError);
  a.addi(Reg::x1, Reg::x2, 2047);
  a.addi(Reg::x1, Reg::x2, -2048);
}

/// Host-side interpretation of a lui/addi sequence, to verify li.
uint32_t eval_li(const std::vector<uint32_t>& words) {
  uint32_t reg = 0;
  for (uint32_t w : words) {
    const Instr d = decode(w);
    if (d.kind == Kind::kLui) {
      reg = static_cast<uint32_t>(d.imm);
    } else if (d.kind == Kind::kAddi) {
      reg += static_cast<uint32_t>(d.imm);
    } else {
      ADD_FAILURE() << "unexpected kind";
    }
  }
  return reg;
}

TEST(Assembler, LiSmallUsesSingleAddi) {
  Assembler a;
  a.li(Reg::x1, 42);
  const auto w = a.finish();
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(decode(w[0]).kind, Kind::kAddi);
}

TEST(Assembler, LiArbitraryConstantsProperty) {
  mempool::Rng rng(123);
  for (int i = 0; i < 3000; ++i) {
    const auto v = static_cast<int32_t>(rng.next_u64());
    Assembler a;
    a.li(Reg::x1, v);
    EXPECT_EQ(eval_li(a.finish()), static_cast<uint32_t>(v)) << v;
  }
  // Boundary cases.
  for (int32_t v : {0, 1, -1, 2047, 2048, -2048, -2049, INT32_MAX, INT32_MIN,
                    0x7FFFF800, static_cast<int32_t>(0x80000800)}) {
    Assembler a;
    a.li(Reg::x1, v);
    EXPECT_EQ(eval_li(a.finish()), static_cast<uint32_t>(v)) << v;
  }
}

TEST(Assembler, PseudoInstructions) {
  Assembler a;
  a.nop();
  a.mv(Reg::x1, Reg::x2);
  a.neg(Reg::x3, Reg::x4);
  a.seqz(Reg::x5, Reg::x6);
  a.snez(Reg::x7, Reg::x8);
  a.not_(Reg::x9, Reg::x10);
  a.ret();
  const auto w = a.finish();
  EXPECT_EQ(decode(w[0]).kind, Kind::kAddi);
  EXPECT_EQ(decode(w[1]).kind, Kind::kAddi);
  EXPECT_EQ(decode(w[2]).kind, Kind::kSub);
  EXPECT_EQ(decode(w[3]).kind, Kind::kSltiu);
  EXPECT_EQ(decode(w[4]).kind, Kind::kSltu);
  EXPECT_EQ(decode(w[5]).kind, Kind::kXori);
  const Instr ret = decode(w[6]);
  EXPECT_EQ(ret.kind, Kind::kJalr);
  EXPECT_EQ(ret.rd, 0);
  EXPECT_EQ(ret.rs1, 1);
}

TEST(Assembler, PcTracksEmission) {
  Assembler a(0x1000);
  EXPECT_EQ(a.pc(), 0x1000u);
  a.nop();
  a.nop();
  EXPECT_EQ(a.pc(), 0x1008u);
  a.l("here");
  EXPECT_EQ(a.label_address("here"), 0x1008u);
}

TEST(Assembler, FinishIsIdempotent) {
  Assembler a;
  a.l("top");
  a.j("top");
  const auto w1 = a.finish();
  const auto w2 = a.finish();
  EXPECT_EQ(w1, w2);
}

TEST(Assembler, WordDirective) {
  Assembler a;
  a.word(0xDEADBEEF);
  EXPECT_EQ(a.finish()[0], 0xDEADBEEFu);
}

}  // namespace
}  // namespace mempool::isa
