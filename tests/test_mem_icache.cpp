#include <gtest/gtest.h>

#include "mem/icache.hpp"

namespace mempool {
namespace {

struct ICacheFixture : ::testing::Test {
  ICacheFixture() : imem(1 << 16) {
    for (uint32_t i = 0; i < (1u << 14); ++i) {
      imem.write_word(InstrMem::kBase + 4 * i, i);
    }
  }

  ICacheConfig small_cfg() {
    ICacheConfig c;
    c.size_bytes = 256;
    c.ways = 2;
    c.line_bytes = 32;
    c.refill_latency = 10;
    return c;
  }

  /// Run until the fetch hits; returns the number of cycles it took.
  uint64_t fetch_until_hit(ICache& ic, uint32_t pc, uint64_t start,
                           uint64_t limit = 200) {
    for (uint64_t c = start; c < start + limit; ++c) {
      ic.evaluate(c);
      const auto r = ic.fetch(pc, c);
      if (r.hit) {
        EXPECT_EQ(r.instr, (pc - InstrMem::kBase) / 4);
        return c - start;
      }
    }
    ADD_FAILURE() << "never hit";
    return limit;
  }

  InstrMem imem;
};

TEST_F(ICacheFixture, MissThenHit) {
  ICache ic("i$", small_cfg(), &imem);
  const uint32_t pc = InstrMem::kBase;
  EXPECT_FALSE(ic.fetch(pc, 0).hit);
  const uint64_t wait = fetch_until_hit(ic, pc, 1);
  // refill_latency + line transfer (8 words) to completion.
  EXPECT_GE(wait, small_cfg().refill_latency);
  EXPECT_TRUE(ic.fetch(pc, 100).hit);
  EXPECT_EQ(ic.refills(), 1u);
}

TEST_F(ICacheFixture, SameLineFetchHitsAfterOneRefill) {
  ICache ic("i$", small_cfg(), &imem);
  const uint32_t pc = InstrMem::kBase;
  fetch_until_hit(ic, pc, 0);
  // Every word of the 32-byte line now hits.
  for (uint32_t off = 0; off < 32; off += 4) {
    EXPECT_TRUE(ic.fetch(pc + off, 1000).hit);
  }
  EXPECT_EQ(ic.refills(), 1u);
}

TEST_F(ICacheFixture, MshrMergesConcurrentMisses) {
  ICache ic("i$", small_cfg(), &imem);
  const uint32_t pc = InstrMem::kBase + 64;
  // Four cores miss on the same line in the same cycle.
  for (int core = 0; core < 4; ++core) {
    EXPECT_FALSE(ic.fetch(pc + 4 * core, 0).hit);
  }
  fetch_until_hit(ic, pc, 1);
  EXPECT_EQ(ic.refills(), 1u) << "one refill serves all four";
}

TEST_F(ICacheFixture, LruEviction) {
  ICacheConfig cfg = small_cfg();  // 256 B, 2-way, 32 B lines -> 4 sets
  ICache ic("i$", cfg, &imem);
  const uint32_t set_stride = 4 * 32;  // same set every 128 B
  const uint32_t a = InstrMem::kBase;
  const uint32_t b = a + set_stride;
  const uint32_t c = a + 2 * set_stride;
  uint64_t t = 0;
  auto warm = [&](uint32_t pc) {
    while (!ic.fetch(pc, t).hit) {
      ++t;
      ic.evaluate(t);
    }
  };
  warm(a);
  warm(b);
  ic.fetch(a, ++t);  // touch a: b becomes LRU
  warm(c);           // evicts b
  EXPECT_TRUE(ic.fetch(a, ++t).hit);
  EXPECT_FALSE(ic.fetch(b, ++t).hit);
}

TEST_F(ICacheFixture, SingleRefillPortSerializes) {
  ICache ic("i$", small_cfg(), &imem);
  EXPECT_FALSE(ic.fetch(InstrMem::kBase, 0).hit);
  EXPECT_FALSE(ic.fetch(InstrMem::kBase + 4096, 0).hit);
  // The second line's refill starts only after the first finishes.
  uint64_t first_hit = 0, second_hit = 0;
  for (uint64_t c = 1; c < 300; ++c) {
    ic.evaluate(c);
    if (!first_hit && ic.fetch(InstrMem::kBase, c).hit) first_hit = c;
    if (!second_hit && ic.fetch(InstrMem::kBase + 4096, c).hit) second_hit = c;
    if (first_hit && second_hit) break;
  }
  ASSERT_GT(first_hit, 0u);
  ASSERT_GT(second_hit, first_hit);
  EXPECT_GE(second_hit - first_hit,
            static_cast<uint64_t>(small_cfg().refill_latency));
}

TEST_F(ICacheFixture, FlushInvalidates) {
  ICache ic("i$", small_cfg(), &imem);
  fetch_until_hit(ic, InstrMem::kBase, 0);
  ic.flush();
  EXPECT_FALSE(ic.fetch(InstrMem::kBase, 500).hit);
}

TEST_F(ICacheFixture, HitRateAccounting) {
  ICache ic("i$", small_cfg(), &imem);
  fetch_until_hit(ic, InstrMem::kBase, 0);
  const uint64_t h = ic.hits(), m = ic.misses();
  EXPECT_EQ(h, 1u);
  EXPECT_GE(m, 1u);
  EXPECT_NEAR(ic.hit_rate(), static_cast<double>(h) / static_cast<double>(h + m), 1e-12);
}

TEST_F(ICacheFixture, BadGeometryThrows) {
  ICacheConfig c;
  c.size_bytes = 100;  // not a power of two
  EXPECT_THROW(ICache("i$", c, &imem), CheckError);
}

}  // namespace
}  // namespace mempool
