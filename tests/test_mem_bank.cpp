#include <gtest/gtest.h>

#include <vector>

#include "mem/bank.hpp"

namespace mempool {
namespace {

class CollectSink final : public PacketSink {
 public:
  explicit CollectSink(std::size_t capacity = SIZE_MAX) : cap_(capacity) {}
  bool can_accept() const override { return got.size() < cap_; }
  void push(const Packet& p) override { got.push_back(p); }
  std::vector<Packet> got;

 private:
  std::size_t cap_;
};

struct BankFixture : ::testing::Test {
  BankFixture() : bank("bank", 1024) { bank.connect_response(&sink); }

  /// Issue a request and run the bank until the response arrives (or one
  /// cycle for stores). Returns the response payload.
  uint32_t issue(MemOp op, uint32_t row, uint32_t data = 0, uint8_t be = 0xF,
                 uint16_t src = 0) {
    Packet p;
    p.op = op;
    p.dst_row = row;
    p.data = data;
    p.be = be;
    p.src = src;
    const std::size_t before = sink.got.size();
    EXPECT_TRUE(bank.request_input()->can_accept());
    bank.request_input()->push(p);
    bank.evaluate(cycle_++);
    if (!op_has_response(op)) return 0;
    EXPECT_EQ(sink.got.size(), before + 1);
    return sink.got.back().data;
  }

  SpmBank bank;
  CollectSink sink;
  uint64_t cycle_ = 0;
};

TEST_F(BankFixture, LoadAfterStoreReturnsValue) {
  issue(MemOp::kStore, 5, 0xDEADBEEF);
  EXPECT_EQ(issue(MemOp::kLoad, 5), 0xDEADBEEFu);
  EXPECT_EQ(bank.reads(), 1u);
  EXPECT_EQ(bank.writes(), 1u);
}

TEST_F(BankFixture, ByteEnableMergesSubword) {
  issue(MemOp::kStore, 3, 0xAABBCCDD);
  issue(MemOp::kStore, 3, 0x000000EE, 0b0001);
  EXPECT_EQ(issue(MemOp::kLoad, 3), 0xAABBCCEEu);
  issue(MemOp::kStore, 3, 0x11220000, 0b1100);
  EXPECT_EQ(issue(MemOp::kLoad, 3), 0x1122CCEEu);
}

TEST_F(BankFixture, AmoAddReturnsOldValue) {
  issue(MemOp::kStore, 0, 10);
  EXPECT_EQ(issue(MemOp::kAmoAdd, 0, 5), 10u);
  EXPECT_EQ(issue(MemOp::kLoad, 0), 15u);
  EXPECT_EQ(bank.atomics(), 1u);
}

TEST_F(BankFixture, AmoVariantsSemantics) {
  issue(MemOp::kStore, 1, 0b1100);
  EXPECT_EQ(issue(MemOp::kAmoAnd, 1, 0b1010), 0b1100u);
  EXPECT_EQ(issue(MemOp::kLoad, 1), 0b1000u);
  issue(MemOp::kStore, 1, 0b1100);
  issue(MemOp::kAmoOr, 1, 0b0011);
  EXPECT_EQ(issue(MemOp::kLoad, 1), 0b1111u);
  issue(MemOp::kStore, 1, 0b1100);
  issue(MemOp::kAmoXor, 1, 0b1010);
  EXPECT_EQ(issue(MemOp::kLoad, 1), 0b0110u);
  issue(MemOp::kStore, 1, 7);
  issue(MemOp::kAmoSwap, 1, 99);
  EXPECT_EQ(issue(MemOp::kLoad, 1), 99u);
}

TEST_F(BankFixture, AmoMinMaxSignedUnsigned) {
  issue(MemOp::kStore, 2, static_cast<uint32_t>(-5));
  issue(MemOp::kAmoMin, 2, 3);
  EXPECT_EQ(issue(MemOp::kLoad, 2), static_cast<uint32_t>(-5));
  issue(MemOp::kAmoMax, 2, 3);
  EXPECT_EQ(issue(MemOp::kLoad, 2), 3u);
  issue(MemOp::kStore, 2, static_cast<uint32_t>(-5));  // 0xFFFFFFFB unsigned
  issue(MemOp::kAmoMaxu, 2, 3);
  EXPECT_EQ(issue(MemOp::kLoad, 2), static_cast<uint32_t>(-5));
  issue(MemOp::kAmoMinu, 2, 3);
  EXPECT_EQ(issue(MemOp::kLoad, 2), 3u);
}

TEST_F(BankFixture, LrScSuccess) {
  issue(MemOp::kStore, 4, 100);
  EXPECT_EQ(issue(MemOp::kLoadReserved, 4, 0, 0xF, /*src=*/7), 100u);
  EXPECT_EQ(issue(MemOp::kStoreConditional, 4, 111, 0xF, /*src=*/7), 0u);
  EXPECT_EQ(issue(MemOp::kLoad, 4), 111u);
}

TEST_F(BankFixture, ScWithoutReservationFails) {
  EXPECT_EQ(issue(MemOp::kStoreConditional, 4, 111, 0xF, 7), 1u);
}

TEST_F(BankFixture, StoreByOtherHartKillsReservation) {
  issue(MemOp::kLoadReserved, 6, 0, 0xF, /*src=*/1);
  issue(MemOp::kStore, 6, 42, 0xF, /*src=*/2);
  EXPECT_EQ(issue(MemOp::kStoreConditional, 6, 7, 0xF, /*src=*/1), 1u);
  EXPECT_EQ(issue(MemOp::kLoad, 6), 42u);
}

TEST_F(BankFixture, AmoByOtherHartKillsReservation) {
  issue(MemOp::kLoadReserved, 6, 0, 0xF, 1);
  issue(MemOp::kAmoAdd, 6, 1, 0xF, 2);
  EXPECT_EQ(issue(MemOp::kStoreConditional, 6, 7, 0xF, 1), 1u);
}

TEST_F(BankFixture, ReservationSurvivesUnrelatedRow) {
  issue(MemOp::kLoadReserved, 8, 0, 0xF, 1);
  issue(MemOp::kStore, 9, 42, 0xF, 2);  // different row
  EXPECT_EQ(issue(MemOp::kStoreConditional, 8, 7, 0xF, 1), 0u);
}

TEST(SpmBank, OneRequestPerCycle) {
  SpmBank bank("bank", 256, /*input_capacity=*/8);
  CollectSink sink;
  bank.connect_response(&sink);
  for (uint32_t i = 0; i < 4; ++i) {
    Packet p;
    p.op = MemOp::kLoad;
    p.dst_row = i;
    bank.request_input()->push(p);
  }
  for (uint64_t c = 0; c < 4; ++c) {
    bank.evaluate(c);
    EXPECT_EQ(sink.got.size(), c + 1);
  }
}

TEST(SpmBank, StallsWhenResponsePathFull) {
  SpmBank bank("bank", 256, 8);
  CollectSink sink(/*capacity=*/1);
  bank.connect_response(&sink);
  Packet p;
  p.op = MemOp::kLoad;
  bank.request_input()->push(p);
  bank.request_input()->push(p);
  bank.evaluate(0);
  bank.evaluate(1);  // response sink full: must stall, not drop
  EXPECT_EQ(sink.got.size(), 1u);
  EXPECT_EQ(bank.stall_cycles(), 1u);
  sink.got.clear();
  bank.evaluate(2);
  EXPECT_EQ(sink.got.size(), 1u);
}

TEST(SpmBank, PostedStoreProceedsDespiteFullResponsePath) {
  SpmBank bank("bank", 256, 8);
  CollectSink sink(/*capacity=*/0);  // never accepts
  bank.connect_response(&sink);
  Packet st;
  st.op = MemOp::kStore;
  st.dst_row = 1;
  st.data = 5;
  bank.request_input()->push(st);
  bank.evaluate(0);
  EXPECT_EQ(bank.backdoor_read(1), 5u);
}

TEST(SpmBank, BackdoorAccess) {
  SpmBank bank("bank", 64);
  bank.backdoor_write(3, 77);
  EXPECT_EQ(bank.backdoor_read(3), 77u);
  EXPECT_THROW(bank.backdoor_read(16), CheckError);
  EXPECT_EQ(bank.rows(), 16u);
}

}  // namespace
}  // namespace mempool
