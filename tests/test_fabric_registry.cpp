// The fabric-topology plugin contract: every topology in the FabricRegistry
// — including ones the legacy enum could never express (TopH2) — must pass
// the mini-cluster smoke battery: measured zero-load probe latencies match
// the plugin's self-reported model for every (src, dst) tile pair, and the
// config surface (TopologySpec params, num_groups) fails loudly on invalid
// input. Engine equivalence (dense vs activity-driven bit-identical) for
// every registered topology lives in test_sim_equivalence.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/cluster.hpp"
#include "helpers.hpp"
#include "mem/imem.hpp"
#include "noc/fabric.hpp"
#include "power/energy_model.hpp"

namespace mempool {
namespace {

struct ProbeRig {
  explicit ProbeRig(const ClusterConfig& cfg)
      : imem(4096), cluster(cfg, &imem) {
    for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
      probes.push_back(std::make_unique<test::ProbeClient>(
          static_cast<uint16_t>(c),
          static_cast<uint16_t>(c / cfg.cores_per_tile), &cluster.layout()));
    }
    std::vector<Client*> clients;
    for (auto& p : probes) clients.push_back(p.get());
    cluster.attach_clients(clients);
    cluster.build(engine);
  }

  uint64_t probe(uint32_t core, uint32_t cpu_addr) {
    probes[core]->arm(cpu_addr);
    const uint32_t before = probes[core]->responses();
    for (int i = 0; i < 64; ++i) {
      engine.step();
      if (probes[core]->responses() > before) {
        return probes[core]->latency();
      }
    }
    ADD_FAILURE() << "no response within 64 cycles";
    return 0;
  }

  InstrMem imem;
  Engine engine;
  Cluster cluster;
  std::vector<std::unique_ptr<test::ProbeClient>> probes;
};

uint32_t addr_in_tile(const ClusterConfig& cfg, uint32_t tile) {
  return tile * cfg.seq_region_bytes;
}

TEST(FabricRegistry, ListsBuiltinsInRegistrationOrder) {
  const auto names = FabricRegistry::names();
  ASSERT_GE(names.size(), 5u);
  EXPECT_EQ(names[0], "Top1");
  EXPECT_EQ(names[1], "Top4");
  EXPECT_EQ(names[2], "TopH");
  EXPECT_EQ(names[3], "TopX");
  EXPECT_EQ(names[4], "TopH2");
  for (const auto& n : names) {
    const FabricTopology* t = FabricRegistry::find(n);
    ASSERT_NE(t, nullptr) << n;
    EXPECT_EQ(t->name(), n);
    EXPECT_FALSE(t->description().empty()) << n;
  }
}

TEST(FabricRegistry, UnknownNameThrowsListingAvailable) {
  EXPECT_EQ(FabricRegistry::find("TopZ"), nullptr);
  try {
    FabricRegistry::get("TopZ");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("TopZ"), std::string::npos);
    EXPECT_NE(msg.find("Top1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("TopH2"), std::string::npos) << msg;
  }
}

TEST(FabricRegistry, ValidateRejectsUnknownTopologyName) {
  ClusterConfig cfg;
  cfg.topology = TopologySpec{"TopZ"};
  EXPECT_THROW(cfg.validate(), CheckError);
}

// --- registry-wide zero-load contract ----------------------------------------

class FabricContract : public ::testing::TestWithParam<std::string> {};

TEST_P(FabricContract, MiniClusterProbesMatchSelfReportedModel) {
  const FabricTopology& topo = FabricRegistry::get(GetParam());
  const ClusterConfig cfg = ClusterConfig::mini(TopologySpec{GetParam()});
  ProbeRig rig(cfg);
  // Probe from a core in the first and in the last tile to *every* tile:
  // every latency tier of the fabric must match the plugin's model exactly.
  for (uint32_t src_tile : {0u, cfg.num_tiles - 1}) {
    const uint32_t core = src_tile * cfg.cores_per_tile;
    for (uint32_t dst = 0; dst < cfg.num_tiles; ++dst) {
      EXPECT_EQ(rig.probe(core, addr_in_tile(cfg, dst)),
                topo.zero_load_latency(cfg, src_tile, dst))
          << GetParam() << ": tile " << src_tile << " -> " << dst;
    }
  }
}

TEST_P(FabricContract, CanonicalConfigsValidateAndDescribeThemselves) {
  const FabricTopology& topo = FabricRegistry::get(GetParam());
  const ClusterConfig paper = ClusterConfig::paper(TopologySpec{GetParam()},
                                                   /*scrambling=*/true);
  const ClusterConfig mini = ClusterConfig::mini(TopologySpec{GetParam()});
  EXPECT_GE(paper.num_cores(), mini.num_cores());
  EXPECT_EQ(paper.topology.name, GetParam());
  EXPECT_EQ(paper.display_name(), GetParam() + "S");
  EXPECT_FALSE(topo.latency_summary(paper).empty());
  // The zero-load model must at least distinguish the own tile.
  EXPECT_EQ(topo.zero_load_latency(paper, 0, 0), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, FabricContract,
                         ::testing::ValuesIn(FabricRegistry::names()),
                         [](const auto& tpinfo) { return tpinfo.param; });

// --- TopH2 specifics ----------------------------------------------------------

TEST(TopH2, PaperScaleIs1024Cores) {
  const ClusterConfig cfg = ClusterConfig::paper(TopologySpec{"TopH2"}, true);
  EXPECT_EQ(cfg.num_cores(), 1024u);
  EXPECT_EQ(cfg.num_tiles, 256u);
  EXPECT_EQ(cfg.num_groups, 16u);
  const FabricTopology& topo = FabricRegistry::get("TopH2");
  // Four latency tiers: own tile / group / super-group / cross-super-group.
  EXPECT_EQ(topo.zero_load_latency(cfg, 0, 0), 1u);
  EXPECT_EQ(topo.zero_load_latency(cfg, 0, 15), 3u);    // same group
  EXPECT_EQ(topo.zero_load_latency(cfg, 0, 16), 5u);    // same super-group
  EXPECT_EQ(topo.zero_load_latency(cfg, 0, 63), 5u);
  EXPECT_EQ(topo.zero_load_latency(cfg, 0, 64), 7u);    // cross super-group
  EXPECT_EQ(topo.zero_load_latency(cfg, 0, 255), 7u);
  EXPECT_EQ(topo.latency_summary(cfg), "1 / 3 / 5 / 7");
}

TEST(TopH2, PaperScaleProbesMatchModel) {
  // The full 1024-core cluster: spot-check one destination per tier plus the
  // worst case from both ends (the exhaustive per-tile sweep runs on the
  // mini config in FabricContract).
  const ClusterConfig cfg = ClusterConfig::paper(TopologySpec{"TopH2"}, true);
  const FabricTopology& topo = FabricRegistry::get("TopH2");
  ProbeRig rig(cfg);
  for (uint32_t dst : {0u, 3u, 15u, 16u, 63u, 64u, 128u, 255u}) {
    EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, dst)),
              topo.zero_load_latency(cfg, 0, dst))
        << "tile 0 -> " << dst;
  }
  const uint32_t last_core = (cfg.num_tiles - 1) * cfg.cores_per_tile;
  EXPECT_EQ(rig.probe(last_core, addr_in_tile(cfg, 0)),
            topo.zero_load_latency(cfg, cfg.num_tiles - 1, 0));
}

TEST(TopH2, SupergroupsParamIsHonored) {
  // A non-default hierarchy: 2 super-groups × 4 groups × 4 tiles = 32 tiles
  // (tiles per super-group = 16 = 4^2, so the shape validates).
  ClusterConfig cfg;
  cfg.topology = TopologySpec{"TopH2", {{"supergroups", Json(2)}}};
  cfg.num_tiles = 32;
  cfg.num_groups = 8;
  cfg.validate();
  EXPECT_EQ(cfg.topology.param_uint("supergroups", 4), 2u);
  const FabricTopology& topo = FabricRegistry::get("TopH2");
  // Groups 0..3 share super-group 0: tile 4 (group 1) is cross-group inside
  // the super-group; tile 16 (group 4) crosses super-groups over a 2-layer
  // all-registered butterfly (also 5 cycles at this scale).
  EXPECT_EQ(topo.zero_load_latency(cfg, 0, 3), 3u);
  EXPECT_EQ(topo.zero_load_latency(cfg, 0, 4), 5u);
  EXPECT_EQ(topo.zero_load_latency(cfg, 0, 16), 5u);
  // And the built cluster agrees with the model end to end.
  ProbeRig rig(cfg);
  for (uint32_t dst : {0u, 1u, 4u, 15u, 16u, 31u}) {
    EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, dst)),
              topo.zero_load_latency(cfg, 0, dst))
        << "tile 0 -> " << dst;
  }
}

// --- validate() death tests over the new spec surface -------------------------

TEST(ClusterValidate, ZeroGroupsRejected) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.num_groups = 0;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(ClusterValidate, NonDividingGroupsRejected) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.num_groups = 3;  // 16 % 3 != 0
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(ClusterValidate, UnknownSpecParamRejected) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.topology.params["bogus"] = Json(1);
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(ClusterValidate, IllTypedSpecParamRejected) {
  ClusterConfig cfg;
  cfg.topology = TopologySpec{"TopH2", {{"supergroups", Json("four")}}};
  cfg.num_tiles = 256;
  cfg.num_groups = 16;
  EXPECT_THROW(cfg.validate(), CheckError);
}

TEST(ClusterValidate, TopH2NonDividingSupergroupsRejected) {
  ClusterConfig cfg;
  cfg.topology = TopologySpec{"TopH2", {{"supergroups", Json(3)}}};
  cfg.num_tiles = 256;
  cfg.num_groups = 16;  // 16 % 3 != 0
  EXPECT_THROW(cfg.validate(), CheckError);
}

// --- energy hook ---------------------------------------------------------------

TEST(FabricEnergy, TopHRowsMatchTheCalibratedModel) {
  // The TopH plugin's analytic rows restate the EnergyModel identities the
  // whole Figure-10 calibration rests on (16.9 / 8.4 pJ).
  const EnergyModel model;
  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  const auto rows =
      FabricRegistry::get("TopH").energy_rows(cfg, model.params());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0].energy.total(),
                   model.remote_load_cross_group().total());
  EXPECT_DOUBLE_EQ(rows[1].energy.total(),
                   model.remote_load_same_group().total());
  EXPECT_DOUBLE_EQ(rows[2].energy.total(), model.local_load().total());
  EXPECT_NEAR(rows[0].energy.total(), 16.9, 1e-9);
  EXPECT_NEAR(rows[2].energy.total(), 8.4, 1e-9);
}

TEST(FabricEnergy, TopH2CrossSuperCostsMoreThanCrossGroup) {
  const EnergyModel model;
  const ClusterConfig cfg = ClusterConfig::paper(TopologySpec{"TopH2"}, true);
  const auto rows =
      FabricRegistry::get("TopH2").energy_rows(cfg, model.params());
  ASSERT_EQ(rows.size(), 4u);
  // One extra die-spanning butterfly layer each way.
  EXPECT_GT(rows[0].energy.total(), rows[1].energy.total());
  EXPECT_GT(rows[1].energy.total(), rows[3].energy.total());
}

}  // namespace
}  // namespace mempool
