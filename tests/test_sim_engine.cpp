// Activity-driven scheduler unit tests: wake/sleep mechanics, dirty-list
// commits, quiescence fast-forward, and dense-mode equivalence on toy
// component graphs (cluster-level equivalence lives in
// test_sim_equivalence.cpp).

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/elastic_buffer.hpp"
#include "sim/engine.hpp"

namespace mempool {
namespace {

using IntBuffer = ElasticBuffer<int>;

/// Emits `count` integers starting at cycle `start`, one per cycle.
class BurstProducer final : public Component {
 public:
  BurstProducer(std::string name, IntBuffer* out, int count, uint64_t start)
      : Component(std::move(name)), out_(out), count_(count), start_(start) {}

  void evaluate(uint64_t cycle) override {
    ++evaluations;
    if (cycle >= start_ && sent_ < count_ && out_->can_accept()) {
      out_->push(sent_++);
    }
  }
  bool idle() const override { return sent_ == count_; }

  uint64_t evaluations = 0;

 private:
  IntBuffer* out_;
  int count_;
  uint64_t start_;
  int sent_ = 0;
};

/// Pops at most one item per cycle, recording (cycle, value).
class CountingConsumer final : public Component {
 public:
  CountingConsumer(std::string name, IntBuffer* in)
      : Component(std::move(name)), in_(in) {}

  void evaluate(uint64_t cycle) override {
    ++evaluations;
    if (!in_->empty()) received.emplace_back(cycle, in_->pop());
  }
  bool idle() const override { return in_->empty(); }

  std::vector<std::pair<uint64_t, int>> received;
  uint64_t evaluations = 0;

 private:
  IntBuffer* in_;
};

struct Rig {
  explicit Rig(BufferMode mode, int count = 3, uint64_t start = 0)
      : buf(mode, /*capacity=*/4),
        prod("prod", &buf, count, start),
        cons("cons", &buf) {
    buf.set_consumer(&cons);
    engine.add_component(&prod);
    engine.add_component(&cons);
    engine.add_clocked(&buf);
  }

  Engine engine;
  IntBuffer buf;
  BurstProducer prod;
  CountingConsumer cons;
};

TEST(Engine, CombinationalPushWakesConsumerSameCycle) {
  Rig rig(BufferMode::kCombinational);
  rig.engine.run(5);
  ASSERT_EQ(rig.cons.received.size(), 3u);
  // Topological order producer -> consumer: a combinational push is consumed
  // within the producing cycle.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.cons.received[i],
              (std::pair<uint64_t, int>{static_cast<uint64_t>(i), i}));
  }
}

TEST(Engine, RegisteredPushWakesConsumerAfterCommit) {
  Rig rig(BufferMode::kRegistered);
  rig.engine.run(6);
  ASSERT_EQ(rig.cons.received.size(), 3u);
  // One register boundary: each item arrives the cycle after its push.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(rig.cons.received[i],
              (std::pair<uint64_t, int>{static_cast<uint64_t>(i) + 1, i}));
  }
}

TEST(Engine, IdleComponentsAreSkipped) {
  Rig rig(BufferMode::kRegistered, /*count=*/2, /*start=*/0);
  rig.engine.run(100);
  // Producer: initial evaluation every cycle until done (cycles 0,1), one
  // more to report idle is not needed — it reports idle the cycle it sends
  // the last item. Consumer: woken once per committed item.
  EXPECT_EQ(rig.prod.evaluations, 2u);
  EXPECT_LE(rig.cons.evaluations, 4u);
  EXPECT_LT(rig.engine.evaluations(), 10u)
      << "active set must not evaluate sleeping components";
  EXPECT_EQ(rig.cons.received.size(), 2u);
}

TEST(Engine, QuiescenceFastForwardsRun) {
  Rig rig(BufferMode::kRegistered, /*count=*/3, /*start=*/0);
  rig.engine.run(1'000'000);
  EXPECT_EQ(rig.engine.cycle(), 1'000'000u) << "run() must land on target";
  EXPECT_GT(rig.engine.idle_cycles_skipped(), 999'000u);
  EXPECT_EQ(rig.cons.received.size(), 3u);
}

TEST(Engine, WakeAfterQuiescence) {
  // A producer that starts late: the engine must not fast-forward past its
  // start cycle, because the producer never reports idle before finishing.
  Rig rig(BufferMode::kRegistered, /*count=*/1, /*start=*/50);
  rig.engine.run(60);
  ASSERT_EQ(rig.cons.received.size(), 1u);
  EXPECT_EQ(rig.cons.received[0].first, 51u);
}

TEST(Engine, RunUntilIdleStopsAtQuiescence) {
  Rig rig(BufferMode::kRegistered, /*count=*/3, /*start=*/0);
  const uint64_t stepped = rig.engine.run_until_idle(10'000);
  EXPECT_LT(stepped, 10u);
  EXPECT_TRUE(rig.engine.quiescent());
  EXPECT_EQ(rig.cons.received.size(), 3u);
  // Once quiescent, further calls are O(1): no extra cycles are stepped.
  EXPECT_EQ(rig.engine.run_until_idle(10'000), 0u);
}

/// Arms a timed wake for a fixed cycle, emits one item there, then is done.
class TimedProducer final : public Component {
 public:
  TimedProducer(std::string name, Engine* engine, IntBuffer* out, uint64_t at)
      : Component(std::move(name)), engine_(engine), out_(out), at_(at) {}

  void evaluate(uint64_t cycle) override {
    ++evaluations;
    if (!armed_) {
      armed_ = true;
      engine_->wake_at(at_, this);
    }
    if (cycle == at_ && out_->can_accept()) {
      out_->push(42);
      done_ = true;
    }
  }
  // Not idle until the wake condition is registered (cf. the traffic
  // generator's arrivals_init_ guard) — idle() promises "no-op unless woken",
  // which only holds once the timer is armed.
  bool idle() const override {
    return done_ || (armed_ && engine_->cycle() != at_);
  }

  uint64_t evaluations = 0;

 private:
  Engine* engine_;
  IntBuffer* out_;
  uint64_t at_;
  bool armed_ = false;
  bool done_ = false;
};

TEST(Engine, TimedWakeFiresAtTheArmedCycle) {
  Engine engine;
  IntBuffer buf(BufferMode::kCombinational, 2);
  TimedProducer prod("timed", &engine, &buf, 5000);
  CountingConsumer cons("cons", &buf);
  buf.set_consumer(&cons);
  engine.add_component(&prod);
  engine.add_component(&cons);
  engine.add_clocked(&buf);
  engine.run(6000);
  ASSERT_EQ(cons.received.size(), 1u);
  EXPECT_EQ(cons.received[0], (std::pair<uint64_t, int>{5000, 42}));
  // The producer slept through the 5000 dead cycles (one arming evaluation,
  // one timed one), and run() fast-forwarded them.
  EXPECT_LE(prod.evaluations, 3u);
  EXPECT_GT(engine.idle_cycles_skipped(), 4000u);
}

TEST(Engine, RunUntilIdleFastForwardsToArmedTimers) {
  Engine engine;
  IntBuffer buf(BufferMode::kCombinational, 2);
  TimedProducer prod("timed", &engine, &buf, 5000);
  CountingConsumer cons("cons", &buf);
  buf.set_consumer(&cons);
  engine.add_component(&prod);
  engine.add_component(&cons);
  engine.add_clocked(&buf);
  const uint64_t advanced = engine.run_until_idle(1'000'000);
  EXPECT_TRUE(engine.quiescent());
  ASSERT_EQ(cons.received.size(), 1u);
  EXPECT_EQ(advanced, engine.cycle());
  EXPECT_LT(advanced, 5100u) << "must stop shortly after the timed event";
  EXPECT_GT(engine.idle_cycles_skipped(), 4000u)
      << "dead cycles before the timer must be skipped, not stepped";
}

TEST(Engine, DenseModeMatchesActive) {
  Rig active(BufferMode::kRegistered, /*count=*/4, /*start=*/2);
  Rig dense(BufferMode::kRegistered, /*count=*/4, /*start=*/2);
  dense.engine.set_dense(true);
  active.engine.run(200);
  dense.engine.run(200);
  EXPECT_EQ(active.cons.received, dense.cons.received);
  EXPECT_EQ(active.engine.cycle(), dense.engine.cycle());
  // Dense evaluates everything every cycle; active does strictly less work.
  EXPECT_EQ(dense.engine.evaluations(), 2u * 200u);
  EXPECT_LT(active.engine.evaluations(), 30u);
}

TEST(Engine, DenseRunUntilIdlePollsIdlePredicates) {
  Rig rig(BufferMode::kRegistered, /*count=*/2, /*start=*/0);
  rig.engine.set_dense(true);
  const uint64_t stepped = rig.engine.run_until_idle(10'000);
  EXPECT_LT(stepped, 10u);
  EXPECT_TRUE(rig.engine.quiescent());
  EXPECT_EQ(rig.cons.received.size(), 2u);
}

TEST(Engine, BackpressuredProducerStaysAwake) {
  // Tiny buffer, consumer that starts late: the producer must keep retrying
  // (it is non-idle while it still has items to send) and nothing is lost.
  Engine engine;
  IntBuffer buf(BufferMode::kRegistered, /*capacity=*/1);
  BurstProducer prod("prod", &buf, 5, 0);
  CountingConsumer cons("cons", &buf);
  buf.set_consumer(&cons);
  engine.add_component(&prod);
  engine.add_component(&cons);
  engine.add_clocked(&buf);
  engine.run(50);
  ASSERT_EQ(cons.received.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(cons.received[i].second, i);
}

TEST(Engine, CommitPhaseOnlyTouchesDirtyBuffers) {
  Engine engine;
  IntBuffer hot(BufferMode::kRegistered, 4);
  IntBuffer cold(BufferMode::kRegistered, 4);
  BurstProducer prod("prod", &hot, 3, 0);
  CountingConsumer cons("cons", &hot);
  hot.set_consumer(&cons);
  engine.add_component(&prod);
  engine.add_component(&cons);
  engine.add_clocked(&hot);
  engine.add_clocked(&cold);  // never pushed, must never be committed
  engine.run(10);
  EXPECT_EQ(engine.commits(), 3u) << "one commit per staged push, cold buffer "
                                     "never swept";
}

}  // namespace
}  // namespace mempool
