#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/bitutil.hpp"
#include "noc/butterfly.hpp"
#include "sim/engine.hpp"

namespace mempool {
namespace {

class CollectSink final : public PacketSink {
 public:
  bool can_accept() const override { return true; }
  void push(const Packet& p) override { got.push_back(p); }
  std::vector<Packet> got;
};

Packet to_tile(uint16_t dst, uint16_t src = 0) {
  Packet p;
  p.dst_tile = dst;
  p.src = src;
  return p;
}

EndpointFn by_dst() {
  return [](const Packet& p) { return static_cast<unsigned>(p.dst_tile); };
}

std::vector<BufferMode> comb(unsigned layers) {
  return std::vector<BufferMode>(layers, BufferMode::kCombinational);
}

class ButterflyAllPairs : public ::testing::TestWithParam<unsigned> {};

TEST_P(ButterflyAllPairs, EveryPairDelivered) {
  const unsigned n = GetParam();
  const unsigned layers = log2_exact(n) / 2;
  for (unsigned src = 0; src < n; ++src) {
    ButterflyNet net("bf", n, 4, comb(layers), by_dst());
    std::vector<CollectSink> sinks(n);
    for (unsigned i = 0; i < n; ++i) net.connect_output(i, &sinks[i]);
    for (unsigned dst = 0; dst < n; ++dst) {
      net.input(src)->push(to_tile(static_cast<uint16_t>(dst)));
      net.evaluate(0);  // fully combinational: single-cycle traversal
      ASSERT_EQ(sinks[dst].got.size(), 1u)
          << "src " << src << " -> dst " << dst;
      for (unsigned o = 0; o < n; ++o) {
        if (o != dst) {
          ASSERT_TRUE(sinks[o].got.empty());
        }
      }
      sinks[dst].got.clear();
    }
    EXPECT_TRUE(net.idle());
  }
}

// 256 endpoints covers the multi-word occupancy/arbitration masks (the
// largest butterfly ClusterConfig::validate() admits).
INSTANTIATE_TEST_SUITE_P(Sizes, ButterflyAllPairs,
                         ::testing::Values(4u, 16u, 64u, 256u));

TEST(Butterfly, PermutationTrafficAllDeliveredConcurrently) {
  // The identity permutation is conflict-free in an omega network.
  const unsigned n = 16;
  ButterflyNet net("bf", n, 4, comb(2), by_dst());
  std::vector<CollectSink> sinks(n);
  for (unsigned i = 0; i < n; ++i) net.connect_output(i, &sinks[i]);
  for (unsigned i = 0; i < n; ++i) {
    net.input(i)->push(to_tile(static_cast<uint16_t>(i), static_cast<uint16_t>(i)));
  }
  net.evaluate(0);
  for (unsigned i = 0; i < n; ++i) {
    ASSERT_EQ(sinks[i].got.size(), 1u);
    EXPECT_EQ(sinks[i].got[0].src, i);
  }
}

TEST(Butterfly, RegisteredLayersAddCycles) {
  const unsigned n = 16;
  Engine engine;
  ButterflyNet net("bf", n, 4,
                   {BufferMode::kRegistered, BufferMode::kRegistered},
                   by_dst());
  net.register_clocked(engine);
  CollectSink sink;
  for (unsigned i = 0; i < n; ++i) net.connect_output(i, &sink);
  net.input(3)->push(to_tile(9));
  net.evaluate(0);
  EXPECT_TRUE(sink.got.empty());
  engine.step();  // commit
  net.evaluate(1);
  EXPECT_TRUE(sink.got.empty()) << "second registered layer holds it";
  engine.step();
  net.evaluate(2);
  EXPECT_EQ(sink.got.size(), 1u) << "delivered after two register stages";
}

TEST(Butterfly, HotspotSerializesOnePerCycle) {
  const unsigned n = 16;
  ButterflyNet net("bf", n, 4, comb(2), by_dst());
  std::vector<CollectSink> sinks(n);
  for (unsigned i = 0; i < n; ++i) net.connect_output(i, &sinks[i]);
  // All 16 inputs target endpoint 5: the final switch output serializes.
  for (unsigned i = 0; i < n; ++i) {
    net.input(i)->push(to_tile(5, static_cast<uint16_t>(i)));
  }
  std::size_t prev = 0;
  for (int cycle = 0; cycle < 32 && sinks[5].got.size() < n; ++cycle) {
    net.evaluate(cycle);
    ASSERT_LE(sinks[5].got.size() - prev, 1u) << "at most one per cycle";
    prev = sinks[5].got.size();
  }
  EXPECT_EQ(sinks[5].got.size(), n);
  EXPECT_EQ(net.blocked() > 0, true);
}

TEST(Butterfly, TraversalCountersPerLayer) {
  const unsigned n = 16;
  ButterflyNet net("bf", n, 4, comb(2), by_dst());
  std::vector<CollectSink> sinks(n);
  for (unsigned i = 0; i < n; ++i) net.connect_output(i, &sinks[i]);
  net.input(0)->push(to_tile(15));
  net.evaluate(0);
  EXPECT_EQ(net.layer_traversals(0), 1u);
  EXPECT_EQ(net.layer_traversals(1), 1u);
  EXPECT_EQ(net.traversals(), 2u);
}

TEST(Butterfly, InvalidConstructionThrows) {
  // 8 endpoints is not a power of radix 4.
  EXPECT_THROW(ButterflyNet("bf", 8, 4, comb(1), by_dst()), CheckError);
  // Wrong layer-mode count.
  EXPECT_THROW(ButterflyNet("bf", 16, 4, comb(3), by_dst()), CheckError);
}

TEST(Butterfly, SinglePathOblivousRouting) {
  // Deterministic path: the same (src, dst) pair must always use the same
  // switches — verified indirectly: repeated sends keep per-layer traversal
  // deltas identical.
  const unsigned n = 64;
  ButterflyNet net("bf", n, 4, comb(3), by_dst());
  std::vector<CollectSink> sinks(n);
  for (unsigned i = 0; i < n; ++i) net.connect_output(i, &sinks[i]);
  net.input(17)->push(to_tile(42));
  net.evaluate(0);
  net.input(17)->push(to_tile(42));
  net.evaluate(1);
  EXPECT_EQ(sinks[42].got.size(), 2u);
  EXPECT_EQ(net.layer_traversals(0), 2u);
  EXPECT_EQ(net.layer_traversals(1), 2u);
  EXPECT_EQ(net.layer_traversals(2), 2u);
}

}  // namespace
}  // namespace mempool
