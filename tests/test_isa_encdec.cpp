#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "isa/assembler.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"

namespace mempool::isa {
namespace {

Instr dec1(uint32_t w) { return decode(w); }

TEST(Decoder, Addi) {
  // addi x5, x6, -1
  const Instr d = dec1(enc_i(-1, Reg::x6, 0b000, Reg::x5, kOpImm));
  EXPECT_EQ(d.kind, Kind::kAddi);
  EXPECT_EQ(d.rd, 5);
  EXPECT_EQ(d.rs1, 6);
  EXPECT_EQ(d.imm, -1);
}

TEST(Decoder, LuiImmediateIsShifted) {
  const Instr d = dec1(enc_u(0xFFFFF, Reg::x1, kOpLui));
  EXPECT_EQ(d.kind, Kind::kLui);
  EXPECT_EQ(static_cast<uint32_t>(d.imm), 0xFFFFF000u);
}

TEST(Decoder, BranchImmediateSignAndAlignment) {
  const Instr d = dec1(enc_b(-8, Reg::x2, Reg::x1, 0b001, kOpBranch));
  EXPECT_EQ(d.kind, Kind::kBne);
  EXPECT_EQ(d.imm, -8);
  const Instr d2 = dec1(enc_b(4094, Reg::x2, Reg::x1, 0b000, kOpBranch));
  EXPECT_EQ(d2.imm, 4094);
}

TEST(Decoder, JalImmediateRange) {
  const Instr d = dec1(enc_j(-(1 << 20), Reg::ra, kOpJal));
  EXPECT_EQ(d.kind, Kind::kJal);
  EXPECT_EQ(d.imm, -(1 << 20));
  const Instr d2 = dec1(enc_j((1 << 20) - 2, Reg::ra, kOpJal));
  EXPECT_EQ(d2.imm, (1 << 20) - 2);
}

TEST(Decoder, StoreImmediateSplitFields) {
  const Instr d = dec1(enc_s(-2048, Reg::x7, Reg::x8, 0b010, kOpStore));
  EXPECT_EQ(d.kind, Kind::kSw);
  EXPECT_EQ(d.imm, -2048);
  EXPECT_EQ(d.rs2, 7);
  EXPECT_EQ(d.rs1, 8);
}

TEST(Decoder, ShiftsDistinguishSrliSrai) {
  Assembler a;
  a.srli(Reg::x1, Reg::x2, 5);
  a.srai(Reg::x3, Reg::x4, 31);
  const auto w = a.finish();
  EXPECT_EQ(decode(w[0]).kind, Kind::kSrli);
  EXPECT_EQ(decode(w[0]).imm, 5);
  EXPECT_EQ(decode(w[1]).kind, Kind::kSrai);
  EXPECT_EQ(decode(w[1]).imm, 31);
}

TEST(Decoder, MExtension) {
  Assembler a;
  a.mul(Reg::x1, Reg::x2, Reg::x3);
  a.mulh(Reg::x1, Reg::x2, Reg::x3);
  a.mulhsu(Reg::x1, Reg::x2, Reg::x3);
  a.mulhu(Reg::x1, Reg::x2, Reg::x3);
  a.div(Reg::x1, Reg::x2, Reg::x3);
  a.divu(Reg::x1, Reg::x2, Reg::x3);
  a.rem(Reg::x1, Reg::x2, Reg::x3);
  a.remu(Reg::x1, Reg::x2, Reg::x3);
  const auto w = a.finish();
  const Kind kinds[] = {Kind::kMul, Kind::kMulh, Kind::kMulhsu, Kind::kMulhu,
                        Kind::kDiv, Kind::kDivu, Kind::kRem, Kind::kRemu};
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(decode(w[i]).kind, kinds[i]) << i;
  }
}

TEST(Decoder, AExtension) {
  Assembler a;
  a.lr_w(Reg::x5, Reg::x6);
  a.sc_w(Reg::x5, Reg::x7, Reg::x6);
  a.amoswap_w(Reg::x5, Reg::x7, Reg::x6);
  a.amoadd_w(Reg::x5, Reg::x7, Reg::x6);
  a.amoxor_w(Reg::x5, Reg::x7, Reg::x6);
  a.amoand_w(Reg::x5, Reg::x7, Reg::x6);
  a.amoor_w(Reg::x5, Reg::x7, Reg::x6);
  a.amomin_w(Reg::x5, Reg::x7, Reg::x6);
  a.amomax_w(Reg::x5, Reg::x7, Reg::x6);
  a.amominu_w(Reg::x5, Reg::x7, Reg::x6);
  a.amomaxu_w(Reg::x5, Reg::x7, Reg::x6);
  const auto w = a.finish();
  const Kind kinds[] = {Kind::kLrW, Kind::kScW, Kind::kAmoSwapW,
                        Kind::kAmoAddW, Kind::kAmoXorW, Kind::kAmoAndW,
                        Kind::kAmoOrW, Kind::kAmoMinW, Kind::kAmoMaxW,
                        Kind::kAmoMinuW, Kind::kAmoMaxuW};
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(decode(w[i]).kind, kinds[i]) << i;
  }
}

TEST(Decoder, SystemInstructions) {
  EXPECT_EQ(dec1(0x00000073).kind, Kind::kEcall);
  EXPECT_EQ(dec1(0x00100073).kind, Kind::kEbreak);
  EXPECT_EQ(dec1(0x0000000F).kind, Kind::kFence);
}

TEST(Decoder, CsrInstructions) {
  Assembler a;
  a.csrrw(Reg::x1, 0xF14, Reg::x2);
  a.csrrs(Reg::x3, 0xB00, Reg::zero);
  const auto w = a.finish();
  Instr d = decode(w[0]);
  EXPECT_EQ(d.kind, Kind::kCsrrw);
  EXPECT_EQ(d.csr, 0xF14);
  d = decode(w[1]);
  EXPECT_EQ(d.kind, Kind::kCsrrs);
  EXPECT_EQ(d.csr, 0xB00);
}

TEST(Decoder, IllegalEncodings) {
  EXPECT_EQ(dec1(0x00000000).kind, Kind::kIllegal);
  EXPECT_EQ(dec1(0xFFFFFFFF).kind, Kind::kIllegal);
  // Branch funct3 = 010 is reserved.
  EXPECT_EQ(dec1(enc_b(0, Reg::x1, Reg::x1, 0b010, kOpBranch)).kind,
            Kind::kIllegal);
}

TEST(Decoder, RandomizedImmediateRoundTripProperty) {
  mempool::Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    const auto rd = static_cast<Reg>(rng.next_below(32));
    const auto rs1 = static_cast<Reg>(rng.next_below(32));
    const auto rs2 = static_cast<Reg>(rng.next_below(32));
    const int32_t imm12 = static_cast<int32_t>(rng.next_below(4096)) - 2048;
    {
      const Instr d = dec1(enc_i(imm12, rs1, 0b000, rd, kOpImm));
      ASSERT_EQ(d.imm, imm12);
      ASSERT_EQ(d.rd, reg_num(rd));
      ASSERT_EQ(d.rs1, reg_num(rs1));
    }
    {
      const Instr d = dec1(enc_s(imm12, rs2, rs1, 0b010, kOpStore));
      ASSERT_EQ(d.imm, imm12);
      ASSERT_EQ(d.rs2, reg_num(rs2));
    }
    {
      const int32_t immb = (static_cast<int32_t>(rng.next_below(4096)) - 2048) * 2;
      const Instr d = dec1(enc_b(immb, rs2, rs1, 0b000, kOpBranch));
      ASSERT_EQ(d.imm, immb);
    }
    {
      const int32_t immj =
          (static_cast<int32_t>(rng.next_below(1u << 20)) - (1 << 19)) * 2;
      const Instr d = dec1(enc_j(immj, rd, kOpJal));
      ASSERT_EQ(d.imm, immj);
    }
  }
}

TEST(Disasm, RepresentativeMnemonics) {
  Assembler a;
  a.addi(Reg::sp, Reg::sp, -16);
  a.lw(Reg::a0, Reg::sp, 8);
  a.amoadd_w(Reg::t0, Reg::t1, Reg::t2);
  const auto w = a.finish();
  EXPECT_EQ(disassemble_word(w[0]), "addi sp, sp, -16");
  EXPECT_EQ(disassemble_word(w[1]), "lw a0, 8(sp)");
  EXPECT_EQ(disassemble_word(w[2]), "amoadd.w t0, t1, (t2)");
}

TEST(Disasm, BranchTargetUsesPc) {
  Assembler a;
  a.l("top");
  a.nop();
  a.beq(Reg::x1, Reg::x2, "top");
  const auto w = a.finish();
  const std::string s = disassemble_word(w[1], 0x80000004);
  EXPECT_NE(s.find("0x80000000"), std::string::npos) << s;
}

}  // namespace
}  // namespace mempool::isa
