#include <gtest/gtest.h>

#include <tuple>
#include <unordered_set>

#include "mem/addr_map.hpp"
#include "mem/scrambler.hpp"

namespace mempool {
namespace {

TEST(AddressMap, LocateComposeRoundTrip) {
  AddressMap map(64, 16, 1024);
  EXPECT_EQ(map.spm_bytes(), 1u << 20);
  for (uint32_t addr = 0; addr < map.spm_bytes(); addr += 4093) {
    const BankLocation loc = map.locate(addr);
    EXPECT_EQ(map.compose(loc), addr);
  }
}

TEST(AddressMap, InterleavingWalksBanksThenTiles) {
  AddressMap map(64, 16, 1024);
  // Word-consecutive addresses hop across the 16 banks of tile 0 first.
  for (uint32_t w = 0; w < 16; ++w) {
    const BankLocation loc = map.locate(4 * w);
    EXPECT_EQ(loc.tile, 0u);
    EXPECT_EQ(loc.bank, w);
    EXPECT_EQ(loc.row, 0u);
  }
  // The 17th word is bank 0 of tile 1.
  const BankLocation loc = map.locate(4 * 16);
  EXPECT_EQ(loc.tile, 1u);
  EXPECT_EQ(loc.bank, 0u);
}

TEST(AddressMap, OutOfRangeThrows) {
  AddressMap map(4, 4, 256);
  EXPECT_THROW(map.locate(map.spm_bytes()), CheckError);
}

// --- Scrambler property sweep over configurations ---------------------------

using ScramblerParam = std::tuple<uint32_t, uint32_t, uint32_t, uint32_t>;
// (num_tiles, banks_per_tile, bank_bytes, seq_region_bytes)

class ScramblerSweep : public ::testing::TestWithParam<ScramblerParam> {};

TEST_P(ScramblerSweep, BijectionOnSequentialWindowIdentityOutside) {
  const auto [tiles, banks, bank_bytes, seq] = GetParam();
  AddressMap map(tiles, banks, bank_bytes);
  Scrambler scr(map, seq, true);

  std::unordered_set<uint32_t> seen;
  const uint32_t window = scr.seq_total_bytes();
  for (uint32_t a = 0; a < window; a += 4) {
    const uint32_t phys = scr.scramble(a);
    EXPECT_LT(phys, window) << "window maps onto itself";
    EXPECT_TRUE(seen.insert(phys).second) << "collision at 0x" << std::hex << a;
    EXPECT_EQ(scr.unscramble(phys), a);
  }
  // Identity outside the window.
  for (uint32_t a = window; a < map.spm_bytes(); a += 4097 * 4) {
    EXPECT_EQ(scr.scramble(a), a);
    EXPECT_EQ(scr.unscramble(a), a);
  }
}

TEST_P(ScramblerSweep, SequentialRegionMapsToOwnTile) {
  const auto [tiles, banks, bank_bytes, seq] = GetParam();
  AddressMap map(tiles, banks, bank_bytes);
  Scrambler scr(map, seq, true);
  for (uint32_t t = 0; t < tiles; ++t) {
    for (uint32_t off = 0; off < seq; off += 4) {
      const BankLocation loc = map.locate(scr.scramble(scr.tile_seq_base(t) + off));
      ASSERT_EQ(loc.tile, t) << "tile " << t << " offset " << off;
    }
  }
}

TEST_P(ScramblerSweep, SequentialRegionStillInterleavesAcrossTileBanks) {
  // "the banks inside the same tile are still accessed interleaved"
  const auto [tiles, banks, bank_bytes, seq] = GetParam();
  AddressMap map(tiles, banks, bank_bytes);
  Scrambler scr(map, seq, true);
  for (uint32_t w = 0; w < banks; ++w) {
    const BankLocation loc = map.locate(scr.scramble(4 * w));
    EXPECT_EQ(loc.bank, w);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ScramblerSweep,
    ::testing::Values(ScramblerParam{64, 16, 1024, 4096},
                      ScramblerParam{16, 16, 1024, 4096},
                      ScramblerParam{16, 16, 1024, 1024},
                      ScramblerParam{4, 4, 256, 64},
                      ScramblerParam{64, 16, 1024, 16384},
                      ScramblerParam{16, 4, 4096, 2048}));

TEST(Scrambler, DisabledIsIdentityEverywhere) {
  AddressMap map(16, 16, 1024);
  Scrambler scr(map, 4096, false);
  for (uint32_t a = 0; a < map.spm_bytes(); a += 997 * 4) {
    EXPECT_EQ(scr.scramble(a), a);
  }
}

TEST(Scrambler, MatchesPaperExampleFieldSwap) {
  // 16 tiles (t=4), 16 banks (b=4): byte offset 2 bits, bank bits [2,6),
  // tile bits [6,10). With 4 KiB sequential regions, s = log2(4096/64) = 6.
  AddressMap map(16, 16, 1024);
  Scrambler scr(map, 4096, true);
  // CPU address inside tile 3's region, row_lo = 5, bank = 7, byte = 0:
  const uint32_t cpu = (3u << 12) | (5u << 6) | (7u << 2);
  // Physical: tile bits move to [6,10), row_lo to [10,16).
  const uint32_t phys = (5u << 10) | (3u << 6) | (7u << 2);
  EXPECT_EQ(scr.scramble(cpu), phys);
  EXPECT_EQ(scr.unscramble(phys), cpu);
}

TEST(Scrambler, TooSmallOrTooLargeRegionThrows) {
  AddressMap map(16, 16, 1024);
  EXPECT_THROW(Scrambler(map, 32, true), CheckError);     // below one sweep
  EXPECT_THROW(Scrambler(map, 32768, true), CheckError);  // above tile share
}

}  // namespace
}  // namespace mempool
