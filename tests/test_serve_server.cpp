// SimServer + SimClient end to end over a real AF_UNIX socket: request /
// response round trips, cache flags on the wire, protocol error handling
// (malformed lines and invalid requests answer ok=false without killing the
// connection or the daemon), id echo, metrics/ping ops, and clean shutdown.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <string>

#include "common/check.hpp"
#include "serve/client.hpp"
#include "serve/netio.hpp"
#include "serve/server.hpp"

using namespace mempool;
using namespace mempool::serve;

namespace {

std::string test_socket(const char* tag) {
  return "/tmp/mempool_t" + std::to_string(::getpid()) + "_" + tag + ".sock";
}

SimRequest mini_request(double lambda, uint64_t seed) {
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::mini(Topology::kTopH, true);
  cfg.lambda = lambda;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 100;
  cfg.seed = seed;
  return SimRequest::from_config(cfg);
}

ServerConfig server_config(const std::string& socket_path) {
  ServerConfig cfg;
  cfg.socket_path = socket_path;
  cfg.service.threads = 2;
  return cfg;
}

bool path_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

TEST(SimServer, ServesComputesAndCacheHitsOverTheSocket) {
  const std::string path = test_socket("basic");
  SimServer server(server_config(path));
  server.start();
  {
    SimClient client(path, /*timeout_ms=*/2000);
    EXPECT_TRUE(client.ping());

    const SimRequest req = mini_request(0.1, 1);
    const ServiceResponse cold = client.run(req);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_FALSE(cold.cache_hit);
    EXPECT_EQ(cold.key, req.key());
    // The wire round trip must not perturb the result: bit-identical to a
    // local run_point of the same request.
    EXPECT_EQ(cold.result, run_point(req));

    const ServiceResponse warm = client.run(req);
    ASSERT_TRUE(warm.ok);
    EXPECT_TRUE(warm.cache_hit);
    EXPECT_EQ(warm.result, cold.result);
    EXPECT_GE(warm.service_ms, 0.0);

    const Json metrics = client.metrics();
    EXPECT_EQ(metrics.at("requests").as_uint(), 2u);
    EXPECT_EQ(metrics.at("cache").at("hits").as_uint(), 1u);
    EXPECT_TRUE(metrics.at("service_ms").at("overall").contains("p99"));

    client.shutdown_server();
  }
  server.wait();
  EXPECT_FALSE(path_exists(path)) << "socket not unlinked on shutdown";
}

TEST(SimServer, MalformedLinesGetErrorResponsesAndTheConnectionSurvives) {
  const std::string path = test_socket("protocol");
  SimServer server(server_config(path));
  server.start();
  {
    const int fd = connect_unix(path, 2000);
    LineReader reader(fd);
    std::string line;

    // Not JSON at all.
    ASSERT_TRUE(write_all(fd, "this is not json\n"));
    ASSERT_TRUE(reader.read_line(&line));
    Json resp = Json::parse(line);
    EXPECT_FALSE(resp.at("ok").as_bool());
    EXPECT_NE(resp.at("error").as_string().find("bad JSON"),
              std::string::npos);

    // JSON, but not an object.
    ASSERT_TRUE(write_all(fd, "[1, 2]\n"));
    ASSERT_TRUE(reader.read_line(&line));
    EXPECT_FALSE(Json::parse(line).at("ok").as_bool());

    // Non-string op values (as_string would throw): still a per-line error,
    // never an unwound reader thread.
    for (const char* bad_op : {"{\"op\": 5, \"id\": 1}\n",
                               "{\"op\": null, \"id\": 2}\n",
                               "{\"op\": {\"x\": 1}, \"id\": 3}\n"}) {
      ASSERT_TRUE(write_all(fd, bad_op));
      ASSERT_TRUE(reader.read_line(&line));
      resp = Json::parse(line);
      EXPECT_FALSE(resp.at("ok").as_bool());
      EXPECT_NE(resp.at("error").as_string().find("'op' must be a string"),
                std::string::npos);
    }

    // Unknown op, id echoed.
    ASSERT_TRUE(write_all(fd, "{\"op\": \"dance\", \"id\": 42}\n"));
    ASSERT_TRUE(reader.read_line(&line));
    resp = Json::parse(line);
    EXPECT_FALSE(resp.at("ok").as_bool());
    EXPECT_EQ(resp.at("id").as_uint(), 42u);
    EXPECT_NE(resp.at("error").as_string().find("dance"), std::string::npos);

    // Invalid request body (unknown topology): structured error, daemon
    // stays up.
    ASSERT_TRUE(write_all(
        fd, "{\"op\": \"run\", \"id\": 43, "
            "\"request\": {\"topology\": \"TopZ\"}}\n"));
    ASSERT_TRUE(reader.read_line(&line));
    resp = Json::parse(line);
    EXPECT_FALSE(resp.at("ok").as_bool());
    EXPECT_NE(resp.at("error").as_string().find("TopZ"), std::string::npos);

    // The same connection still serves a good request afterwards.
    ASSERT_TRUE(write_all(
        fd, "{\"op\": \"ping\", \"id\": \"still-alive\"}\n"));
    ASSERT_TRUE(reader.read_line(&line));
    resp = Json::parse(line);
    EXPECT_TRUE(resp.at("ok").as_bool());
    EXPECT_EQ(resp.at("id").as_string(), "still-alive");  // non-numeric ids ok
    ::close(fd);
  }
  server.stop();
  server.wait();
}

TEST(SimServer, InvalidSimulationParametersAnswerStructuredErrors) {
  const std::string path = test_socket("simerr");
  SimServer server(server_config(path));
  server.start();
  {
    SimClient client(path, 2000);
    // Geometry that fails ClusterConfig::validate (non-power-of-two tiles):
    // passes from_json, fails inside run_point — still a structured error.
    Json bad = Json::object();
    bad.set("topology", "TopH");
    bad.set("num_tiles", 24);
    Json msg = Json::object();
    msg.set("op", "run");
    msg.set("id", client.next_id());
    msg.set("request", bad);
    const Json resp = client.call(msg);
    EXPECT_FALSE(resp.at("ok").as_bool());
    EXPECT_FALSE(resp.at("error").as_string().empty());

    // Daemon is still healthy.
    const ServiceResponse good = client.run(mini_request(0.1, 2));
    EXPECT_TRUE(good.ok) << good.error;
    client.shutdown_server();
  }
  server.wait();
}

TEST(SimServer, PipelinedRequestsAllComplete) {
  const std::string path = test_socket("pipeline");
  SimServer server(server_config(path));
  server.start();
  {
    SimClient client(path, 2000);
    // Two distinct points interleaved with repeats, all in flight at once.
    const SimRequest a = mini_request(0.05, 3), b = mini_request(0.10, 3);
    constexpr int kLines = 10;
    for (int i = 0; i < kLines; ++i) {
      client.send_line(client.make_run_line(i % 2 == 0 ? a : b));
    }
    int ok = 0;
    for (int i = 0; i < kLines; ++i) {
      const ServiceResponse resp = response_from_json(client.recv_line());
      ASSERT_TRUE(resp.ok) << resp.error;
      ++ok;
    }
    EXPECT_EQ(ok, kLines);
    // Ten requests for two distinct points: exactly two simulations ran.
    EXPECT_EQ(client.metrics().at("cache").at("insertions").as_uint(), 2u);
    client.shutdown_server();
  }
  server.wait();
}

TEST(SimServer, StopFromTheOwningThreadAlsoShutsDownCleanly) {
  const std::string path = test_socket("stop");
  SimServer server(server_config(path));
  server.start();
  ASSERT_TRUE(path_exists(path));
  server.stop();
  server.wait();
  EXPECT_FALSE(path_exists(path));
}
