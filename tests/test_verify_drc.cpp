#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "helpers.hpp"
#include "mem/memsys.hpp"
#include "noc/fabric.hpp"
#include "sim/component.hpp"
#include "sim/elastic_buffer.hpp"
#include "sim/engine.hpp"
#include "verify/drc.hpp"
#include "verify/drc_matrix.hpp"

#if defined(MEMPOOL_DRC)
#include "sim/drc_runtime.hpp"
#endif

namespace mempool {
namespace {

// ---------------------------------------------------------------------------
// Fixture component: declares exactly the edges a test wires into it, so each
// malformed mini-fabric below violates one design rule and nothing else.
// ---------------------------------------------------------------------------
class Probe final : public Component {
 public:
  explicit Probe(const std::string& name) : Component(name) {}
  void evaluate(uint64_t /*cycle*/) override {}
  bool idle() const override { return true; }

  void describe(GraphVisitor& v) const override {
    if (self_ticking_) v.self_ticking();
    if (wake_on_demand_) v.wake_on_demand();
    for (const Clocked* b : reads_) v.reads(b, "in");
    for (const Clocked* b : writes_) v.writes_buffer(b, "out");
    for (const Wakeable* t : terminals_) v.writes_terminal(t, "deliver");
    for (const Wakeable* t : wakes_) v.wakes(t, "wake");
  }

  bool self_ticking_ = false;
  bool wake_on_demand_ = false;
  std::vector<const Clocked*> reads_;
  std::vector<const Clocked*> writes_;
  std::vector<const Wakeable*> terminals_;
  std::vector<const Wakeable*> wakes_;
};

std::vector<std::string> rules(const verify::DrcReport& report) {
  std::vector<std::string> out;
  out.reserve(report.violations.size());
  for (const verify::DrcViolation& v : report.violations) out.push_back(v.rule);
  return out;
}

// ---------------------------------------------------------------------------
// One malformed mini-fabric per rule, asserting the exact rule id.
// ---------------------------------------------------------------------------

TEST(DrcRules, D1RegisteredBufferNeverAddClocked) {
  Engine e;
  Probe writer("writer");
  Probe reader("reader");
  ElasticBuffer<int> buf(BufferMode::kRegistered, 2);
  buf.set_consumer(&reader, "reader");
  writer.self_ticking_ = true;
  writer.writes_.push_back(&buf);
  reader.reads_.push_back(&buf);
  e.add_component(&writer);
  e.add_component(&reader);
  // The bug: the registered buffer never reached add_clocked, so a staged
  // push would sit invisible forever.
  const verify::DrcReport report = verify::run_drc(e, 1);
  EXPECT_EQ(rules(report), std::vector<std::string>{"D1"}) << report.summary();
}

TEST(DrcRules, D2WrittenBufferWithoutConsumer) {
  Engine e;
  Probe writer("writer");
  ElasticBuffer<int> buf(BufferMode::kCombinational, 2);
  writer.self_ticking_ = true;
  writer.writes_.push_back(&buf);
  e.add_component(&writer);
  const verify::DrcReport report = verify::run_drc(e, 1);
  ASSERT_EQ(rules(report), std::vector<std::string>{"D2"}) << report.summary();
  EXPECT_NE(report.violations[0].detail.find("set_consumer"), std::string::npos);
}

TEST(DrcRules, D2ConsumerNotARegisteredComponent) {
  Engine e;
  Probe writer("writer");
  Wakeable stray;  // Never registered: its wake flag is outside every scan.
  ElasticBuffer<int> buf(BufferMode::kCombinational, 2);
  buf.set_consumer(&stray, "stray");
  writer.self_ticking_ = true;
  writer.writes_.push_back(&buf);
  e.add_component(&writer);
  const verify::DrcReport report = verify::run_drc(e, 1);
  EXPECT_EQ(rules(report), std::vector<std::string>{"D2"}) << report.summary();
}

TEST(DrcRules, D3CombinationalEdgePointsBackward) {
  Engine e;
  Probe reader("reader");
  Probe writer("writer");
  ElasticBuffer<int> buf(BufferMode::kCombinational, 2);
  buf.set_consumer(&reader, "reader");
  reader.reads_.push_back(&buf);
  writer.self_ticking_ = true;
  writer.writes_.push_back(&buf);
  e.add_component(&reader);  // Consumer evaluates BEFORE the producer:
  e.add_component(&writer);  // same-cycle push arrives after its reader ran.
  const verify::DrcReport report = verify::run_drc(e, 1);
  ASSERT_EQ(rules(report), std::vector<std::string>{"D3"}) << report.summary();
  EXPECT_NE(report.violations[0].detail.find("backward"), std::string::npos);
}

TEST(DrcRules, D3BackwardTerminalDelivery) {
  Engine e;
  Probe target("target");
  Probe src("src");
  target.wake_on_demand_ = true;
  src.self_ticking_ = true;
  src.terminals_.push_back(&target);
  e.add_component(&target);  // Delivery target evaluates before the deliverer.
  e.add_component(&src);
  const verify::DrcReport report = verify::run_drc(e, 1);
  EXPECT_EQ(rules(report), std::vector<std::string>{"D3"}) << report.summary();
}

TEST(DrcRules, D4CombinationalPathCrossesShards) {
  Engine e;
  Probe writer("writer");
  Probe reader("reader");
  ElasticBuffer<int> buf(BufferMode::kCombinational, 2);
  buf.set_consumer(&reader, "reader");
  writer.self_ticking_ = true;
  writer.writes_.push_back(&buf);
  reader.reads_.push_back(&buf);
  e.add_component(&writer, /*shard=*/0);
  e.add_component(&reader, /*shard=*/1);
  const verify::DrcReport report = verify::run_drc(e, 2);
  ASSERT_EQ(rules(report), std::vector<std::string>{"D4"}) << report.summary();
  EXPECT_NE(report.violations[0].detail.find("crosses shards"),
            std::string::npos);
}

TEST(DrcRules, D4CrossShardRegisteredEdgeNotMarkedBoundary) {
  Engine e;
  Probe writer("writer");
  Probe reader("reader");
  ElasticBuffer<int> buf(BufferMode::kRegistered, 2);
  buf.set_consumer(&reader, "reader");
  writer.self_ticking_ = true;
  writer.writes_.push_back(&buf);
  reader.reads_.push_back(&buf);
  e.add_component(&writer, /*shard=*/0);
  e.add_component(&reader, /*shard=*/1);
  e.add_clocked(&buf);
  const verify::DrcReport report = verify::run_drc(e, 2);
  ASSERT_EQ(rules(report), std::vector<std::string>{"D4"}) << report.summary();
  EXPECT_NE(report.violations[0].detail.find("not a marked shard boundary"),
            std::string::npos);
}

TEST(DrcRules, D4BoundaryDeclaresWrongConsumerShard) {
  Engine e;
  Probe writer("writer");
  Probe reader("reader");
  ElasticBuffer<int> buf(BufferMode::kRegistered, 2);
  buf.set_consumer(&reader, "reader");
  buf.mark_shard_boundary(/*consumer_shard=*/0);  // Reader lives in shard 1.
  writer.self_ticking_ = true;
  writer.writes_.push_back(&buf);
  reader.reads_.push_back(&buf);
  e.add_component(&writer, /*shard=*/0);
  e.add_component(&reader, /*shard=*/1);
  e.add_clocked(&buf);
  const verify::DrcReport report = verify::run_drc(e, 2);
  ASSERT_EQ(rules(report), std::vector<std::string>{"D4"}) << report.summary();
  EXPECT_NE(report.violations[0].detail.find("wrong lane"), std::string::npos);
}

TEST(DrcRules, D4WakeEdgeCrossesShards) {
  Engine e;
  Probe waker("waker");
  Probe target("target");
  waker.self_ticking_ = true;
  target.wake_on_demand_ = true;
  waker.wakes_.push_back(&target);
  e.add_component(&waker, /*shard=*/0);
  e.add_component(&target, /*shard=*/1);
  const verify::DrcReport report = verify::run_drc(e, 2);
  EXPECT_EQ(rules(report), std::vector<std::string>{"D4"}) << report.summary();
}

TEST(DrcRules, D5ShardTagOutOfRange) {
  Engine e;
  Probe a("a");
  Probe b("b");
  e.add_component(&a, /*shard=*/0);
  e.add_component(&b, /*shard=*/5);  // Cluster claims only 1 shard.
  const verify::DrcReport report = verify::run_drc(e, 1);
  EXPECT_EQ(rules(report), std::vector<std::string>{"D5"}) << report.summary();
}

TEST(DrcRules, D5EmptyShard) {
  Engine e;
  Probe a("a");
  Probe b("b");
  e.add_component(&a, /*shard=*/0);
  e.add_component(&b, /*shard=*/0);  // Shard 1 exists but holds nothing.
  const verify::DrcReport report = verify::run_drc(e, 2);
  ASSERT_EQ(rules(report), std::vector<std::string>{"D5"}) << report.summary();
  EXPECT_EQ(report.violations[0].component, "<cluster>");
}

TEST(DrcRules, D6DescribedComponentHasNoWakeSource) {
  Engine e;
  Probe orphan("orphan");
  ElasticBuffer<int> buf(BufferMode::kCombinational, 2);
  buf.set_consumer(&orphan, "orphan");
  orphan.reads_.push_back(&buf);  // Reads a buffer nothing ever writes.
  e.add_component(&orphan);
  const verify::DrcReport report = verify::run_drc(e, 1);
  ASSERT_EQ(rules(report), std::vector<std::string>{"D6"}) << report.summary();
  EXPECT_EQ(report.violations[0].component, "orphan");
}

TEST(DrcRules, OpaqueComponentsAreExempt) {
  Engine e;
  Probe opaque("opaque");  // Declares nothing: plugins gain nothing mandatory.
  e.add_component(&opaque);
  const verify::DrcReport report = verify::run_drc(e, 1);
  EXPECT_TRUE(report.clean()) << report.summary();
}

// A well-formed graph — forward comb edge, forward terminal edge, backward
// wake (legal: wakes are observed next cycle) — lints clean.
TEST(DrcRules, WellFormedGraphIsClean) {
  Engine e;
  Probe writer("writer");
  Probe reader("reader");
  Probe sink("sink");
  ElasticBuffer<int> buf(BufferMode::kCombinational, 2);
  buf.set_consumer(&reader, "reader");
  writer.self_ticking_ = true;
  writer.writes_.push_back(&buf);
  reader.reads_.push_back(&buf);
  reader.terminals_.push_back(&sink);
  sink.wakes_.push_back(&writer);  // Backward wake: seen next cycle, legal.
  e.add_component(&writer);
  e.add_component(&reader);
  e.add_component(&sink);
  const verify::DrcReport report = verify::run_drc(e, 1);
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.components, 3u);
  EXPECT_GE(report.edges, 4u);
}

// ---------------------------------------------------------------------------
// Positive sweep: every registered fabric topology x memory system x engine
// mode elaborates to a graph with zero violations.
// ---------------------------------------------------------------------------

TEST(DrcMatrix, EveryRegisteredCombinationIsClean) {
  for (const std::string& topo : FabricRegistry::names()) {
    for (const std::string& mem : MemoryRegistry::names()) {
      for (const EngineMode mode :
           {EngineMode::kActive, EngineMode::kDense, EngineMode::kSharded}) {
        const verify::DrcReport report =
            verify::check_topology(topo, mem, mode, /*mini=*/true);
        EXPECT_TRUE(report.clean())
            << topo << " x " << mem << " x " << engine_mode_name(mode) << ": "
            << report.summary();
        EXPECT_GT(report.components, 0u);
        EXPECT_GT(report.edges, 0u);
      }
    }
  }
}

TEST(DrcMatrix, ReportMatchesSchema) {
  bool clean = false;
  const Json doc = verify::drc_matrix_report(/*mini=*/true, &clean);
  EXPECT_TRUE(clean);
  EXPECT_EQ(doc.at("schema").as_string(), "mempool.drc.v1");
  EXPECT_TRUE(doc.at("clean").as_bool());
  const std::size_t expected = FabricRegistry::names().size() *
                               MemoryRegistry::names().size() * 3;
  ASSERT_EQ(doc.at("cases").size(), expected);
  for (const Json& c : doc.at("cases").items()) {
    EXPECT_TRUE(c.at("clean").as_bool());
    EXPECT_EQ(c.at("violations").size(), 0u);
    EXPECT_FALSE(c.at("topology").as_string().empty());
    EXPECT_FALSE(c.at("memory").as_string().empty());
    EXPECT_FALSE(c.at("engine").as_string().empty());
  }
}

// ---------------------------------------------------------------------------
// Loud-failure satellites: wiring mistakes fail at elaboration with context,
// not as silent misbehavior cycles later.
// ---------------------------------------------------------------------------

TEST(DrcChecks, DoubleAddComponentFailsWithName) {
  Engine e;
  Probe p("twice-wired");
  e.add_component(&p);
  try {
    e.add_component(&p);
    FAIL() << "duplicate add_component must throw";
  } catch (const CheckError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("twice-wired"), std::string::npos) << what;
    EXPECT_NE(what.find("registered twice"), std::string::npos) << what;
  }
}

TEST(DrcChecks, DoubleAddClockedFails) {
  Engine e;
  ElasticBuffer<int> buf(BufferMode::kRegistered, 2);
  e.add_clocked(&buf);
  EXPECT_THROW(e.add_clocked(&buf), CheckError);
}

TEST(DrcChecks, SetConsumerRebindFailsWithBothNames) {
  ElasticBuffer<int> buf(BufferMode::kCombinational, 2);
  Probe first("first-consumer");
  Probe second("second-consumer");
  buf.set_consumer(&first, "first-consumer");
  buf.set_consumer(&first, "first-consumer");  // Idempotent rebind: fine.
  try {
    buf.set_consumer(&second, "second-consumer");
    FAIL() << "rebinding to a different consumer must throw";
  } catch (const CheckError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("first-consumer"), std::string::npos) << what;
    EXPECT_NE(what.find("second-consumer"), std::string::npos) << what;
  }
}

TEST(DrcChecks, MarkShardBoundaryOnCombinationalFailsWithConsumer) {
  ElasticBuffer<int> buf(BufferMode::kCombinational, 2);
  Probe consumer("xbar7");
  buf.set_consumer(&consumer, "xbar7");
  try {
    buf.mark_shard_boundary(3);
    FAIL() << "combinational buffers cannot sit on a shard boundary";
  } catch (const CheckError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("xbar7"), std::string::npos) << what;
    EXPECT_NE(what.find("shard 3"), std::string::npos) << what;
  }
}

#if defined(MEMPOOL_DRC)
// ---------------------------------------------------------------------------
// Runtime shard-race detector (MEMPOOL_DRC builds only). The components below
// are *opaque* — they declare no edges, so the static DRC passes — and the
// cross-shard access only exists at runtime: exactly the class of bug the
// model-level checker catches on one host CPU where TSan (which needs two
// racing host threads) is structurally blind.
// ---------------------------------------------------------------------------

class OpaquePusher final : public Component {
 public:
  OpaquePusher(const std::string& name, ElasticBuffer<int>* buf)
      : Component(name), buf_(buf) {}
  void evaluate(uint64_t /*cycle*/) override {
    if (buf_->can_accept()) buf_->push(1);
  }
  bool idle() const override { return true; }

 private:
  ElasticBuffer<int>* buf_;
};

class OpaquePopper final : public Component {
 public:
  OpaquePopper(const std::string& name, ElasticBuffer<int>* buf)
      : Component(name), buf_(buf) {}
  void evaluate(uint64_t /*cycle*/) override {
    while (!buf_->empty()) buf_->pop();
  }
  bool idle() const override { return true; }

 private:
  ElasticBuffer<int>* buf_;
};

TEST(DrcRuntime, CatchesUnmarkedCrossShardPush) {
  drc::clear_races();
  Engine e;
  ElasticBuffer<int> buf(BufferMode::kRegistered, 2);
  OpaquePusher pusher("pusher", &buf);
  OpaquePopper popper("popper", &buf);
  buf.set_consumer(&popper, "popper");
  e.add_component(&pusher, /*shard=*/0);
  e.add_component(&popper, /*shard=*/1);
  e.add_clocked(&buf);
  // Static DRC is blind here (the components are opaque, so no edge is
  // declared)...
  EXPECT_TRUE(verify::run_drc(e, 2).clean());
  // ...but arming still resolves the buffer's home shard from its consumer.
  verify::arm_runtime_checker(e);
  e.step();
  e.step();
  ASSERT_GT(drc::race_count(), 0u)
      << "unmarked cross-shard push must be reported";
  const std::vector<std::string> log = drc::races();
  EXPECT_NE(log[0].find("shard-race"), std::string::npos) << log[0];
  EXPECT_NE(log[0].find("non-boundary"), std::string::npos) << log[0];
  drc::clear_races();
}

TEST(DrcRuntime, MarkedBoundaryIsRaceFree) {
  drc::clear_races();
  Engine e;
  ElasticBuffer<int> buf(BufferMode::kRegistered, 2);
  OpaquePusher pusher("pusher", &buf);
  OpaquePopper popper("popper", &buf);
  buf.set_consumer(&popper, "popper");
  buf.mark_shard_boundary(/*consumer_shard=*/1);  // The correct wiring.
  e.add_component(&pusher, /*shard=*/0);
  e.add_component(&popper, /*shard=*/1);
  e.add_clocked(&buf);
  verify::arm_runtime_checker(e);
  for (int i = 0; i < 4; ++i) e.step();
  EXPECT_EQ(drc::race_count(), 0u);
}

TEST(DrcRuntime, RealClusterProgramIsRaceFree) {
  drc::clear_races();
  // Cluster::build arms the checker automatically under MEMPOOL_DRC; a real
  // program whose loads/stores spread across tiles (interleaved addressing)
  // drives traffic through the marked boundaries without tripping it.
  test::run_text(ClusterConfig::mini(TopologySpec{"TopH"}), test::only_core0(R"(
      li t0, 0
      li t1, 256
      li t5, 0x20000
    loop:
      slli t2, t0, 2
      add t2, t2, t5
      sw t0, 0(t2)
      addi t0, t0, 1
      blt t0, t1, loop
      li t0, 0
    check:
      slli t2, t0, 2
      add t2, t2, t5
      lw t3, 0(t2)
      addi t0, t0, 1
      blt t0, t1, check
      li t1, 0xC0000000
      sw zero, 0(t1)
    done: j done
  )"));
  EXPECT_EQ(drc::race_count(), 0u);
}
#endif  // MEMPOOL_DRC

}  // namespace
}  // namespace mempool
