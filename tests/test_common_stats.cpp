#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/report.hpp"
#include "common/stats.hpp"

namespace mempool {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MeanMinMax) {
  RunningStat s;
  for (double v : {3.0, 1.0, 4.0, 1.0, 5.0}) s.add(v);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 14.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 14.0);
}

TEST(RunningStat, VarianceMatchesTwoPass) {
  RunningStat s;
  const double vals[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  double mean = 0;
  for (double v : vals) mean += v;
  mean /= 8;
  double var = 0;
  for (double v : vals) var += (v - mean) * (v - mean);
  var /= 7;  // sample variance
  for (double v : vals) s.add(v);
  EXPECT_NEAR(s.variance(), var, 1e-12);
}

TEST(RunningStat, Reset) {
  RunningStat s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(1.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(100.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
}

TEST(Histogram, NegativeClampsToZeroBucket) {
  Histogram h(1.0, 4);
  h.add(-3.0);
  EXPECT_EQ(h.buckets()[0], 1u);
}

TEST(Histogram, QuantileMedianOfUniform) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.95), 95.0, 1.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(Histogram, BadConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 10), CheckError);
  EXPECT_THROW(Histogram(1.0, 0), CheckError);
}

TEST(Table, AlignedOutputContainsCells) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "2345"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2345"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

}  // namespace
}  // namespace mempool
