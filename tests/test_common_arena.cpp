// Arena (common/arena.hpp): bump-allocation alignment and chunk growth,
// reverse-order destructor registry, oversized allocations, and the
// PinnedVector fixed-capacity container for non-movable types.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/arena.hpp"
#include "common/check.hpp"

namespace mempool {
namespace {

TEST(Arena, AllocationsAreAlignedAndMonotonicWithinAChunk) {
  Arena a(4096);
  void* p1 = a.allocate(3, 1);
  void* p2 = a.allocate(8, 8);
  void* p3 = a.allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p2) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p3) % 64, 0u);
  // Same chunk (small allocations), so addresses increase monotonically —
  // the property the evaluate scan's layout depends on.
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_EQ(a.chunk_count(), 1u);
  EXPECT_EQ(a.allocation_count(), 3u);
  EXPECT_EQ(a.bytes_used(), 3u + 8u + 64u);
}

TEST(Arena, GrowsByChunksAndHonoursOversizedRequests) {
  Arena a(1024);
  for (int i = 0; i < 100; ++i) a.allocate(64, 8);  // 6400B > one chunk
  EXPECT_GE(a.chunk_count(), 2u);
  // A request larger than the chunk size gets its own chunk.
  void* big = a.allocate(10000, 64);
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big) % 64, 0u);
  // Subsequent small allocations still succeed.
  EXPECT_NE(a.allocate(16, 8), nullptr);
}

TEST(Arena, RejectsAlignmentAboveOneCacheLine) {
  Arena a;
  EXPECT_THROW(a.allocate(8, 128), CheckError);
  EXPECT_THROW(a.allocate(8, 3), CheckError);  // non-pow2
}

struct DtorOrder {
  explicit DtorOrder(int id, std::vector<int>* log) : id_(id), log_(log) {}
  ~DtorOrder() { log_->push_back(id_); }
  int id_;
  std::vector<int>* log_;
};

TEST(Arena, DestructorsRunInReverseConstructionOrder) {
  std::vector<int> log;
  {
    Arena a;
    a.make<DtorOrder>(1, &log);
    a.make<DtorOrder>(2, &log);
    a.make<DtorOrder>(3, &log);
    EXPECT_TRUE(log.empty());
  }
  EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
}

TEST(Arena, MakeConstructsUsableObjects) {
  Arena a;
  auto* v = a.make<std::vector<int>>(16, 7);
  ASSERT_EQ(v->size(), 16u);
  EXPECT_EQ((*v)[15], 7);
  int* arr = a.make_array<int>(100);
  for (int i = 0; i < 100; ++i) arr[i] = i;
  EXPECT_EQ(arr[99], 99);
}

// A deliberately non-movable type, like the engine components PinnedVector
// exists to hold.
struct Pinned {
  explicit Pinned(int v) : value(v), self(this) {}
  Pinned(const Pinned&) = delete;
  Pinned& operator=(const Pinned&) = delete;
  int value;
  Pinned* self;  // would dangle if the element ever moved
};

TEST(PinnedVector, EmplacesNonMovableTypesAtStableAddresses) {
  PinnedVector<Pinned> pv;
  pv.reserve_exact(8);
  std::vector<Pinned*> addrs;
  for (int i = 0; i < 8; ++i) addrs.push_back(&pv.emplace_back(i));
  ASSERT_EQ(pv.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(pv[static_cast<std::size_t>(i)].value, i);
    EXPECT_EQ(&pv[static_cast<std::size_t>(i)], addrs[static_cast<std::size_t>(i)]);
    EXPECT_EQ(pv[static_cast<std::size_t>(i)].self, addrs[static_cast<std::size_t>(i)]);
  }
  // Elements are contiguous, unlike a deque.
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(addrs[static_cast<std::size_t>(i)],
              addrs[static_cast<std::size_t>(i - 1)] + 1);
  }
}

TEST(PinnedVector, OverflowAndDoubleReserveAreErrors) {
  PinnedVector<int> pv;
  pv.reserve_exact(2);
  pv.emplace_back(1);
  pv.emplace_back(2);
  EXPECT_THROW(pv.emplace_back(3), CheckError);
  EXPECT_THROW(pv.reserve_exact(4), CheckError);
}

TEST(PinnedVector, ArenaBackedStorageComesFromTheArena) {
  Arena a(1u << 16);
  const std::size_t before = a.bytes_used();
  PinnedVector<Pinned> pv;
  pv.reserve_exact(4, &a);
  EXPECT_GT(a.bytes_used(), before);
  pv.emplace_back(42);
  EXPECT_EQ(pv[0].value, 42);
  // pv destroyed before a: element dtors run, storage reclaimed by the arena.
}

TEST(PinnedVector, DestroysElementsInReverseOrder) {
  std::vector<int> log;
  {
    PinnedVector<DtorOrder> pv;
    pv.reserve_exact(3);
    pv.emplace_back(1, &log);
    pv.emplace_back(2, &log);
    pv.emplace_back(3, &log);
  }
  EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
}

}  // namespace
}  // namespace mempool
