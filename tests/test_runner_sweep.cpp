// SweepSpec expansion and the runner's determinism contract: the same grid
// and seeds must produce bit-identical TrafficPoint vectors at 1, 4, and 8
// worker threads, and must equal the serial single-point reference.

#include <gtest/gtest.h>

#include "runner/runner.hpp"
#include "runner/sweep.hpp"
#include "traffic/experiment.hpp"

using namespace mempool;
using namespace mempool::runner;

namespace {

/// Small but non-trivial grid on the 64-core mini cluster: 2 topologies x
/// 2 localities x 3 loads x 2 seeds = 24 points, each cheap enough for CI.
SweepSpec test_spec() {
  SweepSpec spec;
  spec.base.cluster = ClusterConfig::mini(Topology::kTopH, true);
  spec.base.warmup_cycles = 100;
  spec.base.measure_cycles = 400;
  spec.base.drain_cycles = 200;
  spec.topologies = {Topology::kTop1, Topology::kTopH};
  spec.p_locals = {0.0, 0.5};
  spec.lambdas = {0.05, 0.15, 0.30};
  spec.seeds = {1, 42};
  spec.paper_cluster = false;  // stay on the mini cluster
  return spec;
}

}  // namespace

TEST(SweepSpec, NumPointsIsTheAxisProduct) {
  EXPECT_EQ(test_spec().num_points(), 2u * 2u * 3u * 2u);

  SweepSpec empty;
  EXPECT_EQ(empty.num_points(), 1u);  // every axis defaults to the base value
  ASSERT_EQ(empty.expand().size(), 1u);
}

TEST(SweepSpec, ExpandIsRowMajorWithSeedInnermost) {
  const SweepSpec spec = test_spec();
  const auto cfgs = spec.expand();
  ASSERT_EQ(cfgs.size(), spec.num_points());

  // i = ((t * |p| + p) * |l| + l) * |s| + s
  std::size_t i = 0;
  for (const TopologySpec& topo : spec.topologies) {
    for (double pl : spec.p_locals) {
      for (double lambda : spec.lambdas) {
        for (uint64_t seed : spec.seeds) {
          EXPECT_EQ(cfgs[i].cluster.topology, topo) << "point " << i;
          EXPECT_DOUBLE_EQ(cfgs[i].p_local_seq, pl) << "point " << i;
          EXPECT_DOUBLE_EQ(cfgs[i].lambda, lambda) << "point " << i;
          EXPECT_EQ(cfgs[i].seed, seed) << "point " << i;
          ++i;
        }
      }
    }
  }
}

TEST(SweepSpec, EmptyAxesInheritTheBaseConfig) {
  SweepSpec spec;
  spec.base.cluster = ClusterConfig::mini(Topology::kTop4, false);
  spec.base.lambda = 0.27;
  spec.base.p_local_seq = 0.13;
  spec.base.seed = 99;
  spec.lambdas = {0.1, 0.2};

  const auto cfgs = spec.expand();
  ASSERT_EQ(cfgs.size(), 2u);
  for (const auto& c : cfgs) {
    EXPECT_EQ(c.cluster.topology, Topology::kTop4);
    EXPECT_DOUBLE_EQ(c.p_local_seq, 0.13);
    EXPECT_EQ(c.seed, 99u);
  }
  EXPECT_DOUBLE_EQ(cfgs[0].lambda, 0.1);
  EXPECT_DOUBLE_EQ(cfgs[1].lambda, 0.2);
}

TEST(SweepSpec, PaperClusterRebuildsPerTopology) {
  SweepSpec spec;
  spec.base.cluster = ClusterConfig::paper(Topology::kTopH, true);
  spec.topologies = {Topology::kTop1, Topology::kTopX};
  const auto cfgs = spec.expand();
  ASSERT_EQ(cfgs.size(), 2u);
  EXPECT_EQ(cfgs[0].cluster.topology, Topology::kTop1);
  EXPECT_TRUE(cfgs[0].cluster.scrambling);  // inherited from base
  EXPECT_EQ(cfgs[1].cluster.topology, Topology::kTopX);
}

TEST(SweepSpec, PointLabelNamesTheAxes) {
  const SweepSpec spec = test_spec();
  EXPECT_EQ(spec.point_label(0), "Top1 λ=0.05 p=0 seed=1");
  EXPECT_EQ(spec.point_label(spec.num_points() - 1),
            "TopH λ=0.3 p=0.5 seed=42");
}

TEST(Runner, BitIdenticalResultsAcrossThreadCounts) {
  const SweepSpec spec = test_spec();

  RunnerOptions o1;  o1.threads = 1;
  RunnerOptions o4;  o4.threads = 4;
  RunnerOptions o8;  o8.threads = 8;
  const SweepResult r1 = run_sweep(spec, o1);
  const SweepResult r4 = run_sweep(spec, o4);
  const SweepResult r8 = run_sweep(spec, o8);

  ASSERT_EQ(r1.points.size(), spec.num_points());
  ASSERT_EQ(r4.points.size(), spec.num_points());
  ASSERT_EQ(r8.points.size(), spec.num_points());
  EXPECT_EQ(r1.threads, 1u);
  EXPECT_EQ(r4.threads, 4u);
  EXPECT_EQ(r8.threads, 8u);

  for (std::size_t i = 0; i < spec.num_points(); ++i) {
    // operator== is exact (bit-wise on the doubles) — scheduling must not
    // leak into the physics.
    EXPECT_EQ(r1.points[i], r4.points[i]) << spec.point_label(i);
    EXPECT_EQ(r1.points[i], r8.points[i]) << spec.point_label(i);
  }
}

TEST(Runner, ParallelPathMatchesSerialReference) {
  const SweepSpec spec = test_spec();
  RunnerOptions opts;
  opts.threads = 4;
  const SweepResult par = run_sweep(spec, opts);

  const auto cfgs = spec.expand();
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(par.points[i], run_traffic_point(cfgs[i]))
        << spec.point_label(i);
  }
}

TEST(Runner, SeedAxisActuallyChangesTheRealization) {
  SweepSpec spec = test_spec();
  spec.topologies = {Topology::kTopH};
  spec.p_locals = {0.0};
  spec.lambdas = {0.15};
  spec.seeds = {1, 2};
  RunnerOptions opts;
  opts.threads = 2;
  const SweepResult r = run_sweep(spec, opts);
  ASSERT_EQ(r.points.size(), 2u);
  EXPECT_NE(r.points[0], r.points[1]);
  // ... but only the realization, not the physics: rates stay close.
  EXPECT_NEAR(r.points[0].accepted, r.points[1].accepted, 0.02);
}

TEST(Runner, RunPointsPreservesInputOrder) {
  std::vector<TrafficExperimentConfig> cfgs;
  for (double l : {0.3, 0.1, 0.2}) {  // deliberately not sorted
    TrafficExperimentConfig c;
    c.cluster = ClusterConfig::mini(Topology::kTopH, true);
    c.lambda = l;
    c.warmup_cycles = 50;
    c.measure_cycles = 200;
    c.drain_cycles = 100;
    cfgs.push_back(c);
  }
  RunnerOptions opts;
  opts.threads = 3;
  const SweepResult r = run_points(cfgs, opts);
  ASSERT_EQ(r.points.size(), 3u);
  EXPECT_DOUBLE_EQ(r.points[0].offered, 0.3);
  EXPECT_DOUBLE_EQ(r.points[1].offered, 0.1);
  EXPECT_DOUBLE_EQ(r.points[2].offered, 0.2);
}
