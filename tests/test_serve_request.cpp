// SimRequest canonicalization: requests that mean the same point must share
// one canonical byte string (and therefore one cache key) regardless of
// member order, whitespace, numeric typing, or spelled-out defaults — and
// requests that differ in any physics-relevant field must not.

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "serve/request.hpp"
#include "traffic/experiment.hpp"

using namespace mempool;
using namespace mempool::serve;

namespace {

SimRequest parse(const std::string& text) {
  return SimRequest::from_json(Json::parse(text));
}

/// A fast 64-core point for the run_point comparison.
TrafficExperimentConfig mini_config() {
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::mini(Topology::kTopH, true);
  cfg.lambda = 0.1;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 100;
  cfg.seed = 7;
  return cfg;
}

}  // namespace

TEST(SimRequest, MemberOrderAndWhitespaceDoNotChangeTheKey) {
  const SimRequest a = parse(R"({"topology": "TopH", "lambda": 0.2, "seed": 3})");
  const SimRequest b = parse(
      "{\n  \"seed\": 3,\n  \"topology\": \"TopH\",\n  \"lambda\": 0.2\n}");
  EXPECT_EQ(a.canonical(), b.canonical());
  EXPECT_EQ(a.key(), b.key());
  EXPECT_EQ(a, b);
}

TEST(SimRequest, ExplicitDefaultsHashLikeOmittedOnes) {
  const SimRequest implicit = parse(R"({"topology": "TopH"})");
  const SimRequest spelled = parse(R"({
    "topology": {"name": "TopH", "params": {}},
    "memory": "tcdm",
    "scrambling": true,
    "num_tiles": 64, "cores_per_tile": 4, "banks_per_tile": 16,
    "bank_bytes": 1024, "seq_region_bytes": 4096, "num_groups": 4,
    "lambda": 0.1, "p_local": 0.0, "seed": 1,
    "engine": "active", "sim_threads": 1,
    "warmup_cycles": 1000, "measure_cycles": 4000, "drain_cycles": 2000})");
  EXPECT_EQ(implicit.key(), spelled.key());
}

TEST(SimRequest, NumericTypingIsNormalized) {
  // 0 (int) and 0.0 (double) mean the same probability; 1 and 1.0 the same λ.
  const SimRequest a = parse(R"({"lambda": 1, "p_local": 0})");
  const SimRequest b = parse(R"({"lambda": 1.0, "p_local": 0.0})");
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(SimRequest, SimThreadsIsNormalizedForSequentialEngines) {
  // sim_threads cannot influence the active/dense engines, so it must not
  // split the cache key for them.
  const SimRequest one = parse(R"({"engine": "active", "sim_threads": 1})");
  const SimRequest four = parse(R"({"engine": "active", "sim_threads": 4})");
  EXPECT_EQ(one.key(), four.key());
}

TEST(SimRequest, PhysicsFieldsChangeTheKey) {
  const SimRequest base = parse(R"({"topology": "TopH"})");
  const char* variants[] = {
      R"({"topology": "TopH", "seed": 2})",
      R"({"topology": "TopH", "engine": "dense"})",
      R"({"topology": "TopH", "memory": "tcdm+l2"})",
      R"({"topology": "TopH", "lambda": 0.2})",
      R"({"topology": "TopH", "p_local": 0.5})",
      R"({"topology": "TopH", "scrambling": false})",
      R"({"topology": "Top1"})",
      R"({"topology": "TopH", "num_tiles": 16})",
      R"({"topology": "TopH", "measure_cycles": 100})",
  };
  for (const char* text : variants) {
    EXPECT_NE(base.key(), parse(text).key()) << text;
  }
}

TEST(SimRequest, PluginParamsAreSortedIntoTheCanonicalForm) {
  const SimRequest a = parse(
      R"({"memory": {"name": "tcdm+l2",
                     "params": {"l2_latency": 8, "l2_bytes": 65536}}})");
  const SimRequest b = parse(
      R"({"memory": {"name": "tcdm+l2",
                     "params": {"l2_bytes": 65536, "l2_latency": 8}}})");
  EXPECT_EQ(a.canonical(), b.canonical());
  // ... and the params are part of the key.
  EXPECT_NE(a.key(), parse(R"({"memory": "tcdm+l2"})").key());
}

TEST(SimRequest, UnknownMembersAreRejectedNamingTheSchema) {
  try {
    parse(R"({"lamda": 0.2})");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("lamda"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("lambda"), std::string::npos);
  }
}

TEST(SimRequest, UnknownPluginAndEngineNamesListTheAlternatives) {
  try {
    parse(R"({"topology": "TopZ"})");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("TopZ"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("TopH"), std::string::npos);
  }
  EXPECT_THROW(parse(R"({"memory": "warp-drive"})"), CheckError);
  try {
    parse(R"({"engine": "quantum"})");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("active"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("sharded"), std::string::npos);
  }
}

TEST(SimRequest, JsonRoundTripIsExact) {
  const SimRequest req = SimRequest::from_config(mini_config());
  const SimRequest again = SimRequest::from_json(req.to_json());
  EXPECT_EQ(req.canonical(), again.canonical());
  EXPECT_EQ(req.key(), again.key());
}

TEST(SimRequest, KeyIsSixteenLowercaseHexDigits) {
  const std::string key = SimRequest::from_config(mini_config()).key();
  ASSERT_EQ(key.size(), 16u);
  for (const char c : key) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << key;
  }
}

TEST(SimResult, JsonRoundTripIsBitExact) {
  SimResult r;
  r.request_key = "00ff00ff00ff00ff";
  r.point.offered = 0.3;
  r.point.generated = 0.299871;
  r.point.accepted = 0.25000000000000011;  // needs full double round-trip
  r.point.avg_latency = 17.25;
  r.point.p95_latency = 40;
  r.point.max_latency = 93;
  r.point.completed = 12345;
  EXPECT_EQ(SimResult::from_json(r.to_json()), r);
}

TEST(RunPoint, MatchesRunTrafficPointBitForBit) {
  const TrafficExperimentConfig cfg = mini_config();
  const SimRequest req = SimRequest::from_config(cfg);
  const SimResult served = run_point(req);
  EXPECT_EQ(served.request_key, req.key());
  EXPECT_EQ(served.point, run_traffic_point(cfg));
}

TEST(RunPoint, InvalidRequestsThrowCheckError) {
  TrafficExperimentConfig bad = mini_config();
  bad.lambda = -0.5;
  EXPECT_THROW(run_point(SimRequest::from_config(bad)), CheckError);

  bad = mini_config();
  bad.p_local_seq = 1.5;
  EXPECT_THROW(run_point(SimRequest::from_config(bad)), CheckError);

  bad = mini_config();
  bad.measure_cycles = 0;
  EXPECT_THROW(run_point(SimRequest::from_config(bad)), CheckError);

  bad = mini_config();
  bad.cluster.num_tiles = 3;  // not a power of two
  EXPECT_THROW(run_point(SimRequest::from_config(bad)), CheckError);
}
