#include <gtest/gtest.h>

#include <type_traits>

#include "sim/component.hpp"
#include "sim/elastic_buffer.hpp"
#include "sim/engine.hpp"
#include "sim/packet.hpp"

namespace mempool {
namespace {

// Regression (would compile before the fix): ElasticBuffer used to default
// its move constructor/assignment while the engine's commit list, BufferSink
// adapters, and the wake plumbing hold raw pointers to registered buffers —
// a post-registration move (e.g. a vector reallocation) left the engine
// committing a moved-from shell. The buffer is now pinned; owners use deque
// or reserve-before-emplace containers.
static_assert(!std::is_move_constructible_v<ElasticBuffer<int>>,
              "ElasticBuffer must be pinned: raw pointers are registered");
static_assert(!std::is_move_assignable_v<ElasticBuffer<int>>,
              "ElasticBuffer must be pinned: raw pointers are registered");
static_assert(!std::is_copy_constructible_v<ElasticBuffer<Packet>>);
static_assert(!std::is_copy_assignable_v<ElasticBuffer<Packet>>);

TEST(ElasticBuffer, CombinationalPushIsVisibleSameCycle) {
  ElasticBuffer<int> b(BufferMode::kCombinational, 2);
  EXPECT_TRUE(b.empty());
  b.push(42);
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b.front(), 42);
  EXPECT_EQ(b.pop(), 42);
  EXPECT_TRUE(b.empty());
}

TEST(ElasticBuffer, RegisteredPushVisibleOnlyAfterCommit) {
  ElasticBuffer<int> b(BufferMode::kRegistered, 2);
  b.push(7);
  EXPECT_TRUE(b.empty()) << "staged item must not be visible pre-commit";
  EXPECT_EQ(b.size(), 1u) << "but it occupies capacity";
  b.commit();
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b.pop(), 7);
}

TEST(ElasticBuffer, CapacityBackpressure) {
  ElasticBuffer<int> b(BufferMode::kCombinational, 2);
  EXPECT_TRUE(b.can_accept());
  b.push(1);
  EXPECT_TRUE(b.can_accept());
  b.push(2);
  EXPECT_FALSE(b.can_accept());
  EXPECT_THROW(b.push(3), CheckError);
  b.pop();
  EXPECT_TRUE(b.can_accept());
}

TEST(ElasticBuffer, RegisteredCountsStagedTowardCapacity) {
  ElasticBuffer<int> b(BufferMode::kRegistered, 2);
  b.push(1);
  b.commit();
  b.push(2);                      // staged
  EXPECT_FALSE(b.can_accept());   // 1 committed + 1 staged = full
  b.commit();
  EXPECT_FALSE(b.can_accept());
  b.pop();
  EXPECT_TRUE(b.can_accept());
}

TEST(ElasticBuffer, RegisteredSecondPushSameCycleIsError) {
  ElasticBuffer<int> b(BufferMode::kRegistered, 4);
  b.push(1);
  EXPECT_THROW(b.push(2), CheckError);
}

TEST(ElasticBuffer, FifoOrder) {
  ElasticBuffer<int> b(BufferMode::kCombinational, 8);
  for (int i = 0; i < 5; ++i) b.push(i);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(b.pop(), i);
}

TEST(ElasticBuffer, UnboundedCapacityZero) {
  ElasticBuffer<int> b(BufferMode::kCombinational, 0);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(b.can_accept());
    b.push(i);
  }
  EXPECT_EQ(b.size(), 10000u);
}

TEST(ElasticBuffer, UnboundedGrowthIsAmortizedDoubling) {
  // The unbounded fallback must not touch the allocator per push burst: the
  // contiguous ring doubles, so N pushes cost O(log N) growth events — and a
  // drain-and-refill burst of the same depth costs zero.
  ElasticBuffer<int> b(BufferMode::kCombinational, 0);
  EXPECT_EQ(b.storage_reallocs(), 0u);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) b.push(i);
  uint64_t expected = 0;
  for (uint32_t cap = ElasticBuffer<int>::kOverflowInitial; cap < kN; cap <<= 1)
    ++expected;
  EXPECT_EQ(b.storage_reallocs(), expected);  // exactly log2(N/initial) grows
  for (int i = 0; i < kN; ++i) ASSERT_EQ(b.pop(), i);
  // Capacity is retained across a full drain: the next burst is free.
  for (int i = 0; i < kN; ++i) b.push(i);
  EXPECT_EQ(b.storage_reallocs(), expected);
  for (int i = 0; i < kN; ++i) ASSERT_EQ(b.pop(), i);
}

TEST(ElasticBuffer, BoundedDeepBufferNeverReallocates) {
  // Deeper-than-inline but bounded: the ring is sized once at construction.
  ElasticBuffer<int> b(BufferMode::kCombinational, 37);
  for (int round = 0; round < 50; ++round) {
    int pushed = 0;
    while (b.can_accept()) b.push(pushed++);
    EXPECT_EQ(pushed, 37);
    for (int i = 0; i < pushed; ++i) ASSERT_EQ(b.pop(), i);
  }
  EXPECT_EQ(b.storage_reallocs(), 0u);
}

TEST(ElasticBuffer, ArenaBackedOverflowStorage) {
  Arena arena;
  const std::size_t before = arena.bytes_used();
  ElasticBuffer<int> b(BufferMode::kCombinational, 64, &arena);
  EXPECT_GT(arena.bytes_used(), before) << "deep ring storage from the arena";
  for (int i = 0; i < 63; ++i) b.push(i);
  for (int i = 0; i < 63; ++i) ASSERT_EQ(b.pop(), i);
  EXPECT_EQ(b.storage_reallocs(), 0u);
}

TEST(ElasticBuffer, CombinationalPushWakesConsumer) {
  ElasticBuffer<int> b(BufferMode::kCombinational, 2);
  Wakeable consumer;
  consumer.sleep();
  b.set_consumer(&consumer);
  b.push(1);
  EXPECT_TRUE(consumer.awake()) << "visible item must wake the consumer";
}

TEST(ElasticBuffer, RegisteredPushWakesConsumerOnlyAtCommit) {
  ElasticBuffer<int> b(BufferMode::kRegistered, 2);
  Wakeable consumer;
  consumer.sleep();
  b.set_consumer(&consumer);
  uint64_t word = 0;
  uint64_t pending = 0;
  b.bind_commit_slot(&word, 0, &pending);
  b.push(7);
  EXPECT_FALSE(consumer.awake()) << "staged item is not visible yet";
  EXPECT_TRUE(b.commit_dirty()) << "staged push marks its dirty bit";
  EXPECT_EQ(pending, 1u) << "and bumps the bound pending counter once";
  b.commit();
  EXPECT_TRUE(consumer.awake()) << "commit makes the item visible";
  EXPECT_EQ(b.pop(), 7);
}

TEST(ElasticBuffer, SustainedFullThroughputAcrossRegisterBoundary) {
  // Capacity-2 registered buffer must sustain one item/cycle: producer pushes
  // before the consumer pops within a cycle (the simulator's request-path
  // evaluation order), like an RTL skid buffer.
  ElasticBuffer<int> b(BufferMode::kRegistered, 2);
  int produced = 0, consumed = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    if (b.can_accept()) {
      b.push(produced++);
    }
    if (!b.empty()) {
      EXPECT_EQ(b.pop(), consumed++);
    }
    b.commit();
  }
  // After warmup, exactly one item per cycle.
  EXPECT_GE(consumed, 98);
}

}  // namespace
}  // namespace mempool
