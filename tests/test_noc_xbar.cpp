#include <gtest/gtest.h>

#include <vector>

#include "noc/xbar.hpp"
#include "sim/engine.hpp"

namespace mempool {
namespace {

/// Terminal sink collecting packets with optional capacity limiting.
class CollectSink final : public PacketSink {
 public:
  explicit CollectSink(std::size_t capacity = SIZE_MAX) : cap_(capacity) {}
  bool can_accept() const override { return got.size() < cap_; }
  void push(const Packet& p) override { got.push_back(p); }
  std::vector<Packet> got;

 private:
  std::size_t cap_;
};

Packet mk(uint16_t src, uint16_t dst_bank) {
  Packet p;
  p.src = src;
  p.dst_bank = dst_bank;
  return p;
}

RouteFn by_bank() {
  return [](const Packet& p) { return static_cast<unsigned>(p.dst_bank); };
}

TEST(XbarSwitch, WidePortCountsBeyondOneMaskWord) {
  // 96 inputs / 80 outputs span two occupancy/request mask words; every
  // packet must still be routed and round-robin-granted correctly.
  const std::size_t n_in = 96, n_out = 80;
  XbarSwitch sw("wide", n_in, BufferMode::kCombinational, n_out, by_bank());
  std::vector<CollectSink> sinks(n_out);
  for (std::size_t o = 0; o < n_out; ++o) sw.connect_output(o, &sinks[o]);
  for (std::size_t i = 0; i < n_in; ++i) {
    sw.input(i)->push(mk(static_cast<uint16_t>(i),
                         static_cast<uint16_t>(i % n_out)));
  }
  // 80 distinct outputs get 1 packet each in the first cycle; the 16 doubly
  // requested ones (i and i+80 share output i%80) need a second cycle.
  sw.evaluate(0);
  sw.evaluate(1);
  std::size_t total = 0;
  for (std::size_t o = 0; o < n_out; ++o) {
    for (const Packet& p : sinks[o].got) {
      EXPECT_EQ(p.src % n_out, o);
      ++total;
    }
  }
  EXPECT_EQ(total, n_in);
  EXPECT_TRUE(sw.idle());
}

TEST(XbarSwitch, RoutesToCorrectOutput) {
  XbarSwitch sw("sw", 2, BufferMode::kCombinational, 3, by_bank());
  CollectSink s0, s1, s2;
  sw.connect_output(0, &s0);
  sw.connect_output(1, &s1);
  sw.connect_output(2, &s2);
  sw.input(0)->push(mk(0, 2));
  sw.input(1)->push(mk(1, 0));
  sw.evaluate(0);
  EXPECT_EQ(s0.got.size(), 1u);
  EXPECT_TRUE(s1.got.empty());
  EXPECT_EQ(s2.got.size(), 1u);
  EXPECT_EQ(s0.got[0].src, 1);
  EXPECT_EQ(s2.got[0].src, 0);
}

TEST(XbarSwitch, OneGrantPerOutputPerCycle) {
  XbarSwitch sw("sw", 4, BufferMode::kCombinational, 1, by_bank());
  CollectSink out;
  sw.connect_output(0, &out);
  for (uint16_t i = 0; i < 4; ++i) sw.input(i)->push(mk(i, 0));
  sw.evaluate(0);
  EXPECT_EQ(out.got.size(), 1u);
  sw.evaluate(1);
  EXPECT_EQ(out.got.size(), 2u);
  sw.evaluate(2);
  sw.evaluate(3);
  EXPECT_EQ(out.got.size(), 4u);
  EXPECT_TRUE(sw.idle());
}

TEST(XbarSwitch, RoundRobinIsFair) {
  XbarSwitch sw("sw", 3, BufferMode::kCombinational, 1, by_bank(), 64);
  CollectSink out;
  sw.connect_output(0, &out);
  // Keep all inputs continuously backlogged.
  for (int cycle = 0; cycle < 30; ++cycle) {
    for (uint16_t i = 0; i < 3; ++i) {
      if (sw.input(i)->can_accept()) sw.input(i)->push(mk(i, 0));
    }
    sw.evaluate(cycle);
  }
  int count[3] = {};
  for (const auto& p : out.got) ++count[p.src];
  EXPECT_EQ(out.got.size(), 30u);
  for (int c : count) EXPECT_EQ(c, 10);
}

TEST(XbarSwitch, BackpressureHoldsPacketNoLoss) {
  XbarSwitch sw("sw", 1, BufferMode::kCombinational, 1, by_bank());
  CollectSink out(/*capacity=*/1);
  sw.connect_output(0, &out);
  sw.input(0)->push(mk(0, 0));
  sw.input(0)->push(mk(1, 0));
  sw.evaluate(0);
  sw.evaluate(1);  // output full: second packet must wait
  EXPECT_EQ(out.got.size(), 1u);
  EXPECT_FALSE(sw.idle());
  out.got.clear();  // free capacity
  sw.evaluate(2);
  EXPECT_EQ(out.got.size(), 1u);
  EXPECT_EQ(out.got[0].src, 1);
  EXPECT_TRUE(sw.idle());
}

TEST(XbarSwitch, RegisteredInputAddsOneCycle) {
  Engine engine;
  XbarSwitch sw("sw", 1, BufferMode::kRegistered, 1, by_bank());
  sw.register_clocked(engine);
  CollectSink out;
  sw.connect_output(0, &out);
  sw.input(0)->push(mk(0, 0));
  sw.evaluate(0);
  EXPECT_TRUE(out.got.empty()) << "registered input: not visible this cycle";
  // Engine commit phase.
  engine.step();  // no components registered; commits the buffer
  sw.evaluate(1);
  EXPECT_EQ(out.got.size(), 1u);
}

TEST(XbarSwitch, TraversalAndBlockedCounters) {
  XbarSwitch sw("sw", 2, BufferMode::kCombinational, 1, by_bank());
  CollectSink out;
  sw.connect_output(0, &out);
  sw.input(0)->push(mk(0, 0));
  sw.input(1)->push(mk(1, 0));
  sw.evaluate(0);
  EXPECT_EQ(sw.traversals(), 1u);
  EXPECT_EQ(sw.blocked(), 1u);  // the arbitration loser
  sw.evaluate(1);
  EXPECT_EQ(sw.traversals(), 2u);
}

TEST(XbarSwitch, RouteOutOfRangeThrows) {
  XbarSwitch sw("sw", 1, BufferMode::kCombinational, 1,
                [](const Packet&) { return 5u; });
  CollectSink out;
  sw.connect_output(0, &out);
  sw.input(0)->push(mk(0, 0));
  EXPECT_THROW(sw.evaluate(0), CheckError);
}

TEST(XbarSwitch, UnconnectedOutputThrows) {
  XbarSwitch sw("sw", 1, BufferMode::kCombinational, 1, by_bank());
  sw.input(0)->push(mk(0, 0));
  EXPECT_THROW(sw.evaluate(0), CheckError);
}

TEST(XbarSwitch, FifoOrderPerInput) {
  XbarSwitch sw("sw", 1, BufferMode::kCombinational, 2, by_bank(), 8);
  CollectSink o0, o1;
  sw.connect_output(0, &o0);
  sw.connect_output(1, &o1);
  // Same input, alternating destinations: head-of-line order must hold.
  sw.input(0)->push(mk(0, 0));
  sw.input(0)->push(mk(1, 1));
  sw.input(0)->push(mk(2, 0));
  sw.evaluate(0);  // only head moves
  EXPECT_EQ(o0.got.size(), 1u);
  EXPECT_TRUE(o1.got.empty());
  sw.evaluate(1);
  EXPECT_EQ(o1.got.size(), 1u);
  sw.evaluate(2);
  EXPECT_EQ(o0.got.size(), 2u);
  EXPECT_EQ(o0.got[1].src, 2);
}

}  // namespace
}  // namespace mempool
