// Physical feasibility model (Sections VI-B/C): geometry, wiring, congestion
// and the paper's qualitative verdicts.

#include <gtest/gtest.h>

#include "physical/feasibility.hpp"

namespace mempool::physical {
namespace {

TEST(Floorplan, TileAreaFractionMatchesPaper) {
  const Floorplan fp;
  // "55 % of the design area is covered by the tiles"
  EXPECT_NEAR(fp.tile_area_fraction(), 0.55, 0.02);
}

TEST(Floorplan, TilesInsideDie) {
  const Floorplan fp;
  for (uint32_t t = 0; t < 64; ++t) {
    const Point p = fp.tile_center(t);
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, 4.6);
    EXPECT_GT(p.y, 0.0);
    EXPECT_LT(p.y, 4.6);
    const Point q = fp.tile_center_grouped(t);
    EXPECT_GT(q.x, 0.0);
    EXPECT_LT(q.x, 4.6);
  }
}

TEST(Floorplan, GroupedLayoutPutsGroupsInQuadrants) {
  const Floorplan fp;
  for (uint32_t g = 0; g < 4; ++g) {
    const Point c = fp.group_center(g);
    for (uint32_t j = 0; j < 16; ++j) {
      const Point p = fp.tile_center_grouped(g * 16 + j);
      EXPECT_LT(std::abs(p.x - c.x), 4.6 / 4 + 1e-9);
      EXPECT_LT(std::abs(p.y - c.y), 4.6 / 4 + 1e-9);
    }
  }
}

TEST(Wires, Top4IsFourTimesTop1) {
  const Floorplan fp;
  const auto w1 = extract_wires(PhysTopology::kTop1, fp);
  const auto w4 = extract_wires(PhysTopology::kTop4, fp);
  EXPECT_EQ(w4.size(), 4 * w1.size());
  EXPECT_NEAR(total_bit_mm(w4), 4 * total_bit_mm(w1), 1e-6);
}

TEST(Wires, ManhattanLength) {
  WireBundle w{{0, 0}, {1.5, 2.0}, 10, WireKind::kTileToHub};
  EXPECT_NEAR(w.manhattan_mm(), 3.5, 1e-12);
  EXPECT_NEAR(w.bit_mm(), 35.0, 1e-12);
}

TEST(Congestion, CenterHotForTop1SpreadForTopH) {
  const FeasibilityParams p;
  const Floorplan fp(p.floorplan);
  CongestionMap m1(4.6, 16), mh(4.6, 16);
  m1.route_all(extract_wires(PhysTopology::kTop1, fp));
  mh.route_all(extract_wires(PhysTopology::kTopH, fp));
  // TopH distributes the wiring: lower spread (coefficient of variation
  // of cell demand) and a lower center-to-total ratio than Top1.
  EXPECT_LT(mh.center_demand() / mh.total(), m1.center_demand() / m1.total());
}

TEST(Congestion, RouteAccountsFullLength) {
  CongestionMap m(4.0, 8);
  m.route({{0.25, 0.25}, {3.75, 0.25}, 100, WireKind::kTileToHub});
  EXPECT_NEAR(m.total(), 3.5 * 100, 3.5 * 100 * 0.02);
}

TEST(Feasibility, PaperVerdicts) {
  const auto reports = analyze_all();
  ASSERT_EQ(reports.size(), 3u);
  const auto& top1 = reports[0];
  const auto& top4 = reports[1];
  const auto& toph = reports[2];
  EXPECT_TRUE(top1.feasible);
  EXPECT_FALSE(top4.feasible) << "Top4 is physically infeasible (Sec. VI-C)";
  EXPECT_TRUE(toph.feasible);
  // "Top4 is four times more congested than Top1".
  EXPECT_NEAR(top4.center_ratio_vs_top1, 4.0, 0.2);
  // TopH's centre is denser than Top1's (the diagonal group pairs cross the
  // die centre — "high cell and wiring density at the center of the design",
  // Sec. VI-C) but stays well below Top4's unroutable 4x.
  EXPECT_GT(toph.center_ratio_vs_top1, 1.0);
  EXPECT_LT(toph.center_ratio_vs_top1, 2.5);
}

TEST(Feasibility, TimingEstimateInPaperRange) {
  const auto reports = analyze_all();
  const auto& toph = reports[2];
  // Paper: 480 MHz worst case, critical path 37 % wire delay.
  EXPECT_NEAR(toph.wire_delay_fraction, 0.37, 0.08);
  EXPECT_GT(toph.fmax_mhz, 350.0);
  EXPECT_LT(toph.fmax_mhz, 700.0);
}

TEST(Feasibility, TopHSpreadsWiring) {
  const auto reports = analyze_all();
  EXPECT_LT(reports[2].spread, reports[0].spread);
}

}  // namespace
}  // namespace mempool::physical
