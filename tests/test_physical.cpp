// Physical feasibility model (Sections VI-B/C): geometry, wiring, congestion
// and the paper's qualitative verdicts — wire extraction dispatched through
// the FabricTopology plugins.

#include <gtest/gtest.h>

#include "noc/fabric.hpp"
#include "physical/feasibility.hpp"

namespace mempool::physical {
namespace {

std::vector<WireBundle> plugin_wires(const std::string& name,
                                     const Floorplan& fp) {
  const mempool::ClusterConfig cfg =
      mempool::ClusterConfig::paper(mempool::TopologySpec{name}, true);
  return mempool::FabricRegistry::get(name).wires(cfg, fp);
}

const FeasibilityReport* find_report(
    const std::vector<FeasibilityReport>& reports, const std::string& name) {
  for (const auto& r : reports) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

TEST(Floorplan, TileAreaFractionMatchesPaper) {
  const Floorplan fp;
  // "55 % of the design area is covered by the tiles"
  EXPECT_NEAR(fp.tile_area_fraction(), 0.55, 0.02);
}

TEST(Floorplan, TilesInsideDie) {
  const Floorplan fp;
  for (uint32_t t = 0; t < 64; ++t) {
    const Point p = fp.tile_center(t);
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, 4.6);
    EXPECT_GT(p.y, 0.0);
    EXPECT_LT(p.y, 4.6);
    const Point q = fp.tile_center_grouped(t);
    EXPECT_GT(q.x, 0.0);
    EXPECT_LT(q.x, 4.6);
  }
}

TEST(Floorplan, GroupedLayoutPutsGroupsInQuadrants) {
  const Floorplan fp;
  for (uint32_t g = 0; g < 4; ++g) {
    const Point c = fp.group_center(g);
    for (uint32_t j = 0; j < 16; ++j) {
      const Point p = fp.tile_center_grouped(g * 16 + j);
      EXPECT_LT(std::abs(p.x - c.x), 4.6 / 4 + 1e-9);
      EXPECT_LT(std::abs(p.y - c.y), 4.6 / 4 + 1e-9);
    }
  }
}

TEST(Floorplan, SixteenGroupGridForTopH2) {
  // The generalized grouped layout: 256 tiles, 16 groups on a 4×4 grid of
  // cells (TopH2's floorplan), every tile inside its group's cell.
  const Floorplan fp(mempool::FabricRegistry::get("TopH2").floorplan_params(
      mempool::ClusterConfig::paper(mempool::TopologySpec{"TopH2"}, true)));
  EXPECT_EQ(fp.group_grid_dim(), 4u);
  const double cell = fp.params().die_mm / 4;
  for (uint32_t g = 0; g < 16; ++g) {
    const Point c = fp.group_center(g);
    for (uint32_t j = 0; j < 16; ++j) {
      const Point p = fp.tile_center_grouped(g * 16 + j);
      EXPECT_LT(std::abs(p.x - c.x), cell / 2 + 1e-9) << "g" << g;
      EXPECT_LT(std::abs(p.y - c.y), cell / 2 + 1e-9) << "g" << g;
    }
  }
}

TEST(Wires, Top4IsFourTimesTop1) {
  const Floorplan fp;
  const auto w1 = plugin_wires("Top1", fp);
  const auto w4 = plugin_wires("Top4", fp);
  EXPECT_EQ(w4.size(), 4 * w1.size());
  EXPECT_NEAR(total_bit_mm(w4), 4 * total_bit_mm(w1), 1e-6);
}

TEST(Wires, Top1IsTheStarBaseline) {
  // Top1's own wiring *is* the monolithic central-hub reference every
  // feasibility verdict is measured against.
  const Floorplan fp;
  const auto w1 = plugin_wires("Top1", fp);
  const auto star = star_wires(fp);
  ASSERT_EQ(w1.size(), star.size());
  EXPECT_NEAR(total_bit_mm(w1), total_bit_mm(star), 1e-9);
}

TEST(Wires, ManhattanLength) {
  WireBundle w{{0, 0}, {1.5, 2.0}, 10, WireKind::kTileToHub};
  EXPECT_NEAR(w.manhattan_mm(), 3.5, 1e-12);
  EXPECT_NEAR(w.bit_mm(), 35.0, 1e-12);
}

TEST(Congestion, CenterHotForTop1SpreadForTopH) {
  const FeasibilityParams p;
  const Floorplan fp(p.floorplan);
  CongestionMap m1(4.6, 16), mh(4.6, 16);
  m1.route_all(plugin_wires("Top1", fp));
  mh.route_all(plugin_wires("TopH", fp));
  // TopH distributes the wiring: lower spread (coefficient of variation
  // of cell demand) and a lower center-to-total ratio than Top1.
  EXPECT_LT(mh.center_demand() / mh.total(), m1.center_demand() / m1.total());
}

TEST(Congestion, RouteAccountsFullLength) {
  CongestionMap m(4.0, 8);
  m.route({{0.25, 0.25}, {3.75, 0.25}, 100, WireKind::kTileToHub});
  EXPECT_NEAR(m.total(), 3.5 * 100, 3.5 * 100 * 0.02);
}

TEST(Feasibility, PaperVerdicts) {
  const auto reports = mempool::analyze_all_topologies();
  // Every physically modeled plugin reports; TopX (no realization) must not.
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(find_report(reports, "TopX"), nullptr);
  const auto* top1 = find_report(reports, "Top1");
  const auto* top4 = find_report(reports, "Top4");
  const auto* toph = find_report(reports, "TopH");
  ASSERT_NE(top1, nullptr);
  ASSERT_NE(top4, nullptr);
  ASSERT_NE(toph, nullptr);
  EXPECT_TRUE(top1->feasible);
  EXPECT_FALSE(top4->feasible) << "Top4 is physically infeasible (Sec. VI-C)";
  EXPECT_TRUE(toph->feasible);
  // "Top4 is four times more congested than Top1".
  EXPECT_NEAR(top4->center_ratio_vs_top1, 4.0, 0.2);
  // TopH's centre is denser than Top1's (the diagonal group pairs cross the
  // die centre — "high cell and wiring density at the center of the design",
  // Sec. VI-C) but stays well below Top4's unroutable 4x.
  EXPECT_GT(toph->center_ratio_vs_top1, 1.0);
  EXPECT_LT(toph->center_ratio_vs_top1, 2.5);
}

TEST(Feasibility, TopH2RoutesOnItsOwnDie) {
  const auto reports = mempool::analyze_all_topologies();
  const auto* toph2 = find_report(reports, "TopH2");
  ASSERT_NE(toph2, nullptr);
  // The two-level hierarchy keeps distributing the wiring: against the
  // monolithic central hub on the same 1024-core die it stays routable.
  EXPECT_TRUE(toph2->feasible);
  EXPECT_LT(toph2->center_ratio_vs_top1, 2.5);
  const auto* top1 = find_report(reports, "Top1");
  ASSERT_NE(top1, nullptr);
  EXPECT_LT(toph2->spread, top1->spread);
}

TEST(Feasibility, TimingEstimateInPaperRange) {
  const auto reports = mempool::analyze_all_topologies();
  const auto* toph = find_report(reports, "TopH");
  ASSERT_NE(toph, nullptr);
  // Paper: 480 MHz worst case, critical path 37 % wire delay.
  EXPECT_NEAR(toph->wire_delay_fraction, 0.37, 0.08);
  EXPECT_GT(toph->fmax_mhz, 350.0);
  EXPECT_LT(toph->fmax_mhz, 700.0);
}

TEST(Feasibility, TopHSpreadsWiring) {
  const auto reports = mempool::analyze_all_topologies();
  const auto* top1 = find_report(reports, "Top1");
  const auto* toph = find_report(reports, "TopH");
  ASSERT_NE(top1, nullptr);
  ASSERT_NE(toph, nullptr);
  EXPECT_LT(toph->spread, top1->spread);
}

}  // namespace
}  // namespace mempool::physical
