// Shard-contiguous arena layout (common/arena.hpp + Cluster construction):
// every component a shard evaluates — tiles with their crossbars and banks,
// the networks the fabric plugin adds, bridges, memory engines — and all
// their ElasticBuffer ring storage is carved out of that shard's arena.
// These tests pin the structural properties: one arena per fabric shard,
// every arena non-trivially populated, steady-state simulation free of
// per-cycle heap traffic, and the layout invisible to simulated behavior.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/system.hpp"
#include "mem/imem.hpp"
#include "noc/fabric.hpp"
#include "noc/monitor.hpp"
#include "sim/engine.hpp"
#include "traffic/experiment.hpp"
#include "traffic/generator.hpp"

namespace mempool {
namespace {

/// A generator-driven cluster, built and ready to step.
struct ArenaTraffic {
  InstrMem imem{4096};
  Engine engine;
  std::unique_ptr<Cluster> cluster;
  LatencyMonitor monitor{100};
  std::vector<std::unique_ptr<TrafficGenerator>> gens;

  explicit ArenaTraffic(const ClusterConfig& cfg, double lambda = 0.15) {
    cluster = std::make_unique<Cluster>(cfg, &imem);
    monitor.set_measure_end(500);
    TrafficConfig tcfg;
    tcfg.lambda = lambda;
    tcfg.seed = 3;
    std::vector<Client*> clients;
    for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
      gens.push_back(std::make_unique<TrafficGenerator>(
          "gen" + std::to_string(c), static_cast<uint16_t>(c),
          static_cast<uint16_t>(c / cfg.cores_per_tile), cfg,
          &cluster->layout(), &engine, tcfg, &monitor));
      clients.push_back(gens.back().get());
    }
    cluster->attach_clients(clients);
    cluster->build(engine);
  }
};

// Every registered topology builds one arena per fabric shard, and every
// shard's arena actually holds that shard's components (a shard whose tiles
// were accidentally heap-allocated would show an empty arena).
class ClusterArenaLayout : public ::testing::TestWithParam<std::string> {};

TEST_P(ClusterArenaLayout, OneNonEmptyArenaPerShard) {
  const ClusterConfig cfg =
      ClusterConfig::mini(TopologySpec{GetParam()}, true);
  ArenaTraffic t(cfg);
  const uint32_t shards = t.cluster->num_shards();
  ASSERT_GE(shards, 1u);
  for (uint32_t s = 0; s < shards; ++s) {
    const Arena& a = t.cluster->shard_arena(s);
    // Each shard holds at least its tiles (crossbars, banks, ring storage).
    EXPECT_GT(a.allocation_count(), 0u) << GetParam() << " shard " << s;
    EXPECT_GT(a.bytes_used(), 0u) << GetParam() << " shard " << s;
    EXPECT_GE(a.bytes_reserved(), a.bytes_used())
        << GetParam() << " shard " << s;
  }
  // The layout is an implementation detail: the cluster must still simulate.
  t.engine.run(200);
  EXPECT_EQ(t.engine.cycle(), 200u);
}

INSTANTIATE_TEST_SUITE_P(Topologies, ClusterArenaLayout,
                         ::testing::ValuesIn(FabricRegistry::names()),
                         [](const auto& tpinfo) { return tpinfo.param; });

// The tcdm+l2 memory system allocates its DMA engines (and their unbounded
// command/completion rings' initial storage) from the group's shard arena,
// growing each arena beyond what the plain tcdm build uses.
TEST(ClusterArenaLayout, MemoryEnginesLandInShardArenas) {
  ClusterConfig plain = ClusterConfig::mini(Topology::kTopH, true);
  ClusterConfig l2 = plain;
  l2.memory = MemorySpec{"tcdm+l2"};
  l2.validate();

  ArenaTraffic a(plain), b(l2);
  ASSERT_EQ(a.cluster->num_shards(), b.cluster->num_shards());
  for (uint32_t s = 0; s < a.cluster->num_shards(); ++s) {
    EXPECT_GT(b.cluster->shard_arena(s).bytes_used(),
              a.cluster->shard_arena(s).bytes_used())
        << "shard " << s << ": DMA engines not arena-resident";
  }
}

// Steady-state stepping must not grow the arenas: construction carves out
// everything up front, and a bounded-traffic run stays inside it.
TEST(ClusterArenaLayout, SteadyStateAllocatesNothingFromArenas) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  ArenaTraffic t(cfg);
  std::vector<std::size_t> before;
  for (uint32_t s = 0; s < t.cluster->num_shards(); ++s) {
    before.push_back(t.cluster->shard_arena(s).allocation_count());
  }
  t.engine.run(500);
  for (uint32_t s = 0; s < t.cluster->num_shards(); ++s) {
    EXPECT_EQ(t.cluster->shard_arena(s).allocation_count(), before[s])
        << "shard " << s << " arena grew while stepping";
  }
}

}  // namespace
}  // namespace mempool
