// ResultCache: LRU semantics of the memory tier, write-through + revival of
// the disk tier, version invalidation, and corrupt-file tolerance. No
// simulations run here — results are fabricated.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "runner/results.hpp"
#include "serve/cache.hpp"

using namespace mempool;
using namespace mempool::serve;

namespace {

SimRequest req(double lambda, uint64_t seed) {
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::mini(Topology::kTopH, true);
  cfg.lambda = lambda;
  cfg.seed = seed;
  return SimRequest::from_config(cfg);
}

SimResult fake_result(const SimRequest& r, double accepted) {
  SimResult res;
  res.request_key = r.key();
  res.point.offered = r.config.lambda;
  res.point.accepted = accepted;
  res.point.completed = 99;
  return res;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = std::filesystem::temp_directory_path() /
                          ("mempool_cache_" + tag + "_" +
                           std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace

TEST(ResultCache, MissThenHit) {
  ResultCache cache(8);
  const SimRequest a = req(0.1, 1);
  EXPECT_FALSE(cache.lookup(a).has_value());
  cache.insert(a, fake_result(a, 0.5));
  const auto hit = cache.lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->request_key, a.key());
  EXPECT_DOUBLE_EQ(hit->point.accepted, 0.5);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, LruEvictsTheLeastRecentlyUsedEntry) {
  ResultCache cache(2);
  const SimRequest a = req(0.1, 1), b = req(0.2, 1), c = req(0.3, 1);
  cache.insert(a, fake_result(a, 1));
  cache.insert(b, fake_result(b, 2));
  ASSERT_TRUE(cache.lookup(a).has_value());  // touch a → b is now LRU
  cache.insert(c, fake_result(c, 3));        // evicts b
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, ReinsertRefreshesInsteadOfGrowing) {
  ResultCache cache(4);
  const SimRequest a = req(0.1, 1);
  cache.insert(a, fake_result(a, 1));
  cache.insert(a, fake_result(a, 2));  // refresh, not duplicate
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.lookup(a)->point.accepted, 2);
}

TEST(ResultCache, DiskTierSurvivesARestart) {
  const std::string dir = fresh_dir("roundtrip");
  const SimRequest a = req(0.1, 1);
  {
    ResultCache cache(4, dir);
    cache.insert(a, fake_result(a, 0.75));
  }
  // "Restart": a fresh cache over the same directory; memory is cold, the
  // disk tier revives the entry (and promotes it back into memory).
  ResultCache cache(4, dir);
  const auto hit = cache.lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->point.accepted, 0.75);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  // Second lookup is a pure memory hit.
  ASSERT_TRUE(cache.lookup(a).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, StaleVersionOnDiskIsIgnored) {
  const std::string dir = fresh_dir("version");
  const SimRequest a = req(0.1, 1);
  {
    ResultCache cache(4, dir);
    cache.insert(a, fake_result(a, 0.75));
  }
  // Rewrite the stored file as if an older engine version had produced it.
  const std::string path = dir + "/" + a.key() + ".json";
  Json doc = runner::read_json_file(path);
  doc.set("version", "mempool-sim-v0");
  runner::write_json_file(path, doc);

  ResultCache cache(4, dir);
  EXPECT_FALSE(cache.lookup(a).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, CorruptDiskFileDegradesToAMiss) {
  const std::string dir = fresh_dir("corrupt");
  const SimRequest a = req(0.1, 1);
  {
    ResultCache cache(4, dir);
    cache.insert(a, fake_result(a, 0.75));
  }
  {
    std::ofstream out(dir + "/" + a.key() + ".json", std::ios::trunc);
    out << "{ this is not json";
  }
  ResultCache cache(4, dir);
  EXPECT_FALSE(cache.lookup(a).has_value());
  EXPECT_GE(cache.stats().disk_errors, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, ZeroByteFileDegradesToAMiss) {
  const std::string dir = fresh_dir("zerobyte");
  const SimRequest a = req(0.1, 1);
  {
    ResultCache cache(4, dir);
    cache.insert(a, fake_result(a, 0.75));
  }
  {
    std::ofstream out(dir + "/" + a.key() + ".json",
                      std::ios::trunc | std::ios::binary);
  }  // 0 bytes: the classic artifact of a crash between create and write
  ResultCache cache(4, dir);
  EXPECT_FALSE(cache.lookup(a).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, TruncatedFilesAtEveryLengthDegradeToMisses) {
  const std::string dir = fresh_dir("truncfuzz");
  const SimRequest a = req(0.1, 1);
  {
    ResultCache cache(4, dir);
    cache.insert(a, fake_result(a, 0.75));
  }
  const std::string path = dir + "/" + a.key() + ".json";
  std::string intact;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    intact = buf.str();
  }
  ASSERT_GT(intact.size(), 16u);
  // A torn write can stop at any byte. Every strict prefix (up to the
  // closing brace) must read as a miss — never a crash, never a partial
  // result.
  for (std::size_t len = 0; len + 2 < intact.size(); ++len) {
    {
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out.write(intact.data(), static_cast<std::streamsize>(len));
    }
    ResultCache cache(4, dir);
    EXPECT_FALSE(cache.lookup(a).has_value())
        << "truncation at byte " << len << " served a result";
  }
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, BitFlippedFilesNeverCrashAndMostlyMiss) {
  const std::string dir = fresh_dir("flipfuzz");
  const SimRequest a = req(0.1, 1);
  const SimResult good = fake_result(a, 0.75);
  {
    ResultCache cache(4, dir);
    cache.insert(a, good);
  }
  const std::string path = dir + "/" + a.key() + ".json";
  std::string intact;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    intact = buf.str();
  }
  // Flip one bit at every offset. The file guards itself with the schema
  // tag, the result version, and an exact echo of the canonical request:
  // corruption anywhere in those (or anywhere that breaks the JSON) is a
  // miss. A flip confined to the result payload digits can survive parsing
  // — the contract under corruption is "miss or a well-formed result,
  // never a crash or a torn read".
  std::size_t misses = 0;
  for (std::size_t off = 0; off < intact.size(); ++off) {
    std::string mutated = intact;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x08);
    {
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    ResultCache cache(4, dir);
    std::optional<SimResult> got;
    EXPECT_NO_THROW(got = cache.lookup(a)) << "flip at byte " << off;
    if (!got.has_value()) {
      ++misses;
    } else {
      EXPECT_EQ(got->request_key, good.request_key)
          << "flip at byte " << off << " forged a foreign result";
    }
    // Whatever the flip did, the cache object must stay fully usable.
    cache.insert(a, good);
    EXPECT_TRUE(cache.lookup(a).has_value());
  }
  // The guarded regions dominate the file, so the vast majority of flips
  // must be detected.
  EXPECT_GT(misses, intact.size() / 2)
      << "corruption detection has regressed";
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, EvictedEntriesReviveFromDisk) {
  const std::string dir = fresh_dir("revive");
  ResultCache cache(1, dir);  // capacity 1: every insert evicts
  const SimRequest a = req(0.1, 1), b = req(0.2, 1);
  cache.insert(a, fake_result(a, 1));
  cache.insert(b, fake_result(b, 2));  // evicts a from memory, not from disk
  const auto hit = cache.lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->point.accepted, 1);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  std::filesystem::remove_all(dir);
}
