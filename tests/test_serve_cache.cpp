// ResultCache: LRU semantics of the memory tier, write-through + revival of
// the disk tier, version invalidation, and corrupt-file tolerance. No
// simulations run here — results are fabricated.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "runner/results.hpp"
#include "serve/cache.hpp"

using namespace mempool;
using namespace mempool::serve;

namespace {

SimRequest req(double lambda, uint64_t seed) {
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::mini(Topology::kTopH, true);
  cfg.lambda = lambda;
  cfg.seed = seed;
  return SimRequest::from_config(cfg);
}

SimResult fake_result(const SimRequest& r, double accepted) {
  SimResult res;
  res.request_key = r.key();
  res.point.offered = r.config.lambda;
  res.point.accepted = accepted;
  res.point.completed = 99;
  return res;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = std::filesystem::temp_directory_path() /
                          ("mempool_cache_" + tag + "_" +
                           std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace

TEST(ResultCache, MissThenHit) {
  ResultCache cache(8);
  const SimRequest a = req(0.1, 1);
  EXPECT_FALSE(cache.lookup(a).has_value());
  cache.insert(a, fake_result(a, 0.5));
  const auto hit = cache.lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->request_key, a.key());
  EXPECT_DOUBLE_EQ(hit->point.accepted, 0.5);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCache, LruEvictsTheLeastRecentlyUsedEntry) {
  ResultCache cache(2);
  const SimRequest a = req(0.1, 1), b = req(0.2, 1), c = req(0.3, 1);
  cache.insert(a, fake_result(a, 1));
  cache.insert(b, fake_result(b, 2));
  ASSERT_TRUE(cache.lookup(a).has_value());  // touch a → b is now LRU
  cache.insert(c, fake_result(c, 3));        // evicts b
  EXPECT_TRUE(cache.lookup(a).has_value());
  EXPECT_FALSE(cache.lookup(b).has_value());
  EXPECT_TRUE(cache.lookup(c).has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, ReinsertRefreshesInsteadOfGrowing) {
  ResultCache cache(4);
  const SimRequest a = req(0.1, 1);
  cache.insert(a, fake_result(a, 1));
  cache.insert(a, fake_result(a, 2));  // refresh, not duplicate
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_DOUBLE_EQ(cache.lookup(a)->point.accepted, 2);
}

TEST(ResultCache, DiskTierSurvivesARestart) {
  const std::string dir = fresh_dir("roundtrip");
  const SimRequest a = req(0.1, 1);
  {
    ResultCache cache(4, dir);
    cache.insert(a, fake_result(a, 0.75));
  }
  // "Restart": a fresh cache over the same directory; memory is cold, the
  // disk tier revives the entry (and promotes it back into memory).
  ResultCache cache(4, dir);
  const auto hit = cache.lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->point.accepted, 0.75);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  // Second lookup is a pure memory hit.
  ASSERT_TRUE(cache.lookup(a).has_value());
  EXPECT_EQ(cache.stats().hits, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, StaleVersionOnDiskIsIgnored) {
  const std::string dir = fresh_dir("version");
  const SimRequest a = req(0.1, 1);
  {
    ResultCache cache(4, dir);
    cache.insert(a, fake_result(a, 0.75));
  }
  // Rewrite the stored file as if an older engine version had produced it.
  const std::string path = dir + "/" + a.key() + ".json";
  Json doc = runner::read_json_file(path);
  doc.set("version", "mempool-sim-v0");
  runner::write_json_file(path, doc);

  ResultCache cache(4, dir);
  EXPECT_FALSE(cache.lookup(a).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, CorruptDiskFileDegradesToAMiss) {
  const std::string dir = fresh_dir("corrupt");
  const SimRequest a = req(0.1, 1);
  {
    ResultCache cache(4, dir);
    cache.insert(a, fake_result(a, 0.75));
  }
  {
    std::ofstream out(dir + "/" + a.key() + ".json", std::ios::trunc);
    out << "{ this is not json";
  }
  ResultCache cache(4, dir);
  EXPECT_FALSE(cache.lookup(a).has_value());
  EXPECT_GE(cache.stats().disk_errors, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ResultCache, EvictedEntriesReviveFromDisk) {
  const std::string dir = fresh_dir("revive");
  ResultCache cache(1, dir);  // capacity 1: every insert evicts
  const SimRequest a = req(0.1, 1), b = req(0.2, 1);
  cache.insert(a, fake_result(a, 1));
  cache.insert(b, fake_result(b, 2));  // evicts a from memory, not from disk
  const auto hit = cache.lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->point.accepted, 1);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  std::filesystem::remove_all(dir);
}
