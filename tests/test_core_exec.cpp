// Instruction-semantics tests: small assembly programs run on a mini TopX
// cluster; core 0 computes a value and exits with it.

#include <gtest/gtest.h>

#include "helpers.hpp"

namespace mempool {
namespace {

uint32_t exec0(const std::string& body) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopX, true);
  auto sys = test::run_text(cfg, test::only_core0(body));
  return sys->core(0).exit_code();
}

std::string exit_with(const std::string& reg) {
  return "li t6, 0xC0000000\n sw " + reg + ", 0(t6)\n";
}

TEST(Exec, ArithmeticBasics) {
  EXPECT_EQ(exec0(R"(
    li a1, 20
    li a2, 22
    add a3, a1, a2
  )" + exit_with("a3")), 42u);
  EXPECT_EQ(exec0(R"(
    li a1, 20
    li a2, 22
    sub a3, a1, a2
  )" + exit_with("a3")), static_cast<uint32_t>(-2));
}

TEST(Exec, LogicOps) {
  EXPECT_EQ(exec0(R"(
    li a1, 0xF0
    li a2, 0xFF
    xor a3, a1, a2
    and a4, a3, a2
    or  a5, a4, a1
  )" + exit_with("a5")), 0xFFu);
}

TEST(Exec, ShiftSemantics) {
  EXPECT_EQ(exec0(R"(
    li a1, 1
    slli a2, a1, 31
    srli a3, a2, 31
  )" + exit_with("a3")), 1u);
  // srai preserves the sign.
  EXPECT_EQ(exec0(R"(
    li a1, -8
    srai a2, a1, 2
  )" + exit_with("a2")), static_cast<uint32_t>(-2));
  // Register shifts use only the low 5 bits.
  EXPECT_EQ(exec0(R"(
    li a1, 1
    li a2, 33
    sll a3, a1, a2
  )" + exit_with("a3")), 2u);
}

TEST(Exec, SetLessThan) {
  EXPECT_EQ(exec0(R"(
    li a1, -1
    li a2, 1
    slt a3, a1, a2      # signed: -1 < 1 -> 1
    sltu a4, a1, a2     # unsigned: 0xFFFFFFFF < 1 -> 0
    slli a3, a3, 1
    or a3, a3, a4
  )" + exit_with("a3")), 2u);
  EXPECT_EQ(exec0(R"(
    li a1, 5
    slti a2, a1, 6
    sltiu a3, a1, 5
    slli a2, a2, 1
    or a2, a2, a3
  )" + exit_with("a2")), 2u);
}

TEST(Exec, LuiAuipc) {
  EXPECT_EQ(exec0("lui a1, 0x12345\n" + exit_with("a1")), 0x12345000u);
  // auipc at a known pc: the guarded prologue is 5 instructions, so the
  // auipc sits at 0x80000014 + body offset; verify pc-relative by
  // subtracting a second auipc.
  EXPECT_EQ(exec0(R"(
    auipc a1, 0
    auipc a2, 0
    sub a3, a2, a1
  )" + exit_with("a3")), 4u);
}

TEST(Exec, BranchesTakenAndNot) {
  EXPECT_EQ(exec0(R"(
    li a1, 1
    li a2, 2
    li a3, 0
    blt a1, a2, L1
    li a3, 111
  L1:
    bge a1, a2, L2
    addi a3, a3, 5
  L2:
    bltu a2, a1, L3
    addi a3, a3, 7
  L3:
    bgeu a2, a1, L4
    li a3, 999
  L4:
  )" + exit_with("a3")), 12u);
}

TEST(Exec, JalLinksReturnAddress) {
  EXPECT_EQ(exec0(R"(
    jal a1, F
  back:
    j done
  F:
    auipc a2, 0       # a2 = &F
    sub a3, a2, a1    # distance F - back... a1 = return = back
    jalr zero, a1, 0
  done:
  )" + exit_with("a3")), 4u);
}

TEST(Exec, MulVariants) {
  EXPECT_EQ(exec0(R"(
    li a1, -3
    li a2, 7
    mul a3, a1, a2
  )" + exit_with("a3")), static_cast<uint32_t>(-21));
  // mulh: high word of signed product.
  EXPECT_EQ(exec0(R"(
    li a1, 0x40000000
    li a2, 4
    mulh a3, a1, a2
  )" + exit_with("a3")), 1u);
  // mulhu: high word of unsigned product of 0xFFFFFFFF * 0xFFFFFFFF.
  EXPECT_EQ(exec0(R"(
    li a1, -1
    li a2, -1
    mulhu a3, a1, a2
  )" + exit_with("a3")), 0xFFFFFFFEu);
  // mulhsu: signed × unsigned.
  EXPECT_EQ(exec0(R"(
    li a1, -1
    li a2, 2
    mulhsu a3, a1, a2
  )" + exit_with("a3")), 0xFFFFFFFFu);
}

TEST(Exec, DivRemEdgeCases) {
  // Division by zero: quotient all-ones, remainder = dividend.
  EXPECT_EQ(exec0(R"(
    li a1, 17
    li a2, 0
    div a3, a1, a2
  )" + exit_with("a3")), 0xFFFFFFFFu);
  EXPECT_EQ(exec0(R"(
    li a1, 17
    li a2, 0
    rem a3, a1, a2
  )" + exit_with("a3")), 17u);
  // Overflow: INT_MIN / -1 = INT_MIN, rem = 0.
  EXPECT_EQ(exec0(R"(
    li a1, 0x80000000
    li a2, -1
    div a3, a1, a2
  )" + exit_with("a3")), 0x80000000u);
  EXPECT_EQ(exec0(R"(
    li a1, 0x80000000
    li a2, -1
    rem a3, a1, a2
  )" + exit_with("a3")), 0u);
  EXPECT_EQ(exec0(R"(
    li a1, -7
    li a2, 2
    div a3, a1, a2
  )" + exit_with("a3")), static_cast<uint32_t>(-3));
  EXPECT_EQ(exec0(R"(
    li a1, -7
    li a2, 2
    rem a3, a1, a2
  )" + exit_with("a3")), static_cast<uint32_t>(-1));
  EXPECT_EQ(exec0(R"(
    li a1, -7
    li a2, 2
    divu a3, a1, a2
  )" + exit_with("a3")), 0x7FFFFFFCu);
}

TEST(Exec, CsrReads) {
  EXPECT_EQ(exec0("csrr a1, mhartid\n" + exit_with("a1")), 0u);
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopX, true);
  auto sys = test::run_text(cfg, test::only_core0(
      "csrr a1, numcores\n" + exit_with("a1")));
  EXPECT_EQ(sys->core(0).exit_code(), cfg.num_cores());
}

TEST(Exec, McycleIsMonotonic) {
  EXPECT_EQ(exec0(R"(
    csrr a1, mcycle
    nop
    nop
    csrr a2, mcycle
    sltu a3, a1, a2
  )" + exit_with("a3")), 1u);
}

TEST(Exec, MinstretCounts) {
  // minstret counts retired instructions: between the two reads there are
  // exactly 3 (the first csrr and two nops).
  EXPECT_EQ(exec0(R"(
    csrr a1, minstret
    nop
    nop
    csrr a2, minstret
    sub a3, a2, a1
  )" + exit_with("a3")), 3u);
}

TEST(Exec, MscratchReadWrite) {
  EXPECT_EQ(exec0(R"(
    li a1, 0x5A5A
    csrw mscratch, a1
    csrr a2, mscratch
  )" + exit_with("a2")), 0x5A5Au);
}

TEST(Exec, EcallHaltsWithA0) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopX, true);
  auto sys = test::run_text(cfg, R"(
    _start:
      csrr a0, mhartid
      addi a0, a0, 100
      ecall
  )");
  for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
    EXPECT_EQ(sys->core(c).exit_code(), c + 100);
  }
}

TEST(Exec, ConsolePutchar) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopX, true);
  auto sys = test::run_text(cfg, test::only_core0(R"(
    li t0, 0xC0000004
    li t1, 72      # 'H'
    sw t1, 0(t0)
    li t1, 105     # 'i'
    sw t1, 0(t0)
    li a0, 0
    ecall
  )"));
  EXPECT_EQ(sys->core(0).console(), "Hi");
}

TEST(Exec, ZeroRegisterIsImmutable) {
  EXPECT_EQ(exec0(R"(
    li a1, 5
    add zero, a1, a1
    mv a2, zero
  )" + exit_with("a2")), 0u);
}

}  // namespace
}  // namespace mempool
