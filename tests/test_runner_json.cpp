// JSON value type and the sweep results writer: parse/dump round trips,
// error handling, and the guarantee a sweep written to disk reads back
// bit-identical (shortest-round-trip double formatting).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/check.hpp"
#include "common/json.hpp"
#include "common/report.hpp"
#include "common/stats.hpp"
#include "runner/results.hpp"
#include "runner/runner.hpp"

using namespace mempool;
using namespace mempool::runner;

TEST(Json, ScalarsDumpAndParse) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(uint64_t{1} << 60).dump(), "1152921504606846976");
  EXPECT_EQ(Json(0.25).dump(), "0.25");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");

  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("-13").as_int(), -13);
  EXPECT_DOUBLE_EQ(Json::parse("0.125e2").as_double(), 12.5);
  EXPECT_EQ(Json::parse("\"a\\nb\"").as_string(), "a\nb");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json o = Json::object();
  o.set("zebra", 1);
  o.set("apple", 2);
  o.set("mango", 3);
  EXPECT_EQ(o.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  o.set("apple", 9);  // overwrite keeps position
  EXPECT_EQ(o.dump(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
  EXPECT_EQ(o.at("apple").as_int(), 9);
  EXPECT_TRUE(o.contains("mango"));
  EXPECT_FALSE(o.contains("kiwi"));
  EXPECT_EQ(o.get("kiwi", Json(-1)).as_int(), -1);
}

TEST(Json, NestedDocumentRoundTripsThroughText) {
  Json doc = Json::object();
  doc.set("name", "sweep");
  doc.set("ok", true);
  Json arr = Json::array();
  for (int i = 0; i < 4; ++i) arr.push_back(i * 0.1);
  doc.set("values", std::move(arr));
  Json inner = Json::object();
  inner.set("count", int64_t{12345678901234});
  doc.set("meta", std::move(inner));

  const Json back = Json::parse(doc.dump(2));
  EXPECT_EQ(back.dump(), doc.dump());
  EXPECT_EQ(back.at("meta").at("count").as_int(), int64_t{12345678901234});
  EXPECT_EQ(back.at("values").size(), 4u);
}

TEST(Json, DoublesSurviveShortestRoundTrip) {
  // Values with no short decimal representation must still round-trip
  // bit-exactly — the determinism checks on results files depend on it.
  for (double v : {1.0 / 3.0, 0.1, 2.0 / 7.0, 123456.789e-12, 5.22037e5}) {
    const Json back = Json::parse(Json(v).dump());
    EXPECT_EQ(back.as_double(), v);
  }
}

TEST(Json, StringEscapes) {
  const std::string s = "quote\" back\\slash tab\t nl\n ctrl\x01";
  EXPECT_EQ(Json::parse(Json(s).dump()).as_string(), s);
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(Json, ParseErrorsThrow) {
  EXPECT_THROW(Json::parse(""), CheckError);
  EXPECT_THROW(Json::parse("{"), CheckError);
  EXPECT_THROW(Json::parse("[1,]"), CheckError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), CheckError);
  EXPECT_THROW(Json::parse("nul"), CheckError);
  EXPECT_THROW(Json::parse("'single'"), CheckError);
}

TEST(Json, TypeMismatchesThrow) {
  EXPECT_THROW(Json(1).as_string(), CheckError);
  EXPECT_THROW(Json("x").as_int(), CheckError);
  EXPECT_THROW(Json(0.5).as_int(), CheckError);  // non-integral double
  EXPECT_THROW(Json(-1).as_uint(), CheckError);
  EXPECT_THROW(Json(1).items(), CheckError);
  EXPECT_THROW(Json::object().at("missing"), CheckError);
}

TEST(Json, Int64RangeGuards) {
  // uint64 values beyond int64 cannot be stored faithfully — reject at
  // construction instead of serializing a negative number.
  EXPECT_THROW(Json(~uint64_t{0}), CheckError);
  EXPECT_NO_THROW(Json(uint64_t{1} << 62));
  // An integral double outside int64 range must not hit UB in the cast.
  EXPECT_THROW(Json::parse("1e300").as_int(), CheckError);
  EXPECT_THROW(Json::parse("-1e300").as_int(), CheckError);
  EXPECT_EQ(Json::parse("1e15").as_int(), 1000000000000000ll);
}

TEST(StatsJson, RunningStatAndHistogramEmit) {
  RunningStat st;
  for (double v : {1.0, 2.0, 3.0}) st.add(v);
  const Json j = st.to_json();
  EXPECT_EQ(j.at("count").as_uint(), 3u);
  EXPECT_DOUBLE_EQ(j.at("mean").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(j.at("max").as_double(), 3.0);

  Histogram h(1.0, 8);
  h.add(0.5);
  h.add(2.5);
  h.add(100.0);  // overflow
  const Json hj = h.to_json();
  EXPECT_EQ(hj.at("overflow").as_uint(), 1u);
  EXPECT_EQ(hj.at("counts").size(), 3u);  // trailing zeros trimmed
  EXPECT_EQ(hj.at("counts").at(0).as_uint(), 1u);
  EXPECT_EQ(hj.at("counts").at(2).as_uint(), 1u);
}

TEST(ReportJson, TableEmitsRowsKeyedByHeader) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"b", "2"});
  const Json j = t.to_json();
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.at(0).at("name").as_string(), "a");
  EXPECT_EQ(j.at(1).at("value").as_string(), "2");
}

namespace {

SweepResult small_sweep() {
  SweepSpec spec;
  spec.base.cluster = ClusterConfig::mini(Topology::kTopH, true);
  spec.base.warmup_cycles = 50;
  spec.base.measure_cycles = 200;
  spec.base.drain_cycles = 100;
  spec.topologies = {Topology::kTop1, Topology::kTopH};
  spec.lambdas = {0.1, 0.25};
  spec.seeds = {7};
  spec.paper_cluster = false;
  RunnerOptions opts;
  opts.threads = 2;
  return run_sweep(spec, opts);
}

}  // namespace

TEST(SweepJson, SweepRoundTripsBitIdentical) {
  const SweepResult original = small_sweep();

  // Through the JSON text, as a results file would.
  const Json doc = Json::parse(sweep_to_json(original).dump(2));
  const SweepResult back = sweep_from_json(doc);

  EXPECT_EQ(back.threads, original.threads);
  ASSERT_EQ(back.points.size(), original.points.size());
  for (std::size_t i = 0; i < original.points.size(); ++i) {
    EXPECT_EQ(back.points[i], original.points[i]) << "point " << i;
    EXPECT_EQ(back.configs[i].cluster.topology,
              original.configs[i].cluster.topology);
    EXPECT_EQ(back.configs[i].cluster.num_tiles,
              original.configs[i].cluster.num_tiles);
    EXPECT_EQ(back.configs[i].seed, original.configs[i].seed);
    EXPECT_EQ(back.configs[i].lambda, original.configs[i].lambda);
    EXPECT_EQ(back.configs[i].measure_cycles,
              original.configs[i].measure_cycles);
  }
}

TEST(SweepJson, WritesV3WithSelfDescribingTopologyAndMemory) {
  const SweepResult original = small_sweep();
  const Json doc = sweep_to_json(original);
  EXPECT_EQ(doc.at("schema").as_string(), "mempool.sweep.v3");
  const Json& first = doc.at("points").at(0);
  EXPECT_TRUE(first.at("topology").is_object());
  EXPECT_EQ(first.at("topology").at("name").as_string(), "Top1");
  EXPECT_TRUE(first.at("topology").at("params").is_object());
  EXPECT_TRUE(first.at("memory").is_object());
  EXPECT_EQ(first.at("memory").at("name").as_string(), "tcdm");
  EXPECT_TRUE(first.at("memory").at("params").is_object());
}

TEST(SweepJson, ReadsLegacyV2Documents) {
  // A pre-memory-registry v2 file ({name, params} topology, no "memory"
  // member) pinned verbatim: the compat reader must default the memory
  // system to tcdm and round-trip through the v3 writer bit-identically.
  const std::string v2 = R"({
    "schema": "mempool.sweep.v2",
    "threads": 4,
    "wall_seconds": 1.25,
    "points": [
      {"topology": {"name": "TopH2", "params": {"supergroups": 4}},
       "scrambling": false, "num_tiles": 256,
       "cores_per_tile": 4, "banks_per_tile": 16, "bank_bytes": 1024,
       "seq_region_bytes": 4096, "num_groups": 16,
       "lambda": 0.1, "p_local": 0.0, "seed": 3, "engine": "sharded",
       "sim_threads": 4,
       "warmup_cycles": 100, "measure_cycles": 400, "drain_cycles": 200,
       "offered": 0.1, "generated": 0.0999, "accepted": 0.0998,
       "avg_latency": 6.5, "p95_latency": 12.0, "max_latency": 40.0,
       "completed": 10240}
    ]
  })";
  const SweepResult back = sweep_from_json(Json::parse(v2));
  ASSERT_EQ(back.points.size(), 1u);
  EXPECT_EQ(back.configs[0].cluster.topology.name, "TopH2");
  EXPECT_EQ(back.configs[0].cluster.memory, MemorySpec{"tcdm"});
  EXPECT_EQ(back.configs[0].engine, EngineMode::kSharded);

  const SweepResult again = sweep_from_json(sweep_to_json(back));
  ASSERT_EQ(again.points.size(), 1u);
  EXPECT_EQ(again.points[0], back.points[0]);
  EXPECT_EQ(again.configs[0].cluster.memory, back.configs[0].cluster.memory);
}

TEST(SweepJson, MemorySpecParamsRoundTrip) {
  SweepResult original = small_sweep();
  for (auto& cfg : original.configs) {
    cfg.cluster.memory =
        MemorySpec{"tcdm+l2", {{"l2_latency", Json(uint64_t{11})}}};
  }
  const SweepResult back =
      sweep_from_json(Json::parse(sweep_to_json(original).dump(2)));
  ASSERT_EQ(back.configs.size(), original.configs.size());
  EXPECT_EQ(back.configs[0].cluster.memory, original.configs[0].cluster.memory);
  EXPECT_EQ(back.configs[0].cluster.memory.param_uint("l2_latency", 0), 11u);
}

TEST(SweepJson, RejectsUnknownMemoryNamingAvailable) {
  const SweepResult original = small_sweep();
  Json doc = sweep_to_json(original);
  Json mem = Json::object();
  mem.set("name", "l9-cache");
  mem.set("params", Json::object());
  Json points = Json::array();
  for (std::size_t i = 0; i < doc.at("points").size(); ++i) {
    Json rec = doc.at("points").at(i);
    if (i == 0) rec.set("memory", mem);
    points.push_back(std::move(rec));
  }
  doc.set("points", std::move(points));
  try {
    sweep_from_json(doc);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("l9-cache"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tcdm"), std::string::npos) << msg;
  }
}

TEST(SweepJson, ReadsLegacyV1Documents) {
  // A pre-registry v1 file (bare topology name strings) pinned verbatim:
  // the back-compat reader must resolve it against the registry and
  // round-trip it through the v2 writer bit-identically.
  const std::string v1 = R"({
    "schema": "mempool.sweep.v1",
    "threads": 2,
    "wall_seconds": 0.5,
    "points": [
      {"topology": "TopH", "scrambling": true, "num_tiles": 16,
       "cores_per_tile": 4, "banks_per_tile": 16, "bank_bytes": 1024,
       "seq_region_bytes": 4096, "num_groups": 4,
       "lambda": 0.25, "p_local": 0.5, "seed": 7, "engine": "dense",
       "warmup_cycles": 50, "measure_cycles": 200, "drain_cycles": 100,
       "offered": 0.25, "generated": 0.251, "accepted": 0.249,
       "avg_latency": 4.125, "p95_latency": 9.0, "max_latency": 31.0,
       "completed": 3210}
    ]
  })";
  const SweepResult back = sweep_from_json(Json::parse(v1));
  ASSERT_EQ(back.points.size(), 1u);
  EXPECT_EQ(back.configs[0].cluster.topology, TopologySpec{"TopH"});
  EXPECT_EQ(back.configs[0].cluster.topology, Topology::kTopH);
  EXPECT_TRUE(back.configs[0].cluster.scrambling);
  EXPECT_EQ(back.configs[0].engine, EngineMode::kDense);
  EXPECT_EQ(back.configs[0].seed, 7u);
  EXPECT_DOUBLE_EQ(back.points[0].avg_latency, 4.125);
  EXPECT_EQ(back.points[0].completed, 3210u);

  // v1 -> v2 -> read: identical result either way.
  const SweepResult again = sweep_from_json(sweep_to_json(back));
  ASSERT_EQ(again.points.size(), 1u);
  EXPECT_EQ(again.points[0], back.points[0]);
  EXPECT_EQ(again.configs[0].cluster.topology,
            back.configs[0].cluster.topology);
}

TEST(SweepJson, RejectsUnknownTopologyNamingAvailable) {
  const SweepResult original = small_sweep();
  Json doc = sweep_to_json(original);
  // Corrupt the first point's topology name.
  Json topo = Json::object();
  topo.set("name", "TopZ");
  topo.set("params", Json::object());
  // Rebuild the document with the bad record (Json has no mutable at()).
  Json points = Json::array();
  for (std::size_t i = 0; i < doc.at("points").size(); ++i) {
    Json rec = doc.at("points").at(i);
    if (i == 0) rec.set("topology", topo);
    points.push_back(std::move(rec));
  }
  doc.set("points", std::move(points));
  try {
    sweep_from_json(doc);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("TopZ"), std::string::npos);
    EXPECT_NE(msg.find("available"), std::string::npos) << msg;
  }
}

TEST(SweepJson, RejectsWrongSchema) {
  Json doc = Json::object();
  doc.set("schema", "something.else.v9");
  EXPECT_THROW(sweep_from_json(doc), CheckError);
}

TEST(SweepJson, BenchEnvelopeShape) {
  const Json env = bench_envelope("fig5", 8, 1.5, Json::object());
  EXPECT_EQ(env.at("schema").as_string(), "mempool.bench.v1");
  EXPECT_EQ(env.at("bench").as_string(), "fig5");
  EXPECT_EQ(env.at("threads").as_uint(), 8u);
  EXPECT_TRUE(env.at("results").is_object());
}

TEST(SweepJson, FileWriterRoundTrips) {
  const SweepResult original = small_sweep();
  const std::string path = ::testing::TempDir() + "/mempool_sweep_rt.json";
  write_json_file(path, sweep_to_json(original));
  const SweepResult back = sweep_from_json(read_json_file(path));
  ASSERT_EQ(back.points.size(), original.points.size());
  for (std::size_t i = 0; i < original.points.size(); ++i)
    EXPECT_EQ(back.points[i], original.points[i]);
  std::remove(path.c_str());
}

TEST(SweepJson, ReadMissingFileThrows) {
  EXPECT_THROW(read_json_file("/nonexistent/dir/x.json"), CheckError);
}

namespace {

TEST(SpeedupJson, ReadsV3WithPaperPointBlock) {
  // mempool.speedup.v3: absolute cycles/sec per point plus the paper_point
  // block (256-core TopH λ=0.05) the CI perf gate keys its cycles/sec floor
  // on. The v1/v2 ratio fields keep their meaning.
  const runner::SpeedupSummary v3 = runner::speedup_from_json(Json::parse(R"({
    "schema": "mempool.speedup.v3",
    "aggregate_speedup": 3.6,
    "min_speedup": 2.1,
    "aggregate_sharded_speedup": 1.0,
    "host_cpus": 1,
    "paper_point": {
      "topology": "TopH", "lambda": 0.05, "num_shards": 4,
      "cycles_per_second": 150000.0,
      "cycles_per_second_per_shard": 37500.0,
      "sharded_1t_cycles_per_second": 145000.0
    },
    "points": [
      {"workload": "fig5", "topology": "TopH", "lambda": 0.05,
       "dense_seconds": 0.2, "active_seconds": 0.05, "speedup": 4.0,
       "sim_cycles": 7000,
       "dense_cycles_per_second": 35000.0,
       "active_cycles_per_second": 140000.0,
       "sharded_seconds": {"1": 0.055},
       "sharded_cycles_per_second": {"1": 127272.7},
       "sharded_speedup": 0.9}
    ]
  })"));
  EXPECT_EQ(v3.schema, "mempool.speedup.v3");
  EXPECT_DOUBLE_EQ(v3.aggregate_speedup, 3.6);
  EXPECT_DOUBLE_EQ(v3.aggregate_sharded_speedup, 1.0);
  EXPECT_DOUBLE_EQ(v3.paper_cycles_per_second, 150000.0);
  EXPECT_DOUBLE_EQ(v3.paper_cycles_per_second_per_shard, 37500.0);
  EXPECT_DOUBLE_EQ(v3.paper_sharded_1t_cycles_per_second, 145000.0);
  EXPECT_EQ(v3.num_points, 1u);

  // A v3 document must carry its paper_point block — a truncated artifact
  // fails loudly instead of gating against a silent zero.
  EXPECT_THROW(runner::speedup_from_json(Json::parse(R"({
    "schema": "mempool.speedup.v3",
    "aggregate_speedup": 3.6, "min_speedup": 2.1,
    "aggregate_sharded_speedup": 1.0, "points": []
  })")),
               CheckError);
}

TEST(SpeedupJson, ReadsV2AndLegacyV1Documents) {
  // mempool.speedup.v2: the sharded sim-threads axis rides along; the
  // dense-to-active aggregate keeps its v1 meaning so any baseline compares.
  const runner::SpeedupSummary v2 = runner::speedup_from_json(Json::parse(R"({
    "schema": "mempool.speedup.v2",
    "aggregate_speedup": 3.4,
    "min_speedup": 2.0,
    "aggregate_sharded_speedup": 3.1,
    "host_cpus": 8,
    "points": [
      {"workload": "fig5", "topology": "TopH", "lambda": 0.05,
       "dense_seconds": 0.2, "active_seconds": 0.1, "speedup": 2.0,
       "sharded_seconds": {"1": 0.11, "2": 0.06, "4": 0.033, "8": 0.031},
       "sharded_speedup": 3.2}
    ]
  })"));
  EXPECT_EQ(v2.schema, "mempool.speedup.v2");
  EXPECT_DOUBLE_EQ(v2.aggregate_speedup, 3.4);
  EXPECT_DOUBLE_EQ(v2.min_speedup, 2.0);
  EXPECT_DOUBLE_EQ(v2.aggregate_sharded_speedup, 3.1);
  EXPECT_DOUBLE_EQ(v2.paper_cycles_per_second, 0.0);  // v3-only field
  EXPECT_EQ(v2.num_points, 1u);

  // Legacy v1 (committed baselines from before the sharded engine): sharded
  // fields default to 0, everything else reads as written.
  const runner::SpeedupSummary v1 = runner::speedup_from_json(Json::parse(R"({
    "schema": "mempool.speedup.v1",
    "aggregate_speedup": 3.0,
    "min_speedup": 1.9,
    "points": [
      {"workload": "zero_load", "topology": "Top1", "lambda": 0.0,
       "dense_seconds": 0.5, "active_seconds": 0.1, "speedup": 5.0},
      {"workload": "fig5", "topology": "Top1", "lambda": 0.01,
       "dense_seconds": 0.4, "active_seconds": 0.1, "speedup": 4.0}
    ]
  })"));
  EXPECT_EQ(v1.schema, "mempool.speedup.v1");
  EXPECT_DOUBLE_EQ(v1.aggregate_speedup, 3.0);
  EXPECT_DOUBLE_EQ(v1.aggregate_sharded_speedup, 0.0);
  EXPECT_EQ(v1.num_points, 2u);

  EXPECT_THROW(runner::speedup_from_json(Json::parse(R"({"schema": "x"})")),
               CheckError);
}

TEST(SweepJson, ShardedEngineRoundTrips) {
  // A sharded point's engine + sim_threads survive the v2 round trip.
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::mini(Topology::kTopH, false);
  cfg.engine = EngineMode::kSharded;
  cfg.sim_threads = 8;
  cfg.lambda = 0.1;
  runner::SweepResult res;
  res.configs = {cfg};
  res.points = {TrafficPoint{}};
  const runner::SweepResult back =
      runner::sweep_from_json(runner::sweep_to_json(res));
  ASSERT_EQ(back.configs.size(), 1u);
  EXPECT_EQ(back.configs[0].engine, EngineMode::kSharded);
  EXPECT_EQ(back.configs[0].sim_threads, 8u);
}

}  // namespace
