// Fabric-level contract properties that the whole reproduction rests on:
// conservation (no packet lost or duplicated), point-to-point ordering, and
// throughput bounds — swept across topologies and loads with probe clients.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "mem/imem.hpp"
#include "noc/butterfly.hpp"
#include "noc/monitor.hpp"
#include "traffic/generator.hpp"

namespace mempool {
namespace {

struct GenRig {
  GenRig(const ClusterConfig& cfg, double lambda, uint64_t seed)
      : imem(4096), cluster(cfg, &imem), monitor(0) {
    TrafficConfig tcfg;
    tcfg.lambda = lambda;
    tcfg.seed = seed;
    tcfg.stop_generation_at = 2000;
    for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
      gens.push_back(std::make_unique<TrafficGenerator>(
          "gen" + std::to_string(c), static_cast<uint16_t>(c),
          static_cast<uint16_t>(c / cfg.cores_per_tile), cfg,
          &cluster.layout(), &engine, tcfg, &monitor));
    }
    std::vector<Client*> clients;
    for (auto& g : gens) clients.push_back(g.get());
    cluster.attach_clients(clients);
    cluster.build(engine);
  }

  uint64_t total_generated() const {
    uint64_t g = 0;
    for (const auto& gen : gens) g += gen->generated();
    return g;
  }
  uint64_t total_completed() const {
    uint64_t c = 0;
    for (const auto& gen : gens) c += gen->completed();
    return c;
  }
  uint64_t total_queued() const {
    uint64_t q = 0;
    for (const auto& gen : gens) q += gen->queue_depth();
    return q;
  }

  InstrMem imem;
  Engine engine;
  Cluster cluster;
  LatencyMonitor monitor;
  std::vector<std::unique_ptr<TrafficGenerator>> gens;
};

class FabricConservation : public ::testing::TestWithParam<Topology> {};

TEST_P(FabricConservation, EveryRequestGetsExactlyOneResponse) {
  const ClusterConfig cfg = ClusterConfig::mini(GetParam(), false);
  GenRig rig(cfg, 0.2, 7);
  rig.engine.run(2000);  // generation stops at cycle 2000
  // Drain: run until queues empty, fabric idle, and counts balance.
  for (int i = 0; i < 20000; ++i) {
    if (rig.total_queued() == 0 && rig.cluster.fabric_idle() &&
        rig.total_completed() == rig.total_generated()) {
      break;
    }
    rig.engine.step();
  }
  EXPECT_EQ(rig.total_completed(), rig.total_generated())
      << "lost or duplicated packets";
  EXPECT_TRUE(rig.cluster.fabric_idle());
}

INSTANTIATE_TEST_SUITE_P(Topologies, FabricConservation,
                         ::testing::Values(Topology::kTop1, Topology::kTop4,
                                           Topology::kTopH, Topology::kTopX),
                         [](const auto& tpinfo) {
                           return topology_name(tpinfo.param);
                         });

// Point-to-point ordering: a probe that issues N loads to the SAME bank must
// see the responses in issue order (single path + FIFO queues).
class OrderProbe final : public Client {
 public:
  OrderProbe(uint16_t id, uint16_t tile, const MemoryLayout* layout)
      : Client("probe", id, tile), layout_(layout) {}

  void queue_load(uint32_t addr, uint16_t seq) { pending_.push_back({addr, seq}); }

  void deliver(const Packet& p) override { order_seen.push_back(p.tag); }

  void evaluate(uint64_t cycle) override {
    if (next_ < pending_.size()) {
      Packet p;
      p.op = MemOp::kLoad;
      p.src = id_;
      p.src_tile = tile_;
      p.tag = pending_[next_].second;
      p.birth = cycle;
      layout_->route(p, pending_[next_].first);
      if (port_->try_issue(p)) ++next_;
    }
  }

  std::vector<uint16_t> order_seen;

 private:
  const MemoryLayout* layout_;
  std::vector<std::pair<uint32_t, uint16_t>> pending_;
  std::size_t next_ = 0;
};

class FabricOrdering : public ::testing::TestWithParam<Topology> {};

TEST_P(FabricOrdering, SameBankResponsesArriveInIssueOrder) {
  const ClusterConfig cfg = ClusterConfig::mini(GetParam(), true);
  InstrMem imem(4096);
  Engine engine;
  Cluster cluster(cfg, &imem);
  std::vector<std::unique_ptr<OrderProbe>> probes;
  for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
    probes.push_back(std::make_unique<OrderProbe>(
        static_cast<uint16_t>(c), static_cast<uint16_t>(c / cfg.cores_per_tile),
        &cluster.layout()));
  }
  std::vector<Client*> clients;
  for (auto& p : probes) clients.push_back(p.get());
  cluster.attach_clients(clients);
  cluster.build(engine);

  // Every core fires 16 loads at the same remote word (max contention) plus
  // interleaved loads to its own tile; per-bank order must still hold.
  const uint32_t hot = 9 * cfg.seq_region_bytes;  // tile 9, bank 0
  for (auto& p : probes) {
    for (uint16_t i = 0; i < 16; ++i) p->queue_load(hot, i);
  }
  engine.run(4000);
  for (auto& p : probes) {
    ASSERT_EQ(p->order_seen.size(), 16u);
    for (uint16_t i = 0; i < 16; ++i) {
      ASSERT_EQ(p->order_seen[i], i) << "reordered response";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, FabricOrdering,
                         ::testing::Values(Topology::kTop1, Topology::kTop4,
                                           Topology::kTopH, Topology::kTopX),
                         [](const auto& tpinfo) {
                           return topology_name(tpinfo.param);
                         });

TEST(FabricFairness, SaturatedButterflyNeverStarvesAnInput) {
  // All 16 inputs continuously target endpoint 0: the output serializes at
  // one grant per cycle and the per-switch round-robin arbiters must share
  // those grants evenly across every source — no input may starve. (Pins the
  // grant path taking the round-robin winner's own destination; a grant that
  // borrowed another candidate's routing state would skew or strand inputs.)
  const unsigned n = 16;
  ButterflyNet net(
      "bf", n, 4,
      {BufferMode::kCombinational, BufferMode::kCombinational},
      [](const Packet& p) { return static_cast<unsigned>(p.dst_tile); });
  std::vector<uint64_t> per_src(n, 0);
  class CountSink final : public PacketSink {
   public:
    explicit CountSink(std::vector<uint64_t>* counts) : counts_(counts) {}
    bool can_accept() const override { return true; }
    void push(const Packet& p) override { ++(*counts_)[p.src]; }

   private:
    std::vector<uint64_t>* counts_;
  } hot(&per_src);
  class RejectSink final : public PacketSink {
   public:
    bool can_accept() const override { return false; }
    void push(const Packet&) override { FAIL() << "unexpected delivery"; }
  } cold;
  net.connect_output(0, &hot);
  for (unsigned i = 1; i < n; ++i) net.connect_output(i, &cold);

  const int kCycles = 1600;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    for (unsigned i = 0; i < n; ++i) {
      if (net.input(i)->can_accept()) {
        Packet p;
        p.dst_tile = 0;
        p.src = static_cast<uint16_t>(i);
        net.input(i)->push(p);
      }
    }
    net.evaluate(cycle);
  }
  const uint64_t total = std::accumulate(per_src.begin(), per_src.end(),
                                         uint64_t{0});
  EXPECT_GE(total, static_cast<uint64_t>(kCycles) - 2)
      << "saturated output must grant ~1/cycle";
  const uint64_t fair_share = total / n;
  const auto [lo, hi] = std::minmax_element(per_src.begin(), per_src.end());
  EXPECT_GT(*lo, 0u) << "an input port starved";
  // Round-robin fairness bound: two-level RR tree keeps every source within
  // a small constant of the fair share.
  EXPECT_GE(*lo + 8, fair_share);
  EXPECT_LE(*hi, fair_share + 8);
}

TEST(FabricThroughput, SingleBankSerializesAtOnePerCycle) {
  // 64 generators all target one bank: accepted throughput is bounded by the
  // bank's single port regardless of topology.
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  InstrMem imem(4096);
  Engine engine;
  Cluster cluster(cfg, &imem);
  std::vector<std::unique_ptr<OrderProbe>> probes;
  for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
    probes.push_back(std::make_unique<OrderProbe>(
        static_cast<uint16_t>(c), static_cast<uint16_t>(c / cfg.cores_per_tile),
        &cluster.layout()));
    for (uint16_t i = 0; i < 8; ++i) {
      probes.back()->queue_load(5 * cfg.seq_region_bytes, i);
    }
  }
  std::vector<Client*> clients;
  for (auto& p : probes) clients.push_back(p.get());
  cluster.attach_clients(clients);
  cluster.build(engine);

  const uint32_t total = cfg.num_cores() * 8;
  uint64_t cycles = 0;
  auto done = [&] {
    for (auto& p : probes) {
      if (p->order_seen.size() < 8) return false;
    }
    return true;
  };
  while (!done() && cycles < 10000) {
    engine.step();
    ++cycles;
  }
  ASSERT_TRUE(done());
  // 512 same-bank loads cannot finish faster than 512 cycles...
  EXPECT_GE(cycles, static_cast<uint64_t>(total));
  // ...and the pipeline should keep the bank nearly always busy.
  EXPECT_LE(cycles, static_cast<uint64_t>(total) + 100);
}

TEST(FabricThroughput, DisjointTrafficScalesLinearly) {
  // Each core loads only from its own tile: no shared resource, so the whole
  // cluster sustains ~1 load/core/cycle.
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  InstrMem imem(4096);
  Engine engine;
  Cluster cluster(cfg, &imem);
  std::vector<std::unique_ptr<OrderProbe>> probes;
  for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
    const uint32_t t = c / cfg.cores_per_tile;
    probes.push_back(std::make_unique<OrderProbe>(
        static_cast<uint16_t>(c), static_cast<uint16_t>(t),
        &cluster.layout()));
    for (uint16_t i = 0; i < 32; ++i) {
      // Distinct bank per core within the tile: bank = 4*(c%4) + i%4.
      const uint32_t addr = t * cfg.seq_region_bytes +
                            4 * (4 * (c % 4) + i % 4) + 64 * (i / 4);
      probes.back()->queue_load(addr, i);
    }
  }
  std::vector<Client*> clients;
  for (auto& p : probes) clients.push_back(p.get());
  cluster.attach_clients(clients);
  cluster.build(engine);

  uint64_t cycles = 0;
  auto done = [&] {
    for (auto& p : probes) {
      if (p->order_seen.size() < 32) return false;
    }
    return true;
  };
  while (!done() && cycles < 1000) {
    engine.step();
    ++cycles;
  }
  ASSERT_TRUE(done());
  EXPECT_LE(cycles, 64u) << "local loads should pipeline at ~1/cycle";
}

}  // namespace
}  // namespace mempool
