// Work-stealing thread pool: execution, nested submission, and — most
// importantly — clean draining under exceptions: a throwing task must not
// kill a worker, wedge wait_idle(), or stop the remaining tasks.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>

#include "runner/parallel.hpp"
#include "runner/thread_pool.hpp"

using namespace mempool::runner;

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i)
    pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedSubmissionFromWorkerThreads) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      for (int j = 0; j < 4; ++j)
        pool.submit([&] { count.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, WaitIdleWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, DrainsCleanlyUnderExceptions) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&, i] {
      executed.fetch_add(1);
      if (i % 7 == 0) throw std::runtime_error("task failed");
    });
  }
  // wait_idle drains everything first, then reports the first failure.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(executed.load(), 50);

  // The pool must remain fully usable after an exception round.
  std::atomic<int> second{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { second.fetch_add(1); });
  pool.wait_idle();  // no stale exception resurfaces
  EXPECT_EQ(second.load(), 20);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 40; ++i) pool.submit([&] { executed.fetch_add(1); });
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(executed.load(), 40);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, RethrowsLowestFailingIndexAfterFullDrain) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    parallel_for(pool, 32, [&](std::size_t i) {
      executed.fetch_add(1);
      if (i == 21 || i == 5 || i == 30)
        throw std::runtime_error("index " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 5");  // deterministic: lowest index wins
  }
  EXPECT_EQ(executed.load(), 32);  // non-throwing items all ran
}

TEST(RunIndexed, CollectsResultsInIndexOrder) {
  ThreadPool pool(8);
  const std::vector<int> out =
      run_indexed(pool, 100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(RunIndexed, ReportsCompletionCallbackPerItem) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::mutex mu;
  std::set<std::size_t> seen;
  run_indexed(
      pool, 25, [](std::size_t i) { return i; },
      [&](std::size_t i) {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(i);
        done.fetch_add(1);
      });
  EXPECT_EQ(done.load(), 25);
  EXPECT_EQ(seen.size(), 25u);
}
