// Work-stealing thread pool: execution, nested submission, and — most
// importantly — clean draining under exceptions: a throwing task must not
// kill a worker, wedge wait_idle(), or stop the remaining tasks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runner/parallel.hpp"
#include "runner/shard_gang.hpp"
#include "runner/thread_pool.hpp"

using namespace mempool::runner;

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SingleThreadPoolStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i)
    pool.submit([&] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, NestedSubmissionFromWorkerThreads) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      for (int j = 0; j < 4; ++j)
        pool.submit([&] { count.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, WaitIdleWithNothingSubmittedReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, DrainsCleanlyUnderExceptions) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&, i] {
      executed.fetch_add(1);
      if (i % 7 == 0) throw std::runtime_error("task failed");
    });
  }
  // wait_idle drains everything first, then reports the first failure.
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(executed.load(), 50);

  // The pool must remain fully usable after an exception round.
  std::atomic<int> second{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { second.fetch_add(1); });
  pool.wait_idle();  // no stale exception resurfaces
  EXPECT_EQ(second.load(), 20);
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 40; ++i) pool.submit([&] { executed.fetch_add(1); });
    // No wait_idle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(executed.load(), 40);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  parallel_for(pool, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, RethrowsLowestFailingIndexAfterFullDrain) {
  ThreadPool pool(4);
  std::atomic<int> executed{0};
  try {
    parallel_for(pool, 32, [&](std::size_t i) {
      executed.fetch_add(1);
      if (i == 21 || i == 5 || i == 30)
        throw std::runtime_error("index " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 5");  // deterministic: lowest index wins
  }
  EXPECT_EQ(executed.load(), 32);  // non-throwing items all ran
}

TEST(RunIndexed, CollectsResultsInIndexOrder) {
  ThreadPool pool(8);
  const std::vector<int> out =
      run_indexed(pool, 100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(RunIndexed, ReportsCompletionCallbackPerItem) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::mutex mu;
  std::set<std::size_t> seen;
  run_indexed(
      pool, 25, [](std::size_t i) { return i; },
      [&](std::size_t i) {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(i);
        done.fetch_add(1);
      });
  EXPECT_EQ(done.load(), 25);
  EXPECT_EQ(seen.size(), 25u);
}

// --- idle behavior: bounded spin, then park ---------------------------------

namespace {

/// Wait up to ~2 s for @p pred to become true (idle-transition tests: the
/// spin budgets are microseconds, so this is generous, not racy).
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

}  // namespace

TEST(ThreadPoolIdle, WorkersParkAfterBoundedSpin) {
  // Satellite contract: an idle pool must not burn its cores. After the
  // queue drains, every worker runs out of its bounded spin and parks on the
  // condition variable; a later submit wakes them back up.
  ThreadPool pool(4);
  for (int i = 0; i < 16; ++i) pool.submit([] {});
  pool.wait_idle();
  EXPECT_TRUE(eventually([&] { return pool.parked_workers() == 4u; }))
      << "parked " << pool.parked_workers() << " of 4 workers";
  EXPECT_GE(pool.park_events(), 4u);

  // Parked workers still pick up new work promptly.
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8);
}

// --- ShardGang: the sharded engine's cycle barrier --------------------------

TEST(ShardGang, RunsEveryShardExactlyOncePerRound) {
  ThreadPool pool(3);
  ShardGang gang(&pool, 4);
  EXPECT_EQ(gang.threads(), 4u);
  std::vector<std::atomic<int>> hits(16);
  for (int round = 0; round < 1000; ++round) {
    gang.run(16, [&](std::size_t s) {
      hits[s].fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& h : hits) EXPECT_EQ(h.load(), 1000);
}

TEST(ShardGang, BarrierPublishesAllEffectsToTheLeader) {
  // run() is a full barrier: plain (non-atomic) per-shard writes must be
  // visible to the leader afterwards — exactly what the engine relies on for
  // its lanes. TSan runs this too.
  ThreadPool pool(3);
  ShardGang gang(&pool, 4);
  std::vector<uint64_t> lane(8, 0);
  for (int round = 0; round < 2000; ++round) {
    gang.run(8, [&](std::size_t s) { lane[s] += s + 1; });
  }
  for (std::size_t s = 0; s < 8; ++s) EXPECT_EQ(lane[s], 2000u * (s + 1));
}

TEST(ShardGang, WorksWithoutAnyHelpers) {
  // Degenerate but important: no pool (or a fully busy one) means the leader
  // claims every shard itself — same results, no deadlock.
  ShardGang gang(nullptr, 8);
  EXPECT_EQ(gang.threads(), 1u);
  int sum = 0;
  gang.run(5, [&](std::size_t s) { sum += static_cast<int>(s); });
  EXPECT_EQ(sum, 10);
}

TEST(ShardGang, HelpersParkWhenTheGangIsIdle) {
  // Satellite contract: a gang stepping a mostly-idle cluster (rounds far
  // apart) must not spin its helpers forever — bounded spin, then park.
  ThreadPool pool(3);
  ShardGang gang(&pool, 4);
  gang.run(4, [](std::size_t) {});
  EXPECT_TRUE(eventually([&] { return gang.parked_helpers() == 3u; }))
      << "parked " << gang.parked_helpers() << " of 3 helpers";
  EXPECT_GE(gang.park_events(), 3u);
  // And they come back for the next round.
  std::atomic<int> hits{0};
  gang.run(4, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

TEST(ShardGang, PropagatesTheFirstThrownError) {
  ThreadPool pool(2);
  ShardGang gang(&pool, 3);
  EXPECT_THROW(gang.run(6,
                        [&](std::size_t s) {
                          if (s == 3) throw std::runtime_error("shard 3");
                        }),
               std::runtime_error);
  // The gang survives an exception and keeps serving rounds.
  std::atomic<int> hits{0};
  gang.run(6, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 6);
}

TEST(ShardGang, ManyGangsShareOnePoolWithoutDeadlock) {
  // Sweep-level parallelism owning per-point gangs: helpers of one gang may
  // never get scheduled while another holds the workers — participation is
  // optional, so every gang still completes.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 6, [&](std::size_t) {
    ShardGang gang(&pool, 4);  // helpers submitted to an already-busy pool
    for (int round = 0; round < 50; ++round) {
      gang.run(4, [&](std::size_t) { total.fetch_add(1); });
    }
  });
  EXPECT_EQ(total.load(), 6 * 50 * 4);
}
