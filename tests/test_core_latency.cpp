// Zero-load latency contract (DESIGN.md §3, paper Sections III-B/C): these
// tests pin the cycle-exact latencies the whole reproduction rests on.

#include <gtest/gtest.h>

#include <memory>

#include "helpers.hpp"
#include "mem/imem.hpp"

namespace mempool {
namespace {

struct ProbeRig {
  explicit ProbeRig(const ClusterConfig& cfg)
      : imem(4096), cluster(cfg, &imem) {
    for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
      probes.push_back(std::make_unique<test::ProbeClient>(
          static_cast<uint16_t>(c),
          static_cast<uint16_t>(c / cfg.cores_per_tile), &cluster.layout()));
    }
    std::vector<Client*> clients;
    for (auto& p : probes) clients.push_back(p.get());
    cluster.attach_clients(clients);
    cluster.build(engine);
  }

  /// Issue one load from @p core to @p cpu_addr on an idle fabric and return
  /// the round-trip latency in cycles.
  uint64_t probe(uint32_t core, uint32_t cpu_addr) {
    probes[core]->arm(cpu_addr);
    const uint32_t before = probes[core]->responses();
    for (int i = 0; i < 64; ++i) {
      engine.step();
      if (probes[core]->responses() > before) {
        return probes[core]->latency();
      }
    }
    ADD_FAILURE() << "no response within 64 cycles";
    return 0;
  }

  InstrMem imem;
  Engine engine;
  Cluster cluster;
  std::vector<std::unique_ptr<test::ProbeClient>> probes;
};

// Addresses: with scrambling on, tile T's sequential region starts at
// T * seq_region_bytes, so this targets a bank in tile T.
uint32_t addr_in_tile(const ClusterConfig& cfg, uint32_t tile) {
  return tile * cfg.seq_region_bytes;
}

TEST(ZeroLoadLatency, TopX_AllBanksOneCycle) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopX, true);
  ProbeRig rig(cfg);
  for (uint32_t t = 0; t < cfg.num_tiles; ++t) {
    EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, t)), 1u) << "tile " << t;
  }
}

TEST(ZeroLoadLatency, LocalBankOneCycle_AllTopologies) {
  for (Topology topo : {Topology::kTop1, Topology::kTop4, Topology::kTopH}) {
    const ClusterConfig cfg = ClusterConfig::mini(topo, true);
    ProbeRig rig(cfg);
    EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, 0)), 1u) << topology_name(topo);
    // A core in another tile to its own tile, too.
    const uint32_t c = 5 * cfg.cores_per_tile;  // core in tile 5
    EXPECT_EQ(rig.probe(c, addr_in_tile(cfg, 5)), 1u) << topology_name(topo);
  }
}

TEST(ZeroLoadLatency, Top1_RemoteFiveCycles) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTop1, true);
  ProbeRig rig(cfg);
  for (uint32_t t : {1u, 7u, 15u}) {
    EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, t)), 5u) << "tile " << t;
  }
}

TEST(ZeroLoadLatency, Top4_RemoteFiveCycles) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTop4, true);
  ProbeRig rig(cfg);
  for (uint32_t core : {0u, 1u, 2u, 3u}) {  // every core has its own port
    EXPECT_EQ(rig.probe(core, addr_in_tile(cfg, 9)), 5u) << "core " << core;
  }
}

TEST(ZeroLoadLatency, TopH_SameGroupThreeCycles) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  ProbeRig rig(cfg);
  // Mini: 4 tiles per group; tiles 1..3 share group 0 with tile 0.
  for (uint32_t t : {1u, 2u, 3u}) {
    EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, t)), 3u) << "tile " << t;
  }
}

TEST(ZeroLoadLatency, TopH_RemoteGroupFiveCycles) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  ProbeRig rig(cfg);
  for (uint32_t t : {4u, 8u, 12u, 15u}) {
    EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, t)), 5u) << "tile " << t;
  }
}

TEST(ZeroLoadLatency, PaperScaleContractHolds) {
  // The full 256-core configuration: "all the SPM banks are accessible
  // within 5 cycles" (TopH), 3 inside the local group, 1 in the own tile.
  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  ProbeRig rig(cfg);
  EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, 0)), 1u);
  EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, 3)), 3u);
  EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, 15)), 3u);   // same group (0-15)
  EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, 16)), 5u);   // group 1
  EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, 63)), 5u);   // group 3
  // Exhaustive: no tile is ever farther than 5 cycles.
  for (uint32_t t = 0; t < cfg.num_tiles; ++t) {
    const uint64_t lat = rig.probe(0, addr_in_tile(cfg, t));
    EXPECT_LE(lat, 5u) << "tile " << t;
  }
}

TEST(ZeroLoadLatency, Top1PaperScaleRemoteFiveCycles) {
  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTop1, true);
  ProbeRig rig(cfg);
  for (uint32_t t : {1u, 31u, 63u}) {
    EXPECT_EQ(rig.probe(0, addr_in_tile(cfg, t)), 5u) << "tile " << t;
  }
}

TEST(ZeroLoadLatency, ResponsePayloadIsCorrect) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  ProbeRig rig(cfg);
  rig.cluster.write_word(addr_in_tile(cfg, 9), 0xABCD1234u);
  rig.probe(0, addr_in_tile(cfg, 9));
  EXPECT_EQ(rig.probes[0]->data(), 0xABCD1234u);
}

}  // namespace
}  // namespace mempool
