#include <gtest/gtest.h>

#include "common/bitutil.hpp"
#include "common/fixed_point.hpp"
#include "common/rng.hpp"

namespace mempool {
namespace {

TEST(BitUtil, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 40));
  EXPECT_FALSE(is_pow2((1ull << 40) + 1));
}

TEST(BitUtil, Log2) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_exact(1024), 10u);
}

TEST(BitUtil, BitsExtract) {
  EXPECT_EQ(bits(0xDEADBEEF, 0, 4), 0xFu);
  EXPECT_EQ(bits(0xDEADBEEF, 28, 4), 0xDu);
  EXPECT_EQ(bits(0xFF, 4, 0), 0u);
  EXPECT_EQ(bits(0xFFFFFFFF, 0, 32), 0xFFFFFFFFu);
}

TEST(BitUtil, InsertExtractRoundTripProperty) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.next_u64());
    const unsigned lsb = static_cast<unsigned>(rng.next_below(28));
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(32 - lsb));
    const uint32_t field = static_cast<uint32_t>(rng.next_u64());
    const uint32_t ins = insert_bits(v, lsb, width, field);
    EXPECT_EQ(bits(ins, lsb, width),
              field & (width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1)));
    // Untouched bits stay.
    if (lsb > 0) {
      EXPECT_EQ(bits(ins, 0, lsb), bits(v, 0, lsb));
    }
  }
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(sign_extend(0xFFF, 12), -1);
  EXPECT_EQ(sign_extend(0x7FF, 12), 2047);
  EXPECT_EQ(sign_extend(0x800, 12), -2048);
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
}

TEST(BitUtil, RadixDigit) {
  // 27 = 123 base 4.
  EXPECT_EQ(radix_digit(27, 0, 2), 3u);
  EXPECT_EQ(radix_digit(27, 1, 2), 2u);
  EXPECT_EQ(radix_digit(27, 2, 2), 1u);
}

TEST(BitUtil, AlignUp) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(9, 8), 16u);
}

TEST(FixedPoint, RoundTrip) {
  EXPECT_EQ(to_fixed(1.0, 14), 1 << 14);
  EXPECT_EQ(to_fixed(-1.0, 14), -(1 << 14));
  EXPECT_NEAR(from_fixed(to_fixed(0.7071, 14), 14), 0.7071, 1e-4);
}

TEST(FixedPoint, MulMatchesWideArithmetic) {
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const int32_t a = static_cast<int32_t>(rng.next_u64());
    const int32_t b = static_cast<int32_t>(rng.next_below(1 << 15)) - (1 << 14);
    const int64_t wide = static_cast<int64_t>(a) * b;
    EXPECT_EQ(fx_mul(a, b, 14), static_cast<int32_t>(wide >> 14));
  }
}

}  // namespace
}  // namespace mempool
