// The three paper benchmarks (Section V-C), verified bit-exactly against the
// golden models, across topologies and scrambling settings.

#include <gtest/gtest.h>

#include <tuple>

#include "kernels/conv2d.hpp"
#include "kernels/dct.hpp"
#include "kernels/golden.hpp"
#include "kernels/matmul.hpp"
#include "kernels/runtime.hpp"

namespace mempool {
namespace {

using kernels::KernelProgram;

uint64_t run_on(const ClusterConfig& cfg, const KernelProgram& kp) {
  System sys(cfg);
  return kernels::run_kernel(sys, kp, 10'000'000);
}

using TopoScramble = std::tuple<Topology, bool>;

std::string topo_scramble_name(
    const ::testing::TestParamInfo<TopoScramble>& info) {
  std::string n = topology_name(std::get<0>(info.param));
  if (std::get<1>(info.param)) n += "S";
  return n;
}

class KernelMatrix : public ::testing::TestWithParam<TopoScramble> {};

TEST_P(KernelMatrix, MatmulVerifies) {
  const auto [topo, scramble] = GetParam();
  const ClusterConfig cfg = ClusterConfig::mini(topo, scramble);
  EXPECT_GT(run_on(cfg, kernels::build_matmul(cfg, 16)), 0u);
}

TEST_P(KernelMatrix, Conv2dVerifies) {
  const auto [topo, scramble] = GetParam();
  const ClusterConfig cfg = ClusterConfig::mini(topo, scramble);
  EXPECT_GT(run_on(cfg, kernels::build_conv2d(cfg, 64)), 0u);
}

TEST_P(KernelMatrix, DctVerifies) {
  const auto [topo, scramble] = GetParam();
  const ClusterConfig cfg = ClusterConfig::mini(topo, scramble);
  EXPECT_GT(run_on(cfg, kernels::build_dct(cfg)), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, KernelMatrix,
    ::testing::Combine(::testing::Values(Topology::kTopX, Topology::kTopH,
                                         Topology::kTop4, Topology::kTop1),
                       ::testing::Bool()),
    topo_scramble_name);

TEST(KernelTiled, DoubleBufferedVerifiesOnL2) {
  // Working set in L2, streamed through SPM double buffers by the DMA.
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.memory = MemorySpec{"tcdm+l2"};
  cfg.validate();
  kernels::TiledMatmulParams p;
  p.m = 64;
  p.n = 64;
  p.k = 32;
  p.rb = 32;
  p.cb = 32;
  p.double_buffer = true;
  EXPECT_GT(run_on(cfg, kernels::build_matmul_tiled(cfg, p)), 0u);
}

TEST(KernelTiled, SerializedVariantVerifiesAndIsSlower) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.memory = MemorySpec{"tcdm+l2"};
  cfg.validate();
  kernels::TiledMatmulParams p;
  p.m = 64;
  p.n = 64;
  p.k = 32;
  p.rb = 32;
  p.cb = 32;
  p.double_buffer = true;
  const uint64_t db = run_on(cfg, kernels::build_matmul_tiled(cfg, p));
  p.double_buffer = false;
  const uint64_t serial = run_on(cfg, kernels::build_matmul_tiled(cfg, p));
  EXPECT_GT(db, 0u);
  // Serialized DMA exposes every transfer; double buffering must win.
  EXPECT_LT(db, serial);
}

TEST(KernelTiled, RejectsDmalessMemorySystem) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  EXPECT_THROW(kernels::build_matmul_tiled(cfg, kernels::TiledMatmulParams{}),
               CheckError);
}

TEST(KernelOrdering, ScrambledDctBeatsUnscrambled) {
  // The paper's headline claim for dct: with the scrambling logic all
  // accesses are local; without it the stacks/blocks spread over all tiles.
  const ClusterConfig on = ClusterConfig::mini(Topology::kTopH, true);
  const ClusterConfig off = ClusterConfig::mini(Topology::kTopH, false);
  const uint64_t cy_on = run_on(on, kernels::build_dct(on));
  const uint64_t cy_off = run_on(off, kernels::build_dct(off));
  EXPECT_LT(cy_on, cy_off);
}

TEST(KernelOrdering, TopologyOrderOnMatmul) {
  // matmul is remote-dominated: TopX <= TopH <= Top1, Top4 <= Top1.
  uint64_t cycles[4];
  const Topology topos[] = {Topology::kTopX, Topology::kTopH, Topology::kTop4,
                            Topology::kTop1};
  for (int i = 0; i < 4; ++i) {
    const ClusterConfig cfg = ClusterConfig::mini(topos[i], true);
    cycles[i] = run_on(cfg, kernels::build_matmul(cfg, 16));
  }
  EXPECT_LE(cycles[0], cycles[1]);  // TopX <= TopH
  EXPECT_LE(cycles[1], cycles[3]);  // TopH <= Top1
  EXPECT_LE(cycles[2], cycles[3]);  // Top4 <= Top1
}

TEST(KernelGolden, MatmulHandExample) {
  // 2x2 check of the golden model itself.
  const std::vector<uint32_t> a = {1, 2, 3, 4};
  const std::vector<uint32_t> b = {5, 6, 7, 8};
  const auto c = kernels::golden_matmul(a, b, 2);
  EXPECT_EQ(c, (std::vector<uint32_t>{19, 22, 43, 50}));
}

TEST(KernelGolden, Conv2dHandExample) {
  // 3x3 image, identity kernel (centre weight 1).
  const int32_t w[9] = {0, 0, 0, 0, 1, 0, 0, 0, 0};
  std::vector<uint32_t> img(9);
  for (int i = 0; i < 9; ++i) img[i] = i + 1;
  const auto out = kernels::golden_conv2d(img, 3, 3, w);
  EXPECT_EQ(out[4], 5u);  // centre pixel preserved
  EXPECT_EQ(out[0], 0u);  // border untouched
}

TEST(KernelGolden, DctCoefficientsOrthogonal) {
  // C · Cᵀ ≈ I in Q14: diagonal ≈ 2^14, off-diagonal ≈ 0.
  const auto c = kernels::dct_coefficients_q14();
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      int64_t dot = 0;
      for (int k = 0; k < 8; ++k) {
        dot += static_cast<int64_t>(c[i * 8 + k]) * c[j * 8 + k];
      }
      const double val = static_cast<double>(dot) / (1 << 14);
      if (i == j) {
        EXPECT_NEAR(val, 1 << 14, 40) << i;
      } else {
        EXPECT_NEAR(val, 0, 40) << i << "," << j;
      }
    }
  }
}

TEST(KernelGolden, DctConstantBlockHasOnlyDc) {
  const auto coeffs = kernels::dct_coefficients_q14();
  std::vector<uint32_t> block(64, 100);
  const auto y = kernels::golden_dct8x8(block, coeffs);
  // DC = 8 * 100 (within fixed-point truncation); all AC terms ~ 0.
  EXPECT_NEAR(static_cast<int32_t>(y[0]), 800, 8);
  for (int i = 1; i < 64; ++i) {
    EXPECT_LE(std::abs(static_cast<int32_t>(y[i])), 2) << i;
  }
}

TEST(KernelBuild, RejectsIndivisibleWork) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  EXPECT_THROW(kernels::build_matmul(cfg, 4), CheckError);  // 16 outputs, 64 cores
}

TEST(KernelRuntime, LayoutPlacesBarrierInSameBank) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  const auto layout = kernels::make_runtime_layout(cfg);
  const MemoryLayout mem(cfg);
  const BankLocation count = mem.locate(layout.barrier_count);
  const BankLocation gen = mem.locate(layout.barrier_gen);
  EXPECT_EQ(count.tile, gen.tile);
  EXPECT_EQ(count.bank, gen.bank);
  EXPECT_NE(count.row, gen.row);
}

}  // namespace
}  // namespace mempool
