#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "common/rng.hpp"

namespace mempool {
namespace {

TEST(SplitMix64, KnownAnswer) {
  // Reference values from the canonical SplitMix64 — pins the constants
  // against typo regressions. (sm(0) is the well-known 0xE220A8397B1DCDAF.)
  EXPECT_EQ(splitmix64(0), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(splitmix64(0x1234567ull), 0x3A34CE6380FC0BC5ull);
  EXPECT_EQ(splitmix64(0x1234567ull + 0x9E3779B97F4A7C15ull),
            0xC05A677850DC981Aull);
}

TEST(SplitMix64, AvalanchesNeighboringInputs) {
  // Consecutive inputs must differ in ~32 of 64 output bits: the finalizer
  // destroys the arithmetic structure that plain multiplicative seeding
  // leaks into the generator state.
  const uint64_t probes[] = {0, 1, 1000, 0x9E3779B97F4A7C15ull};
  for (uint64_t x : probes) {
    const int flips = std::popcount(splitmix64(x) ^ splitmix64(x + 1));
    EXPECT_GE(flips, 16) << "x=" << x;
    EXPECT_LE(flips, 48) << "x=" << x;
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_THROW(r.next_below(0), CheckError);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng r(99);
  int counts[8] = {};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BoolProbability) {
  Rng r(11);
  int t = 0;
  for (int i = 0; i < 10000; ++i) t += r.next_bool(0.3);
  EXPECT_NEAR(t / 10000.0, 0.3, 0.03);
}

TEST(Rng, PoissonMeanAndVariance) {
  Rng r(13);
  const double lambda = 0.35;
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double k = r.next_poisson(lambda);
    sum += k;
    sum2 += k * k;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  // Poisson: mean == variance == lambda.
  EXPECT_NEAR(mean, lambda, 0.01);
  EXPECT_NEAR(var, lambda, 0.02);
}

TEST(Rng, PoissonZeroLambda) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_poisson(0.0), 0u);
}

TEST(Rng, ReseedReproduces) {
  Rng r(42);
  const uint64_t first = r.next_u64();
  r.next_u64();
  r.reseed(42);
  EXPECT_EQ(r.next_u64(), first);
}

}  // namespace
}  // namespace mempool
