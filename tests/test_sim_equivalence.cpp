// Cycle-equivalence harness (the correctness bar of the activity-driven
// scheduler): representative fig5/fig6/tab_zero_load points and an
// execution-driven program are run under both the activity-driven and the
// dense engine, and every observable — latency tables, monitor counters,
// fabric traversal/stall counters, core stats, memory contents — must be
// bit-identical.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/system.hpp"
#include "isa/text_asm.hpp"
#include "mem/imem.hpp"
#include "noc/fabric.hpp"
#include "noc/monitor.hpp"
#include "traffic/experiment.hpp"
#include "traffic/generator.hpp"

namespace mempool {
namespace {

TrafficExperimentConfig traffic_cfg(const TopologySpec& topo, bool scramble,
                                    double lambda, double p_local) {
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::mini(topo, scramble);
  e.lambda = lambda;
  e.p_local_seq = p_local;
  e.warmup_cycles = 200;
  e.measure_cycles = 800;
  e.drain_cycles = 400;
  return e;
}

void expect_engines_equivalent(TrafficExperimentConfig cfg,
                               const std::string& what) {
  TrafficCounters ca, cd;
  cfg.dense_engine = false;
  const TrafficPoint pa = run_traffic_point(cfg, &ca);
  cfg.dense_engine = true;
  const TrafficPoint pd = run_traffic_point(cfg, &cd);
  EXPECT_EQ(pa, pd) << what << ": latency/throughput table diverged";
  EXPECT_EQ(ca, cd) << what << ": monitor/fabric counters diverged";
}

// Every topology in the FabricRegistry — the four paper plugins *and*
// anything registered later (TopH2 today) — must pass the equivalence
// battery on its mini configuration.
class EngineEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineEquivalence, Fig5PointsBitIdentical) {
  // Low-λ (the zero-load regime the scheduler accelerates) and a point past
  // Top1's saturation knee (heavy backpressure, retries, blocked arbiters).
  for (double lambda : {0.02, 0.30}) {
    expect_engines_equivalent(
        traffic_cfg(TopologySpec{GetParam()}, false, lambda, 0.0),
        GetParam() + " λ=" + std::to_string(lambda));
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, EngineEquivalence,
                         ::testing::ValuesIn(FabricRegistry::names()),
                         [](const auto& info) { return info.param; });

TEST(EngineEquivalenceFig6, HybridAddressingPointsBitIdentical) {
  for (double p_local : {0.0, 0.5, 1.0}) {
    expect_engines_equivalent(
        traffic_cfg(Topology::kTopH, true, 0.25, p_local),
        "TopH scrambled p_local=" + std::to_string(p_local));
  }
}

TEST(EngineEquivalenceZeroLoad, PaperClusterLowLambda) {
  // One full-size (256-core) point in the tab_zero_load regime.
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::paper(Topology::kTopH, false);
  cfg.lambda = 0.01;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 300;
  cfg.drain_cycles = 200;
  expect_engines_equivalent(cfg, "paper TopH λ=0.01");
}

TEST(EngineEquivalenceExec, SnitchProgramBitIdentical) {
  // Execution-driven equivalence: cores halt at different times (different
  // fabric distances), exercising the sleep path, the I$ wake path, and the
  // late-response delivery into halted cores.
  const std::string src = R"(
    _start:
      csrr t0, mhartid
      slli t1, t0, 2
      li t5, 12
    loop:
      sw t0, 0(t1)
      lw t2, 0(t1)
      addi t1, t1, 256
      addi t5, t5, -1
      bnez t5, loop
      li t6, 0xC0000000
      sw zero, 0(t6)
  )";
  auto run_one = [&](bool dense) {
    const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
    auto sys = std::make_unique<System>(cfg);
    sys->engine().set_dense(dense);
    sys->load_program(isa::assemble_text(src));
    const System::RunResult r = sys->run(100000);
    EXPECT_TRUE(r.all_halted);
    return std::make_pair(std::move(sys), r);
  };
  auto [active, ra] = run_one(false);
  auto [dense, rd] = run_one(true);

  EXPECT_EQ(ra.cycles, rd.cycles);
  const SnitchCore::Stats sa = active->aggregate_core_stats();
  const SnitchCore::Stats sd = dense->aggregate_core_stats();
  EXPECT_EQ(sa.instret, sd.instret);
  EXPECT_EQ(sa.cycles, sd.cycles);
  EXPECT_EQ(sa.stall_fetch, sd.stall_fetch);
  EXPECT_EQ(sa.stall_raw, sd.stall_raw);
  EXPECT_EQ(sa.stall_rob, sd.stall_rob);
  EXPECT_EQ(sa.stall_port, sd.stall_port);
  EXPECT_EQ(sa.stall_ctrl, sd.stall_ctrl);
  EXPECT_EQ(sa.loads_local, sd.loads_local);
  EXPECT_EQ(sa.loads_remote, sd.loads_remote);
  EXPECT_EQ(sa.stores_local, sd.stores_local);
  EXPECT_EQ(sa.stores_remote, sd.stores_remote);
  EXPECT_EQ(sa.resp_latency_sum, sd.resp_latency_sum);
  EXPECT_EQ(sa.resp_count, sd.resp_count);
  for (uint32_t c = 0; c < active->num_cores(); ++c) {
    EXPECT_EQ(active->core(c).exit_code(), dense->core(c).exit_code());
    EXPECT_EQ(active->core(c).pc(), dense->core(c).pc()) << "core " << c;
  }
  EXPECT_EQ(active->read_words(0, 256), dense->read_words(0, 256));
  const auto fa = active->cluster().fabric_stats();
  const auto fd = dense->cluster().fabric_stats();
  EXPECT_EQ(fa.bank_accesses, fd.bank_accesses);
  EXPECT_EQ(fa.bank_stall_cycles, fd.bank_stall_cycles);
  EXPECT_EQ(fa.icache_hits, fd.icache_hits);
  EXPECT_EQ(fa.icache_misses, fd.icache_misses);
  EXPECT_EQ(fa.icache_refills, fd.icache_refills);
  EXPECT_EQ(fa.butterfly_traversals, fd.butterfly_traversals);
  EXPECT_EQ(fa.group_local_traversals, fd.group_local_traversals);
}

TEST(EngineEquivalenceWork, ActiveSetEvaluatesStrictlyLess) {
  // The point of the scheduler: at low load the active engine must evaluate
  // far fewer components than the dense sweep (deterministic work proxy for
  // the ≥3x wall-clock target measured by bench/micro_sim_speed).
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, false);
  auto build_and_run = [&](bool dense) {
    InstrMem imem(4096);
    Engine engine;
    engine.set_dense(dense);
    Cluster cluster(cfg, &imem);
    LatencyMonitor monitor(0);
    TrafficConfig tcfg;
    tcfg.lambda = 0.02;
    tcfg.stop_generation_at = 1500;
    std::vector<std::unique_ptr<TrafficGenerator>> gens;
    std::vector<Client*> clients;
    for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
      gens.push_back(std::make_unique<TrafficGenerator>(
          "gen" + std::to_string(c), static_cast<uint16_t>(c),
          static_cast<uint16_t>(c / cfg.cores_per_tile), cfg,
          &cluster.layout(), &engine, tcfg, &monitor));
      clients.push_back(gens.back().get());
    }
    cluster.attach_clients(clients);
    cluster.build(engine);
    engine.run(2000);
    return std::make_pair(engine.evaluations(), monitor.completed());
  };
  const auto [active_evals, active_completed] = build_and_run(false);
  const auto [dense_evals, dense_completed] = build_and_run(true);
  EXPECT_EQ(active_completed, dense_completed);
  EXPECT_LT(active_evals * 3, dense_evals)
      << "active set should do <1/3 of the dense evaluations at λ=0.02";
}

}  // namespace
}  // namespace mempool
