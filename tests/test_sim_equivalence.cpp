// Cycle-equivalence harness (the correctness bar of the activity-driven and
// sharded schedulers): representative fig5/fig6/tab_zero_load points and an
// execution-driven program are run under the activity-driven, the dense, and
// the sharded engine (across sim-thread counts), and every observable —
// latency tables, monitor counters, fabric traversal/stall counters, core
// stats, memory contents — must be bit-identical.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/cluster.hpp"
#include "core/system.hpp"
#include "isa/text_asm.hpp"
#include "kernels/golden.hpp"
#include "kernels/matmul.hpp"
#include "kernels/runtime.hpp"
#include "mem/imem.hpp"
#include "mem/memsys.hpp"
#include "noc/fabric.hpp"
#include "noc/monitor.hpp"
#include "traffic/experiment.hpp"
#include "traffic/generator.hpp"

namespace mempool {
namespace {

TrafficExperimentConfig traffic_cfg(const TopologySpec& topo, bool scramble,
                                    double lambda, double p_local) {
  TrafficExperimentConfig e;
  e.cluster = ClusterConfig::mini(topo, scramble);
  e.lambda = lambda;
  e.p_local_seq = p_local;
  e.warmup_cycles = 200;
  e.measure_cycles = 800;
  e.drain_cycles = 400;
  return e;
}

void expect_engines_equivalent(TrafficExperimentConfig cfg,
                               const std::string& what) {
  TrafficCounters ca, cd;
  cfg.engine = EngineMode::kActive;
  const TrafficPoint pa = run_traffic_point(cfg, &ca);
  cfg.engine = EngineMode::kDense;
  const TrafficPoint pd = run_traffic_point(cfg, &cd);
  EXPECT_EQ(pa, pd) << what << ": latency/throughput table diverged";
  EXPECT_EQ(ca, cd) << what << ": monitor/fabric counters diverged";
}

void expect_sharded_equivalent(TrafficExperimentConfig cfg,
                               unsigned sim_threads, const std::string& what) {
  TrafficCounters ca, cs;
  cfg.engine = EngineMode::kActive;
  const TrafficPoint pa = run_traffic_point(cfg, &ca);
  cfg.engine = EngineMode::kSharded;
  cfg.sim_threads = sim_threads;
  const TrafficPoint ps = run_traffic_point(cfg, &cs);
  EXPECT_EQ(pa, ps) << what << ": latency/throughput table diverged";
  EXPECT_EQ(ca, cs) << what << ": monitor/fabric counters diverged";
}

// Every topology in the FabricRegistry — the four paper plugins *and*
// anything registered later (TopH2 today) — must pass the equivalence
// battery on its mini configuration.
class EngineEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(EngineEquivalence, Fig5PointsBitIdentical) {
  // Low-λ (the zero-load regime the scheduler accelerates) and a point past
  // Top1's saturation knee (heavy backpressure, retries, blocked arbiters).
  for (double lambda : {0.02, 0.30}) {
    expect_engines_equivalent(
        traffic_cfg(TopologySpec{GetParam()}, false, lambda, 0.0),
        GetParam() + " λ=" + std::to_string(lambda));
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, EngineEquivalence,
                         ::testing::ValuesIn(FabricRegistry::names()),
                         [](const auto& tpinfo) { return tpinfo.param; });

// Sharded-vs-active bit-identity over every registered topology × sim-thread
// count × load. Thread count 1 exercises the inline (leader-only) lanes path,
// 2 a partially-helped gang, 8 more threads than any built-in fabric has
// shards (the gang caps at the shard count). The flat fabrics run the
// sharded engine degenerately on one shard — also worth pinning.
class ShardedEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, unsigned>> {};

TEST_P(ShardedEquivalence, Fig5PointsBitIdentical) {
  const auto& [topo, threads] = GetParam();
  for (double lambda : {0.02, 0.30}) {
    expect_sharded_equivalent(
        traffic_cfg(TopologySpec{topo}, false, lambda, 0.0), threads,
        topo + " ×" + std::to_string(threads) +
            " λ=" + std::to_string(lambda));
  }
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesTimesThreads, ShardedEquivalence,
    ::testing::Combine(::testing::ValuesIn(FabricRegistry::names()),
                       ::testing::Values(1u, 2u, 8u)),
    [](const auto& tpinfo) {
      return std::get<0>(tpinfo.param) + "_t" +
             std::to_string(std::get<1>(tpinfo.param));
    });

TEST(ShardedEquivalenceScrambled, HybridAddressingBitIdentical) {
  // Scrambled addressing reshuffles which banks (and therefore shards) the
  // generators hit; pin the boundary-buffer backpressure snapshot under it.
  expect_sharded_equivalent(traffic_cfg(Topology::kTopH, true, 0.25, 0.5), 8,
                            "TopH scrambled sharded");
}

TEST(ShardedEquivalencePaper, PaperClusterMidLambda) {
  // One full-size (256-core) point at the λ = 0.05 perf-target load.
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::paper(Topology::kTopH, false);
  cfg.lambda = 0.05;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 300;
  cfg.drain_cycles = 200;
  expect_sharded_equivalent(cfg, 8, "paper TopH sharded λ=0.05");
}

// The full fabric × memory × engine-mode cross-product: every registered
// memory system must be physics-neutral for generator traffic (the DMA
// engines sit idle) and bit-identical across all three engine modes on
// every registered topology.
class MemoryEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(MemoryEquivalence, TrafficPointsBitIdentical) {
  const auto& [topo, mem] = GetParam();
  TrafficExperimentConfig cfg =
      traffic_cfg(TopologySpec{topo}, true, 0.25, 0.5);
  cfg.cluster.memory = MemorySpec{mem};
  cfg.cluster.validate();
  expect_engines_equivalent(cfg, topo + " mem=" + mem);
  expect_sharded_equivalent(cfg, 8, topo + " sharded mem=" + mem);
}

INSTANTIATE_TEST_SUITE_P(
    FabricsTimesMemories, MemoryEquivalence,
    ::testing::Combine(::testing::ValuesIn(FabricRegistry::names()),
                       ::testing::ValuesIn(MemoryRegistry::names())),
    [](const auto& tpinfo) {
      std::string n =
          std::get<0>(tpinfo.param) + "_" + std::get<1>(tpinfo.param);
      for (char& c : n) {
        if (c == '+') c = '_';
      }
      return n;
    });

TEST(ShardedEquivalenceDma, SnitchTiledMatmulBitIdentical) {
  // The DMA acceptance bar for the engine-equivalence suite: a full tiled,
  // double-buffered DMA matmul on the mini tcdm+l2 cluster — cycles, core
  // stats (incl. DMA submissions), result memory in L2, and the memory
  // hierarchy's own counters all bit-identical between the active, dense,
  // and 8-thread sharded engines. Slice commands and completions cross the
  // shard commit barrier here; burst timers run on the per-shard wheels.
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.memory = MemorySpec{"tcdm+l2"};
  cfg.validate();
  kernels::TiledMatmulParams tp;
  tp.m = tp.n = 128;
  tp.k = 32;
  tp.rb = tp.cb = 32;
  const kernels::KernelProgram kp = kernels::build_matmul_tiled(cfg, tp);
  auto run_one = [&](EngineMode mode) {
    auto sys = std::make_unique<System>(cfg);
    sys->configure_engine(mode, mode == EngineMode::kSharded ? 8 : 1);
    const uint64_t cycles = kernels::run_kernel(*sys, kp, 50'000'000);
    return std::make_pair(std::move(sys), cycles);
  };
  auto [active, ca] = run_one(EngineMode::kActive);
  auto [dense, cd] = run_one(EngineMode::kDense);
  auto [sharded, cs] = run_one(EngineMode::kSharded);

  EXPECT_EQ(ca, cd) << "dense kernel cycle count diverged";
  EXPECT_EQ(ca, cs) << "sharded kernel cycle count diverged";
  const SnitchCore::Stats sa = active->aggregate_core_stats();
  const SnitchCore::Stats ss = sharded->aggregate_core_stats();
  EXPECT_EQ(sa.instret, ss.instret);
  EXPECT_EQ(sa.cycles, ss.cycles);
  EXPECT_EQ(sa.stall_fetch, ss.stall_fetch);
  EXPECT_EQ(sa.stall_raw, ss.stall_raw);
  EXPECT_EQ(sa.stall_rob, ss.stall_rob);
  EXPECT_EQ(sa.stall_port, ss.stall_port);
  EXPECT_EQ(sa.amos, ss.amos);
  EXPECT_EQ(sa.dma_submits, ss.dma_submits);
  EXPECT_GT(sa.dma_submits, 0u);
  // The C matrix in L2, word for word.
  const uint32_t l2_c = 0xA000'0000u + (tp.m + tp.n) * tp.k * 4;
  EXPECT_EQ(active->read_words(l2_c, tp.m * tp.n),
            sharded->read_words(l2_c, tp.m * tp.n));
  EXPECT_EQ(active->read_words(l2_c, tp.m * tp.n),
            dense->read_words(l2_c, tp.m * tp.n));
  // The memory hierarchy's counters (descriptors, slices, bursts, words,
  // busy windows, L2 traffic) — MemoryStats compares bit-for-bit.
  EXPECT_EQ(active->cluster().memory_stats(), dense->cluster().memory_stats());
  EXPECT_EQ(active->cluster().memory_stats(),
            sharded->cluster().memory_stats());
  EXPECT_GT(active->cluster().memory_stats().dma_words_in, 0u);
  EXPECT_GT(sharded->engine().parallel_cycles(), 0u);
}

TEST(EngineEquivalenceFig6, HybridAddressingPointsBitIdentical) {
  for (double p_local : {0.0, 0.5, 1.0}) {
    expect_engines_equivalent(
        traffic_cfg(Topology::kTopH, true, 0.25, p_local),
        "TopH scrambled p_local=" + std::to_string(p_local));
  }
}

TEST(EngineEquivalenceZeroLoad, PaperClusterLowLambda) {
  // One full-size (256-core) point in the tab_zero_load regime.
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::paper(Topology::kTopH, false);
  cfg.lambda = 0.01;
  cfg.warmup_cycles = 100;
  cfg.measure_cycles = 300;
  cfg.drain_cycles = 200;
  expect_engines_equivalent(cfg, "paper TopH λ=0.01");
}

TEST(EngineEquivalenceExec, SnitchProgramBitIdentical) {
  // Execution-driven equivalence: cores halt at different times (different
  // fabric distances), exercising the sleep path, the I$ wake path, and the
  // late-response delivery into halted cores.
  const std::string src = R"(
    _start:
      csrr t0, mhartid
      slli t1, t0, 2
      li t5, 12
    loop:
      sw t0, 0(t1)
      lw t2, 0(t1)
      addi t1, t1, 256
      addi t5, t5, -1
      bnez t5, loop
      li t6, 0xC0000000
      sw zero, 0(t6)
  )";
  auto run_one = [&](EngineMode mode) {
    const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
    auto sys = std::make_unique<System>(cfg);
    sys->configure_engine(mode, mode == EngineMode::kSharded ? 8 : 1);
    sys->load_program(isa::assemble_text(src));
    const System::RunResult r = sys->run(100000);
    EXPECT_TRUE(r.all_halted);
    return std::make_pair(std::move(sys), r);
  };
  auto [active, ra] = run_one(EngineMode::kActive);
  auto [dense, rd] = run_one(EngineMode::kDense);

  EXPECT_EQ(ra.cycles, rd.cycles);
  const SnitchCore::Stats sa = active->aggregate_core_stats();
  const SnitchCore::Stats sd = dense->aggregate_core_stats();
  EXPECT_EQ(sa.instret, sd.instret);
  EXPECT_EQ(sa.cycles, sd.cycles);
  EXPECT_EQ(sa.stall_fetch, sd.stall_fetch);
  EXPECT_EQ(sa.stall_raw, sd.stall_raw);
  EXPECT_EQ(sa.stall_rob, sd.stall_rob);
  EXPECT_EQ(sa.stall_port, sd.stall_port);
  EXPECT_EQ(sa.stall_ctrl, sd.stall_ctrl);
  EXPECT_EQ(sa.loads_local, sd.loads_local);
  EXPECT_EQ(sa.loads_remote, sd.loads_remote);
  EXPECT_EQ(sa.stores_local, sd.stores_local);
  EXPECT_EQ(sa.stores_remote, sd.stores_remote);
  EXPECT_EQ(sa.resp_latency_sum, sd.resp_latency_sum);
  EXPECT_EQ(sa.resp_count, sd.resp_count);
  for (uint32_t c = 0; c < active->num_cores(); ++c) {
    EXPECT_EQ(active->core(c).exit_code(), dense->core(c).exit_code());
    EXPECT_EQ(active->core(c).pc(), dense->core(c).pc()) << "core " << c;
  }
  EXPECT_EQ(active->read_words(0, 256), dense->read_words(0, 256));
  const auto fa = active->cluster().fabric_stats();
  const auto fd = dense->cluster().fabric_stats();
  EXPECT_EQ(fa.bank_accesses, fd.bank_accesses);
  EXPECT_EQ(fa.bank_stall_cycles, fd.bank_stall_cycles);
  EXPECT_EQ(fa.icache_hits, fd.icache_hits);
  EXPECT_EQ(fa.icache_misses, fd.icache_misses);
  EXPECT_EQ(fa.icache_refills, fd.icache_refills);
  EXPECT_EQ(fa.butterfly_traversals, fd.butterfly_traversals);
  EXPECT_EQ(fa.group_local_traversals, fd.group_local_traversals);
}

TEST(ShardedEquivalenceExec, SnitchMatmul256CoresBitIdentical) {
  // The acceptance bar for the sharded engine on execution-driven runs: a
  // full matmul kernel on the 256-core paper cluster, active vs sharded on 8
  // threads — cycles, aggregate core stats, result memory, and fabric
  // counters all bit-identical. Kernel barriers, I$ refills, AMOs, and the
  // cross-group response traffic all cross the commit barrier here.
  const ClusterConfig cfg = ClusterConfig::paper(Topology::kTopH, true);
  const kernels::KernelProgram kp = kernels::build_matmul(cfg, 64);
  auto run_one = [&](EngineMode mode) {
    auto sys = std::make_unique<System>(cfg);
    sys->configure_engine(mode, mode == EngineMode::kSharded ? 8 : 1);
    const uint64_t cycles = kernels::run_kernel(*sys, kp, 50'000'000);
    return std::make_pair(std::move(sys), cycles);
  };
  auto [active, ca] = run_one(EngineMode::kActive);
  auto [sharded, cs] = run_one(EngineMode::kSharded);

  EXPECT_EQ(ca, cs) << "kernel cycle count diverged";
  const SnitchCore::Stats sa = active->aggregate_core_stats();
  const SnitchCore::Stats ss = sharded->aggregate_core_stats();
  EXPECT_EQ(sa.instret, ss.instret);
  EXPECT_EQ(sa.cycles, ss.cycles);
  EXPECT_EQ(sa.stall_fetch, ss.stall_fetch);
  EXPECT_EQ(sa.stall_raw, ss.stall_raw);
  EXPECT_EQ(sa.stall_rob, ss.stall_rob);
  EXPECT_EQ(sa.stall_port, ss.stall_port);
  EXPECT_EQ(sa.stall_ctrl, ss.stall_ctrl);
  EXPECT_EQ(sa.loads_local, ss.loads_local);
  EXPECT_EQ(sa.loads_remote, ss.loads_remote);
  EXPECT_EQ(sa.stores_local, ss.stores_local);
  EXPECT_EQ(sa.stores_remote, ss.stores_remote);
  EXPECT_EQ(sa.amos, ss.amos);
  EXPECT_EQ(sa.resp_latency_sum, ss.resp_latency_sum);
  EXPECT_EQ(sa.resp_count, ss.resp_count);
  EXPECT_EQ(active->read_words(0, 4096), sharded->read_words(0, 4096));
  const auto fa = active->cluster().fabric_stats();
  const auto fs = sharded->cluster().fabric_stats();
  EXPECT_EQ(fa.tile_req_traversals, fs.tile_req_traversals);
  EXPECT_EQ(fa.tile_resp_traversals, fs.tile_resp_traversals);
  EXPECT_EQ(fa.dir_traversals, fs.dir_traversals);
  EXPECT_EQ(fa.remote_resp_traversals, fs.remote_resp_traversals);
  EXPECT_EQ(fa.group_local_traversals, fs.group_local_traversals);
  EXPECT_EQ(fa.butterfly_traversals, fs.butterfly_traversals);
  EXPECT_EQ(fa.bank_accesses, fs.bank_accesses);
  EXPECT_EQ(fa.bank_stall_cycles, fs.bank_stall_cycles);
  EXPECT_EQ(fa.icache_hits, fs.icache_hits);
  EXPECT_EQ(fa.icache_misses, fs.icache_misses);
  EXPECT_EQ(fa.icache_refills, fs.icache_refills);
  // The run must actually have been parallel-dispatched (a busy 256-core
  // kernel is far above the inline threshold).
  EXPECT_GT(sharded->engine().parallel_cycles(), 0u);
}

// Checkpoint/restore equivalence: for each engine mode, a run that is
// chunked by periodic checkpoints and a run resumed from a mid-flight
// mempool.ckpt.v1 image must both be bit-identical to the plain
// uninterrupted run — the tentpole contract that makes crash recovery in
// the sweep service safe.
class CheckpointEquivalence : public ::testing::TestWithParam<EngineMode> {};

TEST_P(CheckpointEquivalence, RestoredRunBitIdentical) {
  TrafficExperimentConfig cfg =
      traffic_cfg(Topology::kTopH, true, 0.25, 0.5);
  cfg.engine = GetParam();
  if (cfg.engine == EngineMode::kSharded) cfg.sim_threads = 4;

  TrafficCounters c_plain;
  const TrafficPoint p_plain = run_traffic_point(cfg, &c_plain);

  // Chunked: checkpoint every 300 cycles, keep the image nearest mid-run.
  std::string image;
  CheckpointOptions save;
  save.checkpoint_every = 300;
  save.key = "equiv";
  save.on_checkpoint = [&](uint64_t cycle, const std::string& img) {
    if (cycle == 600) image = img;
  };
  TrafficCounters c_chunked;
  const TrafficPoint p_chunked = run_traffic_point(cfg, save, &c_chunked);
  EXPECT_EQ(p_plain, p_chunked) << "chunked run diverged";
  EXPECT_EQ(c_plain, c_chunked) << "chunked counters diverged";
  ASSERT_FALSE(image.empty()) << "no checkpoint captured at cycle 600";

  // Restored: resume from the cycle-600 image, finish the point.
  CheckpointOptions resume;
  resume.key = "equiv";
  resume.restore_from = &image;
  TrafficCounters c_res;
  const TrafficPoint p_res = run_traffic_point(cfg, resume, &c_res);
  EXPECT_EQ(p_plain, p_res) << "restored run diverged";
  EXPECT_EQ(c_plain, c_res) << "restored counters diverged";
}

INSTANTIATE_TEST_SUITE_P(Engines, CheckpointEquivalence,
                         ::testing::Values(EngineMode::kActive,
                                           EngineMode::kDense,
                                           EngineMode::kSharded),
                         [](const auto& tpinfo) {
                           return std::string(engine_mode_name(tpinfo.param));
                         });

TEST(CheckpointEquivalence2, ActiveImageResumesUnderDenseNotSharded) {
  // The snapshot captures architectural state, not scheduler bookkeeping:
  // an image saved under the active engine resumes bit-identically under
  // the dense engine (same monitor layout). The sharded engine keeps one
  // monitor *per shard* — its partial sums cannot be reconstructed from a
  // sequential image, so that resume must be *refused* by the
  // monitor-count guard, never silently diverged.
  TrafficExperimentConfig cfg =
      traffic_cfg(Topology::kTopH, false, 0.15, 0.0);
  TrafficCounters c_plain;
  const TrafficPoint p_plain = run_traffic_point(cfg, &c_plain);

  std::string image;
  CheckpointOptions save;
  save.checkpoint_every = 500;
  save.key = "xengine";
  save.on_checkpoint = [&](uint64_t cycle, const std::string& img) {
    if (cycle == 500) image = img;
  };
  run_traffic_point(cfg, save);
  ASSERT_FALSE(image.empty());

  TrafficExperimentConfig dense = cfg;
  dense.engine = EngineMode::kDense;
  CheckpointOptions resume;
  resume.key = "xengine";
  resume.restore_from = &image;
  TrafficCounters c_res;
  const TrafficPoint p_res = run_traffic_point(dense, resume, &c_res);
  EXPECT_EQ(p_plain, p_res) << "dense resume from active image diverged";
  EXPECT_EQ(c_plain, c_res) << "dense resume counters diverged";

  TrafficExperimentConfig sharded = cfg;
  sharded.engine = EngineMode::kSharded;
  sharded.sim_threads = 4;
  EXPECT_THROW(run_traffic_point(sharded, resume), CheckError);
}

TEST(CheckpointEquivalence2, MismatchedKeyAndConfigAreRejected) {
  TrafficExperimentConfig cfg =
      traffic_cfg(Topology::kTopH, false, 0.1, 0.0);
  std::string image;
  CheckpointOptions save;
  save.checkpoint_every = 400;
  save.key = "point-A";
  save.on_checkpoint = [&](uint64_t, const std::string& img) { image = img; };
  run_traffic_point(cfg, save);
  ASSERT_FALSE(image.empty());

  // Wrong key: refused before any state is loaded.
  CheckpointOptions wrong_key;
  wrong_key.key = "point-B";
  wrong_key.restore_from = &image;
  EXPECT_THROW(run_traffic_point(cfg, wrong_key), CheckError);

  // Wrong topology: component list differs, refused.
  TrafficExperimentConfig other =
      traffic_cfg(Topology::kTop1, false, 0.1, 0.0);
  CheckpointOptions same_key;
  same_key.key = "point-A";
  same_key.restore_from = &image;
  EXPECT_THROW(run_traffic_point(other, same_key), CheckError);

  // Torn image: rejected by the artifact CRC/length validation.
  const std::string torn = image.substr(0, image.size() / 2);
  CheckpointOptions torn_opts;
  torn_opts.key = "point-A";
  torn_opts.restore_from = &torn;
  EXPECT_THROW(run_traffic_point(cfg, torn_opts), CheckError);
}

TEST(ShardedEquivalenceWork, ShardedEvaluatesExactlyLikeActive) {
  // The scheduler-work counters themselves must match: the sharded engine
  // evaluates exactly the components the active engine would, no more.
  TrafficExperimentConfig cfg = traffic_cfg(Topology::kTopH, false, 0.1, 0.0);
  auto evals = [&](EngineMode mode) {
    InstrMem imem(4096);
    Engine engine;
    Cluster cluster(cfg.cluster, &imem);
    if (mode == EngineMode::kSharded) {
      engine.set_sharded(cluster.num_shards(), nullptr);
    }
    LatencyMonitor monitor(0);
    TrafficConfig tcfg;
    tcfg.lambda = cfg.lambda;
    tcfg.stop_generation_at = 1000;
    std::vector<std::unique_ptr<TrafficGenerator>> gens;
    std::vector<Client*> clients;
    for (uint32_t c = 0; c < cfg.cluster.num_cores(); ++c) {
      gens.push_back(std::make_unique<TrafficGenerator>(
          "gen" + std::to_string(c), static_cast<uint16_t>(c),
          static_cast<uint16_t>(c / cfg.cluster.cores_per_tile), cfg.cluster,
          &cluster.layout(), &engine, tcfg, &monitor));
      clients.push_back(gens.back().get());
    }
    cluster.attach_clients(clients);
    cluster.build(engine);
    engine.run(1500);
    return std::make_tuple(engine.evaluations(), engine.commits(),
                           monitor.completed());
  };
  EXPECT_EQ(evals(EngineMode::kActive), evals(EngineMode::kSharded));
}

TEST(EngineEquivalenceWork, ActiveSetEvaluatesStrictlyLess) {
  // The point of the scheduler: at low load the active engine must evaluate
  // far fewer components than the dense sweep (deterministic work proxy for
  // the ≥3x wall-clock target measured by bench/micro_sim_speed).
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, false);
  auto build_and_run = [&](bool dense) {
    InstrMem imem(4096);
    Engine engine;
    engine.set_dense(dense);
    Cluster cluster(cfg, &imem);
    LatencyMonitor monitor(0);
    TrafficConfig tcfg;
    tcfg.lambda = 0.02;
    tcfg.stop_generation_at = 1500;
    std::vector<std::unique_ptr<TrafficGenerator>> gens;
    std::vector<Client*> clients;
    for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
      gens.push_back(std::make_unique<TrafficGenerator>(
          "gen" + std::to_string(c), static_cast<uint16_t>(c),
          static_cast<uint16_t>(c / cfg.cores_per_tile), cfg,
          &cluster.layout(), &engine, tcfg, &monitor));
      clients.push_back(gens.back().get());
    }
    cluster.attach_clients(clients);
    cluster.build(engine);
    engine.run(2000);
    return std::make_pair(engine.evaluations(), monitor.completed());
  };
  const auto [active_evals, active_completed] = build_and_run(false);
  const auto [dense_evals, dense_completed] = build_and_run(true);
  EXPECT_EQ(active_completed, dense_completed);
  EXPECT_LT(active_evals * 3, dense_evals)
      << "active set should do <1/3 of the dense evaluations at λ=0.02";
}

}  // namespace
}  // namespace mempool
