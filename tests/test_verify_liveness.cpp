// Liveness layer: static CDG rules D7-D9 on malformed mini-fabrics (each
// passes the structural rules D1-D6 and violates exactly one liveness rule),
// the engine's deterministic progress watchdog (fires at exactly the
// configured horizon, identically under active / dense / sharded), the
// mempool.liveness.v1 report schema, and the SimService path where a wedged
// point answers ok=false with the stall attribution instead of hanging.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "serve/service.hpp"
#include "sim/component.hpp"
#include "sim/elastic_buffer.hpp"
#include "sim/engine.hpp"
#include "verify/drc.hpp"
#include "verify/liveness.hpp"

namespace mempool {
namespace {

std::vector<std::string> rules(const verify::DrcReport& report) {
  std::vector<std::string> out;
  out.reserve(report.violations.size());
  for (const verify::DrcViolation& v : report.violations) out.push_back(v.rule);
  return out;
}

// ---------------------------------------------------------------------------
// Fixture A — protocol-free deadlock: two stages moving items around a ring
// of two bounded registered buffers. Statically the CDG is the 2-cycle
// bufA -> bufB -> bufA with no capacity break (D7); dynamically, once both
// buffers are full neither stage can move and the watchdog must fire.
// ---------------------------------------------------------------------------

class LoopStage final : public Component {
 public:
  LoopStage(const std::string& name, ElasticBuffer<int>* in,
            ElasticBuffer<int>* out)
      : Component(name), in_(in), out_(out) {}
  void evaluate(uint64_t /*cycle*/) override {
    if (!in_->empty() && out_->can_accept()) out_->push(in_->pop());
  }
  bool idle() const override { return in_->empty(); }
  void describe(GraphVisitor& v) const override {
    v.reads(in_, "in");
    v.writes_buffer(out_, "out");
  }

 private:
  ElasticBuffer<int>* in_;
  ElasticBuffer<int>* out_;
};

struct RingFixture {
  ElasticBuffer<int> buf_a{BufferMode::kRegistered, 2};
  ElasticBuffer<int> buf_b{BufferMode::kRegistered, 2};
  LoopStage a{"A", &buf_a, &buf_b};
  LoopStage b{"B", &buf_b, &buf_a};

  void wire(Engine* e) {
    buf_a.set_consumer(&a, "A");
    buf_b.set_consumer(&b, "B");
    e->add_component(&a);
    e->add_component(&b);
    e->add_clocked(&buf_a);
    e->add_clocked(&buf_b);
  }

  /// Fill both buffers to capacity (registered buffers stage one item per
  /// cycle, so two fill rounds). After this the ring is wedged: each stage
  /// sees a non-empty input and a full output, forever.
  void wedge(Engine* e) {
    for (int round = 0; round < 2; ++round) {
      buf_a.push(round);
      buf_b.push(round);
      e->step();
    }
    ASSERT_FALSE(buf_a.can_accept());
    ASSERT_FALSE(buf_b.can_accept());
  }
};

TEST(LivenessRules, D7CapacityUnbrokenCycle) {
  Engine e;
  RingFixture f;
  f.wire(&e);
  const verify::DrcReport report = verify::run_drc(e, 1);
  ASSERT_EQ(rules(report), std::vector<std::string>{"D7"}) << report.summary();
  // The violation names the full cycle with capacities, not just one buffer.
  const std::string& edge = report.violations[0].edge;
  EXPECT_NE(edge.find("A.in"), std::string::npos) << edge;
  EXPECT_NE(edge.find("B.in"), std::string::npos) << edge;
  EXPECT_NE(edge.find("cap 2"), std::string::npos) << edge;
}

TEST(LivenessRules, D7CdgExtractionMatchesTheWiring) {
  Engine e;
  RingFixture f;
  f.wire(&e);
  const verify::Cdg cdg = verify::extract_cdg(e);
  ASSERT_EQ(cdg.buffers.size(), 2u);
  ASSERT_EQ(cdg.edges.size(), 2u);
  for (const verify::CdgEdge& edge : cdg.edges) {
    EXPECT_TRUE(edge.blocking);  // capacity 2 targets: both edges can wedge
    EXPECT_NE(edge.from, edge.to);
    EXPECT_EQ(cdg.capacity[edge.to], 2u);
  }
}

TEST(LivenessRules, D7BrokenByUnconditionalSink) {
  // Same ring, but stage B declares it drains its input unconditionally
  // (an ideal-bridge-style guarantee): the B.in -> A.in dependency edge
  // disappears and the cycle with it.
  class SinkingStage final : public Component {
   public:
    SinkingStage(const std::string& name, ElasticBuffer<int>* in,
                 ElasticBuffer<int>* out)
        : Component(name), in_(in), out_(out) {}
    void evaluate(uint64_t /*cycle*/) override {
      while (!in_->empty()) out_->push(in_->pop());  // out_ is unbounded
    }
    bool idle() const override { return in_->empty(); }
    void describe(GraphVisitor& v) const override {
      v.reads(in_, "in");
      v.writes_buffer(out_, "out");
      v.sinks_unconditionally(in_, "in");
    }

   private:
    ElasticBuffer<int>* in_;
    ElasticBuffer<int>* out_;
  };

  Engine e;
  ElasticBuffer<int> buf_a(BufferMode::kRegistered, 2);
  ElasticBuffer<int> buf_b(BufferMode::kRegistered, 0);  // unbounded
  LoopStage a("A", &buf_a, &buf_b);
  SinkingStage b("B", &buf_b, &buf_a);
  buf_a.set_consumer(&a, "A");
  buf_b.set_consumer(&b, "B");
  e.add_component(&a);
  e.add_component(&b);
  e.add_clocked(&buf_a);
  e.add_clocked(&buf_b);
  const verify::DrcReport report = verify::run_drc(e, 1);
  EXPECT_TRUE(report.clean()) << report.summary();
}

// ---------------------------------------------------------------------------
// Fixture B — starvation: a fixed-priority arbiter whose low-priority input
// sits on a cyclic path. The high-priority generator never pauses, so the
// loop traffic parked in `lo` is never granted (D8 statically, a stalled
// `lo` dynamically).
// ---------------------------------------------------------------------------

class PriorityArb : public Component {
 public:
  PriorityArb(const std::string& name, ElasticBuffer<int>* hi,
              ElasticBuffer<int>* lo, ElasticBuffer<int>* out)
      : Component(name), hi_(hi), lo_(lo), out_(out) {}
  void evaluate(uint64_t /*cycle*/) override {
    if (!out_->can_accept()) return;
    if (!hi_->empty()) {
      out_->push(hi_->pop());  // strict priority: hi wins whenever present
    } else if (!lo_->empty()) {
      out_->push(lo_->pop());
    }
  }
  bool idle() const override { return hi_->empty() && lo_->empty(); }
  void describe(GraphVisitor& v) const override {
    v.arbitration(ArbiterFairness::kFixedPriority);
    v.reads(hi_, "hi");
    v.reads(lo_, "lo");
    v.writes_buffer(out_, "out");
  }

 private:
  ElasticBuffer<int>* hi_;
  ElasticBuffer<int>* lo_;
  ElasticBuffer<int>* out_;
};

class Feeder final : public Component {
 public:
  Feeder(const std::string& name, ElasticBuffer<int>* out)
      : Component(name), out_(out) {}
  void evaluate(uint64_t cycle) override {
    if (out_->can_accept()) out_->push(static_cast<int>(cycle));
    wake();  // stay hot: one packet per cycle forever
  }
  bool idle() const override { return false; }
  void describe(GraphVisitor& v) const override {
    v.self_ticking();
    v.writes_buffer(out_, "out");
  }

 private:
  ElasticBuffer<int>* out_;
};

struct StarvationFixture {
  ElasticBuffer<int> hi{BufferMode::kCombinational, 2};
  ElasticBuffer<int> lo{BufferMode::kRegistered, 0};  // unbounded: D7-clean
  ElasticBuffer<int> out{BufferMode::kCombinational, 2};
  Feeder gen{"GEN", &hi};
  std::unique_ptr<PriorityArb> arb =
      std::make_unique<PriorityArb>("ARB", &hi, &lo, &out);
  LoopStage loop{"LOOP", &out, &lo};

  void wire(Engine* e) {
    hi.set_consumer(arb.get(), "ARB");
    lo.set_consumer(arb.get(), "ARB");
    out.set_consumer(&loop, "LOOP");
    e->add_component(&gen);
    e->add_component(arb.get());
    e->add_component(&loop);
    e->add_clocked(&lo);
  }
};

TEST(LivenessRules, D8FixedPriorityInputOnCycle) {
  Engine e;
  StarvationFixture f;
  f.wire(&e);
  const verify::DrcReport report = verify::run_drc(e, 1);
  ASSERT_EQ(rules(report), std::vector<std::string>{"D8"}) << report.summary();
  EXPECT_EQ(report.violations[0].component, "ARB");
  // The starved buffer (the arbiter's cyclic low-priority input) is named.
  EXPECT_NE(report.violations[0].edge.find("ARB.lo"), std::string::npos)
      << report.violations[0].edge;
}

TEST(LivenessRules, D8CleanWhenRoundRobin) {
  class FairArb final : public PriorityArb {
    // Same wiring; only the declared policy differs. (The DRC judges the
    // declaration, not the evaluate body — that is the point of D8.)
   public:
    using PriorityArb::PriorityArb;
    void describe(GraphVisitor& v) const override {
      PriorityArb::describe(v);
      v.arbitration(ArbiterFairness::kRoundRobin);  // later call wins
    }
  };
  Engine e;
  StarvationFixture f;
  f.arb = std::make_unique<FairArb>("ARB", &f.hi, &f.lo, &f.out);
  f.wire(&e);
  const verify::DrcReport report = verify::run_drc(e, 1);
  EXPECT_TRUE(report.clean()) << report.summary();
}

// ---------------------------------------------------------------------------
// Fixture C — protocol sharing: a memory's response path feeds (through a
// forwarder) back into the very request buffer the response depends on.
// The blocking cycle is broken by an unbounded buffer, so D7 stays silent —
// only the request/response coupling rule D9 sees the hazard.
// ---------------------------------------------------------------------------

class CouplingMem final : public Component {
 public:
  CouplingMem(const std::string& name, ElasticBuffer<int>* req,
              ElasticBuffer<int>* resp)
      : Component(name), req_(req), resp_(resp) {}
  void evaluate(uint64_t /*cycle*/) override {
    if (!req_->empty() && resp_->can_accept()) resp_->push(req_->pop());
  }
  bool idle() const override { return req_->empty(); }
  void describe(GraphVisitor& v) const override {
    v.reads(req_, "req");
    v.writes_buffer(resp_, "resp");
    v.couples_buffer(req_, resp_, "mem");
  }

 private:
  ElasticBuffer<int>* req_;
  ElasticBuffer<int>* resp_;
};

TEST(LivenessRules, D9ResponsePathSharesRequestBuffer) {
  Engine e;
  ElasticBuffer<int> req(BufferMode::kRegistered, 2);
  ElasticBuffer<int> resp(BufferMode::kCombinational, 2);
  ElasticBuffer<int> stage(BufferMode::kCombinational, 0);  // breaks D7
  CouplingMem mem("MEM", &req, &resp);
  LoopStage fwd("FWD", &resp, &stage);
  LoopStage rs("RS", &stage, &req);
  req.set_consumer(&mem, "MEM");
  resp.set_consumer(&fwd, "FWD");
  stage.set_consumer(&rs, "RS");
  e.add_component(&mem);
  e.add_component(&fwd);
  e.add_component(&rs);
  e.add_clocked(&req);
  const verify::DrcReport report = verify::run_drc(e, 1);
  ASSERT_EQ(rules(report), std::vector<std::string>{"D9"}) << report.summary();
  EXPECT_EQ(report.violations[0].component, "MEM");
  // The shared buffer (the request channel the response path re-enters) is
  // named in the detail.
  EXPECT_NE(report.violations[0].detail.find("MEM.req"), std::string::npos)
      << report.violations[0].detail;
}

TEST(LivenessRules, D9CleanWhenResponseNetworkIsDisjoint) {
  Engine e;
  ElasticBuffer<int> req(BufferMode::kRegistered, 2);
  ElasticBuffer<int> resp(BufferMode::kCombinational, 2);
  ElasticBuffer<int> done(BufferMode::kRegistered, 0);
  CouplingMem mem("MEM", &req, &resp);
  LoopStage fwd("FWD", &resp, &done);  // responses leave through their own net
  Feeder gen("GEN", &req);
  req.set_consumer(&mem, "MEM");
  resp.set_consumer(&fwd, "FWD");
  done.set_consumer(&fwd, "FWD");  // self-consumed tail: no further deps
  e.add_component(&gen);
  e.add_component(&mem);
  e.add_component(&fwd);
  e.add_clocked(&req);
  e.add_clocked(&done);
  const verify::DrcReport report = verify::run_drc(e, 1);
  EXPECT_TRUE(report.clean()) << report.summary();
}

// ---------------------------------------------------------------------------
// The progress watchdog: deterministic, exact-horizon, engine-mode agnostic.
// ---------------------------------------------------------------------------

enum class Mode { kActive, kDense, kSharded };

void configure(Engine* e, Mode m) {
  if (m == Mode::kDense) e->set_dense(true);
  if (m == Mode::kSharded) e->set_sharded(1, nullptr);
}

class WatchdogFires : public ::testing::TestWithParam<Mode> {};

TEST_P(WatchdogFires, AtExactlyTheConfiguredHorizon) {
  Engine e;
  RingFixture f;
  f.wire(&e);
  configure(&e, GetParam());
  f.wedge(&e);

  constexpr uint64_t kHorizon = 16;
  const uint64_t armed_at = e.cycle();
  e.set_stall_horizon(kHorizon);
  try {
    e.run(10 * kHorizon);
    FAIL() << "wedged ring must trip the watchdog";
  } catch (const LivenessError& err) {
    // Deterministic contract: a buffer wedged for the whole window aborts at
    // exactly arm + horizon, in every engine mode.
    EXPECT_EQ(e.cycle(), armed_at + kHorizon);
    const std::string what = err.what();
    EXPECT_NE(what.find("A.in"), std::string::npos) << what;
    const Json& r = err.report();
    EXPECT_EQ(r.at("schema").as_string(), "mempool.liveness.v1");
    EXPECT_EQ(r.at("cycle").as_uint(), armed_at + kHorizon);
    EXPECT_EQ(r.at("horizon").as_uint(), kHorizon);
    ASSERT_EQ(r.at("stalled").size(), 2u);  // both ring buffers are wedged
    const Json& first = r.at("stalled").items()[0];
    EXPECT_EQ(first.at("buffer").as_string(), "A.in");
    EXPECT_EQ(first.at("consumer").as_string(), "A");
    EXPECT_EQ(first.at("occupancy").as_uint(), 2u);
    EXPECT_EQ(first.at("capacity").as_uint(), 2u);
    EXPECT_GE(first.at("stalled_for").as_uint(), kHorizon);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, WatchdogFires,
                         ::testing::Values(Mode::kActive, Mode::kDense,
                                           Mode::kSharded),
                         [](const ::testing::TestParamInfo<Mode>& pinfo) {
                           switch (pinfo.param) {
                             case Mode::kActive: return "Active";
                             case Mode::kDense: return "Dense";
                             default: return "Sharded";
                           }
                         });

TEST(Watchdog, ReportRoundTripsThroughJson) {
  Engine e;
  RingFixture f;
  f.wire(&e);
  f.wedge(&e);
  e.set_stall_horizon(8);
  try {
    e.run(100);
    FAIL() << "wedged ring must trip the watchdog";
  } catch (const LivenessError& err) {
    const Json& r = err.report();
    const Json back = Json::parse(r.dump(0));
    EXPECT_EQ(back.dump(0), r.dump(0));
    // Golden field set, so downstream consumers can rely on the schema.
    for (const char* key : {"schema", "cycle", "horizon", "engine",
                            "num_shards", "pending_buffers", "stalled",
                            "stalled_shards"}) {
      EXPECT_TRUE(back.contains(key)) << key;
    }
    EXPECT_EQ(back.at("engine").as_string(), "active");
    for (const Json& s : back.at("stalled").items()) {
      for (const char* key : {"buffer", "consumer", "shard", "occupancy",
                              "capacity", "stalled_for", "head"}) {
        EXPECT_TRUE(s.contains(key)) << key;
      }
    }
  }
}

TEST(Watchdog, StarvedBufferIsAttributed) {
  // Fixture B wedges differently: traffic keeps flowing (hi and out drain
  // every cycle) while `lo` alone starves — the watchdog must attribute the
  // stall to the starved buffer, not to the busy ones.
  Engine e;
  StarvationFixture f;
  f.wire(&e);
  e.set_stall_horizon(32);
  try {
    e.run(10'000);
    FAIL() << "starved low-priority input must trip the watchdog";
  } catch (const LivenessError& err) {
    const Json& r = err.report();
    ASSERT_GE(r.at("stalled").size(), 1u);
    EXPECT_EQ(r.at("stalled").items()[0].at("buffer").as_string(), "ARB.lo");
  }
}

TEST(Watchdog, HealthyTrafficNeverTrips) {
  // A continuously draining chain with a tight horizon: every probe sees
  // fresh drains, so the run completes. (False positives would make the
  // watchdog useless in sweeps.)
  Engine e;
  ElasticBuffer<int> pipe(BufferMode::kCombinational, 2);
  ElasticBuffer<int> done(BufferMode::kCombinational, 0);
  Feeder gen("GEN", &pipe);
  LoopStage sink("SINK", &pipe, &done);
  class Drain final : public Component {
   public:
    Drain(const std::string& name, ElasticBuffer<int>* in)
        : Component(name), in_(in) {}
    void evaluate(uint64_t /*cycle*/) override {
      while (!in_->empty()) in_->pop();
    }
    bool idle() const override { return in_->empty(); }
    void describe(GraphVisitor& v) const override { v.reads(in_, "in"); }

   private:
    ElasticBuffer<int>* in_;
  } drain("DRAIN", &done);
  pipe.set_consumer(&sink, "SINK");
  done.set_consumer(&drain, "DRAIN");
  e.add_component(&gen);
  e.add_component(&sink);
  e.add_component(&drain);
  e.set_stall_horizon(4);
  EXPECT_NO_THROW(e.run(1'000));
  EXPECT_EQ(e.cycle(), 1'000u);
}

TEST(Watchdog, QuiescentModelNeverTrips) {
  // Empty buffers are not pending work: an armed watchdog over an idle model
  // must let run() fast-forward to the target without firing.
  Engine e;
  RingFixture f;
  f.wire(&e);
  e.set_stall_horizon(8);
  EXPECT_NO_THROW(e.run(10'000));
  EXPECT_EQ(e.cycle(), 10'000u);
}

TEST(Watchdog, DisarmedByZeroHorizon) {
  Engine e;
  RingFixture f;
  f.wire(&e);
  f.wedge(&e);
  e.set_stall_horizon(8);
  e.set_stall_horizon(0);  // re-arm then disarm: 0 must fully disable
  EXPECT_NO_THROW(e.run(1'000));
}

// ---------------------------------------------------------------------------
// Service integration: a wedged point answers ok=false with the liveness
// report; the service survives and keeps answering healthy points.
// ---------------------------------------------------------------------------

serve::SimRequest service_request(double lambda, uint64_t stall_horizon) {
  TrafficExperimentConfig cfg;
  cfg.cluster = ClusterConfig::mini(TopologySpec{"TopH"}, true);
  cfg.lambda = lambda;
  cfg.warmup_cycles = 50;
  cfg.measure_cycles = 200;
  cfg.drain_cycles = 100;
  cfg.seed = 7;
  cfg.stall_horizon = stall_horizon;
  return serve::SimRequest::from_config(cfg);
}

TEST(ServiceLiveness, WedgedPointAnswersStructuredLivenessError) {
  serve::ServiceConfig cfg;
  cfg.threads = 1;
  serve::SimService service(cfg);

  // A stall horizon of 1 declares "every non-empty buffer must drain every
  // cycle" — false under any arbitration conflict, so a loaded point trips
  // deterministically. That is the supported way to fake a wedge without
  // building a broken topology into the registry.
  const serve::ServiceResponse wedged = service.run(service_request(0.9, 1));
  ASSERT_FALSE(wedged.ok);
  ASSERT_FALSE(wedged.liveness.is_null()) << wedged.error;
  EXPECT_EQ(wedged.liveness.at("schema").as_string(), "mempool.liveness.v1");
  EXPECT_EQ(wedged.liveness.at("horizon").as_uint(), 1u);
  EXPECT_GE(wedged.liveness.at("stalled").size(), 1u);
  EXPECT_NE(wedged.error.find("no progress"), std::string::npos)
      << wedged.error;

  // The daemon-side contract: errors are responses, not deaths — the same
  // service immediately computes a healthy point.
  const serve::ServiceResponse healthy = service.run(service_request(0.05, 0));
  EXPECT_TRUE(healthy.ok) << healthy.error;
  EXPECT_TRUE(healthy.liveness.is_null());
}

TEST(ServiceLiveness, StallHorizonIsPartOfTheCacheKey) {
  // Same point, different horizons: must be distinct cache entries (a cached
  // ok result must never answer a request that would have aborted).
  const serve::SimRequest with = service_request(0.05, 100'000);
  const serve::SimRequest without = service_request(0.05, 0);
  EXPECT_NE(with.key(), without.key());
  EXPECT_NE(with.canonical(), without.canonical());
}

}  // namespace
}  // namespace mempool
