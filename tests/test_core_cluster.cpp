// Cluster-level integration: multi-core programs, barriers, determinism,
// fabric invariants — across all four topologies.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "kernels/runtime.hpp"

namespace mempool {
namespace {

class ClusterTopo : public ::testing::TestWithParam<Topology> {};

TEST_P(ClusterTopo, EveryCoreStoresAndLoadsItsOwnWord) {
  const ClusterConfig cfg = ClusterConfig::mini(GetParam(), true);
  auto sys = test::run_text(cfg, R"(
    _start:
      csrr a0, mhartid
      slli t0, a0, 2
      li t1, 0x20000
      add t0, t0, t1
      addi t2, a0, 7
      sw t2, 0(t0)
      lw t3, 0(t0)
      li t4, 0xC0000000
      sw t3, 0(t4)
  )");
  for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
    EXPECT_EQ(sys->core(c).exit_code(), c + 7) << "core " << c;
    EXPECT_EQ(sys->read_word(0x20000 + 4 * c), c + 7);
  }
}

TEST_P(ClusterTopo, AllToAllStoresLand) {
  // Each core writes a word into *every tile's* sequential region; the sum
  // of everything must match. Exercises all paths of the fabric.
  const ClusterConfig cfg = ClusterConfig::mini(GetParam(), true);
  auto sys = test::run_text(cfg, R"(
    _start:
      csrr a0, mhartid
      li t0, 0           # tile loop counter
      li t1, 16          # num tiles
    loop:
      slli t2, t0, 12    # tile seq base (4096 per tile)
      slli t3, a0, 2
      add t2, t2, t3     # + 4*hartid
      addi t4, a0, 1
      sw t4, 0(t2)
      addi t0, t0, 1
      bne t0, t1, loop
      li a0, 0
      ecall
  )", 500000);
  uint64_t sum = 0;
  for (uint32_t t = 0; t < cfg.num_tiles; ++t) {
    for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
      sum += sys->read_word(t * 4096 + 4 * c);
    }
  }
  const uint64_t per_tile =
      static_cast<uint64_t>(cfg.num_cores()) * (cfg.num_cores() + 1) / 2;
  EXPECT_EQ(sum, per_tile * cfg.num_tiles);
}

INSTANTIATE_TEST_SUITE_P(Topologies, ClusterTopo,
                         ::testing::Values(Topology::kTopX, Topology::kTopH,
                                           Topology::kTop4, Topology::kTop1),
                         [](const auto& tpinfo) {
                           return topology_name(tpinfo.param);
                         });

TEST(ClusterIntegration, BarrierRepeatedRounds) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  const kernels::RuntimeLayout layout = kernels::make_runtime_layout(cfg);
  isa::Assembler a;
  kernels::emit_crt0(a, cfg, 256);
  kernels::emit_barrier(a, cfg, layout);
  // main: per round, amoadd a per-round counter then barrier; after each
  // barrier every core must observe the full count.
  using isa::Reg;
  a.l("main");
  a.mv(Reg::s11, Reg::ra);
  a.li(Reg::s0, 0);  // round
  a.l("round");
  a.li(Reg::t0, static_cast<int32_t>(layout.data_base));
  a.slli(Reg::t1, Reg::s0, 2);
  a.add(Reg::t0, Reg::t0, Reg::t1);   // counter for this round
  a.li(Reg::t1, 1);
  a.amoadd_w(Reg::zero, Reg::t1, Reg::t0);
  a.call("barrier");
  // Check the counter reads the full core count.
  a.li(Reg::t0, static_cast<int32_t>(layout.data_base));
  a.slli(Reg::t1, Reg::s0, 2);
  a.add(Reg::t0, Reg::t0, Reg::t1);
  a.lw(Reg::t2, Reg::t0, 0);
  a.li(Reg::t3, static_cast<int32_t>(cfg.num_cores()));
  a.bne(Reg::t2, Reg::t3, "fail");
  a.addi(Reg::s0, Reg::s0, 1);
  a.li(Reg::t4, 5);  // 5 rounds
  a.bne(Reg::s0, Reg::t4, "round");
  a.li(Reg::a0, 0);
  a.mv(Reg::ra, Reg::s11);
  a.ret();
  a.l("fail");
  a.li(Reg::a0, 1);
  a.mv(Reg::ra, Reg::s11);
  a.ret();

  System sys(cfg);
  sys.load_program(a.finish());
  const auto r = sys.run(500000);
  ASSERT_TRUE(r.all_halted);
  for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
    EXPECT_EQ(sys.core(c).exit_code(), 0u) << "core " << c << " saw a torn barrier";
  }
}

TEST(ClusterIntegration, DeterministicAcrossRuns) {
  auto run_once = [] {
    const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
    auto sys = test::run_text(cfg, R"(
      _start:
        csrr a0, mhartid
        li t0, 0x28000
        li t1, 1
        amoadd.w t2, t1, (t0)
        li t3, 0xC0000000
        sw t2, 0(t3)
    )");
    return sys->engine().cycle();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ClusterIntegration, FabricDrainsAfterHalt) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTop1, true);
  auto sys = test::run_text(cfg, R"(
    _start:
      csrr a0, mhartid
      slli t0, a0, 2
      li t1, 0x3C000
      add t0, t0, t1
      sw a0, 0(t0)      # posted store, then immediately exit
      li t2, 0xC0000000
      sw zero, 0(t2)
  )");
  EXPECT_TRUE(sys->cluster().fabric_idle());
  for (uint32_t c = 0; c < cfg.num_cores(); ++c) {
    EXPECT_EQ(sys->read_word(0x3C000 + 4 * c), c);
  }
}

TEST(ClusterIntegration, ScramblingOffSpreadsSequentialAddresses) {
  // With scrambling off the "tile 3 sequential region" address lands in a
  // bank chosen by the interleaved map instead.
  const ClusterConfig on_cfg = ClusterConfig::mini(Topology::kTopH, true);
  const ClusterConfig off_cfg = ClusterConfig::mini(Topology::kTopH, false);
  const MemoryLayout on(on_cfg), off(off_cfg);
  const uint32_t addr = 3 * 4096 + 64;  // inside tile 3's region when on
  EXPECT_EQ(on.locate(addr).tile, 3u);
  EXPECT_NE(off.locate(addr).tile, 3u);
}

TEST(ClusterIntegration, InvalidConfigsRejected) {
  ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  cfg.num_tiles = 8;  // not 4^k per group
  EXPECT_THROW(cfg.validate(), CheckError);
  ClusterConfig cfg2 = ClusterConfig::mini(Topology::kTop1, true);
  cfg2.num_tiles = 32;  // not a power of 4
  EXPECT_THROW(cfg2.validate(), CheckError);
}

TEST(ClusterIntegration, CoreStatsAccounting) {
  const ClusterConfig cfg = ClusterConfig::mini(Topology::kTopH, true);
  auto sys = test::run_text(cfg, test::only_core0(R"(
    li a1, 0x20000
    lw a2, 0(a1)
    sw a2, 4(a1)
    li a3, 3
    li a4, 4
    mul a5, a3, a4
    div a6, a4, a3
    li a0, 0
    ecall
  )"));
  const auto& s = sys->core(0).stats();
  EXPECT_EQ(s.mul, 1u);
  EXPECT_EQ(s.div, 1u);
  EXPECT_EQ(s.loads_local + s.loads_remote, 1u);
  // Control-register writes (EXIT) are not SPM stores.
  EXPECT_EQ(s.stores_local + s.stores_remote, 1u);
}

}  // namespace
}  // namespace mempool
