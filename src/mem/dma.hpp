#pragma once
// Per-group DMA engine of the tcdm+l2 memory system, modeled after the
// journal MemPool's distributed DMA (Riedel et al.): a transfer between the
// L2 behind the group's AXI port and the shared-L1 TCDM is programmed once
// (by any core, through the DMA CSRs) and split by the core's group-local
// *frontend* into per-group slices, one for every group that owns target
// banks under the interleaved address map. Each group's *backend* then moves
// exactly the words that live in its own tiles, in AXI bursts paced by the
// L2 latency / AXI bandwidth / L2 banking parameters, through a dedicated
// wide bank port (DMA traffic does not contend with core requests in the
// tile crossbars; the AXI side is the modeled bottleneck, as in the TCDM
// Burst Access analysis).
//
// Sharding: a frontend/backend lives in the shard of its group's tiles, so
// every bank access stays shard-local. Frontends and backends exchange slice
// commands and completions through *registered* elastic buffers, one per
// ordered group pair, marked as shard boundaries where the groups' shards
// differ — the same structural mechanism the fabric networks use, so the
// sharded engine stays bit-identical to the sequential ones.
//
// Cycle shape (all engine modes): cores submit during the client phase →
// the frontend (evaluated after the clients) splits one descriptor per cycle
// and stages slice commands → backends see them after the commit edge, walk
// their word subsequence burst by burst via timed wakes, and stage a
// completion when the slice drains → the frontend retires the descriptor and
// the submitting core observes pending()==0 through the CSR.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "core/cluster_config.hpp"
#include "core/layout.hpp"
#include "mem/bank.hpp"
#include "sim/component.hpp"
#include "sim/elastic_buffer.hpp"
#include "sim/engine.hpp"

namespace mempool {

/// One DMA transfer as the core programs it: a 2-D (rows x words_per_row)
/// copy between a contiguous-or-strided CPU-address range in the L1 SPM and
/// one in the L2 window. Exactly one of src/dst must be in L2.
struct DmaDescriptor {
  uint32_t src = 0;            ///< CPU byte address of the first source word.
  uint32_t dst = 0;            ///< CPU byte address of the first target word.
  uint32_t words_per_row = 0;  ///< Words per row (>= 1).
  uint32_t rows = 1;           ///< Rows (1 = plain 1-D copy).
  uint32_t src_stride = 0;     ///< Bytes between row starts; 0 = dense.
  uint32_t dst_stride = 0;     ///< Bytes between row starts; 0 = dense.

  uint32_t src_stride_bytes() const {
    return src_stride != 0 ? src_stride : words_per_row * 4;
  }
  uint32_t dst_stride_bytes() const {
    return dst_stride != 0 ? dst_stride : words_per_row * 4;
  }
  uint64_t total_words() const {
    return uint64_t{rows} * words_per_row;
  }
};

/// The core-facing control interface (reached through the DMA CSRs). One
/// portal per group; a core talks to its own group's frontend.
class DmaPortal {
 public:
  virtual ~DmaPortal() = default;
  /// Enqueue a transfer on behalf of @p core. Throws CheckError on a
  /// malformed descriptor (misalignment, zero size, out-of-range, or not
  /// exactly one side in L2).
  virtual void submit(uint16_t core, const DmaDescriptor& d) = 0;
  /// Transfers submitted by @p core still in flight (dma_wait spins on 0).
  virtual uint32_t pending(uint16_t core) const = 0;

  /// DRC hook: the component behind this portal (the frontend), so a core
  /// can declare its submit() call as a terminal edge. Null = opaque portal.
  virtual const Component* drc_component() const { return nullptr; }
};

/// CPU base address of the L2 window (between the SPM at 0 and the control
/// registers at 0xC0000000; fixed, like kCtrlBase).
inline constexpr uint32_t kL2Base = 0xA000'0000u;

/// Timing and geometry of the L2 + AXI model (mem/memsys_builtin.cpp wires
/// these from the MemorySpec params).
struct L2Params {
  uint32_t base = kL2Base;        ///< CPU base address of the L2 window.
  uint32_t bytes = 8u << 20;      ///< L2 capacity ("l2_bytes").
  uint32_t latency = 20;          ///< Request-to-first-data ("l2_latency").
  uint32_t words_per_cycle = 8;   ///< Per-group AXI bandwidth
                                  ///< ("axi_words_per_cycle").
  uint32_t burst_words = 64;      ///< Words per AXI burst ("burst_words").
  uint32_t banks = 16;            ///< L2 banks ("l2_banks"): consecutive
                                  ///< bursts interleave across them; a burst
                                  ///< hitting a still-busy bank stalls.
};

/// Passive L2 storage: word array + window arithmetic. Deliberately free of
/// counters — backends of different shards access disjoint words
/// concurrently, so all mutable statistics live per-backend.
class L2Memory {
 public:
  explicit L2Memory(const L2Params& p)
      : p_(p), words_(p.bytes / 4, 0) {}

  const L2Params& params() const { return p_; }
  bool contains(uint32_t cpu_addr) const {
    return cpu_addr >= p_.base && cpu_addr - p_.base < p_.bytes;
  }
  uint32_t read(uint32_t cpu_addr) const { return words_[index(cpu_addr)]; }
  void write(uint32_t cpu_addr, uint32_t v) { words_[index(cpu_addr)] = v; }

  /// Checkpoint of the word array. The L2 is shared by all backends; the
  /// group-0 backend owns its snapshot section (exactly one exists per
  /// tcdm+l2 memory system).
  void save_state(StateSink& s) const {
    s.u32(static_cast<uint32_t>(words_.size()));
    for (const uint32_t w : words_) s.u32(w);
  }
  void load_state(StateSource& s) {
    const uint32_t n = s.u32();
    MEMPOOL_CHECK_MSG(n == words_.size(), "L2 snapshot size mismatch");
    for (uint32_t& w : words_) w = s.u32();
  }

 private:
  uint32_t index(uint32_t cpu_addr) const {
    MEMPOOL_CHECK_MSG(contains(cpu_addr) && cpu_addr % 4 == 0,
                      "bad L2 word address 0x" << std::hex << cpu_addr);
    return (cpu_addr - p_.base) / 4;
  }

  L2Params p_;
  std::vector<uint32_t> words_;
};

/// A per-group share of one descriptor, sent frontend -> backend.
struct DmaSliceCmd {
  DmaDescriptor desc;
  uint32_t src_group = 0;  ///< Frontend that owns the descriptor.
  uint16_t desc_id = 0;    ///< Slot in that frontend's descriptor table.
  uint64_t words = 0;      ///< The target group's word count (> 0), from the
                           ///< frontend's split census — the backend does
                           ///< not re-walk the grid to count.
};

/// Slice-drained token, sent backend -> frontend.
struct DmaCompletion {
  uint16_t desc_id = 0;
};

/// Checkpoint serialization for descriptors and the frontend<->backend
/// buffer payloads (ADL pairs looked up by ElasticBuffer::save_state, like
/// the Packet overloads in sim/packet.hpp).
inline void save_item(StateSink& s, const DmaDescriptor& d) {
  s.u32(d.src);
  s.u32(d.dst);
  s.u32(d.words_per_row);
  s.u32(d.rows);
  s.u32(d.src_stride);
  s.u32(d.dst_stride);
}
inline void load_item(StateSource& s, DmaDescriptor* d) {
  d->src = s.u32();
  d->dst = s.u32();
  d->words_per_row = s.u32();
  d->rows = s.u32();
  d->src_stride = s.u32();
  d->dst_stride = s.u32();
}
inline void save_item(StateSink& s, const DmaSliceCmd& c) {
  save_item(s, c.desc);
  s.u32(c.src_group);
  s.u16(c.desc_id);
  s.u64(c.words);
}
inline void load_item(StateSource& s, DmaSliceCmd* c) {
  load_item(s, &c->desc);
  c->src_group = s.u32();
  c->desc_id = s.u16();
  c->words = s.u64();
}
inline void save_item(StateSink& s, const DmaCompletion& c) { s.u16(c.desc_id); }
inline void load_item(StateSource& s, DmaCompletion* c) { c->desc_id = s.u16(); }

class DmaBackend;

/// Group-local DMA frontend: accepts descriptors from the group's cores
/// (same shard, direct call during the client phase), splits each into
/// per-group slices — one slice per group that owns any of the transfer's L1
/// words — and retires descriptors as the slice completions return. Splits
/// at most one descriptor per cycle, so each outgoing command buffer sees at
/// most one push per cycle (the registered-buffer contract).
class DmaFrontend final : public Component, public DmaPortal {
 public:
  /// @p arena, when given, is the shard arena of the group this frontend
  /// serves: the per-source-group completion buffers carve their initial
  /// ring storage out of it.
  DmaFrontend(std::string name, uint32_t group, const ClusterConfig& cfg,
              const MemoryLayout* layout, const L2Memory* l2,
              Arena* arena = nullptr);

  // --- wiring (memsys build time) -------------------------------------------
  /// Command buffer of group @p g's backend that this frontend pushes into.
  void connect_backend(uint32_t g, ElasticBuffer<DmaSliceCmd>* cmd_buf);
  /// This frontend's completion input from group @p g's backend (owned
  /// here; the backend pushes, this component consumes).
  ElasticBuffer<DmaCompletion>* completion_input(uint32_t g);
  void register_clocked(Engine& engine, uint32_t shard = 0);

  // --- DmaPortal ------------------------------------------------------------
  void submit(uint16_t core, const DmaDescriptor& d) override;
  uint32_t pending(uint16_t core) const override;
  const Component* drc_component() const override { return this; }

  // --- Component ------------------------------------------------------------
  void evaluate(uint64_t cycle) override;
  bool idle() const override;

  /// DRC self-description: woken by submit()/completions, reads the
  /// completion inputs, pushes slice commands to the connected backends.
  void describe(GraphVisitor& v) const override;

  // --- statistics -----------------------------------------------------------
  uint64_t descriptors() const { return descriptors_; }
  uint64_t slices_issued() const { return slices_; }
  /// Descriptors currently in flight anywhere (0 = hierarchy quiescent).
  uint32_t outstanding() const { return outstanding_; }

  /// Checkpoint: unsplit submissions, descriptor table, per-core pending
  /// counts, completion inputs, counters.
  void save_state(StateSink& s) const override;
  void load_state(StateSource& s) override;

 private:
  /// Slots available for concurrently in-flight descriptors per group.
  static constexpr uint32_t kMaxInFlight = 256;

  struct DescState {
    uint16_t core = 0;
    uint32_t remaining = 0;  ///< Slices not yet completed; 0 = slot free.
  };

  uint32_t group_;
  const ClusterConfig* cfg_;
  const MemoryLayout* layout_;
  const L2Memory* l2_;

  std::deque<std::pair<uint16_t, DmaDescriptor>> subs_;  ///< Unsplit.
  std::vector<DescState> table_;
  uint32_t in_use_ = 0;
  uint16_t next_id_ = 0;
  std::vector<uint32_t> pending_;  ///< Per global core id.
  uint32_t outstanding_ = 0;

  std::vector<ElasticBuffer<DmaSliceCmd>*> cmd_out_;      ///< Per dest group.
  PinnedVector<ElasticBuffer<DmaCompletion>> comp_in_;    ///< Per src group.

  uint64_t descriptors_ = 0;
  uint64_t slices_ = 0;
};

/// Group-local DMA backend: executes slice commands by walking the
/// descriptor's word grid and moving exactly the words whose L1 bank lives
/// in this group, in AXI bursts. Burst b's data arrives at
///   max(port_free, bank_free) + ceil(words/words_per_cycle)
/// with the L2 request latency paid once per slice — a pipelined AXI port
/// with interleaved L2 banks. The backend sleeps between bursts on the
/// engine's timer wheel and applies each burst's words when it fires.
class DmaBackend final : public Component {
 public:
  /// @p arena — see DmaFrontend: shard arena for the command buffers' rings.
  DmaBackend(std::string name, uint32_t group, const ClusterConfig& cfg,
             const MemoryLayout* layout, L2Memory* l2,
             Arena* arena = nullptr);

  // --- wiring (memsys build time) -------------------------------------------
  /// This backend's command input from group @p g's frontend (owned here).
  ElasticBuffer<DmaSliceCmd>* cmd_input(uint32_t g);
  /// Completion buffer of group @p g's frontend that this backend pushes to.
  void connect_frontend(uint32_t g, ElasticBuffer<DmaCompletion>* comp_buf);
  /// Banks of this group, tile-major ((tile - first_tile) * banks_per_tile
  /// + bank) — the backend's dedicated wide bank port.
  void bind_banks(std::vector<SpmBank*> banks);
  void bind_engine(Engine* engine) { engine_ = engine; }
  void register_clocked(Engine& engine, uint32_t shard = 0);

  // --- Component ------------------------------------------------------------
  void evaluate(uint64_t cycle) override;
  bool idle() const override;

  /// DRC self-description: self-ticking (timer-paced bursts), reads the
  /// command inputs, pushes completions to the connected frontends, moves
  /// words through its dedicated bank ports.
  void describe(GraphVisitor& v) const override;

  // --- statistics -----------------------------------------------------------
  uint64_t bursts() const { return bursts_; }
  uint64_t words_in() const { return words_in_; }    ///< L2 -> TCDM.
  uint64_t words_out() const { return words_out_; }  ///< TCDM -> L2.
  uint64_t l2_reads() const { return l2_reads_; }
  uint64_t l2_writes() const { return l2_writes_; }
  /// Cycles this engine spent with a slice in flight (busy windows are
  /// disjoint: slices execute back to back).
  uint64_t busy_cycles() const { return busy_; }

  /// Checkpoint: command inputs, the active slice (cursor, burst schedule,
  /// AXI/bank availability), counters — and the shared L2 image when this is
  /// the group-0 backend. load_state re-arms the burst-completion wake.
  void save_state(StateSink& s) const override;
  void load_state(StateSource& s) override;

 private:
  bool next_cmd();
  void start_slice(uint64_t cycle);
  void schedule_burst(uint64_t cycle);
  void apply_burst();
  void finish_slice(uint64_t cycle);
  /// Group and bank of the L1 side of word (row, col) of @p d; returns the
  /// bank only when the word belongs to this group.
  SpmBank* locate_word(const DmaDescriptor& d, uint32_t row, uint32_t col,
                       uint32_t* bank_row, uint32_t* l2_addr,
                       bool* to_l2) const;

  uint32_t group_;
  const ClusterConfig* cfg_;
  const MemoryLayout* layout_;
  L2Memory* l2_;
  Engine* engine_ = nullptr;
  std::vector<SpmBank*> banks_;

  PinnedVector<ElasticBuffer<DmaSliceCmd>> cmd_in_;     ///< Per src group.
  std::vector<ElasticBuffer<DmaCompletion>*> comp_out_; ///< Per dest group.

  // Active slice state.
  bool active_ = false;
  DmaSliceCmd slice_{};
  uint64_t slice_words_ = 0;      ///< This group's share.
  uint64_t words_done_ = 0;
  uint32_t cursor_row_ = 0;
  uint32_t cursor_col_ = 0;
  uint64_t slice_start_ = 0;
  uint64_t burst_done_ = 0;       ///< Cycle the scheduled burst's data lands.
  uint64_t port_free_ = 0;        ///< AXI data channel availability.
  uint32_t burst_count_ = 0;      ///< Words in the scheduled burst.
  std::vector<uint64_t> bank_free_;  ///< Per-L2-bank availability.

  uint64_t bursts_ = 0;
  uint64_t words_in_ = 0;
  uint64_t words_out_ = 0;
  uint64_t l2_reads_ = 0;
  uint64_t l2_writes_ = 0;
  uint64_t busy_ = 0;
};

}  // namespace mempool
