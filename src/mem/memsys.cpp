#include "mem/memsys.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mempool {

namespace memsys {
// Built-in plugin factories (mem/memsys_builtin.cpp).
std::unique_ptr<MemorySystem> make_tcdm();
std::unique_ptr<MemorySystem> make_tcdm_l2();
}  // namespace memsys

// --- MemoryInstance defaults (the tcdm behavior) ------------------------------

std::vector<SpmBank*> MemoryInstance::make_banks(uint32_t t,
                                                 std::size_t input_capacity,
                                                 Arena& arena) {
  // The seed-era construction site that used to live in the Tile
  // constructor: one single-ported bank per slot, named tileT.bankB — now
  // carved out of the owning tile's shard arena so consecutive banks sit at
  // consecutive addresses in the engine's evaluation scan.
  std::vector<SpmBank*> banks;
  banks.reserve(cfg_.banks_per_tile);
  for (uint32_t b = 0; b < cfg_.banks_per_tile; ++b) {
    banks.push_back(arena.make<SpmBank>(
        "tile" + std::to_string(t) + ".bank" + std::to_string(b),
        cfg_.bank_bytes, input_capacity, &arena));
  }
  return banks;
}

uint32_t MemoryInstance::backdoor_read(uint32_t cpu_addr) const {
  MEMPOOL_CHECK_MSG(false, "memory system '"
                               << cfg_.memory.name
                               << "' has no backing store for address 0x"
                               << std::hex << cpu_addr);
  return 0;
}

void MemoryInstance::backdoor_write(uint32_t cpu_addr, uint32_t /*value*/) {
  MEMPOOL_CHECK_MSG(false, "memory system '"
                               << cfg_.memory.name
                               << "' has no backing store for address 0x"
                               << std::hex << cpu_addr);
}

// --- MemorySystem helpers -----------------------------------------------------

void MemorySystem::check_params(const MemorySpec& spec) const {
  const std::vector<std::string> known = param_keys();
  for (const auto& [key, value] : spec.params) {
    (void)value;
    MEMPOOL_CHECK_MSG(
        std::find(known.begin(), known.end(), key) != known.end(),
        "memory system '" << name() << "' does not understand param '" << key
                          << "'");
  }
}

// --- MemoryRegistry -----------------------------------------------------------

MemoryRegistry::MemoryRegistry() {
  add(memsys::make_tcdm());
  add(memsys::make_tcdm_l2());
}

MemoryRegistry& MemoryRegistry::instance() {
  static MemoryRegistry registry;
  return registry;
}

void MemoryRegistry::add(std::unique_ptr<MemorySystem> sys) {
  MEMPOOL_CHECK(sys != nullptr);
  // Duplicate check against the member directly: add() runs inside the
  // constructor for the built-ins, where re-entering instance() would
  // deadlock the function-local static's initialization.
  for (const auto& s : systems_) {
    MEMPOOL_CHECK_MSG(s->name() != sys->name(),
                      "memory system '" << sys->name()
                                        << "' already registered");
  }
  systems_.push_back(std::move(sys));
}

const MemorySystem* MemoryRegistry::find(const std::string& name) {
  for (const auto& s : instance().systems_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

const MemorySystem& MemoryRegistry::get(const std::string& name) {
  const MemorySystem* s = find(name);
  MEMPOOL_CHECK_MSG(s != nullptr, "unknown memory system '"
                                      << name << "'; available: "
                                      << available());
  return *s;
}

std::vector<std::string> MemoryRegistry::names() {
  std::vector<std::string> out;
  for (const auto& s : instance().systems_) out.push_back(s->name());
  return out;
}

std::string MemoryRegistry::available() {
  std::string out;
  for (const auto& s : instance().systems_) {
    if (!out.empty()) out += ", ";
    out += s->name();
  }
  return out;
}

}  // namespace mempool
