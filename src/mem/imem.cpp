// InstrMem is header-only; this TU anchors the library.
#include "mem/imem.hpp"

namespace mempool {
// Intentionally empty.
}  // namespace mempool
