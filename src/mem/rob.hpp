#pragma once
// Per-core reorder buffer (Figure 2). MemPool's interconnect does not provide
// transaction ordering ("this task offloaded to the cores"); responses from
// banks at different distances return out of order, and the ROB restores
// program order at retirement: entries are allocated at issue and retired
// strictly in order, one per cycle.

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "sim/snapshot.hpp"

namespace mempool {

/// Core-side metadata for an outstanding memory response.
struct RobEntry {
  uint8_t rd = 0;           ///< Destination register (0 = discard payload).
  uint8_t width = 4;        ///< Access width in bytes (1, 2, 4).
  bool sign_extend = false; ///< Subword loads: sign- vs zero-extend.
  uint8_t byte_offset = 0;  ///< addr & 3 at issue (subword extraction).
  bool done = false;        ///< Response arrived.
  uint32_t data = 0;        ///< Raw response payload (full word).
};

class ReorderBuffer {
 public:
  explicit ReorderBuffer(std::size_t entries) : ring_(entries) {
    MEMPOOL_CHECK(entries >= 1);
  }

  bool full() const { return count_ == ring_.size(); }
  bool empty() const { return count_ == 0; }
  std::size_t in_flight() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }

  /// Allocate the tail entry; returns the tag carried by the request packet.
  uint16_t allocate(const RobEntry& meta) {
    MEMPOOL_CHECK(!full());
    const uint16_t tag = tail_;
    ring_[tail_] = meta;
    ring_[tail_].done = false;
    tail_ = static_cast<uint16_t>((tail_ + 1) % ring_.size());
    ++count_;
    return tag;
  }

  /// Fill entry @p tag with the response payload.
  void fill(uint16_t tag, uint32_t data) {
    MEMPOOL_CHECK(tag < ring_.size());
    MEMPOOL_CHECK_MSG(!ring_[tag].done, "double response for ROB tag " << tag);
    ring_[tag].done = true;
    ring_[tag].data = data;
  }

  /// Inspect an entry (e.g. for write-back on arrival).
  const RobEntry& peek(uint16_t tag) const {
    MEMPOOL_CHECK(tag < ring_.size());
    return ring_[tag];
  }

  /// Undo the most recent allocate(). Only legal immediately after the
  /// allocate, before any response could have filled the entry — used when
  /// the request port refuses the packet in the same cycle.
  void rollback_tail() {
    MEMPOOL_CHECK(count_ > 0);
    tail_ = static_cast<uint16_t>((tail_ + ring_.size() - 1) % ring_.size());
    MEMPOOL_CHECK(!ring_[tail_].done);
    --count_;
  }

  /// True if the oldest entry has its response and can retire this cycle.
  bool head_ready() const { return count_ > 0 && ring_[head_].done; }

  /// Retire the oldest entry (caller checked head_ready()).
  RobEntry pop_head() {
    MEMPOOL_CHECK(head_ready());
    RobEntry e = ring_[head_];
    head_ = static_cast<uint16_t>((head_ + 1) % ring_.size());
    --count_;
    return e;
  }

  /// Checkpoint (called from the owning core's save_state/load_state): the
  /// full ring including not-yet-filled entries, since tags index the ring
  /// absolutely.
  void save_state(StateSink& s) const {
    s.u32(static_cast<uint32_t>(ring_.size()));
    for (const RobEntry& e : ring_) {
      s.u8(e.rd);
      s.u8(e.width);
      s.b(e.sign_extend);
      s.u8(e.byte_offset);
      s.b(e.done);
      s.u32(e.data);
    }
    s.u16(head_);
    s.u16(tail_);
    s.u32(static_cast<uint32_t>(count_));
  }
  void load_state(StateSource& s) {
    const uint32_t n = s.u32();
    MEMPOOL_CHECK_MSG(n == ring_.size(), "ROB snapshot capacity mismatch");
    for (RobEntry& e : ring_) {
      e.rd = s.u8();
      e.width = s.u8();
      e.sign_extend = s.b();
      e.byte_offset = s.u8();
      e.done = s.b();
      e.data = s.u32();
    }
    head_ = s.u16();
    tail_ = s.u16();
    count_ = s.u32();
  }

 private:
  std::vector<RobEntry> ring_;
  uint16_t head_ = 0;
  uint16_t tail_ = 0;
  std::size_t count_ = 0;
};

}  // namespace mempool
