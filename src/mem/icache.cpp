#include "mem/icache.hpp"

#include <algorithm>

#include "common/bitutil.hpp"
#include "common/check.hpp"

namespace mempool {

ICache::ICache(std::string name, const ICacheConfig& cfg,
               const InstrMem* backing)
    : Component(std::move(name)), cfg_(cfg), backing_(backing) {
  MEMPOOL_CHECK(backing_ != nullptr);
  MEMPOOL_CHECK(is_pow2(cfg_.size_bytes));
  MEMPOOL_CHECK(is_pow2(cfg_.line_bytes) && cfg_.line_bytes >= 4);
  MEMPOOL_CHECK(cfg_.ways >= 1);
  MEMPOOL_CHECK(cfg_.size_bytes % (cfg_.line_bytes * cfg_.ways) == 0);
  num_sets_ = cfg_.size_bytes / (cfg_.line_bytes * cfg_.ways);
  lines_.resize(num_sets_ * cfg_.ways);
}

uint32_t ICache::set_of(uint32_t pc) const {
  return (pc / cfg_.line_bytes) % num_sets_;
}

uint32_t ICache::tag_of(uint32_t pc) const {
  return pc / cfg_.line_bytes / num_sets_;
}

ICache::Line* ICache::lookup(uint32_t pc) {
  const uint32_t set = set_of(pc);
  const uint32_t tag = tag_of(pc);
  for (uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = lines_[set * cfg_.ways + w];
    if (line.valid && line.tag == tag) return &line;
  }
  return nullptr;
}

void ICache::flush() {
  for (auto& l : lines_) l.valid = false;
  refill_.active = false;
  pending_.clear();
}

ICache::FetchResult ICache::fetch(uint32_t pc, uint64_t /*cycle*/) {
  if (Line* line = lookup(pc)) {
    line->lru = ++lru_clock_;
    ++hits_;
    return {true, backing_->read_word(pc)};
  }
  ++misses_;
  const uint32_t line_addr = pc & ~(cfg_.line_bytes - 1);
  // Merge with an in-flight or queued refill of the same line.
  if (refill_.active && refill_.line_addr == line_addr) return {false, 0};
  if (std::find(pending_.begin(), pending_.end(), line_addr) != pending_.end())
    return {false, 0};
  pending_.push_back(line_addr);
  wake();  // the refill engine has work from the next cycle on
  return {false, 0};
}

void ICache::evaluate(uint64_t cycle) {
  // Complete an in-flight refill.
  if (refill_.active && cycle >= refill_.done_cycle) {
    const uint32_t set = set_of(refill_.line_addr);
    // Victim: invalid way first, else LRU.
    Line* victim = nullptr;
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
      Line& line = lines_[set * cfg_.ways + w];
      if (!line.valid) {
        victim = &line;
        break;
      }
      if (victim == nullptr || line.lru < victim->lru) victim = &line;
    }
    victim->valid = true;
    victim->tag = tag_of(refill_.line_addr);
    victim->lru = ++lru_clock_;
    refill_.active = false;
    ++refills_;
  }
  // Launch the next refill on the single AXI port.
  if (!refill_.active && !pending_.empty()) {
    refill_.active = true;
    refill_.line_addr = pending_.front();
    pending_.erase(pending_.begin());
    refill_.done_cycle = cycle + cfg_.refill_latency + cfg_.line_bytes / 4;
  }
}

void ICache::save_state(StateSink& s) const {
  s.u32(static_cast<uint32_t>(lines_.size()));
  for (const Line& l : lines_) {
    s.b(l.valid);
    s.u32(l.tag);
    s.u64(l.lru);
  }
  s.b(refill_.active);
  s.u32(refill_.line_addr);
  s.u64(refill_.done_cycle);
  s.u32(static_cast<uint32_t>(pending_.size()));
  for (const uint32_t p : pending_) s.u32(p);
  s.u64(hits_);
  s.u64(misses_);
  s.u64(refills_);
  s.u64(lru_clock_);
}

void ICache::load_state(StateSource& s) {
  const uint32_t n = s.u32();
  MEMPOOL_CHECK_MSG(n == lines_.size(),
                    name() << ": snapshot cache geometry mismatch");
  for (Line& l : lines_) {
    l.valid = s.b();
    l.tag = s.u32();
    l.lru = s.u64();
  }
  refill_.active = s.b();
  refill_.line_addr = s.u32();
  refill_.done_cycle = s.u64();
  pending_.clear();
  const uint32_t np = s.u32();
  for (uint32_t i = 0; i < np; ++i) pending_.push_back(s.u32());
  hits_ = s.u64();
  misses_ = s.u64();
  refills_ = s.u64();
  lru_clock_ = s.u64();
}

}  // namespace mempool
