#pragma once
// Interleaved L1 address map (Section IV): a physical SPM address is
// interpreted as [ row | tile(t bits) | bank(b bits) | byte(2 bits) ], i.e.
// word-consecutive addresses hop across banks, then across tiles, which
// minimizes banking conflicts for bulk data.

#include <cstdint>

#include "common/bitutil.hpp"
#include "common/check.hpp"

namespace mempool {

/// Decomposed physical SPM location.
struct BankLocation {
  uint32_t tile;      ///< Tile index in [0, num_tiles).
  uint32_t bank;      ///< Bank index within the tile.
  uint32_t row;       ///< Word row within the bank.
  uint32_t byte;      ///< Byte offset within the word.
};

class AddressMap {
 public:
  /// @param num_tiles, banks_per_tile powers of two.
  /// @param bank_bytes bytes per bank (power of two, multiple of 4).
  AddressMap(uint32_t num_tiles, uint32_t banks_per_tile, uint32_t bank_bytes)
      : num_tiles_(num_tiles),
        banks_per_tile_(banks_per_tile),
        bank_bytes_(bank_bytes),
        bank_bits_(log2_exact(banks_per_tile)),
        tile_bits_(log2_exact(num_tiles)),
        rows_per_bank_(bank_bytes / 4) {
    MEMPOOL_CHECK(is_pow2(num_tiles));
    MEMPOOL_CHECK(is_pow2(banks_per_tile));
    MEMPOOL_CHECK(is_pow2(bank_bytes) && bank_bytes >= 4);
  }

  /// Total SPM bytes.
  uint32_t spm_bytes() const {
    return num_tiles_ * banks_per_tile_ * bank_bytes_;
  }

  bool contains(uint32_t addr) const { return addr < spm_bytes(); }

  /// Split a physical address into tile/bank/row/byte.
  BankLocation locate(uint32_t addr) const {
    MEMPOOL_CHECK_MSG(contains(addr), "address 0x" << std::hex << addr
                                                   << " outside SPM");
    BankLocation loc;
    loc.byte = bits(addr, 0, 2);
    loc.bank = bits(addr, 2, bank_bits_);
    loc.tile = bits(addr, 2 + bank_bits_, tile_bits_);
    loc.row = addr >> (2 + bank_bits_ + tile_bits_);
    return loc;
  }

  /// Inverse of locate().
  uint32_t compose(const BankLocation& loc) const {
    uint32_t addr = loc.row << (2 + bank_bits_ + tile_bits_);
    addr = insert_bits(addr, 2 + bank_bits_, tile_bits_, loc.tile);
    addr = insert_bits(addr, 2, bank_bits_, loc.bank);
    addr = insert_bits(addr, 0, 2, loc.byte);
    return addr;
  }

  uint32_t num_tiles() const { return num_tiles_; }
  uint32_t banks_per_tile() const { return banks_per_tile_; }
  uint32_t bank_bytes() const { return bank_bytes_; }
  uint32_t rows_per_bank() const { return rows_per_bank_; }
  unsigned bank_bits() const { return bank_bits_; }
  unsigned tile_bits() const { return tile_bits_; }

 private:
  uint32_t num_tiles_;
  uint32_t banks_per_tile_;
  uint32_t bank_bytes_;
  unsigned bank_bits_;
  unsigned tile_bits_;
  uint32_t rows_per_bank_;
};

}  // namespace mempool
