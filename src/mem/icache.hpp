#pragma once
// Shared per-tile L1 instruction cache (Section III-B: "Inside each tile, we
// have a 4-way L1 instruction cache ... with a 32-bit AXI refill port").
//
// Timing model: hits return the instruction in the same cycle (the I$ is
// inside the core's single-stage fetch path); a miss stalls the requesting
// core until the refill completes. One refill is in flight per tile (32-bit
// AXI port), taking refill_latency + line_words cycles; concurrent misses to
// the same line merge (MSHR). The refill network itself is "noncritical" per
// the paper and modelled by the fixed latency.

#include <cstdint>
#include <string>
#include <vector>

#include "mem/imem.hpp"
#include "sim/component.hpp"

namespace mempool {

struct ICacheConfig {
  uint32_t size_bytes = 2048;   ///< Paper: 2 KiB per tile.
  uint32_t ways = 4;            ///< Paper: 4-way.
  uint32_t line_bytes = 32;
  uint32_t refill_latency = 20; ///< AXI round-trip to the backing store.
};

class ICache final : public Component {
 public:
  ICache(std::string name, const ICacheConfig& cfg, const InstrMem* backing);

  struct FetchResult {
    bool hit = false;
    uint32_t instr = 0;
  };

  /// Called by a core during its evaluate; on a miss the core must retry
  /// every cycle (retries while the line is in flight do not re-arm anything).
  FetchResult fetch(uint32_t pc, uint64_t cycle);

  /// Progress outstanding refills; must be evaluated before the cores.
  void evaluate(uint64_t cycle) override;

  /// Activity contract: idle when the refill engine has nothing in flight and
  /// nothing queued. A core's missing fetch() wakes the cache (the cache is
  /// evaluated before the cores, so the refill launches next cycle in both
  /// engine modes).
  bool idle() const override { return !refill_.active && pending_.empty(); }

  /// DRC self-description: woken by the cores' fetch() calls, not by a
  /// declared edge.
  void describe(GraphVisitor& v) const override { v.wake_on_demand(); }

  /// Invalidate all lines (used between benchmark phases in tests).
  void flush();

  /// Checkpoint: tag/LRU state, the in-flight refill (done_cycle is
  /// absolute; the cache stays awake while a refill is active, so no timer
  /// needs re-arming), pending misses, counters.
  void save_state(StateSink& s) const override;
  void load_state(StateSource& s) override;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t refills() const { return refills_; }
  double hit_rate() const {
    const uint64_t t = hits_ + misses_;
    return t ? static_cast<double>(hits_) / static_cast<double>(t) : 0.0;
  }

 private:
  struct Line {
    bool valid = false;
    uint32_t tag = 0;
    uint64_t lru = 0;
  };

  uint32_t set_of(uint32_t pc) const;
  uint32_t tag_of(uint32_t pc) const;
  Line* lookup(uint32_t pc);

  ICacheConfig cfg_;
  const InstrMem* backing_;
  uint32_t num_sets_;
  std::vector<Line> lines_;  // sets * ways, row-major by set

  // Refill engine: one in flight, plus a queue of pending line addresses.
  struct Refill {
    bool active = false;
    uint32_t line_addr = 0;
    uint64_t done_cycle = 0;
  };
  Refill refill_;
  std::vector<uint32_t> pending_;  // line addresses waiting for the port

  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t refills_ = 0;
  uint64_t lru_clock_ = 0;
};

}  // namespace mempool
