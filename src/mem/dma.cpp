#include "mem/dma.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mempool {

namespace {

/// The L1-SPM side of a descriptor (exactly one side is L2, validated at
/// submit). Returns true when the *destination* is L2 (copy-out).
bool l2_is_dst(const L2Memory& l2, const DmaDescriptor& d) {
  return l2.contains(d.dst);
}

}  // namespace

// --- DmaFrontend --------------------------------------------------------------

DmaFrontend::DmaFrontend(std::string name, uint32_t group,
                         const ClusterConfig& cfg, const MemoryLayout* layout,
                         const L2Memory* l2, Arena* arena)
    : Component(std::move(name)),
      group_(group),
      cfg_(&cfg),
      layout_(layout),
      l2_(l2),
      table_(kMaxInFlight),
      pending_(cfg.num_cores(), 0),
      cmd_out_(cfg.num_groups, nullptr) {
  comp_in_.reserve_exact(cfg.num_groups, arena);
  for (uint32_t g = 0; g < cfg.num_groups; ++g) {
    comp_in_.emplace_back(BufferMode::kRegistered, /*capacity=*/0, arena);
    comp_in_.back().set_consumer(this, this->name().c_str());
  }
}

void DmaFrontend::connect_backend(uint32_t g,
                                  ElasticBuffer<DmaSliceCmd>* cmd_buf) {
  MEMPOOL_CHECK(g < cmd_out_.size() && cmd_buf != nullptr);
  cmd_out_[g] = cmd_buf;
}

ElasticBuffer<DmaCompletion>* DmaFrontend::completion_input(uint32_t g) {
  MEMPOOL_CHECK(g < comp_in_.size());
  return &comp_in_[g];
}

void DmaFrontend::register_clocked(Engine& engine, uint32_t shard) {
  // Completion buffers are consumed by this frontend, so they commit in its
  // shard even when the producing backend lives across a boundary.
  for (auto& b : comp_in_) engine.add_clocked(&b, shard);
}

void DmaFrontend::submit(uint16_t core, const DmaDescriptor& d) {
  MEMPOOL_CHECK_MSG(d.words_per_row >= 1 && d.rows >= 1,
                    name() << ": empty DMA descriptor (words_per_row="
                           << d.words_per_row << ", rows=" << d.rows << ")");
  MEMPOOL_CHECK_MSG(d.src % 4 == 0 && d.dst % 4 == 0 &&
                        d.src_stride % 4 == 0 && d.dst_stride % 4 == 0,
                    name() << ": DMA addresses and strides must be word-"
                              "aligned (src=0x"
                           << std::hex << d.src << ", dst=0x" << d.dst << ")");
  const bool src_l2 = l2_->contains(d.src);
  const bool dst_l2 = l2_->contains(d.dst);
  MEMPOOL_CHECK_MSG(src_l2 != dst_l2,
                    name() << ": exactly one DMA endpoint must be in the L2 "
                              "window (src=0x"
                           << std::hex << d.src << ", dst=0x" << d.dst
                           << "; L2 window starts at 0x"
                           << l2_->params().base << ")");
  // Strides are non-negative, so the transfer's extent is [first, last]:
  // checking both ends pins the whole grid inside its region. Extents are
  // computed in 64 bits so a huge rows/words value fails here with a clear
  // error instead of wrapping past the bounds checks.
  const uint64_t src_last = uint64_t{d.src} +
                            uint64_t{d.rows - 1} * d.src_stride_bytes() +
                            uint64_t{d.words_per_row - 1} * 4;
  const uint64_t dst_last = uint64_t{d.dst} +
                            uint64_t{d.rows - 1} * d.dst_stride_bytes() +
                            uint64_t{d.words_per_row - 1} * 4;
  const uint32_t spm_first = src_l2 ? d.dst : d.src;
  const uint64_t spm_last = src_l2 ? dst_last : src_last;
  const uint64_t l2_last = src_l2 ? src_last : dst_last;
  MEMPOOL_CHECK_MSG(
      layout_->is_spm(spm_first) && spm_last <= 0xFFFF'FFFFull &&
          layout_->is_spm(static_cast<uint32_t>(spm_last)),
      name() << ": DMA L1 range [0x" << std::hex << spm_first << ", 0x"
             << spm_last << "] leaves the SPM");
  MEMPOOL_CHECK_MSG(l2_last <= 0xFFFF'FFFFull &&
                        l2_->contains(static_cast<uint32_t>(l2_last)),
                    name() << ": DMA L2 range leaves the L2 window (last "
                              "word 0x"
                           << std::hex << l2_last << ")");
  MEMPOOL_CHECK(core < pending_.size());

  ++pending_[core];
  ++outstanding_;
  subs_.emplace_back(core, d);
  wake();  // forward same-cycle wake: the frontend evaluates after the cores
}

uint32_t DmaFrontend::pending(uint16_t core) const {
  MEMPOOL_CHECK(core < pending_.size());
  return pending_[core];
}

void DmaFrontend::evaluate(uint64_t /*cycle*/) {
  // 1. Retire slice completions, in ascending backend-group order (matches
  //    the sequential engines' evaluation order of the producing backends).
  for (auto& buf : comp_in_) {
    while (!buf.empty()) {
      const DmaCompletion c = buf.pop();
      DescState& s = table_[c.desc_id];
      MEMPOOL_CHECK_MSG(s.remaining > 0, name()
                                             << ": stray DMA completion for "
                                                "descriptor "
                                             << c.desc_id);
      if (--s.remaining == 0) {
        MEMPOOL_CHECK(pending_[s.core] > 0 && outstanding_ > 0 && in_use_ > 0);
        --pending_[s.core];
        --outstanding_;
        --in_use_;
      }
    }
  }

  // 2. Split one submitted descriptor per cycle (so each outgoing command
  //    buffer sees at most one staged push per cycle).
  if (subs_.empty()) return;
  const auto [core, desc] = subs_.front();
  subs_.pop_front();

  MEMPOOL_CHECK_MSG(in_use_ < kMaxInFlight,
                    name() << ": more than " << kMaxInFlight
                           << " DMA transfers in flight");
  while (table_[next_id_].remaining != 0) {
    next_id_ = static_cast<uint16_t>((next_id_ + 1) % kMaxInFlight);
  }
  const uint16_t id = next_id_;
  next_id_ = static_cast<uint16_t>((next_id_ + 1) % kMaxInFlight);

  // Count the transfer's words per owning group (under scrambling a
  // "contiguous" CPU range fans out non-trivially, so walk the word grid).
  const bool to_l2 = l2_is_dst(*l2_, desc);
  std::vector<uint64_t> words(cfg_->num_groups, 0);
  const uint32_t spm_base = to_l2 ? desc.src : desc.dst;
  const uint32_t spm_stride =
      to_l2 ? desc.src_stride_bytes() : desc.dst_stride_bytes();
  for (uint32_t r = 0; r < desc.rows; ++r) {
    for (uint32_t c = 0; c < desc.words_per_row; ++c) {
      const uint32_t a = spm_base + r * spm_stride + c * 4;
      ++words[cfg_->group_of_tile(layout_->locate(a).tile)];
    }
  }

  uint32_t slices = 0;
  for (uint32_t g = 0; g < cfg_->num_groups; ++g) {
    if (words[g] != 0) ++slices;
  }
  MEMPOOL_CHECK(slices > 0);
  table_[id] = {core, slices};
  ++in_use_;
  ++descriptors_;

  for (uint32_t g = 0; g < cfg_->num_groups; ++g) {
    if (words[g] == 0) continue;
    MEMPOOL_CHECK_MSG(cmd_out_[g] != nullptr,
                      name() << ": backend " << g << " not connected");
    cmd_out_[g]->push(DmaSliceCmd{desc, group_, id, words[g]});
    ++slices_;
  }
  // More submissions queued: stay awake (one split per cycle).
  if (!subs_.empty()) wake();
}

bool DmaFrontend::idle() const {
  if (!subs_.empty()) return false;
  for (const auto& buf : comp_in_) {
    if (!buf.empty()) return false;
  }
  return true;
}

// --- DmaBackend ---------------------------------------------------------------

DmaBackend::DmaBackend(std::string name, uint32_t group,
                       const ClusterConfig& cfg, const MemoryLayout* layout,
                       L2Memory* l2, Arena* arena)
    : Component(std::move(name)),
      group_(group),
      cfg_(&cfg),
      layout_(layout),
      l2_(l2),
      comp_out_(cfg.num_groups, nullptr),
      bank_free_(l2->params().banks, 0) {
  cmd_in_.reserve_exact(cfg.num_groups, arena);
  for (uint32_t g = 0; g < cfg.num_groups; ++g) {
    cmd_in_.emplace_back(BufferMode::kRegistered, /*capacity=*/0, arena);
    cmd_in_.back().set_consumer(this, this->name().c_str());
  }
}

ElasticBuffer<DmaSliceCmd>* DmaBackend::cmd_input(uint32_t g) {
  MEMPOOL_CHECK(g < cmd_in_.size());
  return &cmd_in_[g];
}

void DmaBackend::connect_frontend(uint32_t g,
                                  ElasticBuffer<DmaCompletion>* comp_buf) {
  MEMPOOL_CHECK(g < comp_out_.size() && comp_buf != nullptr);
  comp_out_[g] = comp_buf;
}

void DmaBackend::bind_banks(std::vector<SpmBank*> banks) {
  MEMPOOL_CHECK(banks.size() ==
                std::size_t{cfg_->tiles_per_group()} * cfg_->banks_per_tile);
  banks_ = std::move(banks);
}

void DmaBackend::register_clocked(Engine& engine, uint32_t shard) {
  // Command buffers are consumed by this backend; same reasoning as the
  // frontend's completion inputs.
  for (auto& b : cmd_in_) engine.add_clocked(&b, shard);
}

SpmBank* DmaBackend::locate_word(const DmaDescriptor& d, uint32_t row,
                                 uint32_t col, uint32_t* bank_row,
                                 uint32_t* l2_addr, bool* to_l2) const {
  *to_l2 = l2_is_dst(*l2_, d);
  const uint32_t spm_a = (*to_l2 ? d.src + row * d.src_stride_bytes()
                                 : d.dst + row * d.dst_stride_bytes()) +
                         col * 4;
  const uint32_t l2_a = (*to_l2 ? d.dst + row * d.dst_stride_bytes()
                                : d.src + row * d.src_stride_bytes()) +
                        col * 4;
  const BankLocation loc = layout_->locate(spm_a);
  if (cfg_->group_of_tile(loc.tile) != group_) return nullptr;
  *bank_row = loc.row;
  *l2_addr = l2_a;
  const uint32_t first_tile = group_ * cfg_->tiles_per_group();
  return banks_[(loc.tile - first_tile) * cfg_->banks_per_tile + loc.bank];
}

bool DmaBackend::next_cmd() {
  for (auto& buf : cmd_in_) {
    if (!buf.empty()) {
      slice_ = buf.pop();
      return true;
    }
  }
  return false;
}

void DmaBackend::start_slice(uint64_t cycle) {
  active_ = true;
  slice_words_ = slice_.words;
  MEMPOOL_CHECK_MSG(slice_words_ > 0,
                    name() << ": slice with no words for this group");
  words_done_ = 0;
  cursor_row_ = 0;
  cursor_col_ = 0;
  slice_start_ = cycle;
  // The L2 request latency is paid once per slice; bursts then stream back
  // to back on the AXI data channel.
  port_free_ = cycle + l2_->params().latency;
}

void DmaBackend::schedule_burst(uint64_t cycle) {
  const L2Params& p = l2_->params();
  burst_count_ = static_cast<uint32_t>(
      std::min<uint64_t>(p.burst_words, slice_words_ - words_done_));
  // Approximate L2 bank of this burst from the slice's progress through the
  // L2-side range: consecutive bursts interleave across the banks.
  const bool to_l2 = l2_is_dst(*l2_, slice_.desc);
  const uint32_t l2_base = to_l2 ? slice_.desc.dst : slice_.desc.src;
  const uint64_t l2_word0 = (l2_base - p.base) / 4 + words_done_;
  const uint32_t bank = static_cast<uint32_t>((l2_word0 / p.burst_words) %
                                              p.banks);
  const uint64_t ready = std::max(port_free_, bank_free_[bank]);
  const uint64_t data_time = (burst_count_ + p.words_per_cycle - 1) /
                             p.words_per_cycle;
  burst_done_ = ready + data_time;
  port_free_ = burst_done_;
  bank_free_[bank] = burst_done_;
  ++bursts_;
  MEMPOOL_CHECK(burst_done_ > cycle);
  engine_->wake_at(burst_done_, this);
}

void DmaBackend::apply_burst() {
  const DmaDescriptor& d = slice_.desc;
  uint32_t moved = 0;
  while (moved < burst_count_) {
    MEMPOOL_CHECK(cursor_row_ < d.rows);
    uint32_t bank_row, l2_addr;
    bool to_l2;
    SpmBank* bank = locate_word(d, cursor_row_, cursor_col_, &bank_row,
                                &l2_addr, &to_l2);
    if (++cursor_col_ == d.words_per_row) {
      cursor_col_ = 0;
      ++cursor_row_;
    }
    if (bank == nullptr) continue;  // another group's word
    if (to_l2) {
      l2_->write(l2_addr, bank->dma_read(bank_row));
      ++l2_writes_;
      ++words_out_;
    } else {
      bank->dma_write(bank_row, l2_->read(l2_addr));
      ++l2_reads_;
      ++words_in_;
    }
    ++moved;
  }
  words_done_ += moved;
}

void DmaBackend::finish_slice(uint64_t cycle) {
  busy_ += cycle - slice_start_;
  active_ = false;
  ElasticBuffer<DmaCompletion>* out = comp_out_[slice_.src_group];
  MEMPOOL_CHECK_MSG(out != nullptr,
                    name() << ": frontend " << slice_.src_group
                           << " not connected");
  out->push(DmaCompletion{slice_.desc_id});
}

void DmaBackend::evaluate(uint64_t cycle) {
  MEMPOOL_CHECK_MSG(engine_ != nullptr, name() << ": engine not bound");
  for (;;) {
    if (active_) {
      if (cycle < burst_done_) return;  // woken early; the timer is armed
      apply_burst();
      if (words_done_ == slice_words_) {
        finish_slice(cycle);
        continue;  // immediately start the next queued slice, if any
      }
      schedule_burst(cycle);
      return;
    }
    if (!next_cmd()) return;
    start_slice(cycle);
    schedule_burst(cycle);
    return;
  }
}

bool DmaBackend::idle() const {
  if (active_) return true;  // sleeping between bursts; the timer re-arms us
  for (const auto& buf : cmd_in_) {
    if (!buf.empty()) return false;
  }
  return true;
}

void DmaFrontend::describe(GraphVisitor& v) const {
  // submit() is a direct call from the cores (through the DMA CSRs) that
  // wakes this component — the DRC cannot see those edges from here.
  v.wake_on_demand();
  for (std::size_t g = 0; g < comp_in_.size(); ++g) {
    v.reads(&comp_in_[g], "comp" + std::to_string(g));
    // evaluate() retires every pending completion before doing anything
    // else, with no downstream condition — this is what breaks the
    // command/completion dependency loop for the liveness rules.
    v.sinks_unconditionally(&comp_in_[g], "comp" + std::to_string(g));
  }
  for (std::size_t g = 0; g < cmd_out_.size(); ++g) {
    if (cmd_out_[g] != nullptr) {
      v.writes_buffer(cmd_out_[g], "cmd" + std::to_string(g));
    }
  }
}

void DmaBackend::describe(GraphVisitor& v) const {
  v.self_ticking();  // paces its own bursts on the timer wheel
  for (std::size_t g = 0; g < cmd_in_.size(); ++g) {
    v.reads(&cmd_in_[g], "cmd" + std::to_string(g));
  }
  for (std::size_t g = 0; g < comp_out_.size(); ++g) {
    if (comp_out_[g] != nullptr) {
      v.writes_buffer(comp_out_[g], "comp" + std::to_string(g));
      // Finishing a burst command requires pushing its completion: the
      // command/completion pair is a request/response coupling (D9).
      v.couples_buffer(&cmd_in_[g], comp_out_[g], "dma" + std::to_string(g));
    }
  }
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    // Dedicated wide bank port: word moves by direct call during evaluate.
    v.writes_terminal(banks_[b], "bank" + std::to_string(b));
  }
}

void DmaFrontend::save_state(StateSink& s) const {
  s.u32(static_cast<uint32_t>(subs_.size()));
  for (const auto& [core, desc] : subs_) {
    s.u16(core);
    save_item(s, desc);
  }
  s.u32(static_cast<uint32_t>(table_.size()));
  for (const DescState& d : table_) {
    s.u16(d.core);
    s.u32(d.remaining);
  }
  s.u32(in_use_);
  s.u16(next_id_);
  s.u32(static_cast<uint32_t>(pending_.size()));
  for (const uint32_t p : pending_) s.u32(p);
  s.u32(outstanding_);
  for (const ElasticBuffer<DmaCompletion>& buf : comp_in_) buf.save_state(s);
  s.u64(descriptors_);
  s.u64(slices_);
}

void DmaFrontend::load_state(StateSource& s) {
  subs_.clear();
  const uint32_t nsubs = s.u32();
  for (uint32_t i = 0; i < nsubs; ++i) {
    const uint16_t core = s.u16();
    DmaDescriptor d;
    load_item(s, &d);
    subs_.emplace_back(core, d);
  }
  const uint32_t ntable = s.u32();
  MEMPOOL_CHECK_MSG(ntable == table_.size(),
                    name() << ": DMA descriptor table size mismatch");
  for (DescState& d : table_) {
    d.core = s.u16();
    d.remaining = s.u32();
  }
  in_use_ = s.u32();
  next_id_ = s.u16();
  const uint32_t npending = s.u32();
  MEMPOOL_CHECK_MSG(npending == pending_.size(),
                    name() << ": DMA pending table size mismatch");
  for (uint32_t& p : pending_) p = s.u32();
  outstanding_ = s.u32();
  for (ElasticBuffer<DmaCompletion>& buf : comp_in_) buf.load_state(s);
  descriptors_ = s.u64();
  slices_ = s.u64();
}

void DmaBackend::save_state(StateSink& s) const {
  for (const ElasticBuffer<DmaSliceCmd>& buf : cmd_in_) buf.save_state(s);
  s.b(active_);
  save_item(s, slice_);
  s.u64(slice_words_);
  s.u64(words_done_);
  s.u32(cursor_row_);
  s.u32(cursor_col_);
  s.u64(slice_start_);
  s.u64(burst_done_);
  s.u64(port_free_);
  s.u32(burst_count_);
  s.u32(static_cast<uint32_t>(bank_free_.size()));
  for (const uint64_t f : bank_free_) s.u64(f);
  s.u64(bursts_);
  s.u64(words_in_);
  s.u64(words_out_);
  s.u64(l2_reads_);
  s.u64(l2_writes_);
  s.u64(busy_);
  // Exactly one backend per memory system has group 0; it carries the shared
  // L2 image so the section layout stays one-section-per-component.
  if (group_ == 0) l2_->save_state(s);
}

void DmaBackend::load_state(StateSource& s) {
  for (ElasticBuffer<DmaSliceCmd>& buf : cmd_in_) buf.load_state(s);
  active_ = s.b();
  load_item(s, &slice_);
  slice_words_ = s.u64();
  words_done_ = s.u64();
  cursor_row_ = s.u32();
  cursor_col_ = s.u32();
  slice_start_ = s.u64();
  burst_done_ = s.u64();
  port_free_ = s.u64();
  burst_count_ = s.u32();
  const uint32_t nbanks = s.u32();
  MEMPOOL_CHECK_MSG(nbanks == bank_free_.size(),
                    name() << ": L2 bank count mismatch");
  for (uint64_t& f : bank_free_) f = s.u64();
  bursts_ = s.u64();
  words_in_ = s.u64();
  words_out_ = s.u64();
  l2_reads_ = s.u64();
  l2_writes_ = s.u64();
  busy_ = s.u64();
  if (group_ == 0) l2_->load_state(s);
  // Re-arm the burst-completion wake. A burst_done_ at or before the
  // restored cycle wakes immediately — the uninterrupted run's timer for
  // that cycle had not fired at the save point either.
  if (active_) engine_->wake_at(burst_done_, this);
}

}  // namespace mempool
