#pragma once
// Pluggable memory-hierarchy API, the exact mirror of the fabric-topology
// registry (noc/fabric.hpp) for the memory side of the cluster.
//
// A memory system is one self-contained plugin implementing MemorySystem: it
// owns bank construction, the address-map/scrambler choice, its per-level
// latency/bandwidth parameters (validated against param_keys), and the
// energy/floorplan hooks. Because a memory hierarchy — unlike a topology —
// carries per-cluster state (L2 storage, DMA engines in flight), the plugin
// is a stateless factory: instantiate() returns a MemoryInstance holding
// everything cluster-local, and one plugin serves any number of concurrently
// simulated clusters.
//
// Built-in plugins (mem/memsys_builtin.cpp):
//  tcdm    — the seed-era flat, always-hit shared L1 SPM: banks constructed
//            exactly as before the registry existed, no extra components.
//            Bit-identical to the pre-registry cluster by construction.
//  tcdm+l2 — tcdm plus a banked L2 model behind a latency/bandwidth-limited
//            AXI port per group and a per-group DMA engine (mem/dma.hpp)
//            that moves burst transfers between L2 and the L1 banks. Cores
//            program it through custom CSRs (kernels/runtime.hpp wraps them
//            as dma_copy_in / dma_copy_out / dma_wait intrinsics).
//
// The Cluster contains zero memory-system-specific code: it asks the
// registered plugin for the layout, the banks, and the engine components, so
// adding a hierarchy (an L3, a streaming prefetcher, a banking-conflict
// model) never touches core/, the runner, or the benches — register a plugin
// and --memory / the sweep axis / the JSON schema pick it up.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "core/cluster_config.hpp"
#include "core/layout.hpp"
#include "mem/bank.hpp"
#include "power/energy_params.hpp"
#include "sim/engine.hpp"

namespace mempool {

class Cluster;
class DmaPortal;
class Tile;

/// Aggregate counters of a memory instance (all zero for plain tcdm).
/// Exactly mergeable and compared bit-for-bit by the engine-equivalence
/// suite, like Cluster::FabricStats.
struct MemoryStats {
  uint64_t dma_descriptors = 0;  ///< Transfers submitted by cores.
  uint64_t dma_slices = 0;       ///< Per-group slices those split into.
  uint64_t dma_bursts = 0;       ///< AXI bursts issued.
  uint64_t dma_words_in = 0;     ///< Words moved L2 -> TCDM.
  uint64_t dma_words_out = 0;    ///< Words moved TCDM -> L2.
  uint64_t dma_busy_cycles = 0;  ///< Sum of per-group engine busy windows.
  uint64_t dma_busy_cycles_max = 0;  ///< Max over the group engines.
  uint64_t l2_reads = 0;         ///< L2 words read (by the DMA).
  uint64_t l2_writes = 0;        ///< L2 words written (by the DMA).

  bool operator==(const MemoryStats&) const = default;
};

/// Thin facade over the Cluster handed to MemoryInstance::build: cluster
/// configuration and layout, tile/bank access for the DMA's dedicated bank
/// port, and the fabric plugin's shard partition so memory components can be
/// registered in the shard of the tiles they touch. Methods are defined in
/// cluster.cpp where Cluster is complete.
class MemoryBuilder {
 public:
  const ClusterConfig& config() const;
  const MemoryLayout& layout() const;
  uint32_t num_tiles() const;
  Tile& tile(uint32_t t);

  /// The fabric plugin's shard partition (see FabricTopology::num_shards).
  uint32_t num_shards() const;
  uint32_t tile_shard(uint32_t t) const;
  /// Shard of group @p g; CHECKs that every tile of the group agrees (the
  /// built-in fabrics shard along the group hierarchy, so they always do).
  uint32_t group_shard(uint32_t g) const;
  /// Shard @p shard's component arena: memory engines (DMA frontends,
  /// backends) allocate themselves and their buffers here so they sit next
  /// to the shard's fabric components. The arena outlives the instance.
  Arena& shard_arena(uint32_t shard);

 private:
  friend class Cluster;
  explicit MemoryBuilder(Cluster* c) : c_(c) {}
  Cluster* c_;
};

/// Per-cluster state of a memory system: storage, engine components, stats.
/// Created by MemorySystem::instantiate and owned by the Cluster. The base
/// class implements the flat tcdm behavior (layout straight from the config,
/// banks exactly as the seed constructed them, no components), so tcdm
/// itself is the trivial subclass and richer hierarchies override what they
/// add.
class MemoryInstance {
 public:
  explicit MemoryInstance(const ClusterConfig& cfg) : cfg_(cfg) {}
  virtual ~MemoryInstance() = default;

  MemoryInstance(const MemoryInstance&) = delete;
  MemoryInstance& operator=(const MemoryInstance&) = delete;

  const ClusterConfig& config() const { return cfg_; }

  /// The CPU-visible memory layout (interleaved map + scrambler). Called
  /// once, before the tiles exist.
  virtual MemoryLayout make_layout() const { return MemoryLayout(cfg_); }

  /// Construct tile @p t's L1 banks, in bank order, inside @p arena — the
  /// shard arena of the owning tile, which owns the banks and outlives the
  /// cluster's components. @p input_capacity is the fabric plugin's request
  /// queue depth (0 = unbounded, TopX).
  virtual std::vector<SpmBank*> make_banks(uint32_t t,
                                           std::size_t input_capacity,
                                           Arena& arena);

  /// Create the hierarchy's engine components (DMA engines, ports) and wire
  /// them; called after the tiles and fabric networks exist, before the
  /// clients attach. The default (tcdm) builds nothing.
  virtual void build(MemoryBuilder& b) { (void)b; }

  /// Register the components built above with the engine, each in the shard
  /// build() assigned it. The cluster calls this once, after the clients and
  /// before the request path (memory engines observe core submissions of the
  /// same cycle, banks commit after them).
  virtual void add_components(Engine& engine) { (void)engine; }

  /// The DMA control interface of @p group, or nullptr when this hierarchy
  /// has no DMA engine (tcdm): cores reach it through the DMA CSRs.
  virtual DmaPortal* dma_portal(uint32_t group) {
    (void)group;
    return nullptr;
  }

  /// Backdoor access beyond the L1 SPM (the L2 window): handles() says
  /// whether @p cpu_addr belongs to this hierarchy's extra address space,
  /// and the accessors CHECK-fail when it does not.
  virtual bool handles(uint32_t cpu_addr) const {
    (void)cpu_addr;
    return false;
  }
  virtual uint32_t backdoor_read(uint32_t cpu_addr) const;
  virtual void backdoor_write(uint32_t cpu_addr, uint32_t value);

  /// True when no transfer is in flight anywhere in the hierarchy (the
  /// cluster's fabric_idle — and with it the end-of-run drain — includes
  /// this).
  virtual bool idle() const { return true; }

  virtual MemoryStats stats() const { return {}; }

 protected:
  ClusterConfig cfg_;
};

/// One self-describing memory hierarchy. Implementations are stateless
/// singletons owned by the MemoryRegistry; everything per-cluster lives in
/// the MemoryInstance they instantiate.
class MemorySystem {
 public:
  virtual ~MemorySystem() = default;

  // --- identity -------------------------------------------------------------
  /// Registry key, display name, and serialization name (sweep-JSON v3).
  virtual const std::string& name() const = 0;
  /// One-line summary for --list-memories.
  virtual std::string description() const = 0;
  /// True when instances expose DMA portals (kernels with dma_copy_in/out
  /// intrinsics require this; quickstart keys its DMA demo on it).
  virtual bool provides_dma() const { return false; }

  // --- configuration --------------------------------------------------------
  /// Spec parameter keys this plugin understands; anything else in
  /// MemorySpec::params fails validation (see check_params).
  virtual std::vector<std::string> param_keys() const { return {}; }
  /// Plugin-specific structural constraints; throw CheckError on violation.
  /// The generic geometry checks (powers of two, sequential-region bounds)
  /// already ran.
  virtual void validate(const ClusterConfig& cfg) const { (void)cfg; }

  /// Non-virtual helper: every key in @p spec.params must be in
  /// param_keys(); throws CheckError naming the offender otherwise.
  void check_params(const MemorySpec& spec) const;

  // --- factory --------------------------------------------------------------
  virtual std::unique_ptr<MemoryInstance> instantiate(
      const ClusterConfig& cfg) const = 0;

  // --- energy / floorplan hooks ---------------------------------------------
  struct EnergyRow {
    std::string label;
    InstrEnergy energy;
  };
  /// Analytic Figure-10-style rows for the hierarchy's own operations (e.g.
  /// one DMA word moved L2<->TCDM), priced with @p p on configuration @p cfg.
  virtual std::vector<EnergyRow> energy_rows(const ClusterConfig& cfg,
                                             const EnergyParams& p) const {
    (void)cfg;
    (void)p;
    return {};
  }
  /// Die area the hierarchy adds outside the tiles (the L2 macro); 0 for a
  /// pure-L1 system. Consumed by floorplan sanity checks and reports.
  virtual double extra_area_mm2(const ClusterConfig& cfg) const {
    (void)cfg;
    return 0.0;
  }
};

/// Name-keyed registry of memory-system plugins. tcdm and tcdm+l2 register
/// themselves on first use; user plugins register via add() (from a single
/// thread, before simulation starts).
class MemoryRegistry {
 public:
  static MemoryRegistry& instance();

  /// Register a plugin; throws CheckError on a duplicate name.
  void add(std::unique_ptr<MemorySystem> sys);

  /// nullptr when @p name is not registered.
  static const MemorySystem* find(const std::string& name);
  /// Throws CheckError listing the available memory systems on an unknown
  /// name.
  static const MemorySystem& get(const std::string& name);
  /// Registered names, in registration order.
  static std::vector<std::string> names();
  /// "tcdm, tcdm+l2" — for error messages and CLI help.
  static std::string available();

 private:
  MemoryRegistry();  // registers the built-in plugins
  std::vector<std::unique_ptr<MemorySystem>> systems_;
};

}  // namespace mempool
