#pragma once
// One L1 SPM bank: a single-ported, word-wide scratchpad memory with one-cycle
// access latency. The bank consumes at most one request per cycle (losing
// requesters are held back by the request crossbar's round-robin arbiter) and
// produces its response into a registered output buffer, which is what gives
// every bank access its one-cycle latency floor.
//
// Atomics (RV32A) execute at the bank, so they are atomic by construction:
// the bank is the serialization point for its words.

#include <cstdint>
#include <vector>

#include "sim/component.hpp"
#include "sim/elastic_buffer.hpp"
#include "sim/engine.hpp"
#include "noc/xbar.hpp"

namespace mempool {

class SpmBank final : public Component {
 public:
  /// @param bank_bytes    storage bytes (multiple of 4).
  /// @param input_capacity request queue depth; 0 = unbounded (ideal TopX
  ///                      output-queued fabric).
  /// @param arena         when given, the request queue's deep/unbounded
  ///                      ring storage comes from this arena (the shard
  ///                      arena of the owning cluster).
  SpmBank(std::string name, uint32_t bank_bytes, std::size_t input_capacity = 2,
          Arena* arena = nullptr);

  /// Sink the request fabric pushes into.
  PacketSink* request_input() { return &req_sink_; }

  /// Attach the response destination. In the real topologies this is a
  /// *registered* input of the tile's bank-response crossbar, which acts as
  /// the bank's output register (the one-cycle access latency); in TopX it is
  /// the ideal response bridge.
  void connect_response(PacketSink* sink) { resp_sink_ = sink; }

  void register_clocked(Engine& engine, uint32_t shard = 0);

  void evaluate(uint64_t cycle) override;

  /// Activity contract: nothing to do while the request queue is empty; the
  /// queue's combinational push re-arms the bank within the same cycle.
  bool idle() const override { return req_in_.empty(); }

  /// DRC self-description: reads the request queue, writes the response
  /// sink. Retiring a load/AMO from the queue requires response capacity, so
  /// the pair is a request/response coupling for the liveness rule D9.
  void describe(GraphVisitor& v) const override {
    v.reads(&req_in_, "req");
    if (resp_sink_ != nullptr) {
      v.writes(resp_sink_, "resp");
      v.couples(&req_in_, resp_sink_, "mem");
    }
  }

  /// Backdoor access used by program loaders and result checkers (does not
  /// consume simulated cycles).
  uint32_t backdoor_read(uint32_t row) const;
  void backdoor_write(uint32_t row, uint32_t value);

  /// Checkpoint: memory image, request queue, LR/SC reservations, counters.
  void save_state(StateSink& s) const override;
  void load_state(StateSource& s) override;

  /// Dedicated DMA port (tcdm+l2's per-group engines): word access that is
  /// paced by the DMA backend's burst schedule, not by the tile crossbars,
  /// and counted separately from the core-side accesses.
  uint32_t dma_read(uint32_t row) {
    MEMPOOL_CHECK(row < words_.size());
    ++dma_reads_;
    return words_[row];
  }
  void dma_write(uint32_t row, uint32_t value) {
    MEMPOOL_CHECK(row < words_.size());
    ++dma_writes_;
    words_[row] = value;
  }

  uint32_t rows() const { return static_cast<uint32_t>(words_.size()); }

  // --- statistics / energy hooks -----------------------------------------
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  uint64_t atomics() const { return atomics_; }
  uint64_t accesses() const { return reads_ + writes_ + atomics_; }
  uint64_t dma_reads() const { return dma_reads_; }
  uint64_t dma_writes() const { return dma_writes_; }
  /// Cycles in which a request was waiting but the response path was full.
  uint64_t stall_cycles() const { return stalls_; }

 private:
  uint32_t execute(const Packet& req);       // returns response payload
  void kill_reservations(uint32_t row, uint16_t except_src);

  std::vector<uint32_t> words_;
  PacketBuffer req_in_;
  BufferSink<PacketBuffer> req_sink_;
  PacketSink* resp_sink_ = nullptr;

  struct Reservation {
    uint16_t src;
    uint32_t row;
  };
  std::vector<Reservation> reservations_;

  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t atomics_ = 0;
  uint64_t stalls_ = 0;
  uint64_t dma_reads_ = 0;
  uint64_t dma_writes_ = 0;
};

}  // namespace mempool
