// ReorderBuffer is header-only; this TU anchors the library.
#include "mem/rob.hpp"

namespace mempool {
// Intentionally empty.
}  // namespace mempool
