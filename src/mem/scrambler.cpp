#include "mem/scrambler.hpp"

namespace mempool {

Scrambler::Scrambler(const AddressMap& map, uint32_t seq_region_bytes,
                     bool enabled)
    : enabled_(enabled),
      seq_bytes_(seq_region_bytes),
      bank_bits_(map.bank_bits()),
      t_bits_(map.tile_bits()) {
  MEMPOOL_CHECK(is_pow2(seq_region_bytes));
  const uint32_t sweep = map.banks_per_tile() * 4;  // one row across banks
  MEMPOOL_CHECK_MSG(seq_region_bytes >= sweep,
                    "sequential region smaller than one bank sweep");
  MEMPOOL_CHECK_MSG(seq_region_bytes <= map.banks_per_tile() * map.bank_bytes(),
                    "sequential region larger than a tile's SPM share");
  s_bits_ = log2_exact(seq_region_bytes / sweep);
  seq_total_ = seq_bytes_ * map.num_tiles();
}

}  // namespace mempool
