#pragma once
// Instruction backing memory. MemPool's tiles fetch through a 2 KiB L1 I$
// whose AXI refill port hangs off a non-critical refill network; the backing
// store itself (boot ROM / L2) is outside the paper's evaluation, so it is a
// flat preloaded word array here.

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace mempool {

class InstrMem {
 public:
  static constexpr uint32_t kBase = 0x8000'0000u;

  explicit InstrMem(uint32_t size_bytes = 1u << 20)
      : words_(size_bytes / 4, 0) {
    MEMPOOL_CHECK(size_bytes % 4 == 0);
  }

  bool contains(uint32_t addr) const {
    return addr >= kBase && addr - kBase < words_.size() * 4;
  }

  uint32_t read_word(uint32_t addr) const {
    MEMPOOL_CHECK_MSG(contains(addr) && addr % 4 == 0,
                      "bad ifetch address 0x" << std::hex << addr);
    return words_[(addr - kBase) / 4];
  }

  void write_word(uint32_t addr, uint32_t value) {
    MEMPOOL_CHECK(contains(addr) && addr % 4 == 0);
    words_[(addr - kBase) / 4] = value;
  }

  /// Load a program image (vector of instruction words) at @p addr.
  void load(uint32_t addr, const std::vector<uint32_t>& image) {
    for (std::size_t i = 0; i < image.size(); ++i) {
      write_word(addr + static_cast<uint32_t>(4 * i), image[i]);
    }
  }

  uint32_t size_bytes() const { return static_cast<uint32_t>(words_.size() * 4); }

 private:
  std::vector<uint32_t> words_;
};

}  // namespace mempool
