// AddressMap is header-only; this TU anchors the library.
#include "mem/addr_map.hpp"

namespace mempool {
// Intentionally empty.
}  // namespace mempool
