#pragma once
// The hybrid addressing scheme of Section IV ("scrambling logic").
//
// The CPU-visible map keeps the first 2^(S+t) bytes as per-tile *sequential*
// regions: tile T owns CPU addresses [T·2^S, (T+1)·2^S), which all map to
// banks of tile T (still word-interleaved across the tile's banks). The rest
// of the SPM stays fully interleaved. The transform swaps the s row bits with
// the t tile bits and is applied only inside the sequential window, so it is
// a bijection of the SPM address space onto itself: no aliasing, one shared
// contiguous memory view for all cores — "implemented in hardware with a wire
// crossing and a multiplexer".

#include <cstdint>

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "mem/addr_map.hpp"

namespace mempool {

class Scrambler {
 public:
  /// @param map           the interleaved physical map.
  /// @param seq_region_bytes 2^S bytes of sequential region per tile; must be
  ///        a multiple of one full interleaving sweep of a tile's banks
  ///        (banks_per_tile * 4 bytes) and fit in the tile's SPM share.
  /// @param enabled       disabled ⇒ identity (the paper's Top◇ baselines).
  Scrambler(const AddressMap& map, uint32_t seq_region_bytes, bool enabled);

  /// CPU address -> physical (interleaved) address.
  uint32_t scramble(uint32_t cpu_addr) const {
    if (!enabled_ || cpu_addr >= seq_total_) return cpu_addr;
    // [row | tile(t) | row_lo(s) | bank | byte]  (CPU view, sequential)
    //   -> [row | row_lo(s) | tile(t) | bank | byte]  (physical view)
    const unsigned lo = 2 + bank_bits_;
    const uint32_t row_lo = bits(cpu_addr, lo, s_bits_);
    const uint32_t tile = bits(cpu_addr, lo + s_bits_, t_bits_);
    uint32_t a = cpu_addr;
    a = insert_bits(a, lo, t_bits_, tile);
    a = insert_bits(a, lo + t_bits_, s_bits_, row_lo);
    return a;
  }

  /// Physical address -> CPU address (exact inverse of scramble()).
  uint32_t unscramble(uint32_t phys_addr) const {
    if (!enabled_ || phys_addr >= seq_total_) return phys_addr;
    const unsigned lo = 2 + bank_bits_;
    const uint32_t tile = bits(phys_addr, lo, t_bits_);
    const uint32_t row_lo = bits(phys_addr, lo + t_bits_, s_bits_);
    uint32_t a = phys_addr;
    a = insert_bits(a, lo, s_bits_, row_lo);
    a = insert_bits(a, lo + s_bits_, t_bits_, tile);
    return a;
  }

  bool enabled() const { return enabled_; }

  /// Bytes of sequential region per tile (2^S).
  uint32_t seq_region_bytes() const { return seq_bytes_; }

  /// Total bytes of the sequential window (2^(S+t)).
  uint32_t seq_total_bytes() const { return seq_total_; }

  /// CPU base address of tile @p t's sequential region (valid when enabled).
  uint32_t tile_seq_base(uint32_t tile) const { return tile * seq_bytes_; }

 private:
  bool enabled_;
  uint32_t seq_bytes_;
  uint32_t seq_total_;
  unsigned bank_bits_;
  unsigned t_bits_;
  unsigned s_bits_;
};

}  // namespace mempool
