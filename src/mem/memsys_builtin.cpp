// The two built-in memory-system plugins:
//
//  tcdm    — the seed-era flat shared-L1 SPM. instantiate() returns the base
//            MemoryInstance, whose defaults *are* the pre-registry behavior
//            (layout straight from the config, banks exactly as the Tile
//            constructor used to build them, no extra components), so the
//            default cluster is bit-identical by construction.
//
//  tcdm+l2 — tcdm plus a banked L2 model behind one latency/bandwidth-
//            limited AXI port per group and a per-group DMA engine
//            (mem/dma.hpp). The L2 occupies a separate CPU-address window
//            (default 0xA0000000); cores reach it only through DMA
//            transfers, programmed via the DMA CSRs (isa/csr.hpp) that
//            kernels/runtime.hpp wraps as dma_copy_in/out + dma_wait.
//
// Spec parameters of tcdm+l2 (all non-negative integers):
//   l2_bytes            L2 capacity               (default 8 MiB)
//   l2_latency          request-to-first-data     (default 20 cycles)
//   l2_banks            interleaved L2 banks      (default 16)
//   axi_words_per_cycle per-group AXI bandwidth   (default 8 words/cycle)
//   burst_words         words per AXI burst       (default 64)

#include <algorithm>
#include <memory>

#include "common/check.hpp"
#include "core/tile.hpp"
#include "mem/dma.hpp"
#include "mem/memsys.hpp"

namespace mempool {
namespace memsys {

// --- tcdm ---------------------------------------------------------------------

namespace {

class TcdmSystem final : public MemorySystem {
 public:
  const std::string& name() const override {
    static const std::string n = "tcdm";
    return n;
  }
  std::string description() const override {
    return "flat shared-L1 SPM (the paper's cluster; every access hits)";
  }
  std::unique_ptr<MemoryInstance> instantiate(
      const ClusterConfig& cfg) const override {
    return std::make_unique<MemoryInstance>(cfg);
  }
};

// --- tcdm+l2 ------------------------------------------------------------------

/// Parse a param and range-check it *before* narrowing, so an out-of-range
/// spec value fails with the bound instead of silently wrapping to uint32.
uint32_t l2_param(const MemorySpec& spec, const char* key, uint32_t fallback,
                  uint64_t min, uint64_t max) {
  const uint64_t v = spec.param_uint(key, fallback);
  MEMPOOL_CHECK_MSG(v >= min && v <= max,
                    "memory system 'tcdm+l2' param '"
                        << key << "' (" << v << ") must be in [" << min
                        << ", " << max << "]");
  return static_cast<uint32_t>(v);
}

L2Params l2_params_from(const ClusterConfig& cfg) {
  const MemorySpec& spec = cfg.memory;
  L2Params p;
  // The window [base, 0xC0000000) bounds the capacity at 512 MiB.
  p.bytes = l2_param(spec, "l2_bytes", p.bytes, 4096,
                     0xC000'0000ull - p.base);
  p.latency = l2_param(spec, "l2_latency", p.latency, 1, 1u << 20);
  p.banks = l2_param(spec, "l2_banks", p.banks, 1, 1u << 16);
  p.words_per_cycle =
      l2_param(spec, "axi_words_per_cycle", p.words_per_cycle, 1, 1u << 12);
  p.burst_words = l2_param(spec, "burst_words", p.burst_words, 1, 1u << 20);
  return p;
}

class TcdmL2Instance final : public MemoryInstance {
 public:
  explicit TcdmL2Instance(const ClusterConfig& cfg)
      : MemoryInstance(cfg), l2_(l2_params_from(cfg)) {}

  void build(MemoryBuilder& b) override {
    const uint32_t groups = cfg_.num_groups;
    shard_.resize(groups);
    for (uint32_t g = 0; g < groups; ++g) shard_[g] = b.group_shard(g);

    for (uint32_t g = 0; g < groups; ++g) {
      // The group's engines live in its shard's arena, next to the tiles
      // and networks evaluated in the same shard.
      Arena& arena = b.shard_arena(shard_[g]);
      frontends_.push_back(arena.make<DmaFrontend>(
          "dma" + std::to_string(g) + ".front", g, cfg_, &b.layout(), &l2_,
          &arena));
      backends_.push_back(arena.make<DmaBackend>(
          "dma" + std::to_string(g) + ".back", g, cfg_, &b.layout(), &l2_,
          &arena));
      std::vector<SpmBank*> banks;
      const uint32_t tpg = cfg_.tiles_per_group();
      banks.reserve(std::size_t{tpg} * cfg_.banks_per_tile);
      for (uint32_t t = g * tpg; t < (g + 1) * tpg; ++t) {
        for (uint32_t k = 0; k < cfg_.banks_per_tile; ++k) {
          banks.push_back(&b.tile(t).bank(k));
        }
      }
      backends_.back()->bind_banks(std::move(banks));
    }

    // Command and completion buffers, one per ordered group pair; marked as
    // shard boundaries where the fabric plugin put the groups into
    // different shards (the structural determinism contract of PR 4's
    // sharded engine).
    for (uint32_t g = 0; g < groups; ++g) {
      for (uint32_t h = 0; h < groups; ++h) {
        ElasticBuffer<DmaSliceCmd>* cmd = backends_[h]->cmd_input(g);
        if (shard_[g] != shard_[h]) cmd->mark_shard_boundary(shard_[h]);
        frontends_[g]->connect_backend(h, cmd);

        ElasticBuffer<DmaCompletion>* comp =
            frontends_[g]->completion_input(h);
        if (shard_[g] != shard_[h]) comp->mark_shard_boundary(shard_[g]);
        backends_[h]->connect_frontend(g, comp);
      }
    }
  }

  void add_components(Engine& engine) override {
    for (uint32_t g = 0; g < frontends_.size(); ++g) {
      engine.add_component(frontends_[g], shard_[g]);
      frontends_[g]->register_clocked(engine, shard_[g]);
    }
    for (uint32_t g = 0; g < backends_.size(); ++g) {
      engine.add_component(backends_[g], shard_[g]);
      backends_[g]->bind_engine(&engine);
      backends_[g]->register_clocked(engine, shard_[g]);
    }
  }

  DmaPortal* dma_portal(uint32_t group) override {
    MEMPOOL_CHECK(group < frontends_.size());
    return frontends_[group];
  }

  bool handles(uint32_t cpu_addr) const override {
    return l2_.contains(cpu_addr);
  }
  uint32_t backdoor_read(uint32_t cpu_addr) const override {
    return l2_.read(cpu_addr);
  }
  void backdoor_write(uint32_t cpu_addr, uint32_t value) override {
    l2_.write(cpu_addr, value);
  }

  bool idle() const override {
    for (const auto& f : frontends_) {
      if (f->outstanding() != 0) return false;
    }
    return true;
  }

  MemoryStats stats() const override {
    MemoryStats s;
    for (const auto& f : frontends_) {
      s.dma_descriptors += f->descriptors();
      s.dma_slices += f->slices_issued();
    }
    for (const auto& b : backends_) {
      s.dma_bursts += b->bursts();
      s.dma_words_in += b->words_in();
      s.dma_words_out += b->words_out();
      s.dma_busy_cycles += b->busy_cycles();
      s.dma_busy_cycles_max = std::max(s.dma_busy_cycles_max,
                                       b->busy_cycles());
      s.l2_reads += b->l2_reads();
      s.l2_writes += b->l2_writes();
    }
    return s;
  }

 private:
  L2Memory l2_;
  std::vector<uint32_t> shard_;  ///< Per group.
  // Arena-owned (MemoryBuilder::shard_arena); the arenas outlive this
  // instance, and Arena runs the registered destructors.
  std::vector<DmaFrontend*> frontends_;
  std::vector<DmaBackend*> backends_;
};

class TcdmL2System final : public MemorySystem {
 public:
  const std::string& name() const override {
    static const std::string n = "tcdm+l2";
    return n;
  }
  std::string description() const override {
    return "shared-L1 SPM + banked L2 behind per-group AXI ports with "
           "per-group DMA engines (journal MemPool)";
  }
  bool provides_dma() const override { return true; }
  std::vector<std::string> param_keys() const override {
    return {"l2_bytes", "l2_latency", "l2_banks", "axi_words_per_cycle",
            "burst_words"};
  }
  void validate(const ClusterConfig& cfg) const override {
    // l2_param range-checks every parameter (capacity bounded by the window
    // below the control registers); only word alignment is left to assert.
    const L2Params p = l2_params_from(cfg);
    MEMPOOL_CHECK_MSG(p.bytes % 4 == 0,
                      "l2_bytes (" << p.bytes << ") must be a word multiple");
  }
  std::unique_ptr<MemoryInstance> instantiate(
      const ClusterConfig& cfg) const override {
    return std::make_unique<TcdmL2Instance>(cfg);
  }
  std::vector<EnergyRow> energy_rows(const ClusterConfig& cfg,
                                     const EnergyParams& p) const override {
    (void)cfg;
    // One word moved between L2 and an L1 bank by the DMA: L2 macro access +
    // AXI traversal + L1 bank write/read through the dedicated port. No
    // core-side share — that is the point of the DMA.
    InstrEnergy dma_word;
    dma_word.core = 0;
    dma_word.interconnect = p.axi_word;
    dma_word.memory = p.l2_access + p.bank_access;
    return {{"dma word (L2<->L1)", dma_word}};
  }
  double extra_area_mm2(const ClusterConfig& cfg) const override {
    // GF22-class SRAM macro density, ~0.55 mm^2 per MiB, for the L2 array.
    const L2Params p = l2_params_from(cfg);
    return 0.55 * static_cast<double>(p.bytes) / (1024.0 * 1024.0);
  }
};

}  // namespace

std::unique_ptr<MemorySystem> make_tcdm() {
  return std::make_unique<TcdmSystem>();
}

std::unique_ptr<MemorySystem> make_tcdm_l2() {
  return std::make_unique<TcdmL2System>();
}

}  // namespace memsys
}  // namespace mempool
