#include "mem/bank.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mempool {

SpmBank::SpmBank(std::string name, uint32_t bank_bytes,
                 std::size_t input_capacity, Arena* arena)
    : Component(std::move(name)),
      words_(bank_bytes / 4, 0),
      req_in_(BufferMode::kCombinational, input_capacity, arena),
      req_sink_(req_in_) {
  MEMPOOL_CHECK(bank_bytes >= 4 && bank_bytes % 4 == 0);
  req_in_.set_consumer(this, this->name().c_str());
}

void SpmBank::register_clocked(Engine& /*engine*/, uint32_t /*shard*/) {
  // The request input is combinational and the response register is owned by
  // the downstream crossbar/bridge; nothing to commit here.
}

uint32_t SpmBank::backdoor_read(uint32_t row) const {
  MEMPOOL_CHECK(row < words_.size());
  return words_[row];
}

void SpmBank::backdoor_write(uint32_t row, uint32_t value) {
  MEMPOOL_CHECK(row < words_.size());
  words_[row] = value;
}

void SpmBank::kill_reservations(uint32_t row, uint16_t except_src) {
  reservations_.erase(
      std::remove_if(reservations_.begin(), reservations_.end(),
                     [&](const Reservation& r) {
                       return r.row == row && r.src != except_src;
                     }),
      reservations_.end());
}

uint32_t SpmBank::execute(const Packet& req) {
  const uint32_t row = req.dst_row;
  MEMPOOL_CHECK_MSG(row < words_.size(),
                    name() << ": row " << row << " out of range");
  uint32_t& word = words_[row];
  const uint32_t old = word;

  auto as_signed = [](uint32_t v) { return static_cast<int32_t>(v); };

  switch (req.op) {
    case MemOp::kLoad:
      ++reads_;
      return old;
    case MemOp::kStore: {
      ++writes_;
      uint32_t merged = old;
      for (unsigned b = 0; b < 4; ++b) {
        if (req.be & (1u << b)) {
          merged = (merged & ~(0xFFu << (8 * b))) |
                   (req.data & (0xFFu << (8 * b)));
        }
      }
      word = merged;
      kill_reservations(row, req.src);
      return 0;
    }
    case MemOp::kAmoSwap:
      ++atomics_;
      word = req.data;
      kill_reservations(row, req.src);
      return old;
    case MemOp::kAmoAdd:
      ++atomics_;
      word = old + req.data;
      kill_reservations(row, req.src);
      return old;
    case MemOp::kAmoXor:
      ++atomics_;
      word = old ^ req.data;
      kill_reservations(row, req.src);
      return old;
    case MemOp::kAmoAnd:
      ++atomics_;
      word = old & req.data;
      kill_reservations(row, req.src);
      return old;
    case MemOp::kAmoOr:
      ++atomics_;
      word = old | req.data;
      kill_reservations(row, req.src);
      return old;
    case MemOp::kAmoMin:
      ++atomics_;
      word = static_cast<uint32_t>(
          std::min(as_signed(old), as_signed(req.data)));
      kill_reservations(row, req.src);
      return old;
    case MemOp::kAmoMax:
      ++atomics_;
      word = static_cast<uint32_t>(
          std::max(as_signed(old), as_signed(req.data)));
      kill_reservations(row, req.src);
      return old;
    case MemOp::kAmoMinu:
      ++atomics_;
      word = std::min(old, req.data);
      kill_reservations(row, req.src);
      return old;
    case MemOp::kAmoMaxu:
      ++atomics_;
      word = std::max(old, req.data);
      kill_reservations(row, req.src);
      return old;
    case MemOp::kLoadReserved: {
      ++atomics_;
      // Refresh this hart's reservation.
      for (auto& r : reservations_) {
        if (r.src == req.src) {
          r.row = row;
          return old;
        }
      }
      reservations_.push_back({req.src, row});
      return old;
    }
    case MemOp::kStoreConditional: {
      ++atomics_;
      const auto it = std::find_if(
          reservations_.begin(), reservations_.end(), [&](const Reservation& r) {
            return r.src == req.src && r.row == row;
          });
      if (it == reservations_.end()) return 1;  // failure
      reservations_.erase(it);
      word = req.data;
      kill_reservations(row, req.src);
      return 0;  // success
    }
  }
  return 0;
}

void SpmBank::evaluate(uint64_t /*cycle*/) {
  if (req_in_.empty()) return;
  MEMPOOL_CHECK_MSG(resp_sink_ != nullptr, name() << ": response not connected");
  const Packet& head = req_in_.front();
  const bool needs_resp = op_has_response(head.op);
  if (needs_resp && !resp_sink_->can_accept()) {
    ++stalls_;
    return;
  }
  Packet req = req_in_.pop();
  const uint32_t payload = execute(req);
  if (needs_resp) {
    Packet resp = req;
    resp.data = payload;
    resp_sink_->push(resp);
  }
}

void SpmBank::save_state(StateSink& s) const {
  s.u32(static_cast<uint32_t>(words_.size()));
  for (const uint32_t w : words_) s.u32(w);
  req_in_.save_state(s);
  s.u32(static_cast<uint32_t>(reservations_.size()));
  for (const Reservation& r : reservations_) {
    s.u16(r.src);
    s.u32(r.row);
  }
  s.u64(reads_);
  s.u64(writes_);
  s.u64(atomics_);
  s.u64(stalls_);
  s.u64(dma_reads_);
  s.u64(dma_writes_);
}

void SpmBank::load_state(StateSource& s) {
  const uint32_t rows = s.u32();
  MEMPOOL_CHECK_MSG(rows == words_.size(),
                    name() << ": snapshot has " << rows << " rows, bank has "
                           << words_.size());
  for (uint32_t& w : words_) w = s.u32();
  req_in_.load_state(s);
  reservations_.clear();
  const uint32_t nres = s.u32();
  for (uint32_t i = 0; i < nres; ++i) {
    Reservation r{};
    r.src = s.u16();
    r.row = s.u32();
    reservations_.push_back(r);
  }
  reads_ = s.u64();
  writes_ = s.u64();
  atomics_ = s.u64();
  stalls_ = s.u64();
  dma_reads_ = s.u64();
  dma_writes_ = s.u64();
}

}  // namespace mempool
