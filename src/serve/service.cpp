#include "serve/service.hpp"

#include "runner/thread_pool.hpp"
#include "sim/engine.hpp"

namespace mempool::serve {

namespace {

/// Service-latency histograms: 10 µs buckets up to 10 s. Cache hits land in
/// the first few buckets, cold 256-core points in the hundreds of ms;
/// quantiles of anything slower saturate at the top edge.
constexpr double kLatencyBucketMs = 0.01;
constexpr std::size_t kLatencyBuckets = 1'000'000;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// count/mean/max from the stat plus p50/p99 from the histogram.
Json latency_json(const RunningStat& stat, const Histogram& hist) {
  Json j = Json::object();
  j.set("count", stat.count());
  j.set("mean", stat.mean());
  j.set("max", stat.max());
  j.set("p50", hist.quantile(0.50));
  j.set("p99", hist.quantile(0.99));
  return j;
}

}  // namespace

SimService::SimService(const ServiceConfig& cfg)
    : cache_(cfg.cache_capacity, cfg.cache_dir),
      pool_(std::make_unique<runner::ThreadPool>(cfg.threads)),
      service_hist_(kLatencyBucketMs, kLatencyBuckets),
      hit_hist_(kLatencyBucketMs, kLatencyBuckets),
      computed_hist_(kLatencyBucketMs, kLatencyBuckets) {}

SimService::~SimService() { drain(); }

void SimService::drain() { pool_->wait_idle(); }

unsigned SimService::threads() const { return pool_->num_threads(); }

void SimService::submit(const SimRequest& req, Callback done) {
  const Waiter arrival{std::move(done), std::chrono::steady_clock::now(),
                       /*coalesced=*/false};
  const std::string canonical = req.canonical();

  if (auto cached = cache_.lookup(req)) {
    ServiceResponse resp;
    resp.ok = true;
    resp.result = *std::move(cached);
    resp.key = resp.result.request_key;
    resp.cache_hit = true;
    record_and_deliver(resp, req.config.cluster.topology.name, arrival);
    return;
  }

  std::shared_ptr<Inflight> entry;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(canonical);
    if (it != inflight_.end()) {
      Waiter w = arrival;
      w.coalesced = true;
      it->second->waiters.push_back(std::move(w));
      return;  // answered by the in-flight computation
    }
    entry = std::make_shared<Inflight>();
    entry->request = req;
    entry->waiters.push_back(arrival);
    inflight_.emplace(canonical, entry);
  }
  pool_->submit([this, entry, canonical] { compute(entry, canonical); });
}

void SimService::compute(const std::shared_ptr<Inflight>& entry,
                         const std::string& canonical) {
  ServiceResponse base;
  base.key = entry->request.key();
  try {
    base.result = run_point(entry->request);
    base.ok = true;
  } catch (const LivenessError& e) {
    // The point's progress watchdog fired: the simulation is wedged, and
    // the structured stall attribution rides back to the client instead of
    // the connection hanging until a timeout. Not cached, like all errors.
    base.ok = false;
    base.error = e.what();
    base.liveness = e.report();
  } catch (const std::exception& e) {
    // Bad topology/memory params etc.: a structured error response, never a
    // daemon death. Errors are not cached — the CheckError text is cheap to
    // recompute and a cache entry would outlive plugin registration fixes.
    base.ok = false;
    base.error = e.what();
  }
  if (base.ok) cache_.insert(entry->request, base.result);

  std::vector<Waiter> waiters;
  {
    // cache_.insert happened before the erase, which narrows (but does not
    // close) the race with a concurrent submit: one that missed the cache
    // before our insert and takes inflight_mu_ after this erase starts a
    // fresh computation. Determinism keeps that correct — the window only
    // costs a redundant recompute of an identical point.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    waiters = std::move(entry->waiters);
    inflight_.erase(canonical);
  }
  const std::string& topology =
      entry->request.config.cluster.topology.name;
  for (const Waiter& w : waiters) record_and_deliver(base, topology, w);
}

void SimService::record_and_deliver(const ServiceResponse& base,
                                    const std::string& topology,
                                    const Waiter& waiter) {
  ServiceResponse resp = base;
  resp.coalesced = waiter.coalesced;
  resp.service_ms = ms_since(waiter.arrival);
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++requests_;
    if (!resp.ok) ++errors_;
    if (resp.coalesced) ++coalesced_;
    service_ms_.add(resp.service_ms);
    service_hist_.add(resp.service_ms);
    (resp.cache_hit ? hit_hist_ : computed_hist_).add(resp.service_ms);
    ++topology_load_[topology];  // lissandra-style per-node load counter
  }
  waiter.done(resp);
}

Json SimService::metrics_json() const {
  Json j = Json::object();
  std::size_t inflight;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight = inflight_.size();
  }
  std::lock_guard<std::mutex> lock(metrics_mu_);
  j.set("requests", requests_);
  j.set("errors", errors_);
  j.set("coalesced", coalesced_);
  j.set("inflight", static_cast<uint64_t>(inflight));
  j.set("threads", pool_->num_threads());
  j.set("cache", cache_.stats().to_json());
  j.set("cache_size", static_cast<uint64_t>(cache_.size()));
  j.set("cache_capacity", static_cast<uint64_t>(cache_.capacity()));
  Json lat = Json::object();
  lat.set("overall", latency_json(service_ms_, service_hist_));
  // Split distributions share the RunningStat's count with their histogram
  // counts; mean/max per class are derivable but the quantiles are what the
  // dashboards want.
  lat.set("cache_hit_p50", hit_hist_.quantile(0.50));
  lat.set("cache_hit_p99", hit_hist_.quantile(0.99));
  lat.set("computed_p50", computed_hist_.quantile(0.50));
  lat.set("computed_p99", computed_hist_.quantile(0.99));
  j.set("service_ms", std::move(lat));
  Json load = Json::object();
  for (const auto& [name, count] : topology_load_) load.set(name, count);
  j.set("topology_load", std::move(load));
  return j;
}

ServiceResponse SimService::run(const SimRequest& req) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ServiceResponse out;
  submit(req, [&](const ServiceResponse& resp) {
    std::lock_guard<std::mutex> lock(mu);
    out = resp;
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return out;
}

}  // namespace mempool::serve
