#include "serve/service.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "runner/thread_pool.hpp"
#include "sim/engine.hpp"
#include "sim/snapshot.hpp"

namespace mempool::serve {

namespace {

/// Service-latency histograms: 10 µs buckets up to 10 s. Cache hits land in
/// the first few buckets, cold 256-core points in the hundreds of ms;
/// quantiles of anything slower saturate at the top edge.
constexpr double kLatencyBucketMs = 0.01;
constexpr std::size_t kLatencyBuckets = 1'000'000;

/// Chunk size for deadline polling when no checkpoint interval is
/// configured: small enough that an expired budget aborts the point within
/// a chunk of simulation, large enough that the poll (a mutex and a waiter
/// scan) is noise.
constexpr uint64_t kDeadlinePollCycles = 1024;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// count/mean/max from the stat plus p50/p99 from the histogram.
Json latency_json(const RunningStat& stat, const Histogram& hist) {
  Json j = Json::object();
  j.set("count", stat.count());
  j.set("mean", stat.mean());
  j.set("max", stat.max());
  j.set("p50", hist.quantile(0.50));
  j.set("p99", hist.quantile(0.99));
  return j;
}

/// Entire file as raw bytes; nullopt when it does not exist or cannot be
/// read. Checkpoint images are binary — no JSON layer.
std::optional<std::string> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buf).str();
}

/// Write-temp-then-rename so a daemon killed mid-write leaves either the
/// previous complete image or none — never a torn file that a restart would
/// have to reject.
bool write_binary_file_atomic(const std::string& path,
                              const std::string& data) {
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid() << "."
           << std::this_thread::get_id();
  const std::string tmp = tmp_name.str();
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

SimService::SimService(const ServiceConfig& cfg)
    : cfg_(cfg),
      cache_(cfg.cache_capacity, cfg.cache_dir),
      pool_(std::make_unique<runner::ThreadPool>(cfg.threads)),
      service_hist_(kLatencyBucketMs, kLatencyBuckets),
      hit_hist_(kLatencyBucketMs, kLatencyBuckets),
      computed_hist_(kLatencyBucketMs, kLatencyBuckets) {}

SimService::~SimService() { drain(); }

void SimService::drain() { pool_->wait_idle(); }

unsigned SimService::threads() const { return pool_->num_threads(); }

std::string SimService::checkpoint_path(const std::string& key) const {
  if (cfg_.checkpoint_every == 0 || cfg_.cache_dir.empty()) return "";
  return cfg_.cache_dir + "/" + key + ".ckpt";
}

void SimService::submit(const SimRequest& req, Callback done) {
  const auto now = std::chrono::steady_clock::now();
  const Waiter arrival{std::move(done), now, /*coalesced=*/false,
                       req.deadline_ms == 0
                           ? std::chrono::steady_clock::time_point::max()
                           : now + std::chrono::milliseconds(req.deadline_ms)};
  const std::string canonical = req.canonical();

  if (auto cached = cache_.lookup(req)) {
    ServiceResponse resp;
    resp.ok = true;
    resp.result = *std::move(cached);
    resp.key = resp.result.request_key;
    resp.cache_hit = true;
    record_and_deliver(resp, req.config.cluster.topology.name, arrival);
    return;
  }

  std::shared_ptr<Inflight> entry;
  bool shed = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    const auto it = inflight_.find(canonical);
    if (it != inflight_.end()) {
      // Coalescing is exempt from admission control: a piggybacked waiter
      // consumes no worker and no queue slot.
      Waiter w = arrival;
      w.coalesced = true;
      it->second->waiters.push_back(std::move(w));
      return;  // answered by the in-flight computation
    }
    if (cfg_.max_queue != 0 && inflight_.size() >= cfg_.max_queue) {
      shed = true;
    } else {
      entry = std::make_shared<Inflight>();
      entry->request = req;
      entry->waiters.push_back(arrival);
      inflight_.emplace(canonical, entry);
    }
  }
  if (shed) {
    // Bounded admission: answer immediately with a structured backoff hint
    // instead of queuing without bound. The client retries after
    // retry_after_ms; an unbounded queue would instead convert overload
    // into unbounded latency and memory.
    ServiceResponse resp;
    resp.ok = false;
    resp.kind = "overloaded";
    resp.retry_after_ms = cfg_.retry_after_ms;
    resp.key = req.key();
    std::ostringstream os;
    os << "service overloaded: " << cfg_.max_queue
       << " points already in flight; retry after " << cfg_.retry_after_ms
       << " ms";
    resp.error = os.str();
    record_and_deliver(resp, req.config.cluster.topology.name, arrival);
    return;
  }
  pool_->submit([this, entry, canonical] { compute(entry, canonical); });
}

bool SimService::all_deadlines_expired(
    const std::shared_ptr<Inflight>& entry) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(inflight_mu_);
  for (const Waiter& w : entry->waiters) {
    if (w.deadline > now) return false;
  }
  return !entry->waiters.empty();
}

void SimService::compute(const std::shared_ptr<Inflight>& entry,
                         const std::string& canonical) {
  ServiceResponse base;
  base.key = entry->request.key();
  const std::string ckpt_file = checkpoint_path(base.key);
  bool resumed = false;
  try {
    CheckpointOptions ckpt;
    ckpt.checkpoint_every = cfg_.checkpoint_every;
    if (ckpt.checkpoint_every == 0 && entry->request.deadline_ms != 0) {
      // No checkpointing configured, but the point still needs chunk
      // boundaries to poll its deadline at (snapshots stay off —
      // on_checkpoint is unset).
      ckpt.checkpoint_every = kDeadlinePollCycles;
    }
    ckpt.should_abort = [this, entry] { return all_deadlines_expired(entry); };

    std::string image;  // must outlive run_point (restore_from borrows it)
    if (!ckpt_file.empty()) {
      if (auto on_disk = read_binary_file(ckpt_file)) {
        // A previous daemon died mid-point. Validate the image fully
        // (magic, CRC, length, key) before trusting it; a torn or foreign
        // file is deleted and the point starts cold.
        try {
          const Snapshot snap = Snapshot::deserialize(*on_disk);
          MEMPOOL_CHECK_MSG(snap.key == base.key,
                            "checkpoint '" << ckpt_file
                                           << "' is for a different point");
          image = *std::move(on_disk);
          ckpt.restore_from = &image;
          resumed = true;
        } catch (const std::exception&) {
          std::error_code ec;
          std::filesystem::remove(ckpt_file, ec);
        }
      }
      ckpt.on_checkpoint = [this, &ckpt_file](uint64_t /*cycle*/,
                                              const std::string& img) {
        if (write_binary_file_atomic(ckpt_file, img)) {
          std::lock_guard<std::mutex> lock(metrics_mu_);
          ++checkpoints_;
        }
      };
    }
    base.result = run_point(entry->request, ckpt);
    base.ok = true;
  } catch (const PointAborted& e) {
    base.ok = false;
    base.kind = "deadline_exceeded";
    std::ostringstream os;
    os << "deadline exceeded (" << entry->request.deadline_ms
       << " ms) at simulated cycle " << e.cycle();
    base.error = os.str();
  } catch (const LivenessError& e) {
    // The point's progress watchdog fired: the simulation is wedged, and
    // the structured stall attribution rides back to the client instead of
    // the connection hanging until a timeout. Not cached, like all errors.
    base.ok = false;
    base.kind = "liveness";
    base.error = e.what();
    base.liveness = e.report();
  } catch (const std::exception& e) {
    // Bad topology/memory params etc.: a structured error response, never a
    // daemon death. Errors are not cached — the CheckError text is cheap to
    // recompute and a cache entry would outlive plugin registration fixes.
    base.ok = false;
    base.kind = "invalid";
    base.error = e.what();
  }
  if (base.ok) {
    cache_.insert(entry->request, base.result);
    if (!ckpt_file.empty()) {
      // The result is durable in the cache; the in-flight image is obsolete.
      std::error_code ec;
      std::filesystem::remove(ckpt_file, ec);
    }
    if (resumed) {
      std::lock_guard<std::mutex> lock(metrics_mu_);
      ++resumed_;
    }
  }

  std::vector<Waiter> waiters;
  {
    // cache_.insert happened before the erase, which narrows (but does not
    // close) the race with a concurrent submit: one that missed the cache
    // before our insert and takes inflight_mu_ after this erase starts a
    // fresh computation. Determinism keeps that correct — the window only
    // costs a redundant recompute of an identical point.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    waiters = std::move(entry->waiters);
    inflight_.erase(canonical);
  }
  const std::string& topology =
      entry->request.config.cluster.topology.name;
  for (const Waiter& w : waiters) record_and_deliver(base, topology, w);
}

void SimService::record_and_deliver(const ServiceResponse& base,
                                    const std::string& topology,
                                    const Waiter& waiter) {
  ServiceResponse resp = base;
  resp.coalesced = waiter.coalesced;
  resp.service_ms = ms_since(waiter.arrival);
  if (resp.ok && std::chrono::steady_clock::now() > waiter.deadline) {
    // The point completed, but past this waiter's budget: the result is
    // cached for the future, the waiter still gets the honest answer that
    // its deadline was missed (a coalesced waiter with a tight budget can
    // expire while the patient owner runs on).
    resp.ok = false;
    resp.kind = "deadline_exceeded";
    resp.error = "deadline exceeded: point completed after the budget";
    resp.result = SimResult{};
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    ++requests_;
    if (!resp.ok) ++errors_;
    if (resp.kind == "overloaded") ++shed_;
    if (resp.kind == "deadline_exceeded") ++deadline_exceeded_;
    if (resp.coalesced) ++coalesced_;
    service_ms_.add(resp.service_ms);
    service_hist_.add(resp.service_ms);
    (resp.cache_hit ? hit_hist_ : computed_hist_).add(resp.service_ms);
    ++topology_load_[topology];  // lissandra-style per-node load counter
  }
  waiter.done(resp);
}

Json SimService::metrics_json() const {
  Json j = Json::object();
  std::size_t inflight;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight = inflight_.size();
  }
  std::lock_guard<std::mutex> lock(metrics_mu_);
  j.set("requests", requests_);
  j.set("errors", errors_);
  j.set("coalesced", coalesced_);
  j.set("shed", shed_);
  j.set("deadline_exceeded", deadline_exceeded_);
  j.set("checkpoints", checkpoints_);
  j.set("resumed", resumed_);
  j.set("inflight", static_cast<uint64_t>(inflight));
  j.set("max_queue", static_cast<uint64_t>(cfg_.max_queue));
  j.set("threads", pool_->num_threads());
  j.set("cache", cache_.stats().to_json());
  j.set("cache_size", static_cast<uint64_t>(cache_.size()));
  j.set("cache_capacity", static_cast<uint64_t>(cache_.capacity()));
  Json lat = Json::object();
  lat.set("overall", latency_json(service_ms_, service_hist_));
  // Split distributions share the RunningStat's count with their histogram
  // counts; mean/max per class are derivable but the quantiles are what the
  // dashboards want.
  lat.set("cache_hit_p50", hit_hist_.quantile(0.50));
  lat.set("cache_hit_p99", hit_hist_.quantile(0.99));
  lat.set("computed_p50", computed_hist_.quantile(0.50));
  lat.set("computed_p99", computed_hist_.quantile(0.99));
  j.set("service_ms", std::move(lat));
  Json load = Json::object();
  for (const auto& [name, count] : topology_load_) load.set(name, count);
  j.set("topology_load", std::move(load));
  return j;
}

ServiceResponse SimService::run(const SimRequest& req) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  ServiceResponse out;
  submit(req, [&](const ServiceResponse& resp) {
    std::lock_guard<std::mutex> lock(mu);
    out = resp;
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return out;
}

}  // namespace mempool::serve
