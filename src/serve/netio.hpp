#pragma once
// Tiny AF_UNIX + newline-framing helpers shared by the simulation server and
// client. Deliberately minimal: blocking I/O, one helper per failure mode,
// CheckError (with errno text) on anything unexpected.

#include <cstdint>
#include <string>

namespace mempool::serve {

/// Deterministic fault injection for resilience tests: counter-based (the
/// Nth matching operation faults, process-wide), so a test run with fixed
/// request counts sees the exact same fault schedule every time. All zeros
/// (the default) is fault-free production behavior.
///
/// Seeded programmatically (set_netio_faults) or from the environment:
///   MEMPOOL_NETIO_FAULTS="drop=17,short=31,delay=7:5"
/// meaning every 17th write_all drops the connection, every 31st sends a
/// short prefix then drops, every 7th read stalls 5 ms first.
struct NetioFaults {
  uint32_t drop_every = 0;         ///< Every Nth write_all: shutdown + fail.
  uint32_t short_write_every = 0;  ///< Every Nth write_all: partial + fail.
  uint32_t delay_every = 0;        ///< Every Nth read: sleep delay_ms first.
  uint32_t delay_ms = 0;
};

/// Install @p f process-wide (tests call this; production never does).
/// Resets the operation counters so schedules are reproducible.
void set_netio_faults(const NetioFaults& f);

/// Create, bind, and listen on a stream socket at @p path. A leftover
/// socket file is probed first: if a server still answers on it, this
/// throws (refusing to steal a live daemon's path); if the connect is
/// refused or the file is stale, it is unlinked and rebound — so a daemon
/// killed with SIGKILL can always be restarted on the same path. Throws
/// CheckError on failure — including paths that exceed sockaddr_un's
/// ~107-byte limit.
int listen_unix(const std::string& path);

/// Connect to the server at @p path. Retries once per 50 ms until
/// @p timeout_ms has elapsed (0 = single attempt), so "start the daemon,
/// then the client" races resolve themselves. Throws CheckError on failure.
int connect_unix(const std::string& path, int timeout_ms = 0);

/// Write all of @p data (MSG_NOSIGNAL — a vanished peer is a return of
/// false, not a SIGPIPE). Returns false on any error.
bool write_all(int fd, const std::string& data);

/// Buffered line reader over a blocking fd. read_line strips the trailing
/// '\n' and returns false on EOF/error with the partial line discarded.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}
  bool read_line(std::string* line);

 private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace mempool::serve
