#pragma once
// Tiny AF_UNIX + newline-framing helpers shared by the simulation server and
// client. Deliberately minimal: blocking I/O, one helper per failure mode,
// CheckError (with errno text) on anything unexpected.

#include <string>

namespace mempool::serve {

/// Create, bind, and listen on a stream socket at @p path (an existing stale
/// socket file is unlinked first). Throws CheckError on failure — including
/// paths that exceed sockaddr_un's ~107-byte limit.
int listen_unix(const std::string& path);

/// Connect to the server at @p path. Retries once per 50 ms until
/// @p timeout_ms has elapsed (0 = single attempt), so "start the daemon,
/// then the client" races resolve themselves. Throws CheckError on failure.
int connect_unix(const std::string& path, int timeout_ms = 0);

/// Write all of @p data (MSG_NOSIGNAL — a vanished peer is a return of
/// false, not a SIGPIPE). Returns false on any error.
bool write_all(int fd, const std::string& data);

/// Buffered line reader over a blocking fd. read_line strips the trailing
/// '\n' and returns false on EOF/error with the partial line discarded.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}
  bool read_line(std::string* line);

 private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace mempool::serve
