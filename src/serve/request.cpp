#include "serve/request.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"
#include "mem/memsys.hpp"
#include "noc/fabric.hpp"
#include "sim/shard.hpp"

namespace mempool::serve {

namespace {

/// FNV-1a 64-bit over @p s — tiny, dependency-free, and stable across
/// platforms. Collisions are guarded against by comparing canonical strings
/// wherever the hash is used as a key (see serve/cache.cpp).
uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// {name, params} canonical sub-object; std::map iteration gives the sorted
/// param order. Param values are serialized verbatim (plugins validate their
/// own types).
Json spec_json(const std::string& name,
               const std::map<std::string, Json>& params) {
  Json j = Json::object();
  j.set("name", name);
  Json p = Json::object();
  for (const auto& [k, v] : params) p.set(k, v);
  j.set("params", std::move(p));
  return j;
}

/// Parse a topology/memory member that is either a bare name string or a
/// {name, params} object.
template <typename Spec>
Spec parse_spec(const Json& j, const char* what) {
  Spec spec;
  if (j.type() == Json::Type::kString) {
    spec.name = j.as_string();
    return spec;
  }
  MEMPOOL_CHECK_MSG(j.is_object(), "request member '"
                                       << what
                                       << "' must be a name string or a "
                                          "{name, params} object, got "
                                       << j.dump());
  spec.name = j.at("name").as_string();
  const Json params = j.get("params", Json::object());
  for (const auto& [k, v] : params.members()) spec.params[k] = v;
  return spec;
}

/// The wire-schema members of a run request, in canonical order. from_json
/// rejects anything else by name so a typo ("lamda") fails loudly instead of
/// silently simulating the default.
constexpr const char* kRequestFields[] = {
    "topology",      "memory",          "scrambling",       "num_tiles",
    "cores_per_tile", "banks_per_tile", "bank_bytes",       "seq_region_bytes",
    "num_groups",    "lambda",          "p_local",          "seed",
    "engine",        "sim_threads",     "warmup_cycles",    "measure_cycles",
    "drain_cycles",  "stall_horizon",
    // Delivery metadata, accepted on the wire but excluded from the
    // canonical serialization (it must not split the cache key space).
    "deadline_ms"};

uint32_t override_u32(const Json& j, const char* key, uint32_t fallback) {
  if (!j.contains(key)) return fallback;
  return static_cast<uint32_t>(j.at(key).as_uint());
}

}  // namespace

SimRequest SimRequest::from_config(const TrafficExperimentConfig& cfg) {
  return SimRequest{cfg};
}

SimRequest SimRequest::from_json(const Json& j) {
  MEMPOOL_CHECK_MSG(j.is_object(),
                    "a simulation request must be a JSON object, got "
                        << j.dump());
  for (const auto& [key, value] : j.members()) {
    (void)value;
    bool known = false;
    for (const char* f : kRequestFields) known = known || key == f;
    if (!known) {
      std::ostringstream fields;
      for (const char* f : kRequestFields) {
        if (fields.tellp() > 0) fields << ", ";
        fields << f;
      }
      MEMPOOL_CHECK_MSG(false, "unknown request member '"
                                   << key << "'; the schema has: "
                                   << fields.str());
    }
  }

  TopologySpec topo = j.contains("topology")
                          ? parse_spec<TopologySpec>(j.at("topology"),
                                                     "topology")
                          : TopologySpec{};
  MEMPOOL_CHECK_MSG(FabricRegistry::find(topo.name) != nullptr,
                    "unknown topology '" << topo.name << "'; available: "
                                         << FabricRegistry::available());
  const bool scrambling = j.get("scrambling", Json(true)).as_bool();

  TrafficExperimentConfig cfg;
  // The plugin's canonical scale is the geometry default, so a request that
  // names only the topology means the same cluster the benches run.
  cfg.cluster = ClusterConfig::paper(topo, scrambling);
  cfg.cluster.num_tiles = override_u32(j, "num_tiles", cfg.cluster.num_tiles);
  cfg.cluster.cores_per_tile =
      override_u32(j, "cores_per_tile", cfg.cluster.cores_per_tile);
  cfg.cluster.banks_per_tile =
      override_u32(j, "banks_per_tile", cfg.cluster.banks_per_tile);
  cfg.cluster.bank_bytes =
      override_u32(j, "bank_bytes", cfg.cluster.bank_bytes);
  cfg.cluster.seq_region_bytes =
      override_u32(j, "seq_region_bytes", cfg.cluster.seq_region_bytes);
  cfg.cluster.num_groups =
      override_u32(j, "num_groups", cfg.cluster.num_groups);
  if (j.contains("memory")) {
    MemorySpec mem = parse_spec<MemorySpec>(j.at("memory"), "memory");
    MEMPOOL_CHECK_MSG(MemoryRegistry::find(mem.name) != nullptr,
                      "unknown memory system '" << mem.name << "'; available: "
                                                << MemoryRegistry::available());
    cfg.cluster.memory = std::move(mem);
  }

  cfg.lambda = j.get("lambda", Json(cfg.lambda)).as_double();
  cfg.p_local_seq = j.get("p_local", Json(cfg.p_local_seq)).as_double();
  cfg.seed = j.get("seed", Json(cfg.seed)).as_uint();
  const std::string engine =
      j.get("engine", Json(engine_mode_name(cfg.engine))).as_string();
  MEMPOOL_CHECK_MSG(engine_mode_from_name(engine, &cfg.engine),
                    "unknown engine '" << engine << "'; available: "
                                       << engine_mode_available());
  cfg.sim_threads = static_cast<unsigned>(
      j.get("sim_threads", Json(uint64_t{1})).as_uint());
  cfg.warmup_cycles = j.get("warmup_cycles", Json(cfg.warmup_cycles)).as_uint();
  cfg.measure_cycles =
      j.get("measure_cycles", Json(cfg.measure_cycles)).as_uint();
  cfg.drain_cycles = j.get("drain_cycles", Json(cfg.drain_cycles)).as_uint();
  cfg.stall_horizon =
      j.get("stall_horizon", Json(cfg.stall_horizon)).as_uint();
  SimRequest req{cfg};
  req.deadline_ms = j.get("deadline_ms", Json(uint64_t{0})).as_uint();
  return req;
}

Json SimRequest::to_json() const {
  const ClusterConfig& c = config.cluster;
  Json j = Json::object();
  j.set("topology", spec_json(c.topology.name, c.topology.params));
  j.set("memory", spec_json(c.memory.name, c.memory.params));
  j.set("scrambling", c.scrambling);
  j.set("num_tiles", c.num_tiles);
  j.set("cores_per_tile", c.cores_per_tile);
  j.set("banks_per_tile", c.banks_per_tile);
  j.set("bank_bytes", c.bank_bytes);
  j.set("seq_region_bytes", c.seq_region_bytes);
  j.set("num_groups", c.num_groups);
  j.set("lambda", config.lambda);
  j.set("p_local", config.p_local_seq);
  j.set("seed", config.seed);
  j.set("engine", engine_mode_name(config.engine));
  // sim_threads cannot influence the sequential engines, and even the
  // sharded engine is bit-identical for every thread count — but it is kept
  // in the canonical form (normalized where meaningless) as provenance of
  // how the point would be executed.
  j.set("sim_threads",
        uint64_t{config.engine == EngineMode::kSharded ? config.sim_threads
                                                       : 1u});
  j.set("warmup_cycles", config.warmup_cycles);
  j.set("measure_cycles", config.measure_cycles);
  j.set("drain_cycles", config.drain_cycles);
  // The watchdog never changes simulation results (it can only abort a
  // wedged point), but it is part of the canonical form: a point that would
  // abort must not be answered from a cache entry computed with a different
  // horizon, and vice versa.
  j.set("stall_horizon", config.stall_horizon);
  return j;
}

std::string SimRequest::canonical() const { return to_json().dump(0); }

uint64_t SimRequest::content_hash() const {
  return fnv1a64(std::string(kResultVersion) + '\n' + canonical());
}

std::string SimRequest::key() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, content_hash());
  return buf;
}

std::string SimRequest::label() const {
  std::ostringstream os;
  os << config.cluster.topology.name << " mem=" << config.cluster.memory.name
     << " λ=" << config.lambda << " p=" << config.p_local_seq
     << " seed=" << config.seed;
  return os.str();
}

void SimRequest::validate() const {
  config.cluster.validate();
  MEMPOOL_CHECK_MSG(std::isfinite(config.lambda) && config.lambda >= 0.0,
                    "lambda (" << config.lambda
                               << ") must be a finite non-negative load");
  MEMPOOL_CHECK_MSG(std::isfinite(config.p_local_seq) &&
                        config.p_local_seq >= 0.0 && config.p_local_seq <= 1.0,
                    "p_local (" << config.p_local_seq
                                << ") must be a probability in [0, 1]");
  MEMPOOL_CHECK_MSG(config.measure_cycles >= 1,
                    "measure_cycles must be >= 1 (an empty measure window "
                    "has no defined throughput)");
  MEMPOOL_CHECK_MSG(config.sim_threads >= 1, "sim_threads must be >= 1");
}

Json SimResult::to_json() const {
  Json j = Json::object();
  j.set("request_key", request_key);
  j.set("offered", point.offered);
  j.set("generated", point.generated);
  j.set("accepted", point.accepted);
  j.set("avg_latency", point.avg_latency);
  j.set("p95_latency", point.p95_latency);
  j.set("max_latency", point.max_latency);
  j.set("completed", point.completed);
  return j;
}

SimResult SimResult::from_json(const Json& j) {
  SimResult r;
  r.request_key = j.at("request_key").as_string();
  r.point.offered = j.at("offered").as_double();
  r.point.generated = j.at("generated").as_double();
  r.point.accepted = j.at("accepted").as_double();
  r.point.avg_latency = j.at("avg_latency").as_double();
  r.point.p95_latency = j.at("p95_latency").as_double();
  r.point.max_latency = j.at("max_latency").as_double();
  r.point.completed = j.at("completed").as_uint();
  return r;
}

SimResult run_point(const SimRequest& req) {
  req.validate();
  SimResult r;
  r.request_key = req.key();
  r.point = run_traffic_point(req.config);
  return r;
}

SimResult run_point(const SimRequest& req, CheckpointOptions ckpt) {
  req.validate();
  SimResult r;
  r.request_key = req.key();
  ckpt.key = r.request_key;
  r.point = run_traffic_point(req.config, ckpt);
  return r;
}

}  // namespace mempool::serve
