#pragma once
// SimRequest / SimResult: the canonical request API of the simulation
// service (sweep-as-a-service, ROADMAP item 3).
//
// Every way of running one simulation point — a bench CLI, the parallel
// sweep runner, the persistent server — goes through the same pair:
//
//   SimRequest  names everything that influences the physics of a point
//               (topology spec, memory spec, cluster geometry, λ, p_local,
//               seed, engine, cycle windows) and defines a *canonical
//               serialization*: fixed field order, every defaulted field
//               made explicit, plugin params sorted by key, numeric types
//               normalized. Two requests that mean the same point therefore
//               serialize to the same bytes regardless of member order,
//               whitespace, or which fields the sender spelled out — and the
//               content hash over those bytes is a stable cache key.
//
//   SimResult   mirrors the measured half of a mempool.sweep.v3 point
//               (offered/generated/accepted, latency stats, completed) plus
//               the request key it answers.
//
//   run_point() the one entry: validate, simulate, return. Construction /
//               validation errors surface as CheckError — the CLI harnesses
//               die loudly exactly as before, while the server catches them
//               and answers a structured JSON error instead of terminating.
//
// The content hash is salted with kResultVersion; bump it whenever an
// engine change affects simulation results so every cached result — in
// memory and on disk — is invalidated at once.

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "traffic/experiment.hpp"

namespace mempool::serve {

/// Result-compatibility version, folded into every content hash. Bump on any
/// change that alters simulation physics (engine scheduling is exempt: all
/// engines are bit-identical by contract).
inline constexpr const char* kResultVersion = "mempool-sim-v1";

struct SimRequest {
  /// Full-fidelity point configuration. The canonical serialization covers
  /// the same field set as a mempool.sweep.v3 point; CoreConfig / ICache
  /// timing parameters are not part of it because traffic experiments
  /// replace the cores with generators (see runner/results.hpp).
  TrafficExperimentConfig config;

  /// Wall-clock budget in milliseconds, measured from arrival at the
  /// service; 0 = none. An expired request answers a structured
  /// kind="deadline_exceeded" error instead of occupying a worker. NOT part
  /// of the canonical serialization: the deadline is delivery metadata, the
  /// same point with a different budget must hit the same cache entry.
  uint64_t deadline_ms = 0;

  /// Wrap an existing experiment config verbatim (the sweep-expansion path).
  static SimRequest from_config(const TrafficExperimentConfig& cfg);

  /// Parse a request object (the service wire schema). Every field is
  /// optional; absent fields take the canonical defaults — the cluster
  /// geometry defaults to ClusterConfig::paper(topology, scrambling), so
  /// `{"topology": "TopH2"}` means the plugin's canonical 1024-core cluster.
  /// Unknown members, unknown topology / memory / engine names, and
  /// ill-typed values throw CheckError naming what would be valid.
  static SimRequest from_json(const Json& j);

  /// Canonical serialization: fixed member order, explicit defaults, params
  /// sorted by key (std::map order), λ/p_local emitted as doubles and the
  /// integer fields as integers regardless of how the sender typed them,
  /// sim_threads normalized to 1 for the sequential engines (it cannot
  /// influence their results).
  Json to_json() const;

  /// to_json() dumped without whitespace — the byte string that is hashed.
  std::string canonical() const;

  /// FNV-1a 64-bit hash over kResultVersion + '\n' + canonical().
  uint64_t content_hash() const;

  /// content_hash() as 16 lowercase hex digits — the cache key and on-disk
  /// file stem.
  std::string key() const;

  /// Human-readable one-liner ("TopH mem=tcdm λ=0.2 p=0 seed=1") for logs.
  std::string label() const;

  /// Throws CheckError when the point cannot be simulated: invalid cluster
  /// geometry / plugin params (ClusterConfig::validate), non-finite or
  /// negative λ, p_local outside [0,1], an empty measure window, or zero
  /// sim_threads.
  void validate() const;

  /// Canonical equality: same point, independent of representation.
  bool operator==(const SimRequest& other) const {
    return canonical() == other.canonical();
  }
};

struct SimResult {
  std::string request_key;  ///< SimRequest::key() this result answers.
  TrafficPoint point;       ///< The measured sweep-v3 point fields.

  bool operator==(const SimResult&) const = default;

  Json to_json() const;
  static SimResult from_json(const Json& j);
};

/// The single simulation entry shared by benches, the sweep runner, and the
/// server: validate @p req, run it, and return the measured point. Pure and
/// thread-safe like run_traffic_point; throws CheckError on invalid requests.
SimResult run_point(const SimRequest& req);

/// Checkpoint-aware variant (same result bit for bit): the point can be
/// periodically snapshotted, resumed from an image, and aborted between
/// chunks — see CheckpointOptions. The service uses this to survive daemon
/// restarts and to enforce deadlines mid-run. @p ckpt.key is overridden
/// with req.key() so images are always stamped with the content hash.
SimResult run_point(const SimRequest& req, CheckpointOptions ckpt);

}  // namespace mempool::serve
