#pragma once
// SimService: the in-process heart of the simulation server — a result
// cache, an in-flight dedupe table, and a batch executor in front of
// run_point(), independent of any transport so it is testable (and usable)
// without sockets.
//
// A submitted request takes one of three paths:
//
//   cache hit   answered immediately on the submitting thread (memory or
//               disk tier, see serve/cache.hpp);
//   coalesced   an identical point is already being simulated: the request
//               piggybacks on it and is answered by the same computation —
//               a thousand users asking for the same sweep point cost one
//               simulation;
//   miss        the point is queued onto the runner ThreadPool (the same
//               work-stealing pool the sweep runner batches points on) and
//               computed by run_point(); the result is inserted into the
//               cache and every waiter is answered.
//
// submit() never blocks on simulation and callbacks never wedge the pool:
// the in-flight owner computes on a pool thread while every waiter is a
// stored callback, not a blocked thread, so dedupe cannot deadlock however
// small the pool is. Invalid requests (bad geometry, unknown plugin params)
// surface as ok=false responses carrying the CheckError text — the service
// keeps running (satellite: errors are structured responses, not daemon
// deaths).
//
// Metrics, à la lissandra's mem-node bookkeeping: request / error /
// coalesced counters, cache hit rates, service-latency distributions
// (overall and split hit vs computed; p50/p99 from a fixed-width histogram
// that saturates at 10 s), and a per-topology load table.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "serve/cache.hpp"
#include "serve/request.hpp"

namespace mempool::runner {
class ThreadPool;
}  // namespace mempool::runner

namespace mempool::serve {

struct ServiceConfig {
  /// Simulation workers (runner::ThreadPool); 0 = MEMPOOL_THREADS env /
  /// hardware concurrency.
  unsigned threads = 0;
  /// In-memory result-cache entries.
  std::size_t cache_capacity = 1024;
  /// On-disk cache directory; empty = memory tier only.
  std::string cache_dir;
  /// Admission bound: maximum distinct points in flight (queued or
  /// computing). Beyond it new points are shed with kind="overloaded" and a
  /// retry_after_ms hint instead of growing the queue without bound. Cache
  /// hits and coalesced requests are exempt — they consume no worker.
  /// 0 = unbounded (the pre-resilience behavior).
  std::size_t max_queue = 0;
  /// The retry hint attached to shed responses.
  int retry_after_ms = 250;
  /// Periodic engine-checkpoint interval in simulated cycles for long
  /// running points; 0 disables. With a cache_dir, each in-flight point
  /// write-through persists its latest mempool.ckpt.v1 image to
  /// <cache_dir>/<key>.ckpt (write-then-rename), a restarted daemon resumes
  /// the point from the image, and the file is removed once the result is
  /// cached. Without a cache_dir the interval only paces deadline polling.
  uint64_t checkpoint_every = 0;
};

/// Everything the server reports back per request.
struct ServiceResponse {
  bool ok = false;
  SimResult result;       ///< Valid when ok.
  std::string error;      ///< CheckError text when !ok.
  /// Machine-readable failure class when !ok: "invalid" (bad request /
  /// CheckError), "liveness" (progress watchdog fired), "deadline_exceeded"
  /// (the request's wall-clock budget ran out), "overloaded" (admission
  /// queue full, retry_after_ms says when to come back). Empty when ok.
  std::string kind;
  /// Backoff hint in ms, nonzero only with kind="overloaded".
  int retry_after_ms = 0;
  /// mempool.liveness.v1 report when !ok because the point's progress
  /// watchdog fired (LivenessError): the wedged point answers with the
  /// stall attribution instead of hanging the connection. Null otherwise.
  Json liveness;
  std::string key;        ///< SimRequest::key() (content hash).
  bool cache_hit = false; ///< Served from the result cache.
  bool coalesced = false; ///< Piggybacked on an in-flight identical point.
  double service_ms = 0;  ///< Arrival to completion, this request.
};

class SimService {
 public:
  using Callback = std::function<void(const ServiceResponse&)>;

  explicit SimService(const ServiceConfig& cfg = {});
  ~SimService();  ///< Drains in-flight computations.

  /// Asynchronous entry. @p done runs exactly once: on the submitting thread
  /// for cache hits, on a pool thread otherwise. Callbacks must not throw
  /// and must not call the blocking run() (they execute on pool workers).
  void submit(const SimRequest& req, Callback done);

  /// Blocking convenience wrapper around submit() for clients, tools, and
  /// tests. Must not be called from a pool callback (it would wait on the
  /// thread it occupies).
  ServiceResponse run(const SimRequest& req);

  /// Block until every submitted request has been answered.
  void drain();

  unsigned threads() const;
  ResultCache& cache() { return cache_; }

  /// Metrics snapshot: counters, cache stats, p50/p99 service latency
  /// (overall / hit / computed), per-topology load (see README).
  Json metrics_json() const;

 private:
  struct Waiter {
    Callback done;
    std::chrono::steady_clock::time_point arrival;
    bool coalesced = false;
    /// Absolute expiry (arrival + the request's deadline_ms); time_point::max
    /// when the request carries no deadline.
    std::chrono::steady_clock::time_point deadline;
  };
  struct Inflight {
    SimRequest request;
    std::vector<Waiter> waiters;
  };

  void compute(const std::shared_ptr<Inflight>& entry,
               const std::string& canonical);
  void record_and_deliver(const ServiceResponse& base,
                          const std::string& topology, const Waiter& waiter);
  /// True when every waiter's deadline has expired — the abort predicate a
  /// running point polls between chunks. A single no-deadline waiter keeps
  /// the point alive (a coalesced patient request must still be answered).
  bool all_deadlines_expired(const std::shared_ptr<Inflight>& entry);
  /// <cache_dir>/<key>.ckpt, or "" when checkpoint persistence is off.
  std::string checkpoint_path(const std::string& key) const;

  ServiceConfig cfg_;
  ResultCache cache_;
  std::unique_ptr<runner::ThreadPool> pool_;

  mutable std::mutex inflight_mu_;
  /// Keyed by the canonical request string (exact, collision-free).
  std::unordered_map<std::string, std::shared_ptr<Inflight>> inflight_;

  mutable std::mutex metrics_mu_;
  uint64_t requests_ = 0;
  uint64_t errors_ = 0;
  uint64_t coalesced_ = 0;
  uint64_t shed_ = 0;               ///< Overload-shed requests.
  uint64_t deadline_exceeded_ = 0;  ///< Deadline-expired requests.
  uint64_t checkpoints_ = 0;        ///< Point snapshots persisted to disk.
  uint64_t resumed_ = 0;            ///< Points resumed from a disk image.
  RunningStat service_ms_;
  Histogram service_hist_;
  Histogram hit_hist_;
  Histogram computed_hist_;
  std::map<std::string, uint64_t> topology_load_;
};

}  // namespace mempool::serve
