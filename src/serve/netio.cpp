#include "serve/netio.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/check.hpp"

namespace mempool::serve {

namespace {

// --- deterministic fault injection ------------------------------------------
// Process-wide counters; every write/read increments its counter and faults
// when the configured period divides it. Relaxed atomics: the exact
// interleaving across threads does not matter for the tests (they drive a
// single connection), only that the schedule is periodic and cannot race to
// a torn value.

NetioFaults g_faults;  // written by set_netio_faults before I/O starts
std::atomic<uint64_t> g_write_ops{0};
std::atomic<uint64_t> g_read_ops{0};

/// One-time env seeding: MEMPOOL_NETIO_FAULTS="drop=N,short=N,delay=N:MS".
/// Unknown keys and malformed numbers are ignored (a typo disables the
/// fault, it never crashes the daemon).
void seed_faults_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("MEMPOOL_NETIO_FAULTS");
    if (env == nullptr || *env == '\0') return;
    NetioFaults f = g_faults;
    std::string spec(env);
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string item = spec.substr(pos, comma - pos);
      pos = comma + 1;
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = item.substr(0, eq);
      const std::string val = item.substr(eq + 1);
      const auto num = [](const std::string& s) -> uint32_t {
        return static_cast<uint32_t>(std::strtoul(s.c_str(), nullptr, 10));
      };
      if (key == "drop") {
        f.drop_every = num(val);
      } else if (key == "short") {
        f.short_write_every = num(val);
      } else if (key == "delay") {
        const std::size_t colon = val.find(':');
        f.delay_every = num(val.substr(0, colon));
        if (colon != std::string::npos) f.delay_ms = num(val.substr(colon + 1));
      }
    }
    g_faults = f;
  });
}

bool period_hit(uint32_t every, uint64_t op) {
  return every != 0 && op % every == 0;
}

/// Thread-safe strerror: the plain strerror() may format into a shared
/// static buffer (concurrency-mt-unsafe), and these messages are built on
/// server accept/reader threads. The two strerror_r flavors (XSI returns
/// int and fills buf, GNU returns the message pointer) are disambiguated by
/// overload so the same call compiles against either libc.
[[maybe_unused]] const char* strerror_result(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char* strerror_result(const char* msg,
                                             const char* /*buf*/) {
  return msg;
}

std::string errno_text(int err) {
  char buf[128];
  return strerror_result(strerror_r(err, buf, sizeof buf), buf);
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MEMPOOL_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                    "socket path '" << path << "' exceeds the AF_UNIX limit ("
                                    << sizeof(addr.sun_path) - 1 << " bytes)");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void set_netio_faults(const NetioFaults& f) {
  g_faults = f;
  g_write_ops.store(0, std::memory_order_relaxed);
  g_read_ops.store(0, std::memory_order_relaxed);
}

int listen_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  // A leftover socket file is either a live daemon's or a corpse from a
  // crashed one (SIGKILL never unlinks). Probe it: a successful connect
  // means a server answers there — refuse to steal its path; anything else
  // (refused, no such file) means stale — unlink and rebind.
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  MEMPOOL_CHECK_MSG(probe >= 0, "socket(): " << errno_text(errno));
  const bool live =
      ::connect(probe, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0;
  ::close(probe);
  MEMPOOL_CHECK_MSG(!live, "socket path '"
                               << path
                               << "' already has a live server listening; "
                                  "refusing to unlink it");
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  MEMPOOL_CHECK_MSG(fd >= 0, "socket(): " << errno_text(errno));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    MEMPOOL_CHECK_MSG(false, "bind('" << path
                                      << "'): " << errno_text(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    MEMPOOL_CHECK_MSG(false, "listen('" << path
                                        << "'): " << errno_text(err));
  }
  return fd;
}

int connect_unix(const std::string& path, int timeout_ms) {
  const sockaddr_un addr = make_addr(path);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MEMPOOL_CHECK_MSG(fd >= 0, "socket(): " << errno_text(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      MEMPOOL_CHECK_MSG(false, "connect('" << path << "'): "
                                           << errno_text(err)
                                           << (timeout_ms > 0
                                                   ? " (retries exhausted)"
                                                   : ""));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

bool write_all(int fd, const std::string& data) {
  seed_faults_from_env();
  const uint64_t op = g_write_ops.fetch_add(1, std::memory_order_relaxed) + 1;
  if (period_hit(g_faults.drop_every, op)) {
    // Injected connection drop: the peer sees EOF mid-stream, exactly like
    // a daemon dying between responses.
    ::shutdown(fd, SHUT_RDWR);
    return false;
  }
  if (period_hit(g_faults.short_write_every, op)) {
    // Injected short write: a prefix of the frame escapes, then the
    // connection dies — the peer's LineReader must discard the partial
    // line, the writer must report failure.
    const std::size_t half = data.size() / 2;
    if (half > 0) ::send(fd, data.data(), half, MSG_NOSIGNAL);
    ::shutdown(fd, SHUT_RDWR);
    return false;
  }
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineReader::read_line(std::string* line) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (eof_) return false;
    seed_faults_from_env();
    const uint64_t op = g_read_ops.fetch_add(1, std::memory_order_relaxed) + 1;
    if (period_hit(g_faults.delay_every, op) && g_faults.delay_ms > 0) {
      // Injected latency: exercises client read timeouts without a real
      // slow network.
      std::this_thread::sleep_for(std::chrono::milliseconds(g_faults.delay_ms));
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_ = true;
      return false;
    }
    if (n == 0) {
      eof_ = true;
      return false;  // partial trailing line (no '\n') is not a request
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mempool::serve
