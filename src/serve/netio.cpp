#include "serve/netio.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.hpp"

namespace mempool::serve {

namespace {

/// Thread-safe strerror: the plain strerror() may format into a shared
/// static buffer (concurrency-mt-unsafe), and these messages are built on
/// server accept/reader threads. The two strerror_r flavors (XSI returns
/// int and fills buf, GNU returns the message pointer) are disambiguated by
/// overload so the same call compiles against either libc.
const char* strerror_result(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
const char* strerror_result(const char* msg, const char* /*buf*/) {
  return msg;
}

std::string errno_text(int err) {
  char buf[128];
  return strerror_result(strerror_r(err, buf, sizeof buf), buf);
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  MEMPOOL_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                    "socket path '" << path << "' exceeds the AF_UNIX limit ("
                                    << sizeof(addr.sun_path) - 1 << " bytes)");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

int listen_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  ::unlink(path.c_str());  // a stale socket file from a dead server
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  MEMPOOL_CHECK_MSG(fd >= 0, "socket(): " << errno_text(errno));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    MEMPOOL_CHECK_MSG(false, "bind('" << path
                                      << "'): " << errno_text(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    MEMPOOL_CHECK_MSG(false, "listen('" << path
                                        << "'): " << errno_text(err));
  }
  return fd;
}

int connect_unix(const std::string& path, int timeout_ms) {
  const sockaddr_un addr = make_addr(path);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    MEMPOOL_CHECK_MSG(fd >= 0, "socket(): " << errno_text(errno));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    const int err = errno;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      MEMPOOL_CHECK_MSG(false, "connect('" << path << "'): "
                                           << errno_text(err)
                                           << (timeout_ms > 0
                                                   ? " (retries exhausted)"
                                                   : ""));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineReader::read_line(std::string* line) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (eof_) return false;
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_ = true;
      return false;
    }
    if (n == 0) {
      eof_ = true;
      return false;  // partial trailing line (no '\n') is not a request
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace mempool::serve
