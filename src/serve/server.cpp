#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cstdio>

#include "common/check.hpp"
#include "serve/netio.hpp"

namespace mempool::serve {

namespace {

/// "id" is echoed verbatim; absent means null in responses so every line is
/// still correlatable by shape.
Json get_id(const Json& line) {
  if (line.is_object() && line.contains("id")) return line.at("id");
  return Json();
}

Json error_response(const Json& id, const std::string& message) {
  Json j = Json::object();
  j.set("id", id);
  j.set("ok", false);
  j.set("kind", "invalid");
  j.set("error", message);
  return j;
}

Json response_json(const Json& id, const ServiceResponse& resp) {
  Json j = Json::object();
  j.set("id", id);
  j.set("ok", resp.ok);
  if (!resp.ok) {
    j.set("error", resp.error);
    // Machine-readable failure class plus the overload backoff hint, so
    // clients can decide retryability without parsing error text.
    j.set("kind", resp.kind.empty() ? "invalid" : resp.kind);
    if (resp.retry_after_ms > 0) j.set("retry_after_ms", resp.retry_after_ms);
    // Watchdog aborts attach their mempool.liveness.v1 stall attribution so
    // the client learns *where* the point wedged, not just that it did.
    if (!resp.liveness.is_null()) j.set("liveness", resp.liveness);
    return j;
  }
  j.set("key", resp.key);
  j.set("cached", resp.cache_hit);
  j.set("coalesced", resp.coalesced);
  j.set("service_ms", resp.service_ms);
  j.set("result", resp.result.to_json());
  return j;
}

}  // namespace

SimServer::SimServer(ServerConfig cfg)
    : cfg_(std::move(cfg)), service_(cfg_.service) {
  MEMPOOL_CHECK_MSG(!cfg_.socket_path.empty(),
                    "SimServer requires a socket path");
}

SimServer::~SimServer() {
  stop();
  wait();
}

void SimServer::start() {
  MEMPOOL_CHECK_MSG(!started_, "SimServer::start() called twice");
  listen_fd_ = listen_unix(cfg_.socket_path);
  started_ = true;
  if (cfg_.log) {
    std::fprintf(stderr, "[sim_server] listening on %s (%u worker threads)\n",
                 cfg_.socket_path.c_str(), service_.threads());
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void SimServer::stop() {
  if (stopping_.exchange(true)) return;
  std::lock_guard<std::mutex> lock(stop_mu_);
  stop_cv_.notify_all();
}

void SimServer::wait() {
  if (!started_ || torn_down_) return;
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait(lock, [this] { return stopping_.load(); });
  }
  torn_down_ = true;

  // Teardown order matters: stop accepting, wake every blocked reader, join
  // them (no new submissions after that), drain the pool so every accepted
  // request is still answered, and only then close the fds.
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  std::vector<Slot> slots;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    slots.swap(conns_);
  }
  for (Slot& s : slots) {
    std::lock_guard<std::mutex> lock(s.conn->write_mu);
    if (s.conn->open) ::shutdown(s.conn->fd, SHUT_RD);
  }
  for (Slot& s : slots) s.reader.join();
  service_.drain();
  for (Slot& s : slots) {
    std::lock_guard<std::mutex> lock(s.conn->write_mu);
    if (s.conn->open) {
      ::close(s.conn->fd);
      s.conn->open = false;
    }
  }
  ::unlink(cfg_.socket_path.c_str());
  if (cfg_.log) {
    std::fprintf(stderr, "[sim_server] shut down after %s\n",
                 service_.metrics_json().at("requests").dump(0).c_str());
  }
}

void SimServer::accept_loop() {
  while (!stopping_.load()) {
    // Poll with a timeout instead of blocking in accept(): closing a
    // listening fd is not guaranteed to wake a blocked accept, a 100 ms
    // stop-flag check is. EINTR (any signal delivered to this thread) and
    // ECONNABORTED (peer gone between poll and accept) just re-enter the
    // loop — a signal must never kill the accept path of a daemon.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;  // EINTR, ECONNABORTED, EMFILE: keep accepting
    if (cfg_.write_timeout_ms > 0) {
      timeval tv{cfg_.write_timeout_ms / 1000,
                 static_cast<suseconds_t>(cfg_.write_timeout_ms % 1000) *
                     1000};
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }

    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    // Reap connections whose reader already finished and fd is closed —
    // keeps a long-lived daemon from accumulating joined-out slots.
    for (auto it = conns_.begin(); it != conns_.end();) {
      bool dead;
      {
        std::lock_guard<std::mutex> conn_lock(it->conn->write_mu);
        dead = !it->conn->open && it->conn->done_reading;
      }
      if (dead) {
        it->reader.join();
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    conns_.push_back(
        Slot{conn, std::thread([this, conn] { reader_loop(conn); })});
  }
}

void SimServer::reader_loop(const std::shared_ptr<Conn>& conn) {
  LineReader reader(conn->fd);
  std::string line;
  while (!stopping_.load() && reader.read_line(&line)) {
    if (line.empty()) continue;
    handle_line(conn, line);
  }
  std::lock_guard<std::mutex> lock(conn->write_mu);
  conn->done_reading = true;
  try_close(*conn);
}

void SimServer::handle_line(const std::shared_ptr<Conn>& conn,
                            const std::string& line) {
  Json msg;
  try {
    msg = Json::parse(line);
  } catch (const std::exception& e) {
    respond(conn, error_response(Json(), std::string("bad JSON: ") + e.what()));
    return;
  }
  const Json id = get_id(msg);
  if (!msg.is_object()) {
    respond(conn, error_response(id, "request line must be a JSON object"));
    return;
  }

  std::string op;
  if (msg.contains("op")) {
    // as_string() throws on type mismatch; a {"op": 5} line must answer
    // ok=false like every other malformed line, never unwind the reader.
    if (!msg.at("op").is_string()) {
      respond(conn, error_response(id, "'op' must be a string"));
      return;
    }
    op = msg.at("op").as_string();
  }
  if (op.empty() && msg.contains("request")) op = "run";

  if (op == "ping") {
    Json j = Json::object();
    j.set("id", id);
    j.set("ok", true);
    j.set("pong", true);
    respond(conn, j);
    return;
  }
  if (op == "metrics") {
    Json j = Json::object();
    j.set("id", id);
    j.set("ok", true);
    j.set("metrics", service_.metrics_json());
    respond(conn, j);
    return;
  }
  if (op == "shutdown") {
    Json j = Json::object();
    j.set("id", id);
    j.set("ok", true);
    j.set("shutting_down", true);
    respond(conn, j);
    stop();  // teardown happens on the wait() thread, never here
    return;
  }
  if (op != "run") {
    respond(conn, error_response(
                      id, "unknown op '" + op +
                              "'; expected run, metrics, ping, or shutdown"));
    return;
  }

  SimRequest req;
  try {
    MEMPOOL_CHECK_MSG(msg.contains("request"),
                      "run op requires a 'request' object");
    req = SimRequest::from_json(msg.at("request"));
  } catch (const std::exception& e) {
    // Schema/plugin errors answer this line; the connection keeps serving.
    respond(conn, error_response(id, e.what()));
    return;
  }

  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (!conn->open) return;
    ++conn->outstanding;
  }
  service_.submit(req, [this, conn, id](const ServiceResponse& resp) {
    if (cfg_.log) {
      std::fprintf(stderr, "[sim_server] %s key=%s %s%.3f ms\n",
                   resp.ok ? "ok" : "error", resp.key.c_str(),
                   resp.cache_hit    ? "hit "
                   : resp.coalesced  ? "coalesced "
                                     : "computed ",
                   resp.service_ms);
    }
    respond(conn, response_json(id, resp));
    std::lock_guard<std::mutex> lock(conn->write_mu);
    --conn->outstanding;
    try_close(*conn);
  });
}

void SimServer::respond(const std::shared_ptr<Conn>& conn, const Json& j) {
  const std::string line = j.dump(0) + "\n";
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (!conn->open) return;  // peer vanished while we were simulating
  if (!write_all(conn->fd, line)) {
    // Disconnected peer, or one that stopped reading past the send timeout:
    // shut the socket down so the reader exits and later writes fail fast.
    // The fd itself is closed by try_close once reader and callbacks drain.
    ::shutdown(conn->fd, SHUT_RDWR);
  }
}

void SimServer::try_close(Conn& conn) {
  // Callers hold conn.write_mu. Close only when the reader has exited AND no
  // pool callback still needs the fd; whichever of the two finishes last
  // performs the close.
  if (conn.open && conn.done_reading && conn.outstanding == 0) {
    ::close(conn.fd);
    conn.open = false;
  }
}

}  // namespace mempool::serve
