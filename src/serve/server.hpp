#pragma once
// SimServer: the persistent simulation daemon — SimService behind an AF_UNIX
// stream socket speaking newline-delimited JSON.
//
// Protocol (one JSON object per line, in either direction):
//
//   → {"op": "run", "id": 7, "request": {...SimRequest schema...}}
//     ("op" may be omitted when "request" is present; "id" is any JSON
//      value and is echoed verbatim on the response)
//   ← {"id": 7, "ok": true, "key": "<16-hex>", "cached": false,
//      "coalesced": false, "service_ms": 123.4, "result": {...SimResult...}}
//   ← {"id": 7, "ok": false, "error": "MEMPOOL_CHECK failed: ..."}
//
//   → {"op": "metrics", "id": 8}     ← {"id": 8, "ok": true, "metrics": {...}}
//   → {"op": "ping", "id": 9}        ← {"id": 9, "ok": true, "pong": true}
//   → {"op": "shutdown", "id": 10}   ← {"id": 10, "ok": true,
//                                       "shutting_down": true}
//
// Responses stream back as points complete, not in request order — pipeline
// freely and correlate by id. A malformed line, unknown op, or invalid
// request body answers ok=false on that line; the connection — and the
// daemon — keep serving (simulation-construction errors are structured
// responses, never daemon deaths).
//
// Concurrency model: one accept thread, one reader thread per connection,
// simulations on the SimService's ThreadPool. run responses are written from
// pool threads under a per-connection write mutex; everything else is
// answered inline by the reader. shutdown (or stop()) closes the listener,
// wakes every reader via shutdown(SHUT_RD), joins them, drains the pool so
// every accepted request is still answered, then closes the connections and
// unlinks the socket path.

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace mempool::serve {

struct ServerConfig {
  std::string socket_path;  ///< AF_UNIX path (required).
  ServiceConfig service;    ///< Pool size and cache tiers.
  bool log = false;         ///< One stderr line per served request.
  /// SO_SNDTIMEO per accepted connection: a client that stops reading (full
  /// socket buffer) fails its next response write after this long and is
  /// treated as vanished, instead of wedging pool callbacks — and, through
  /// them, shutdown — on a blocking send. 0 disables the timeout.
  int write_timeout_ms = 10'000;
};

class SimServer {
 public:
  explicit SimServer(ServerConfig cfg);
  ~SimServer();  ///< stop() + wait() if still running.

  SimServer(const SimServer&) = delete;
  SimServer& operator=(const SimServer&) = delete;

  /// Bind the socket and start accepting. Throws CheckError when the path
  /// cannot be bound.
  void start();

  /// Block until shutdown is requested (stop() or the shutdown op), then
  /// tear down: join readers, drain in-flight simulations, close
  /// connections, unlink the socket.
  void wait();

  /// Request shutdown; idempotent, callable from any thread (including
  /// connection handlers). Returns immediately — wait() performs teardown.
  void stop();

  const std::string& socket_path() const { return cfg_.socket_path; }
  SimService& service() { return service_; }

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
    bool open = true;           ///< fd still valid (guarded by write_mu).
    bool done_reading = false;  ///< Reader loop exited (guarded by write_mu).
    uint64_t outstanding = 0;   ///< Responses not yet written (write_mu).
  };

  void accept_loop();
  void reader_loop(const std::shared_ptr<Conn>& conn);
  void handle_line(const std::shared_ptr<Conn>& conn, const std::string& line);
  void respond(const std::shared_ptr<Conn>& conn, const Json& j);
  /// Close the fd once the reader is done and no response is pending.
  static void try_close(Conn& conn);

  ServerConfig cfg_;
  SimService service_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool torn_down_ = false;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;

  std::mutex conns_mu_;
  struct Slot {
    std::shared_ptr<Conn> conn;
    std::thread reader;
  };
  std::vector<Slot> conns_;
};

}  // namespace mempool::serve
