#pragma once
// Content-addressed result cache for the simulation service.
//
// Keys are SimRequest content hashes; a hit additionally compares the stored
// canonical request string, so an FNV collision degrades to a miss instead
// of a wrong answer. Two tiers:
//
//   memory  a bounded LRU (insert/lookup touch recency; the least recently
//           used entry is evicted at capacity). Thread-safe behind one
//           mutex — the cache sits on the request path of a multi-threaded
//           server, and a map lookup is noise next to a simulation.
//
//   disk    optional write-through directory: every insert is persisted as
//           <key>.json ({"schema": "mempool.simcache.v1", "version",
//           "request", "result"}), every memory miss re-checks the
//           directory. Files whose version is not serve::kResultVersion —
//           or that fail to parse, or whose stored request does not match —
//           are ignored, so bumping the version invalidates every stale
//           result without any migration step. File reads and writes happen
//           outside the memory-tier mutex, so disk latency never blocks
//           concurrent lookups. Disk I/O errors never fail a request: a
//           cache that cannot persist still serves (counted in
//           Stats::disk_errors).

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "serve/request.hpp"

namespace mempool::serve {

class ResultCache {
 public:
  struct Stats {
    uint64_t hits = 0;         ///< Served from memory.
    uint64_t disk_hits = 0;    ///< Memory miss, revived from the disk store.
    uint64_t misses = 0;       ///< Not found anywhere (includes version /
                               ///< collision mismatches).
    uint64_t insertions = 0;
    uint64_t evictions = 0;    ///< LRU entries dropped at capacity.
    uint64_t disk_errors = 0;  ///< Persist/parse failures, all non-fatal.

    Json to_json() const;
  };

  /// @param capacity   maximum in-memory entries (>= 1).
  /// @param disk_dir   write-through store directory; empty disables the
  ///                   disk tier. Created (one level) on first use.
  explicit ResultCache(std::size_t capacity, std::string disk_dir = "");

  /// Look up @p req; a hit refreshes its recency. Memory misses consult the
  /// disk tier (a disk hit is inserted back into memory).
  std::optional<SimResult> lookup(const SimRequest& req);

  /// Insert (or refresh) the result for @p req; persists to the disk tier
  /// when one is configured.
  void insert(const SimRequest& req, const SimResult& result);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  const std::string& disk_dir() const { return disk_dir_; }
  Stats stats() const;

 private:
  struct Entry {
    uint64_t hash;
    std::string canonical;  ///< Collision guard.
    SimResult result;
  };

  /// Disk tier for a memory miss. Reads and parses the file WITHOUT holding
  /// mu_ (file I/O must not block concurrent memory-tier lookups), then
  /// reacquires it to revive the entry and count the outcome.
  std::optional<SimResult> disk_lookup(const SimRequest& req, uint64_t hash,
                                       const std::string& canonical);
  void insert_locked(uint64_t hash, const std::string& canonical,
                     const SimResult& result);
  std::string disk_path(const SimRequest& req) const;

  const std::size_t capacity_;
  const std::string disk_dir_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< Front = most recently used.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

}  // namespace mempool::serve
