#pragma once
// SimClient: thin NDJSON client for SimServer. Two layers:
//
//   - send_line()/recv_line(): raw pipelining — fire any number of request
//     lines, then drain responses (they arrive completion-ordered, correlate
//     by id). The load generator lives here.
//   - run()/metrics()/ping()/shutdown_server(): one-shot conveniences that
//     send a line and wait for its matching response (single in-flight use).

#include <cstdint>
#include <string>

#include "serve/netio.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

namespace mempool::serve {

/// Parse a server "run" response line back into the ServiceResponse shape
/// the in-process SimService yields, so callers are transport-agnostic.
/// Throws CheckError on a line that matches neither the ok nor error shape.
ServiceResponse response_from_json(const Json& j);

class SimClient {
 public:
  /// Connect, retrying for @p timeout_ms (0 = single attempt) so the client
  /// can start before the daemon finishes binding. Throws CheckError.
  explicit SimClient(const std::string& socket_path, int timeout_ms = 0);
  ~SimClient();

  SimClient(const SimClient&) = delete;
  SimClient& operator=(const SimClient&) = delete;

  /// Fresh correlation id (monotonic per client).
  uint64_t next_id() { return ++last_id_; }

  /// Serialize @p line onto the socket (appends '\n'). Throws CheckError if
  /// the server is gone.
  void send_line(const Json& line);

  /// Next response line (completion order). Throws CheckError on EOF.
  Json recv_line();

  /// send_line + recv_line for callers with one request in flight.
  Json call(const Json& line);

  /// Build the "run" request line for @p req with a fresh id. @p id_out
  /// receives the id when non-null (for pipelined correlation).
  Json make_run_line(const SimRequest& req, uint64_t* id_out = nullptr);

  /// One-shot run: returns the same shape SimService::run gives in-process.
  ServiceResponse run(const SimRequest& req);

  Json metrics();
  bool ping();
  /// Ask the daemon to shut down cleanly; returns after it acknowledges.
  void shutdown_server();

 private:
  Json op_call(const std::string& op);

  int fd_ = -1;
  LineReader reader_;
  uint64_t last_id_ = 0;
};

}  // namespace mempool::serve
