#pragma once
// SimClient: thin NDJSON client for SimServer. Two layers:
//
//   - send_line()/recv_line(): raw pipelining — fire any number of request
//     lines, then drain responses (they arrive completion-ordered, correlate
//     by id). The load generator lives here.
//   - run()/metrics()/ping()/shutdown_server(): one-shot conveniences that
//     send a line and wait for its matching response (single in-flight use).

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "serve/netio.hpp"
#include "serve/request.hpp"
#include "serve/service.hpp"

namespace mempool::serve {

/// Parse a server "run" response line back into the ServiceResponse shape
/// the in-process SimService yields, so callers are transport-agnostic.
/// Throws CheckError on a line that matches neither the ok nor error shape.
ServiceResponse response_from_json(const Json& j);

class SimClient {
 public:
  /// Connect, retrying for @p timeout_ms (0 = single attempt) so the client
  /// can start before the daemon finishes binding. Throws CheckError.
  /// @p read_timeout_ms > 0 arms SO_RCVTIMEO: a recv_line that sees no bytes
  /// for that long fails (CheckError) instead of blocking forever on a hung
  /// server — the raw material RetryingClient builds reconnection from.
  explicit SimClient(const std::string& socket_path, int timeout_ms = 0,
                     int read_timeout_ms = 0);
  ~SimClient();

  SimClient(const SimClient&) = delete;
  SimClient& operator=(const SimClient&) = delete;

  /// Fresh correlation id (monotonic per client).
  uint64_t next_id() { return ++last_id_; }

  /// Serialize @p line onto the socket (appends '\n'). Throws CheckError if
  /// the server is gone.
  void send_line(const Json& line);

  /// Next response line (completion order). Throws CheckError on EOF.
  Json recv_line();

  /// send_line + recv_line for callers with one request in flight.
  Json call(const Json& line);

  /// Build the "run" request line for @p req with a fresh id. @p id_out
  /// receives the id when non-null (for pipelined correlation).
  Json make_run_line(const SimRequest& req, uint64_t* id_out = nullptr);

  /// One-shot run: returns the same shape SimService::run gives in-process.
  ServiceResponse run(const SimRequest& req);

  Json metrics();
  bool ping();
  /// Ask the daemon to shut down cleanly; returns after it acknowledges.
  void shutdown_server();

 private:
  Json op_call(const std::string& op);

  int fd_ = -1;
  LineReader reader_;
  uint64_t last_id_ = 0;
};

/// Retry behavior of RetryingClient: capped exponential backoff with
/// deterministic jitter. Attempt k (0-based) sleeps
/// min(base_backoff_ms << k, max_backoff_ms) plus jitter in [0, half that),
/// except that an "overloaded" response's retry_after_ms hint, when larger,
/// wins.
struct RetryPolicy {
  int max_attempts = 6;         ///< Total tries per request (>= 1).
  int base_backoff_ms = 50;
  int max_backoff_ms = 2000;
  int connect_timeout_ms = 2000;  ///< Per-attempt connect budget.
  int read_timeout_ms = 30'000;   ///< Per-response read budget (0 = none).
  uint64_t jitter_seed = 1;       ///< Jitter RNG seed (deterministic tests).
};

/// A SimClient wrapper that survives daemon restarts: every run() reconnects
/// on connection loss (including mid-response) and re-issues the request,
/// backs off per RetryPolicy, and honors "overloaded" retry_after_ms hints.
/// Safe precisely because the service is: requests are idempotent (results
/// are pure functions of the canonical request, cached by content hash), so
/// re-issuing after an ambiguous failure can only hit the cache, never
/// double-apply. Non-retryable errors (invalid, liveness,
/// deadline_exceeded) return immediately.
class RetryingClient {
 public:
  explicit RetryingClient(std::string socket_path, RetryPolicy policy = {});

  /// Run @p req to completion or exhaustion: returns the first definitive
  /// response; throws CheckError after max_attempts connection failures.
  ServiceResponse run(const SimRequest& req);

  uint64_t reconnects() const { return reconnects_; }
  uint64_t retries() const { return retries_; }

 private:
  SimClient& connected();  ///< Lazily (re)connect.
  void disconnect();
  void backoff(int attempt, int floor_ms);

  std::string socket_path_;
  RetryPolicy policy_;
  std::unique_ptr<SimClient> client_;
  Rng jitter_;
  uint64_t reconnects_ = 0;
  uint64_t retries_ = 0;
};

}  // namespace mempool::serve
