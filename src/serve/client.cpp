#include "serve/client.hpp"

#include <unistd.h>

#include "common/check.hpp"

namespace mempool::serve {

ServiceResponse response_from_json(const Json& j) {
  MEMPOOL_CHECK_MSG(j.is_object() && j.contains("ok"),
                    "response line is not a server response: " << j.dump(0));
  ServiceResponse resp;
  resp.ok = j.at("ok").as_bool();
  if (!resp.ok) {
    resp.error = j.contains("error") ? j.at("error").as_string()
                                     : "unknown server error";
    return resp;
  }
  resp.result = SimResult::from_json(j.at("result"));
  resp.key = j.at("key").as_string();
  resp.cache_hit = j.at("cached").as_bool();
  resp.coalesced = j.at("coalesced").as_bool();
  resp.service_ms = j.at("service_ms").as_double();
  return resp;
}

SimClient::SimClient(const std::string& socket_path, int timeout_ms)
    : fd_(connect_unix(socket_path, timeout_ms)), reader_(fd_) {}

SimClient::~SimClient() {
  if (fd_ >= 0) ::close(fd_);
}

void SimClient::send_line(const Json& line) {
  MEMPOOL_CHECK_MSG(write_all(fd_, line.dump(0) + "\n"),
                    "sim server connection lost while sending");
}

Json SimClient::recv_line() {
  std::string line;
  MEMPOOL_CHECK_MSG(reader_.read_line(&line),
                    "sim server closed the connection");
  return Json::parse(line);
}

Json SimClient::call(const Json& line) {
  send_line(line);
  return recv_line();
}

Json SimClient::make_run_line(const SimRequest& req, uint64_t* id_out) {
  const uint64_t id = next_id();
  if (id_out != nullptr) *id_out = id;
  Json j = Json::object();
  j.set("op", "run");
  j.set("id", id);
  j.set("request", req.to_json());
  return j;
}

ServiceResponse SimClient::run(const SimRequest& req) {
  uint64_t id = 0;
  const Json resp = call(make_run_line(req, &id));
  MEMPOOL_CHECK_MSG(resp.is_object() && resp.contains("id") &&
                        resp.at("id").is_number() &&
                        static_cast<uint64_t>(resp.at("id").as_int()) == id,
                    "response id does not match request (pipelining with "
                    "run() is not supported; use send_line/recv_line)");
  return response_from_json(resp);
}

Json SimClient::op_call(const std::string& op) {
  Json j = Json::object();
  j.set("op", op);
  j.set("id", next_id());
  return call(j);
}

Json SimClient::metrics() {
  const Json resp = op_call("metrics");
  MEMPOOL_CHECK_MSG(resp.at("ok").as_bool(),
                    "metrics op failed: " << resp.dump(0));
  return resp.at("metrics");
}

bool SimClient::ping() {
  const Json resp = op_call("ping");
  return resp.at("ok").as_bool() && resp.at("pong").as_bool();
}

void SimClient::shutdown_server() {
  const Json resp = op_call("shutdown");
  MEMPOOL_CHECK_MSG(resp.at("ok").as_bool(),
                    "shutdown op failed: " << resp.dump(0));
}

}  // namespace mempool::serve
