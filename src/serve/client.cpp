#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.hpp"

namespace mempool::serve {

ServiceResponse response_from_json(const Json& j) {
  MEMPOOL_CHECK_MSG(j.is_object() && j.contains("ok"),
                    "response line is not a server response: " << j.dump(0));
  ServiceResponse resp;
  resp.ok = j.at("ok").as_bool();
  if (!resp.ok) {
    resp.error = j.contains("error") ? j.at("error").as_string()
                                     : "unknown server error";
    resp.kind = j.get("kind", Json("invalid")).as_string();
    resp.retry_after_ms =
        static_cast<int>(j.get("retry_after_ms", Json(uint64_t{0})).as_uint());
    if (j.contains("liveness")) resp.liveness = j.at("liveness");
    return resp;
  }
  resp.result = SimResult::from_json(j.at("result"));
  resp.key = j.at("key").as_string();
  resp.cache_hit = j.at("cached").as_bool();
  resp.coalesced = j.at("coalesced").as_bool();
  resp.service_ms = j.at("service_ms").as_double();
  return resp;
}

SimClient::SimClient(const std::string& socket_path, int timeout_ms,
                     int read_timeout_ms)
    : fd_(connect_unix(socket_path, timeout_ms)), reader_(fd_) {
  if (read_timeout_ms > 0) {
    timeval tv{read_timeout_ms / 1000,
               static_cast<suseconds_t>(read_timeout_ms % 1000) * 1000};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
}

SimClient::~SimClient() {
  if (fd_ >= 0) ::close(fd_);
}

void SimClient::send_line(const Json& line) {
  MEMPOOL_CHECK_MSG(write_all(fd_, line.dump(0) + "\n"),
                    "sim server connection lost while sending");
}

Json SimClient::recv_line() {
  std::string line;
  MEMPOOL_CHECK_MSG(reader_.read_line(&line),
                    "sim server closed the connection");
  return Json::parse(line);
}

Json SimClient::call(const Json& line) {
  send_line(line);
  return recv_line();
}

Json SimClient::make_run_line(const SimRequest& req, uint64_t* id_out) {
  const uint64_t id = next_id();
  if (id_out != nullptr) *id_out = id;
  Json j = Json::object();
  j.set("op", "run");
  j.set("id", id);
  Json r = req.to_json();
  // deadline_ms is delivery metadata, deliberately absent from the
  // canonical form — append it to the wire object separately.
  if (req.deadline_ms != 0) r.set("deadline_ms", req.deadline_ms);
  j.set("request", std::move(r));
  return j;
}

ServiceResponse SimClient::run(const SimRequest& req) {
  uint64_t id = 0;
  const Json resp = call(make_run_line(req, &id));
  MEMPOOL_CHECK_MSG(resp.is_object() && resp.contains("id") &&
                        resp.at("id").is_number() &&
                        static_cast<uint64_t>(resp.at("id").as_int()) == id,
                    "response id does not match request (pipelining with "
                    "run() is not supported; use send_line/recv_line)");
  return response_from_json(resp);
}

Json SimClient::op_call(const std::string& op) {
  Json j = Json::object();
  j.set("op", op);
  j.set("id", next_id());
  return call(j);
}

Json SimClient::metrics() {
  const Json resp = op_call("metrics");
  MEMPOOL_CHECK_MSG(resp.at("ok").as_bool(),
                    "metrics op failed: " << resp.dump(0));
  return resp.at("metrics");
}

bool SimClient::ping() {
  const Json resp = op_call("ping");
  return resp.at("ok").as_bool() && resp.at("pong").as_bool();
}

void SimClient::shutdown_server() {
  const Json resp = op_call("shutdown");
  MEMPOOL_CHECK_MSG(resp.at("ok").as_bool(),
                    "shutdown op failed: " << resp.dump(0));
}

// --- RetryingClient ---------------------------------------------------------

RetryingClient::RetryingClient(std::string socket_path, RetryPolicy policy)
    : socket_path_(std::move(socket_path)),
      policy_(policy),
      jitter_(policy.jitter_seed) {
  MEMPOOL_CHECK_MSG(policy_.max_attempts >= 1,
                    "RetryPolicy.max_attempts must be >= 1");
}

SimClient& RetryingClient::connected() {
  if (client_ == nullptr) {
    client_ = std::make_unique<SimClient>(
        socket_path_, policy_.connect_timeout_ms, policy_.read_timeout_ms);
  }
  return *client_;
}

void RetryingClient::disconnect() { client_.reset(); }

void RetryingClient::backoff(int attempt, int floor_ms) {
  // Capped exponential: base << attempt, clamped, plus jitter in [0, half)
  // so a fleet of clients hammered off a dead daemon does not reconnect in
  // lockstep. Deterministic per jitter_seed — tests replay exact schedules.
  int64_t ms = policy_.base_backoff_ms;
  for (int i = 0; i < attempt && ms < policy_.max_backoff_ms; ++i) ms *= 2;
  ms = std::min<int64_t>(ms, policy_.max_backoff_ms);
  if (ms > 1) ms += static_cast<int64_t>(jitter_.next_below(
      static_cast<uint64_t>(ms / 2 + 1)));
  ms = std::max<int64_t>(ms, floor_ms);
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

ServiceResponse RetryingClient::run(const SimRequest& req) {
  std::string last_error;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) ++retries_;
    try {
      ServiceResponse resp = connected().run(req);
      if (!resp.ok && resp.kind == "overloaded" &&
          attempt + 1 < policy_.max_attempts) {
        // The daemon is up but shedding: wait at least its hint, then
        // re-issue on the same connection.
        backoff(attempt, resp.retry_after_ms);
        continue;
      }
      // Definitive: success, or a non-retryable structured error
      // (invalid / liveness / deadline_exceeded — retrying cannot help).
      return resp;
    } catch (const CheckError& e) {
      // Connection-level failure: refused connect, mid-response EOF, read
      // timeout. The daemon may be restarting — drop the socket, back off,
      // reconnect, re-issue. Idempotence makes the re-issue safe: a
      // response lost in flight is re-served from the result cache.
      last_error = e.what();
      disconnect();
      ++reconnects_;
      if (attempt + 1 < policy_.max_attempts) backoff(attempt, 0);
    }
  }
  MEMPOOL_CHECK_MSG(false, "sim server unreachable after "
                               << policy_.max_attempts
                               << " attempts; last error: " << last_error);
  __builtin_unreachable();  // check_fail above is [[noreturn]]
}

}  // namespace mempool::serve
