#include "serve/cache.hpp"

#include <filesystem>

#include "common/check.hpp"
#include "runner/results.hpp"

namespace mempool::serve {

Json ResultCache::Stats::to_json() const {
  Json j = Json::object();
  j.set("hits", hits);
  j.set("disk_hits", disk_hits);
  j.set("misses", misses);
  j.set("insertions", insertions);
  j.set("evictions", evictions);
  j.set("disk_errors", disk_errors);
  const uint64_t looked_up = hits + disk_hits + misses;
  j.set("hit_rate", looked_up == 0 ? 0.0
                                   : static_cast<double>(hits + disk_hits) /
                                         static_cast<double>(looked_up));
  return j;
}

ResultCache::ResultCache(std::size_t capacity, std::string disk_dir)
    : capacity_(capacity), disk_dir_(std::move(disk_dir)) {
  MEMPOOL_CHECK_MSG(capacity_ >= 1, "result cache capacity must be >= 1");
  if (!disk_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(disk_dir_, ec);
    MEMPOOL_CHECK_MSG(!ec, "cannot create cache directory '"
                               << disk_dir_ << "': " << ec.message());
  }
}

std::string ResultCache::disk_path(const SimRequest& req) const {
  return disk_dir_ + "/" + req.key() + ".json";
}

std::optional<SimResult> ResultCache::lookup(const SimRequest& req) {
  const uint64_t hash = req.content_hash();
  const std::string canonical = req.canonical();
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(hash);
  if (it != index_.end() && it->second->canonical == canonical) {
    lru_.splice(lru_.begin(), lru_, it->second);  // touch
    ++stats_.hits;
    return it->second->result;
  }
  if (!disk_dir_.empty()) {
    if (auto revived = disk_lookup_locked(req, hash, canonical)) {
      ++stats_.disk_hits;
      return revived;
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

std::optional<SimResult> ResultCache::disk_lookup_locked(
    const SimRequest& req, uint64_t hash, const std::string& canonical) {
  const std::string path = disk_path(req);
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return std::nullopt;
  try {
    const Json doc = runner::read_json_file(path);
    if (doc.get("schema", Json("")).as_string() != "mempool.simcache.v1" ||
        doc.get("version", Json("")).as_string() != kResultVersion ||
        doc.at("request").dump(0) != canonical) {
      // Stale version, foreign schema, or hash collision: not this result.
      return std::nullopt;
    }
    SimResult result = SimResult::from_json(doc.at("result"));
    insert_locked(hash, canonical, result);
    return result;
  } catch (const std::exception&) {
    // A corrupt or half-written file is a miss, never a crash.
    ++stats_.disk_errors;
    return std::nullopt;
  }
}

void ResultCache::insert(const SimRequest& req, const SimResult& result) {
  const uint64_t hash = req.content_hash();
  const std::string canonical = req.canonical();
  std::lock_guard<std::mutex> lock(mu_);
  insert_locked(hash, canonical, result);
  ++stats_.insertions;
  if (disk_dir_.empty()) return;
  Json doc = Json::object();
  doc.set("schema", "mempool.simcache.v1");
  doc.set("version", kResultVersion);
  doc.set("request", req.to_json());
  doc.set("result", result.to_json());
  try {
    runner::write_json_file(disk_path(req), doc);
  } catch (const std::exception&) {
    ++stats_.disk_errors;  // cannot persist — still serve from memory
  }
}

void ResultCache::insert_locked(uint64_t hash, const std::string& canonical,
                                const SimResult& result) {
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    // Refresh in place; a colliding canonical simply takes over the slot
    // (the guard in lookup keeps either occupant correct).
    it->second->canonical = canonical;
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{hash, canonical, result});
  index_[hash] = lru_.begin();
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mempool::serve
