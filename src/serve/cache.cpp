#include "serve/cache.hpp"

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <thread>

#include "common/check.hpp"
#include "runner/results.hpp"

namespace mempool::serve {

Json ResultCache::Stats::to_json() const {
  Json j = Json::object();
  j.set("hits", hits);
  j.set("disk_hits", disk_hits);
  j.set("misses", misses);
  j.set("insertions", insertions);
  j.set("evictions", evictions);
  j.set("disk_errors", disk_errors);
  const uint64_t looked_up = hits + disk_hits + misses;
  j.set("hit_rate", looked_up == 0 ? 0.0
                                   : static_cast<double>(hits + disk_hits) /
                                         static_cast<double>(looked_up));
  return j;
}

ResultCache::ResultCache(std::size_t capacity, std::string disk_dir)
    : capacity_(capacity), disk_dir_(std::move(disk_dir)) {
  MEMPOOL_CHECK_MSG(capacity_ >= 1, "result cache capacity must be >= 1");
  if (!disk_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(disk_dir_, ec);
    MEMPOOL_CHECK_MSG(!ec, "cannot create cache directory '"
                               << disk_dir_ << "': " << ec.message());
  }
}

std::string ResultCache::disk_path(const SimRequest& req) const {
  return disk_dir_ + "/" + req.key() + ".json";
}

std::optional<SimResult> ResultCache::lookup(const SimRequest& req) {
  const uint64_t hash = req.content_hash();
  const std::string canonical = req.canonical();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(hash);
    if (it != index_.end() && it->second->canonical == canonical) {
      lru_.splice(lru_.begin(), lru_, it->second);  // touch
      ++stats_.hits;
      return it->second->result;
    }
    if (disk_dir_.empty()) {
      ++stats_.misses;
      return std::nullopt;
    }
  }
  return disk_lookup(req, hash, canonical);
}

std::optional<SimResult> ResultCache::disk_lookup(
    const SimRequest& req, uint64_t hash, const std::string& canonical) {
  // mu_ is NOT held here: reading and parsing the file can take milliseconds
  // and must not stall the memory tier. Two threads racing the same file
  // both revive it; insert_locked refreshes in place, so that is benign.
  const std::string path = disk_path(req);
  std::optional<SimResult> result;
  bool io_error = false;
  std::error_code ec;
  if (std::filesystem::exists(path, ec) && !ec) {
    try {
      const Json doc = runner::read_json_file(path);
      if (doc.get("schema", Json("")).as_string() == "mempool.simcache.v1" &&
          doc.get("version", Json("")).as_string() == kResultVersion &&
          doc.at("request").dump(0) == canonical) {
        result = SimResult::from_json(doc.at("result"));
        // The stored result must answer *this* request: a corrupted (or
        // hand-edited) request_key inside the result payload is treated as
        // the file-level corruption it is, not served.
        if (result->request_key != req.key()) {
          result.reset();
          io_error = true;
        }
      }
      // else: stale version, foreign schema, or hash collision — a miss.
    } catch (const std::exception&) {
      // A corrupt or half-written file is a miss, never a crash.
      io_error = true;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (io_error) ++stats_.disk_errors;
  if (!result) {
    ++stats_.misses;
    return std::nullopt;
  }
  insert_locked(hash, canonical, *result);
  ++stats_.disk_hits;
  return result;
}

void ResultCache::insert(const SimRequest& req, const SimResult& result) {
  const uint64_t hash = req.content_hash();
  const std::string canonical = req.canonical();
  {
    std::lock_guard<std::mutex> lock(mu_);
    insert_locked(hash, canonical, result);
    ++stats_.insertions;
  }
  if (disk_dir_.empty()) return;
  // Persist outside mu_: the write-through file I/O sits on the request hot
  // path only for stats accounting, never for the duration of the write.
  Json doc = Json::object();
  doc.set("schema", "mempool.simcache.v1");
  doc.set("version", kResultVersion);
  doc.set("request", req.to_json());
  doc.set("result", result.to_json());
  // Write-temp-then-rename: with the write un-serialized, a concurrent
  // lookup (or a same-key writer — identical bytes, results being
  // deterministic) must only ever observe complete files.
  const std::string path = disk_path(req);
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid() << "."
           << std::this_thread::get_id();
  const std::string tmp = tmp_name.str();
  try {
    runner::write_json_file(tmp, doc);
    std::filesystem::rename(tmp, path);
  } catch (const std::exception&) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.disk_errors;  // cannot persist — still serve from memory
  }
}

void ResultCache::insert_locked(uint64_t hash, const std::string& canonical,
                                const SimResult& result) {
  const auto it = index_.find(hash);
  if (it != index_.end()) {
    // Refresh in place; a colliding canonical simply takes over the slot
    // (the guard in lookup keeps either occupant correct).
    it->second->canonical = canonical;
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{hash, canonical, result});
  index_[hash] = lru_.begin();
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mempool::serve
