#pragma once
// Disassembler for traces and debugging.

#include <cstdint>
#include <string>

#include "isa/encoding.hpp"

namespace mempool::isa {

/// Register ABI name ("zero", "ra", "sp", ...).
std::string reg_name(uint8_t reg);

/// Human-readable mnemonic for a decoded instruction. @p pc resolves
/// pc-relative targets of branches and jumps.
std::string disassemble(const Instr& instr, uint32_t pc = 0);

/// Decode + disassemble a raw word.
std::string disassemble_word(uint32_t raw, uint32_t pc = 0);

}  // namespace mempool::isa
