#pragma once
// Textual RV32IMA assembler front-end over isa::Assembler. Supports standard
// mnemonics, the common pseudo-instructions, labels, numeric immediates
// (decimal / 0x hex, optionally negative), `imm(reg)` memory operands, and
// `.word` data directives. Comments start with '#' or '//'.

#include <cstdint>
#include <string>
#include <vector>

#include "isa/assembler.hpp"

namespace mempool::isa {

/// Assemble a full program text. Throws mempool::CheckError with a
/// line-numbered message on syntax errors.
std::vector<uint32_t> assemble_text(const std::string& source,
                                    uint32_t base = 0x8000'0000u);

}  // namespace mempool::isa
