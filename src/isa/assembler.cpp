#include "isa/assembler.hpp"

#include "common/check.hpp"

namespace mempool::isa {

void Assembler::l(const std::string& name) {
  MEMPOOL_CHECK_MSG(labels_.find(name) == labels_.end(),
                    "label '" << name << "' bound twice");
  labels_[name] = pc();
}

uint32_t Assembler::label_address(const std::string& name) const {
  const auto it = labels_.find(name);
  MEMPOOL_CHECK_MSG(it != labels_.end(), "unknown label '" << name << "'");
  return it->second;
}

void Assembler::fixup(FixKind kind, const std::string& label) {
  fixups_.push_back({words_.size(), kind, label});
}

// --- RV32I -------------------------------------------------------------------

void Assembler::lui(Reg rd, int32_t hi20) { words_.push_back(enc_u(hi20, rd, kOpLui)); }
void Assembler::auipc(Reg rd, int32_t hi20) { words_.push_back(enc_u(hi20, rd, kOpAuipc)); }

void Assembler::jal(Reg rd, const std::string& target) {
  fixup(FixKind::kJal, target);
  words_.push_back(enc_j(0, rd, kOpJal));
}

void Assembler::jalr(Reg rd, Reg rs1, int32_t imm) {
  words_.push_back(enc_i(imm, rs1, 0b000, rd, kOpJalr));
}

#define MEMPOOL_BRANCH(NAME, F3)                                        \
  void Assembler::NAME(Reg rs1, Reg rs2, const std::string& target) {   \
    fixup(FixKind::kBranch, target);                                    \
    words_.push_back(enc_b(0, rs2, rs1, F3, kOpBranch));                \
  }
MEMPOOL_BRANCH(beq, 0b000)
MEMPOOL_BRANCH(bne, 0b001)
MEMPOOL_BRANCH(blt, 0b100)
MEMPOOL_BRANCH(bge, 0b101)
MEMPOOL_BRANCH(bltu, 0b110)
MEMPOOL_BRANCH(bgeu, 0b111)
#undef MEMPOOL_BRANCH

#define MEMPOOL_LOAD(NAME, F3)                                 \
  void Assembler::NAME(Reg rd, Reg rs1, int32_t imm) {         \
    words_.push_back(enc_i(imm, rs1, F3, rd, kOpLoad));        \
  }
MEMPOOL_LOAD(lb, 0b000)
MEMPOOL_LOAD(lh, 0b001)
MEMPOOL_LOAD(lw, 0b010)
MEMPOOL_LOAD(lbu, 0b100)
MEMPOOL_LOAD(lhu, 0b101)
#undef MEMPOOL_LOAD

#define MEMPOOL_STORE(NAME, F3)                                \
  void Assembler::NAME(Reg rs2, Reg rs1, int32_t imm) {        \
    words_.push_back(enc_s(imm, rs2, rs1, F3, kOpStore));      \
  }
MEMPOOL_STORE(sb, 0b000)
MEMPOOL_STORE(sh, 0b001)
MEMPOOL_STORE(sw, 0b010)
#undef MEMPOOL_STORE

#define MEMPOOL_OPIMM(NAME, F3)                                \
  void Assembler::NAME(Reg rd, Reg rs1, int32_t imm) {         \
    MEMPOOL_CHECK_MSG(imm >= -2048 && imm <= 2047,             \
                      #NAME " immediate out of range: " << imm); \
    words_.push_back(enc_i(imm, rs1, F3, rd, kOpImm));         \
  }
MEMPOOL_OPIMM(addi, 0b000)
MEMPOOL_OPIMM(slti, 0b010)
MEMPOOL_OPIMM(sltiu, 0b011)
MEMPOOL_OPIMM(xori, 0b100)
MEMPOOL_OPIMM(ori, 0b110)
MEMPOOL_OPIMM(andi, 0b111)
#undef MEMPOOL_OPIMM

void Assembler::slli(Reg rd, Reg rs1, unsigned shamt) {
  MEMPOOL_CHECK(shamt < 32);
  words_.push_back(enc_i(static_cast<int32_t>(shamt), rs1, 0b001, rd, kOpImm));
}
void Assembler::srli(Reg rd, Reg rs1, unsigned shamt) {
  MEMPOOL_CHECK(shamt < 32);
  words_.push_back(enc_i(static_cast<int32_t>(shamt), rs1, 0b101, rd, kOpImm));
}
void Assembler::srai(Reg rd, Reg rs1, unsigned shamt) {
  MEMPOOL_CHECK(shamt < 32);
  words_.push_back(
      enc_i(static_cast<int32_t>(shamt | 0x400), rs1, 0b101, rd, kOpImm));
}

#define MEMPOOL_OPREG(NAME, F7, F3)                            \
  void Assembler::NAME(Reg rd, Reg rs1, Reg rs2) {             \
    words_.push_back(enc_r(F7, rs2, rs1, F3, rd, kOpReg));     \
  }
MEMPOOL_OPREG(add, 0b0000000, 0b000)
MEMPOOL_OPREG(sub, 0b0100000, 0b000)
MEMPOOL_OPREG(sll, 0b0000000, 0b001)
MEMPOOL_OPREG(slt, 0b0000000, 0b010)
MEMPOOL_OPREG(sltu, 0b0000000, 0b011)
MEMPOOL_OPREG(xor_, 0b0000000, 0b100)
MEMPOOL_OPREG(srl, 0b0000000, 0b101)
MEMPOOL_OPREG(sra, 0b0100000, 0b101)
MEMPOOL_OPREG(or_, 0b0000000, 0b110)
MEMPOOL_OPREG(and_, 0b0000000, 0b111)
MEMPOOL_OPREG(mul, 0b0000001, 0b000)
MEMPOOL_OPREG(mulh, 0b0000001, 0b001)
MEMPOOL_OPREG(mulhsu, 0b0000001, 0b010)
MEMPOOL_OPREG(mulhu, 0b0000001, 0b011)
MEMPOOL_OPREG(div, 0b0000001, 0b100)
MEMPOOL_OPREG(divu, 0b0000001, 0b101)
MEMPOOL_OPREG(rem, 0b0000001, 0b110)
MEMPOOL_OPREG(remu, 0b0000001, 0b111)
#undef MEMPOOL_OPREG

void Assembler::fence() { words_.push_back(0x0000000Fu); }
void Assembler::ecall() { words_.push_back(0x00000073u); }
void Assembler::ebreak() { words_.push_back(0x00100073u); }

void Assembler::csrrw(Reg rd, uint16_t csr, Reg rs1) {
  words_.push_back(enc_i(static_cast<int32_t>(csr), rs1, 0b001, rd, kOpSystem));
}
void Assembler::csrrs(Reg rd, uint16_t csr, Reg rs1) {
  words_.push_back(enc_i(static_cast<int32_t>(csr), rs1, 0b010, rd, kOpSystem));
}
void Assembler::csrrc(Reg rd, uint16_t csr, Reg rs1) {
  words_.push_back(enc_i(static_cast<int32_t>(csr), rs1, 0b011, rd, kOpSystem));
}

#define MEMPOOL_AMO(NAME, F5)                                 \
  void Assembler::NAME(Reg rd, Reg rs2, Reg rs1) {            \
    words_.push_back(enc_amo(F5, rs2, rs1, rd));              \
  }
MEMPOOL_AMO(amoswap_w, 0b00001)
MEMPOOL_AMO(amoadd_w, 0b00000)
MEMPOOL_AMO(amoxor_w, 0b00100)
MEMPOOL_AMO(amoand_w, 0b01100)
MEMPOOL_AMO(amoor_w, 0b01000)
MEMPOOL_AMO(amomin_w, 0b10000)
MEMPOOL_AMO(amomax_w, 0b10100)
MEMPOOL_AMO(amominu_w, 0b11000)
MEMPOOL_AMO(amomaxu_w, 0b11100)
#undef MEMPOOL_AMO

void Assembler::lr_w(Reg rd, Reg rs1) {
  words_.push_back(enc_amo(0b00010, Reg::zero, rs1, rd));
}
void Assembler::sc_w(Reg rd, Reg rs2, Reg rs1) {
  words_.push_back(enc_amo(0b00011, rs2, rs1, rd));
}

void Assembler::li(Reg rd, int32_t value) {
  if (value >= -2048 && value <= 2047) {
    addi(rd, Reg::zero, value);
    return;
  }
  // lui loads bits [31:12]; addi adds a sign-extended 12-bit value, so if
  // bit 11 of the constant is set we must pre-increment the upper part.
  const uint32_t u = static_cast<uint32_t>(value);
  int32_t hi = static_cast<int32_t>((u + 0x800u) >> 12);
  const int32_t lo = sign_extend(u & 0xFFFu, 12);
  lui(rd, hi);
  if (lo != 0) addi(rd, rd, lo);
}

std::vector<uint32_t> Assembler::finish() {
  for (const Fixup& f : fixups_) {
    const uint32_t target = label_address(f.label);
    const uint32_t at = base_ + 4 * static_cast<uint32_t>(f.index);
    const int32_t off = static_cast<int32_t>(target - at);
    uint32_t& w = words_[f.index];
    switch (f.kind) {
      case FixKind::kBranch: {
        MEMPOOL_CHECK_MSG(off >= -4096 && off <= 4094 && (off & 1) == 0,
                          "branch offset " << off << " out of range");
        const Reg rs2 = static_cast<Reg>(bits(w, 20, 5));
        const Reg rs1 = static_cast<Reg>(bits(w, 15, 5));
        const unsigned f3 = bits(w, 12, 3);
        w = enc_b(off, rs2, rs1, f3, kOpBranch);
        break;
      }
      case FixKind::kJal: {
        MEMPOOL_CHECK_MSG(off >= -(1 << 20) && off < (1 << 20) && (off & 1) == 0,
                          "jal offset " << off << " out of range");
        const Reg rd = static_cast<Reg>(bits(w, 7, 5));
        w = enc_j(off, rd, kOpJal);
        break;
      }
    }
  }
  fixups_.clear();
  return words_;
}

}  // namespace mempool::isa
