#pragma once
// CSR addresses implemented by the Snitch core model. The paper's cores are
// bare RV32IMA; we expose the standard machine counters plus a few custom
// read-only CSRs the runtime uses for work distribution.

#include <cstdint>

namespace mempool::isa {

inline constexpr uint16_t kCsrMscratch = 0x340;
inline constexpr uint16_t kCsrMcycle = 0xB00;
inline constexpr uint16_t kCsrMinstret = 0xB02;
inline constexpr uint16_t kCsrMcycleH = 0xB80;
inline constexpr uint16_t kCsrMinstretH = 0xB82;
inline constexpr uint16_t kCsrMhartid = 0xF14;

// Custom machine read-only CSRs (0xFC0+ is the vendor read-only space).
inline constexpr uint16_t kCsrNumCores = 0xFC0;     ///< Total cores.
inline constexpr uint16_t kCsrTileId = 0xFC1;       ///< This core's tile.
inline constexpr uint16_t kCsrCoresPerTile = 0xFC2;

}  // namespace mempool::isa
