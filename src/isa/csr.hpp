#pragma once
// CSR addresses implemented by the Snitch core model. The paper's cores are
// bare RV32IMA; we expose the standard machine counters plus a few custom
// read-only CSRs the runtime uses for work distribution.

#include <cstdint>

namespace mempool::isa {

inline constexpr uint16_t kCsrMscratch = 0x340;
inline constexpr uint16_t kCsrMcycle = 0xB00;
inline constexpr uint16_t kCsrMinstret = 0xB02;
inline constexpr uint16_t kCsrMcycleH = 0xB80;
inline constexpr uint16_t kCsrMinstretH = 0xB82;
inline constexpr uint16_t kCsrMhartid = 0xF14;

// Custom machine read-only CSRs (0xFC0+ is the vendor read-only space).
inline constexpr uint16_t kCsrNumCores = 0xFC0;     ///< Total cores.
inline constexpr uint16_t kCsrTileId = 0xFC1;       ///< This core's tile.
inline constexpr uint16_t kCsrCoresPerTile = 0xFC2;

// Custom machine read-write CSRs (0x7C0+ is the vendor read-write space):
// the DMA engine's control interface (tcdm+l2 memory system, mem/dma.hpp).
// A transfer is staged into kCsrDmaSrc/Dst (CPU byte addresses; exactly one
// side in the L2 window) — optionally shaped 2-D via kCsrDmaRows and the
// stride CSRs (sticky; rows=1, strides=dense after reset) — and launched by
// writing the words-per-row count to kCsrDmaStart. kCsrDmaPending reads the
// number of this core's transfers still in flight (dma_wait spins on 0).
inline constexpr uint16_t kCsrDmaSrc = 0x7C0;
inline constexpr uint16_t kCsrDmaDst = 0x7C1;
inline constexpr uint16_t kCsrDmaRows = 0x7C2;
inline constexpr uint16_t kCsrDmaSrcStride = 0x7C3;  ///< Bytes; 0 = dense.
inline constexpr uint16_t kCsrDmaDstStride = 0x7C4;  ///< Bytes; 0 = dense.
inline constexpr uint16_t kCsrDmaStart = 0x7C5;  ///< Write W = launch W/row.
inline constexpr uint16_t kCsrDmaPending = 0x7C6;  ///< Read-only.

}  // namespace mempool::isa
