#include "isa/disasm.hpp"

#include <array>
#include <sstream>

#include "isa/decoder.hpp"

namespace mempool::isa {

namespace {
constexpr std::array<const char*, 32> kRegNames = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

struct Names {
  const char* mnemonic;
  enum class Fmt { kR, kI, kLoad, kStore, kBranch, kU, kJ, kJalr, kCsr,
                   kCsrImm, kAmo, kLr, kNone, kShift } fmt;
};

Names names_of(Kind k) {
  using F = Names::Fmt;
  switch (k) {
    case Kind::kLui: return {"lui", F::kU};
    case Kind::kAuipc: return {"auipc", F::kU};
    case Kind::kJal: return {"jal", F::kJ};
    case Kind::kJalr: return {"jalr", F::kJalr};
    case Kind::kBeq: return {"beq", F::kBranch};
    case Kind::kBne: return {"bne", F::kBranch};
    case Kind::kBlt: return {"blt", F::kBranch};
    case Kind::kBge: return {"bge", F::kBranch};
    case Kind::kBltu: return {"bltu", F::kBranch};
    case Kind::kBgeu: return {"bgeu", F::kBranch};
    case Kind::kLb: return {"lb", F::kLoad};
    case Kind::kLh: return {"lh", F::kLoad};
    case Kind::kLw: return {"lw", F::kLoad};
    case Kind::kLbu: return {"lbu", F::kLoad};
    case Kind::kLhu: return {"lhu", F::kLoad};
    case Kind::kSb: return {"sb", F::kStore};
    case Kind::kSh: return {"sh", F::kStore};
    case Kind::kSw: return {"sw", F::kStore};
    case Kind::kAddi: return {"addi", F::kI};
    case Kind::kSlti: return {"slti", F::kI};
    case Kind::kSltiu: return {"sltiu", F::kI};
    case Kind::kXori: return {"xori", F::kI};
    case Kind::kOri: return {"ori", F::kI};
    case Kind::kAndi: return {"andi", F::kI};
    case Kind::kSlli: return {"slli", F::kShift};
    case Kind::kSrli: return {"srli", F::kShift};
    case Kind::kSrai: return {"srai", F::kShift};
    case Kind::kAdd: return {"add", F::kR};
    case Kind::kSub: return {"sub", F::kR};
    case Kind::kSll: return {"sll", F::kR};
    case Kind::kSlt: return {"slt", F::kR};
    case Kind::kSltu: return {"sltu", F::kR};
    case Kind::kXor: return {"xor", F::kR};
    case Kind::kSrl: return {"srl", F::kR};
    case Kind::kSra: return {"sra", F::kR};
    case Kind::kOr: return {"or", F::kR};
    case Kind::kAnd: return {"and", F::kR};
    case Kind::kFence: return {"fence", F::kNone};
    case Kind::kEcall: return {"ecall", F::kNone};
    case Kind::kEbreak: return {"ebreak", F::kNone};
    case Kind::kCsrrw: return {"csrrw", F::kCsr};
    case Kind::kCsrrs: return {"csrrs", F::kCsr};
    case Kind::kCsrrc: return {"csrrc", F::kCsr};
    case Kind::kCsrrwi: return {"csrrwi", F::kCsrImm};
    case Kind::kCsrrsi: return {"csrrsi", F::kCsrImm};
    case Kind::kCsrrci: return {"csrrci", F::kCsrImm};
    case Kind::kMul: return {"mul", F::kR};
    case Kind::kMulh: return {"mulh", F::kR};
    case Kind::kMulhsu: return {"mulhsu", F::kR};
    case Kind::kMulhu: return {"mulhu", F::kR};
    case Kind::kDiv: return {"div", F::kR};
    case Kind::kDivu: return {"divu", F::kR};
    case Kind::kRem: return {"rem", F::kR};
    case Kind::kRemu: return {"remu", F::kR};
    case Kind::kLrW: return {"lr.w", F::kLr};
    case Kind::kScW: return {"sc.w", F::kAmo};
    case Kind::kAmoSwapW: return {"amoswap.w", F::kAmo};
    case Kind::kAmoAddW: return {"amoadd.w", F::kAmo};
    case Kind::kAmoXorW: return {"amoxor.w", F::kAmo};
    case Kind::kAmoAndW: return {"amoand.w", F::kAmo};
    case Kind::kAmoOrW: return {"amoor.w", F::kAmo};
    case Kind::kAmoMinW: return {"amomin.w", F::kAmo};
    case Kind::kAmoMaxW: return {"amomax.w", F::kAmo};
    case Kind::kAmoMinuW: return {"amominu.w", F::kAmo};
    case Kind::kAmoMaxuW: return {"amomaxu.w", F::kAmo};
    case Kind::kIllegal: return {"<illegal>", F::kNone};
  }
  return {"<?>", F::kNone};
}
}  // namespace

std::string reg_name(uint8_t reg) {
  return reg < 32 ? kRegNames[reg] : "x?";
}

std::string disassemble(const Instr& d, uint32_t pc) {
  const Names n = names_of(d.kind);
  std::ostringstream os;
  os << n.mnemonic;
  using F = Names::Fmt;
  switch (n.fmt) {
    case F::kR:
      os << ' ' << reg_name(d.rd) << ", " << reg_name(d.rs1) << ", "
         << reg_name(d.rs2);
      break;
    case F::kI:
      os << ' ' << reg_name(d.rd) << ", " << reg_name(d.rs1) << ", " << d.imm;
      break;
    case F::kShift:
      os << ' ' << reg_name(d.rd) << ", " << reg_name(d.rs1) << ", " << d.imm;
      break;
    case F::kLoad:
      os << ' ' << reg_name(d.rd) << ", " << d.imm << '(' << reg_name(d.rs1)
         << ')';
      break;
    case F::kStore:
      os << ' ' << reg_name(d.rs2) << ", " << d.imm << '(' << reg_name(d.rs1)
         << ')';
      break;
    case F::kBranch:
      os << ' ' << reg_name(d.rs1) << ", " << reg_name(d.rs2) << ", 0x"
         << std::hex << pc + static_cast<uint32_t>(d.imm);
      break;
    case F::kU:
      os << ' ' << reg_name(d.rd) << ", 0x" << std::hex
         << (static_cast<uint32_t>(d.imm) >> 12);
      break;
    case F::kJ:
      os << ' ' << reg_name(d.rd) << ", 0x" << std::hex
         << pc + static_cast<uint32_t>(d.imm);
      break;
    case F::kJalr:
      os << ' ' << reg_name(d.rd) << ", " << d.imm << '(' << reg_name(d.rs1)
         << ')';
      break;
    case F::kCsr:
      os << ' ' << reg_name(d.rd) << ", 0x" << std::hex << d.csr << std::dec
         << ", " << reg_name(d.rs1);
      break;
    case F::kCsrImm:
      os << ' ' << reg_name(d.rd) << ", 0x" << std::hex << d.csr << std::dec
         << ", " << d.imm;
      break;
    case F::kAmo:
      os << ' ' << reg_name(d.rd) << ", " << reg_name(d.rs2) << ", ("
         << reg_name(d.rs1) << ')';
      break;
    case F::kLr:
      os << ' ' << reg_name(d.rd) << ", (" << reg_name(d.rs1) << ')';
      break;
    case F::kNone:
      break;
  }
  return os.str();
}

std::string disassemble_word(uint32_t raw, uint32_t pc) {
  return disassemble(decode(raw), pc);
}

}  // namespace mempool::isa
