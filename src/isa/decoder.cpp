#include "isa/decoder.hpp"

#include "common/bitutil.hpp"

namespace mempool::isa {

namespace {

int32_t imm_i(uint32_t raw) { return sign_extend(raw >> 20, 12); }

int32_t imm_s(uint32_t raw) {
  return sign_extend((bits(raw, 25, 7) << 5) | bits(raw, 7, 5), 12);
}

int32_t imm_b(uint32_t raw) {
  const uint32_t v = (bits(raw, 31, 1) << 12) | (bits(raw, 7, 1) << 11) |
                     (bits(raw, 25, 6) << 5) | (bits(raw, 8, 4) << 1);
  return sign_extend(v, 13);
}

int32_t imm_u(uint32_t raw) { return static_cast<int32_t>(raw & 0xFFFFF000u); }

int32_t imm_j(uint32_t raw) {
  const uint32_t v = (bits(raw, 31, 1) << 20) | (bits(raw, 12, 8) << 12) |
                     (bits(raw, 20, 1) << 11) | (bits(raw, 21, 10) << 1);
  return sign_extend(v, 21);
}

}  // namespace

Instr decode(uint32_t raw) {
  Instr d;
  d.raw = raw;
  d.rd = static_cast<uint8_t>(bits(raw, 7, 5));
  d.rs1 = static_cast<uint8_t>(bits(raw, 15, 5));
  d.rs2 = static_cast<uint8_t>(bits(raw, 20, 5));
  const unsigned opcode = bits(raw, 0, 7);
  const unsigned f3 = bits(raw, 12, 3);
  const unsigned f7 = bits(raw, 25, 7);

  switch (opcode) {
    case kOpLui:
      d.kind = Kind::kLui;
      d.imm = imm_u(raw);
      return d;
    case kOpAuipc:
      d.kind = Kind::kAuipc;
      d.imm = imm_u(raw);
      return d;
    case kOpJal:
      d.kind = Kind::kJal;
      d.imm = imm_j(raw);
      return d;
    case kOpJalr:
      if (f3 != 0) break;
      d.kind = Kind::kJalr;
      d.imm = imm_i(raw);
      return d;
    case kOpBranch: {
      d.imm = imm_b(raw);
      switch (f3) {
        case 0b000: d.kind = Kind::kBeq; return d;
        case 0b001: d.kind = Kind::kBne; return d;
        case 0b100: d.kind = Kind::kBlt; return d;
        case 0b101: d.kind = Kind::kBge; return d;
        case 0b110: d.kind = Kind::kBltu; return d;
        case 0b111: d.kind = Kind::kBgeu; return d;
        default: break;
      }
      break;
    }
    case kOpLoad: {
      d.imm = imm_i(raw);
      switch (f3) {
        case 0b000: d.kind = Kind::kLb; return d;
        case 0b001: d.kind = Kind::kLh; return d;
        case 0b010: d.kind = Kind::kLw; return d;
        case 0b100: d.kind = Kind::kLbu; return d;
        case 0b101: d.kind = Kind::kLhu; return d;
        default: break;
      }
      break;
    }
    case kOpStore: {
      d.imm = imm_s(raw);
      switch (f3) {
        case 0b000: d.kind = Kind::kSb; return d;
        case 0b001: d.kind = Kind::kSh; return d;
        case 0b010: d.kind = Kind::kSw; return d;
        default: break;
      }
      break;
    }
    case kOpImm: {
      d.imm = imm_i(raw);
      switch (f3) {
        case 0b000: d.kind = Kind::kAddi; return d;
        case 0b010: d.kind = Kind::kSlti; return d;
        case 0b011: d.kind = Kind::kSltiu; return d;
        case 0b100: d.kind = Kind::kXori; return d;
        case 0b110: d.kind = Kind::kOri; return d;
        case 0b111: d.kind = Kind::kAndi; return d;
        case 0b001:
          if (f7 != 0) break;
          d.kind = Kind::kSlli;
          d.imm = static_cast<int32_t>(d.rs2);
          return d;
        case 0b101:
          d.imm = static_cast<int32_t>(d.rs2);
          if (f7 == 0) {
            d.kind = Kind::kSrli;
            return d;
          }
          if (f7 == 0b0100000) {
            d.kind = Kind::kSrai;
            return d;
          }
          break;
        default: break;
      }
      break;
    }
    case kOpReg: {
      if (f7 == 0b0000001) {  // M extension
        switch (f3) {
          case 0b000: d.kind = Kind::kMul; return d;
          case 0b001: d.kind = Kind::kMulh; return d;
          case 0b010: d.kind = Kind::kMulhsu; return d;
          case 0b011: d.kind = Kind::kMulhu; return d;
          case 0b100: d.kind = Kind::kDiv; return d;
          case 0b101: d.kind = Kind::kDivu; return d;
          case 0b110: d.kind = Kind::kRem; return d;
          case 0b111: d.kind = Kind::kRemu; return d;
        }
        break;
      }
      switch (f3) {
        case 0b000:
          if (f7 == 0) { d.kind = Kind::kAdd; return d; }
          if (f7 == 0b0100000) { d.kind = Kind::kSub; return d; }
          break;
        case 0b001:
          if (f7 == 0) { d.kind = Kind::kSll; return d; }
          break;
        case 0b010:
          if (f7 == 0) { d.kind = Kind::kSlt; return d; }
          break;
        case 0b011:
          if (f7 == 0) { d.kind = Kind::kSltu; return d; }
          break;
        case 0b100:
          if (f7 == 0) { d.kind = Kind::kXor; return d; }
          break;
        case 0b101:
          if (f7 == 0) { d.kind = Kind::kSrl; return d; }
          if (f7 == 0b0100000) { d.kind = Kind::kSra; return d; }
          break;
        case 0b110:
          if (f7 == 0) { d.kind = Kind::kOr; return d; }
          break;
        case 0b111:
          if (f7 == 0) { d.kind = Kind::kAnd; return d; }
          break;
      }
      break;
    }
    case kOpFence:
      d.kind = Kind::kFence;
      return d;
    case kOpSystem: {
      if (f3 == 0) {
        if (raw == 0x00000073u) { d.kind = Kind::kEcall; return d; }
        if (raw == 0x00100073u) { d.kind = Kind::kEbreak; return d; }
        break;
      }
      d.csr = static_cast<uint16_t>(raw >> 20);
      switch (f3) {
        case 0b001: d.kind = Kind::kCsrrw; return d;
        case 0b010: d.kind = Kind::kCsrrs; return d;
        case 0b011: d.kind = Kind::kCsrrc; return d;
        case 0b101: d.kind = Kind::kCsrrwi; d.imm = d.rs1; return d;
        case 0b110: d.kind = Kind::kCsrrsi; d.imm = d.rs1; return d;
        case 0b111: d.kind = Kind::kCsrrci; d.imm = d.rs1; return d;
        default: break;
      }
      break;
    }
    case kOpAmo: {
      if (f3 != 0b010) break;
      switch (bits(raw, 27, 5)) {
        case 0b00010: d.kind = Kind::kLrW; return d;
        case 0b00011: d.kind = Kind::kScW; return d;
        case 0b00001: d.kind = Kind::kAmoSwapW; return d;
        case 0b00000: d.kind = Kind::kAmoAddW; return d;
        case 0b00100: d.kind = Kind::kAmoXorW; return d;
        case 0b01100: d.kind = Kind::kAmoAndW; return d;
        case 0b01000: d.kind = Kind::kAmoOrW; return d;
        case 0b10000: d.kind = Kind::kAmoMinW; return d;
        case 0b10100: d.kind = Kind::kAmoMaxW; return d;
        case 0b11000: d.kind = Kind::kAmoMinuW; return d;
        case 0b11100: d.kind = Kind::kAmoMaxuW; return d;
        default: break;
      }
      break;
    }
    default: break;
  }
  d.kind = Kind::kIllegal;
  return d;
}

}  // namespace mempool::isa
