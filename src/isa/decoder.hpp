#pragma once
// RV32IMA decoder: raw 32-bit word -> semantic Instr.

#include <cstdint>

#include "isa/encoding.hpp"

namespace mempool::isa {

/// Decode one instruction word. Unknown encodings yield Kind::kIllegal; the
/// core model treats executing an illegal instruction as a fatal error.
Instr decode(uint32_t raw);

}  // namespace mempool::isa
