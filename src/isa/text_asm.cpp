#include "isa/text_asm.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>

#include "common/check.hpp"
#include "isa/csr.hpp"

namespace mempool::isa {

namespace {

struct Operand {
  enum class Type { kReg, kImm, kMem, kSym } type;
  Reg reg{};
  int32_t imm = 0;
  Reg mem_base{};
  std::string sym;
};

const std::map<std::string, Reg>& reg_table() {
  static const std::map<std::string, Reg> table = [] {
    std::map<std::string, Reg> t;
    const char* abi[] = {"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
                         "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
                         "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
                         "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
    for (int i = 0; i < 32; ++i) {
      t[abi[i]] = static_cast<Reg>(i);
      t["x" + std::to_string(i)] = static_cast<Reg>(i);
    }
    t["fp"] = Reg::s0;
    return t;
  }();
  return table;
}

bool parse_int(const std::string& s, int32_t* out) {
  if (s.empty()) return false;
  std::size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i >= s.size()) return false;
  int64_t v = 0;
  if (s.size() > i + 1 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    for (std::size_t j = i + 2; j < s.size(); ++j) {
      const char c = static_cast<char>(std::tolower(s[j]));
      if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
      v = v * 16 + (std::isdigit(static_cast<unsigned char>(c)) ? c - '0'
                                                                : c - 'a' + 10);
    }
    if (s.size() == i + 2) return false;
  } else {
    for (std::size_t j = i; j < s.size(); ++j) {
      if (!std::isdigit(static_cast<unsigned char>(s[j]))) return false;
      v = v * 10 + (s[j] - '0');
    }
  }
  *out = static_cast<int32_t>(neg ? -v : v);
  return true;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

Operand parse_operand(const std::string& raw) {
  const std::string s = trim(raw);
  MEMPOOL_CHECK_MSG(!s.empty(), "empty operand");
  // imm(reg) memory operand
  const std::size_t open = s.find('(');
  if (open != std::string::npos && s.back() == ')') {
    Operand op;
    op.type = Operand::Type::kMem;
    const std::string off = trim(s.substr(0, open));
    const std::string base = trim(s.substr(open + 1, s.size() - open - 2));
    op.imm = 0;
    if (!off.empty()) {
      MEMPOOL_CHECK_MSG(parse_int(off, &op.imm), "bad offset '" << off << "'");
    }
    const auto it = reg_table().find(base);
    MEMPOOL_CHECK_MSG(it != reg_table().end(), "bad base register '" << base << "'");
    op.mem_base = it->second;
    return op;
  }
  // register
  const auto it = reg_table().find(s);
  if (it != reg_table().end()) {
    return Operand{Operand::Type::kReg, it->second, 0, Reg::zero, {}};
  }
  // integer
  int32_t v;
  if (parse_int(s, &v)) {
    return Operand{Operand::Type::kImm, Reg::zero, v, Reg::zero, {}};
  }
  // CSR symbolic names
  static const std::map<std::string, int32_t> csrs = {
      {"mscratch", kCsrMscratch}, {"mcycle", kCsrMcycle},
      {"minstret", kCsrMinstret}, {"mcycleh", kCsrMcycleH},
      {"minstreth", kCsrMinstretH}, {"mhartid", kCsrMhartid},
      {"numcores", kCsrNumCores}, {"tileid", kCsrTileId},
      {"corespertile", kCsrCoresPerTile}};
  const auto cit = csrs.find(s);
  if (cit != csrs.end()) {
    return Operand{Operand::Type::kImm, Reg::zero, cit->second, Reg::zero, {}};
  }
  // label / symbol
  return Operand{Operand::Type::kSym, Reg::zero, 0, Reg::zero, s};
}

Reg want_reg(const Operand& op) {
  MEMPOOL_CHECK_MSG(op.type == Operand::Type::kReg, "expected a register");
  return op.reg;
}

int32_t want_imm(const Operand& op) {
  MEMPOOL_CHECK_MSG(op.type == Operand::Type::kImm, "expected an immediate");
  return op.imm;
}

std::string want_sym(const Operand& op) {
  MEMPOOL_CHECK_MSG(op.type == Operand::Type::kSym, "expected a label");
  return op.sym;
}

}  // namespace

std::vector<uint32_t> assemble_text(const std::string& source, uint32_t base) {
  Assembler a(base);
  std::istringstream in(source);
  std::string line;
  int line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    for (const char* c : {"#", "//", ";"}) {
      const std::size_t pos = line.find(c);
      if (pos != std::string::npos) line = line.substr(0, pos);
    }
    std::string text = trim(line);
    if (text.empty()) continue;

    try {
      // Labels (possibly followed by an instruction on the same line).
      while (true) {
        const std::size_t colon = text.find(':');
        if (colon == std::string::npos) break;
        const std::string head = trim(text.substr(0, colon));
        MEMPOOL_CHECK_MSG(!head.empty() && head.find(' ') == std::string::npos,
                          "bad label '" << head << "'");
        a.l(head);
        text = trim(text.substr(colon + 1));
      }
      if (text.empty()) continue;

      // Split mnemonic and comma-separated operand list.
      std::size_t sp = text.find_first_of(" \t");
      std::string mnem = text.substr(0, sp);
      std::transform(mnem.begin(), mnem.end(), mnem.begin(), ::tolower);
      std::vector<Operand> ops;
      if (sp != std::string::npos) {
        std::string rest = trim(text.substr(sp));
        std::size_t start = 0;
        while (start < rest.size()) {
          std::size_t comma = rest.find(',', start);
          const std::string piece = rest.substr(
              start, comma == std::string::npos ? std::string::npos
                                                : comma - start);
          if (!trim(piece).empty()) ops.push_back(parse_operand(piece));
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
      }
      const auto nops = ops.size();
      auto check_ops = [&](std::size_t want) {
        MEMPOOL_CHECK_MSG(nops == want, mnem << " expects " << want
                                             << " operands, got " << nops);
      };

      // Directives.
      if (mnem == ".word") {
        check_ops(1);
        a.word(static_cast<uint32_t>(want_imm(ops[0])));
        continue;
      }

      // Memory ops.
      auto mem = [&](void (Assembler::*fn)(Reg, Reg, int32_t)) {
        check_ops(2);
        MEMPOOL_CHECK_MSG(ops[1].type == Operand::Type::kMem,
                          "expected imm(reg) operand");
        (a.*fn)(want_reg(ops[0]), ops[1].mem_base, ops[1].imm);
      };
      auto rrr = [&](void (Assembler::*fn)(Reg, Reg, Reg)) {
        check_ops(3);
        (a.*fn)(want_reg(ops[0]), want_reg(ops[1]), want_reg(ops[2]));
      };
      auto rri = [&](void (Assembler::*fn)(Reg, Reg, int32_t)) {
        check_ops(3);
        (a.*fn)(want_reg(ops[0]), want_reg(ops[1]), want_imm(ops[2]));
      };
      auto shift = [&](void (Assembler::*fn)(Reg, Reg, unsigned)) {
        check_ops(3);
        (a.*fn)(want_reg(ops[0]), want_reg(ops[1]),
                static_cast<unsigned>(want_imm(ops[2])));
      };
      auto branch = [&](void (Assembler::*fn)(Reg, Reg, const std::string&)) {
        check_ops(3);
        (a.*fn)(want_reg(ops[0]), want_reg(ops[1]), want_sym(ops[2]));
      };
      auto amo = [&](void (Assembler::*fn)(Reg, Reg, Reg)) {
        check_ops(3);
        MEMPOOL_CHECK_MSG(ops[2].type == Operand::Type::kMem,
                          "expected (reg) operand");
        (a.*fn)(want_reg(ops[0]), want_reg(ops[1]), ops[2].mem_base);
      };

      if (mnem == "lui") { check_ops(2); a.lui(want_reg(ops[0]), want_imm(ops[1])); }
      else if (mnem == "auipc") { check_ops(2); a.auipc(want_reg(ops[0]), want_imm(ops[1])); }
      else if (mnem == "jal") {
        if (nops == 1) a.jal(Reg::ra, want_sym(ops[0]));
        else { check_ops(2); a.jal(want_reg(ops[0]), want_sym(ops[1])); }
      }
      else if (mnem == "jalr") {
        if (nops == 1) a.jalr(Reg::ra, want_reg(ops[0]), 0);
        else if (nops == 2 && ops[1].type == Operand::Type::kMem)
          a.jalr(want_reg(ops[0]), ops[1].mem_base, ops[1].imm);
        else { check_ops(3); a.jalr(want_reg(ops[0]), want_reg(ops[1]), want_imm(ops[2])); }
      }
      else if (mnem == "beq") branch(&Assembler::beq);
      else if (mnem == "bne") branch(&Assembler::bne);
      else if (mnem == "blt") branch(&Assembler::blt);
      else if (mnem == "bge") branch(&Assembler::bge);
      else if (mnem == "bltu") branch(&Assembler::bltu);
      else if (mnem == "bgeu") branch(&Assembler::bgeu);
      else if (mnem == "lb") mem(&Assembler::lb);
      else if (mnem == "lh") mem(&Assembler::lh);
      else if (mnem == "lw") mem(&Assembler::lw);
      else if (mnem == "lbu") mem(&Assembler::lbu);
      else if (mnem == "lhu") mem(&Assembler::lhu);
      else if (mnem == "sb") mem(&Assembler::sb);
      else if (mnem == "sh") mem(&Assembler::sh);
      else if (mnem == "sw") mem(&Assembler::sw);
      else if (mnem == "addi") rri(&Assembler::addi);
      else if (mnem == "slti") rri(&Assembler::slti);
      else if (mnem == "sltiu") rri(&Assembler::sltiu);
      else if (mnem == "xori") rri(&Assembler::xori);
      else if (mnem == "ori") rri(&Assembler::ori);
      else if (mnem == "andi") rri(&Assembler::andi);
      else if (mnem == "slli") shift(&Assembler::slli);
      else if (mnem == "srli") shift(&Assembler::srli);
      else if (mnem == "srai") shift(&Assembler::srai);
      else if (mnem == "add") rrr(&Assembler::add);
      else if (mnem == "sub") rrr(&Assembler::sub);
      else if (mnem == "sll") rrr(&Assembler::sll);
      else if (mnem == "slt") rrr(&Assembler::slt);
      else if (mnem == "sltu") rrr(&Assembler::sltu);
      else if (mnem == "xor") rrr(&Assembler::xor_);
      else if (mnem == "srl") rrr(&Assembler::srl);
      else if (mnem == "sra") rrr(&Assembler::sra);
      else if (mnem == "or") rrr(&Assembler::or_);
      else if (mnem == "and") rrr(&Assembler::and_);
      else if (mnem == "mul") rrr(&Assembler::mul);
      else if (mnem == "mulh") rrr(&Assembler::mulh);
      else if (mnem == "mulhsu") rrr(&Assembler::mulhsu);
      else if (mnem == "mulhu") rrr(&Assembler::mulhu);
      else if (mnem == "div") rrr(&Assembler::div);
      else if (mnem == "divu") rrr(&Assembler::divu);
      else if (mnem == "rem") rrr(&Assembler::rem);
      else if (mnem == "remu") rrr(&Assembler::remu);
      else if (mnem == "fence") a.fence();
      else if (mnem == "ecall") a.ecall();
      else if (mnem == "ebreak") a.ebreak();
      else if (mnem == "csrrw") { check_ops(3); a.csrrw(want_reg(ops[0]), static_cast<uint16_t>(want_imm(ops[1])), want_reg(ops[2])); }
      else if (mnem == "csrrs") { check_ops(3); a.csrrs(want_reg(ops[0]), static_cast<uint16_t>(want_imm(ops[1])), want_reg(ops[2])); }
      else if (mnem == "csrrc") { check_ops(3); a.csrrc(want_reg(ops[0]), static_cast<uint16_t>(want_imm(ops[1])), want_reg(ops[2])); }
      else if (mnem == "csrr") { check_ops(2); a.csrr(want_reg(ops[0]), static_cast<uint16_t>(want_imm(ops[1]))); }
      else if (mnem == "csrw") { check_ops(2); a.csrw(static_cast<uint16_t>(want_imm(ops[0])), want_reg(ops[1])); }
      else if (mnem == "lr.w") {
        check_ops(2);
        MEMPOOL_CHECK_MSG(ops[1].type == Operand::Type::kMem, "expected (reg)");
        a.lr_w(want_reg(ops[0]), ops[1].mem_base);
      }
      else if (mnem == "sc.w") amo(&Assembler::sc_w);
      else if (mnem == "amoswap.w") amo(&Assembler::amoswap_w);
      else if (mnem == "amoadd.w") amo(&Assembler::amoadd_w);
      else if (mnem == "amoxor.w") amo(&Assembler::amoxor_w);
      else if (mnem == "amoand.w") amo(&Assembler::amoand_w);
      else if (mnem == "amoor.w") amo(&Assembler::amoor_w);
      else if (mnem == "amomin.w") amo(&Assembler::amomin_w);
      else if (mnem == "amomax.w") amo(&Assembler::amomax_w);
      else if (mnem == "amominu.w") amo(&Assembler::amominu_w);
      else if (mnem == "amomaxu.w") amo(&Assembler::amomaxu_w);
      // Pseudo-instructions.
      else if (mnem == "nop") { check_ops(0); a.nop(); }
      else if (mnem == "mv") { check_ops(2); a.mv(want_reg(ops[0]), want_reg(ops[1])); }
      else if (mnem == "not") { check_ops(2); a.not_(want_reg(ops[0]), want_reg(ops[1])); }
      else if (mnem == "neg") { check_ops(2); a.neg(want_reg(ops[0]), want_reg(ops[1])); }
      else if (mnem == "seqz") { check_ops(2); a.seqz(want_reg(ops[0]), want_reg(ops[1])); }
      else if (mnem == "snez") { check_ops(2); a.snez(want_reg(ops[0]), want_reg(ops[1])); }
      else if (mnem == "beqz") { check_ops(2); a.beqz(want_reg(ops[0]), want_sym(ops[1])); }
      else if (mnem == "bnez") { check_ops(2); a.bnez(want_reg(ops[0]), want_sym(ops[1])); }
      else if (mnem == "blez") { check_ops(2); a.blez(want_reg(ops[0]), want_sym(ops[1])); }
      else if (mnem == "bgtz") { check_ops(2); a.bgtz(want_reg(ops[0]), want_sym(ops[1])); }
      else if (mnem == "j") { check_ops(1); a.j(want_sym(ops[0])); }
      else if (mnem == "call") { check_ops(1); a.call(want_sym(ops[0])); }
      else if (mnem == "ret") { check_ops(0); a.ret(); }
      else if (mnem == "li") { check_ops(2); a.li(want_reg(ops[0]), want_imm(ops[1])); }
      else {
        MEMPOOL_CHECK_MSG(false, "unknown mnemonic '" << mnem << "'");
      }
    } catch (const CheckError& e) {
      std::ostringstream os;
      os << "line " << line_no << ": " << e.what();
      throw CheckError(os.str());
    }
  }
  return a.finish();
}

}  // namespace mempool::isa
