#pragma once
// Programmatic RV32IMA assembler with labels. The benchmark kernels
// (Section V-C) are written against this builder; a textual front-end lives
// in isa/text_asm.hpp.
//
// Usage:
//   Assembler a;
//   a.l("loop");
//   a.lw(Reg::t0, Reg::a0, 0);
//   a.addi(Reg::a0, Reg::a0, 4);
//   a.bne(Reg::t0, Reg::zero, "loop");
//   std::vector<uint32_t> words = a.finish();

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/encoding.hpp"

namespace mempool::isa {

class Assembler {
 public:
  /// @param base virtual address of the first emitted word (label targets and
  ///        pc-relative fixups are computed against it).
  explicit Assembler(uint32_t base = 0x8000'0000u) : base_(base) {}

  // --- labels --------------------------------------------------------------

  /// Bind label @p name to the current position.
  void l(const std::string& name);
  /// Address of a bound label.
  uint32_t label_address(const std::string& name) const;
  /// Current emission address.
  uint32_t pc() const { return base_ + 4 * static_cast<uint32_t>(words_.size()); }

  // --- RV32I ---------------------------------------------------------------

  void lui(Reg rd, int32_t hi20);
  void auipc(Reg rd, int32_t hi20);
  void jal(Reg rd, const std::string& target);
  void jalr(Reg rd, Reg rs1, int32_t imm);
  void beq(Reg rs1, Reg rs2, const std::string& target);
  void bne(Reg rs1, Reg rs2, const std::string& target);
  void blt(Reg rs1, Reg rs2, const std::string& target);
  void bge(Reg rs1, Reg rs2, const std::string& target);
  void bltu(Reg rs1, Reg rs2, const std::string& target);
  void bgeu(Reg rs1, Reg rs2, const std::string& target);
  void lb(Reg rd, Reg rs1, int32_t imm);
  void lh(Reg rd, Reg rs1, int32_t imm);
  void lw(Reg rd, Reg rs1, int32_t imm);
  void lbu(Reg rd, Reg rs1, int32_t imm);
  void lhu(Reg rd, Reg rs1, int32_t imm);
  void sb(Reg rs2, Reg rs1, int32_t imm);
  void sh(Reg rs2, Reg rs1, int32_t imm);
  void sw(Reg rs2, Reg rs1, int32_t imm);
  void addi(Reg rd, Reg rs1, int32_t imm);
  void slti(Reg rd, Reg rs1, int32_t imm);
  void sltiu(Reg rd, Reg rs1, int32_t imm);
  void xori(Reg rd, Reg rs1, int32_t imm);
  void ori(Reg rd, Reg rs1, int32_t imm);
  void andi(Reg rd, Reg rs1, int32_t imm);
  void slli(Reg rd, Reg rs1, unsigned shamt);
  void srli(Reg rd, Reg rs1, unsigned shamt);
  void srai(Reg rd, Reg rs1, unsigned shamt);
  void add(Reg rd, Reg rs1, Reg rs2);
  void sub(Reg rd, Reg rs1, Reg rs2);
  void sll(Reg rd, Reg rs1, Reg rs2);
  void slt(Reg rd, Reg rs1, Reg rs2);
  void sltu(Reg rd, Reg rs1, Reg rs2);
  void xor_(Reg rd, Reg rs1, Reg rs2);
  void srl(Reg rd, Reg rs1, Reg rs2);
  void sra(Reg rd, Reg rs1, Reg rs2);
  void or_(Reg rd, Reg rs1, Reg rs2);
  void and_(Reg rd, Reg rs1, Reg rs2);
  void fence();
  void ecall();
  void ebreak();

  // --- Zicsr ---------------------------------------------------------------

  void csrrw(Reg rd, uint16_t csr, Reg rs1);
  void csrrs(Reg rd, uint16_t csr, Reg rs1);
  void csrrc(Reg rd, uint16_t csr, Reg rs1);
  void csrr(Reg rd, uint16_t csr) { csrrs(rd, csr, Reg::zero); }
  void csrw(uint16_t csr, Reg rs1) { csrrw(Reg::zero, csr, rs1); }

  // --- M -------------------------------------------------------------------

  void mul(Reg rd, Reg rs1, Reg rs2);
  void mulh(Reg rd, Reg rs1, Reg rs2);
  void mulhsu(Reg rd, Reg rs1, Reg rs2);
  void mulhu(Reg rd, Reg rs1, Reg rs2);
  void div(Reg rd, Reg rs1, Reg rs2);
  void divu(Reg rd, Reg rs1, Reg rs2);
  void rem(Reg rd, Reg rs1, Reg rs2);
  void remu(Reg rd, Reg rs1, Reg rs2);

  // --- A (word) ------------------------------------------------------------

  void lr_w(Reg rd, Reg rs1);
  void sc_w(Reg rd, Reg rs2, Reg rs1);
  void amoswap_w(Reg rd, Reg rs2, Reg rs1);
  void amoadd_w(Reg rd, Reg rs2, Reg rs1);
  void amoxor_w(Reg rd, Reg rs2, Reg rs1);
  void amoand_w(Reg rd, Reg rs2, Reg rs1);
  void amoor_w(Reg rd, Reg rs2, Reg rs1);
  void amomin_w(Reg rd, Reg rs2, Reg rs1);
  void amomax_w(Reg rd, Reg rs2, Reg rs1);
  void amominu_w(Reg rd, Reg rs2, Reg rs1);
  void amomaxu_w(Reg rd, Reg rs2, Reg rs1);

  // --- pseudo-instructions ---------------------------------------------------

  void nop() { addi(Reg::zero, Reg::zero, 0); }
  void mv(Reg rd, Reg rs) { addi(rd, rs, 0); }
  void not_(Reg rd, Reg rs) { xori(rd, rs, -1); }
  void neg(Reg rd, Reg rs) { sub(rd, Reg::zero, rs); }
  void seqz(Reg rd, Reg rs) { sltiu(rd, rs, 1); }
  void snez(Reg rd, Reg rs) { sltu(rd, Reg::zero, rs); }
  void beqz(Reg rs, const std::string& t) { beq(rs, Reg::zero, t); }
  void bnez(Reg rs, const std::string& t) { bne(rs, Reg::zero, t); }
  void blez(Reg rs, const std::string& t) { bge(Reg::zero, rs, t); }
  void bgtz(Reg rs, const std::string& t) { blt(Reg::zero, rs, t); }
  void j(const std::string& t) { jal(Reg::zero, t); }
  void call(const std::string& t) { jal(Reg::ra, t); }
  void ret() { jalr(Reg::zero, Reg::ra, 0); }
  /// Load an arbitrary 32-bit constant (lui+addi, or a single addi/lui when
  /// one suffices).
  void li(Reg rd, int32_t value);

  /// Emit a raw word (data or manually encoded instruction).
  void word(uint32_t w) { words_.push_back(w); }

  // --- finalization ----------------------------------------------------------

  /// Resolve all fixups and return the image. The assembler stays usable
  /// (finish() is idempotent).
  std::vector<uint32_t> finish();

  uint32_t base() const { return base_; }
  std::size_t size_words() const { return words_.size(); }

 private:
  enum class FixKind : uint8_t { kBranch, kJal };
  struct Fixup {
    std::size_t index;
    FixKind kind;
    std::string label;
  };

  void fixup(FixKind kind, const std::string& label);

  uint32_t base_;
  std::vector<uint32_t> words_;
  std::unordered_map<std::string, uint32_t> labels_;  // name -> address
  std::vector<Fixup> fixups_;
};

}  // namespace mempool::isa
