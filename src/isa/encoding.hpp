#pragma once
// RV32IMA instruction encodings: register names, semantic instruction kinds,
// and raw 32-bit encode helpers for every format (R/I/S/B/U/J + AMO).

#include <cstdint>

#include "common/bitutil.hpp"
#include "common/check.hpp"

namespace mempool::isa {

/// RISC-V integer registers with ABI aliases.
enum class Reg : uint8_t {
  x0 = 0, x1, x2, x3, x4, x5, x6, x7, x8, x9, x10, x11, x12, x13, x14, x15,
  x16, x17, x18, x19, x20, x21, x22, x23, x24, x25, x26, x27, x28, x29, x30,
  x31,
  zero = 0, ra = 1, sp = 2, gp = 3, tp = 4,
  t0 = 5, t1 = 6, t2 = 7,
  s0 = 8, fp = 8, s1 = 9,
  a0 = 10, a1 = 11, a2 = 12, a3 = 13, a4 = 14, a5 = 15, a6 = 16, a7 = 17,
  s2 = 18, s3 = 19, s4 = 20, s5 = 21, s6 = 22, s7 = 23, s8 = 24, s9 = 25,
  s10 = 26, s11 = 27,
  t3 = 28, t4 = 29, t5 = 30, t6 = 31,
};

constexpr uint8_t reg_num(Reg r) { return static_cast<uint8_t>(r); }

/// Semantic instruction kinds (post-decode).
enum class Kind : uint8_t {
  kIllegal,
  // RV32I
  kLui, kAuipc, kJal, kJalr,
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  kLb, kLh, kLw, kLbu, kLhu,
  kSb, kSh, kSw,
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
  kFence, kEcall, kEbreak,
  // Zicsr
  kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
  // M
  kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
  // A
  kLrW, kScW, kAmoSwapW, kAmoAddW, kAmoXorW, kAmoAndW, kAmoOrW,
  kAmoMinW, kAmoMaxW, kAmoMinuW, kAmoMaxuW,
};

/// Decoded instruction.
struct Instr {
  Kind kind = Kind::kIllegal;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;    ///< Sign-extended immediate (shamt for shifts).
  uint16_t csr = 0;   ///< CSR address for Zicsr kinds.
  uint32_t raw = 0;   ///< Original encoding.
};

// --- raw format encoders ---------------------------------------------------

constexpr uint32_t enc_r(unsigned f7, Reg rs2, Reg rs1, unsigned f3, Reg rd,
                         unsigned opcode) {
  return (f7 << 25) | (reg_num(rs2) << 20) | (reg_num(rs1) << 15) |
         (f3 << 12) | (reg_num(rd) << 7) | opcode;
}

constexpr uint32_t enc_i(int32_t imm, Reg rs1, unsigned f3, Reg rd,
                         unsigned opcode) {
  return (static_cast<uint32_t>(imm & 0xFFF) << 20) | (reg_num(rs1) << 15) |
         (f3 << 12) | (reg_num(rd) << 7) | opcode;
}

constexpr uint32_t enc_s(int32_t imm, Reg rs2, Reg rs1, unsigned f3,
                         unsigned opcode) {
  const uint32_t u = static_cast<uint32_t>(imm);
  return (bits(u, 5, 7) << 25) | (reg_num(rs2) << 20) | (reg_num(rs1) << 15) |
         (f3 << 12) | (bits(u, 0, 5) << 7) | opcode;
}

constexpr uint32_t enc_b(int32_t imm, Reg rs2, Reg rs1, unsigned f3,
                         unsigned opcode) {
  const uint32_t u = static_cast<uint32_t>(imm);
  return (bits(u, 12, 1) << 31) | (bits(u, 5, 6) << 25) |
         (reg_num(rs2) << 20) | (reg_num(rs1) << 15) | (f3 << 12) |
         (bits(u, 1, 4) << 8) | (bits(u, 11, 1) << 7) | opcode;
}

constexpr uint32_t enc_u(int32_t imm_hi20, Reg rd, unsigned opcode) {
  return (static_cast<uint32_t>(imm_hi20) << 12) | (reg_num(rd) << 7) | opcode;
}

constexpr uint32_t enc_j(int32_t imm, Reg rd, unsigned opcode) {
  const uint32_t u = static_cast<uint32_t>(imm);
  return (bits(u, 20, 1) << 31) | (bits(u, 1, 10) << 21) |
         (bits(u, 11, 1) << 20) | (bits(u, 12, 8) << 12) |
         (reg_num(rd) << 7) | opcode;
}

constexpr uint32_t enc_amo(unsigned f5, Reg rs2, Reg rs1, Reg rd) {
  return (f5 << 27) | (reg_num(rs2) << 20) | (reg_num(rs1) << 15) |
         (0b010u << 12) | (reg_num(rd) << 7) | 0b0101111u;
}

// Major opcodes.
inline constexpr unsigned kOpLui = 0b0110111;
inline constexpr unsigned kOpAuipc = 0b0010111;
inline constexpr unsigned kOpJal = 0b1101111;
inline constexpr unsigned kOpJalr = 0b1100111;
inline constexpr unsigned kOpBranch = 0b1100011;
inline constexpr unsigned kOpLoad = 0b0000011;
inline constexpr unsigned kOpStore = 0b0100011;
inline constexpr unsigned kOpImm = 0b0010011;
inline constexpr unsigned kOpReg = 0b0110011;
inline constexpr unsigned kOpFence = 0b0001111;
inline constexpr unsigned kOpSystem = 0b1110011;
inline constexpr unsigned kOpAmo = 0b0101111;

}  // namespace mempool::isa
