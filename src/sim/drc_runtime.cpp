#include "sim/drc_runtime.hpp"

#include <mutex>

namespace mempool::drc {

namespace {
std::mutex g_mutex;
std::vector<std::string>& log() {
  static std::vector<std::string> entries;
  return entries;
}
}  // namespace

void report_race(const std::string& what) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  log().push_back(what);
}

std::size_t race_count() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return log().size();
}

std::vector<std::string> races() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  return log();
}

void clear_races() {
  const std::lock_guard<std::mutex> lock(g_mutex);
  log().clear();
}

}  // namespace mempool::drc
