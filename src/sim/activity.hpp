#pragma once
// Activity primitives for the two-phase activity-driven scheduler.
//
// The engine evaluates only components whose activity flag is set. The flag
// is raised by the wake plumbing:
//  * a combinational ElasticBuffer push wakes its consumer immediately (the
//    packet is visible this cycle; topological evaluation order guarantees
//    the consumer has not been visited yet),
//  * a registered ElasticBuffer wakes its consumer when the staged item
//    becomes visible at the commit edge (so the consumer runs next cycle),
//  * components with self-generated work (traffic generators, I$ refills,
//    unhalted cores) simply never report idle() and stay in the active set.
//
// A component is put back to sleep by the engine right after an evaluate()
// in which it reports idle(); invariant: a sleeping component's evaluate()
// would be a no-op, and only a wake event can change that.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mempool {

class GraphVisitor;
class PacketSink;
class Wakeable;

/// Arbitration policy a multi-input component declares for the liveness DRC
/// (GraphVisitor::arbitration). Round-robin grants every input eventually;
/// fixed-priority can starve a low-priority input forever when the traffic
/// that fills it loops back through the arbiter's own output (rule D8).
enum class ArbiterFairness : uint8_t { kRoundRobin, kFixedPriority };

/// Progress snapshot a clocked element reports to the engine's stall
/// watchdog (Clocked::liveness). `drains` is a monotonic pop counter: a
/// buffer that stays non-empty across a full stall horizon with `drains`
/// unchanged has a wedged consumer, and the watchdog attributes the stall
/// to it by name. Non-buffer elements keep the default (is_buffer = false)
/// and are never watched.
struct LivenessState {
  bool is_buffer = false;
  std::size_t occupancy = 0;  ///< Visible + staged items.
  std::size_t capacity = 0;   ///< 0 = unbounded.
  uint64_t drains = 0;        ///< Lifetime pop() count (monotonic).
  const char* consumer = "?"; ///< Diagnostic name of the waiting consumer.
  std::string head;           ///< One-line summary of the head item, if any.
};

/// Activity flag mixin. Components start awake so the first cycle after
/// build() evaluates everything once and lets the idle ones drop out.
///
/// The flag lives behind a (word, bit) pointer: stand-alone the component
/// uses its own word, but once registered the engine rebinds it into one
/// packed bitset (bind_activity_slot) so the per-cycle active-set scan
/// iterates set bits of a few contiguous words instead of chasing a pointer
/// per component across the heap.
class Wakeable {
 public:
  Wakeable() = default;

  Wakeable(const Wakeable&) = delete;
  Wakeable& operator=(const Wakeable&) = delete;

  void wake() { *word_ |= mask_; }
  void sleep() { *word_ &= ~mask_; }
  bool awake() const { return (*word_ & mask_) != 0; }

  /// Move the flag into engine-owned storage, preserving its current value.
  /// @p word must outlive this object's last wake()/sleep() call.
  void bind_activity_slot(uint64_t* word, unsigned bit) {
    const bool was_awake = awake();
    word_ = word;
    mask_ = 1ull << bit;
    if (was_awake) {
      *word_ |= mask_;
    } else {
      *word_ &= ~mask_;
    }
  }

 private:
  uint64_t own_flag_ = 1;
  uint64_t* word_ = &own_flag_;
  uint64_t mask_ = 1;
};

/// Interface for anything clocked by the engine's commit phase.
///
/// Commit scheduling is structure-of-arrays, mirroring Wakeable: each
/// registered element owns one bit of an engine-owned packed dirty bitset
/// (bind_commit_slot moves the bit out of the private fallback word at
/// finalize). An element that stages state marks itself dirty; the commit
/// phase word-scans the bitset and commits set bits in slot order — commits
/// of distinct elements are independent (the only shared words, wake flags
/// and occupancy masks, combine with idempotent ORs), so slot order is
/// bit-identical to the historical push-order queue, as the dense oracle
/// (which always committed in registration order) has asserted all along.
class Clocked {
 public:
  virtual ~Clocked() = default;
  virtual void commit() = 0;

  /// Stage notification: set this element's commit-dirty bit (idempotent per
  /// cycle) and bump the bound pending counter on the first set.
  void mark_commit_dirty() {
    if ((*dirty_word_ & dirty_mask_) == 0) {
      *dirty_word_ |= dirty_mask_;
      ++*dirty_pending_;
    }
  }
  bool commit_dirty() const { return (*dirty_word_ & dirty_mask_) != 0; }

  /// Move the dirty bit into engine-owned storage (and the pending counter
  /// onto the engine's/lane's tally), preserving the current value. @p word
  /// and @p pending must outlive this element's last mark_commit_dirty().
  void bind_commit_slot(uint64_t* word, unsigned bit, uint64_t* pending) {
    const bool was_dirty = commit_dirty();
    dirty_word_ = word;
    dirty_mask_ = 1ull << bit;
    dirty_pending_ = pending;
    if (was_dirty) {
      // Pre-finalize staging (an external poke before the first step)
      // migrates into the engine's accounting.
      *dirty_word_ |= dirty_mask_;
      ++*dirty_pending_;
    } else {
      *dirty_word_ &= ~dirty_mask_;
    }
  }

  /// Sharded engine: refresh producer-visible state at the commit barrier.
  /// Called (on the consumer shard's thread, between the cycle's barriers)
  /// for every element the consumer drained this cycle — see
  /// ElasticBuffer::shard_sync for the one meaningful implementation.
  virtual void shard_sync() {}

  /// Static-analysis hook (verify/drc.hpp): report this element's structural
  /// facts — mode, consumer, shard-boundary status — via
  /// GraphVisitor::buffer_info. The conservative default declares nothing,
  /// which exempts the element from the design-rule checks (the DRC can only
  /// lint what is described); ElasticBuffer provides the one meaningful
  /// implementation.
  virtual void describe(GraphVisitor& /*v*/) const {}

  /// MEMPOOL_DRC hook: the runtime shard-race detector binds the shard the
  /// DRC resolved for this element's consumer, so eval-phase accesses can be
  /// checked against it. Default ignores the tag (non-buffer elements carry
  /// no per-access shard contract).
  virtual void drc_bind_shard(int32_t /*home_shard*/) {}

  /// Progress snapshot for the engine's stall watchdog
  /// (Engine::set_stall_horizon). The default reports "not a buffer", which
  /// exempts the element from watching; ElasticBuffer provides the one
  /// meaningful implementation.
  virtual LivenessState liveness() const { return {}; }

 private:
  uint64_t own_dirty_ = 0;  ///< Fallback dirty word before bind_commit_slot.
  uint64_t own_pending_ = 0;
  uint64_t* dirty_word_ = &own_dirty_;
  uint64_t dirty_mask_ = 1;
  uint64_t* dirty_pending_ = &own_pending_;
};

/// What an elastic buffer reports about itself to the design-rule checker
/// (Clocked::describe -> GraphVisitor::buffer_info).
struct BufferDecl {
  bool registered = false;      ///< kRegistered: commit-edge visibility.
  bool shard_boundary = false;  ///< mark_shard_boundary() was called.
  uint32_t consumer_shard = 0;  ///< Meaningful only when shard_boundary.
  const Wakeable* consumer = nullptr;  ///< set_consumer() target, if any.
  std::size_t capacity = 0;            ///< 0 = unbounded.
};

/// Callback interface of the elaboration-time design-rule checker
/// (verify/drc.hpp). Components and clocked elements *describe* the graph
/// structure the engine cannot see on its own: which buffers a component
/// reads (it is their consumer), which sinks/buffers it pushes into during
/// evaluate(), which components it delivers into or wakes directly, and
/// whether its work is self-generated. The DRC walks every registered
/// component, calls describe(), and checks the declared graph against the
/// engine's registration state and shard map (rules D1-D6, see
/// verify/drc.hpp for the canonical invariant statement).
///
/// All declarations are attributed to the component whose describe() call is
/// currently on the stack; label strings are copied immediately, so
/// temporaries are fine.
class GraphVisitor {
 public:
  virtual ~GraphVisitor() = default;

  // --- called from Component::describe ---------------------------------------
  /// The component pops/fronts @p buf during evaluate() (it is the buffer's
  /// consumer). @p label names the port ("in3", "req", ...).
  virtual void reads(const Clocked* buf, std::string_view label) = 0;
  /// The component pushes into @p sink during evaluate(). The DRC resolves
  /// the sink to the elastic buffer behind it (PacketSink::drc_buffer) or to
  /// a terminal delivery target (PacketSink::drc_terminal).
  virtual void writes(const PacketSink* sink, std::string_view label) = 0;
  /// The component pushes into @p buf directly (typed buffers that bypass
  /// the PacketSink interface, e.g. the DMA command/completion links).
  virtual void writes_buffer(const Clocked* buf, std::string_view label) = 0;
  /// The component delivers data into @p target by direct call during
  /// evaluate() (same-cycle, no buffer in between) — e.g. a response bridge
  /// delivering into a client, the DMA backend's dedicated bank port.
  virtual void writes_terminal(const Wakeable* target,
                               std::string_view label) = 0;
  /// The component calls target->wake() (or arms a timer for @p target)
  /// during evaluate() — e.g. a core waking the tile I$ on a miss.
  virtual void wakes(const Wakeable* target, std::string_view label) = 0;
  /// The component's work is self-generated (it stays awake or arms timed
  /// wakes for itself): cores, traffic generators, the DMA backends. Exempts
  /// it from the orphan rule D6.
  virtual void self_ticking() = 0;
  /// The component is woken by direct method calls from other components
  /// (I$ fetch, DMA portal submit) rather than through a declared edge.
  /// Exempts it from the orphan rule D6.
  virtual void wake_on_demand() = 0;

  // --- liveness annotations (rules D7-D9, verify/liveness.hpp) ---------------
  // Default no-ops: the structural rules D1-D6 need none of these, and a
  // component without request/response coupling or arbitration has nothing
  // to declare. Plugin authors: see the "Liveness" part of the README's
  // design-rule section for when each annotation is required.

  /// Draining request buffer @p req eventually requires pushing a response
  /// into @p resp (a memory bank answering a load, an AXI port, ...). The
  /// liveness DRC resolves @p resp like writes(); terminal responses cannot
  /// deadlock and are ignored. Feeds the protocol-deadlock lint D9.
  virtual void couples(const Clocked* /*req*/, const PacketSink* /*resp*/,
                       std::string_view /*label*/) {}
  /// couples() for typed buffers that bypass PacketSink (the DMA
  /// command/completion links).
  virtual void couples_buffer(const Clocked* /*req*/, const Clocked* /*resp*/,
                              std::string_view /*label*/) {}
  /// The component guarantees to drain @p buf unconditionally — popping it
  /// never waits on downstream backpressure (an ideal response bridge, the
  /// DMA frontend retiring completions). Such an edge breaks dependency
  /// cycles for D7/D8/D9.
  virtual void sinks_unconditionally(const Clocked* /*buf*/,
                                     std::string_view /*label*/) {}
  /// Arbitration policy over the component's declared read ports. Undeclared
  /// components are treated as fair (round-robin); a kFixedPriority
  /// declaration arms the starvation rule D8 for its inputs.
  virtual void arbitration(ArbiterFairness /*fairness*/) {}

  // --- called from Clocked::describe -----------------------------------------
  /// Structural facts of the buffer the DRC is currently walking.
  virtual void buffer_info(const BufferDecl& decl) = 0;
};

}  // namespace mempool
