#pragma once
// Activity primitives for the two-phase activity-driven scheduler.
//
// The engine evaluates only components whose activity flag is set. The flag
// is raised by the wake plumbing:
//  * a combinational ElasticBuffer push wakes its consumer immediately (the
//    packet is visible this cycle; topological evaluation order guarantees
//    the consumer has not been visited yet),
//  * a registered ElasticBuffer wakes its consumer when the staged item
//    becomes visible at the commit edge (so the consumer runs next cycle),
//  * components with self-generated work (traffic generators, I$ refills,
//    unhalted cores) simply never report idle() and stay in the active set.
//
// A component is put back to sleep by the engine right after an evaluate()
// in which it reports idle(); invariant: a sleeping component's evaluate()
// would be a no-op, and only a wake event can change that.

#include <cstddef>
#include <vector>

namespace mempool {

/// Activity flag mixin. Components start awake so the first cycle after
/// build() evaluates everything once and lets the idle ones drop out.
///
/// The flag lives behind a (word, bit) pointer: stand-alone the component
/// uses its own word, but once registered the engine rebinds it into one
/// packed bitset (bind_activity_slot) so the per-cycle active-set scan
/// iterates set bits of a few contiguous words instead of chasing a pointer
/// per component across the heap.
class Wakeable {
 public:
  Wakeable() = default;

  Wakeable(const Wakeable&) = delete;
  Wakeable& operator=(const Wakeable&) = delete;

  void wake() { *word_ |= mask_; }
  void sleep() { *word_ &= ~mask_; }
  bool awake() const { return (*word_ & mask_) != 0; }

  /// Move the flag into engine-owned storage, preserving its current value.
  /// @p word must outlive this object's last wake()/sleep() call.
  void bind_activity_slot(uint64_t* word, unsigned bit) {
    const bool was_awake = awake();
    word_ = word;
    mask_ = 1ull << bit;
    if (was_awake) {
      *word_ |= mask_;
    } else {
      *word_ &= ~mask_;
    }
  }

 private:
  uint64_t own_flag_ = 1;
  uint64_t* word_ = &own_flag_;
  uint64_t mask_ = 1;
};

class CommitQueue;

/// Interface for anything clocked by the engine's commit phase.
class Clocked {
 public:
  virtual ~Clocked() = default;
  virtual void commit() = 0;

  /// Activity plumbing: the engine hands every registered element its commit
  /// queue; elements that stage state lazily enqueue themselves when they
  /// actually have something to commit, so the commit phase only touches
  /// dirty elements instead of sweeping every buffer in the cluster.
  virtual void bind_commit_queue(CommitQueue* /*queue*/) {}

  /// Sharded engine: refresh producer-visible state at the commit barrier.
  /// Called (on the consumer shard's thread, between the cycle's barriers)
  /// for every element the consumer drained this cycle — see
  /// ElasticBuffer::shard_sync for the one meaningful implementation.
  virtual void shard_sync() {}
};

/// Per-cycle list of clocked elements with staged state. An element enqueues
/// itself at most once per cycle (an elastic buffer accepts a single staged
/// push per cycle by construction), so no deduplication is needed.
class CommitQueue {
 public:
  void enqueue(Clocked* c) { pending_.push_back(c); }
  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  /// Commit every enqueued element and reset for the next cycle.
  void commit_all() {
    for (Clocked* c : pending_) c->commit();
    pending_.clear();
  }

  /// Drop the queue without committing (dense mode already committed the
  /// full element list).
  void clear() { pending_.clear(); }

 private:
  std::vector<Clocked*> pending_;
};

}  // namespace mempool
