// Out-of-line engine machinery: shard finalization and the sharded cycle
// loop. See sim/shard.hpp for the partitioning/determinism story.

#include "sim/engine.hpp"

#include <cstring>
#include <sstream>
#include <unordered_map>

namespace mempool {

namespace {
/// Cycles whose previous cycle evaluated fewer components than this are
/// stepped inline on the calling thread: dispatching two phases to the
/// executor costs on the order of a microsecond of barrier traffic, which
/// light cycles (a mostly-idle cluster between Poisson arrivals) can never
/// amortize. The choice depends only on simulation state — never on thread
/// timing — so it cannot perturb results.
constexpr uint64_t kDispatchThreshold = 64;
}  // namespace

const char* engine_mode_name(EngineMode m) {
  switch (m) {
    case EngineMode::kActive:
      return "active";
    case EngineMode::kDense:
      return "dense";
    case EngineMode::kSharded:
      return "sharded";
  }
  return "?";
}

const char* engine_mode_available() { return "active, dense, sharded"; }

const char* engine_mode_description(EngineMode m) {
  switch (m) {
    case EngineMode::kActive:
      return "sequential activity-driven scheduler (default): evaluates only "
             "woken components";
    case EngineMode::kDense:
      return "evaluate-everything oracle: slowest, the equivalence baseline";
    case EngineMode::kSharded:
      return "activity-driven with per-group shards stepped in parallel "
             "(--sim-threads)";
  }
  return "?";
}

bool engine_mode_from_name(const std::string& name, EngineMode* out) {
  if (name == "active") {
    *out = EngineMode::kActive;
  } else if (name == "dense") {
    *out = EngineMode::kDense;
  } else if (name == "sharded") {
    *out = EngineMode::kSharded;
  } else {
    return false;
  }
  return true;
}

Engine::Engine() = default;
Engine::~Engine() = default;

void Engine::set_sharded(uint32_t num_shards, ShardExecutor* exec) {
  MEMPOOL_CHECK_MSG(!finalized_, "set_sharded after the first step");
  MEMPOOL_CHECK_MSG(!dense_,
                    "dense and sharded scheduling are mutually exclusive");
  MEMPOOL_CHECK_MSG(num_shards >= 1, "need at least one shard");
  num_shards_ = num_shards;
  exec_ = exec;
}

void Engine::finalize() {
  finalized_ = true;
  if (num_shards_ == 0) {
    flags_.assign((components_.size() + 63u) / 64u, 0);
    for (std::size_t i = 0; i < components_.size(); ++i) {
      components_[i]->bind_activity_slot(&flags_[i / 64],
                                         static_cast<unsigned>(i % 64));
    }
    return;
  }

  // Shard segmentation: each shard gets a cache-line aligned word range of
  // the packed flag array (8 words = one 64-byte line), so no two shard
  // threads ever store to the same line, plus a slot table mapping its flag
  // bits back to components in registration order — the sequential engine's
  // evaluation order restricted to the shard.
  const uint32_t S = num_shards_;
  constexpr std::size_t kWordsPerLine = 8;
  std::vector<std::size_t> count(S, 0);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    MEMPOOL_CHECK_MSG(component_shard_[i] < S,
                      "component '" << components_[i]->name() << "' assigned "
                                    << "to shard " << component_shard_[i]
                                    << " of " << S);
    ++count[component_shard_[i]];
  }
  lanes_.clear();
  lanes_.resize(S);
  std::size_t word = 0;
  for (uint32_t s = 0; s < S; ++s) {
    ShardLane& lane = lanes_[s];
    lane.id = s;
    lane.word_begin = static_cast<uint32_t>(word);
    const std::size_t words = (count[s] + 63u) / 64u;
    word += (words + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
    lane.word_end = static_cast<uint32_t>(word);
    lane.slots.assign((lane.word_end - lane.word_begin) * 64u, nullptr);
    lane.outbox.resize(S);
  }
  flags_.assign(word, 0);
  std::vector<std::size_t> next(S, 0);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    ShardLane& lane = lanes_[component_shard_[i]];
    const std::size_t k = next[component_shard_[i]]++;
    lane.slots[k] = components_[i];
    components_[i]->bind_activity_slot(&flags_[lane.word_begin + k / 64],
                                       static_cast<unsigned>(k % 64));
  }
}

void Engine::shard_evaluate(std::size_t s) {
  ShardLane& lane = lanes_[s];
  ShardLaneScope scope(&lane);

  // Fire this shard's due timers; their wakes are observed by the scan below,
  // exactly like the sequential engine's fire-then-scan order.
  while (!lane.far.empty() && lane.far.top().first < cycle_ + kTimerWindow) {
    const auto [due, w] = lane.far.top();
    lane.far.pop();
    if (due <= cycle_) {
      w->wake();
      --lane.armed;
    } else {
      lane.wheel[due & (kTimerWindow - 1)].push_back(w);
    }
  }
  auto& due_now = lane.wheel[cycle_ & (kTimerWindow - 1)];
  if (!due_now.empty()) {
    for (Wakeable* w : due_now) w->wake();
    lane.armed -= due_now.size();
    due_now.clear();
  }

  lane.worked =
      scan_words(flags_.data(), lane.word_begin, lane.word_end,
                 lane.slots.data(), &lane.evaluations, nullptr,
                 static_cast<int32_t>(lane.id));
}

void Engine::shard_commit(std::size_t d) {
  ShardLane& lane = lanes_[d];
  // Latch this shard's own dirty buffers first, then the mailboxes addressed
  // to it in ascending source-shard order. All commits touch only consumer-
  // shard state (ring/occupancy/wake of shard d), so the commit phase is
  // itself parallel across shards; the fixed order is for determinism only
  // (and even that is belt-and-braces: distinct buffers commute).
  uint64_t n = lane.queue.size();
  lane.queue.commit_all();
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (s == d) continue;
    auto& box = lanes_[s].outbox[d];
    if (box.empty()) continue;
    n += box.size();
    for (Clocked* c : box) c->commit();
    box.clear();
  }
  // Refresh the producer-visible snapshots of every boundary buffer this
  // shard drained: producers judge next cycle's backpressure against the
  // post-commit state, as they would under the sequential engine.
  for (Clocked* c : lane.drained) c->shard_sync();
  lane.drained.clear();
  if (n != 0) {
    lane.commits += n;
    lane.worked = true;
  }
}

bool Engine::step_sharded() {
  // External timers (armed outside any shard phase, e.g. by tests) fire on
  // the leader before the shards are released; their wakes may target any
  // shard, which is only safe single-threaded.
  fire_timers();

  const bool dispatch = exec_ != nullptr && exec_->threads() > 1 &&
                        last_cycle_evals_ >= kDispatchThreshold;
  if (dispatch) {
    ++parallel_cycles_;
    exec_->run(num_shards_, [this](std::size_t s) { shard_evaluate(s); });
    exec_->run(num_shards_, [this](std::size_t s) { shard_commit(s); });
  } else {
    for (uint32_t s = 0; s < num_shards_; ++s) shard_evaluate(s);
    for (uint32_t s = 0; s < num_shards_; ++s) shard_commit(s);
  }

  // Anything staged outside the shard phases (external pokes between steps
  // bind to the engine-global queue) latches last, on the leader. This
  // counts as work — the sequential engine would not fast-forward past a
  // cycle whose commit just woke someone.
  bool worked = false;
  if (!commit_queue_.empty()) {
    commits_ += commit_queue_.size();
    commit_queue_.commit_all();
    worked = true;
  }

  uint64_t evals = 0;
  for (const ShardLane& lane : lanes_) {
    worked |= lane.worked;
    evals += lane.evaluations;
  }
  last_cycle_evals_ = evals - prev_total_evals_;
  prev_total_evals_ = evals;
  ++cycle_;
  return worked;
}

uint64_t Engine::evaluations() const {
  uint64_t n = evaluations_;
  for (const ShardLane& lane : lanes_) n += lane.evaluations;
  return n;
}

uint64_t Engine::commits() const {
  uint64_t n = commits_;
  for (const ShardLane& lane : lanes_) n += lane.commits;
  return n;
}

// --- progress watchdog -------------------------------------------------------

namespace {
/// Buffer discovery for the watchdog: walk every component's describe() to
/// find the buffers on declared data edges and name each one after its first
/// reader ("component.port", the same convention the DRC uses), falling back
/// to the buffer's own consumer name for elements that are registered with
/// the engine but never described.
struct WatchWalk final : GraphVisitor {
  struct Found {
    Clocked* buf = nullptr;
    std::string name;
    uint32_t shard = 0;
    bool named = false;
  };
  std::vector<Found> found;  ///< Discovery order (deterministic).
  std::unordered_map<const Clocked*, std::size_t> index;
  std::string comp_name;
  uint32_t comp_shard = 0;

  std::size_t slot(const Clocked* buf) {
    const auto [it, fresh] = index.emplace(buf, found.size());
    if (fresh) {
      Found f;
      // describe() is const-only inspection, but the watchdog keeps probing
      // the buffer's liveness() for the rest of the run, so store mutable.
      f.buf = const_cast<Clocked*>(buf);  // NOLINT(cppcoreguidelines-pro-type-const-cast)
      found.push_back(std::move(f));
    }
    return it->second;
  }

  void reads(const Clocked* buf, std::string_view label) override {
    Found& f = found[slot(buf)];
    if (!f.named) {
      f.name = comp_name + "." + std::string(label);
      f.shard = comp_shard;
      f.named = true;
    }
  }
  void writes(const PacketSink* sink, std::string_view /*label*/) override {
    if (const Clocked* buf = sink->drc_buffer()) slot(buf);
  }
  void writes_buffer(const Clocked* buf, std::string_view /*label*/) override {
    slot(buf);
  }
  void writes_terminal(const Wakeable*, std::string_view) override {}
  void wakes(const Wakeable*, std::string_view) override {}
  void self_ticking() override {}
  void wake_on_demand() override {}
  void buffer_info(const BufferDecl&) override {}
};
}  // namespace

void Engine::watchdog_collect() {
  WatchWalk walk;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    walk.comp_name = components_[i]->name();
    walk.comp_shard = component_shard_[i];
    components_[i]->describe(walk);
  }
  for (Clocked* c : clocked_) walk.slot(c);

  watched_.clear();
  for (WatchWalk::Found& f : walk.found) {
    const LivenessState s = f.buf->liveness();
    if (!s.is_buffer) continue;
    WatchedBuffer w;
    w.buf = f.buf;
    w.name = f.named ? std::move(f.name) : std::string(s.consumer) + ".<in>";
    w.shard = f.shard;
    w.drains = s.drains;
    w.pending = s.occupancy > 0;
    w.pending_since = cycle_;
    watched_.push_back(std::move(w));
  }
}

void Engine::watchdog_probe() {
  if (!watch_baselined_) {
    watchdog_collect();
    watch_baselined_ = true;
    watch_probe_at_ = cycle_ + stall_horizon_;
    return;
  }
  std::vector<const WatchedBuffer*> stalled;
  for (WatchedBuffer& w : watched_) {
    const LivenessState s = w.buf->liveness();
    const bool pending_now = s.occupancy > 0;
    // A no-progress run continues only while the buffer stays non-empty
    // with an unchanged drain count; any pop, or going empty, resets it.
    if (!pending_now || s.drains != w.drains || !w.pending) {
      w.pending_since = cycle_;
    }
    w.drains = s.drains;
    w.pending = pending_now;
    if (pending_now && cycle_ - w.pending_since >= stall_horizon_) {
      stalled.push_back(&w);
    }
  }
  if (!stalled.empty()) watchdog_fire(stalled);
  watch_probe_at_ = cycle_ + stall_horizon_;
}

void Engine::watchdog_fire(const std::vector<const WatchedBuffer*>& stalled) {
  // Oldest stall first; name breaks ties so the report is deterministic.
  std::vector<const WatchedBuffer*> order = stalled;
  std::sort(order.begin(), order.end(),
            [](const WatchedBuffer* a, const WatchedBuffer* b) {
              if (a->pending_since != b->pending_since) {
                return a->pending_since < b->pending_since;
              }
              return a->name < b->name;
            });

  std::size_t pending_total = 0;
  for (const WatchedBuffer& w : watched_) {
    if (w.pending) ++pending_total;
  }
  std::unordered_map<uint32_t, uint64_t> per_shard;
  for (const WatchedBuffer* w : order) ++per_shard[w->shard];

  Json report = Json::object();
  report.set("schema", "mempool.liveness.v1");
  report.set("cycle", cycle_);
  report.set("horizon", stall_horizon_);
  report.set("engine",
             num_shards_ != 0 ? "sharded" : (dense_ ? "dense" : "active"));
  report.set("num_shards", num_shards_ == 0 ? uint64_t{1} : num_shards_);
  report.set("pending_buffers", static_cast<uint64_t>(pending_total));
  Json arr = Json::array();
  for (const WatchedBuffer* w : order) {
    const LivenessState s = w->buf->liveness();
    Json e = Json::object();
    e.set("buffer", w->name);
    e.set("consumer", s.consumer);
    e.set("shard", static_cast<uint64_t>(w->shard));
    e.set("occupancy", static_cast<uint64_t>(s.occupancy));
    e.set("capacity", static_cast<uint64_t>(s.capacity));
    e.set("stalled_for", cycle_ - w->pending_since);
    e.set("head", s.head);
    arr.push_back(std::move(e));
  }
  report.set("stalled", std::move(arr));
  Json shards = Json::array();
  {
    std::vector<std::pair<uint32_t, uint64_t>> rows(per_shard.begin(),
                                                    per_shard.end());
    std::sort(rows.begin(), rows.end());
    for (const auto& [shard, n] : rows) {
      Json row = Json::object();
      row.set("shard", static_cast<uint64_t>(shard));
      row.set("stalled", n);
      shards.push_back(std::move(row));
    }
  }
  report.set("stalled_shards", std::move(shards));

  const WatchedBuffer* oldest = order.front();
  std::ostringstream msg;
  msg << "liveness watchdog: " << order.size() << " buffer"
      << (order.size() == 1 ? "" : "s") << " made no progress for "
      << stall_horizon_ << " cycles (cycle " << cycle_ << "); oldest: '"
      << oldest->name << "' (consumer '" << oldest->buf->liveness().consumer
      << "', occupancy " << oldest->buf->liveness().occupancy << ", shard "
      << oldest->shard << ")";
  throw LivenessError(msg.str(), std::move(report));
}

uint64_t Engine::next_timer_at_most(uint64_t limit) const {
  uint64_t best = limit;
  if (!far_timers_.empty() && far_timers_.top().first < best) {
    best = far_timers_.top().first;
  }
  for (const ShardLane& lane : lanes_) {
    if (!lane.far.empty() && lane.far.top().first < best) {
      best = lane.far.top().first;
    }
  }
  for (uint64_t c = cycle_; c < cycle_ + kTimerWindow && c < best; ++c) {
    if (!wheel_[c & (kTimerWindow - 1)].empty()) {
      best = c;
      break;
    }
    for (const ShardLane& lane : lanes_) {
      if (!lane.wheel[c & (kTimerWindow - 1)].empty()) {
        best = c;
        break;
      }
    }
  }
  return best;
}

}  // namespace mempool
