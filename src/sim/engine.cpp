// Engine is header-only today; this TU anchors the library and keeps a home
// for future out-of-line engine features (checkpointing, VCD tracing).
#include "sim/engine.hpp"

namespace mempool {
// Intentionally empty.
}  // namespace mempool
