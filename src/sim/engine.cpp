// Out-of-line engine machinery: shard finalization and the sharded cycle
// loop. See sim/shard.hpp for the partitioning/determinism story.

#include "sim/engine.hpp"

#include <cstring>
#include <sstream>
#include <unordered_map>

namespace mempool {

namespace {
/// Cycles whose previous cycle evaluated fewer components than this are
/// stepped inline on the calling thread: dispatching two phases to the
/// executor costs on the order of a microsecond of barrier traffic, which
/// light cycles (a mostly-idle cluster between Poisson arrivals) can never
/// amortize. The choice depends only on simulation state — never on thread
/// timing — so it cannot perturb results.
constexpr uint64_t kDispatchThreshold = 64;
}  // namespace

const char* engine_mode_name(EngineMode m) {
  switch (m) {
    case EngineMode::kActive:
      return "active";
    case EngineMode::kDense:
      return "dense";
    case EngineMode::kSharded:
      return "sharded";
  }
  return "?";
}

const char* engine_mode_available() { return "active, dense, sharded"; }

const char* engine_mode_description(EngineMode m) {
  switch (m) {
    case EngineMode::kActive:
      return "sequential activity-driven scheduler (default): evaluates only "
             "woken components";
    case EngineMode::kDense:
      return "evaluate-everything oracle: slowest, the equivalence baseline";
    case EngineMode::kSharded:
      return "activity-driven with per-group shards stepped in parallel "
             "(--sim-threads)";
  }
  return "?";
}

bool engine_mode_from_name(const std::string& name, EngineMode* out) {
  if (name == "active") {
    *out = EngineMode::kActive;
  } else if (name == "dense") {
    *out = EngineMode::kDense;
  } else if (name == "sharded") {
    *out = EngineMode::kSharded;
  } else {
    return false;
  }
  return true;
}

Engine::Engine() = default;
Engine::~Engine() = default;

void Engine::set_sharded(uint32_t num_shards, ShardExecutor* exec) {
  MEMPOOL_CHECK_MSG(!finalized_, "set_sharded after the first step");
  MEMPOOL_CHECK_MSG(!dense_,
                    "dense and sharded scheduling are mutually exclusive");
  MEMPOOL_CHECK_MSG(num_shards >= 1, "need at least one shard");
  num_shards_ = num_shards;
  exec_ = exec;
}

namespace {
/// describe() sink used by finalize() to read one clocked element's BufferDecl
/// (shard-boundary status + consumer shard) for ring sizing and validation.
struct BoundaryScan final : GraphVisitor {
  BufferDecl decl;
  bool seen = false;
  void reads(const Clocked*, std::string_view) override {}
  void writes(const PacketSink*, std::string_view) override {}
  void writes_buffer(const Clocked*, std::string_view) override {}
  void writes_terminal(const Wakeable*, std::string_view) override {}
  void wakes(const Wakeable*, std::string_view) override {}
  void self_ticking() override {}
  void wake_on_demand() override {}
  void buffer_info(const BufferDecl& d) override {
    decl = d;
    seen = true;
  }
};
}  // namespace

void Engine::finalize() {
  finalized_ = true;
  if (num_shards_ == 0) {
    flags_.assign((components_.size() + 63u) / 64u, 0);
    for (std::size_t i = 0; i < components_.size(); ++i) {
      components_[i]->bind_activity_slot(&flags_[i / 64],
                                         static_cast<unsigned>(i % 64));
    }
    dirty_.assign((clocked_.size() + 63u) / 64u, 0);
    commit_slots_.assign(dirty_.size() * 64u, nullptr);
    dirty_pending_ = 0;  // bind_commit_slot re-adds pre-finalize staging
    for (std::size_t i = 0; i < clocked_.size(); ++i) {
      commit_slots_[i] = clocked_[i];
      clocked_[i]->bind_commit_slot(&dirty_[i / 64],
                                    static_cast<unsigned>(i % 64),
                                    &dirty_pending_);
    }
    return;
  }

  // Shard segmentation: each shard gets a cache-line aligned word range of
  // the packed flag array (8 words = one 64-byte line), so no two shard
  // threads ever store to the same line, plus a slot table mapping its flag
  // bits back to components in registration order — the sequential engine's
  // evaluation order restricted to the shard.
  const uint32_t S = num_shards_;
  constexpr std::size_t kWordsPerLine = 8;
  std::vector<std::size_t> count(S, 0);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    MEMPOOL_CHECK_MSG(component_shard_[i] < S,
                      "component '" << components_[i]->name() << "' assigned "
                                    << "to shard " << component_shard_[i]
                                    << " of " << S);
    ++count[component_shard_[i]];
  }
  lanes_.clear();
  lanes_.resize(S);
  std::size_t word = 0;
  for (uint32_t s = 0; s < S; ++s) {
    ShardLane& lane = lanes_[s];
    lane.id = s;
    lane.word_begin = static_cast<uint32_t>(word);
    const std::size_t words = (count[s] + 63u) / 64u;
    word += (words + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
    lane.word_end = static_cast<uint32_t>(word);
    lane.slots.assign((lane.word_end - lane.word_begin) * 64u, nullptr);
  }
  flags_.assign(word, 0);
  std::vector<std::size_t> next(S, 0);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    ShardLane& lane = lanes_[component_shard_[i]];
    const std::size_t k = next[component_shard_[i]]++;
    lane.slots[k] = components_[i];
    components_[i]->bind_activity_slot(&flags_[lane.word_begin + k / 64],
                                       static_cast<unsigned>(k % 64));
  }

  // Commit-dirty segmentation, mirroring the wake segments: each shard gets a
  // cache-line aligned word range of one packed dirty bitset plus a slot
  // table over its clocked elements in registration order, and every
  // element's dirty bit is rebound into its segment (with the lane's pending
  // counter as the tally).
  std::vector<std::size_t> ccount(S, 0);
  for (std::size_t i = 0; i < clocked_.size(); ++i) {
    MEMPOOL_CHECK_MSG(clocked_shard_[i] < S,
                      "clocked element " << i << " assigned to shard "
                                         << clocked_shard_[i] << " of " << S);
    ++ccount[clocked_shard_[i]];
  }
  std::size_t dword = 0;
  for (uint32_t s = 0; s < S; ++s) {
    ShardLane& lane = lanes_[s];
    lane.dirty_begin = static_cast<uint32_t>(dword);
    const std::size_t words = (ccount[s] + 63u) / 64u;
    dword += (words + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
    lane.dirty_end = static_cast<uint32_t>(dword);
    lane.cslots.assign((lane.dirty_end - lane.dirty_begin) * 64u, nullptr);
    lane.dirty_pending = 0;
  }
  dirty_.assign(dword, 0);
  std::vector<std::size_t> cnext(S, 0);
  for (std::size_t i = 0; i < clocked_.size(); ++i) {
    ShardLane& lane = lanes_[clocked_shard_[i]];
    const std::size_t k = cnext[clocked_shard_[i]]++;
    lane.cslots[k] = clocked_[i];
    clocked_[i]->bind_commit_slot(&dirty_[lane.dirty_begin + k / 64],
                                  static_cast<unsigned>(k % 64),
                                  &lane.dirty_pending);
  }

  // Cross-shard ring sizing. A registered buffer stages at most one item per
  // cycle (a second same-cycle push is a model error), so the number of
  // declared shard-boundary buffers consumed by shard d bounds how many
  // handoffs ANY producer shard can stage toward d in one cycle — the D4
  // boundary registry doubles as an exact worst-case ring depth. While
  // walking, validate that each boundary buffer was registered to the shard
  // its declaration names as consumer: the commit phase latches into
  // consumer-shard state, so a mismatch would be a data race.
  std::vector<std::size_t> boundary_count(S, 0);
  for (std::size_t i = 0; i < clocked_.size(); ++i) {
    BoundaryScan scan;
    clocked_[i]->describe(scan);
    if (!scan.seen || !scan.decl.shard_boundary) continue;
    MEMPOOL_CHECK_MSG(
        scan.decl.consumer_shard == clocked_shard_[i],
        "shard-boundary buffer declares consumer shard "
            << scan.decl.consumer_shard << " but was registered to shard "
            << clocked_shard_[i]
            << " (add_clocked must pass the consumer's shard)");
    ++boundary_count[scan.decl.consumer_shard];
  }
  rings_ = std::make_unique<SpscRing<Clocked*>[]>(std::size_t{S} * S);
  for (uint32_t s = 0; s < S; ++s) {
    for (uint32_t d = 0; d < S; ++d) {
      rings_[std::size_t{s} * S + d].init(
          boundary_count[d] == 0 ? 1 : boundary_count[d]);
    }
    lanes_[s].outbox_row = &rings_[std::size_t{s} * S];
  }
}

void Engine::shard_evaluate(std::size_t s) {
  ShardLane& lane = lanes_[s];
  const uint64_t t0 = profile_ ? prof_now_ns() : 0;
  ShardLaneScope scope(&lane);

  // Fire this shard's due timers; their wakes are observed by the scan below,
  // exactly like the sequential engine's fire-then-scan order.
  while (!lane.far.empty() && lane.far.top().first < cycle_ + kTimerWindow) {
    const auto [due, w] = lane.far.top();
    lane.far.pop();
    if (due <= cycle_) {
      w->wake();
      --lane.armed;
    } else {
      lane.wheel.arm(due, w);
    }
  }
  lane.armed -= lane.wheel.fire(cycle_);

  lane.worked =
      scan_words(flags_.data(), lane.word_begin, lane.word_end,
                 lane.slots.data(), &lane.evaluations, nullptr,
                 static_cast<int32_t>(lane.id));
  if (profile_) lane.prof_eval_ns = prof_now_ns() - t0;
}

void Engine::shard_commit(std::size_t d) {
  ShardLane& lane = lanes_[d];
  const uint64_t t0 = profile_ ? prof_now_ns() : 0;
  // Latch this shard's own dirty segment first (slot order), then drain the
  // rings addressed to it in ascending source-shard order. All commits touch
  // only consumer-shard state (ring/occupancy/wake of shard d), so the
  // commit phase is itself parallel across shards; the fixed order is for
  // determinism only (and even that is belt-and-braces: distinct buffers
  // commute).
  uint64_t n = 0;
  if (lane.dirty_pending != 0) {
    n += commit_scan(dirty_.data(), lane.dirty_begin, lane.dirty_end,
                     lane.cslots.data());
    lane.dirty_pending = 0;
  }
  const uint64_t t1 = profile_ ? prof_now_ns() : 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (s == d) continue;
    SpscRing<Clocked*>& ring = lanes_[s].outbox_row[d];
    Clocked* c = nullptr;
    while (ring.try_pop(&c)) {
      c->commit();
      ++n;
    }
  }
  // Refresh the producer-visible snapshots of every boundary buffer this
  // shard drained: producers judge next cycle's backpressure against the
  // post-commit state, as they would under the sequential engine.
  for (Clocked* c : lane.drained) c->shard_sync();
  lane.drained.clear();
  if (n != 0) {
    lane.commits += n;
    lane.worked = true;
  }
  if (profile_) {
    const uint64_t t2 = prof_now_ns();
    lane.prof_commit_ns = t1 - t0;
    lane.prof_drain_ns = t2 - t1;
  }
}

bool Engine::step_sharded() {
  // External timers (armed outside any shard phase, e.g. by tests) fire on
  // the leader before the shards are released; their wakes may target any
  // shard, which is only safe single-threaded. External pushes between steps
  // land directly in the consumer lane's dirty segment (the leader is the
  // only thread running), so there is no separate engine-global drain.
  const uint64_t t0 = profile_ ? prof_now_ns() : 0;
  fire_timers();

  const bool dispatch = exec_ != nullptr && exec_->threads() > 1 &&
                        last_cycle_evals_ >= kDispatchThreshold;
  if (dispatch) ++parallel_cycles_;
  const uint64_t te = profile_ ? prof_now_ns() : 0;
  if (dispatch) {
    exec_->run(num_shards_, [this](std::size_t s) { shard_evaluate(s); });
  } else {
    for (uint32_t s = 0; s < num_shards_; ++s) shard_evaluate(s);
  }
  const uint64_t tc = profile_ ? prof_now_ns() : 0;
  if (dispatch) {
    exec_->run(num_shards_, [this](std::size_t s) { shard_commit(s); });
  } else {
    for (uint32_t s = 0; s < num_shards_; ++s) shard_commit(s);
  }

  bool worked = false;
  uint64_t evals = 0;
  for (const ShardLane& lane : lanes_) {
    worked |= lane.worked;
    evals += lane.evaluations;
  }
  if (profile_) {
    const uint64_t tend = prof_now_ns();
    uint64_t max_eval = 0, max_cc = 0, commit_sum = 0, drain_sum = 0;
    for (ShardLane& lane : lanes_) {
      max_eval = std::max(max_eval, lane.prof_eval_ns);
      max_cc = std::max(max_cc, lane.prof_commit_ns + lane.prof_drain_ns);
      commit_sum += lane.prof_commit_ns;
      drain_sum += lane.prof_drain_ns;
      lane.prof_eval_ns = lane.prof_commit_ns = lane.prof_drain_ns = 0;
    }
    // Attribute the critical-path lane's busy time to the work phases and
    // the rest of each phase's wall time to the barrier; the commit-phase
    // critical path is split commit/drain pro rata of the lane totals.
    const uint64_t eval_wall = tc - te;
    const uint64_t commit_wall = tend - tc;
    const uint64_t busy = commit_sum + drain_sum;
    const uint64_t cc_commit = busy == 0 ? 0 : max_cc * commit_sum / busy;
    profile_data_.evaluate_ns += (te - t0) + max_eval;
    profile_data_.commit_ns += cc_commit;
    profile_data_.drain_ns += max_cc - cc_commit;
    profile_data_.barrier_ns += (eval_wall > max_eval ? eval_wall - max_eval : 0) +
                                (commit_wall > max_cc ? commit_wall - max_cc : 0);
    ++profile_data_.cycles;
  }
  last_cycle_evals_ = evals - prev_total_evals_;
  prev_total_evals_ = evals;
  ++cycle_;
  return worked;
}

uint64_t Engine::evaluations() const {
  uint64_t n = evaluations_;
  for (const ShardLane& lane : lanes_) n += lane.evaluations;
  return n;
}

uint64_t Engine::commits() const {
  uint64_t n = commits_;
  for (const ShardLane& lane : lanes_) n += lane.commits;
  return n;
}

// --- progress watchdog -------------------------------------------------------

namespace {
/// Buffer discovery for the watchdog: walk every component's describe() to
/// find the buffers on declared data edges and name each one after its first
/// reader ("component.port", the same convention the DRC uses), falling back
/// to the buffer's own consumer name for elements that are registered with
/// the engine but never described.
struct WatchWalk final : GraphVisitor {
  struct Found {
    Clocked* buf = nullptr;
    std::string name;
    uint32_t shard = 0;
    bool named = false;
  };
  std::vector<Found> found;  ///< Discovery order (deterministic).
  std::unordered_map<const Clocked*, std::size_t> index;
  std::string comp_name;
  uint32_t comp_shard = 0;

  std::size_t slot(const Clocked* buf) {
    const auto [it, fresh] = index.emplace(buf, found.size());
    if (fresh) {
      Found f;
      // describe() is const-only inspection, but the watchdog keeps probing
      // the buffer's liveness() for the rest of the run, so store mutable.
      f.buf = const_cast<Clocked*>(buf);  // NOLINT(cppcoreguidelines-pro-type-const-cast)
      found.push_back(std::move(f));
    }
    return it->second;
  }

  void reads(const Clocked* buf, std::string_view label) override {
    Found& f = found[slot(buf)];
    if (!f.named) {
      f.name = comp_name + "." + std::string(label);
      f.shard = comp_shard;
      f.named = true;
    }
  }
  void writes(const PacketSink* sink, std::string_view /*label*/) override {
    if (const Clocked* buf = sink->drc_buffer()) slot(buf);
  }
  void writes_buffer(const Clocked* buf, std::string_view /*label*/) override {
    slot(buf);
  }
  void writes_terminal(const Wakeable*, std::string_view) override {}
  void wakes(const Wakeable*, std::string_view) override {}
  void self_ticking() override {}
  void wake_on_demand() override {}
  void buffer_info(const BufferDecl&) override {}
};
}  // namespace

void Engine::watchdog_collect() {
  WatchWalk walk;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    walk.comp_name = components_[i]->name();
    walk.comp_shard = component_shard_[i];
    components_[i]->describe(walk);
  }
  for (Clocked* c : clocked_) walk.slot(c);

  watched_.clear();
  for (WatchWalk::Found& f : walk.found) {
    const LivenessState s = f.buf->liveness();
    if (!s.is_buffer) continue;
    WatchedBuffer w;
    w.buf = f.buf;
    w.name = f.named ? std::move(f.name) : std::string(s.consumer) + ".<in>";
    w.shard = f.shard;
    w.drains = s.drains;
    w.pending = s.occupancy > 0;
    w.pending_since = cycle_;
    watched_.push_back(std::move(w));
  }
}

void Engine::watchdog_probe() {
  if (!watch_baselined_) {
    watchdog_collect();
    watch_baselined_ = true;
    watch_probe_at_ = cycle_ + stall_horizon_;
    return;
  }
  std::vector<const WatchedBuffer*> stalled;
  for (WatchedBuffer& w : watched_) {
    const LivenessState s = w.buf->liveness();
    const bool pending_now = s.occupancy > 0;
    // A no-progress run continues only while the buffer stays non-empty
    // with an unchanged drain count; any pop, or going empty, resets it.
    if (!pending_now || s.drains != w.drains || !w.pending) {
      w.pending_since = cycle_;
    }
    w.drains = s.drains;
    w.pending = pending_now;
    if (pending_now && cycle_ - w.pending_since >= stall_horizon_) {
      stalled.push_back(&w);
    }
  }
  if (!stalled.empty()) watchdog_fire(stalled);
  watch_probe_at_ = cycle_ + stall_horizon_;
}

void Engine::watchdog_fire(const std::vector<const WatchedBuffer*>& stalled) {
  // Oldest stall first; name breaks ties so the report is deterministic.
  std::vector<const WatchedBuffer*> order = stalled;
  std::sort(order.begin(), order.end(),
            [](const WatchedBuffer* a, const WatchedBuffer* b) {
              if (a->pending_since != b->pending_since) {
                return a->pending_since < b->pending_since;
              }
              return a->name < b->name;
            });

  std::size_t pending_total = 0;
  for (const WatchedBuffer& w : watched_) {
    if (w.pending) ++pending_total;
  }
  std::unordered_map<uint32_t, uint64_t> per_shard;
  for (const WatchedBuffer* w : order) ++per_shard[w->shard];

  Json report = Json::object();
  report.set("schema", "mempool.liveness.v1");
  report.set("cycle", cycle_);
  report.set("horizon", stall_horizon_);
  report.set("engine",
             num_shards_ != 0 ? "sharded" : (dense_ ? "dense" : "active"));
  report.set("num_shards", num_shards_ == 0 ? uint64_t{1} : num_shards_);
  report.set("pending_buffers", static_cast<uint64_t>(pending_total));
  Json arr = Json::array();
  for (const WatchedBuffer* w : order) {
    const LivenessState s = w->buf->liveness();
    Json e = Json::object();
    e.set("buffer", w->name);
    e.set("consumer", s.consumer);
    e.set("shard", static_cast<uint64_t>(w->shard));
    e.set("occupancy", static_cast<uint64_t>(s.occupancy));
    e.set("capacity", static_cast<uint64_t>(s.capacity));
    e.set("stalled_for", cycle_ - w->pending_since);
    e.set("head", s.head);
    arr.push_back(std::move(e));
  }
  report.set("stalled", std::move(arr));
  Json shards = Json::array();
  {
    std::vector<std::pair<uint32_t, uint64_t>> rows(per_shard.begin(),
                                                    per_shard.end());
    std::sort(rows.begin(), rows.end());
    for (const auto& [shard, n] : rows) {
      Json row = Json::object();
      row.set("shard", static_cast<uint64_t>(shard));
      row.set("stalled", n);
      shards.push_back(std::move(row));
    }
  }
  report.set("stalled_shards", std::move(shards));

  const WatchedBuffer* oldest = order.front();
  std::ostringstream msg;
  msg << "liveness watchdog: " << order.size() << " buffer"
      << (order.size() == 1 ? "" : "s") << " made no progress for "
      << stall_horizon_ << " cycles (cycle " << cycle_ << "); oldest: '"
      << oldest->name << "' (consumer '" << oldest->buf->liveness().consumer
      << "', occupancy " << oldest->buf->liveness().occupancy << ", shard "
      << oldest->shard << ")";
  throw LivenessError(msg.str(), std::move(report));
}

uint64_t Engine::next_timer_at_most(uint64_t limit) const {
  uint64_t best = limit;
  if (!far_timers_.empty() && far_timers_.top().first < best) {
    best = far_timers_.top().first;
  }
  for (const ShardLane& lane : lanes_) {
    if (!lane.far.empty() && lane.far.top().first < best) {
      best = lane.far.top().first;
    }
  }
  for (uint64_t c = cycle_; c < cycle_ + kTimerWindow && c < best; ++c) {
    if (!wheel_.slot_empty(c)) {
      best = c;
      break;
    }
    for (const ShardLane& lane : lanes_) {
      if (!lane.wheel.slot_empty(c)) {
        best = c;
        break;
      }
    }
  }
  return best;
}

}  // namespace mempool
