#pragma once
// Synchronous cycle engine.
//
// The MemPool model is a fixed component graph; there is no dynamic event
// queue. Each cycle has two phases:
//   1. evaluate: every component runs once, in builder-established
//      topological order. Combinational buffers make packets pushed earlier
//      in the same cycle visible to later components, which is how a packet
//      crosses a chain of combinational switches in a single cycle.
//   2. commit: every registered element latches (staged pushes become
//      visible), then the cycle counter advances.

#include <cstdint>
#include <vector>

#include "sim/component.hpp"
#include "sim/elastic_buffer.hpp"

namespace mempool {

class Engine {
 public:
  /// Register a component; evaluation follows registration order.
  void add_component(Component* c) { components_.push_back(c); }

  /// Register a clocked element for the commit phase.
  void add_clocked(Clocked* c) { clocked_.push_back(c); }

  /// Advance one cycle.
  void step() {
    for (Component* c : components_) c->evaluate(cycle_);
    for (Clocked* c : clocked_) c->commit();
    ++cycle_;
  }

  /// Advance @p n cycles.
  void run(uint64_t n) {
    for (uint64_t i = 0; i < n; ++i) step();
  }

  uint64_t cycle() const { return cycle_; }
  std::size_t num_components() const { return components_.size(); }

 private:
  std::vector<Component*> components_;
  std::vector<Clocked*> clocked_;
  uint64_t cycle_ = 0;
};

}  // namespace mempool
