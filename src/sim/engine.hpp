#pragma once
// Synchronous cycle engine with two-phase active-set scheduling.
//
// The MemPool model is a fixed component graph; there is no dynamic event
// queue for packets. Each cycle has two phases:
//   1. evaluate: active components run once, in builder-established
//      topological order. Combinational buffers make packets pushed earlier
//      in the same cycle visible to later components, which is how a packet
//      crosses a chain of combinational switches in a single cycle.
//   2. commit: every buffer with a staged item latches (staged pushes become
//      visible and wake their consumer), then the cycle counter advances.
//
// Scheduling modes:
//   * activity-driven (default): only components whose wake flag is set are
//     evaluated. Components register wake conditions instead of polling:
//       - an elastic-buffer push/commit wakes the downstream component,
//       - response delivery wakes the receiving client,
//       - an I$ miss wakes the refill engine,
//       - wake_at(cycle, w) arms a timed wake (traffic generators sleep
//         between Poisson arrival events).
//     A component that reports idle() after evaluating is put to sleep until
//     one of those events re-arms it. The wake flags live in one contiguous
//     engine-owned array, so the per-cycle scan is a word-wise sweep that
//     skips 8 sleeping components per load. The commit phase walks only the
//     buffers that staged something this cycle. When a step finds no awake
//     component and nothing staged, the cluster cannot wake itself before
//     the next timer (or ever, if none is armed), so run() fast-forwards the
//     dead cycles and run_until_idle() returns.
//   * dense (set_dense(true), the benches' --engine=dense escape hatch):
//     evaluate every component and commit every registered element each
//     cycle — the original scheduler, kept as the equivalence oracle. Both
//     modes are cycle-for-cycle bit-identical (tests/test_sim_equivalence):
//     an idle component's evaluate() is a no-op by contract, and wake events
//     strictly precede the evaluation that observes them thanks to the
//     topological order (all combinational edges point forward; backward
//     edges are registered and wake at the commit edge for the next cycle).
//   * sharded (set_sharded, --engine=sharded): the activity-driven scheduler
//     with the component graph partitioned into per-group shards evaluated
//     concurrently and latched at a per-cycle commit barrier — see
//     sim/shard.hpp for the structure and the determinism argument. Results
//     are bit-identical to the active engine for any shard count and any
//     thread schedule.

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/json.hpp"
#include "sim/activity.hpp"
#include "sim/component.hpp"
#include "sim/elastic_buffer.hpp"
#include "sim/shard.hpp"

#if defined(MEMPOOL_DRC)
#include "sim/drc_runtime.hpp"
#endif

namespace mempool {

class Snapshot;

/// Thrown by the progress watchdog (Engine::set_stall_horizon) when pending
/// work has made no progress for a full stall horizon: the model is
/// deadlocked (or a consumer is starved), and aborting with an attributed
/// report beats hanging a million-cycle sweep. Carries the machine-readable
/// `mempool.liveness.v1` document naming the oldest-stalled buffers.
class LivenessError : public std::runtime_error {
 public:
  LivenessError(const std::string& what, Json report)
      : std::runtime_error(what), report_(std::move(report)) {}
  const Json& report() const { return report_; }

 private:
  Json report_;
};

class Engine {
 public:
  Engine();
  ~Engine();

  // Buffers and components keep raw pointers to the engine's dirty/flag
  // bitsets, so the engine must stay put once wired.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Register a component; evaluation follows registration order within each
  /// shard (and globally under the sequential schedulers). @p shard is the
  /// partition the component evaluates in under set_sharded() — components
  /// connected by a combinational path must share a shard (the cluster
  /// builder derives shards from the fabric plugin's group structure, which
  /// guarantees exactly that). Must happen before the first step().
  void add_component(Component* c, uint32_t shard = 0) {
    MEMPOOL_CHECK_MSG(!finalized_, "add_component after the first step");
    MEMPOOL_CHECK_MSG(component_set_.insert(c).second,
                      "component '" << c->name()
                                    << "' registered twice (it would be "
                                       "evaluated twice per cycle)");
    components_.push_back(c);
    component_shard_.push_back(shard);
  }

  /// Register a clocked element for the commit phase. @p shard is the shard
  /// whose commit phase latches the element under set_sharded() — for an
  /// elastic buffer, the shard of its *consumer* (commits publish into
  /// consumer-side state). finalize() packs all registered elements into a
  /// commit-dirty bitset (segmented per shard, like the wake flags) and binds
  /// each element's dirty bit into it; until then staged pushes fall back to
  /// the element's private word, which bind_commit_slot migrates.
  void add_clocked(Clocked* c, uint32_t shard = 0) {
    MEMPOOL_CHECK_MSG(!finalized_, "add_clocked after the first step");
    MEMPOOL_CHECK_MSG(clocked_set_.insert(c).second,
                      "clocked element registered twice (it would commit "
                      "twice per cycle under the dense engine)");
    clocked_.push_back(c);
    clocked_shard_.push_back(shard);
  }

  /// Arm a timed wake: @p w is woken at the start of cycle @p cycle (or
  /// immediately if @p cycle is not in the future). Components use this to
  /// sleep through dead cycles they can predict — e.g. a traffic generator
  /// sleeping until its next Poisson arrival. Near timers go into a bucketed
  /// wheel (O(1) arm/fire); far ones overflow into a heap and migrate as
  /// their window approaches. During a sharded evaluate phase the timer is
  /// armed in the evaluating shard's own wheel (components only arm wakes
  /// for themselves or same-shard peers), keeping the hot path lock-free.
  void wake_at(uint64_t cycle, Wakeable* w) {
    if (cycle <= cycle_) {
      w->wake();
      return;
    }
    if (ShardLane* lane = current_shard_lane()) {
      if (cycle - cycle_ < kTimerWindow) {
        lane->wheel.arm(cycle, w);
      } else {
        lane->far.emplace(cycle, w);
      }
      ++lane->armed;
      return;
    }
    if (cycle - cycle_ < kTimerWindow) {
      wheel_.arm(cycle, w);
    } else {
      far_timers_.emplace(cycle, w);
    }
    ++armed_timers_;
  }

  /// Select the scheduler: false (default) = activity-driven, true = dense
  /// evaluate-everything (the --engine=dense escape hatch / equivalence
  /// oracle). May be toggled between steps; both modes see the same state.
  /// Mutually exclusive with set_sharded().
  void set_dense(bool dense) {
    MEMPOOL_CHECK_MSG(!dense || num_shards_ == 0,
                      "dense and sharded scheduling are mutually exclusive");
    dense_ = dense;
  }
  bool dense() const { return dense_; }

  /// Partition the registered components into @p num_shards shards (by the
  /// shard ids passed to add_component) and step them in parallel on
  /// @p exec; a null executor — or one without spare threads — evaluates the
  /// shards sequentially on the calling thread, still bit-identically.
  /// @p exec, when given, must outlive every subsequent step()/run() call.
  /// Must be called after the components are registered and before the
  /// first step; mutually exclusive with set_dense(true).
  void set_sharded(uint32_t num_shards, ShardExecutor* exec);
  bool sharded() const { return num_shards_ != 0; }
  uint32_t num_shards() const { return num_shards_; }

  /// Arm the deterministic progress watchdog: every @p horizon cycles the
  /// engine probes all registered buffers, and a buffer that stays non-empty
  /// for a full horizon without a single pop() trips a LivenessError carrying
  /// a `mempool.liveness.v1` report (see watchdog_probe in engine.cpp). The
  /// probe reads only simulation state on the leader thread between cycles,
  /// so it is bit-identical across active/dense/sharded modes and never
  /// perturbs results. 0 (default) disarms. May be re-armed between steps;
  /// the horizon then counts from the current cycle.
  void set_stall_horizon(uint64_t horizon) {
    stall_horizon_ = horizon;
    watched_.clear();
    watch_baselined_ = false;
    watch_probe_at_ = horizon == 0 ? UINT64_MAX : cycle_;
  }
  uint64_t stall_horizon() const { return stall_horizon_; }

  /// Advance one cycle.
  void step() { step_work(); }

  /// Advance @p n cycles. In the activity-driven modes, once nothing is
  /// awake and nothing is staged, the cycles up to the next armed timer (or
  /// the target) are skipped in O(1) — they could not have changed any state.
  void run(uint64_t n) {
    const uint64_t target = cycle_ + n;
    while (cycle_ < target) {
      if (!step_work() && !dense_) {
        // Never fast-forward past a watchdog probe: an all-asleep wedge
        // (e.g. everything waiting on a commit that never comes) must still
        // be probed at the exact horizon boundary.
        const uint64_t next =
            std::min(next_timer_at_most(target), watch_probe_at_);
        if (next > cycle_) {
          idle_cycles_skipped_ += next - cycle_;
          cycle_ = next;
        }
      }
    }
  }

  /// Advance until the cluster is quiescent or @p max_cycles elapsed;
  /// returns the number of cycles advanced. In the activity-driven modes,
  /// dead stretches while only a timed wake is pending are fast-forwarded
  /// just like run(); dense mode steps every cycle and polls the components'
  /// idle() predicates.
  uint64_t run_until_idle(uint64_t max_cycles) {
    uint64_t advanced = 0;
    while (advanced < max_cycles && !quiescent()) {
      const uint64_t before = cycle_;
      if (!step_work() && !dense_) {
        // Nothing awake and nothing staged, yet not quiescent: a timed wake
        // is armed — skip straight to it (bounded by the cycle budget and by
        // the next watchdog probe, which must not be jumped over).
        const uint64_t next = std::min(
            next_timer_at_most(before + (max_cycles - advanced)),
            watch_probe_at_);
        if (next > cycle_) {
          idle_cycles_skipped_ += next - cycle_;
          cycle_ = next;
        }
      }
      advanced += cycle_ - before;
    }
    return advanced;
  }

  /// True when no component has pending work, nothing awaits commit, and no
  /// timer is armed — i.e. no future cycle can differ from this one (absent
  /// external pokes).
  bool quiescent() const {
    if (dirty_pending_ != 0 || armed_timers_ != 0) return false;
    for (const ShardLane& lane : lanes_) {
      if (lane.armed != 0 || lane.dirty_pending != 0) return false;
    }
    for (const Component* c : components_) {
      // Activity invariant: a sleeping component is idle by construction, so
      // only awake components need the (virtual) idle() check. Dense mode
      // never clears wake flags and always takes the idle() path.
      if (c->awake() && !c->idle()) return false;
    }
    return true;
  }

  // --- checkpoint/restore (sim/snapshot.cpp) ---------------------------------
  /// Capture the full simulation state at the current (quiesced) cycle
  /// boundary into @p snap: engine counters plus one section per registered
  /// component, in registration order. Must be called between steps — a
  /// non-empty commit-dirty set fails the quiescence check.
  void save_state(Snapshot* snap) const;
  /// Restore a save_state() capture into a freshly built engine/cluster of
  /// the same configuration. Sets the cycle counter and hands every
  /// component its section; continuing the run is bit-identical to the
  /// uninterrupted one under all scheduling modes.
  void load_state(const Snapshot& snap);

  uint64_t cycle() const { return cycle_; }
  std::size_t num_components() const { return components_.size(); }
  std::size_t num_clocked() const { return clocked_.size(); }

  // --- registration state (read by verify/drc.cpp) ---------------------------
  /// Registered components in evaluation (= registration) order.
  const std::vector<Component*>& components() const { return components_; }
  /// Shard id per component, parallel to components().
  const std::vector<uint32_t>& component_shards() const {
    return component_shard_;
  }
  /// Registered clocked elements (commit-phase participants).
  const std::vector<Clocked*>& clocked_elements() const { return clocked_; }
  /// Whether @p c was registered via add_clocked (rule D1).
  bool is_registered_clocked(const Clocked* c) const {
    return clocked_set_.count(c) != 0;
  }

  // --- scheduler statistics (perf reporting and tests) -----------------------
  /// Total component evaluate() calls across all cycles.
  uint64_t evaluations() const;
  /// Total commit() calls across all cycles.
  uint64_t commits() const;
  /// Cycles fast-forwarded by run() after quiescence was detected.
  uint64_t idle_cycles_skipped() const { return idle_cycles_skipped_; }
  /// Cycles the sharded engine dispatched to the executor (vs. evaluating
  /// the shards inline because the previous cycle was too light to pay the
  /// barrier for). Deterministic: depends only on simulation state.
  uint64_t parallel_cycles() const { return parallel_cycles_; }

  // --- per-phase profiling (micro_sim_speed --profile) -----------------------
  /// Wall-clock nanoseconds attributed to each phase of the cycle loop while
  /// set_profile(true): evaluate = timer firing + active-set scans, commit =
  /// commit-dirty bitset scans, drain = cross-shard ring drains + boundary
  /// snapshot refreshes (sharded only), barrier = dispatch/join overhead of
  /// the sharded phases (phase wall time minus the busiest lane's work).
  /// Profiling never changes simulation results — it only reads clocks.
  struct PhaseProfile {
    uint64_t evaluate_ns = 0;
    uint64_t commit_ns = 0;
    uint64_t drain_ns = 0;
    uint64_t barrier_ns = 0;
    uint64_t cycles = 0;  ///< Cycles measured (fast-forwarded ones excluded).
  };
  void set_profile(bool on) { profile_ = on; }
  const PhaseProfile& phase_profile() const { return profile_data_; }

 private:
  /// Gather every component's wake flag into one packed bitset so the
  /// active-set scan iterates set bits of a few contiguous words. Under
  /// set_sharded the bitset is segmented per shard (cache-line aligned) and
  /// per-shard slot tables are built.
  void finalize();

  /// Fire every timer due at the current cycle (wheel slot + any far timer
  /// that is due or has entered the wheel window). Timer wakes are observed
  /// by this cycle's scan.
  void fire_timers() {
    while (!far_timers_.empty() &&
           far_timers_.top().first < cycle_ + kTimerWindow) {
      const auto [due, w] = far_timers_.top();
      far_timers_.pop();
      if (due <= cycle_) {
        w->wake();
        --armed_timers_;
      } else {
        wheel_.arm(due, w);
      }
    }
    armed_timers_ -= wheel_.fire(cycle_);
  }

  /// Earliest armed timer cycle, clamped to @p limit. Only called when the
  /// cluster is otherwise quiescent, so the wheel scans are off the hot path.
  uint64_t next_timer_at_most(uint64_t limit) const;

  /// One cycle; returns true if any component was evaluated or any element
  /// committed (always true in dense mode).
  bool step_work() {
    if (!finalized_) finalize();
    // Watchdog probe: leader thread, between cycles, before any shard phase
    // is released — identical observation point under all three modes.
    if (cycle_ >= watch_probe_at_) watchdog_probe();
    if (num_shards_ != 0) return step_sharded();
    const uint64_t t0 = profile_ ? prof_now_ns() : 0;
    fire_timers();
    bool worked = false;
    if (dense_) {
      for (std::size_t i = 0; i < components_.size(); ++i) {
#if defined(MEMPOOL_DRC)
        const drc::EvalShardScope drc_scope(
            static_cast<int32_t>(component_shard_[i]));
#endif
        components_[i]->evaluate(cycle_);
      }
      evaluations_ += components_.size();
      const uint64_t t1 = profile_ ? prof_now_ns() : 0;
      for (Clocked* c : clocked_) c->commit();
      commits_ += clocked_.size();
      // Buffers still self-marked their dirty bits; the full sweep above
      // already committed them, so just wipe the bitset for the next cycle.
      if (dirty_pending_ != 0) {
        std::fill(dirty_.begin(), dirty_.end(), 0);
        dirty_pending_ = 0;
      }
      worked = true;
      if (profile_) {
        profile_data_.evaluate_ns += t1 - t0;
        profile_data_.commit_ns += prof_now_ns() - t1;
        ++profile_data_.cycles;
      }
    } else {
      worked = scan_words(flags_.data(), 0, flags_.size(), components_.data(),
                          &evaluations_, component_shard_.data(), 0);
      const uint64_t t1 = profile_ ? prof_now_ns() : 0;
      if (dirty_pending_ != 0) {
        worked = true;
        commits_ +=
            commit_scan(dirty_.data(), 0, dirty_.size(), commit_slots_.data());
        dirty_pending_ = 0;
      }
      if (profile_) {
        profile_data_.evaluate_ns += t1 - t0;
        profile_data_.commit_ns += prof_now_ns() - t1;
        ++profile_data_.cycles;
      }
    }
    ++cycle_;
    return worked;
  }

  /// Evaluate the awake components behind flag words [@p begin, @p end) of
  /// @p words; slot tables are indexed relative to @p begin. Shared between
  /// the sequential scan (whole array) and the per-shard scans.
  /// MEMPOOL_DRC only: each evaluation is tagged with its component's shard —
  /// @p slot_shards (indexed like @p slots) when non-null, else
  /// @p fixed_shard (the per-lane scans, where every slot shares the lane
  /// id). Plain builds ignore both.
  bool scan_words(uint64_t* words, std::size_t begin, std::size_t end,
                  Component* const* slots, uint64_t* evaluations,
                  [[maybe_unused]] const uint32_t* slot_shards,
                  [[maybe_unused]] int32_t fixed_shard) {
    bool worked = false;
    for (std::size_t w = begin; w < end; ++w) {
      // Process set bits in ascending component order, re-reading the word
      // after every evaluation: a component may wake a LATER one in this
      // same word via a combinational push (must be seen this cycle), while
      // a backward wake (e.g. an I$ miss arming the earlier-phase refill
      // engine) stays pending for the next cycle — exactly the dense
      // engine's semantics.
      uint64_t visited = 0;  // bit b and everything below, once processed
      uint64_t m;
      while ((m = words[w] & ~visited) != 0) {
        const unsigned b = std::countr_zero(m);
        const uint64_t bit = 1ull << b;
        visited |= bit | (bit - 1);
        worked = true;
        Component* c = slots[(w - begin) * 64 + b];
        {
#if defined(MEMPOOL_DRC)
          const drc::EvalShardScope drc_scope(
              slot_shards != nullptr
                  ? static_cast<int32_t>(slot_shards[(w - begin) * 64 + b])
                  : fixed_shard);
#endif
          c->evaluate(cycle_);
        }
        ++*evaluations;
        if (c->idle()) c->sleep();
      }
    }
    return worked;
  }

  /// Commit the clocked elements behind set dirty bits of words
  /// [@p begin, @p end), in ascending slot order (bit-identical to the
  /// historical push-order queue — see Clocked's class comment). Each word is
  /// cleared before its bits are walked; commit() never re-marks, so the
  /// bitset is clean afterwards. Returns the number of commits.
  static uint64_t commit_scan(uint64_t* words, std::size_t begin,
                              std::size_t end, Clocked* const* slots) {
    uint64_t n = 0;
    for (std::size_t w = begin; w < end; ++w) {
      uint64_t m = words[w];
      if (m == 0) continue;
      words[w] = 0;
      do {
        const unsigned b = std::countr_zero(m);
        m &= m - 1;
        slots[(w - begin) * 64 + b]->commit();
        ++n;
      } while (m != 0);
    }
    return n;
  }

  static uint64_t prof_now_ns() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  // --- sharded stepping (engine.cpp) -----------------------------------------
  bool step_sharded();
  void shard_evaluate(std::size_t s);
  void shard_commit(std::size_t s);

  // --- progress watchdog (engine.cpp) ----------------------------------------
  /// One buffer under watch. `pending_since` is the probe cycle at which the
  /// current "non-empty with no drain progress" run began; a run that
  /// reaches the stall horizon trips the watchdog.
  struct WatchedBuffer {
    Clocked* buf = nullptr;
    std::string name;    ///< First reader's "component.port" (DRC naming).
    uint32_t shard = 0;  ///< Consumer's shard (0 under sequential modes).
    uint64_t drains = 0;
    bool pending = false;
    uint64_t pending_since = 0;
  };
  void watchdog_collect();
  void watchdog_probe();
  [[noreturn]] void watchdog_fire(
      const std::vector<const WatchedBuffer*>& stalled);

  std::vector<Component*> components_;
  std::vector<uint32_t> component_shard_;  ///< Parallel to components_.
  std::vector<Clocked*> clocked_;
  std::vector<uint32_t> clocked_shard_;  ///< Parallel to clocked_.
  std::unordered_set<const Component*> component_set_;  ///< Dup detection.
  std::unordered_set<const Clocked*> clocked_set_;      ///< Dup detection.
  std::vector<uint64_t> flags_;  ///< Packed wake bits, one per component.
  std::vector<uint64_t> dirty_;  ///< Packed commit-dirty bits, one per clocked.
  std::vector<Clocked*> commit_slots_;  ///< Bit -> element (sequential modes).
  uint64_t dirty_pending_ = 0;  ///< Dirty count (sequential/external staging).
  /// S×S matrix of cross-shard handoff rings, row-major by producer shard
  /// (lanes_[s].outbox_row = &rings_[s * S]); sized at finalize from the
  /// boundary-buffer registry, empty under the sequential modes.
  std::unique_ptr<SpscRing<Clocked*>[]> rings_;
  static constexpr uint64_t kTimerWindow = TimerWheel::kWindow;
  static_assert(kTimerWindow == ShardLane::kTimerWindow);
  TimerWheel wheel_;
  using Timer = std::pair<uint64_t, Wakeable*>;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>>
      far_timers_;
  uint64_t armed_timers_ = 0;
  uint64_t cycle_ = 0;
  bool dense_ = false;
  bool finalized_ = false;
  uint64_t evaluations_ = 0;
  uint64_t commits_ = 0;
  uint64_t idle_cycles_skipped_ = 0;
  bool profile_ = false;
  PhaseProfile profile_data_;

  // --- watchdog state --------------------------------------------------------
  uint64_t stall_horizon_ = 0;            ///< 0 = watchdog disarmed.
  uint64_t watch_probe_at_ = UINT64_MAX;  ///< Next probe cycle.
  bool watch_baselined_ = false;          ///< Buffer list collected yet?
  std::vector<WatchedBuffer> watched_;

  // --- sharded state ---------------------------------------------------------
  uint32_t num_shards_ = 0;  ///< 0 = sequential scheduling.
  ShardExecutor* exec_ = nullptr;
  std::vector<ShardLane> lanes_;
  /// Evaluations of the previous cycle: cycles lighter than the dispatch
  /// threshold are evaluated inline (the barrier would cost more than the
  /// work); purely simulation-state dependent, so the choice never affects
  /// results.
  uint64_t last_cycle_evals_ = UINT64_MAX;
  uint64_t prev_total_evals_ = 0;
  uint64_t parallel_cycles_ = 0;
};

}  // namespace mempool
