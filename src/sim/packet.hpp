#pragma once
// The single message type that flows through MemPool's request and response
// interconnects. The paper's networks transmit single-word requests with
// routing metadata ("Requests hold metadata to route them back to the correct
// core and ensure their proper ordering by the Reorder Buffer").

#include <cstdint>
#include <string>

#include "sim/snapshot.hpp"

namespace mempool {

/// Memory operation carried by a request packet. Stores are posted (the
/// response interconnect only routes read data back, per Section III-A), so
/// only loads/AMOs/LR/SC generate response packets.
enum class MemOp : uint8_t {
  kLoad,
  kStore,
  kAmoSwap,
  kAmoAdd,
  kAmoXor,
  kAmoAnd,
  kAmoOr,
  kAmoMin,
  kAmoMax,
  kAmoMinu,
  kAmoMaxu,
  kLoadReserved,
  kStoreConditional,
};

/// True if @p op produces a response packet on the read-response network.
constexpr bool op_has_response(MemOp op) { return op != MemOp::kStore; }

/// True if @p op writes the target word.
constexpr bool op_writes(MemOp op) {
  return op != MemOp::kLoad && op != MemOp::kLoadReserved;
}

/// One word-sized transaction, used on both the request and the response
/// interconnect (direction disambiguated by where it travels; the response
/// carries the same identity fields so the ROB can match it).
struct Packet {
  uint32_t addr = 0;      ///< Physical (post-scrambler) byte address.
  uint32_t data = 0;      ///< Store data / AMO operand / response payload.
  uint8_t be = 0xF;       ///< Byte enables for stores (bit i = byte i).
  MemOp op = MemOp::kLoad;
  uint16_t src = 0;       ///< Global requester index (core or generator).
  uint16_t src_tile = 0;  ///< Tile of the requester (response routing).
  uint16_t dst_tile = 0;  ///< Target tile (request routing).
  uint16_t dst_bank = 0;  ///< Bank inside the target tile.
  uint32_t dst_row = 0;   ///< Word row inside the bank.
  uint16_t tag = 0;       ///< Requester-local tag (ROB slot / sequence nr).
  uint64_t birth = 0;     ///< Cycle the request was generated (for latency).
};

/// Names for diagnostics (liveness reports, traces).
constexpr const char* mem_op_name(MemOp op) {
  switch (op) {
    case MemOp::kLoad: return "load";
    case MemOp::kStore: return "store";
    case MemOp::kAmoSwap: return "amoswap";
    case MemOp::kAmoAdd: return "amoadd";
    case MemOp::kAmoXor: return "amoxor";
    case MemOp::kAmoAnd: return "amoand";
    case MemOp::kAmoOr: return "amoor";
    case MemOp::kAmoMin: return "amomin";
    case MemOp::kAmoMax: return "amomax";
    case MemOp::kAmoMinu: return "amominu";
    case MemOp::kAmoMaxu: return "amomaxu";
    case MemOp::kLoadReserved: return "lr";
    case MemOp::kStoreConditional: return "sc";
  }
  return "?";
}

/// Checkpoint serialization for packets in flight inside elastic buffers
/// (the ADL pair ElasticBuffer::save_state/load_state look up, mirroring
/// liveness_summary below).
inline void save_item(StateSink& s, const Packet& p) {
  s.u32(p.addr);
  s.u32(p.data);
  s.u8(p.be);
  s.u8(static_cast<uint8_t>(p.op));
  s.u16(p.src);
  s.u16(p.src_tile);
  s.u16(p.dst_tile);
  s.u16(p.dst_bank);
  s.u32(p.dst_row);
  s.u16(p.tag);
  s.u64(p.birth);
}

inline void load_item(StateSource& s, Packet* p) {
  p->addr = s.u32();
  p->data = s.u32();
  p->be = s.u8();
  p->op = static_cast<MemOp>(s.u8());
  p->src = s.u16();
  p->src_tile = s.u16();
  p->dst_tile = s.u16();
  p->dst_bank = s.u16();
  p->dst_row = s.u32();
  p->tag = s.u16();
  p->birth = s.u64();
}

/// Head-packet summary for the stall watchdog's liveness report (the ADL
/// overload of the generic template in sim/elastic_buffer.hpp).
inline std::string liveness_summary(const Packet& p) {
  return std::string(mem_op_name(p.op)) + " src=" + std::to_string(p.src) +
         " dst=" + std::to_string(p.dst_tile) + ":" +
         std::to_string(p.dst_bank) + " tag=" + std::to_string(p.tag) +
         " birth=" + std::to_string(p.birth);
}

}  // namespace mempool
