#pragma once
// Component and sink interfaces for the synchronous cycle engine.

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "sim/activity.hpp"
#include "sim/packet.hpp"

namespace mempool {

class StateSink;
class StateSource;

/// A synchronously evaluated hardware block. The engine calls evaluate() on
/// every *active* component once per cycle, in the topological order
/// established by the cluster builder (response fabric -> clients -> request
/// fabric -> banks), then commits the dirty buffers. In --dense mode every
/// component is evaluated every cycle regardless of activity; both modes are
/// cycle-for-cycle identical because an idle component's evaluate() is a
/// no-op by contract.
class Component : public Wakeable {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  virtual void evaluate(uint64_t cycle) = 0;

  /// Activity contract: true when evaluate() would be a no-op this cycle and
  /// every future cycle unless a wake event (buffer push/commit, response
  /// delivery, refill request) arrives. The engine puts an idle component to
  /// sleep right after evaluating it; components whose work is self-generated
  /// (cores still running, generators still generating) return false.
  /// The default is conservatively "never idle" so ad-hoc components (test
  /// probes) are always evaluated, exactly as under the dense engine.
  virtual bool idle() const { return false; }

  /// Static-analysis hook (verify/drc.hpp): declare this component's edges —
  /// which buffers it reads (it is their consumer), which sinks it pushes
  /// into, which components it delivers into or wakes directly — via the
  /// visitor. The conservative default declares nothing, which makes the
  /// component *opaque* to the checker: it is exempt from the orphan rule and
  /// contributes no edges. Plugins therefore gain nothing mandatory; built-in
  /// fabric/memory components all describe themselves so the full paper
  /// configurations lint clean.
  virtual void describe(GraphVisitor& /*v*/) const {}

  /// Checkpoint hooks (sim/snapshot.hpp), the state-capture siblings of
  /// describe(): serialize every bit of simulation-visible state into the
  /// sink / restore it from the source, such that a freshly built component
  /// that load_state()s a save_state() payload continues bit-identically.
  /// load_state() must also re-arm any timed wakes the state implies (the
  /// engine does not serialize its timer wheels). The default is stateless —
  /// correct for pure-combinational components; anything with registers,
  /// queues, RNG streams, or counters overrides both.
  virtual void save_state(StateSink& /*s*/) const {}
  virtual void load_state(StateSource& /*s*/) {}

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Consumer endpoint for packets moved by a switch. Implemented by elastic
/// buffers (fabric hops) and by always-ready terminal sinks (ROB delivery,
/// traffic-generator completion counters).
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual bool can_accept() const = 0;
  virtual void push(const Packet& p) = 0;

  /// Shard plumbing (FabricBuilder::shard_boundary): declare that producers
  /// pushing into this sink evaluate in a different shard than the sink's
  /// consumer (shard @p consumer_shard). Only sinks backed by a *registered*
  /// elastic buffer can sit on a shard boundary; everything else (terminal
  /// delivery sinks, combinational buffers) fails loudly — that structural
  /// property is what makes the sharded engine bit-identical.
  virtual void mark_shard_boundary(uint32_t consumer_shard) {
    (void)consumer_shard;
    MEMPOOL_CHECK_MSG(false,
                      "this sink cannot sit on a shard boundary (only "
                      "registered elastic buffers can)");
  }

  /// Whether mark_shard_boundary() would succeed on this sink, i.e. it is
  /// backed by a *registered* elastic buffer. FabricBuilder::shard_boundary
  /// pre-checks this to report wiring mistakes with full context instead of
  /// the generic CHECK above.
  virtual bool shard_boundary_capable() const { return false; }

  // --- DRC resolution (verify/drc.hpp) ---------------------------------------
  /// The elastic buffer behind this sink, if any: lets the checker resolve a
  /// declared `writes(sink)` edge to the buffer's consumer and mode.
  virtual const Clocked* drc_buffer() const { return nullptr; }
  /// The component this sink delivers into by direct call, if this is a
  /// terminal sink (ClientSink and friends): a same-cycle combinational edge
  /// from the checker's point of view.
  virtual const Wakeable* drc_terminal() const { return nullptr; }
};

/// PacketSink adapter over an ElasticBuffer<Packet>.
template <typename Buffer>
class BufferSink final : public PacketSink {
 public:
  explicit BufferSink(Buffer& buf) : buf_(&buf) {}
  bool can_accept() const override { return buf_->can_accept(); }
  void push(const Packet& p) override { buf_->push(p); }
  void mark_shard_boundary(uint32_t consumer_shard) override {
    buf_->mark_shard_boundary(consumer_shard);
  }
  bool shard_boundary_capable() const override {
    return buf_->registered_mode();
  }
  const Clocked* drc_buffer() const override { return buf_; }

 private:
  Buffer* buf_;
};

}  // namespace mempool
