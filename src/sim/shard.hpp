#pragma once
// Sharded (multi-threaded) execution support for the cycle engine.
//
// The component graph is partitioned into shards along the fabric's *group*
// boundaries (reported by the FabricTopology plugin): MemPool's hierarchy
// guarantees that every link crossing a group passes through a registered
// elastic buffer, so no combinational path — and therefore no intra-cycle
// effect — ever crosses a shard. Each cycle then runs as two parallel phases
// separated by a barrier:
//
//   evaluate  each shard fires its own timers and scans its own segment of
//             the wake bitset, evaluating components exactly like the
//             sequential active engine does within that subsequence.
//             Registered pushes whose target buffer lives in another shard
//             are staged into a per-(src,dst) mailbox instead of the commit
//             queue; pops from a shard-boundary buffer defer the producer-
//             visible occupancy refresh (see ElasticBuffer) to the commit
//             phase.
//   commit    each shard latches its own dirty buffers, then drains the
//             mailboxes addressed to it in ascending source-shard order.
//             Commits of distinct buffers are independent and the only
//             shared words (wake flags, occupancy masks) are combined with
//             idempotent ORs, so any fixed order is bit-identical to the
//             sequential engine's push-order commits.
//
// Determinism is structural, not best-effort: the per-shard evaluation order
// is the sequential engine's order restricted to the shard, cross-shard
// effects become visible only at the commit barrier (exactly when the
// sequential engine's commit would publish them), and a shard-boundary
// buffer's backpressure is judged against a start-of-cycle snapshot — which
// is precisely what the sequential engine's producer observes, because every
// cross-shard edge points forward in the evaluation order (the producer
// phase runs before the consumer network's phase). Sharded results are
// therefore bit-identical to the sequential active engine for every
// registered topology, kernel run, and seed; tests/test_sim_equivalence.cpp
// asserts this across FabricRegistry::names() × sim-thread counts.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "sim/activity.hpp"

namespace mempool {

class Component;

/// Which scheduler steps the engine (and, downstream, a bench's --engine
/// flag): dense = evaluate everything (the equivalence oracle), active = the
/// sequential activity-driven scheduler, sharded = activity-driven with the
/// component graph partitioned into per-group shards stepped in parallel.
enum class EngineMode : uint8_t { kActive, kDense, kSharded };

const char* engine_mode_name(EngineMode m);
/// Inverse of engine_mode_name; returns false on an unknown name.
bool engine_mode_from_name(const std::string& name, EngineMode* out);
/// The valid --engine names as one comma-separated string ("active, dense,
/// sharded") — the single source every unknown-engine error quotes, mirroring
/// FabricRegistry::available() / MemoryRegistry::available().
const char* engine_mode_available();
/// One-line description of @p m for --list-engines.
const char* engine_mode_description(EngineMode m);

/// Per-shard working set of the sharded engine. Everything a shard's thread
/// touches while evaluating lives here (or in the components themselves), so
/// the parallel phases share no mutable state except the explicitly
/// synchronized handoffs described above.
struct ShardLane {
  uint32_t id = 0;

  // --- wake bitset segment ---------------------------------------------------
  /// Word range [word_begin, word_end) of the engine's packed flag array;
  /// shard segments are cache-line aligned so two shards never write the
  /// same line.
  uint32_t word_begin = 0;
  uint32_t word_end = 0;
  /// slots[(w - word_begin) * 64 + b] is the component behind flag bit b of
  /// word w (nullptr for padding bits).
  std::vector<Component*> slots;

  // --- commit staging --------------------------------------------------------
  /// Intra-shard registered buffers staged this cycle (producer == consumer
  /// shard), committed by this shard's own commit phase.
  CommitQueue queue;
  /// outbox[d]: shard-boundary buffers staged by this shard whose consumer
  /// lives in shard d; drained by shard d's commit phase in ascending source
  /// order. This is the per-(src,dst) mailbox — writes happen on the
  /// producer's thread during evaluate, reads on the consumer's thread during
  /// commit, with the cycle barrier in between.
  std::vector<std::vector<Clocked*>> outbox;
  /// Shard-boundary buffers this shard popped from this cycle; their
  /// producer-visible occupancy snapshot is refreshed in the commit phase.
  std::vector<Clocked*> drained;

  // --- timers ----------------------------------------------------------------
  static constexpr uint64_t kTimerWindow = 512;  ///< Must match Engine's.
  std::array<std::vector<Wakeable*>, kTimerWindow> wheel;
  using Timer = std::pair<uint64_t, Wakeable*>;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> far;
  uint64_t armed = 0;

  // --- per-cycle results (read by the leader after the barrier) --------------
  bool worked = false;
  uint64_t evaluations = 0;
  uint64_t commits = 0;
};

namespace detail {
/// The shard the current thread is evaluating, nullptr outside a sharded
/// phase. Inline thread_local so the elastic-buffer hot paths read it without
/// a cross-TU call.
inline thread_local ShardLane* t_shard_lane = nullptr;
}  // namespace detail

/// The thread that is currently evaluating a shard (set by the engine around
/// each parallel phase). ElasticBuffer's hot paths use this to route staged
/// commits into the evaluating shard's queue/mailboxes without knowing which
/// engine — or how many concurrently simulating engines — they belong to.
/// nullptr whenever no sharded evaluation is in flight on this thread.
inline ShardLane* current_shard_lane() { return detail::t_shard_lane; }

/// Scoped setter used by the engine; restores the previous value so nested
/// engines (a sharded simulation inside a sweep worker) cannot leak state.
class ShardLaneScope {
 public:
  explicit ShardLaneScope(ShardLane* lane) : prev_(detail::t_shard_lane) {
    detail::t_shard_lane = lane;
  }
  ~ShardLaneScope() { detail::t_shard_lane = prev_; }
  ShardLaneScope(const ShardLaneScope&) = delete;
  ShardLaneScope& operator=(const ShardLaneScope&) = delete;

 private:
  ShardLane* prev_;
};

/// Executor the sharded engine hands its two per-cycle phases to. run() must
/// invoke fn(s) exactly once for every s in [0, n) — possibly concurrently —
/// and return only when all invocations completed, with their effects
/// visible to the caller (a full barrier). The caller's thread may
/// participate. runner::ShardGang is the production implementation (a
/// reusable cycle barrier on the ThreadPool); passing no executor runs the
/// shards sequentially on the calling thread, which is bit-identical.
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;
  virtual void run(std::size_t n, const std::function<void(std::size_t)>& fn) = 0;
  /// Worker threads this executor can bring to bear (1 = caller only).
  virtual unsigned threads() const { return 1; }
};

}  // namespace mempool
