#pragma once
// Sharded (multi-threaded) execution support for the cycle engine.
//
// The component graph is partitioned into shards along the fabric's *group*
// boundaries (reported by the FabricTopology plugin): MemPool's hierarchy
// guarantees that every link crossing a group passes through a registered
// elastic buffer, so no combinational path — and therefore no intra-cycle
// effect — ever crosses a shard. Each cycle then runs as two parallel phases
// separated by a barrier:
//
//   evaluate  each shard fires its own timers and scans its own segment of
//             the wake bitset, evaluating components exactly like the
//             sequential active engine does within that subsequence.
//             Registered pushes whose target buffer lives in another shard
//             are handed off through a lock-free SPSC ring (one per directed
//             shard pair, acquire/release only) instead of marking the
//             consumer shard's commit-dirty segment; pops from a
//             shard-boundary buffer defer the producer-visible occupancy
//             refresh (see ElasticBuffer) to the commit phase.
//   commit    each shard scans its own segment of the commit-dirty bitset
//             (slot order), then drains the rings addressed to it in
//             ascending source-shard order. Commits of distinct buffers are
//             independent and the only shared words (wake flags, occupancy
//             masks) are combined with idempotent ORs, so any fixed order is
//             bit-identical to the sequential engine's commits.
//
// Determinism is structural, not best-effort: the per-shard evaluation order
// is the sequential engine's order restricted to the shard, cross-shard
// effects become visible only at the commit barrier (exactly when the
// sequential engine's commit would publish them), and a shard-boundary
// buffer's backpressure is judged against a start-of-cycle snapshot — which
// is precisely what the sequential engine's producer observes, because every
// cross-shard edge points forward in the evaluation order (the producer
// phase runs before the consumer network's phase). Sharded results are
// therefore bit-identical to the sequential active engine for every
// registered topology, kernel run, and seed; tests/test_sim_equivalence.cpp
// asserts this across FabricRegistry::names() × sim-thread counts.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/spsc_ring.hpp"
#include "sim/activity.hpp"

namespace mempool {

class Component;

/// Bucketed timer wheel with structure-of-arrays storage: entries live in
/// one contiguous pool chained per slot through indices, instead of one
/// heap-allocated vector per slot. Order within a slot is irrelevant —
/// firing is an idempotent wake() OR — so entries are chained LIFO and
/// recycled through a free list; the steady state allocates nothing.
class TimerWheel {
 public:
  static constexpr uint64_t kWindow = 512;  ///< Slot span (power of two).

  void arm(uint64_t cycle, Wakeable* w) {
    const auto slot = static_cast<uint32_t>(cycle & (kWindow - 1));
    int32_t e;
    if (free_head_ >= 0) {
      e = free_head_;
      free_head_ = pool_[static_cast<uint32_t>(e)].next;
    } else {
      e = static_cast<int32_t>(pool_.size());
      pool_.push_back({});
    }
    pool_[static_cast<uint32_t>(e)] = {w, head_[slot]};
    head_[slot] = e;
  }

  /// Wake every entry parked in @p cycle's slot; returns how many fired.
  uint64_t fire(uint64_t cycle) {
    const auto slot = static_cast<uint32_t>(cycle & (kWindow - 1));
    int32_t e = head_[slot];
    if (e < 0) return 0;
    uint64_t n = 0;
    head_[slot] = -1;
    while (e >= 0) {
      Entry& entry = pool_[static_cast<uint32_t>(e)];
      entry.w->wake();
      const int32_t next = entry.next;
      entry.next = free_head_;
      free_head_ = e;
      e = next;
      ++n;
    }
    return n;
  }

  bool slot_empty(uint64_t cycle) const {
    return head_[cycle & (kWindow - 1)] < 0;
  }

 private:
  struct Entry {
    Wakeable* w = nullptr;
    int32_t next = -1;
  };
  std::vector<Entry> pool_;
  int32_t free_head_ = -1;
  std::array<int32_t, kWindow> head_ = [] {
    std::array<int32_t, kWindow> h{};
    h.fill(-1);
    return h;
  }();
};

/// Which scheduler steps the engine (and, downstream, a bench's --engine
/// flag): dense = evaluate everything (the equivalence oracle), active = the
/// sequential activity-driven scheduler, sharded = activity-driven with the
/// component graph partitioned into per-group shards stepped in parallel.
enum class EngineMode : uint8_t { kActive, kDense, kSharded };

const char* engine_mode_name(EngineMode m);
/// Inverse of engine_mode_name; returns false on an unknown name.
bool engine_mode_from_name(const std::string& name, EngineMode* out);
/// The valid --engine names as one comma-separated string ("active, dense,
/// sharded") — the single source every unknown-engine error quotes, mirroring
/// FabricRegistry::available() / MemoryRegistry::available().
const char* engine_mode_available();
/// One-line description of @p m for --list-engines.
const char* engine_mode_description(EngineMode m);

/// Per-shard working set of the sharded engine. Everything a shard's thread
/// touches while evaluating lives here (or in the components themselves), so
/// the parallel phases share no mutable state except the explicitly
/// synchronized handoffs described above.
struct ShardLane {
  uint32_t id = 0;

  // --- wake bitset segment ---------------------------------------------------
  /// Word range [word_begin, word_end) of the engine's packed flag array;
  /// shard segments are cache-line aligned so two shards never write the
  /// same line.
  uint32_t word_begin = 0;
  uint32_t word_end = 0;
  /// slots[(w - word_begin) * 64 + b] is the component behind flag bit b of
  /// word w (nullptr for padding bits).
  std::vector<Component*> slots;

  // --- commit staging --------------------------------------------------------
  /// Word range [dirty_begin, dirty_end) of the engine's packed commit-dirty
  /// bitset assigned to this shard (cache-line aligned like the wake
  /// segments); cslots maps its bits back to clocked elements in
  /// registration order.
  uint32_t dirty_begin = 0;
  uint32_t dirty_end = 0;
  std::vector<Clocked*> cslots;
  /// Elements marked dirty since the last commit scan (bound as the dirty
  /// counter of every clocked element registered to this shard). Written by
  /// this shard's evaluate thread (or the leader between cycles), read by
  /// this shard's commit phase — never concurrently.
  uint64_t dirty_pending = 0;

  /// outbox_row[d]: the lock-free SPSC ring carrying shard-boundary buffers
  /// staged by this shard toward consumer shard d (this shard's row of the
  /// engine-owned S×S ring matrix). The producer side runs on this shard's
  /// evaluate thread, the consumer side on shard d's commit thread; rings
  /// are sized at elaboration from the boundary registry, so a full ring is
  /// a model bug, not backpressure.
  SpscRing<Clocked*>* outbox_row = nullptr;

  void push_cross(uint32_t consumer_shard, Clocked* c) {
    const bool ok = outbox_row[consumer_shard].try_push(c);
    MEMPOOL_CHECK_MSG(ok, "cross-shard ring " << id << "->" << consumer_shard
                                              << " overflowed its "
                                                 "elaboration-time capacity");
  }

  /// Shard-boundary buffers this shard popped from this cycle; their
  /// producer-visible occupancy snapshot is refreshed in the commit phase.
  std::vector<Clocked*> drained;

  // --- timers ----------------------------------------------------------------
  static constexpr uint64_t kTimerWindow = TimerWheel::kWindow;
  TimerWheel wheel;
  using Timer = std::pair<uint64_t, Wakeable*>;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> far;
  uint64_t armed = 0;

  // --- per-cycle results (read by the leader after the barrier) --------------
  bool worked = false;
  uint64_t evaluations = 0;
  uint64_t commits = 0;

  // --- per-cycle profiling busy times (Engine::set_profile only) -------------
  /// This cycle's wall-clock ns spent in the lane's evaluate phase, commit
  /// scan, and ring-drain/snapshot-sync work. Written by the lane's thread,
  /// read by the leader after the barrier; untouched when profiling is off.
  uint64_t prof_eval_ns = 0;
  uint64_t prof_commit_ns = 0;
  uint64_t prof_drain_ns = 0;
};

namespace detail {
/// The shard the current thread is evaluating, nullptr outside a sharded
/// phase. Inline thread_local so the elastic-buffer hot paths read it without
/// a cross-TU call.
inline thread_local ShardLane* t_shard_lane = nullptr;
}  // namespace detail

/// The thread that is currently evaluating a shard (set by the engine around
/// each parallel phase). ElasticBuffer's hot paths use this to route staged
/// commits into the evaluating shard's queue/mailboxes without knowing which
/// engine — or how many concurrently simulating engines — they belong to.
/// nullptr whenever no sharded evaluation is in flight on this thread.
inline ShardLane* current_shard_lane() { return detail::t_shard_lane; }

/// Scoped setter used by the engine; restores the previous value so nested
/// engines (a sharded simulation inside a sweep worker) cannot leak state.
class ShardLaneScope {
 public:
  explicit ShardLaneScope(ShardLane* lane) : prev_(detail::t_shard_lane) {
    detail::t_shard_lane = lane;
  }
  ~ShardLaneScope() { detail::t_shard_lane = prev_; }
  ShardLaneScope(const ShardLaneScope&) = delete;
  ShardLaneScope& operator=(const ShardLaneScope&) = delete;

 private:
  ShardLane* prev_;
};

/// Executor the sharded engine hands its two per-cycle phases to. run() must
/// invoke fn(s) exactly once for every s in [0, n) — possibly concurrently —
/// and return only when all invocations completed, with their effects
/// visible to the caller (a full barrier). The caller's thread may
/// participate. runner::ShardGang is the production implementation (a
/// reusable cycle barrier on the ThreadPool); passing no executor runs the
/// shards sequentially on the calling thread, which is bit-identical.
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;
  virtual void run(std::size_t n, const std::function<void(std::size_t)>& fn) = 0;
  /// Worker threads this executor can bring to bear (1 = caller only).
  virtual unsigned threads() const { return 1; }
};

}  // namespace mempool
