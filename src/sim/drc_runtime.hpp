#pragma once
// Runtime half of the design-rule checker (verify/drc.hpp): a deterministic,
// model-level shard-race detector, enabled by building with -DMEMPOOL_DRC=ON.
//
// The static DRC lints the *declared* graph — it cannot see an undeclared
// edge (an opaque component reaching into another shard's buffer, or a
// describe() that lies). This layer closes that gap at the model level: the
// engine tags every evaluate() call with the evaluated component's shard id
// (a thread-local, set even under the sequential schedulers), and every
// elastic-buffer access during an evaluate phase checks the evaluating shard
// against the buffer's *home* shard — the shard of its consumer, resolved by
// the static DRC walk and bound via Clocked::drc_bind_shard. The contract:
//
//   * pop()/front() only ever happen in the consumer's shard,
//   * a combinational push must come from the consumer's shard (an
//     intra-cycle cross-shard effect would break the sharded engine's
//     bit-identity), and
//   * a registered push from another shard is legal only through a marked
//     shard boundary whose consumer shard matches the buffer's home.
//
// Because the check keys on *model* shard tags, not on host threads, it
// catches an unmarked cross-shard edge deterministically on a single host
// CPU — where TSan is structurally blind (one thread means no happens-before
// violation to observe) and a lucky interleaving hides the race even with
// many. Violations are recorded in a global log (they do not abort the
// simulation, so one run reports every mis-wired edge); fixtures assert on
// drc_race_log(). Without MEMPOOL_DRC every hook compiles away.

#include <cstdint>
#include <string>
#include <vector>

namespace mempool::drc {

namespace detail {
/// Shard tag of the component the engine is currently evaluating on this
/// thread; -1 outside an evaluate call (commit phase, testbench pokes, and
/// backdoor access are exempt). Inline thread-local so the elastic-buffer
/// hot paths read it without a cross-TU call.
inline thread_local int32_t t_eval_shard = -1;
}  // namespace detail

/// The shard the current thread's evaluate() call belongs to, or -1.
inline int32_t current_eval_shard() { return detail::t_eval_shard; }

/// Scoped tag used by the engine around each component evaluation.
class EvalShardScope {
 public:
  explicit EvalShardScope(int32_t shard) : prev_(detail::t_eval_shard) {
    detail::t_eval_shard = shard;
  }
  ~EvalShardScope() { detail::t_eval_shard = prev_; }
  EvalShardScope(const EvalShardScope&) = delete;
  EvalShardScope& operator=(const EvalShardScope&) = delete;

 private:
  int32_t prev_;
};

/// Record one shard-race violation (thread-safe; the sharded engine may
/// detect races from several shard threads at once).
void report_race(const std::string& what);

/// Number of violations recorded since the last clear_races().
std::size_t race_count();

/// Snapshot the recorded violations.
std::vector<std::string> races();

/// Reset the log (fixtures isolate themselves with this).
void clear_races();

}  // namespace mempool::drc
