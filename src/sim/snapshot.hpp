#pragma once
// Engine checkpoint/restore: the `mempool.ckpt.v1` snapshot artifact.
//
// A snapshot captures the complete architectural + microarchitectural state
// of a simulation at a *quiesced* cycle boundary (between steps: all staged
// buffer writes committed, no pending commit queue entries). Components
// serialize themselves through save_state(StateSink&)/load_state(StateSource&)
// hooks, mirroring the describe() pattern used by the DRC: the engine walks
// its registration order (which is deterministic for a given configuration)
// and gives every component one named section.
//
// Restore contract: rebuild the *same* cluster from the *same* configuration,
// call Engine::load_state(snapshot), and continue stepping. The continued run
// is bit-identical — same per-cycle event order, same final counters, same
// memory images — to the uninterrupted run, under the active, dense, and
// sharded engines. That is what makes mid-run checkpoints safe to use for
// crash recovery in the sweep service: a resumed point produces the exact
// result bytes the original computation would have.
//
// Artifact layout (all integers little-endian):
//
//   magic            16 B   "mempool.ckpt.v1\n"
//   cycle            u64    quiesced cycle the state was captured at
//   key_len, key     u32+   SimRequest content hash (may be empty for ad-hoc
//                           engine snapshots; checked on restore when both
//                           sides carry one)
//   section_count    u32
//   per section:
//     name_len, name u32+
//     payload_len    u64
//     payload        bytes
//   total_length     u64    byte length of everything before this field
//   crc32            u32    CRC-32 (IEEE) of everything before this field
//
// The trailer makes torn writes detectable: a truncated, zero-byte, or
// bit-flipped file fails deserialize() with a CheckError instead of feeding
// garbage state into a simulation.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace mempool {

/// Byte-oriented serialization sink. Components append fixed-width
/// little-endian primitives; the resulting string becomes their snapshot
/// section payload.
class StateSink {
 public:
  void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(uint16_t v) { le(v, 2); }
  void u32(uint32_t v) { le(v, 4); }
  void u64(uint64_t v) { le(v, 8); }
  void b(bool v) { u8(v ? 1 : 0); }

  /// Doubles round-trip by bit pattern — restored accumulators (latency
  /// sums) continue with the exact value, preserving bit-identical stats.
  void f64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  void str(const std::string& s) {
    u32(static_cast<uint32_t>(s.size()));
    buf_.append(s);
  }

  /// Appends raw bytes with no length prefix (artifact framing writes the
  /// length itself).
  void raw(const std::string& s) { buf_.append(s); }

  const std::string& data() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  void le(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string buf_;
};

/// Bounds-checked reader over a snapshot section. Every read validates the
/// remaining length; load_state() implementations never see partial values
/// from a corrupt or mismatched payload — they get a CheckError.
class StateSource {
 public:
  explicit StateSource(std::string_view data)
      : p_(reinterpret_cast<const unsigned char*>(data.data())),
        end_(reinterpret_cast<const unsigned char*>(data.data()) +
             data.size()) {}

  uint8_t u8() { return static_cast<uint8_t>(le(1)); }
  uint16_t u16() { return static_cast<uint16_t>(le(2)); }
  uint32_t u32() { return static_cast<uint32_t>(le(4)); }
  uint64_t u64() { return le(8); }
  bool b() { return u8() != 0; }

  double f64() {
    const uint64_t bits = u64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    const uint32_t n = u32();
    return bytes(n);
  }

  /// Reads @p n raw bytes (caller knows the length from framing).
  std::string bytes(std::size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

  /// Restores must consume their payload exactly: trailing bytes mean the
  /// snapshot was produced by a different component layout.
  void finish() const {
    MEMPOOL_CHECK_MSG(p_ == end_,
                      "snapshot section has " << remaining()
                                              << " unconsumed bytes (state "
                                                 "layout mismatch)");
  }

 private:
  void need(std::size_t n) const {
    MEMPOOL_CHECK_MSG(remaining() >= n,
                      "snapshot section truncated: need "
                          << n << " bytes, " << remaining() << " left");
  }

  uint64_t le(int bytes) {
    need(static_cast<std::size_t>(bytes));
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(p_[i]) << (8 * i);
    }
    p_ += bytes;
    return v;
  }

  const unsigned char* p_;
  const unsigned char* end_;
};

/// CRC-32 (IEEE 802.3, reflected). Guards the artifact trailer.
uint32_t snapshot_crc32(const void* data, std::size_t size);

/// The versioned checkpoint artifact: a cycle, an optional request key, and
/// named per-component sections. serialize()/deserialize() implement the
/// `mempool.ckpt.v1` byte layout documented at the top of this header.
class Snapshot {
 public:
  static constexpr std::string_view kMagic = "mempool.ckpt.v1\n";

  uint64_t cycle = 0;
  std::string key;

  void add(std::string name, std::string payload) {
    sections_.emplace_back(std::move(name), std::move(payload));
  }

  /// nullptr when no section of that name exists.
  const std::string* find(const std::string& name) const {
    for (const auto& [n, payload] : sections_) {
      if (n == name) return &payload;
    }
    return nullptr;
  }

  const std::string& payload(const std::string& name) const {
    const std::string* p = find(name);
    MEMPOOL_CHECK_MSG(p != nullptr,
                      "snapshot is missing section '"
                          << name << "' (built for a different cluster?)");
    return *p;
  }

  std::size_t section_count() const { return sections_.size(); }

  /// The (name, payload) sections in registration order, for callers that
  /// diff checkpoints section-by-section (e.g. tests that must ignore the
  /// engine's scheduler-effort counters, which legitimately differ between
  /// a restored run and an uninterrupted one).
  const std::vector<std::pair<std::string, std::string>>& sections() const {
    return sections_;
  }

  std::string serialize() const;

  /// Parses and fully validates an artifact: magic, CRC, declared length,
  /// and per-section bounds. Throws CheckError on any corruption — a torn
  /// or bit-flipped checkpoint never yields a Snapshot object.
  static Snapshot deserialize(std::string_view bytes);

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

}  // namespace mempool
