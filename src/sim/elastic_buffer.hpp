#pragma once
// Elastic-buffer flow control, the basic storage element of MemPool's
// interconnect ("An optional elastic buffer can be inserted at each output of
// the switch ... to break any combinational paths crossing the switch",
// Section III-A, after Michelogiannakis et al.).
//
// Two modes:
//  * kCombinational — a push is visible to the consumer within the same
//    cycle (the simulator evaluates components in topological order, so a
//    packet can traverse an arbitrarily long combinational switch chain in
//    one cycle, exactly like a ripple of valid signals in RTL).
//  * kRegistered — a push lands in a staging slot and becomes visible only
//    after the clock edge (Engine::step commits it). This models the
//    register boundaries drawn dashed in Figures 2 and 3 of the paper; each
//    registered buffer on a path adds exactly one cycle.
//
// Capacity 2 is the default: like a hardware skid buffer it sustains one
// packet per cycle throughput even though the 'ready' signal is derived from
// the pre-drain occupancy.
//
// Storage: bounded buffers up to kInlineCapacity keep their items in an
// inline ring (the whole buffer is a few contiguous cache lines — the fabric
// hot path never chases deque nodes); unbounded buffers (capacity 0, the
// ideal TopX bank queues) and deeper ones use a contiguous heap- or
// arena-backed ring. Bounded deep rings are sized once at construction;
// unbounded rings grow by amortized doubling (never per push), so the hot
// path stays allocation-free — storage_reallocs() counts the growth events
// and is pinned by a test.
//
// Activity plumbing: the component that owns this buffer as an input sets
// itself as the consumer; pushes (combinational) and commits (registered)
// wake it so the activity-driven engine evaluates it exactly when a packet
// is visible. Registered buffers mark their engine-owned commit-dirty bit
// when staged (Clocked::mark_commit_dirty), so the commit phase word-scans
// a packed bitset and only touches dirty buffers. An optional occupancy bit
// mirrors "holds a visible item" into a switch-owned mask for sparse input
// scans.

#include <array>
#include <cstdint>
#include <new>

#include "common/arena.hpp"
#include "common/check.hpp"
#include "sim/activity.hpp"
#include "sim/shard.hpp"
#include "sim/snapshot.hpp"

#if defined(MEMPOOL_DRC)
#include <sstream>

#include "sim/drc_runtime.hpp"
#endif

namespace mempool {

enum class BufferMode : uint8_t { kCombinational, kRegistered };

/// Head-item stringification for the stall watchdog's liveness report.
/// Payload types opt in by providing an overload findable by ADL (see the
/// Packet overload in sim/packet.hpp); everything else reports no detail.
template <typename T>
inline std::string liveness_summary(const T& /*item*/) {
  return {};
}

template <typename T>
class ElasticBuffer final : public Clocked {
 public:
  /// Capacities up to this use the inline ring; 0 (unbounded) and deeper
  /// buffers use a heap-backed deque.
  static constexpr std::size_t kInlineCapacity = 4;

  /// Unbounded rings start here and double on demand.
  static constexpr uint32_t kOverflowInitial = 8;

  /// @param mode     registered (1-cycle) or combinational (0-cycle) input.
  /// @param capacity max occupancy including the staged item; 0 = unbounded
  ///                 (used only by the ideal TopX fabric's bank queues).
  /// @param arena    when given, the overflow ring's *initial* storage comes
  ///                 from this arena (growth of unbounded rings falls back to
  ///                 the heap; the abandoned arena block is reclaimed when
  ///                 the arena dies). Elaboration-time only.
  explicit ElasticBuffer(BufferMode mode = BufferMode::kCombinational,
                         std::size_t capacity = 2, Arena* arena = nullptr)
      : mode_(mode), capacity_(capacity) {
    if (capacity_ == 0 || capacity_ > kInlineCapacity) {
      // Bounded deep buffers get their exact power-of-two once and never
      // grow; unbounded ones start small and double.
      uint32_t cap = kOverflowInitial;
      if (capacity_ != 0) {
        cap = 2;
        while (cap < capacity_) cap <<= 1;
      }
      overflow_ = alloc_ring(cap, arena, &overflow_heap_);
      overflow_cap_ = cap;
    }
  }

  ~ElasticBuffer() override { release_ring(overflow_, overflow_cap_, overflow_heap_); }

  // Non-copyable and non-movable: the engine's commit list, the switches'
  // BufferSink adapters, and the wake plumbing all hold raw pointers to a
  // registered buffer. A post-registration move (e.g. a vector reallocation)
  // would leave those pointers committing / waking a moved-from shell, so
  // moving is a construction-order bug by definition — owners use deque or
  // reserve-before-emplace containers.
  ElasticBuffer(const ElasticBuffer&) = delete;
  ElasticBuffer& operator=(const ElasticBuffer&) = delete;
  ElasticBuffer(ElasticBuffer&&) = delete;
  ElasticBuffer& operator=(ElasticBuffer&&) = delete;

  /// Activity hookup: @p consumer is woken whenever an item becomes visible
  /// (push for combinational buffers, commit for registered ones). @p name
  /// identifies the consumer in diagnostics (pass name().c_str(); components
  /// are non-movable, so the pointer stays valid). Rebinding to a *different*
  /// consumer fails loudly: a second set_consumer is always a wiring bug —
  /// the first consumer would silently stop being woken (rebinding the same
  /// consumer is idempotent and allowed).
  void set_consumer(Wakeable* consumer, const char* name = nullptr) {
    MEMPOOL_CHECK_MSG(
        consumer_ == nullptr || consumer_ == consumer,
        "elastic buffer already has consumer '"
            << consumer_name() << "'; rebinding it to '"
            << (name != nullptr ? name : "?")
            << "' would silently orphan the first consumer's wake plumbing");
    consumer_ = consumer;
    if (name != nullptr) consumer_name_ = name;
  }

  /// Diagnostic name of the bound consumer ("?" when never named).
  const char* consumer_name() const {
    return consumer_name_ != nullptr ? consumer_name_ : "?";
  }

  /// Occupancy hookup: mirror "the FIFO holds a visible item" into bit
  /// @p bit of @p word. Switches keep one occupancy word over their input
  /// buffers so a sparse evaluate iterates set bits instead of touching
  /// every (cache-cold) buffer. @p word must outlive the buffer's last
  /// push/pop/commit.
  void bind_occupancy_bit(uint64_t* word, unsigned bit) {
    occ_word_ = word;
    occ_mask_ = 1ull << bit;
    if (count_ == 0) {
      *word &= ~occ_mask_;
    } else {
      *word |= occ_mask_;
    }
  }

  /// Shard hookup: this buffer sits on a shard boundary — its producer
  /// evaluates in another shard than @p consumer_shard, the shard of its
  /// consumer. Only registered buffers qualify (a combinational push would be
  /// an intra-cycle cross-shard effect, which the sharded engine's
  /// determinism argument forbids — this check *is* the structural
  /// assertion). From now on the producer's can_accept() judges occupancy
  /// against a snapshot that is refreshed only at commit edges: under the
  /// sequential engines the snapshot tracks count_ exactly (every mutation
  /// refreshes it), under the sharded engine pops defer the refresh to the
  /// commit barrier — reproducing what the sequential producer observes,
  /// since it always evaluates before the consuming network's phase.
  void mark_shard_boundary(uint32_t consumer_shard) {
    MEMPOOL_CHECK_MSG(mode_ == BufferMode::kRegistered,
                      "combinational paths must not cross a shard boundary "
                      "(buffer consumed by '"
                          << consumer_name() << "' cannot become a boundary "
                          << "into shard " << consumer_shard
                          << "; insert a registered stage)");
    boundary_ = true;
    consumer_shard_ = consumer_shard;
    snap_count_ = count_;
  }
  bool shard_boundary() const { return boundary_; }

  /// 'ready' as the upstream switch sees it this cycle.
  bool can_accept() const {
    if (capacity_ == 0) return true;
    const uint32_t visible = boundary_ ? snap_count_ : count_;
    return visible + (staged_valid_ ? 1u : 0u) < capacity_;
  }

  /// Push one item; caller must have checked can_accept().
  void push(const T& v) {
    drc_check_push();
    MEMPOOL_CHECK(can_accept());
    if (mode_ == BufferMode::kRegistered) {
      // At most one push per cycle per buffer: a buffer is fed by exactly one
      // switch output, which grants at most one packet per cycle.
      MEMPOOL_CHECK(!staged_valid_);
      staged_ = v;
      staged_valid_ = true;
      ShardLane* lane = current_shard_lane();
      if (lane != nullptr && boundary_ && consumer_shard_ != lane->id) {
        // Sharded evaluate phase, push crossing the boundary: hand the buffer
        // to the consumer shard through the producer's SPSC ring (the
        // consumer's commit phase drains it). Marking the dirty bit instead
        // would write the consumer shard's bitset segment mid-evaluate — a
        // data race with that shard's own staging.
        lane->push_cross(consumer_shard_, this);
      } else {
        // Same-shard (or sequential) staging: this buffer's dirty bit lives
        // in the evaluating shard's (or the global) segment.
        mark_commit_dirty();
      }
    } else {
      enqueue(v);
      *occ_word_ |= occ_mask_;
      if (consumer_ != nullptr) consumer_->wake();
    }
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_ + (staged_valid_ ? 1u : 0u); }

  const T& front() const {
    drc_check_read("front");
    MEMPOOL_CHECK(count_ > 0);
    return overflow_ != nullptr ? overflow_[head_ & (overflow_cap_ - 1)]
                                : ring_[head_];
  }

  T pop() {
    drc_check_read("pop");
    MEMPOOL_CHECK(count_ > 0);
    ++drains_;
    --count_;
    if (count_ == 0) *occ_word_ &= ~occ_mask_;
    if (boundary_) {
      if (ShardLane* lane = current_shard_lane()) {
        // Consumer shard draining across the boundary: the producer keeps
        // seeing the start-of-cycle occupancy until the commit barrier.
        if (!drain_marked_) {
          drain_marked_ = true;
          lane->drained.push_back(this);
        }
      } else {
        snap_count_ = count_;  // sequential engines: snapshot tracks exactly
      }
    }
    if (overflow_ != nullptr) {
      T v = overflow_[head_ & (overflow_cap_ - 1)];
      ++head_;  // masked on access; cap is pow2, so uint32 wrap is harmless
      return v;
    }
    T v = ring_[head_];
    head_ = (head_ + 1) % kInlineCapacity;
    return v;
  }

  /// Clock edge: staged item becomes visible (and the consumer must look).
  void commit() override {
    if (staged_valid_) {
      enqueue(staged_);
      staged_valid_ = false;
      *occ_word_ |= occ_mask_;
      if (consumer_ != nullptr) consumer_->wake();
    }
    if (boundary_) shard_sync();
  }

  /// Commit-barrier refresh of the producer-visible occupancy snapshot.
  void shard_sync() override {
    snap_count_ = count_;
    drain_marked_ = false;
  }

  BufferMode mode() const { return mode_; }
  bool registered_mode() const { return mode_ == BufferMode::kRegistered; }
  std::size_t capacity() const { return capacity_; }

  /// Checkpoint: serialize the visible FIFO contents and the drain counter.
  /// Item payloads opt in via ADL overloads `save_item(StateSink&, const T&)`
  /// / `load_item(StateSource&, T*)`, mirroring liveness_summary (the Packet
  /// overloads live in sim/packet.hpp). Only callable at a quiesced cycle —
  /// a staged item means the owner saved mid-cycle, which is a bug.
  void save_state(StateSink& s) const {
    MEMPOOL_CHECK_MSG(!staged_valid_,
                      "buffer checkpoint requires a quiesced cycle (item "
                      "still staged; consumer '"
                          << consumer_name() << "')");
    s.u32(count_);
    s.u64(drains_);
    if (overflow_ != nullptr) {
      for (uint32_t i = 0; i < count_; ++i) {
        save_item(s, overflow_[(head_ + i) & (overflow_cap_ - 1)]);
      }
    } else {
      for (uint32_t i = 0; i < count_; ++i) {
        save_item(s, ring_[(head_ + i) % kInlineCapacity]);
      }
    }
  }

  /// Restore into a freshly built (empty) buffer. Re-derives the occupancy
  /// bit and the producer-visible snapshot; the consumer is not woken here —
  /// every component starts awake after a rebuild, so visibility is already
  /// guaranteed for the first post-restore cycle.
  void load_state(StateSource& s) {
    MEMPOOL_CHECK_MSG(count_ == 0 && !staged_valid_,
                      "buffer restore requires a freshly built buffer");
    const uint32_t n = s.u32();
    drains_ = s.u64();
    for (uint32_t i = 0; i < n; ++i) {
      T v{};
      load_item(s, &v);
      enqueue(v);
    }
    if (count_ > 0) {
      *occ_word_ |= occ_mask_;
    } else {
      *occ_word_ &= ~occ_mask_;
    }
    snap_count_ = count_;
  }

  /// DRC self-description (the one meaningful Clocked::describe).
  void describe(GraphVisitor& v) const override {
    BufferDecl decl;
    decl.registered = mode_ == BufferMode::kRegistered;
    decl.shard_boundary = boundary_;
    decl.consumer_shard = consumer_shard_;
    decl.consumer = consumer_;
    decl.capacity = capacity_;
    v.buffer_info(decl);
  }

  /// Progress snapshot for the engine's stall watchdog. Read single-threaded
  /// between cycles (the probe runs on the leader before any shard phase),
  /// so plain member reads are safe; the head summary only looks at visible
  /// items (staged ones have no committed position yet).
  LivenessState liveness() const override {
    LivenessState s;
    s.is_buffer = true;
    s.occupancy = size();
    s.capacity = capacity_;
    s.drains = drains_;
    s.consumer = consumer_name();
    if (count_ > 0) s.head = liveness_summary(front_nocheck());
    return s;
  }

  /// Growth events of the overflow ring (0 for inline/bounded-deep buffers);
  /// pinned by a test so unbounded pushes stay off the allocator.
  uint64_t storage_reallocs() const { return ring_reallocs_; }

  /// MEMPOOL_DRC: bind the home shard (the consumer's shard as resolved by
  /// the static DRC walk) that every eval-phase access is checked against.
  void drc_bind_shard(int32_t home_shard) override {
#if defined(MEMPOOL_DRC)
    drc_home_ = home_shard;
#else
    (void)home_shard;
#endif
  }

 private:
#if defined(MEMPOOL_DRC)
  // Runtime shard-race checks (see sim/drc_runtime.hpp for the contract).
  // Accesses outside an evaluate phase (current_eval_shard() < 0) and buffers
  // the checker never armed (drc_home_ < 0) are exempt.
  void drc_check_read(const char* op) const {
    const int32_t cur = drc::current_eval_shard();
    if (cur < 0 || drc_home_ < 0 || cur == drc_home_) return;
    std::ostringstream os;
    os << "shard-race: " << op << " on buffer (consumer '" << consumer_name()
       << "', home shard " << drc_home_ << ") from eval shard " << cur;
    drc::report_race(os.str());
  }
  void drc_check_push() const {
    const int32_t cur = drc::current_eval_shard();
    if (cur < 0 || drc_home_ < 0 || cur == drc_home_) return;
    // A cross-shard push is legal only through a registered buffer marked as
    // a shard boundary whose declared consumer shard matches the home shard.
    if (mode_ == BufferMode::kRegistered && boundary_ &&
        static_cast<int32_t>(consumer_shard_) == drc_home_) {
      return;
    }
    std::ostringstream os;
    os << "shard-race: push into "
       << (mode_ == BufferMode::kRegistered ? "registered" : "combinational")
       << (boundary_ ? " boundary" : " non-boundary") << " buffer (consumer '"
       << consumer_name() << "', home shard " << drc_home_
       << ") from eval shard " << cur;
    drc::report_race(os.str());
  }
#else
  void drc_check_read(const char* /*op*/) const {}
  void drc_check_push() const {}
#endif

  const T& front_nocheck() const {
    return overflow_ != nullptr ? overflow_[head_ & (overflow_cap_ - 1)]
                                : ring_[head_];
  }

  static T* alloc_ring(uint32_t cap, Arena* arena, bool* heap_owned) {
    void* storage =
        arena != nullptr
            ? arena->allocate(sizeof(T) * cap, alignof(T))
            : ::operator new(sizeof(T) * cap, std::align_val_t(alignof(T)));
    *heap_owned = arena == nullptr;
    T* ring = static_cast<T*>(storage);
    for (uint32_t i = 0; i < cap; ++i) new (ring + i) T{};
    return ring;
  }

  static void release_ring(T* ring, uint32_t cap, bool heap_owned) {
    if (ring == nullptr) return;
    for (uint32_t i = cap; i > 0; --i) ring[i - 1].~T();
    if (heap_owned) ::operator delete(ring, std::align_val_t(alignof(T)));
    // Arena-backed storage is reclaimed when the arena dies.
  }

  /// Double the overflow ring (unbounded buffers only). Growth always goes
  /// to the heap — it can happen mid-simulation, where the single-threaded
  /// elaboration arena must not be touched.
  void grow_overflow() {
    const uint32_t new_cap = overflow_cap_ * 2;
    bool new_heap = false;
    T* fresh = alloc_ring(new_cap, nullptr, &new_heap);
    for (uint32_t i = 0; i < count_; ++i) {
      fresh[i] = overflow_[(head_ + i) & (overflow_cap_ - 1)];
    }
    release_ring(overflow_, overflow_cap_, overflow_heap_);
    overflow_ = fresh;
    overflow_cap_ = new_cap;
    overflow_heap_ = new_heap;
    head_ = 0;
    ++ring_reallocs_;
  }

  void enqueue(const T& v) {
    if (overflow_ != nullptr) {
      if (count_ == overflow_cap_) {
        // Only unbounded buffers can outgrow their ring: bounded deep ones
        // are sized to capacity_ at construction and gated by can_accept().
        MEMPOOL_CHECK(capacity_ == 0);
        grow_overflow();
      }
      overflow_[(head_ + count_) & (overflow_cap_ - 1)] = v;
    } else {
      // can_accept() (asserted at push, counted at stage time for commits)
      // bounds count_ by capacity_ <= kInlineCapacity; re-check so a contract
      // violation fails loudly instead of wrapping the ring.
      MEMPOOL_CHECK(count_ < kInlineCapacity);
      ring_[(head_ + count_) % kInlineCapacity] = v;
    }
    ++count_;
  }

  BufferMode mode_;
  std::size_t capacity_;
  std::array<T, kInlineCapacity> ring_{};
  uint32_t head_ = 0;
  uint32_t count_ = 0;  ///< Visible items (FIFO only, staged excluded).
  uint64_t drains_ = 0;  ///< Lifetime pop() count (watchdog progress metric).
  T* overflow_ = nullptr;       ///< Contiguous pow2 ring when deep/unbounded.
  uint32_t overflow_cap_ = 0;   ///< Power of two; 0 in inline mode.
  bool overflow_heap_ = false;  ///< Heap-backed (vs arena-backed) storage.
  uint64_t ring_reallocs_ = 0;  ///< Growth events (see storage_reallocs()).
  T staged_{};
  bool staged_valid_ = false;
  bool boundary_ = false;      ///< Shard-boundary register (snapshot mode).
  bool drain_marked_ = false;  ///< Already on the consumer lane's drain list.
  uint32_t consumer_shard_ = 0;
  uint32_t snap_count_ = 0;  ///< Producer-visible count (== count_ unless a
                             ///< sharded cycle is between pop and barrier).
  Wakeable* consumer_ = nullptr;
  const char* consumer_name_ = nullptr;
#if defined(MEMPOOL_DRC)
  int32_t drc_home_ = -1;  ///< Armed home shard; -1 = unchecked.
#endif
  uint64_t own_occ_ = 0;          ///< Fallback occupancy word (unbound).
  uint64_t* occ_word_ = &own_occ_;
  uint64_t occ_mask_ = 1;
};

}  // namespace mempool
