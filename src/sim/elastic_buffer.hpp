#pragma once
// Elastic-buffer flow control, the basic storage element of MemPool's
// interconnect ("An optional elastic buffer can be inserted at each output of
// the switch ... to break any combinational paths crossing the switch",
// Section III-A, after Michelogiannakis et al.).
//
// Two modes:
//  * kCombinational — a push is visible to the consumer within the same
//    cycle (the simulator evaluates components in topological order, so a
//    packet can traverse an arbitrarily long combinational switch chain in
//    one cycle, exactly like a ripple of valid signals in RTL).
//  * kRegistered — a push lands in a staging slot and becomes visible only
//    after the clock edge (Engine::step commits it). This models the
//    register boundaries drawn dashed in Figures 2 and 3 of the paper; each
//    registered buffer on a path adds exactly one cycle.
//
// Capacity 2 is the default: like a hardware skid buffer it sustains one
// packet per cycle throughput even though the 'ready' signal is derived from
// the pre-drain occupancy.

#include <cstdint>
#include <deque>

#include "common/check.hpp"

namespace mempool {

enum class BufferMode : uint8_t { kCombinational, kRegistered };

/// Interface for anything that can be clocked by the engine's commit phase.
class Clocked {
 public:
  virtual ~Clocked() = default;
  virtual void commit() = 0;
};

template <typename T>
class ElasticBuffer final : public Clocked {
 public:
  /// @param mode     registered (1-cycle) or combinational (0-cycle) input.
  /// @param capacity max occupancy including the staged item; 0 = unbounded
  ///                 (used only by the ideal TopX fabric's bank queues).
  explicit ElasticBuffer(BufferMode mode = BufferMode::kCombinational,
                         std::size_t capacity = 2)
      : mode_(mode), capacity_(capacity) {}

  ElasticBuffer(const ElasticBuffer&) = delete;
  ElasticBuffer& operator=(const ElasticBuffer&) = delete;
  ElasticBuffer(ElasticBuffer&&) = default;
  ElasticBuffer& operator=(ElasticBuffer&&) = default;

  /// 'ready' as the upstream switch sees it this cycle.
  bool can_accept() const {
    if (capacity_ == 0) return true;
    return fifo_.size() + (staged_valid_ ? 1u : 0u) < capacity_;
  }

  /// Push one item; caller must have checked can_accept().
  void push(const T& v) {
    MEMPOOL_CHECK(can_accept());
    if (mode_ == BufferMode::kRegistered) {
      // At most one push per cycle per buffer: a buffer is fed by exactly one
      // switch output, which grants at most one packet per cycle.
      MEMPOOL_CHECK(!staged_valid_);
      staged_ = v;
      staged_valid_ = true;
    } else {
      fifo_.push_back(v);
    }
  }

  bool empty() const { return fifo_.empty(); }
  std::size_t size() const { return fifo_.size() + (staged_valid_ ? 1u : 0u); }

  const T& front() const {
    MEMPOOL_CHECK(!fifo_.empty());
    return fifo_.front();
  }

  T pop() {
    MEMPOOL_CHECK(!fifo_.empty());
    T v = fifo_.front();
    fifo_.pop_front();
    return v;
  }

  /// Clock edge: staged item becomes visible.
  void commit() override {
    if (staged_valid_) {
      fifo_.push_back(staged_);
      staged_valid_ = false;
    }
  }

  BufferMode mode() const { return mode_; }
  std::size_t capacity() const { return capacity_; }

 private:
  BufferMode mode_;
  std::size_t capacity_;
  std::deque<T> fifo_;
  T staged_{};
  bool staged_valid_ = false;
};

}  // namespace mempool
