#include "sim/snapshot.hpp"

#include <array>

#include "sim/engine.hpp"

namespace mempool {

namespace {

/// CRC-32 (IEEE, reflected) lookup table, built once.
std::array<uint32_t, 256> make_crc_table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t snapshot_crc32(const void* data, std::size_t size) {
  static const std::array<uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

std::string Snapshot::serialize() const {
  StateSink s;
  for (const char c : kMagic) s.u8(static_cast<uint8_t>(c));
  s.u64(cycle);
  s.str(key);
  s.u32(static_cast<uint32_t>(sections_.size()));
  for (const auto& [name, payload] : sections_) {
    s.str(name);
    s.u64(payload.size());
    s.raw(payload);
  }
  std::string out = s.take();
  StateSink trailer;
  trailer.u64(out.size());
  out += trailer.take();
  StateSink crc;
  crc.u32(snapshot_crc32(out.data(), out.size()));
  out += crc.take();
  return out;
}

Snapshot Snapshot::deserialize(std::string_view bytes) {
  // Trailer first: the CRC covers everything before it, so any torn write,
  // truncation, or bit flip anywhere in the file fails here.
  constexpr std::size_t kTrailer = 8 + 4;  // total_length + crc32
  MEMPOOL_CHECK_MSG(bytes.size() >= kMagic.size() + kTrailer,
                    "checkpoint artifact too short ("
                        << bytes.size() << " bytes) to be a mempool.ckpt.v1");
  MEMPOOL_CHECK_MSG(bytes.substr(0, kMagic.size()) == kMagic,
                    "checkpoint artifact has a bad magic (not a "
                    "mempool.ckpt.v1 file, or its header was corrupted)");
  {
    StateSource crc_src(bytes.substr(bytes.size() - 4));
    const uint32_t stored = crc_src.u32();
    const uint32_t actual = snapshot_crc32(bytes.data(), bytes.size() - 4);
    MEMPOOL_CHECK_MSG(stored == actual,
                      "checkpoint artifact failed its CRC check (torn write "
                      "or corruption; refusing to restore)");
  }
  {
    StateSource len_src(bytes.substr(bytes.size() - kTrailer, 8));
    const uint64_t declared = len_src.u64();
    MEMPOOL_CHECK_MSG(declared == bytes.size() - kTrailer,
                      "checkpoint artifact length mismatch: declares "
                          << declared << " bytes, file has "
                          << bytes.size() - kTrailer);
  }

  StateSource src(bytes.substr(kMagic.size(),
                               bytes.size() - kMagic.size() - kTrailer));
  Snapshot snap;
  snap.cycle = src.u64();
  snap.key = src.str();
  const uint32_t count = src.u32();
  snap.sections_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name = src.str();
    const uint64_t len = src.u64();
    MEMPOOL_CHECK_MSG(src.remaining() >= len,
                      "checkpoint section '" << name << "' truncated");
    snap.sections_.emplace_back(
        std::move(name), src.bytes(static_cast<std::size_t>(len)));
  }
  src.finish();
  return snap;
}

// --- Engine checkpoint/restore ----------------------------------------------
//
// The engine serializes its own counters plus one section per registered
// component, named "c<index>:<name>" in registration order. Registration
// order is deterministic for a configuration, so save on one process and
// load on another (same config) line up section-for-section; a mismatch in
// count or name fails loudly.
//
// Timers are NOT serialized. Each component re-arms its own timed wakes in
// load_state() from its restored state (a traffic generator re-arms its next
// Poisson arrival, a DMA backend its burst completion) — the same cycle
// numbers the uninterrupted run had armed, so firing order is preserved.
// Wake flags are also not serialized: every component starts awake after a
// fresh build, and an idle component's evaluate() is a no-op by contract, so
// the active set re-converges within one cycle without perturbing state.

void Engine::save_state(Snapshot* snap) const {
  MEMPOOL_CHECK_MSG(dirty_pending_ == 0,
                    "checkpoint requires a quiesced cycle boundary (pending "
                    "commit-dirty elements)");
  for (const ShardLane& lane : lanes_) {
    MEMPOOL_CHECK_MSG(lane.dirty_pending == 0 && lane.drained.empty(),
                      "checkpoint requires a quiesced cycle boundary "
                      "(pending shard-lane commits)");
  }
  snap->cycle = cycle_;
  StateSink es;
  es.u64(cycle_);
  es.u64(evaluations());
  es.u64(commits());
  es.u64(idle_cycles_skipped_);
  es.u64(components_.size());
  snap->add("engine", es.take());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    StateSink s;
    components_[i]->save_state(s);
    snap->add("c" + std::to_string(i) + ":" + components_[i]->name(),
              s.take());
  }
}

void Engine::load_state(const Snapshot& snap) {
  MEMPOOL_CHECK_MSG(cycle_ == 0 && !finalized_,
                    "load_state requires a freshly built engine (restore "
                    "into a rebuilt cluster, not a stepped one)");
  StateSource es(snap.payload("engine"));
  cycle_ = es.u64();  // set first: component re-arms use wake_at(abs, ...)
  evaluations_ = es.u64();
  commits_ = es.u64();
  idle_cycles_skipped_ = es.u64();
  const uint64_t n = es.u64();
  es.finish();
  MEMPOOL_CHECK_MSG(n == components_.size(),
                    "snapshot was taken of a different cluster: "
                        << n << " components saved, "
                        << components_.size() << " registered");
  MEMPOOL_CHECK(snap.cycle == cycle_);
  for (std::size_t i = 0; i < components_.size(); ++i) {
    const std::string name =
        "c" + std::to_string(i) + ":" + components_[i]->name();
    StateSource s(snap.payload(name));
    components_[i]->load_state(s);
    s.finish();
  }
}

}  // namespace mempool
