#pragma once
// Factories of the built-in fabric-topology plugins, bootstrapped into the
// FabricRegistry on first use (fabric.cpp). Internal header.

#include <memory>

#include "noc/fabric.hpp"

namespace mempool::fabric {

std::unique_ptr<FabricTopology> make_top1();
std::unique_ptr<FabricTopology> make_top4();
std::unique_ptr<FabricTopology> make_toph();
std::unique_ptr<FabricTopology> make_topx();
// Lives in noc/toph2.cpp — implemented purely against the public plugin API,
// with zero edits inside Cluster; the registry bootstrap is its only mention
// outside its own translation unit.
std::unique_ptr<FabricTopology> make_toph2();

}  // namespace mempool::fabric
