#include "noc/monitor.hpp"

namespace mempool {

LatencyMonitor::LatencyMonitor(uint64_t warmup_cycles, double hist_bucket,
                               std::size_t hist_buckets)
    : warmup_(warmup_cycles), hist_(hist_bucket, hist_buckets) {}

void LatencyMonitor::on_generated(uint64_t cycle) {
  if (cycle >= warmup_) ++generated_;
}

void LatencyMonitor::on_injected(uint64_t cycle) {
  if (cycle >= warmup_) ++injected_;
}

void LatencyMonitor::on_response(uint64_t now, uint64_t birth) {
  if (now >= warmup_ && now < window_end_) ++completed_in_window_;
  if (birth < warmup_) return;  // request generated during warmup
  const double lat = static_cast<double>(now - birth);
  lat_.add(lat);
  hist_.add(lat);
}

}  // namespace mempool
