#include "noc/monitor.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace mempool {

LatencyMonitor::LatencyMonitor(uint64_t warmup_cycles, double hist_bucket,
                               std::size_t hist_buckets)
    : warmup_(warmup_cycles), hist_(hist_bucket, hist_buckets) {}

void LatencyMonitor::on_generated(uint64_t cycle) {
  if (cycle >= warmup_) ++generated_;
}

void LatencyMonitor::on_injected(uint64_t cycle) {
  if (cycle >= warmup_) ++injected_;
}

void LatencyMonitor::on_response(uint64_t now, uint64_t birth) {
  if (now >= warmup_ && now < window_end_) ++completed_in_window_;
  if (birth < warmup_) return;  // request generated during warmup
  const double lat = static_cast<double>(now - birth);
  ++lat_count_;
  lat_sum_ += lat;
  lat_max_ = std::max(lat_max_, lat);
  hist_.add(lat);
}

void LatencyMonitor::save_state(StateSink& s) const {
  s.u64(generated_);
  s.u64(injected_);
  s.u64(completed_in_window_);
  s.u64(lat_count_);
  s.f64(lat_sum_);
  s.f64(lat_max_);
  s.u64(hist_.count());
  s.u64(hist_.overflow());
  s.u32(static_cast<uint32_t>(hist_.buckets().size()));
  for (const uint64_t b : hist_.buckets()) s.u64(b);
}

void LatencyMonitor::load_state(StateSource& s) {
  generated_ = s.u64();
  injected_ = s.u64();
  completed_in_window_ = s.u64();
  lat_count_ = s.u64();
  lat_sum_ = s.f64();
  lat_max_ = s.f64();
  const uint64_t count = s.u64();
  const uint64_t overflow = s.u64();
  const uint32_t n = s.u32();
  std::vector<uint64_t> buckets(n, 0);
  for (uint64_t& b : buckets) b = s.u64();
  hist_.restore(buckets, count, overflow);
}

void LatencyMonitor::absorb(const LatencyMonitor& other) {
  MEMPOOL_CHECK_MSG(warmup_ == other.warmup_ &&
                        window_end_ == other.window_end_,
                    "absorbing a monitor with a different measure window");
  generated_ += other.generated_;
  injected_ += other.injected_;
  completed_in_window_ += other.completed_in_window_;
  lat_count_ += other.lat_count_;
  lat_sum_ += other.lat_sum_;
  lat_max_ = std::max(lat_max_, other.lat_max_);
  hist_.absorb(other.hist_);
}

}  // namespace mempool
