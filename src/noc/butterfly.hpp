#pragma once
// Minimal radix-r butterfly network (Section III-A, Figure 1): log_r(N)
// layers of r×r logarithmic crossbar switches with an r-way perfect shuffle
// between layers (omega construction). Destination-tag routing: at layer l
// the switch output equals digit (L-1-l) of the destination endpoint, so
// there is a single path per master/slave pair (oblivious routing).
//
// Pipeline registers are placed per layer: a layer whose input buffers are
// kRegistered adds one cycle (e.g. Top1's "single pipeline stage midway
// through its log4(64) = 3 layers" = registered layer 1, with layer 0
// registered as the tile's master-port boundary).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "sim/component.hpp"
#include "sim/elastic_buffer.hpp"
#include "sim/engine.hpp"
#include "noc/xbar.hpp"

namespace mempool {

/// Extracts the destination endpoint index in [0, N) from a packet; the
/// builder supplies this (e.g. target tile for request networks, requester
/// tile for response networks, possibly rebased to a group-local index).
using EndpointFn = std::function<unsigned(const Packet&)>;

class ButterflyNet final : public Component {
 public:
  /// @param num_endpoints N = radix^L for some integer L >= 1.
  /// @param layer_modes   input buffer mode per layer (size L).
  /// @param arena         when given, every layer's line buffers are carved
  ///                      contiguously out of this arena — the shard arena
  ///                      of the cluster that owns the network.
  ButterflyNet(std::string name, std::size_t num_endpoints, unsigned radix,
               std::vector<BufferMode> layer_modes, EndpointFn dst_of,
               std::size_t buffer_capacity = 2, Arena* arena = nullptr);

  /// Sink for producers to push into endpoint @p i.
  PacketSink* input(std::size_t i);

  /// Attach endpoint output @p i to a downstream sink.
  void connect_output(std::size_t i, PacketSink* sink);

  void register_clocked(Engine& engine, uint32_t shard = 0);

  void evaluate(uint64_t cycle) override;

  std::size_t num_endpoints() const { return n_; }
  unsigned radix() const { return radix_; }
  unsigned num_layers() const { return layers_; }

  /// Switch traversals in layer @p l (energy model) and in total.
  uint64_t layer_traversals(unsigned l) const { return traversals_[l]; }
  uint64_t traversals() const;
  uint64_t blocked() const { return blocked_; }

  bool idle() const override;

  /// DRC self-description: reads every line buffer of every layer, stages
  /// into the internal layer buffers (self-edges, exempt from the order
  /// rules), writes every connected endpoint output.
  void describe(GraphVisitor& v) const override;

  /// Checkpoint: every layer's line buffers, arbiter pointers, counters.
  void save_state(StateSink& s) const override;
  void load_state(StateSource& s) override;

  /// Pure routing arithmetic, exposed for tests: the line position after
  /// stage @p l for a packet currently at position @p pos heading to @p dst.
  static unsigned stage_hop(unsigned pos, unsigned dst, unsigned l,
                            unsigned layers, unsigned radix_bits, unsigned n);

 private:
  std::size_t n_;
  unsigned radix_;
  unsigned radix_bits_;
  unsigned layers_;
  EndpointFn dst_of_;
  // buf_[l][p]: input buffer of layer l at line position p (pre-shuffle).
  // Inner PinnedVector, not vector: ElasticBuffer is pinned (non-movable);
  // each layer's line buffers sit in one contiguous (optionally
  // arena-backed) block.
  std::vector<PinnedVector<PacketBuffer>> buf_;
  // occ_[l * occ_words_ + p/64] bit p%64 set iff buf_[l][p] holds a visible
  // packet — evaluate iterates set bits instead of scanning all N lines per
  // layer. One word per 64 lines (N > 64 spans several words).
  std::size_t occ_words_ = 1;
  std::vector<uint64_t> occ_;
  std::vector<uint64_t> arb_scratch_;  // slots arbitrated this layer
  std::vector<BufferSink<PacketBuffer>> in_sinks_;
  std::vector<PacketSink*> out_;
  // rr_[l][switch][digit]: round-robin pointer per layer/switch/output.
  std::vector<std::vector<uint32_t>> rr_;
  std::vector<uint64_t> traversals_;
  uint64_t blocked_ = 0;
};

}  // namespace mempool
