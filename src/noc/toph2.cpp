// TopH2: a two-level hierarchical fabric scaling the TopH recipe to 1024
// cores (the direction of Riedel et al., "MemPool: A Scalable Manycore
// Architecture with a Low-Latency Shared L1 Memory", 2023, and MemPool-3D).
//
// Canonical shape: 256 tiles × 4 cores = 1024 cores, organized as 16 groups
// of 16 tiles, the groups collected into 4 super-groups of 4 groups each.
// Three latency tiers above the own tile:
//
//   * intra-group   — per-group fully-connected crossbar      (3 cycles)
//   * intra-super   — one radix-4 butterfly per ordered group
//                     pair inside a super-group, exactly the
//                     TopH inter-group tier                   (5 cycles)
//   * cross-super   — one die-spanning radix-4 butterfly per
//                     ordered super-group pair over all tiles
//                     of the super-group, every layer
//                     registered (long-wire retiming)         (7 cycles)
//
// Per tile: master/slave ports 0 = local crossbar, 1..gps-1 = intra-super
// directions, gps..gps+sg-2 = cross-super directions.
//
// The enum-era Cluster could not express this: it is registered purely
// through the FabricTopology interface with zero edits inside Cluster — the
// proof that the plugin API is real, and the worked example of the README's
// "how to add a topology" recipe.

#include <string>

#include "common/check.hpp"
#include "core/tile.hpp"
#include "noc/builtin_topologies.hpp"
#include "noc/fabric.hpp"
#include "noc/fabric_util.hpp"

namespace mempool::fabric {

namespace {

/// Hierarchy arithmetic for one configuration.
struct Shape {
  uint32_t tpg;   ///< tiles per group
  uint32_t sg;    ///< super-groups
  uint32_t gps;   ///< groups per super-group
  uint32_t tps;   ///< tiles per super-group

  explicit Shape(const ClusterConfig& cfg)
      : tpg(cfg.tiles_per_group()),
        sg(static_cast<uint32_t>(
            cfg.topology.param_uint("supergroups", 4))),
        gps(sg != 0 ? cfg.num_groups / sg : 0),
        tps(tpg * gps) {}

  uint32_t group_of(uint32_t tile) const { return tile / tpg; }
  uint32_t super_of(uint32_t tile) const { return tile / tps; }
  uint32_t group_in_super(uint32_t tile) const {
    return (tile / tpg) % gps;
  }
};

class TopH2 final : public FabricTopology {
 public:
  const std::string& name() const override {
    static const std::string n = "TopH2";
    return n;
  }
  std::string description() const override {
    return "two-level hierarchy: groups of tiles inside super-groups of "
           "groups (1024 cores; zero-load 1 / 3 / 5 / 7 cycles)";
  }
  bool hierarchical() const override { return true; }

  // Sharded execution: one shard per super-group. The die-spanning tier-3
  // butterflies feed every tile of the destination super-group
  // combinationally (their slave ports are combinational; retiming happens
  // inside the all-registered layers), so the finest partition whose
  // combinational paths stay inside a shard is the super-group; tier-1/2
  // networks are then intra-shard and only the tier-3 butterflies'
  // registered layer-0 inputs cross the boundary.
  uint32_t num_shards(const ClusterConfig& cfg) const override {
    return Shape(cfg).sg;
  }
  uint32_t tile_shard(const ClusterConfig& cfg, uint32_t tile) const override {
    return Shape(cfg).super_of(tile);
  }

  std::vector<std::string> param_keys() const override {
    return {"supergroups"};
  }

  void validate(const ClusterConfig& cfg) const override {
    const Shape s(cfg);
    MEMPOOL_CHECK_MSG(s.sg >= 2, "TopH2 needs >= 2 super-groups");
    MEMPOOL_CHECK_MSG(cfg.num_groups % s.sg == 0,
                      "supergroups (" << s.sg << ") does not divide "
                                      << "num_groups (" << cfg.num_groups
                                      << ")");
    MEMPOOL_CHECK_MSG(s.gps >= 2, "TopH2 needs >= 2 groups per super-group");
    MEMPOOL_CHECK_MSG(s.tpg >= 4 && log2_exact(s.tpg) % 2 == 0,
                      "TopH2 needs tiles_per_group = 4^k >= 4");
    MEMPOOL_CHECK_MSG(log2_exact(s.tps) % 2 == 0,
                      "TopH2 needs tiles per super-group = 4^k "
                      "(groups_per_supergroup a power of four)");
  }

  ClusterConfig paper_config(const TopologySpec& spec,
                             bool scrambling) const override {
    // 16 tiles × 16 groups × 4 cores = 1024 cores, 4 MiB of shared L1.
    ClusterConfig cfg;
    cfg.topology = spec;
    cfg.scrambling = scrambling;
    cfg.num_tiles = 256;
    cfg.num_groups = 16;
    cfg.validate();
    return cfg;
  }

  ClusterConfig mini_config(const TopologySpec& spec,
                            bool scrambling) const override {
    // Smallest valid shape: 4 tiles × 16 groups = 64 tiles / 256 cores.
    ClusterConfig cfg;
    cfg.topology = spec;
    cfg.scrambling = scrambling;
    cfg.num_tiles = 64;
    cfg.num_groups = 16;
    cfg.validate();
    return cfg;
  }

  TileShape tile_shape(const ClusterConfig& cfg) const override {
    const Shape s(cfg);
    const uint32_t dirs = 1 + (s.gps - 1) + (s.sg - 1);
    return {true, dirs, dirs, 2};
  }

  TilePorts tile_ports(const ClusterConfig& cfg, uint32_t t) const override {
    const Shape s(cfg);
    // Port 0 (local crossbar) is combinational at the slave; the intra-super
    // butterflies place their second register boundary on the slave port when
    // they have a single layer (the TopH rule); the cross-super butterflies
    // register every layer internally, so their slave ports stay
    // combinational.
    const BufferMode mid = bfly_layers(s.tpg) < 2 ? BufferMode::kRegistered
                                                  : BufferMode::kCombinational;
    TilePorts ports;
    ports.slave_req_modes.assign(1, BufferMode::kCombinational);
    ports.slave_req_modes.insert(ports.slave_req_modes.end(), s.gps - 1, mid);
    ports.slave_req_modes.insert(ports.slave_req_modes.end(), s.sg - 1,
                                 BufferMode::kCombinational);
    ports.slave_resp_modes = ports.slave_req_modes;

    const uint32_t cpt = cfg.cores_per_tile;
    const uint32_t gl = s.group_in_super(t);
    const uint32_t sp = s.super_of(t);
    const Shape sh = s;
    auto direction = [sh, gl, sp](uint32_t other_tile) -> unsigned {
      const uint32_t os = sh.super_of(other_tile);
      if (os == sp) {
        // 0 = own group (local crossbar), 1..gps-1 = sibling groups.
        return (sh.group_in_super(other_tile) - gl + sh.gps) % sh.gps;
      }
      return sh.gps - 1 + (os - sp + sh.sg) % sh.sg;
    };
    ports.dir_route = [direction](const Packet& p) {
      return direction(p.dst_tile);
    };
    ports.resp_route = [direction, t, cpt](const Packet& p) {
      if (p.src_tile == t) return static_cast<unsigned>(p.src % cpt);
      return static_cast<unsigned>(cpt + direction(p.src_tile));
    };
    return ports;
  }

  void build_networks(FabricBuilder& b) const override {
    const ClusterConfig& cfg = b.config();
    const Shape s(cfg);

    // Tier 1: intra-group fully-connected crossbars, one per group (shard =
    // the group's super-group).
    for (uint32_t g = 0; g < cfg.num_groups; ++g) {
      const uint32_t gshard = g / s.gps;
      Arena& ga = b.arena(gshard);
      XbarSwitch* lreq = b.add_req_group_xbar(
          ga.make<XbarSwitch>(
              "g" + std::to_string(g) + ".req_lxbar", s.tpg,
              BufferMode::kRegistered, s.tpg,
              RouteFn([s](const Packet& p) {
                return static_cast<unsigned>(p.dst_tile % s.tpg);
              }),
              /*in_capacity=*/2, &ga),
          gshard);
      XbarSwitch* lresp = b.add_resp_group_xbar(
          ga.make<XbarSwitch>(
              "g" + std::to_string(g) + ".resp_lxbar", s.tpg,
              BufferMode::kRegistered, s.tpg,
              RouteFn([s](const Packet& p) {
                return static_cast<unsigned>(p.src_tile % s.tpg);
              }),
              /*in_capacity=*/2, &ga),
          gshard);
      for (uint32_t j = 0; j < s.tpg; ++j) {
        Tile& tl = b.tile(g * s.tpg + j);
        tl.connect_dir_output(0, lreq->input(j));
        lreq->connect_output(j, tl.slave_req(0));
        tl.connect_resp_remote_output(0, lresp->input(j));
        lresp->connect_output(j, tl.resp_slave(0));
      }
    }

    // Tier 2: intra-super-group butterflies — one per super-group and
    // ordered group pair, exactly the TopH inter-group construction applied
    // inside each super-group.
    const unsigned mid_layers = bfly_layers(s.tpg);
    for (uint32_t sp = 0; sp < s.sg; ++sp) {
      for (uint32_t gl = 0; gl < s.gps; ++gl) {
        for (uint32_t i = 1; i < s.gps; ++i) {
          const uint32_t g = sp * s.gps + gl;
          const uint32_t h = sp * s.gps + (gl + i) % s.gps;
          const std::string suffix =
              "_g" + std::to_string(g) + "_d" + std::to_string(i);
          // Intra-super-group: producer and consumer groups share the
          // super-group shard, so no boundary marking is needed.
          Arena& spa = b.arena(sp);
          ButterflyNet* req = b.add_req_butterfly(
              spa.make<ButterflyNet>(
                  "req_bfly" + suffix, s.tpg, 4u, bfly_layer_modes(mid_layers),
                  EndpointFn([s](const Packet& p) {
                    return static_cast<unsigned>(p.dst_tile % s.tpg);
                  }),
                  /*buffer_capacity=*/2, &spa),
              sp);
          ButterflyNet* resp = b.add_resp_butterfly(
              spa.make<ButterflyNet>(
                  "resp_bfly" + suffix, s.tpg, 4u, bfly_layer_modes(mid_layers),
                  EndpointFn([s](const Packet& p) {
                    return static_cast<unsigned>(p.src_tile % s.tpg);
                  }),
                  /*buffer_capacity=*/2, &spa),
              sp);
          for (uint32_t j = 0; j < s.tpg; ++j) {
            Tile& src = b.tile(g * s.tpg + j);
            Tile& dst = b.tile(h * s.tpg + j);
            src.connect_dir_output(i, req->input(j));
            req->connect_output(j, dst.slave_req(i));
            src.connect_resp_remote_output(i, resp->input(j));
            resp->connect_output(j, dst.resp_slave(i));
          }
        }
      }
    }

    // Tier 3: cross-super-group butterflies — one per ordered super-group
    // pair over every tile of the super-group, all layers registered.
    const unsigned top_layers = bfly_layers(s.tps);
    for (uint32_t sp = 0; sp < s.sg; ++sp) {
      for (uint32_t d = 1; d < s.sg; ++d) {
        const uint32_t sq = (sp + d) % s.sg;
        const std::string suffix =
            "_s" + std::to_string(sp) + "_d" + std::to_string(d);
        // Cross-super-group: the butterfly lives in the destination
        // super-group's shard (it feeds those tiles combinationally); its
        // all-registered layer-0 inputs, fed from super-group sp, are the
        // shard boundary.
        Arena& sqa = b.arena(sq);
        ButterflyNet* req = b.add_req_butterfly(
            sqa.make<ButterflyNet>(
                "req_tbfly" + suffix, s.tps, 4u,
                bfly_all_registered(top_layers),
                EndpointFn([s](const Packet& p) {
                  return static_cast<unsigned>(p.dst_tile % s.tps);
                }),
                /*buffer_capacity=*/2, &sqa),
            sq);
        ButterflyNet* resp = b.add_resp_butterfly(
            sqa.make<ButterflyNet>(
                "resp_tbfly" + suffix, s.tps, 4u,
                bfly_all_registered(top_layers),
                EndpointFn([s](const Packet& p) {
                  return static_cast<unsigned>(p.src_tile % s.tps);
                }),
                /*buffer_capacity=*/2, &sqa),
            sq);
        const uint32_t dir = s.gps - 1 + d;
        for (uint32_t j = 0; j < s.tps; ++j) {
          Tile& src = b.tile(sp * s.tps + j);
          Tile& dst = b.tile(sq * s.tps + j);
          src.connect_dir_output(dir,
                                 b.shard_boundary(sp, sq, req->input(j)));
          req->connect_output(j, dst.slave_req(dir));
          src.connect_resp_remote_output(
              dir, b.shard_boundary(sp, sq, resp->input(j)));
          resp->connect_output(j, dst.resp_slave(dir));
        }
      }
    }
  }

  void wire_core(FabricBuilder& b, uint32_t core) const override {
    const uint32_t cpt = b.config().cores_per_tile;
    Tile& tile = b.tile(core / cpt);
    b.wire_core_ports(core, tile.core_local_req(core % cpt),
                      tile.dir_input(core % cpt));
  }

  uint64_t zero_load_latency(const ClusterConfig& cfg, uint32_t src_tile,
                             uint32_t dst_tile) const override {
    const Shape s(cfg);
    if (src_tile == dst_tile) return 1;
    if (s.group_of(src_tile) == s.group_of(dst_tile)) return 3;
    if (s.super_of(src_tile) == s.super_of(dst_tile)) {
      return 1 + 2 * bfly_reg_boundaries(bfly_layers(s.tpg));
    }
    // Every layer of the top-tier butterfly is a register boundary.
    return 1 + 2 * bfly_layers(s.tps);
  }

  std::string latency_summary(const ClusterConfig& cfg) const override {
    const Shape s(cfg);
    return "1 / 3 / " +
           std::to_string(1 + 2 * bfly_reg_boundaries(bfly_layers(s.tpg))) +
           " / " + std::to_string(1 + 2 * bfly_layers(s.tps));
  }

  bool physically_modeled() const override { return true; }

  physical::FloorplanParams floorplan_params(
      const ClusterConfig& cfg) const override {
    // Keep the paper's tile pitch and scale the die edge with the tile grid:
    // 16×16 tiles land on a double-edge 9.2 mm die (4× area — the scaling
    // direction of the 2023 journal paper), the 16 groups on a 4×4 grid.
    physical::FloorplanParams fp;
    fp.num_tiles = cfg.num_tiles;
    fp.num_groups = cfg.num_groups;
    uint32_t dim = 1u << (log2_exact(cfg.num_tiles) / 2);
    if (dim * dim < cfg.num_tiles) dim *= 2;
    fp.die_mm = fp.die_mm * dim / 8.0;
    return fp;
  }

  std::vector<physical::WireBundle> wires(
      const ClusterConfig& cfg, const physical::Floorplan& fp,
      uint32_t request_bits, uint32_t response_bits) const override {
    std::vector<physical::WireBundle> wires;
    const Shape s(cfg);
    const uint32_t n = fp.params().num_tiles;
    const uint32_t tpg = s.tpg;
    const uint32_t sg = s.sg;
    const uint32_t gps = s.gps;
    const uint32_t tps = s.tps;

    auto both_ways = [&](physical::Point a, physical::Point b,
                         physical::WireKind kind) {
      wires.push_back({a, b, request_bits, kind});
      wires.push_back({b, a, response_bits, kind});
    };
    // Placement: in the canonical 4×4 shape, super-group s occupies die
    // quadrant (s % 2, s / 2) and its 4 groups the quadrant's 2×2 sub-cells
    // — the TopH floorplan one level up. perm(g) maps the linear group index
    // to the row-major grid cell of that placement; tiles are positioned
    // through the permuted cell. Non-canonical hierarchies (a custom
    // "supergroups" param) keep the linear row-major placement.
    const bool quadrants = sg == 4 && gps == 4;
    auto perm = [&](uint32_t g) {
      if (!quadrants) return g;
      const uint32_t sp = g / gps, l = g % gps;
      const uint32_t col = 2 * (sp % 2) + l % 2;
      const uint32_t row = 2 * (sp / 2) + l / 2;
      return row * 4 + col;
    };
    auto tile_pos = [&](uint32_t t) {
      const uint32_t g = t / tpg;
      return fp.tile_center_grouped(perm(g) * tpg + t % tpg);
    };
    auto gcenter = [&](uint32_t g) { return fp.group_center(perm(g)); };
    auto super_center = [&](uint32_t sp) {
      physical::Point c{0, 0};
      for (uint32_t gl = 0; gl < gps; ++gl) {
        const physical::Point g = gcenter(sp * gps + gl);
        c.x += g.x / gps;
        c.y += g.y / gps;
      }
      return c;
    };

    // Tier 1: tile to the group-local crossbar at the group centre.
    for (uint32_t t = 0; t < n; ++t) {
      both_ways(tile_pos(t), gcenter(t / tpg),
                physical::WireKind::kTileToGroup);
    }
    // Tier 2: intra-super-group butterflies at the midpoint of each ordered
    // group pair.
    for (uint32_t sp = 0; sp < sg; ++sp) {
      for (uint32_t gl = 0; gl < gps; ++gl) {
        for (uint32_t i = 1; i < gps; ++i) {
          const uint32_t g = sp * gps + gl;
          const uint32_t h = sp * gps + (gl + i) % gps;
          const physical::Point cg = gcenter(g);
          const physical::Point ch = gcenter(h);
          const physical::Point hub{(cg.x + ch.x) / 2, (cg.y + ch.y) / 2};
          for (uint32_t j = 0; j < tpg; ++j) {
            both_ways(tile_pos(g * tpg + j), hub,
                      physical::WireKind::kGroupToGroup);
            both_ways(hub, tile_pos(h * tpg + j),
                      physical::WireKind::kGroupToGroup);
          }
        }
      }
    }
    // Tier 3: cross-super-group butterflies at the midpoint of each ordered
    // super-group (quadrant) pair.
    for (uint32_t sp = 0; sp < sg; ++sp) {
      for (uint32_t d = 1; d < sg; ++d) {
        const uint32_t sq = (sp + d) % sg;
        const physical::Point cs = super_center(sp);
        const physical::Point cq = super_center(sq);
        const physical::Point hub{(cs.x + cq.x) / 2, (cs.y + cq.y) / 2};
        for (uint32_t j = 0; j < tps; ++j) {
          both_ways(tile_pos(sp * tps + j), hub,
                    physical::WireKind::kGroupToGroup);
          both_ways(hub, tile_pos(sq * tps + j),
                    physical::WireKind::kGroupToGroup);
        }
      }
    }
    return wires;
  }

  std::vector<EnergyRow> energy_rows(const ClusterConfig& cfg,
                                     const EnergyParams& p) const override {
    const Shape s(cfg);
    const double Lm = bfly_layers(s.tpg);
    const double Lt = bfly_layers(s.tps);
    const double cross_super = p.dir_xbar_hop + Lt * p.bfly_layer_hop +
                               2 * p.tile_xbar_hop + Lt * p.bfly_layer_hop +
                               p.dir_xbar_hop;
    const double cross_group = p.dir_xbar_hop + Lm * p.bfly_layer_hop +
                               2 * p.tile_xbar_hop + Lm * p.bfly_layer_hop +
                               p.dir_xbar_hop;
    const double same = p.dir_xbar_hop + p.group_xbar_hop +
                        2 * p.tile_xbar_hop + p.group_xbar_hop +
                        p.dir_xbar_hop;
    return {
        {"remote load (cross-super-group)", {p.core_ls, cross_super, p.bank_access}},
        {"remote load (cross-group)", {p.core_ls, cross_group, p.bank_access}},
        {"remote load (same group)", {p.core_ls, same, p.bank_access}},
        {"local load", local_load_energy(p)},
    };
  }
};

}  // namespace

std::unique_ptr<FabricTopology> make_toph2() {
  return std::make_unique<TopH2>();
}

}  // namespace mempool::fabric
