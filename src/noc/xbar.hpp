#pragma once
// Single-stage m×n logarithmic crossbar switch — the basic element of both of
// MemPool's interconnects (Section III-A). Address decoding picks one output
// per packet (oblivious routing: a single path per master/slave pair), and a
// round-robin arbiter at each output grants one packet per cycle. Each input
// port is an elastic buffer whose mode (registered/combinational) places the
// pipeline registers of Figures 2 and 3.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "sim/component.hpp"
#include "sim/elastic_buffer.hpp"
#include "sim/engine.hpp"

namespace mempool {

using PacketBuffer = ElasticBuffer<Packet>;

/// Maps a packet to the switch output it must leave through.
using RouteFn = std::function<unsigned(const Packet&)>;

class XbarSwitch final : public Component {
 public:
  /// @param in_modes  one BufferMode per input port; a registered input is a
  ///                  register boundary (adds one cycle).
  /// @param in_capacity elastic buffer depth per input (>= 1; 2 sustains
  ///                  full throughput across registered boundaries).
  /// @param arena     when given, the input buffers (and any deep ring
  ///                  storage) are carved contiguously out of this arena —
  ///                  the shard arena of the cluster that owns the switch.
  XbarSwitch(std::string name, std::vector<BufferMode> in_modes,
             std::size_t num_outputs, RouteFn route,
             std::size_t in_capacity = 2, Arena* arena = nullptr);

  /// Convenience: all inputs share one mode.
  XbarSwitch(std::string name, std::size_t num_inputs, BufferMode in_mode,
             std::size_t num_outputs, RouteFn route,
             std::size_t in_capacity = 2, Arena* arena = nullptr);

  /// Sink for upstream producers to push into input @p i.
  PacketSink* input(std::size_t i);

  /// Attach output @p o to a downstream sink; must be done for every output
  /// before the first evaluate().
  void connect_output(std::size_t o, PacketSink* sink);

  /// Register all clocked state with the engine's commit phase.
  void register_clocked(Engine& engine, uint32_t shard = 0);

  void evaluate(uint64_t cycle) override;

  std::size_t num_inputs() const { return in_.size(); }
  std::size_t num_outputs() const { return out_.size(); }

  /// Total packets moved through the switch (for the energy model).
  uint64_t traversals() const { return traversals_; }
  /// Cycles × outputs where a candidate was present but not granted
  /// (arbitration conflict or downstream backpressure).
  uint64_t blocked() const { return blocked_; }

  /// True if no input holds a visible packet (activity contract + tests).
  bool idle() const override;

  /// DRC self-description: reads every input buffer, writes every connected
  /// output sink.
  void describe(GraphVisitor& v) const override;

  /// Checkpoint: input buffers, arbiter pointers, traversal counters.
  void save_state(StateSink& s) const override;
  void load_state(StateSource& s) override;

 private:
  // PinnedVector, not vector: ElasticBuffer is pinned (non-movable) because
  // the engine's commit slots and the wake plumbing hold raw pointers into
  // it. The one-shot reservation keeps all input buffers in one contiguous
  // block (arena-backed when the cluster supplies a shard arena).
  PinnedVector<PacketBuffer> in_;
  std::vector<BufferSink<PacketBuffer>> in_sinks_;
  std::vector<PacketSink*> out_;
  std::vector<uint32_t> rr_;            // round-robin pointer per output
  std::vector<std::vector<uint16_t>> cand_;  // scratch: candidates per output
  RouteFn route_;
  std::vector<uint64_t> occ_;      ///< Bit i: input i holds a visible packet.
  std::vector<uint64_t> out_req_;  ///< Scratch: outputs with candidates.
  uint64_t traversals_ = 0;
  uint64_t blocked_ = 0;
};

}  // namespace mempool
