#pragma once
// Measurement of injected load, accepted throughput, and round-trip latency —
// the quantities plotted in Figures 5 and 6 of the paper. A monitor is shared
// by all requesters of an experiment; warmup samples are excluded.
//
// Exact mergeability: under the sharded engine every shard records into its
// own monitor (a shared one would be a data race), and the per-shard
// monitors are merged with absorb() after the run. Every statistic the
// monitor reports is chosen to make that merge *bit-exact* regardless of
// recording order: event counts and histogram buckets are integers, the
// latency sum is a sum of integer-valued doubles (exact in IEEE double far
// beyond any simulated sample count), max is order-free, and the mean is a
// single end-of-run division of those two exact quantities. Merged sharded
// results are therefore bit-identical to the sequential engines' — the
// equivalence suite asserts it.

#include <cstdint>

#include "common/stats.hpp"
#include "sim/snapshot.hpp"

namespace mempool {

class LatencyMonitor {
 public:
  /// @param warmup_cycles samples whose response arrives before this cycle
  ///        are ignored (drained network transient).
  explicit LatencyMonitor(uint64_t warmup_cycles = 0,
                          double hist_bucket = 1.0,
                          std::size_t hist_buckets = 512);

  /// Record a generated request (for offered load accounting).
  void on_generated(uint64_t cycle);

  /// Record a request injected into the fabric.
  void on_injected(uint64_t cycle);

  /// Record a completed round trip; @p birth is the generation cycle.
  void on_response(uint64_t now, uint64_t birth);

  void set_measure_start(uint64_t cycle) { warmup_ = cycle; }
  /// Responses arriving at cycle >= @p end no longer count toward the
  /// accepted-throughput window (latency samples still accumulate during the
  /// drain so slow round trips are not censored).
  void set_measure_end(uint64_t end) { window_end_ = end; }

  /// Fold @p other (a per-shard monitor of the same experiment — identical
  /// warmup/window/bucket configuration) into this one; exact, so the result
  /// is independent of how samples were distributed across monitors.
  void absorb(const LatencyMonitor& other);

  uint64_t generated() const { return generated_; }
  uint64_t injected() const { return injected_; }
  uint64_t completed() const { return lat_count_; }
  /// Responses delivered inside [measure_start, measure_end).
  uint64_t completed_in_window() const { return completed_in_window_; }

  /// Mean round-trip latency in cycles (measured window only). Computed as
  /// sum/count of exact integer-valued samples — see the mergeability note.
  double avg_latency() const {
    return lat_count_ != 0 ? lat_sum_ / static_cast<double>(lat_count_) : 0.0;
  }
  double p95_latency() const { return hist_.quantile(0.95); }
  double max_latency() const { return lat_count_ != 0 ? lat_max_ : 0.0; }
  double latency_sum() const { return lat_sum_; }
  const Histogram& latency_hist() const { return hist_; }

  /// Checkpoint: counters plus the latency accumulators by bit pattern, so a
  /// restored monitor continues the exact double-addition sequence the
  /// uninterrupted run would have performed. Configuration (warmup/window/
  /// bucket geometry) is NOT serialized — it is rebuilt from the experiment
  /// config and checked.
  void save_state(StateSink& s) const;
  void load_state(StateSource& s);

 private:
  uint64_t warmup_;
  uint64_t window_end_ = UINT64_MAX;
  uint64_t generated_ = 0;
  uint64_t injected_ = 0;
  uint64_t completed_in_window_ = 0;
  uint64_t lat_count_ = 0;
  double lat_sum_ = 0.0;   ///< Exact: integer-valued samples.
  double lat_max_ = 0.0;
  Histogram hist_;
};

}  // namespace mempool
