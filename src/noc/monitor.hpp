#pragma once
// Measurement of injected load, accepted throughput, and round-trip latency —
// the quantities plotted in Figures 5 and 6 of the paper. A monitor is shared
// by all requesters of an experiment; warmup samples are excluded.

#include <cstdint>

#include "common/stats.hpp"

namespace mempool {

class LatencyMonitor {
 public:
  /// @param warmup_cycles samples whose response arrives before this cycle
  ///        are ignored (drained network transient).
  explicit LatencyMonitor(uint64_t warmup_cycles = 0,
                          double hist_bucket = 1.0,
                          std::size_t hist_buckets = 512);

  /// Record a generated request (for offered load accounting).
  void on_generated(uint64_t cycle);

  /// Record a request injected into the fabric.
  void on_injected(uint64_t cycle);

  /// Record a completed round trip; @p birth is the generation cycle.
  void on_response(uint64_t now, uint64_t birth);

  void set_measure_start(uint64_t cycle) { warmup_ = cycle; }
  /// Responses arriving at cycle >= @p end no longer count toward the
  /// accepted-throughput window (latency samples still accumulate during the
  /// drain so slow round trips are not censored).
  void set_measure_end(uint64_t end) { window_end_ = end; }

  uint64_t generated() const { return generated_; }
  uint64_t injected() const { return injected_; }
  uint64_t completed() const { return lat_.count(); }
  /// Responses delivered inside [measure_start, measure_end).
  uint64_t completed_in_window() const { return completed_in_window_; }

  /// Mean round-trip latency in cycles (measured window only).
  double avg_latency() const { return lat_.mean(); }
  double p95_latency() const { return hist_.quantile(0.95); }
  double max_latency() const { return lat_.max(); }
  const RunningStat& latency_stat() const { return lat_; }
  const Histogram& latency_hist() const { return hist_; }

 private:
  uint64_t warmup_;
  uint64_t window_end_ = UINT64_MAX;
  uint64_t generated_ = 0;
  uint64_t injected_ = 0;
  uint64_t completed_in_window_ = 0;
  RunningStat lat_;
  Histogram hist_;
};

}  // namespace mempool
