#include "noc/fabric.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "noc/builtin_topologies.hpp"
#include "physical/congestion.hpp"

namespace mempool {

// --- FabricTopology defaults --------------------------------------------------

ClusterConfig FabricTopology::paper_config(const TopologySpec& spec,
                                           bool scrambling) const {
  ClusterConfig cfg;  // the 256-core paper defaults
  cfg.topology = spec;
  cfg.scrambling = scrambling;
  cfg.validate();
  return cfg;
}

ClusterConfig FabricTopology::mini_config(const TopologySpec& spec,
                                          bool scrambling) const {
  ClusterConfig cfg;
  cfg.topology = spec;
  cfg.scrambling = scrambling;
  cfg.num_tiles = 16;
  cfg.cores_per_tile = 4;
  cfg.banks_per_tile = 16;
  cfg.bank_bytes = 1024;
  cfg.seq_region_bytes = 4096;
  cfg.validate();
  return cfg;
}

void FabricTopology::check_params(const TopologySpec& spec) const {
  const std::vector<std::string> known = param_keys();
  for (const auto& [key, value] : spec.params) {
    (void)value;
    MEMPOOL_CHECK_MSG(
        std::find(known.begin(), known.end(), key) != known.end(),
        "topology '" << name() << "' does not understand param '" << key
                     << "'");
  }
}

// --- FabricRegistry -----------------------------------------------------------

FabricRegistry::FabricRegistry() {
  add(fabric::make_top1());
  add(fabric::make_top4());
  add(fabric::make_toph());
  add(fabric::make_topx());
  add(fabric::make_toph2());
}

FabricRegistry& FabricRegistry::instance() {
  static FabricRegistry registry;
  return registry;
}

void FabricRegistry::add(std::unique_ptr<FabricTopology> topo) {
  MEMPOOL_CHECK(topo != nullptr);
  // Duplicate check against the member directly: add() runs inside the
  // constructor for the built-ins, where re-entering instance() would
  // deadlock the function-local static's initialization.
  for (const auto& t : topos_) {
    MEMPOOL_CHECK_MSG(t->name() != topo->name(),
                      "topology '" << topo->name() << "' already registered");
  }
  topos_.push_back(std::move(topo));
}

const FabricTopology* FabricRegistry::find(const std::string& name) {
  for (const auto& t : instance().topos_) {
    if (t->name() == name) return t.get();
  }
  return nullptr;
}

const FabricTopology& FabricRegistry::get(const std::string& name) {
  const FabricTopology* t = find(name);
  MEMPOOL_CHECK_MSG(t != nullptr, "unknown topology '"
                                      << name << "'; available: "
                                      << available());
  return *t;
}

std::vector<std::string> FabricRegistry::names() {
  std::vector<std::string> out;
  for (const auto& t : instance().topos_) out.push_back(t->name());
  return out;
}

std::string FabricRegistry::available() {
  std::string out;
  for (const auto& t : instance().topos_) {
    if (!out.empty()) out += ", ";
    out += t->name();
  }
  return out;
}

// --- registry-driven feasibility ---------------------------------------------

std::vector<physical::FeasibilityReport> analyze_all_topologies(
    const physical::FeasibilityParams& base) {
  std::vector<physical::FeasibilityReport> reports;
  // Central-hub baselines keyed by floorplan: the paper topologies share the
  // default die, so the star rasterization runs once, not once per plugin.
  struct Baseline {
    physical::FloorplanParams fp;
    double center_demand;
  };
  std::vector<Baseline> baselines;
  auto baseline_for = [&](const physical::FloorplanParams& fpp,
                          const physical::Floorplan& fp) {
    for (const auto& b : baselines) {
      if (b.fp.num_tiles == fpp.num_tiles &&
          b.fp.num_groups == fpp.num_groups && b.fp.die_mm == fpp.die_mm &&
          b.fp.tile_mm == fpp.tile_mm) {
        return b.center_demand;
      }
    }
    physical::CongestionMap star(fpp.die_mm, base.congestion_cells);
    star.route_all(physical::star_wires(fp));
    baselines.push_back({fpp, star.center_demand()});
    return baselines.back().center_demand;
  };

  for (const std::string& name : FabricRegistry::names()) {
    const FabricTopology& topo = FabricRegistry::get(name);
    if (!topo.physically_modeled()) continue;
    const ClusterConfig cfg =
        topo.paper_config(TopologySpec{name}, /*scrambling=*/true);
    physical::FeasibilityParams p = base;
    p.floorplan = topo.floorplan_params(cfg);
    const physical::Floorplan fp(p.floorplan);
    reports.push_back(physical::analyze_wires(
        topo.name(), topo.wires(cfg, fp), p, baseline_for(p.floorplan, fp)));
  }
  return reports;
}

}  // namespace mempool
