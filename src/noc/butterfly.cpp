#include "noc/butterfly.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "common/bitutil.hpp"
#include "common/check.hpp"

namespace mempool {

namespace {
/// r-way perfect shuffle on L radix-r digits: left-rotate the digit string.
unsigned shuffle(unsigned p, unsigned layers, unsigned radix_bits, unsigned n) {
  const unsigned top = p >> ((layers - 1) * radix_bits);
  return ((p << radix_bits) | top) & (n - 1);
}
}  // namespace

ButterflyNet::ButterflyNet(std::string name, std::size_t num_endpoints,
                           unsigned radix, std::vector<BufferMode> layer_modes,
                           EndpointFn dst_of, std::size_t buffer_capacity,
                           Arena* arena)
    : Component(std::move(name)),
      n_(num_endpoints),
      radix_(radix),
      radix_bits_(log2_exact(radix)),
      layers_(static_cast<unsigned>(layer_modes.size())),
      dst_of_(std::move(dst_of)),
      out_(num_endpoints, nullptr) {
  MEMPOOL_CHECK(is_pow2(radix) && radix >= 2);
  MEMPOOL_CHECK(is_pow2(num_endpoints));
  const unsigned want_layers =
      log2_exact(num_endpoints) / log2_exact(radix);
  MEMPOOL_CHECK_MSG(want_layers * radix_bits_ == log2_exact(num_endpoints),
                    "num_endpoints must be a power of the radix");
  MEMPOOL_CHECK_MSG(layers_ == want_layers,
                    "need " << want_layers << " layer modes, got " << layers_);

  buf_.resize(layers_);
  occ_words_ = (n_ + 63) / 64;
  occ_.assign(layers_ * occ_words_, 0);
  arb_scratch_.assign(occ_words_, 0);
  for (unsigned l = 0; l < layers_; ++l) {
    buf_[l].reserve_exact(n_, arena);
    for (std::size_t p = 0; p < n_; ++p) {
      buf_[l].emplace_back(layer_modes[l], buffer_capacity, arena);
      // any visible packet re-arms the net
      buf_[l].back().set_consumer(this, this->name().c_str());
      buf_[l].back().bind_occupancy_bit(&occ_[l * occ_words_ + p / 64],
                                        static_cast<unsigned>(p % 64));
    }
  }
  in_sinks_.reserve(n_);
  for (std::size_t p = 0; p < n_; ++p) in_sinks_.emplace_back(buf_[0][p]);

  rr_.resize(layers_);
  for (unsigned l = 0; l < layers_; ++l) {
    rr_[l].assign((n_ / radix_) * radix_, 0);
  }
  traversals_.assign(layers_, 0);
}

PacketSink* ButterflyNet::input(std::size_t i) {
  MEMPOOL_CHECK(i < in_sinks_.size());
  return &in_sinks_[i];
}

void ButterflyNet::connect_output(std::size_t i, PacketSink* sink) {
  MEMPOOL_CHECK(i < out_.size());
  MEMPOOL_CHECK(sink != nullptr);
  out_[i] = sink;
}

void ButterflyNet::register_clocked(Engine& engine, uint32_t shard) {
  // All stage buffers are consumed by the net's own evaluate pass.
  for (auto& layer : buf_) {
    for (auto& b : layer) engine.add_clocked(&b, shard);
  }
}

uint64_t ButterflyNet::traversals() const {
  uint64_t t = 0;
  for (uint64_t x : traversals_) t += x;
  return t;
}

bool ButterflyNet::idle() const {
  for (uint64_t m : occ_) {
    if (m != 0) return false;
  }
  return true;
}

unsigned ButterflyNet::stage_hop(unsigned pos, unsigned dst, unsigned l,
                                 unsigned layers, unsigned radix_bits,
                                 unsigned n) {
  const unsigned q = shuffle(pos, layers, radix_bits, n);
  const unsigned radix = 1u << radix_bits;
  const unsigned sw = q / radix;
  const unsigned digit = radix_digit(dst, layers - 1 - l, radix_bits);
  return sw * radix + digit;
}

void ButterflyNet::evaluate(uint64_t /*cycle*/) {
  // Process layers in order so that a packet can ripple through consecutive
  // combinational layers within one cycle.
  for (unsigned l = 0; l < layers_; ++l) {
    auto& layer = buf_[l];
    // Per-switch arbitration: visit switches; each switch covers the r lines
    // whose shuffled position falls inside it. We iterate over the occupied
    // line positions, bucket candidates per (switch, digit), then grant.
    struct Cand {
      unsigned line;
      unsigned next;  // line position after this stage (winner's destination)
      unsigned slot;  // (sw * radix + digit), arbitration domain
      unsigned sw_in; // input index within the switch (for round-robin)
    };
    // Collect candidates: set bits of the layer's occupancy mask, in
    // ascending line order (identical to the historical full scan).
    static thread_local std::vector<Cand> cands;
    cands.clear();
    for (std::size_t wi = 0; wi < occ_words_; ++wi) {
      for (uint64_t m = occ_[l * occ_words_ + wi]; m != 0; m &= m - 1) {
        const auto p = static_cast<unsigned>(wi * 64 + std::countr_zero(m));
        const Packet& pkt = layer[p].front();
        const unsigned dst = dst_of_(pkt);
        MEMPOOL_CHECK_MSG(dst < n_, name() << ": endpoint " << dst
                                           << " out of range " << n_);
        const unsigned q =
            shuffle(p, layers_, radix_bits_, static_cast<unsigned>(n_));
        const unsigned sw = q / radix_;
        const unsigned digit = radix_digit(dst, layers_ - 1 - l, radix_bits_);
        cands.push_back({p, sw * radix_ + digit, sw * radix_ + digit,
                         q % radix_});
      }
    }
    if (cands.empty()) continue;

    // Grant per arbitration slot using round-robin over switch inputs.
    // Candidates with the same slot compete; the winner moves. The winner
    // carries its own destination (all members of a slot group share it by
    // construction — slot == next — but the grant must never borrow another
    // candidate's routing). Slots span (n_+63)/64 request-mask words.
    std::fill(arb_scratch_.begin(), arb_scratch_.end(), 0);
    for (std::size_t i = 0; i < cands.size(); ++i) {
      const unsigned slot = cands[i].slot;
      uint64_t& arb_word = arb_scratch_[slot / 64];
      const uint64_t slot_bit = 1ull << (slot % 64);
      if ((arb_word & slot_bit) != 0) continue;  // group already granted
      arb_word |= slot_bit;
      // Gather all candidates for this slot (cands are in line order, so
      // same-slot entries are not necessarily adjacent; scan forward).
      unsigned best_line = cands[i].line;
      unsigned best_in = cands[i].sw_in;
      unsigned best_next = cands[i].next;
      unsigned best_dist = (cands[i].sw_in + radix_ - rr_[l][slot]) % radix_;
      std::size_t group = 1;
      for (std::size_t j = i + 1; j < cands.size(); ++j) {
        if (cands[j].slot != slot) continue;
        ++group;
        const unsigned dist = (cands[j].sw_in + radix_ - rr_[l][slot]) % radix_;
        if (dist < best_dist) {
          best_dist = dist;
          best_line = cands[j].line;
          best_in = cands[j].sw_in;
          best_next = cands[j].next;
        }
      }

      // Move the winner to ITS destination: the next layer's input buffer, or
      // the endpoint sink after the last layer.
      PacketBuffer* next_buf =
          (l + 1 < layers_) ? &buf_[l + 1][best_next] : nullptr;
      PacketSink* out_sink = nullptr;
      if (next_buf == nullptr) {
        MEMPOOL_CHECK_MSG(out_[best_next] != nullptr,
                          name() << ": output " << best_next
                                 << " not connected");
        out_sink = out_[best_next];
      }
      const bool ready =
          next_buf != nullptr ? next_buf->can_accept() : out_sink->can_accept();
      if (ready) {
        const Packet granted = layer[best_line].pop();
        if (next_buf != nullptr) {
          next_buf->push(granted);
        } else {
          out_sink->push(granted);
        }
        ++traversals_[l];
        blocked_ += group - 1;
        rr_[l][slot] = (best_in + 1u) % radix_;
      } else {
        blocked_ += group;
      }
    }
  }
}

void ButterflyNet::describe(GraphVisitor& v) const {
  v.arbitration(ArbiterFairness::kRoundRobin);  // per-switch rr_ pointers
  for (unsigned l = 0; l < layers_; ++l) {
    for (std::size_t p = 0; p < n_; ++p) {
      v.reads(&buf_[l][p], "l" + std::to_string(l) + "p" + std::to_string(p));
      // Hops into layer l >= 1 are pushes from this component into its own
      // buffers: declared so the buffers count as written (rules D1/D2), and
      // exempt from the order rules as self-edges.
      if (l >= 1) {
        v.writes_buffer(&buf_[l][p],
                        "l" + std::to_string(l) + "p" + std::to_string(p));
      }
    }
  }
  for (std::size_t p = 0; p < n_; ++p) {
    if (out_[p] != nullptr) v.writes(out_[p], "out" + std::to_string(p));
  }
}

void ButterflyNet::save_state(StateSink& s) const {
  for (const auto& layer : buf_) {
    for (const PacketBuffer& buf : layer) buf.save_state(s);
  }
  for (const auto& layer_rr : rr_) {
    for (const uint32_t r : layer_rr) s.u32(r);
  }
  for (const uint64_t t : traversals_) s.u64(t);
  s.u64(blocked_);
}

void ButterflyNet::load_state(StateSource& s) {
  // occ_ words refresh through the per-buffer occupancy bits bound at
  // construction.
  for (auto& layer : buf_) {
    for (PacketBuffer& buf : layer) buf.load_state(s);
  }
  for (auto& layer_rr : rr_) {
    for (uint32_t& r : layer_rr) r = s.u32();
  }
  for (uint64_t& t : traversals_) t = s.u64();
  blocked_ = s.u64();
}

}  // namespace mempool
