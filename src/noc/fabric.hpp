#pragma once
// Pluggable fabric-topology API.
//
// A topology is one self-contained plugin implementing FabricTopology: it
// decides the tile port shape, builds and wires the request/response
// networks into the Cluster, reports its zero-load latency model, supplies
// the physical floorplan/wiring hooks the feasibility analysis consumes, and
// prices its analytic per-instruction energy rows. The Cluster contains
// *zero* topology-specific code — it asks the registered plugin for every
// decision — so adding a fabric never touches core/, physical/, power/, or
// the runner: register a plugin and every layer (simulation, sweeps, JSON
// schema, zero-load tables, feasibility, energy) picks it up.
//
// The four paper topologies (Top1/Top4/TopH/TopX) are built-in plugins; the
// two-level hierarchical 1024-core TopH2 (the 2023 journal paper's scaling
// direction) is implemented purely against this interface in noc/toph2.cpp
// and serves as the worked "how to add a topology" example (see README).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/arena.hpp"
#include "core/cluster_config.hpp"
#include "noc/butterfly.hpp"
#include "noc/xbar.hpp"
#include "physical/feasibility.hpp"
#include "physical/floorplan.hpp"
#include "physical/wires.hpp"
#include "power/energy_params.hpp"

namespace mempool {

class Cluster;
class Tile;

/// Per-topology tile shape: how many master (request direction) and slave
/// (remote request/response) ports each tile exposes, and whether the tile
/// instantiates its internal fabric at all (the ideal TopX baseline wires
/// cores straight to banks).
struct TileShape {
  bool fabric = true;
  uint32_t master_ports = 0;
  uint32_t slave_ports = 0;
  /// Bank input queue depth; 0 = unbounded (TopX output queueing).
  std::size_t bank_input_capacity = 2;
};

/// Per-tile port configuration: buffer mode per slave port (registered =
/// extra pipeline boundary) and the routing functions of the tile's
/// master-port crossbar (request → master port) and bank-response crossbar
/// (response → local core [0, cores) or remote response port [cores, +K)).
struct TilePorts {
  std::vector<BufferMode> slave_req_modes;
  std::vector<BufferMode> slave_resp_modes;
  RouteFn dir_route;
  RouteFn resp_route;
};

/// Thin facade over the Cluster handed to the plugin hooks: tile access,
/// ownership transfer of the networks the plugin constructs (the Cluster
/// stores them, registers them with the engine in deterministic order, and
/// aggregates their counters), and core-port wiring. Methods are defined in
/// cluster.cpp where Cluster is complete.
class FabricBuilder {
 public:
  const ClusterConfig& config() const;
  uint32_t num_tiles() const;
  Tile& tile(uint32_t t);

  /// Shard @p shard's component arena. Plugins construct their networks in
  /// the arena of the shard the network evaluates in (arena(h).make<...>),
  /// passing &arena(h) through to the network constructor so the buffer
  /// storage lands in the same arena; the arena owns the object and
  /// outlives the cluster's component graph.
  Arena& arena(uint32_t shard);

  /// Store a network (arena-owned; pass the pointer arena(shard).make<>
  /// returned). Request networks evaluate after the master-port crossbars
  /// and before the merged request crossbars; response networks after the
  /// bank-response crossbars and before the remote-response crossbars.
  /// Within a direction: group crossbars first, then butterflies, each in
  /// insertion order. Returns @p n for wiring.
  ///
  /// @p shard is the partition the network evaluates in under the sharded
  /// engine (< num_shards()). Because a network's outputs may feed tile
  /// slave ports combinationally, it must live in the shard of the tiles it
  /// *feeds* — for MemPool's hierarchical fabrics that is the destination
  /// group; its input buffers are then the registered shard boundary (wrap
  /// them with shard_boundary() when wiring the source tiles).
  ButterflyNet* add_req_butterfly(ButterflyNet* n, uint32_t shard = 0);
  ButterflyNet* add_resp_butterfly(ButterflyNet* n, uint32_t shard = 0);
  XbarSwitch* add_req_group_xbar(XbarSwitch* x, uint32_t shard = 0);
  XbarSwitch* add_resp_group_xbar(XbarSwitch* x, uint32_t shard = 0);

  /// Declare @p sink — an input of a network that lives in @p consumer_shard
  /// — to be fed by components of @p producer_shard. When the shards differ
  /// the underlying elastic buffer is switched to commit-barrier visibility
  /// (it must be registered; combinational boundary links fail loudly —
  /// that check is the sharded engine's structural determinism argument).
  /// Returns @p sink so wiring reads naturally:
  ///   src.connect_dir_output(i, b.shard_boundary(g, h, req->input(j)));
  PacketSink* shard_boundary(uint32_t producer_shard, uint32_t consumer_shard,
                             PacketSink* sink);

  /// The stored request butterflies, in insertion order (Top4's core-port
  /// wiring needs plane k's input at the owning tile).
  ButterflyNet* req_butterfly(std::size_t i);

  /// Wire core @p core's issue port: requests to the own tile go to
  /// @p local, everything else to @p remote.
  void wire_core_ports(uint32_t core, PacketSink* local, PacketSink* remote);
  /// Wire core @p core for ideal direct bank access (TopX).
  void wire_core_ideal(uint32_t core);

  /// Create one IdealRespBridge per tile, draining every bank's response
  /// directly into the owning client (TopX; only valid from
  /// attach_clients_hook, after the clients exist).
  void add_ideal_tile_bridges();

 private:
  friend class Cluster;
  explicit FabricBuilder(Cluster* c) : c_(c) {}
  Cluster* c_;
};

/// One self-describing interconnect topology. Implementations are stateless
/// singletons owned by the FabricRegistry; every hook receives the cluster
/// configuration (or a builder carrying it) explicitly, so one plugin
/// instance serves any number of concurrently simulated clusters.
class FabricTopology {
 public:
  virtual ~FabricTopology() = default;

  // --- identity -------------------------------------------------------------
  /// Registry key, display name, and serialization name (sweep-JSON v2).
  virtual const std::string& name() const = 0;
  /// One-line summary for --list-topologies.
  virtual std::string description() const = 0;
  /// True for fabrics with a group-local latency tier (TopH, TopH2); drives
  /// the "same group" column of the zero-load table.
  virtual bool hierarchical() const { return false; }

  // --- configuration --------------------------------------------------------
  /// Spec parameter keys this plugin understands; anything else in
  /// TopologySpec::params fails validation (see check_params).
  virtual std::vector<std::string> param_keys() const { return {}; }
  /// Topology-specific structural constraints; throw CheckError on violation.
  /// The generic checks (powers of two, num_groups divides num_tiles, spec
  /// param keys) already ran.
  virtual void validate(const ClusterConfig& cfg) const = 0;
  /// The full-scale canonical configuration (the 256-core paper cluster for
  /// the paper topologies). @p spec is carried into the result verbatim.
  virtual ClusterConfig paper_config(const TopologySpec& spec,
                                     bool scrambling) const;
  /// The smallest valid configuration for fast unit tests.
  virtual ClusterConfig mini_config(const TopologySpec& spec,
                                    bool scrambling) const;

  /// Non-virtual helper: every key in @p spec.params must be in
  /// param_keys(); throws CheckError naming the offender otherwise.
  void check_params(const TopologySpec& spec) const;

  // --- sharded-execution hooks ----------------------------------------------
  /// How many shards the sharded engine may evaluate this fabric's cluster
  /// with. The shard boundary must coincide with registered link boundaries:
  /// a combinational path must never cross shards, so the natural (and for
  /// the built-in fabrics, only) choice is the group hierarchy — TopH shards
  /// per group, TopH2 per super-group (its die-spanning butterflies feed a
  /// whole super-group combinationally), the flat fabrics report 1 and run
  /// the sharded engine degenerately on one shard.
  virtual uint32_t num_shards(const ClusterConfig& cfg) const {
    (void)cfg;
    return 1;
  }
  /// Shard of @p tile (and of everything inside it: cores, banks, I$,
  /// crossbars); must be < num_shards(cfg).
  virtual uint32_t tile_shard(const ClusterConfig& cfg, uint32_t tile) const {
    (void)cfg;
    (void)tile;
    return 0;
  }

  // --- structural hooks (Cluster construction) ------------------------------
  virtual TileShape tile_shape(const ClusterConfig& cfg) const = 0;
  virtual TilePorts tile_ports(const ClusterConfig& cfg, uint32_t tile) const = 0;
  /// Construct the request/response networks and wire them to the tiles'
  /// master/slave ports via the builder.
  virtual void build_networks(FabricBuilder& b) const = 0;
  /// Wire core @p core's issue port (wire_core_ports / wire_core_ideal).
  virtual void wire_core(FabricBuilder& b, uint32_t core) const = 0;
  /// Called after the clients are attached (TopX creates its ideal response
  /// bridges here; most fabrics need nothing).
  virtual void attach_clients_hook(FabricBuilder& b) const { (void)b; }

  // --- analytic models ------------------------------------------------------
  /// Self-reported zero-load round-trip latency (cycles) of a single load
  /// from a core in @p src_tile to a bank in @p dst_tile on an idle fabric.
  /// The registry contract test pins measured probe latencies to this model
  /// for every registered topology.
  virtual uint64_t zero_load_latency(const ClusterConfig& cfg,
                                     uint32_t src_tile,
                                     uint32_t dst_tile) const = 0;
  /// Human-readable latency tiers for the zero-load table's "paper" column
  /// (e.g. "1 / 3 / 5").
  virtual std::string latency_summary(const ClusterConfig& cfg) const = 0;

  // --- physical hooks -------------------------------------------------------
  /// False for fabrics without a physical realization (TopX): they are
  /// skipped by the feasibility analysis.
  virtual bool physically_modeled() const { return false; }
  /// Floorplan of @p cfg (die size, tile grid, groups). The default derives
  /// the tile/group counts from the configuration on the paper's die.
  virtual physical::FloorplanParams floorplan_params(
      const ClusterConfig& cfg) const {
    physical::FloorplanParams fp;
    fp.num_tiles = cfg.num_tiles;
    fp.num_groups = cfg.num_groups;
    return fp;
  }
  /// Top-level wire bundles of @p cfg over @p fp, both travel directions.
  /// @p cfg carries the TopologySpec, so plugin parameters (e.g. TopH2's
  /// "supergroups") shape the wiring like they shape the simulated fabric.
  virtual std::vector<physical::WireBundle> wires(
      const ClusterConfig& cfg, const physical::Floorplan& fp,
      uint32_t request_bits = 80, uint32_t response_bits = 48) const {
    (void)cfg; (void)fp; (void)request_bits; (void)response_bits;
    return {};
  }

  // --- energy hooks ---------------------------------------------------------
  struct EnergyRow {
    std::string label;
    InstrEnergy energy;
  };
  /// Analytic Figure-10-style per-instruction rows (local / remote loads)
  /// priced with @p p on the canonical configuration @p cfg.
  virtual std::vector<EnergyRow> energy_rows(const ClusterConfig& cfg,
                                             const EnergyParams& p) const {
    (void)cfg; (void)p;
    return {};
  }
};

/// Name-keyed registry of fabric-topology plugins. The four paper topologies
/// plus TopH2 register themselves on first use; user plugins register via
/// add() (from a single thread, before simulation starts).
class FabricRegistry {
 public:
  static FabricRegistry& instance();

  /// Register a plugin; throws CheckError on a duplicate name.
  void add(std::unique_ptr<FabricTopology> topo);

  /// nullptr when @p name is not registered.
  static const FabricTopology* find(const std::string& name);
  /// Throws CheckError listing the available topologies on an unknown name.
  static const FabricTopology& get(const std::string& name);
  /// Registered names, in registration order.
  static std::vector<std::string> names();
  /// "Top1, Top4, TopH, TopX, TopH2" — for error messages and CLI help.
  static std::string available();

 private:
  FabricRegistry();  // registers the built-in plugins
  std::vector<std::unique_ptr<FabricTopology>> topos_;
};

/// Registry-driven physical feasibility: analyze every physically modeled
/// topology on its own floorplan, each against the monolithic central-hub
/// baseline (star_wires) on that same floorplan — for the paper topologies
/// this reproduces the original Top1-relative verdicts exactly.
std::vector<physical::FeasibilityReport> analyze_all_topologies(
    const physical::FeasibilityParams& base = physical::FeasibilityParams{});

}  // namespace mempool
