#include "noc/xbar.hpp"

#include <bit>
#include <utility>

#include "common/check.hpp"

namespace mempool {

XbarSwitch::XbarSwitch(std::string name, std::vector<BufferMode> in_modes,
                       std::size_t num_outputs, RouteFn route,
                       std::size_t in_capacity, Arena* arena)
    : Component(std::move(name)),
      out_(num_outputs, nullptr),
      rr_(num_outputs, 0),
      cand_(num_outputs),
      route_(std::move(route)) {
  MEMPOOL_CHECK(!in_modes.empty());
  MEMPOOL_CHECK(num_outputs > 0);
  MEMPOOL_CHECK(in_capacity >= 1);
  occ_.assign((in_modes.size() + 63) / 64, 0);
  out_req_.assign((num_outputs + 63) / 64, 0);
  in_sinks_.reserve(in_modes.size());
  in_.reserve_exact(in_modes.size(), arena);
  for (BufferMode m : in_modes) {
    in_.emplace_back(m, in_capacity, arena);
  }
  unsigned bit = 0;
  for (auto& buf : in_) {
    // any visible packet re-arms this switch
    buf.set_consumer(this, this->name().c_str());
    buf.bind_occupancy_bit(&occ_[bit / 64], bit % 64);
    ++bit;
    in_sinks_.emplace_back(buf);
  }
  for (auto& c : cand_) c.reserve(in_.size());
}

XbarSwitch::XbarSwitch(std::string name, std::size_t num_inputs,
                       BufferMode in_mode, std::size_t num_outputs,
                       RouteFn route, std::size_t in_capacity, Arena* arena)
    : XbarSwitch(std::move(name),
                 std::vector<BufferMode>(num_inputs, in_mode), num_outputs,
                 std::move(route), in_capacity, arena) {}

PacketSink* XbarSwitch::input(std::size_t i) {
  MEMPOOL_CHECK(i < in_sinks_.size());
  return &in_sinks_[i];
}

void XbarSwitch::connect_output(std::size_t o, PacketSink* sink) {
  MEMPOOL_CHECK(o < out_.size());
  MEMPOOL_CHECK(sink != nullptr);
  out_[o] = sink;
}

void XbarSwitch::register_clocked(Engine& engine, uint32_t shard) {
  // The xbar consumes its own input buffers, so they commit in its shard.
  for (auto& buf : in_) engine.add_clocked(&buf, shard);
}

bool XbarSwitch::idle() const {
  for (uint64_t w : occ_) {
    if (w != 0) return false;
  }
  return true;
}

void XbarSwitch::evaluate(uint64_t /*cycle*/) {
  // Gather the head of every non-empty input (set bits of the occupancy
  // mask, in ascending input order), bucketed by requested output. The
  // common fabric switches fit one mask word; wider ones (>64 ports) span
  // several.
  if (occ_.size() == 1) {
    const uint64_t w0 = occ_[0];
    if (w0 == 0) return;
    if ((w0 & (w0 - 1)) == 0) {
      // Fast path: exactly one occupied input — it wins its output outright
      // (same arbitration outcome and counter updates as the general path).
      const auto i = static_cast<std::size_t>(std::countr_zero(w0));
      const unsigned o = route_(in_[i].front());
      MEMPOOL_CHECK_MSG(o < out_.size(),
                        name() << ": route returned " << o << " of "
                               << out_.size() << " outputs");
      MEMPOOL_CHECK_MSG(out_[o] != nullptr, name() << ": output " << o
                                                   << " not connected");
      if (out_[o]->can_accept()) {
        out_[o]->push(in_[i].pop());
        ++traversals_;
        rr_[o] = (static_cast<uint32_t>(i) + 1u) %
                 static_cast<uint32_t>(in_.size());
      } else {
        ++blocked_;
      }
      return;
    }
  }
  bool any = false;
  for (std::size_t wi = 0; wi < occ_.size(); ++wi) {
    for (uint64_t m = occ_[wi]; m != 0; m &= m - 1) {
      const std::size_t i =
          wi * 64 + static_cast<std::size_t>(std::countr_zero(m));
      const unsigned o = route_(in_[i].front());
      MEMPOOL_CHECK_MSG(o < out_.size(),
                        name() << ": route returned " << o << " of "
                               << out_.size() << " outputs");
      cand_[o].push_back(static_cast<uint16_t>(i));
      out_req_[o / 64] |= 1ull << (o % 64);
      any = true;
    }
  }
  if (!any) return;

  // Per-output round-robin grant (requested outputs only, ascending order).
  for (std::size_t wo = 0; wo < out_req_.size(); ++wo) {
    uint64_t out_mask = out_req_[wo];
    out_req_[wo] = 0;  // reset the scratch for the next evaluate
    for (; out_mask != 0; out_mask &= out_mask - 1) {
      const std::size_t o =
          wo * 64 + static_cast<std::size_t>(std::countr_zero(out_mask));
      auto& cands = cand_[o];
      MEMPOOL_CHECK_MSG(out_[o] != nullptr, name() << ": output " << o
                                                   << " not connected");
      if (!out_[o]->can_accept()) {
        blocked_ += cands.size();
        cands.clear();
        continue;
      }
      // Winner: first candidate at or after the round-robin pointer.
      uint16_t winner = cands[0];
      const uint32_t num_in = static_cast<uint32_t>(in_.size());
      uint32_t best = num_in;
      for (uint16_t c : cands) {
        const uint32_t dist = (c + num_in - rr_[o]) % num_in;
        if (dist < best) {
          best = dist;
          winner = c;
        }
      }
      blocked_ += cands.size() - 1;
      out_[o]->push(in_[winner].pop());
      ++traversals_;
      rr_[o] = (winner + 1u) % num_in;
      cands.clear();
    }
  }
}

void XbarSwitch::describe(GraphVisitor& v) const {
  v.arbitration(ArbiterFairness::kRoundRobin);  // per-output rr_ pointers
  std::size_t i = 0;
  for (const auto& buf : in_) {
    v.reads(&buf, "in" + std::to_string(i));
    ++i;
  }
  for (std::size_t o = 0; o < out_.size(); ++o) {
    // Outputs may legitimately be connected lazily (evaluate CHECKs on first
    // use); an unconnected output simply declares nothing.
    if (out_[o] != nullptr) v.writes(out_[o], "out" + std::to_string(o));
  }
}

void XbarSwitch::save_state(StateSink& s) const {
  for (const PacketBuffer& buf : in_) buf.save_state(s);
  for (const uint32_t r : rr_) s.u32(r);
  s.u64(traversals_);
  s.u64(blocked_);
}

void XbarSwitch::load_state(StateSource& s) {
  // Buffer loads refresh occ_ through the occupancy bits bound at
  // construction, so the sparse input scan sees the restored packets.
  for (PacketBuffer& buf : in_) buf.load_state(s);
  for (uint32_t& r : rr_) r = s.u32();
  traversals_ = s.u64();
  blocked_ = s.u64();
}

}  // namespace mempool
