#include "noc/xbar.hpp"

#include <utility>

#include "common/check.hpp"

namespace mempool {

XbarSwitch::XbarSwitch(std::string name, std::vector<BufferMode> in_modes,
                       std::size_t num_outputs, RouteFn route,
                       std::size_t in_capacity)
    : Component(std::move(name)),
      out_(num_outputs, nullptr),
      rr_(num_outputs, 0),
      cand_(num_outputs),
      route_(std::move(route)) {
  MEMPOOL_CHECK(!in_modes.empty());
  MEMPOOL_CHECK(num_outputs > 0);
  MEMPOOL_CHECK(in_capacity >= 1);
  in_.reserve(in_modes.size());
  in_sinks_.reserve(in_modes.size());
  for (BufferMode m : in_modes) {
    in_.emplace_back(m, in_capacity);
  }
  for (auto& buf : in_) in_sinks_.emplace_back(buf);
  for (auto& c : cand_) c.reserve(in_.size());
}

XbarSwitch::XbarSwitch(std::string name, std::size_t num_inputs,
                       BufferMode in_mode, std::size_t num_outputs,
                       RouteFn route, std::size_t in_capacity)
    : XbarSwitch(std::move(name),
                 std::vector<BufferMode>(num_inputs, in_mode), num_outputs,
                 std::move(route), in_capacity) {}

PacketSink* XbarSwitch::input(std::size_t i) {
  MEMPOOL_CHECK(i < in_sinks_.size());
  return &in_sinks_[i];
}

void XbarSwitch::connect_output(std::size_t o, PacketSink* sink) {
  MEMPOOL_CHECK(o < out_.size());
  MEMPOOL_CHECK(sink != nullptr);
  out_[o] = sink;
}

void XbarSwitch::register_clocked(Engine& engine) {
  for (auto& buf : in_) engine.add_clocked(&buf);
}

bool XbarSwitch::idle() const {
  for (const auto& buf : in_) {
    if (!buf.empty()) return false;
  }
  return true;
}

void XbarSwitch::evaluate(uint64_t /*cycle*/) {
  // Gather the head of every non-empty input, bucketed by requested output.
  bool any = false;
  for (std::size_t i = 0; i < in_.size(); ++i) {
    if (in_[i].empty()) continue;
    const unsigned o = route_(in_[i].front());
    MEMPOOL_CHECK_MSG(o < out_.size(),
                      name() << ": route returned " << o << " of "
                             << out_.size() << " outputs");
    cand_[o].push_back(static_cast<uint16_t>(i));
    any = true;
  }
  if (!any) return;

  // Per-output round-robin grant.
  for (std::size_t o = 0; o < out_.size(); ++o) {
    auto& cands = cand_[o];
    if (cands.empty()) continue;
    MEMPOOL_CHECK_MSG(out_[o] != nullptr, name() << ": output " << o
                                                 << " not connected");
    if (!out_[o]->can_accept()) {
      blocked_ += cands.size();
      cands.clear();
      continue;
    }
    // Winner: first candidate at or after the round-robin pointer.
    uint16_t winner = cands[0];
    uint32_t best = static_cast<uint32_t>(in_.size());
    for (uint16_t c : cands) {
      const uint32_t dist =
          (c + in_.size() - rr_[o]) % static_cast<uint32_t>(in_.size());
      if (dist < best) {
        best = dist;
        winner = c;
      }
    }
    blocked_ += cands.size() - 1;
    out_[o]->push(in_[winner].pop());
    ++traversals_;
    rr_[o] = (winner + 1u) % static_cast<uint32_t>(in_.size());
    cands.clear();
  }
}

}  // namespace mempool
