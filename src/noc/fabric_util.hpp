#pragma once
// Shared helpers for fabric-topology plugins: radix-4 butterfly sizing and
// the canonical register placement of the paper's networks.

#include <cstdint>
#include <vector>

#include "common/bitutil.hpp"
#include "power/energy_params.hpp"
#include "sim/elastic_buffer.hpp"

namespace mempool::fabric {

/// The analytic local-load row every fabric shares: core -> merged request
/// crossbar -> bank -> bank-response crossbar -> core (the Figure-10 8.4 pJ
/// identity).
inline InstrEnergy local_load_energy(const EnergyParams& p) {
  return {p.core_ls, 2 * p.tile_xbar_hop, p.bank_access};
}

/// Layers of a radix-4 butterfly over @p endpoints.
inline unsigned bfly_layers(uint32_t endpoints) {
  return log2_exact(endpoints) / 2;
}

/// Register placement inside a global butterfly: layer 0 is the master-port
/// boundary, layer 1 the mid-network pipeline stage ("a single pipeline stage
/// midway through its log4(64) = 3 layers"). Butterflies with a single layer
/// move the second boundary onto the destination tile's slave port so that
/// the zero-load latency contract (5 cycles) holds at every cluster size.
inline std::vector<BufferMode> bfly_layer_modes(unsigned layers) {
  std::vector<BufferMode> m(layers, BufferMode::kCombinational);
  m[0] = BufferMode::kRegistered;
  if (layers >= 2) m[1] = BufferMode::kRegistered;
  return m;
}

/// Register placement of a *top-level* (die-spanning) butterfly: every layer
/// registered — the long wires between super-groups need retiming at each
/// stage (MemPool-3D / the 2023 journal scaling direction), which is what
/// makes TopH2's cross-super-group tier one cycle per layer.
inline std::vector<BufferMode> bfly_all_registered(unsigned layers) {
  return std::vector<BufferMode>(layers, BufferMode::kRegistered);
}

/// Registered request-path boundaries a packet crosses through a butterfly
/// built with bfly_layer_modes() plus its slave port: always 2 (layer 0 +
/// either the mid-network stage or the registered slave port).
inline unsigned bfly_reg_boundaries(unsigned /*layers*/) { return 2; }

}  // namespace mempool::fabric
