// The four paper topologies (Sections III-C / V-C) as fabric-topology
// plugins. Construction order, component names, buffer modes, and routing
// functions replicate the original hard-wired Cluster builders exactly: the
// engine registers components in the same sequence, so all four produce
// bit-identical TrafficPoint/TrafficCounters results through the plugin API.

#include <string>

#include "common/check.hpp"
#include "core/tile.hpp"
#include "noc/builtin_topologies.hpp"
#include "noc/fabric.hpp"
#include "noc/fabric_util.hpp"

namespace mempool::fabric {

namespace {

// --- Top1: single radix-4 butterfly, one master port per tile ----------------

class Top1 : public FabricTopology {
 public:
  const std::string& name() const override {
    static const std::string n = "Top1";
    return n;
  }
  std::string description() const override {
    return "single radix-4 butterfly, one master port per tile "
           "(zero-load 1 / 5 cycles)";
  }

  void validate(const ClusterConfig& cfg) const override {
    const unsigned tb = log2_exact(cfg.num_tiles);
    MEMPOOL_CHECK_MSG(tb % 2 == 0 && cfg.num_tiles >= 4,
                      "Top1/Top4 need num_tiles = 4^k >= 4");
  }

  TileShape tile_shape(const ClusterConfig&) const override {
    return {true, 1, 1, 2};
  }

  TilePorts tile_ports(const ClusterConfig& cfg, uint32_t t) const override {
    const bool slave_reg = bfly_layers(cfg.num_tiles) < 2;
    const BufferMode m =
        slave_reg ? BufferMode::kRegistered : BufferMode::kCombinational;
    const uint32_t cpt = cfg.cores_per_tile;
    TilePorts ports;
    ports.slave_req_modes = {m};
    ports.slave_resp_modes = {m};
    ports.dir_route = [](const Packet&) { return 0u; };
    ports.resp_route = [t, cpt](const Packet& p) {
      return p.src_tile == t ? static_cast<unsigned>(p.src % cpt)
                             : static_cast<unsigned>(cpt);
    };
    return ports;
  }

  void build_networks(FabricBuilder& b) const override {
    build_parallel_butterflies(b, /*planes=*/1, /*dir_connected=*/true);
  }

  void wire_core(FabricBuilder& b, uint32_t core) const override {
    const uint32_t cpt = b.config().cores_per_tile;
    Tile& tile = b.tile(core / cpt);
    b.wire_core_ports(core, tile.core_local_req(core % cpt),
                      tile.dir_input(core % cpt));
  }

  uint64_t zero_load_latency(const ClusterConfig&, uint32_t src_tile,
                             uint32_t dst_tile) const override {
    return src_tile == dst_tile ? 1 : 5;
  }
  std::string latency_summary(const ClusterConfig&) const override {
    return "1 / - / 5";
  }

  bool physically_modeled() const override { return true; }
  std::vector<physical::WireBundle> wires(
      const ClusterConfig&, const physical::Floorplan& fp,
      uint32_t request_bits, uint32_t response_bits) const override {
    // Every tile connects to the single butterfly at the die centre,
    // "regardless of the physical distance between the tiles" (Sec. VI-C).
    return physical::star_wires(fp, request_bits, response_bits);
  }

  std::vector<EnergyRow> energy_rows(const ClusterConfig& cfg,
                                     const EnergyParams& p) const override {
    // dir xbar + L butterfly layers + dest tile req xbar, mirrored back.
    const double L = bfly_layers(cfg.num_tiles);
    const double ic = p.dir_xbar_hop + L * p.bfly_layer_hop +
                      2 * p.tile_xbar_hop + L * p.bfly_layer_hop +
                      p.dir_xbar_hop;
    return {{"remote load", {p.core_ls, ic, p.bank_access}},
            {"local load", local_load_energy(p)}};
  }

 protected:
  /// Shared with Top4: @p planes parallel butterflies over all tiles; with
  /// @p dir_connected the tiles' single master port feeds plane 0 (Top1),
  /// otherwise the cores push into their plane directly (Top4).
  static void build_parallel_butterflies(FabricBuilder& b, uint32_t planes,
                                         bool dir_connected) {
    const uint32_t n = b.config().num_tiles;
    const unsigned layers = bfly_layers(n);
    Arena& arena = b.arena(0);  // flat fabrics are single-shard
    for (uint32_t k = 0; k < planes; ++k) {
      ButterflyNet* req = b.add_req_butterfly(arena.make<ButterflyNet>(
          "req_bfly" + std::to_string(k), n, 4u, bfly_layer_modes(layers),
          EndpointFn(
              [](const Packet& p) { return static_cast<unsigned>(p.dst_tile); }),
          /*buffer_capacity=*/2, &arena));
      ButterflyNet* resp = b.add_resp_butterfly(arena.make<ButterflyNet>(
          "resp_bfly" + std::to_string(k), n, 4u, bfly_layer_modes(layers),
          EndpointFn(
              [](const Packet& p) { return static_cast<unsigned>(p.src_tile); }),
          /*buffer_capacity=*/2, &arena));
      for (uint32_t t = 0; t < n; ++t) {
        req->connect_output(t, b.tile(t).slave_req(k));
        resp->connect_output(t, b.tile(t).resp_slave(k));
        if (dir_connected) {
          b.tile(t).connect_dir_output(0, req->input(t));
        }
        b.tile(t).connect_resp_remote_output(k, resp->input(t));
      }
    }
  }
};

// --- Top4: four parallel butterflies, one dedicated port per core ------------

class Top4 final : public Top1 {
 public:
  const std::string& name() const override {
    static const std::string n = "Top4";
    return n;
  }
  std::string description() const override {
    return "four parallel butterflies, one dedicated port per core "
           "(zero-load 1 / 5 cycles)";
  }

  TileShape tile_shape(const ClusterConfig& cfg) const override {
    return {true, 0, cfg.cores_per_tile, 2};
  }

  TilePorts tile_ports(const ClusterConfig& cfg, uint32_t t) const override {
    const bool slave_reg = bfly_layers(cfg.num_tiles) < 2;
    const BufferMode m =
        slave_reg ? BufferMode::kRegistered : BufferMode::kCombinational;
    const uint32_t cpt = cfg.cores_per_tile;
    TilePorts ports;
    ports.slave_req_modes.assign(cpt, m);
    ports.slave_resp_modes.assign(cpt, m);
    ports.resp_route = [t, cpt](const Packet& p) {
      return p.src_tile == t ? static_cast<unsigned>(p.src % cpt)
                             : static_cast<unsigned>(cpt + p.src % cpt);
    };
    return ports;
  }

  void build_networks(FabricBuilder& b) const override {
    build_parallel_butterflies(b, b.config().cores_per_tile,
                               /*dir_connected=*/false);
  }

  void wire_core(FabricBuilder& b, uint32_t core) const override {
    const uint32_t cpt = b.config().cores_per_tile;
    const uint32_t t = core / cpt;
    const uint32_t ct = core % cpt;
    b.wire_core_ports(core, b.tile(t).core_local_req(ct),
                      b.req_butterfly(ct)->input(t));
  }

  std::vector<physical::WireBundle> wires(
      const ClusterConfig&, const physical::Floorplan& fp,
      uint32_t request_bits, uint32_t response_bits) const override {
    // Four parallel butterflies: four times the Top1 wiring — "Top4 is four
    // times more congested than Top1".
    std::vector<physical::WireBundle> out;
    for (uint32_t k = 0; k < 4; ++k) {
      const auto star = physical::star_wires(fp, request_bits, response_bits);
      out.insert(out.end(), star.begin(), star.end());
    }
    return out;
  }

  std::vector<EnergyRow> energy_rows(const ClusterConfig& cfg,
                                     const EnergyParams& p) const override {
    // No master-port concentrator on the request path; the response still
    // crosses the remote-response crossbar.
    const double L = bfly_layers(cfg.num_tiles);
    const double ic = L * p.bfly_layer_hop + 2 * p.tile_xbar_hop +
                      L * p.bfly_layer_hop + p.dir_xbar_hop;
    return {{"remote load", {p.core_ls, ic, p.bank_access}},
            {"local load", local_load_energy(p)}};
  }
};

// --- TopH: 4 local groups, crossbar + inter-group butterflies ----------------

class TopH final : public FabricTopology {
 public:
  const std::string& name() const override {
    static const std::string n = "TopH";
    return n;
  }
  std::string description() const override {
    return "4 local groups: intra-group crossbar + one butterfly per ordered "
           "group pair (zero-load 1 / 3 / 5 cycles)";
  }
  bool hierarchical() const override { return true; }

  // Sharded execution: one shard per group. All intra-group paths (tile
  // fabric, group crossbar) stay inside the shard; the only group-crossing
  // links are the inter-group butterflies, whose layer-0 input buffers are
  // registered — they are the shard boundary. A butterfly combinationally
  // feeds the *destination* group's tiles, so it lives in that group's shard.
  uint32_t num_shards(const ClusterConfig& cfg) const override {
    return cfg.num_groups;
  }
  uint32_t tile_shard(const ClusterConfig& cfg, uint32_t tile) const override {
    return cfg.group_of_tile(tile);
  }

  void validate(const ClusterConfig& cfg) const override {
    MEMPOOL_CHECK_MSG(cfg.num_groups == 4, "TopH is defined for 4 groups");
    const uint32_t tpg = cfg.tiles_per_group();
    const unsigned gb = log2_exact(tpg);
    MEMPOOL_CHECK_MSG(tpg >= 4 && gb % 2 == 0,
                      "TopH needs tiles_per_group = 4^k >= 4");
  }

  TileShape tile_shape(const ClusterConfig& cfg) const override {
    return {true, cfg.num_groups, cfg.num_groups, 2};
  }

  TilePorts tile_ports(const ClusterConfig& cfg, uint32_t t) const override {
    // Slave port 0: intra-group crossbar (combinational at the slave).
    // Slave ports 1..3: butterflies from the other groups; registered only
    // when the group butterfly has a single layer.
    const bool slave_reg = bfly_layers(cfg.tiles_per_group()) < 2;
    const BufferMode bm =
        slave_reg ? BufferMode::kRegistered : BufferMode::kCombinational;
    const uint32_t g = cfg.group_of_tile(t);
    const uint32_t ng = cfg.num_groups;
    const uint32_t cpt = cfg.cores_per_tile;
    const ClusterConfig cfgc = cfg;
    TilePorts ports;
    ports.slave_req_modes = {BufferMode::kCombinational, bm, bm, bm};
    ports.slave_resp_modes = {BufferMode::kCombinational, bm, bm, bm};
    ports.dir_route = [cfgc, g, ng](const Packet& p) {
      return (cfgc.group_of_tile(p.dst_tile) - g + ng) % ng;  // 0 = local
    };
    ports.resp_route = [cfgc, t, g, ng, cpt](const Packet& p) {
      if (p.src_tile == t) return static_cast<unsigned>(p.src % cpt);
      return static_cast<unsigned>(
          cpt + (cfgc.group_of_tile(p.src_tile) - g + ng) % ng);
    };
    return ports;
  }

  void build_networks(FabricBuilder& b) const override {
    const ClusterConfig& cfg = b.config();
    const uint32_t ng = cfg.num_groups;
    const uint32_t tpg = cfg.tiles_per_group();
    const unsigned layers = bfly_layers(tpg);

    // Intra-group fully-connected crossbars (registered inputs: the tiles'
    // master-port boundary); shard = the group they serve.
    for (uint32_t g = 0; g < ng; ++g) {
      Arena& ga = b.arena(g);
      XbarSwitch* lreq = b.add_req_group_xbar(
          ga.make<XbarSwitch>(
              "g" + std::to_string(g) + ".req_lxbar", tpg,
              BufferMode::kRegistered, tpg,
              RouteFn([tpg](const Packet& p) {
                return static_cast<unsigned>(p.dst_tile % tpg);
              }),
              /*in_capacity=*/2, &ga),
          g);
      XbarSwitch* lresp = b.add_resp_group_xbar(
          ga.make<XbarSwitch>(
              "g" + std::to_string(g) + ".resp_lxbar", tpg,
              BufferMode::kRegistered, tpg,
              RouteFn([tpg](const Packet& p) {
                return static_cast<unsigned>(p.src_tile % tpg);
              }),
              /*in_capacity=*/2, &ga),
          g);
      for (uint32_t j = 0; j < tpg; ++j) {
        Tile& tl = b.tile(g * tpg + j);
        tl.connect_dir_output(0, lreq->input(j));
        lreq->connect_output(j, tl.slave_req(0));
        tl.connect_resp_remote_output(0, lresp->input(j));
        lresp->connect_output(j, tl.resp_slave(0));
      }
    }

    // Inter-group butterflies: one per ordered pair (source group g,
    // direction i in 1..3 toward group (g+i) mod 4) and per direction of
    // travel. Each lives in the destination group's shard (its outputs feed
    // those tiles combinationally); the registered inputs fed from group g
    // are the shard boundary.
    for (uint32_t g = 0; g < ng; ++g) {
      for (uint32_t i = 1; i < ng; ++i) {
        const uint32_t h = (g + i) % ng;  // destination group
        Arena& ha = b.arena(h);
        ButterflyNet* req = b.add_req_butterfly(
            ha.make<ButterflyNet>(
                "req_bfly_g" + std::to_string(g) + "_d" + std::to_string(i),
                tpg, 4u, bfly_layer_modes(layers),
                EndpointFn([tpg](const Packet& p) {
                  return static_cast<unsigned>(p.dst_tile % tpg);
                }),
                /*buffer_capacity=*/2, &ha),
            h);
        ButterflyNet* resp = b.add_resp_butterfly(
            ha.make<ButterflyNet>(
                "resp_bfly_g" + std::to_string(g) + "_d" + std::to_string(i),
                tpg, 4u, bfly_layer_modes(layers),
                EndpointFn([tpg](const Packet& p) {
                  return static_cast<unsigned>(p.src_tile % tpg);
                }),
                /*buffer_capacity=*/2, &ha),
            h);
        for (uint32_t j = 0; j < tpg; ++j) {
          Tile& src_tile = b.tile(g * tpg + j);
          Tile& dst_tile = b.tile(h * tpg + j);
          src_tile.connect_dir_output(i, b.shard_boundary(g, h, req->input(j)));
          req->connect_output(j, dst_tile.slave_req(i));
          src_tile.connect_resp_remote_output(
              i, b.shard_boundary(g, h, resp->input(j)));
          resp->connect_output(j, dst_tile.resp_slave(i));
        }
      }
    }
  }

  void wire_core(FabricBuilder& b, uint32_t core) const override {
    const uint32_t cpt = b.config().cores_per_tile;
    Tile& tile = b.tile(core / cpt);
    b.wire_core_ports(core, tile.core_local_req(core % cpt),
                      tile.dir_input(core % cpt));
  }

  uint64_t zero_load_latency(const ClusterConfig& cfg, uint32_t src_tile,
                             uint32_t dst_tile) const override {
    if (src_tile == dst_tile) return 1;
    if (cfg.group_of_tile(src_tile) == cfg.group_of_tile(dst_tile)) return 3;
    return 5;
  }
  std::string latency_summary(const ClusterConfig&) const override {
    return "1 / 3 / 5";
  }

  bool physically_modeled() const override { return true; }
  std::vector<physical::WireBundle> wires(
      const ClusterConfig&, const physical::Floorplan& fp,
      uint32_t request_bits, uint32_t response_bits) const override {
    std::vector<physical::WireBundle> wires;
    const uint32_t n = fp.params().num_tiles;
    const uint32_t ng = fp.params().num_groups;
    const uint32_t tpg = n / ng;
    // L: tile to the group-local crossbar at the quadrant centre.
    for (uint32_t t = 0; t < n; ++t) {
      const uint32_t g = t / tpg;
      wires.push_back({fp.tile_center_grouped(t), fp.group_center(g),
                       request_bits, physical::WireKind::kTileToGroup});
      wires.push_back({fp.group_center(g), fp.tile_center_grouped(t),
                       response_bits, physical::WireKind::kTileToGroup});
    }
    // N/NE/E: one butterfly per ordered group pair, placed at the midpoint
    // of the two group centres (the diagonal pairs cross the die centre).
    for (uint32_t g = 0; g < ng; ++g) {
      for (uint32_t i = 1; i < ng; ++i) {
        const uint32_t h = (g + i) % ng;
        const physical::Point cg = fp.group_center(g);
        const physical::Point ch = fp.group_center(h);
        const physical::Point hub{(cg.x + ch.x) / 2, (cg.y + ch.y) / 2};
        for (uint32_t j = 0; j < tpg; ++j) {
          const uint32_t src = g * tpg + j;
          const uint32_t dst = h * tpg + j;
          wires.push_back({fp.tile_center_grouped(src), hub, request_bits,
                           physical::WireKind::kGroupToGroup});
          wires.push_back({hub, fp.tile_center_grouped(dst), request_bits,
                           physical::WireKind::kGroupToGroup});
          // Response network of this direction pair.
          wires.push_back({fp.tile_center_grouped(dst), hub, response_bits,
                           physical::WireKind::kGroupToGroup});
          wires.push_back({hub, fp.tile_center_grouped(src), response_bits,
                           physical::WireKind::kGroupToGroup});
        }
      }
    }
    return wires;
  }

  std::vector<EnergyRow> energy_rows(const ClusterConfig& cfg,
                                     const EnergyParams& p) const override {
    // Cross-group: dir xbar + Lg butterfly layers + dest tile req xbar, then
    // bank-resp xbar + Lg layers + remote-resp xbar on the way back.
    const double Lg = bfly_layers(cfg.tiles_per_group());
    const double cross = p.dir_xbar_hop + Lg * p.bfly_layer_hop +
                         2 * p.tile_xbar_hop + Lg * p.bfly_layer_hop +
                         p.dir_xbar_hop;
    const double same = p.dir_xbar_hop + p.group_xbar_hop +
                        2 * p.tile_xbar_hop + p.group_xbar_hop +
                        p.dir_xbar_hop;
    return {{"remote load (cross-group)", {p.core_ls, cross, p.bank_access}},
            {"remote load (same group)", {p.core_ls, same, p.bank_access}},
            {"local load", local_load_energy(p)}};
  }
};

// --- TopX: ideal conflict-free crossbar (baseline only) ----------------------

class TopX final : public FabricTopology {
 public:
  const std::string& name() const override {
    static const std::string n = "TopX";
    return n;
  }
  std::string description() const override {
    return "ideal single-cycle conflict-free crossbar "
           "(physically infeasible baseline)";
  }

  void validate(const ClusterConfig&) const override {}

  TileShape tile_shape(const ClusterConfig&) const override {
    // No tile fabric; cores access banks directly, banks queue unboundedly
    // (output queueing).
    return {false, 0, 0, 0};
  }

  TilePorts tile_ports(const ClusterConfig&, uint32_t) const override {
    return {};
  }

  void build_networks(FabricBuilder&) const override {}

  void wire_core(FabricBuilder& b, uint32_t core) const override {
    b.wire_core_ideal(core);
  }

  void attach_clients_hook(FabricBuilder& b) const override {
    b.add_ideal_tile_bridges();
  }

  uint64_t zero_load_latency(const ClusterConfig&, uint32_t,
                             uint32_t) const override {
    return 1;
  }
  std::string latency_summary(const ClusterConfig&) const override {
    return "1 (ideal)";
  }

  std::vector<EnergyRow> energy_rows(const ClusterConfig&,
                                     const EnergyParams& p) const override {
    return {{"load (ideal, no fabric)", {p.core_ls, 0, p.bank_access}}};
  }
};

}  // namespace

std::unique_ptr<FabricTopology> make_top1() { return std::make_unique<Top1>(); }
std::unique_ptr<FabricTopology> make_top4() { return std::make_unique<Top4>(); }
std::unique_ptr<FabricTopology> make_toph() { return std::make_unique<TopH>(); }
std::unique_ptr<FabricTopology> make_topx() { return std::make_unique<TopX>(); }

}  // namespace mempool::fabric
