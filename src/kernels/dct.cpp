#include "kernels/dct.hpp"

#include <sstream>

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "kernels/golden.hpp"
#include "kernels/runtime.hpp"

namespace mempool::kernels {

using isa::Assembler;
using isa::Reg;

KernelProgram build_dct(const ClusterConfig& cfg, uint64_t seed) {
  const uint32_t cpt = cfg.cores_per_tile;
  const uint32_t block_bytes = 8 * 8 * 4;  // 256 B
  const uint32_t stack_bytes = 256;        // holds exactly the T block
  const uint32_t out_off = cpt * block_bytes;     // Y blocks after X blocks
  const uint32_t coeff_off = 2 * cpt * block_bytes;  // shared C per tile
  MEMPOOL_CHECK_MSG(
      coeff_off + block_bytes + cpt * stack_bytes <= cfg.seq_region_bytes,
      "dct working set exceeds the sequential region");
  const unsigned log2seq = log2_exact(cfg.seq_region_bytes);
  const RuntimeLayout layout = make_runtime_layout(cfg);

  Assembler a;
  emit_crt0(a, cfg, stack_bytes);
  emit_barrier(a, cfg, layout);

  a.l("main");
  a.mv(Reg::s11, Reg::ra);
  a.slli(Reg::s0, Reg::gp, log2seq);       // own sequential region base
  a.andi(Reg::t0, Reg::a0, static_cast<int32_t>(cpt - 1));
  a.slli(Reg::t1, Reg::t0, 8);             // core slot * 256 B
  a.add(Reg::s1, Reg::s0, Reg::t1);        // X block
  a.li(Reg::t2, static_cast<int32_t>(out_off));
  a.add(Reg::s2, Reg::s1, Reg::t2);        // Y block
  a.li(Reg::t3, static_cast<int32_t>(coeff_off));
  a.add(Reg::s3, Reg::s0, Reg::t3);        // C matrix (tile-shared)
  a.addi(Reg::sp, Reg::sp, -256);          // T on the stack

  // ---- pass 1: T[i][j] = (sum_k C[i][k] * X[k][j]) >> 14 -------------------
  a.li(Reg::s4, 0);
  a.l("dct_p1_i");
  a.li(Reg::s5, 0);
  a.l("dct_p1_j");
  a.slli(Reg::t0, Reg::s4, 5);
  a.add(Reg::t1, Reg::s3, Reg::t0);        // &C[i][0]
  a.slli(Reg::t2, Reg::s5, 2);
  a.add(Reg::t2, Reg::s1, Reg::t2);        // &X[0][j]
  a.li(Reg::t3, 0);
  a.li(Reg::t4, 8);
  a.l("dct_p1_k");
  a.lw(Reg::a2, Reg::t1, 0);
  a.lw(Reg::a3, Reg::t2, 0);
  a.lw(Reg::a4, Reg::t1, 4);
  a.lw(Reg::a5, Reg::t2, 32);
  a.mul(Reg::t5, Reg::a2, Reg::a3);
  a.add(Reg::t3, Reg::t3, Reg::t5);
  a.mul(Reg::t6, Reg::a4, Reg::a5);
  a.add(Reg::t3, Reg::t3, Reg::t6);
  a.addi(Reg::t1, Reg::t1, 8);
  a.addi(Reg::t2, Reg::t2, 64);
  a.addi(Reg::t4, Reg::t4, -2);
  a.bnez(Reg::t4, "dct_p1_k");
  a.srai(Reg::t3, Reg::t3, 14);
  a.slli(Reg::t5, Reg::s4, 5);
  a.add(Reg::t5, Reg::t5, Reg::sp);
  a.slli(Reg::t6, Reg::s5, 2);
  a.add(Reg::t5, Reg::t5, Reg::t6);
  a.sw(Reg::t3, Reg::t5, 0);               // T[i][j]
  a.addi(Reg::s5, Reg::s5, 1);
  a.li(Reg::t6, 8);
  a.bne(Reg::s5, Reg::t6, "dct_p1_j");
  a.addi(Reg::s4, Reg::s4, 1);
  a.li(Reg::t6, 8);
  a.bne(Reg::s4, Reg::t6, "dct_p1_i");

  // ---- pass 2: Y[i][j] = (sum_k T[i][k] * C[j][k]) >> 14 -------------------
  a.li(Reg::s4, 0);
  a.l("dct_p2_i");
  a.li(Reg::s5, 0);
  a.l("dct_p2_j");
  a.slli(Reg::t0, Reg::s4, 5);
  a.add(Reg::t1, Reg::t0, Reg::sp);        // &T[i][0]
  a.slli(Reg::t2, Reg::s5, 5);
  a.add(Reg::t2, Reg::s3, Reg::t2);        // &C[j][0]
  a.li(Reg::t3, 0);
  a.li(Reg::t4, 8);
  a.l("dct_p2_k");
  a.lw(Reg::a2, Reg::t1, 0);
  a.lw(Reg::a3, Reg::t2, 0);
  a.lw(Reg::a4, Reg::t1, 4);
  a.lw(Reg::a5, Reg::t2, 4);
  a.mul(Reg::t5, Reg::a2, Reg::a3);
  a.add(Reg::t3, Reg::t3, Reg::t5);
  a.mul(Reg::t6, Reg::a4, Reg::a5);
  a.add(Reg::t3, Reg::t3, Reg::t6);
  a.addi(Reg::t1, Reg::t1, 8);
  a.addi(Reg::t2, Reg::t2, 8);
  a.addi(Reg::t4, Reg::t4, -2);
  a.bnez(Reg::t4, "dct_p2_k");
  a.srai(Reg::t3, Reg::t3, 14);
  a.slli(Reg::t5, Reg::s4, 5);
  a.add(Reg::t5, Reg::t5, Reg::s2);
  a.slli(Reg::t6, Reg::s5, 2);
  a.add(Reg::t5, Reg::t5, Reg::t6);
  a.sw(Reg::t3, Reg::t5, 0);               // Y[i][j]
  a.addi(Reg::s5, Reg::s5, 1);
  a.li(Reg::t6, 8);
  a.bne(Reg::s5, Reg::t6, "dct_p2_j");
  a.addi(Reg::s4, Reg::s4, 1);
  a.li(Reg::t6, 8);
  a.bne(Reg::s4, Reg::t6, "dct_p2_i");

  a.addi(Reg::sp, Reg::sp, 256);
  a.call("barrier");
  a.mv(Reg::ra, Reg::s11);
  a.ret();

  KernelProgram kp;
  kp.name = "dct";
  kp.image = a.finish();

  const uint32_t seq_bytes = cfg.seq_region_bytes;
  const uint32_t num_tiles = cfg.num_tiles;
  kp.init = [num_tiles, cpt, seq_bytes, block_bytes, out_off, coeff_off,
             seed](System& sys) {
    Rng rng(seed);
    const std::vector<int32_t> coeffs = dct_coefficients_q14();
    for (uint32_t t = 0; t < num_tiles; ++t) {
      const uint32_t base = t * seq_bytes;
      for (uint32_t slot = 0; slot < cpt; ++slot) {
        for (uint32_t i = 0; i < 64; ++i) {
          sys.write_word(base + slot * block_bytes + 4 * i,
                         static_cast<uint32_t>(rng.next_below(256)));
          sys.write_word(base + out_off + slot * block_bytes + 4 * i, 0);
        }
      }
      for (uint32_t i = 0; i < 64; ++i) {
        sys.write_word(base + coeff_off + 4 * i,
                       static_cast<uint32_t>(coeffs[i]));
      }
    }
  };

  kp.check = [num_tiles, cpt, seq_bytes, block_bytes, out_off](
                 const System& sys, std::string* err) {
    const std::vector<int32_t> coeffs = dct_coefficients_q14();
    for (uint32_t t = 0; t < num_tiles; ++t) {
      const uint32_t base = t * seq_bytes;
      for (uint32_t slot = 0; slot < cpt; ++slot) {
        std::vector<uint32_t> x(64);
        for (uint32_t i = 0; i < 64; ++i) {
          x[i] = sys.read_word(base + slot * block_bytes + 4 * i);
        }
        const std::vector<uint32_t> want = golden_dct8x8(x, coeffs);
        for (uint32_t i = 0; i < 64; ++i) {
          const uint32_t got =
              sys.read_word(base + out_off + slot * block_bytes + 4 * i);
          if (got != want[i]) {
            std::ostringstream os;
            os << "dct mismatch tile " << t << " slot " << slot << " elem "
               << i << ": got " << static_cast<int32_t>(got) << ", want "
               << static_cast<int32_t>(want[i]);
            *err = os.str();
            return false;
          }
        }
      }
    }
    return true;
  };
  return kp;
}

}  // namespace mempool::kernels
