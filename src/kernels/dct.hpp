#pragma once
// dct benchmark (Section V-C): 8×8 fixed-point 2-D DCT on blocks residing in
// each tile's sequential region, with the intermediate product on the stack —
// "all accesses are local, given the stack is mapped to local banks".

#include <cstdint>

#include "core/cluster_config.hpp"
#include "kernels/kernel.hpp"

namespace mempool::kernels {

/// Build the dct kernel: one 8×8 block per core (num_cores() blocks total),
/// computed as Y = (C·X·Cᵀ) in Q1.14.
KernelProgram build_dct(const ClusterConfig& cfg, uint64_t seed = 44);

}  // namespace mempool::kernels
