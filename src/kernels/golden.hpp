#pragma once
// Host-side golden models for the benchmark kernels. Arithmetic is done on
// uint32 with wrap-around (matching RV32 exactly) so that results compare
// bit-exactly against the simulated cluster.

#include <cstdint>
#include <vector>

namespace mempool::kernels {

/// C = A · B for n×n row-major int32 matrices (wrap-around arithmetic).
std::vector<uint32_t> golden_matmul(const std::vector<uint32_t>& a,
                                    const std::vector<uint32_t>& b,
                                    uint32_t n);

/// 3×3 convolution over an h×w image; border pixels (first/last row and
/// column) are left unmodified (the cluster kernel skips them too).
/// @param weights row-major 3×3 kernel.
std::vector<uint32_t> golden_conv2d(const std::vector<uint32_t>& image,
                                    uint32_t h, uint32_t w,
                                    const int32_t weights[9]);

/// 8×8 fixed-point 2-D DCT: Y = (C · X · Cᵀ) with Q1.14 coefficients and an
/// arithmetic right shift by 14 after each matrix product — the exact
/// instruction sequence of the cluster kernel.
std::vector<uint32_t> golden_dct8x8(const std::vector<uint32_t>& block,
                                    const std::vector<int32_t>& coeffs);

/// The Q1.14 DCT-II coefficient matrix used by both golden and kernel.
std::vector<int32_t> dct_coefficients_q14();

}  // namespace mempool::kernels
