#include "kernels/matmul.hpp"

#include <sstream>

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "isa/csr.hpp"
#include "kernels/golden.hpp"
#include "kernels/runtime.hpp"

namespace mempool::kernels {

using isa::Assembler;
using isa::Reg;

namespace {

// Reduction-order schedule: core h visits k_j = (k0 + j*stride) mod n with
// k0 = (37*h) mod n and an odd stride. Two structured hotspots disappear:
//  * distinct k0 per core (odd multiplier = bijection mod n) keeps cores
//    that share an output row from reading the same A element in lockstep;
//  * the odd stride moves the targeted B tile every step instead of camping
//    on one tile for 16 consecutive k (the interleaved map switches tiles
//    only every 16 words).
// Since n is a power of two the offset walk is branch-free:
// o_{j+1} = (o_j + 4*stride) & (4n - 1), with o in bytes.
uint32_t k_stride(uint32_t n) { return n >= 32 ? 17 : 5; }

void emit_k0_offset(Assembler& a, uint32_t n, Reg dst) {
  a.li(dst, 37);
  a.mul(dst, Reg::a0, dst);
  a.andi(dst, dst, static_cast<int32_t>(n - 1));
  a.slli(dst, dst, 2);  // byte offset within an n-word row
}

/// 1x4 register-blocked variant: one A element + one element from each of
/// four transposed-B rows feed four accumulators per step (used when each
/// core owns fewer than eight outputs). B is stored column-major (Bt), so
/// the four B loads of a step hit four different tiles.
void emit_matmul_1x4(Assembler& a, uint32_t n, uint32_t blocks,
                     uint32_t addr_a, uint32_t addr_b, uint32_t addr_c) {
  const unsigned log2n = log2_exact(n);
  const int32_t row = static_cast<int32_t>(4 * n);

  a.l("main");
  a.mv(Reg::s11, Reg::ra);
  a.li(Reg::t0, static_cast<int32_t>(blocks));
  a.mul(Reg::s0, Reg::a0, Reg::t0);       // first block index
  a.li(Reg::s1, static_cast<int32_t>(blocks));
  a.li(Reg::s7, static_cast<int32_t>(addr_a));
  a.li(Reg::s8, static_cast<int32_t>(addr_b));
  a.li(Reg::s9, static_cast<int32_t>(addr_c));
  emit_k0_offset(a, n, Reg::a7);

  a.l("outer");
  a.slli(Reg::t0, Reg::s0, 2);            // flat = block * 4
  a.srli(Reg::t1, Reg::t0, log2n);        // row index
  a.andi(Reg::t2, Reg::t0, static_cast<int32_t>(n - 1));  // col
  a.slli(Reg::t1, Reg::t1, log2n + 2);
  a.add(Reg::t1, Reg::t1, Reg::s7);       // &A[row][0]
  a.slli(Reg::t3, Reg::t2, log2n + 2);
  a.add(Reg::t3, Reg::t3, Reg::s8);       // &Bt[col][0]
  a.li(Reg::s2, 0);                       // four accumulators
  a.li(Reg::s3, 0);
  a.li(Reg::s4, 0);
  a.li(Reg::s5, 0);
  a.li(Reg::t6, static_cast<int32_t>(n));

  a.l("inner");
  a.add(Reg::t4, Reg::t1, Reg::a7);
  a.lw(Reg::a2, Reg::t4, 0);              // A[row][k]
  a.add(Reg::t4, Reg::t3, Reg::a7);
  a.lw(Reg::a3, Reg::t4, 0);              // Bt[col+0][k]
  a.lw(Reg::a4, Reg::t4, row);            // Bt[col+1][k]
  a.lw(Reg::a5, Reg::t4, 2 * row);        // Bt[col+2][k]
  a.lw(Reg::a6, Reg::t4, 3 * row);        // Bt[col+3][k]
  a.addi(Reg::a7, Reg::a7, static_cast<int32_t>(4 * k_stride(n)));
  a.andi(Reg::a7, Reg::a7, row - 1);
  a.mul(Reg::t0, Reg::a2, Reg::a3);
  a.mul(Reg::t2, Reg::a2, Reg::a4);
  a.mul(Reg::t4, Reg::a2, Reg::a5);
  a.mul(Reg::t5, Reg::a2, Reg::a6);
  a.add(Reg::s2, Reg::s2, Reg::t0);
  a.add(Reg::s3, Reg::s3, Reg::t2);
  a.add(Reg::s4, Reg::s4, Reg::t4);
  a.add(Reg::s5, Reg::s5, Reg::t5);
  a.addi(Reg::t6, Reg::t6, -1);
  a.bnez(Reg::t6, "inner");

  a.slli(Reg::t0, Reg::s0, 4);            // C + block*16 bytes
  a.add(Reg::t0, Reg::t0, Reg::s9);
  a.sw(Reg::s2, Reg::t0, 0);
  a.sw(Reg::s3, Reg::t0, 4);
  a.sw(Reg::s4, Reg::t0, 8);
  a.sw(Reg::s5, Reg::t0, 12);
  a.addi(Reg::s0, Reg::s0, 1);
  a.addi(Reg::s1, Reg::s1, -1);
  a.bnez(Reg::s1, "outer");

  a.call("barrier");
  a.mv(Reg::ra, Reg::s11);
  a.ret();
}

/// 2x4 register-blocked variant (the shape the hand-tuned MemPool kernels
/// use): per step, two A elements + one element from each of four
/// transposed-B rows feed eight accumulators — 28 instructions, 6 loads per
/// 8 MACs, all six loads targeting six different tiles, and the mul/add
/// schedule spaced exactly at the 3-cycle multiplier latency.
///
/// Register allocation: accumulators {s2..s5 (row 0), a0,a1,a6,s11 (row 1)},
/// A values t0/t2, B chunk a2..a5, products t4..t6 rotating, row pointers
/// t1/t3 (fixed per block), offset walker a7, k counter gp, C pointer tp,
/// bases s7/s8/s9. ra is saved on the stack.
void emit_matmul_2x4(Assembler& a, uint32_t n, uint32_t blocks,
                     uint32_t addr_a, uint32_t addr_b, uint32_t addr_c) {
  const unsigned log2n = log2_exact(n);
  const int32_t row = static_cast<int32_t>(4 * n);

  a.l("main");
  a.addi(Reg::sp, Reg::sp, -16);
  a.sw(Reg::ra, Reg::sp, 0);
  a.li(Reg::t0, static_cast<int32_t>(blocks));
  a.mul(Reg::s0, Reg::a0, Reg::t0);       // first block index
  a.li(Reg::s1, static_cast<int32_t>(blocks));
  a.li(Reg::s7, static_cast<int32_t>(addr_a));
  a.li(Reg::s8, static_cast<int32_t>(addr_b));
  a.li(Reg::s9, static_cast<int32_t>(addr_c));
  emit_k0_offset(a, n, Reg::a7);

  a.l("outer");
  // Block -> (row pair, column block): row = 2*(b / (n/4)), col = 4*(b % (n/4)).
  a.srli(Reg::t0, Reg::s0, log2n - 2);
  a.andi(Reg::t2, Reg::s0, static_cast<int32_t>(n / 4 - 1));
  a.slli(Reg::t0, Reg::t0, 1);            // row index
  a.slli(Reg::t2, Reg::t2, 2);            // col index
  a.slli(Reg::t1, Reg::t0, log2n + 2);
  a.add(Reg::t1, Reg::t1, Reg::s7);       // &A[row][0]
  a.slli(Reg::t3, Reg::t2, log2n + 2);
  a.add(Reg::t3, Reg::t3, Reg::s8);       // &Bt[col][0]
  // C pointer: C + (row*n + col)*4.
  a.slli(Reg::t5, Reg::t0, log2n);
  a.add(Reg::t5, Reg::t5, Reg::t2);
  a.slli(Reg::t5, Reg::t5, 2);
  a.add(Reg::tp, Reg::t5, Reg::s9);
  // Zero the eight accumulators.
  a.li(Reg::s2, 0);
  a.li(Reg::s3, 0);
  a.li(Reg::s4, 0);
  a.li(Reg::s5, 0);
  a.li(Reg::a0, 0);
  a.li(Reg::a1, 0);
  a.li(Reg::a6, 0);
  a.li(Reg::s11, 0);
  a.li(Reg::gp, static_cast<int32_t>(n));

  a.l("inner");
  a.add(Reg::t4, Reg::t1, Reg::a7);
  a.lw(Reg::t0, Reg::t4, 0);              // A[r][k]
  a.lw(Reg::t2, Reg::t4, row);            // A[r+1][k]
  a.add(Reg::t4, Reg::t3, Reg::a7);
  a.lw(Reg::a2, Reg::t4, 0);              // Bt[c..c+3][k]
  a.lw(Reg::a3, Reg::t4, row);
  a.lw(Reg::a4, Reg::t4, 2 * row);
  a.lw(Reg::a5, Reg::t4, 3 * row);
  a.addi(Reg::a7, Reg::a7, static_cast<int32_t>(4 * k_stride(n)));
  a.andi(Reg::a7, Reg::a7, row - 1);
  a.mul(Reg::t4, Reg::t0, Reg::a2);
  a.mul(Reg::t5, Reg::t0, Reg::a3);
  a.mul(Reg::t6, Reg::t0, Reg::a4);
  a.add(Reg::s2, Reg::s2, Reg::t4);
  a.mul(Reg::t4, Reg::t0, Reg::a5);
  a.add(Reg::s3, Reg::s3, Reg::t5);
  a.mul(Reg::t5, Reg::t2, Reg::a2);
  a.add(Reg::s4, Reg::s4, Reg::t6);
  a.mul(Reg::t6, Reg::t2, Reg::a3);
  a.add(Reg::s5, Reg::s5, Reg::t4);
  a.mul(Reg::t4, Reg::t2, Reg::a4);
  a.add(Reg::a0, Reg::a0, Reg::t5);
  a.mul(Reg::t5, Reg::t2, Reg::a5);
  a.add(Reg::a1, Reg::a1, Reg::t6);
  a.add(Reg::a6, Reg::a6, Reg::t4);
  a.add(Reg::s11, Reg::s11, Reg::t5);
  a.addi(Reg::gp, Reg::gp, -1);
  a.bnez(Reg::gp, "inner");

  a.sw(Reg::s2, Reg::tp, 0);
  a.sw(Reg::s3, Reg::tp, 4);
  a.sw(Reg::s4, Reg::tp, 8);
  a.sw(Reg::s5, Reg::tp, 12);
  a.sw(Reg::a0, Reg::tp, row);
  a.sw(Reg::a1, Reg::tp, row + 4);
  a.sw(Reg::a6, Reg::tp, row + 8);
  a.sw(Reg::s11, Reg::tp, row + 12);
  a.addi(Reg::s0, Reg::s0, 1);
  a.addi(Reg::s1, Reg::s1, -1);
  a.bnez(Reg::s1, "outer");

  // hartid (a0) was clobbered as an accumulator; restore it for hygiene.
  a.csrr(Reg::a0, isa::kCsrMhartid);
  a.call("barrier");
  a.lw(Reg::ra, Reg::sp, 0);
  a.addi(Reg::sp, Reg::sp, 16);
  a.ret();
}

}  // namespace

KernelProgram build_matmul(const ClusterConfig& cfg, uint32_t n,
                           uint64_t seed) {
  MEMPOOL_CHECK(is_pow2(n) && n % 4 == 0 && n <= 128);
  MEMPOOL_CHECK_MSG((n * n) % cfg.num_cores() == 0,
                    "n^2 must be divisible by the core count");
  const uint32_t opc = n * n / cfg.num_cores();  // outputs per core
  MEMPOOL_CHECK_MSG(opc % 4 == 0, "outputs per core must be a multiple of 4");

  const RuntimeLayout layout = make_runtime_layout(cfg);
  const uint32_t addr_a = layout.data_base;
  const uint32_t addr_b = addr_a + n * n * 4;
  const uint32_t addr_c = addr_b + n * n * 4;
  MEMPOOL_CHECK_MSG(addr_c + n * n * 4 <= cfg.spm_bytes(),
                    "matrices do not fit in the SPM");

  Assembler a;
  emit_crt0(a, cfg, /*stack_bytes=*/256);
  emit_barrier(a, cfg, layout);

  // Prefer the 2x4 blocking (fewer loads per MAC) when each core owns at
  // least one full 2x4 block.
  if (opc % 8 == 0) {
    emit_matmul_2x4(a, n, opc / 8, addr_a, addr_b, addr_c);
  } else {
    emit_matmul_1x4(a, n, opc / 4, addr_a, addr_b, addr_c);
  }

  KernelProgram kp;
  kp.name = "matmul";
  kp.image = a.finish();

  // B is stored transposed (column-major): the kernels read Bt[col][k].
  kp.init = [addr_a, addr_b, n, seed](System& sys) {
    Rng rng(seed);
    for (uint32_t i = 0; i < n * n; ++i) {
      const uint32_t k = i / n, col = i % n;
      sys.write_word(addr_a + 4 * i,
                     static_cast<uint32_t>(rng.next_below(256)) - 128);
      sys.write_word(addr_b + 4 * (col * n + k),
                     static_cast<uint32_t>(rng.next_below(256)) - 128);
    }
  };

  kp.check = [addr_a, addr_b, addr_c, n](const System& sys,
                                         std::string* err) {
    std::vector<uint32_t> ma(n * n), mb(n * n);
    for (uint32_t i = 0; i < n * n; ++i) {
      const uint32_t k = i / n, col = i % n;
      ma[i] = sys.read_word(addr_a + 4 * i);
      mb[i] = sys.read_word(addr_b + 4 * (col * n + k));
    }
    const std::vector<uint32_t> want = golden_matmul(ma, mb, n);
    for (uint32_t i = 0; i < n * n; ++i) {
      const uint32_t got = sys.read_word(addr_c + 4 * i);
      if (got != want[i]) {
        std::ostringstream os;
        os << "matmul mismatch at flat index " << i << ": got 0x" << std::hex
           << got << ", want 0x" << want[i];
        *err = os.str();
        return false;
      }
    }
    return true;
  };
  return kp;
}

}  // namespace mempool::kernels
