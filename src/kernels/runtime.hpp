#pragma once
// Bare-metal runtime for MemPool kernels: per-core stack setup in the tile's
// sequential region, hartid-based work distribution, and a centralized
// sense-reversing barrier built on amoadd.w.

#include <cstdint>

#include "core/cluster_config.hpp"
#include "isa/assembler.hpp"

namespace mempool::kernels {

/// Addresses shared by the runtime and the kernels.
struct RuntimeLayout {
  /// Bytes at the top of every tile's sequential region reserved for the
  /// runtime: the barrier's tile-local generation copy lives there, so
  /// waiting cores spin without touching the global interconnect. Stacks
  /// start directly below.
  static constexpr uint32_t kReservedSeqBytes = 16;

  uint32_t seq_total;       ///< End of the sequential window (CPU space).
  uint32_t barrier_count;   ///< amoadd target (central counter).
  uint32_t barrier_gen;     ///< master generation word (same bank as count).
  uint32_t data_base;       ///< First address available for kernel arrays.

  /// CPU base address of tile @p t's sequential region.
  uint32_t tile_seq_base(const ClusterConfig& cfg, uint32_t t) const {
    return t * cfg.seq_region_bytes;
  }

  /// CPU address of tile @p t's local generation copy.
  uint32_t tile_gen_addr(const ClusterConfig& cfg, uint32_t t) const {
    return (t + 1) * cfg.seq_region_bytes - kReservedSeqBytes;
  }
};

/// Compute the canonical layout for a configuration. The barrier words are
/// placed in the interleaved region, one bank row apart, so that the two
/// barrier stores of the releasing core hit the *same bank* and are therefore
/// ordered by the bank's FIFO (stores are posted and the fabric does not
/// order transactions).
RuntimeLayout make_runtime_layout(const ClusterConfig& cfg);

/// Emit _start: sets sp into the own tile's sequential region (stacks grow
/// down from the top, one stack_bytes slot per core), sets gp = tile id,
/// a0 = hartid, calls "main", then writes the EXIT control register.
void emit_crt0(isa::Assembler& a, const ClusterConfig& cfg,
               uint32_t stack_bytes);

/// Emit the "barrier" function (clobbers t0-t6). All num_cores() cores must
/// call it. See runtime.cpp for the memory-ordering discussion.
void emit_barrier(isa::Assembler& a, const ClusterConfig& cfg,
                  const RuntimeLayout& layout);

}  // namespace mempool::kernels
