#pragma once
// Bare-metal runtime for MemPool kernels: per-core stack setup in the tile's
// sequential region, hartid-based work distribution, and a centralized
// sense-reversing barrier built on amoadd.w.

#include <cstdint>

#include "core/cluster_config.hpp"
#include "isa/assembler.hpp"

namespace mempool::kernels {

/// Addresses shared by the runtime and the kernels.
struct RuntimeLayout {
  /// Bytes at the top of every tile's sequential region reserved for the
  /// runtime: the barrier's tile-local generation copy lives there, so
  /// waiting cores spin without touching the global interconnect. Stacks
  /// start directly below.
  static constexpr uint32_t kReservedSeqBytes = 16;

  uint32_t seq_total;       ///< End of the sequential window (CPU space).
  uint32_t barrier_count;   ///< amoadd target (central counter).
  uint32_t barrier_gen;     ///< master generation word (same bank as count).
  uint32_t data_base;       ///< First address available for kernel arrays.

  /// CPU base address of tile @p t's sequential region.
  uint32_t tile_seq_base(const ClusterConfig& cfg, uint32_t t) const {
    return t * cfg.seq_region_bytes;
  }

  /// CPU address of tile @p t's local generation copy.
  uint32_t tile_gen_addr(const ClusterConfig& cfg, uint32_t t) const {
    return (t + 1) * cfg.seq_region_bytes - kReservedSeqBytes;
  }
};

/// Compute the canonical layout for a configuration. The barrier words are
/// placed in the interleaved region, one bank row apart, so that the two
/// barrier stores of the releasing core hit the *same bank* and are therefore
/// ordered by the bank's FIFO (stores are posted and the fabric does not
/// order transactions).
RuntimeLayout make_runtime_layout(const ClusterConfig& cfg);

/// Emit _start: sets sp into the own tile's sequential region (stacks grow
/// down from the top, one stack_bytes slot per core), sets gp = tile id,
/// a0 = hartid, calls "main", then writes the EXIT control register.
void emit_crt0(isa::Assembler& a, const ClusterConfig& cfg,
               uint32_t stack_bytes);

/// Emit the "barrier" function (clobbers t0-t6). All num_cores() cores must
/// call it. See runtime.cpp for the memory-ordering discussion.
void emit_barrier(isa::Assembler& a, const ClusterConfig& cfg,
                  const RuntimeLayout& layout);

// --- DMA intrinsics (tcdm+l2 memory system) ----------------------------------
//
// Thin wrappers over the DMA CSRs (isa/csr.hpp): a transfer is described by
// source/destination CPU byte addresses — exactly one side in the L2 window —
// and a word count, optionally shaped 2-D by emit_dma_shape (rows and row
// strides are sticky until reprogrammed; after reset the shape is 1-D).
// Launching is asynchronous; emit_dma_wait spins until every transfer this
// core launched has drained. Running these on a memory system without a DMA
// engine (plain tcdm) aborts simulation with a clear error.

/// Launch words(@p words) x rows from L2 (@p l2_src) into the L1 SPM
/// (@p spm_dst). All three operands are registers.
void emit_dma_copy_in(isa::Assembler& a, isa::Reg l2_src, isa::Reg spm_dst,
                      isa::Reg words);

/// Launch words(@p words) x rows from the L1 SPM (@p spm_src) into L2
/// (@p l2_dst).
void emit_dma_copy_out(isa::Assembler& a, isa::Reg spm_src, isa::Reg l2_dst,
                       isa::Reg words);

/// Program the sticky 2-D shape: @p rows rows, @p src_stride / @p dst_stride
/// bytes between row starts (0 = dense).
void emit_dma_shape(isa::Assembler& a, isa::Reg rows, isa::Reg src_stride,
                    isa::Reg dst_stride);

/// Reset the sticky shape to 1-D dense (clobbers @p scratch).
void emit_dma_shape_1d(isa::Assembler& a, isa::Reg scratch);

/// Spin until this core's pending-transfer count reaches zero (clobbers
/// @p scratch).
void emit_dma_wait(isa::Assembler& a, isa::Reg scratch);

}  // namespace mempool::kernels
