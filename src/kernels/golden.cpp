#include "kernels/golden.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/fixed_point.hpp"

namespace mempool::kernels {

std::vector<uint32_t> golden_matmul(const std::vector<uint32_t>& a,
                                    const std::vector<uint32_t>& b,
                                    uint32_t n) {
  MEMPOOL_CHECK(a.size() == n * n && b.size() == n * n);
  std::vector<uint32_t> c(n * n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      uint32_t acc = 0;
      for (uint32_t k = 0; k < n; ++k) {
        acc += a[i * n + k] * b[k * n + j];  // wrap-around, as in RV32 mul/add
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

std::vector<uint32_t> golden_conv2d(const std::vector<uint32_t>& image,
                                    uint32_t h, uint32_t w,
                                    const int32_t weights[9]) {
  MEMPOOL_CHECK(image.size() == h * w);
  std::vector<uint32_t> out(h * w, 0);
  for (uint32_t r = 1; r + 1 < h; ++r) {
    for (uint32_t c = 1; c + 1 < w; ++c) {
      uint32_t acc = 0;
      for (int dr = -1; dr <= 1; ++dr) {
        for (int dc = -1; dc <= 1; ++dc) {
          const uint32_t pix = image[(r + dr) * w + (c + dc)];
          const uint32_t wgt =
              static_cast<uint32_t>(weights[(dr + 1) * 3 + (dc + 1)]);
          acc += pix * wgt;
        }
      }
      out[r * w + c] = acc;
    }
  }
  return out;
}

std::vector<int32_t> dct_coefficients_q14() {
  std::vector<int32_t> c(64);
  const double pi = 3.14159265358979323846;
  for (int i = 0; i < 8; ++i) {
    const double s = i == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
    for (int k = 0; k < 8; ++k) {
      c[i * 8 + k] = to_fixed(s * std::cos((2 * k + 1) * i * pi / 16.0), 14);
    }
  }
  return c;
}

std::vector<uint32_t> golden_dct8x8(const std::vector<uint32_t>& block,
                                    const std::vector<int32_t>& coeffs) {
  MEMPOOL_CHECK(block.size() == 64 && coeffs.size() == 64);
  // T = (C · X) >> 14, arithmetic shift — identical to the kernel's srai.
  int32_t t[64];
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      int32_t acc = 0;
      for (int k = 0; k < 8; ++k) {
        acc += coeffs[i * 8 + k] * static_cast<int32_t>(block[k * 8 + j]);
      }
      t[i * 8 + j] = acc >> 14;
    }
  }
  // Y = (T · Cᵀ) >> 14.
  std::vector<uint32_t> y(64);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      int32_t acc = 0;
      for (int k = 0; k < 8; ++k) {
        acc += t[i * 8 + k] * coeffs[j * 8 + k];
      }
      y[i * 8 + j] = static_cast<uint32_t>(acc >> 14);
    }
  }
  return y;
}

}  // namespace mempool::kernels
