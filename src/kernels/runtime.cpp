#include "kernels/runtime.hpp"

#include "common/bitutil.hpp"
#include "common/check.hpp"
#include "core/layout.hpp"
#include "isa/csr.hpp"

namespace mempool::kernels {

using isa::Assembler;
using isa::Reg;

RuntimeLayout make_runtime_layout(const ClusterConfig& cfg) {
  RuntimeLayout l;
  // The sequential window exists at the same CPU addresses whether or not
  // scrambling is enabled (the paper's Top◇ baselines run the *same binary*,
  // only the address transformation differs), so the layout is computed from
  // the geometry, not from cfg.scrambling.
  l.seq_total = cfg.seq_region_bytes * cfg.num_tiles;
  const uint32_t row_stride = 4 * cfg.banks_per_tile * cfg.num_tiles;
  l.barrier_count = l.seq_total;
  l.barrier_gen = l.seq_total + row_stride;  // same bank, next row
  l.data_base = l.seq_total + 2 * row_stride;
  MEMPOOL_CHECK(l.data_base < cfg.spm_bytes());
  return l;
}

void emit_crt0(isa::Assembler& a, const ClusterConfig& cfg,
               uint32_t stack_bytes) {
  MEMPOOL_CHECK(is_pow2(stack_bytes));
  // The top kReservedSeqBytes of every tile's sequential region belong to
  // the runtime (the barrier's tile-local generation copy); stacks start
  // below it.
  MEMPOOL_CHECK_MSG(
      stack_bytes * cfg.cores_per_tile + RuntimeLayout::kReservedSeqBytes <=
          cfg.seq_region_bytes,
      "stacks + runtime do not fit in the sequential region");
  const unsigned log2_cpt = log2_exact(cfg.cores_per_tile);
  const unsigned log2_seq = log2_exact(cfg.seq_region_bytes);
  const unsigned log2_stack = log2_exact(stack_bytes);

  a.l("_start");
  a.csrr(Reg::a0, isa::kCsrMhartid);
  a.srli(Reg::t0, Reg::a0, log2_cpt);        // t0 = tile
  a.andi(Reg::t1, Reg::a0, static_cast<int32_t>(cfg.cores_per_tile - 1));
  a.addi(Reg::t2, Reg::t0, 1);
  a.slli(Reg::t2, Reg::t2, log2_seq);        // end of own sequential region
  a.addi(Reg::t2, Reg::t2,
         -static_cast<int32_t>(RuntimeLayout::kReservedSeqBytes));
  a.slli(Reg::t3, Reg::t1, log2_stack);
  a.sub(Reg::sp, Reg::t2, Reg::t3);          // sp = region end - runtime - slot
  a.mv(Reg::gp, Reg::t0);                    // gp = tile id
  a.call("main");
  a.li(Reg::t0, static_cast<int32_t>(kCtrlExit));
  a.sw(Reg::zero, Reg::t0, 0);
  a.l("_hang");
  a.j("_hang");  // unreachable: the EXIT store halts the core
}

void emit_barrier(isa::Assembler& a, const ClusterConfig& cfg,
                  const RuntimeLayout& layout) {
  // Centralized-counter barrier with *distributed release*: every tile keeps
  // its own copy of the generation word at the top of its sequential region,
  // so waiting cores spin on a local (or at least fixed, per-tile) bank and
  // put zero load on the global interconnect; the releasing core broadcasts
  // the new generation with one posted store per tile.
  //
  // Orderings that matter on a fabric with posted stores and no inter-bank
  // ordering:
  //  1. The generation read must complete before this core's amoadd is
  //     issued (otherwise the release can overtake the read and we spin on
  //     the next generation — deadlock). The read result is folded into the
  //     amoadd operand (t3 = (t2+1)-t2 = 1) so the scoreboard orders them.
  //  2. The counter reset must be observable before any generation copy is
  //     published: the reset uses amoswap (which returns a response) and the
  //     broadcast value is made data-dependent on that response.
  const unsigned log2_cpt = log2_exact(cfg.cores_per_tile);
  const unsigned log2_seq = log2_exact(cfg.seq_region_bytes);
  const int32_t gen_off =
      static_cast<int32_t>(cfg.seq_region_bytes) -
      static_cast<int32_t>(RuntimeLayout::kReservedSeqBytes);

  a.l("barrier");
  // t1 = &tile_gen (own tile's generation copy).
  a.csrr(Reg::t0, isa::kCsrMhartid);
  a.srli(Reg::t0, Reg::t0, log2_cpt);
  a.slli(Reg::t1, Reg::t0, log2_seq);
  const bool gen_off_imm = gen_off <= 2047;
  if (gen_off_imm) {
    a.addi(Reg::t1, Reg::t1, gen_off);
  } else {
    a.li(Reg::t5, gen_off);
    a.add(Reg::t1, Reg::t1, Reg::t5);
  }
  a.lw(Reg::t2, Reg::t1, 0);                 // t2 = my generation
  a.li(Reg::t0, static_cast<int32_t>(layout.barrier_count));
  a.addi(Reg::t3, Reg::t2, 1);
  a.sub(Reg::t3, Reg::t3, Reg::t2);          // t3 = 1 (depends on t2)
  a.amoadd_w(Reg::t4, Reg::t3, Reg::t0);     // t4 = old count
  a.addi(Reg::t4, Reg::t4, 1);
  a.li(Reg::t5, static_cast<int32_t>(cfg.num_cores()));
  a.beq(Reg::t4, Reg::t5, "barrier_last");
  a.l("barrier_spin");
  a.lw(Reg::t6, Reg::t1, 0);                 // local spin: no fabric traffic
  a.bne(Reg::t6, Reg::t2, "barrier_done");
  a.nop();
  a.nop();
  a.j("barrier_spin");
  a.l("barrier_last");
  a.amoswap_w(Reg::t6, Reg::zero, Reg::t0);  // reset count, returns old value
  a.andi(Reg::t6, Reg::t6, 0);               // t6 = 0 (depends on response)
  a.addi(Reg::t3, Reg::t2, 1);
  a.add(Reg::t3, Reg::t3, Reg::t6);          // new generation, ordered
  // Broadcast to every tile's generation copy (posted stores).
  a.li(Reg::t4, static_cast<int32_t>(cfg.num_tiles));
  a.li(Reg::t5, gen_off);                    // &tile0_gen
  a.li(Reg::t6, static_cast<int32_t>(cfg.seq_region_bytes));
  a.l("barrier_bcast");
  a.sw(Reg::t3, Reg::t5, 0);
  a.add(Reg::t5, Reg::t5, Reg::t6);
  a.addi(Reg::t4, Reg::t4, -1);
  a.bnez(Reg::t4, "barrier_bcast");
  a.l("barrier_done");
  a.ret();
}

// --- DMA intrinsics -----------------------------------------------------------

void emit_dma_copy_in(isa::Assembler& a, isa::Reg l2_src, isa::Reg spm_dst,
                      isa::Reg words) {
  a.csrw(isa::kCsrDmaSrc, l2_src);
  a.csrw(isa::kCsrDmaDst, spm_dst);
  a.csrw(isa::kCsrDmaStart, words);
}

void emit_dma_copy_out(isa::Assembler& a, isa::Reg spm_src, isa::Reg l2_dst,
                       isa::Reg words) {
  a.csrw(isa::kCsrDmaSrc, spm_src);
  a.csrw(isa::kCsrDmaDst, l2_dst);
  a.csrw(isa::kCsrDmaStart, words);
}

void emit_dma_shape(isa::Assembler& a, isa::Reg rows, isa::Reg src_stride,
                    isa::Reg dst_stride) {
  a.csrw(isa::kCsrDmaRows, rows);
  a.csrw(isa::kCsrDmaSrcStride, src_stride);
  a.csrw(isa::kCsrDmaDstStride, dst_stride);
}

void emit_dma_shape_1d(isa::Assembler& a, isa::Reg scratch) {
  a.li(scratch, 1);
  a.csrw(isa::kCsrDmaRows, scratch);
  a.csrw(isa::kCsrDmaSrcStride, isa::Reg::zero);
  a.csrw(isa::kCsrDmaDstStride, isa::Reg::zero);
}

void emit_dma_wait(isa::Assembler& a, isa::Reg scratch) {
  // Each call site needs its own spin label; the emission address is unique
  // within the assembler instance, so it serves as the suffix (no shared
  // state across concurrently built programs).
  const std::string label = "dma_wait_" + std::to_string(a.pc());
  a.l(label);
  a.csrr(scratch, isa::kCsrDmaPending);
  a.bnez(scratch, label);
}

}  // namespace mempool::kernels
