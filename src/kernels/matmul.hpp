#pragma once
// matmul benchmark (Section V-C): n×n int32 matrix multiplication with the
// matrices in the interleaved region — "accesses are predominantly remote".

#include <cstdint>

#include "core/cluster_config.hpp"
#include "kernels/kernel.hpp"

namespace mempool::kernels {

/// Build the matmul kernel. Requires n² divisible by the core count, n a
/// power of two, n % 4 == 0 (4-way unrolled inner loop) and n <= 128.
KernelProgram build_matmul(const ClusterConfig& cfg, uint32_t n = 64,
                           uint64_t seed = 42);

}  // namespace mempool::kernels
