#pragma once
// matmul benchmark (Section V-C): n×n int32 matrix multiplication with the
// matrices in the interleaved region — "accesses are predominantly remote".

#include <cstdint>

#include "core/cluster_config.hpp"
#include "kernels/kernel.hpp"

namespace mempool::kernels {

/// Build the matmul kernel. Requires n² divisible by the core count, n a
/// power of two, n % 4 == 0 (4-way unrolled inner loop) and n <= 128.
KernelProgram build_matmul(const ClusterConfig& cfg, uint32_t n = 64,
                           uint64_t seed = 42);

/// Tiled, DMA-fed matmul on the tcdm+l2 memory system: C = A · B with all
/// three matrices resident in L2 (the working set may far exceed the L1),
/// processed block by block — every (rb × cb) output block's A/B panels are
/// DMAed into SPM buffers, computed by all cores, and the finished block is
/// DMAed back out. With double_buffer the next block's panels stream in (and
/// the previous block streams out) while the current one computes, hiding
/// the transfer time; without it every transfer is waited on immediately —
/// the serialized baseline fig_dma_overlap measures overlap against.
struct TiledMatmulParams {
  uint32_t m = 256;         ///< C rows (power of two, multiple of rb).
  uint32_t n = 256;         ///< C cols (power of two, multiple of cb).
  uint32_t k = 32;          ///< Inner dimension (power of two, <= 128).
  uint32_t rb = 64;         ///< Block rows.
  uint32_t cb = 64;         ///< Block cols.
  bool double_buffer = true;
};

/// Build the tiled matmul. Requires a DMA-capable memory system
/// (cfg.memory "tcdm+l2"), rb*cb divisible by 8*num_cores (the 2x4
/// register-blocked inner kernel), and the SPM buffers / L2 matrices to fit
/// their respective memories.
KernelProgram build_matmul_tiled(const ClusterConfig& cfg,
                                 const TiledMatmulParams& p,
                                 uint64_t seed = 42);

}  // namespace mempool::kernels
