#pragma once
// Common shape of an execution-driven benchmark kernel (Section V-C): an
// RV32IMA program image plus host-side (testbench backdoor) data
// initialization and result checking.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/system.hpp"

namespace mempool::kernels {

struct KernelProgram {
  std::string name;
  std::vector<uint32_t> image;             ///< Instruction words.
  std::function<void(System&)> init;       ///< Preload input data.
  /// Verify results; returns true on success, fills *err otherwise.
  std::function<bool(const System&, std::string*)> check;
};

/// Load, initialize, run, and verify a kernel on a fresh system.
/// Returns the cycle count; throws CheckError if the run does not complete
/// within @p max_cycles or the result check fails (when @p verify).
uint64_t run_kernel(System& sys, const KernelProgram& kp, uint64_t max_cycles,
                    bool verify = true);

}  // namespace mempool::kernels
